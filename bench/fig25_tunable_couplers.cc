/**
 * @file
 * Fig. 25: on devices with tunable couplers, how many couplings must
 * be "turned off" per layer to kill unsuppressed ZZ.  Baseline
 * (Gau+ParSched) must switch off every coupling; under the
 * co-optimization only the intra-region couplings (NC) remain.
 * Includes the QV instances, as in the paper.
 */

#include "bench_common.h"

using namespace qzz;

int
main()
{
    bench::banner("Figure 25",
                  "couplings to turn off on tunable-coupler devices");
    exp::SuiteConfig scfg;
    scfg.with_qv = true;
    if (exp::quickMode())
        scfg.max_qubits = 6;
    auto suite = exp::buildSuite(scfg);

    const core::GateDurations durations{};
    Table table({"benchmark", "Gau+ParSched", "OptCtrl/Pert+ZZXSched",
                 "improvement"});
    for (const auto &entry : suite) {
        ckt::QuantumCircuit native = ckt::decomposeToNative(
            ckt::routeCircuit(entry.circuit, entry.device.graph())
                .circuit);
        core::Schedule zzx =
            core::zzxSchedule(native, entry.device, durations);
        // Without pulse suppression every coupling carries ZZ in every
        // layer; with the co-optimization only NC per layer survive.
        const double baseline = double(entry.device.numCouplings());
        const double ours = zzx.meanNc();
        table.addRow({entry.label, formatF(baseline, 1),
                      formatF(ours, 2),
                      formatX(baseline / std::max(ours, 0.05), 1)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: a 10-20x reduction, growing only"
                 " slowly with qubit count.\n";
    return 0;
}
