/**
 * @file
 * Fig. 22: contribution of pulse optimization vs scheduling to the
 * overall Gau+ParSched -> Pert+ZZXSched improvement, attributed in
 * log-fidelity-ratio space (see DESIGN.md conventions).
 */

#include <algorithm>
#include <cmath>

#include "bench_common.h"

using namespace qzz;

int
main()
{
    bench::banner("Figure 22",
                  "contribution breakdown: pulses vs scheduling");
    exp::SuiteConfig scfg;
    if (exp::quickMode())
        scfg.max_qubits = 6;
    auto suite = exp::buildSuite(scfg);
    sim::PulseSimOptions sim_opt;
    sim_opt.dt = 0.1; // Strang error ~1e-4, well below the
                      // fidelity differences reported here


    Table table({"benchmark", "pulse contribution",
                 "scheduling contribution"});
    double mean_pulse = 0.0;
    int count = 0;
    for (const auto &entry : suite) {
        auto fid = [&](core::PulseMethod p, core::SchedPolicy s) {
            const core::Compiler compiler =
                core::CompilerBuilder(entry.device)
                    .pulseMethod(p)
                    .schedPolicy(s)
                    .build();
            return exp::evaluateFidelity(entry.circuit, compiler,
                                         sim_opt)
                .fidelity;
        };
        const double base =
            std::max(fid(core::PulseMethod::Gaussian,
                         core::SchedPolicy::Par),
                     1e-6);
        const double pulse_only =
            std::max(fid(core::PulseMethod::Pert,
                         core::SchedPolicy::Par),
                     1e-6);
        const double both = std::max(
            fid(core::PulseMethod::Pert, core::SchedPolicy::Zzx),
            1e-6);
        const double total = std::log(both / base);
        double c_pulse =
            total > 1e-9 ? std::log(pulse_only / base) / total : 0.0;
        c_pulse = std::clamp(c_pulse, 0.0, 1.0);
        mean_pulse += c_pulse;
        ++count;
        table.addRow({entry.label, formatF(100.0 * c_pulse, 1) + "%",
                      formatF(100.0 * (1.0 - c_pulse), 1) + "%"});
        std::cerr << "[fig22] " << entry.label << " done\n";
    }
    table.print(std::cout);
    const double avg = 100.0 * mean_pulse / std::max(count, 1);
    std::cout << "\naverage contribution: pulse optimization "
              << formatF(avg, 1) << "%, scheduling "
              << formatF(100.0 - avg, 1)
              << "%  (paper: 43.7% / 56.3%)\n";
    return 0;
}
