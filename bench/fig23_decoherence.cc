/**
 * @file
 * Fig. 23: 6-qubit benchmarks under ZZ crosstalk *and* decoherence
 * (T1 = T2 in {100, 200, 500, 1000} us), density-matrix simulation.
 */

#include <cmath>

#include "bench_common.h"

using namespace qzz;

int
main()
{
    bench::banner("Figure 23",
                  "6-qubit benchmarks under ZZ + decoherence (T1=T2)");
    exp::SuiteConfig scfg;
    scfg.max_qubits = 6;
    auto suite = exp::buildSuite(scfg);

    const core::CompileOptions configs[] = {
        {core::PulseMethod::Gaussian, core::SchedPolicy::Par, {}},
        {core::PulseMethod::OptCtrl, core::SchedPolicy::Zzx, {}},
        {core::PulseMethod::Pert, core::SchedPolicy::Zzx, {}},
    };
    const char *config_names[] = {"Gau+ParSched", "OptCtrl+ZZXSched",
                                  "Pert+ZZXSched"};

    sim::PulseSimOptions sopt;
    sopt.dt = 0.1; // density-matrix runs are heavier

    for (const auto &entry : suite) {
        if (entry.circuit.numQubits() != 6)
            continue;
        Table table({"T1=T2 (us)", config_names[0], config_names[1],
                     config_names[2], "improvement"});
        table.setTitle(entry.label);
        for (double t_us : {100.0, 200.0, 500.0, 1000.0}) {
            const dev::Device device =
                entry.device.withCoherence(us(t_us), us(t_us));
            double fid[3];
            for (int i = 0; i < 3; ++i) {
                const core::Compiler compiler =
                    core::CompilerBuilder(device)
                        .options(configs[i])
                        .build();
                fid[i] = exp::evaluateFidelityWithDecoherence(
                             entry.circuit, compiler, sopt)
                             .fidelity;
            }
            table.addRow({formatF(t_us, 0), formatF(fid[0], 4),
                          formatF(fid[1], 4), formatF(fid[2], 4),
                          formatX(fid[2] / std::max(fid[0], 1e-6))});
        }
        table.print(std::cout);
        std::cout << "\n";
        std::cerr << "[fig23] " << entry.label << " done\n";
    }
    std::cout << "Expected shape: improvements stay stable across"
                 " T1/T2 — decoherence does not\nwash out the"
                 " crosstalk-suppression gain.\n";
    return 0;
}
