/**
 * @file
 * Fig. 17: robustness of the Pert Rx(pi/2) pulse to drive noise —
 * (a) carrier frequency detuning, (b) amplitude fluctuation.
 */

#include "bench_common.h"

using namespace qzz;

int
main()
{
    bench::banner("Figure 17",
                  "Pert Rx(pi/2) robustness to drive noise");
    const la::CMatrix target = la::expPauli(kPi / 4.0, 0.0, 0.0);
    const pulse::PulseProgram pert =
        core::defaultPulseProvider()
            ->library(core::PulseMethod::Pert)
            ->get(pulse::PulseGate::SX);

    {
        Table table({"lambda/2pi (MHz)", "df=0", "df=0.1 MHz",
                     "df=0.5 MHz", "df=1 MHz"});
        table.setTitle("(a) frequency detuning");
        for (double l_mhz : bench::lambdaSweepMhz()) {
            std::vector<std::string> row{formatF(l_mhz, 2)};
            for (double df : {0.0, 0.1, 0.5, 1.0}) {
                core::DriveNoise noise;
                noise.detuning = mhz(df);
                const double infid =
                    core::oneQubitCrosstalkInfidelity(
                        pert, target, mhz(l_mhz), noise, 0.01);
                row.push_back(
                    bench::sci(bench::clampInfidelity(infid)));
            }
            table.addRow(row);
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    {
        Table table({"lambda/2pi (MHz)", "no amp noise", "0.01%",
                     "0.05%", "0.1%"});
        table.setTitle("(b) amplitude fluctuation");
        for (double l_mhz : bench::lambdaSweepMhz()) {
            std::vector<std::string> row{formatF(l_mhz, 2)};
            for (double pct : {0.0, 0.01, 0.05, 0.1}) {
                core::DriveNoise noise;
                noise.amplitude_error = pct / 100.0;
                const double infid =
                    core::oneQubitCrosstalkInfidelity(
                        pert, target, mhz(l_mhz), noise, 0.01);
                row.push_back(
                    bench::sci(bench::clampInfidelity(infid)));
            }
            table.addRow(row);
        }
        table.print(std::cout);
    }
    std::cout << "\nExpected shape: suppression survives typical"
                 " drive noise (detuning < 0.1 MHz,\namplitude error"
                 " < 0.1%); large detuning lifts the floor.\n";
    return 0;
}
