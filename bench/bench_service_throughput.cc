/**
 * @file
 * Service-layer load generator: multi-client throughput of
 * svc::CompileService across worker counts and cache hit ratios.
 *
 * Each run pre-generates a GRC-12 workload over a 3x4 grid, points M
 * client threads at a fresh CompileService and measures wall time
 * from first submission to last future resolution.  The hit-ratio
 * axis controls how many requests repeat circuits that were
 * pre-warmed into the program cache versus unique circuits that must
 * cold-compile — the repeated-submission regime the service exists to
 * amortize.
 *
 * Emits BENCH_service_throughput.json (path overridable via argv[1])
 * and exits non-zero unless the fully-warm workload sustains at least
 * 5x the cold throughput at the widest worker count — the service
 * acceptance bar, enforced by the CI smoke job.  QZZ_QUICK=1 shrinks
 * the request counts for smoke runs.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "qzz.h"

using namespace qzz;

namespace {

struct RunResult
{
    int workers = 0;
    int clients = 0;
    int requests = 0;
    double hit_ratio_target = 0.0;
    double wall_ms = 0.0;
    double throughput_rps = 0.0;
    double cache_hit_rate = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
};

/** Monotonic seed source so "unique" circuits never repeat, within a
 *  run or across runs. */
uint64_t
nextUniqueSeed()
{
    static uint64_t seed = 1000;
    return ++seed;
}

ckt::QuantumCircuit
grc12(uint64_t seed)
{
    Rng rng(seed);
    return ckt::googleRandom(12, 6, rng);
}

RunResult
runOnce(const std::shared_ptr<const dev::Device> &device, int workers,
        int clients, int requests, double hit_ratio)
{
    // The repeated-circuit family a warm cache amortizes.
    const int kWarmSet = 8;
    std::vector<ckt::QuantumCircuit> warm_circuits;
    for (uint64_t s = 1; s <= kWarmSet; ++s)
        warm_circuits.push_back(grc12(s));

    // Pre-generate every request outside the timed region.  Warm and
    // cold requests are striped on a 10-request cycle so every
    // client's contiguous slice carries the target mix — a
    // front-loaded split would hand some clients all-warm and others
    // all-cold traffic instead of the interleaved repeated-submission
    // regime this bench is about.
    std::vector<ckt::QuantumCircuit> workload;
    workload.reserve(size_t(requests));
    for (int i = 0; i < requests; ++i) {
        const bool repeat = double(i % 10) < 10.0 * hit_ratio - 1e-9;
        workload.push_back(repeat
                               ? warm_circuits[size_t(i) % kWarmSet]
                               : grc12(nextUniqueSeed()));
    }

    svc::CompileServiceConfig config;
    config.num_workers = workers;
    config.cache.capacity = size_t(requests) + kWarmSet;
    svc::CompileService service(config);

    core::CompileOptions options;
    options.pulse = core::PulseMethod::Gaussian;
    options.sched = core::SchedPolicy::Zzx;

    // Warm the cache (and the shared pulse library + device tables)
    // outside the timed region.
    {
        std::vector<svc::CompileRequest> warmup;
        for (const ckt::QuantumCircuit &c : warm_circuits)
            warmup.push_back({c, device, options, {}});
        for (svc::RequestHandle &h : service.submitBatch(
                 std::move(warmup)))
            h.get();
    }

    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    std::vector<std::thread> client_threads;
    std::atomic<int> failures{0};
    const int per_client = requests / clients;
    for (int c = 0; c < clients; ++c) {
        client_threads.emplace_back([&, c] {
            const int begin = c * per_client;
            const int end =
                c == clients - 1 ? requests : begin + per_client;
            std::vector<svc::RequestHandle> handles;
            handles.reserve(size_t(end - begin));
            for (int i = begin; i < end; ++i)
                handles.push_back(service.submit(
                    {workload[size_t(i)], device, options, {}}));
            for (svc::RequestHandle &h : handles)
                if (!h.get().ok())
                    failures.fetch_add(1);
        });
    }
    for (std::thread &t : client_threads)
        t.join();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();
    if (failures.load() != 0)
        fatal("bench_service_throughput: " +
              std::to_string(failures.load()) + " requests failed");

    const svc::MetricsSnapshot m = service.metrics();
    RunResult r;
    r.workers = service.numWorkers();
    r.clients = clients;
    r.requests = requests;
    r.hit_ratio_target = hit_ratio;
    r.wall_ms = wall_ms;
    r.throughput_rps = double(requests) * 1e3 / wall_ms;
    // Exclude the kWarmSet warm-up misses from the reported rate.
    const uint64_t lookups = m.cache_hits + m.cache_misses;
    r.cache_hit_rate =
        lookups <= kWarmSet
            ? 0.0
            : double(m.cache_hits) / double(lookups - kWarmSet);
    r.p50_ms = m.latency_p50_ms;
    r.p95_ms = m.latency_p95_ms;
    r.p99_ms = m.latency_p99_ms;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_service_throughput.json";
    const bool quick = exp::quickMode();
    const int requests = quick ? 48 : 240;
    const int clients = 4;

    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    std::vector<int> worker_counts;
    for (int w : {1, 2, 4, 8})
        if (unsigned(w) <= hw)
            worker_counts.push_back(w);

    Rng rng(2);
    auto device = std::make_shared<const dev::Device>(
        graph::gridTopology(3, 4), dev::DeviceParams{}, rng);

    std::vector<RunResult> runs;
    for (int workers : worker_counts) {
        for (double hit_ratio : {0.0, 0.5, 1.0}) {
            RunResult r =
                runOnce(device, workers, clients, requests, hit_ratio);
            std::cout << "workers=" << r.workers
                      << " hit_ratio=" << r.hit_ratio_target
                      << " wall=" << formatF(r.wall_ms, 1) << " ms"
                      << " throughput=" << formatF(r.throughput_rps, 1)
                      << " req/s hit_rate="
                      << formatF(r.cache_hit_rate, 3)
                      << " p50=" << formatF(r.p50_ms, 2)
                      << " p99=" << formatF(r.p99_ms, 2) << " ms\n";
            runs.push_back(r);
        }
    }

    // Acceptance: warm >= 5x cold at the widest worker count.
    const int widest = worker_counts.back();
    double cold_rps = 0.0, warm_rps = 0.0;
    for (const RunResult &r : runs) {
        if (r.workers != widest)
            continue;
        if (r.hit_ratio_target == 0.0)
            cold_rps = r.throughput_rps;
        if (r.hit_ratio_target == 1.0)
            warm_rps = r.throughput_rps;
    }
    const double speedup = cold_rps > 0.0 ? warm_rps / cold_rps : 0.0;
    std::cout << "warm-vs-cold speedup at " << widest
              << " workers: " << formatF(speedup, 1) << "x\n";

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot open " << out_path << "\n";
        return 1;
    }
    out.precision(12);
    out << "{\n  \"quick\": " << (quick ? "true" : "false")
        << ",\n  \"hardware_threads\": " << hw
        << ",\n  \"requests_per_run\": " << requests
        << ",\n  \"clients\": " << clients << ",\n  \"runs\": [\n";
    for (size_t i = 0; i < runs.size(); ++i) {
        const RunResult &r = runs[i];
        out << "    {\"workers\": " << r.workers
            << ", \"clients\": " << r.clients
            << ", \"requests\": " << r.requests
            << ", \"hit_ratio_target\": " << r.hit_ratio_target
            << ", \"wall_ms\": " << r.wall_ms
            << ", \"throughput_rps\": " << r.throughput_rps
            << ", \"cache_hit_rate\": " << r.cache_hit_rate
            << ", \"p50_ms\": " << r.p50_ms
            << ", \"p95_ms\": " << r.p95_ms
            << ", \"p99_ms\": " << r.p99_ms << "}"
            << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"speedup_workers\": " << widest
        << ",\n  \"warm_vs_cold_speedup\": " << speedup << "\n}\n";
    out.close();
    std::cout << "wrote " << out_path << "\n";

    if (speedup < 5.0) {
        std::cerr << "FAIL: warm cache speedup " << formatF(speedup, 2)
                  << "x below the 5x acceptance bar\n";
        return 1;
    }
    return 0;
}
