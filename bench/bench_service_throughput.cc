/**
 * @file
 * Service-layer load generator: multi-client throughput of
 * svc::CompileService across worker counts and cache hit ratios.
 *
 * Each run pre-generates a GRC-12 workload over a 3x4 grid, points M
 * client threads at a fresh CompileService and measures wall time
 * from first submission to last future resolution.  The hit-ratio
 * axis controls how many requests repeat circuits that were
 * pre-warmed into the program cache versus unique circuits that must
 * cold-compile — the repeated-submission regime the service exists to
 * amortize.
 *
 * A second, multi-process section exercises the distributed fabric:
 * two forked svc::Server daemons on unix sockets share one
 * artifact directory (GC-bounded), driven by raw socket clients.
 * Scale-out efficiency — dual-server throughput over twice the
 * single-server throughput — must reach 0.7 on machines with at
 * least 4 hardware threads (reported but not gated below that), and
 * the artifact tier must respect its byte bound both under load and
 * after a final {"cmd":"gc"} pass.
 *
 * A telemetry-overhead section re-runs the mixed workload with span
 * tracing off versus on (interleaved, best-of-two per arm) and gates
 * the tracing tax: the traced arm must keep at least 0.97x of the
 * untraced throughput.
 *
 * Emits BENCH_service_throughput.json (path overridable via argv[1])
 * and exits non-zero unless the fully-warm workload sustains at least
 * 5x the cold throughput at the widest worker count — the service
 * acceptance bar, enforced by the CI smoke job — and the telemetry
 * overhead bar holds.  QZZ_QUICK=1 shrinks the request counts for
 * smoke runs.
 */

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "qzz.h"

using namespace qzz;

namespace {

struct RunResult
{
    int workers = 0;
    int clients = 0;
    int requests = 0;
    double hit_ratio_target = 0.0;
    double wall_ms = 0.0;
    double throughput_rps = 0.0;
    double cache_hit_rate = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
};

/** Monotonic seed source so "unique" circuits never repeat, within a
 *  run or across runs. */
uint64_t
nextUniqueSeed()
{
    static uint64_t seed = 1000;
    return ++seed;
}

ckt::QuantumCircuit
grc12(uint64_t seed)
{
    Rng rng(seed);
    return ckt::googleRandom(12, 6, rng);
}

RunResult
runOnce(const std::shared_ptr<const dev::Device> &device, int workers,
        int clients, int requests, double hit_ratio,
        const std::shared_ptr<svc::TraceLog> &trace = nullptr)
{
    // The repeated-circuit family a warm cache amortizes.
    const int kWarmSet = 8;
    std::vector<ckt::QuantumCircuit> warm_circuits;
    for (uint64_t s = 1; s <= kWarmSet; ++s)
        warm_circuits.push_back(grc12(s));

    // Pre-generate every request outside the timed region.  Warm and
    // cold requests are striped on a 10-request cycle so every
    // client's contiguous slice carries the target mix — a
    // front-loaded split would hand some clients all-warm and others
    // all-cold traffic instead of the interleaved repeated-submission
    // regime this bench is about.
    std::vector<ckt::QuantumCircuit> workload;
    workload.reserve(size_t(requests));
    for (int i = 0; i < requests; ++i) {
        const bool repeat = double(i % 10) < 10.0 * hit_ratio - 1e-9;
        workload.push_back(repeat
                               ? warm_circuits[size_t(i) % kWarmSet]
                               : grc12(nextUniqueSeed()));
    }

    svc::CompileServiceConfig config;
    config.num_workers = workers;
    config.cache.capacity = size_t(requests) + kWarmSet;
    config.trace = trace;
    svc::CompileService service(config);

    core::CompileOptions options;
    options.pulse = core::PulseMethod::Gaussian;
    options.sched = core::SchedPolicy::Zzx;

    // Warm the cache (and the shared pulse library + device tables)
    // outside the timed region.
    {
        std::vector<svc::CompileRequest> warmup;
        for (const ckt::QuantumCircuit &c : warm_circuits)
            warmup.push_back({c, device, options, {}});
        for (svc::RequestHandle &h : service.submitBatch(
                 std::move(warmup)))
            h.get();
    }

    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    std::vector<std::thread> client_threads;
    std::atomic<int> failures{0};
    const int per_client = requests / clients;
    for (int c = 0; c < clients; ++c) {
        client_threads.emplace_back([&, c] {
            const int begin = c * per_client;
            const int end =
                c == clients - 1 ? requests : begin + per_client;
            std::vector<svc::RequestHandle> handles;
            handles.reserve(size_t(end - begin));
            for (int i = begin; i < end; ++i)
                handles.push_back(service.submit(
                    {workload[size_t(i)], device, options, {}}));
            for (svc::RequestHandle &h : handles)
                if (!h.get().ok())
                    failures.fetch_add(1);
        });
    }
    for (std::thread &t : client_threads)
        t.join();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();
    if (failures.load() != 0)
        fatal("bench_service_throughput: " +
              std::to_string(failures.load()) + " requests failed");

    const svc::MetricsSnapshot m = service.metrics();
    RunResult r;
    r.workers = service.numWorkers();
    r.clients = clients;
    r.requests = requests;
    r.hit_ratio_target = hit_ratio;
    r.wall_ms = wall_ms;
    r.throughput_rps = double(requests) * 1e3 / wall_ms;
    // Exclude the kWarmSet warm-up misses from the reported rate.
    const uint64_t lookups = m.cache_hits + m.cache_misses;
    r.cache_hit_rate =
        lookups <= kWarmSet
            ? 0.0
            : double(m.cache_hits) / double(lookups - kWarmSet);
    r.p50_ms = m.latency_p50_ms;
    r.p95_ms = m.latency_p95_ms;
    r.p99_ms = m.latency_p99_ms;
    return r;
}

// ---------------------------------------------------------------------------
// Multi-process fabric: forked servers, socket clients, shared tier
// ---------------------------------------------------------------------------

namespace fs = std::filesystem;

struct MultiprocResult
{
    int servers = 0;
    int clients = 0;
    int requests = 0;
    double wall_ms = 0.0;
    double throughput_rps = 0.0;
};

/** Fork a svc::Server daemon listening on unix:@p sock over the
 *  shared @p artifact_dir.  The child never returns. */
pid_t
spawnServer(const std::string &sock, const std::string &artifact_dir,
            int workers, uint64_t capacity_bytes)
{
    const pid_t pid = fork();
    if (pid != 0)
        return pid;
    int code = 0;
    try {
        svc::SocketTransportConfig tc;
        tc.listen = "unix:" + sock;
        svc::SocketTransport transport(tc);
        svc::ServerConfig sc;
        sc.workers = workers;
        sc.artifact_dir = artifact_dir;
        sc.gc_capacity_bytes = capacity_bytes;
        svc::Server server(sc);
        code = server.serve(transport); // until SIGTERM
    } catch (const std::exception &e) {
        std::cerr << "bench server child: " << e.what() << "\n";
        code = 1;
    }
    _exit(code);
}

int
connectUnix(const std::string &path)
{
    for (int attempt = 0; attempt < 400; ++attempt) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return fd;
        ::close(fd);
        // The daemon may still be forking/binding.
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    return -1;
}

bool
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + off, data.size() - off, 0);
        if (n <= 0)
            return false;
        off += size_t(n);
    }
    return true;
}

/** Buffered '\n'-delimited reader (responses embed multi-KB program
 *  documents; byte-at-a-time reads would dominate the measurement). */
struct LineReader
{
    int fd;
    std::string buf;

    bool
    next(std::string &line)
    {
        for (;;) {
            const auto nl = buf.find('\n');
            if (nl != std::string::npos) {
                line.assign(buf, 0, nl);
                buf.erase(0, nl + 1);
                return true;
            }
            char chunk[65536];
            const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return false;
            buf.append(chunk, size_t(n));
        }
    }
};

/** Bytes currently held by .qzzprog files under @p dir. */
uint64_t
artifactBytes(const std::string &dir)
{
    uint64_t total = 0;
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (it->path().extension() != ".qzzprog")
            continue;
        std::error_code size_ec;
        const auto size = fs::file_size(it->path(), size_ec);
        if (!size_ec)
            total += size;
    }
    return total;
}

/** One socket client: pipeline @p requests GRC compiles (an even
 *  warm/cold mix) into the daemon at @p sock, then read every
 *  response in order.  Returns the count of ok responses. */
int
runSocketClient(const std::string &sock, int client_index, int requests,
                std::atomic<uint64_t> &unique_seed)
{
    const int fd = connectUnix(sock);
    if (fd < 0)
        return 0;
    std::string batch;
    for (int i = 0; i < requests; ++i) {
        // Even requests repeat one of 8 warm seeds (cache-hit lane);
        // odd ones are globally unique cold compiles.
        const uint64_t seed = (i % 2 == 0)
                                  ? uint64_t(1 + (i / 2) % 8)
                                  : unique_seed.fetch_add(1);
        batch += "{\"id\":\"c" + std::to_string(client_index) + "-" +
                 std::to_string(i) +
                 "\",\"benchmark\":\"GRC\",\"qubits\":10,\"seed\":" +
                 std::to_string(seed) + "}\n";
    }
    int ok = 0;
    if (sendAll(fd, batch)) {
        LineReader reader{fd, {}};
        std::string line;
        for (int i = 0; i < requests && reader.next(line); ++i)
            if (line.find("\"ok\":true") != std::string::npos)
                ++ok;
    }
    ::close(fd);
    return ok;
}

/** Run @p servers forked daemons with @p clients_per_server clients
 *  each; all daemons share @p artifact_dir.  @p peak_bytes returns
 *  the largest artifact-directory footprint observed during the
 *  load. */
MultiprocResult
runMultiproc(const std::string &tmp_root, int servers,
             int clients_per_server, int requests_per_client,
             int workers_per_server, uint64_t capacity_bytes,
             const std::string &artifact_dir, uint64_t &peak_bytes)
{
    std::vector<std::string> socks;
    std::vector<pid_t> pids;
    for (int s = 0; s < servers; ++s) {
        socks.push_back(tmp_root + "/qzz_bench_" + std::to_string(s) +
                        ".sock");
        fs::remove(socks.back());
        pids.push_back(spawnServer(socks[size_t(s)], artifact_dir,
                                   workers_per_server, capacity_bytes));
    }

    // The byte-bound monitor samples the shared directory while the
    // load runs: the write-path GC hook must keep the footprint
    // bounded *during* the burst, not only after the final pass.
    std::atomic<bool> done{false};
    std::atomic<uint64_t> peak{0};
    std::thread monitor([&] {
        while (!done.load()) {
            const uint64_t bytes = artifactBytes(artifact_dir);
            uint64_t prev = peak.load();
            while (bytes > prev && !peak.compare_exchange_weak(prev, bytes)) {
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
    });

    std::atomic<uint64_t> unique_seed{100000};
    std::atomic<int> ok_total{0};
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    std::vector<std::thread> client_threads;
    for (int s = 0; s < servers; ++s)
        for (int c = 0; c < clients_per_server; ++c)
            client_threads.emplace_back([&, s, c] {
                ok_total.fetch_add(
                    runSocketClient(socks[size_t(s)],
                                    s * clients_per_server + c,
                                    requests_per_client, unique_seed));
            });
    for (std::thread &t : client_threads)
        t.join();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();
    done.store(true);
    monitor.join();
    peak_bytes = std::max(peak_bytes, peak.load());

    const int expected =
        servers * clients_per_server * requests_per_client;
    if (ok_total.load() != expected)
        fatal("bench_service_throughput: multiproc " +
              std::to_string(expected - ok_total.load()) +
              " of " + std::to_string(expected) + " requests failed");

    // Final pass: one {"cmd":"gc"} settles the byte bound, then each
    // daemon drains on SIGTERM.
    {
        const int fd = connectUnix(socks[0]);
        if (fd >= 0) {
            sendAll(fd, "{\"cmd\":\"gc\"}\n");
            LineReader reader{fd, {}};
            std::string line;
            if (!reader.next(line) ||
                line.find("\"gc\":true") == std::string::npos)
                fatal("bench_service_throughput: gc verb failed");
            ::close(fd);
        }
    }
    for (const pid_t pid : pids)
        ::kill(pid, SIGTERM);
    for (const pid_t pid : pids) {
        int status = 0;
        ::waitpid(pid, &status, 0);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
            fatal("bench_service_throughput: server child died dirty");
    }

    MultiprocResult r;
    r.servers = servers;
    r.clients = servers * clients_per_server;
    r.requests = expected;
    r.wall_ms = wall_ms;
    r.throughput_rps = double(expected) * 1e3 / wall_ms;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_service_throughput.json";
    const bool quick = exp::quickMode();
    const int requests = quick ? 48 : 240;
    const int clients = 4;

    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    std::vector<int> worker_counts;
    for (int w : {1, 2, 4, 8})
        if (unsigned(w) <= hw)
            worker_counts.push_back(w);

    Rng rng(2);
    auto device = std::make_shared<const dev::Device>(
        graph::gridTopology(3, 4), dev::DeviceParams{}, rng);

    std::vector<RunResult> runs;
    for (int workers : worker_counts) {
        for (double hit_ratio : {0.0, 0.5, 1.0}) {
            RunResult r =
                runOnce(device, workers, clients, requests, hit_ratio);
            std::cout << "workers=" << r.workers
                      << " hit_ratio=" << r.hit_ratio_target
                      << " wall=" << formatF(r.wall_ms, 1) << " ms"
                      << " throughput=" << formatF(r.throughput_rps, 1)
                      << " req/s hit_rate="
                      << formatF(r.cache_hit_rate, 3)
                      << " p50=" << formatF(r.p50_ms, 2)
                      << " p99=" << formatF(r.p99_ms, 2) << " ms\n";
            runs.push_back(r);
        }
    }

    // Acceptance: warm >= 5x cold at the widest worker count.
    const int widest = worker_counts.back();
    double cold_rps = 0.0, warm_rps = 0.0;
    for (const RunResult &r : runs) {
        if (r.workers != widest)
            continue;
        if (r.hit_ratio_target == 0.0)
            cold_rps = r.throughput_rps;
        if (r.hit_ratio_target == 1.0)
            warm_rps = r.throughput_rps;
    }
    const double speedup = cold_rps > 0.0 ? warm_rps / cold_rps : 0.0;
    std::cout << "warm-vs-cold speedup at " << widest
              << " workers: " << formatF(speedup, 1) << "x\n";

    // ------------------------------------------------------------------
    // Telemetry overhead: the same mixed workload (hit_ratio 0.5, the
    // regime a production daemon actually runs) with span tracing off
    // versus on.  The arms are interleaved off/on/off/on and each
    // takes its best of two, so drift in machine load biases neither
    // arm.  Tracing must cost under 3% throughput — instrumentation
    // cheap enough to leave on in production is the design point.
    // ------------------------------------------------------------------
    const std::string trace_tmp =
        fs::temp_directory_path().string() + "/qzz_bench_trace";
    fs::remove_all(trace_tmp);
    fs::create_directories(trace_tmp);
    double traced_off_rps = 0.0, traced_on_rps = 0.0;
    uint64_t overhead_spans = 0;
    for (int rep = 0; rep < 2; ++rep) {
        const RunResult off =
            runOnce(device, widest, clients, requests, 0.5);
        traced_off_rps = std::max(traced_off_rps, off.throughput_rps);
        svc::TraceLogConfig trace_config;
        trace_config.path = trace_tmp + "/bench_trace_" +
                            std::to_string(rep) + ".jsonl";
        auto trace = std::make_shared<svc::TraceLog>(trace_config);
        const RunResult on =
            runOnce(device, widest, clients, requests, 0.5, trace);
        traced_on_rps = std::max(traced_on_rps, on.throughput_rps);
        overhead_spans = trace->spansEmitted();
    }
    const double overhead_ratio =
        traced_off_rps > 0.0 ? traced_on_rps / traced_off_rps : 0.0;
    std::cout << "telemetry overhead: tracing off "
              << formatF(traced_off_rps, 1) << " req/s, on "
              << formatF(traced_on_rps, 1) << " req/s (ratio "
              << formatF(overhead_ratio, 3) << ", " << overhead_spans
              << " spans/run)\n";
    fs::remove_all(trace_tmp);

    // ------------------------------------------------------------------
    // Multi-process fabric: 1 server vs 2 servers over one GC-bounded
    // artifact tier.  All forks happen while this process has no
    // running threads (the sweep above joined every client).
    // ------------------------------------------------------------------
    const uint64_t kCapacityBytes = 512 * 1024;
    const int mp_clients = 2;
    const int mp_requests = quick ? 12 : 48;
    const int mp_workers = std::max(1, int(hw) / 2);
    const std::string tmp_root =
        fs::temp_directory_path().string() + "/qzz_bench_multiproc";
    fs::remove_all(tmp_root);
    fs::create_directories(tmp_root);
    const std::string tier_single = tmp_root + "/tier_single";
    const std::string tier_dual = tmp_root + "/tier_dual";
    fs::create_directories(tier_single);
    fs::create_directories(tier_dual);

    uint64_t peak_bytes = 0;
    const MultiprocResult single =
        runMultiproc(tmp_root, 1, mp_clients, mp_requests, mp_workers,
                     kCapacityBytes, tier_single, peak_bytes);
    const MultiprocResult dual =
        runMultiproc(tmp_root, 2, mp_clients, mp_requests, mp_workers,
                     kCapacityBytes, tier_dual, peak_bytes);
    const double efficiency =
        single.throughput_rps > 0.0
            ? dual.throughput_rps / (2.0 * single.throughput_rps)
            : 0.0;
    const uint64_t settled_bytes = artifactBytes(tier_dual);
    std::cout << "multiproc: 1 server "
              << formatF(single.throughput_rps, 1) << " req/s, 2 servers "
              << formatF(dual.throughput_rps, 1)
              << " req/s, scale-out efficiency " << formatF(efficiency, 2)
              << ", peak tier " << peak_bytes << " B, settled "
              << settled_bytes << " B (capacity " << kCapacityBytes
              << " B)\n";
    fs::remove_all(tmp_root);

    // ------------------------------------------------------------------
    // Live calibration plane: cost of one epoch roll.  Each apply()
    // validates the snapshot, rebuilds the device tables, swaps the
    // live generation, sweeps superseded cache epochs, and notifies a
    // subscriber — the full invalidation fan-out a running daemon
    // pays per recalibration.  Report-only: rolls are control-plane
    // rare, so this bounds intrusiveness rather than gating it.
    // ------------------------------------------------------------------
    const int roll_count = quick ? 8 : 64;
    svc::ProgramCacheConfig roll_cache_config;
    roll_cache_config.capacity = 64;
    svc::ProgramCache roll_cache(roll_cache_config);
    svc::CalibrationHubConfig hub_config;
    hub_config.keep_epochs = 1;
    svc::CalibrationHub hub(hub_config, &roll_cache, nullptr);
    uint64_t roll_events = 0;
    const uint64_t sub_token =
        hub.subscribe([&](const std::string &) { ++roll_events; });
    Rng roll_rng(7);
    dev::Calibration roll_calib = dev::Calibration::sampled(
        device->topology(), dev::DeviceParams{}, roll_rng);
    const auto roll_t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < roll_count; ++i) {
        roll_calib =
            roll_calib.drifted(dev::CalibrationDrift{}, roll_rng);
        const svc::CalibrationUpdate update =
            hub.apply(device->topology(), 7, roll_calib, "bench");
        if (!update.applied) {
            std::cerr << "calibration roll rejected: " << update.error
                      << "\n";
            return 1;
        }
    }
    const double roll_wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - roll_t0)
            .count();
    hub.unsubscribe(sub_token);
    const double roll_mean_ms =
        roll_count > 0 ? roll_wall_ms / roll_count : 0.0;
    std::cout << "calibration roll: " << roll_count << " epochs in "
              << formatF(roll_wall_ms, 1) << " ms ("
              << formatF(roll_mean_ms, 3) << " ms/roll, "
              << roll_events << " events delivered)\n";

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot open " << out_path << "\n";
        return 1;
    }
    out.precision(12);
    out << "{\n  \"quick\": " << (quick ? "true" : "false")
        << ",\n  \"hardware_threads\": " << hw
        << ",\n  \"requests_per_run\": " << requests
        << ",\n  \"clients\": " << clients << ",\n  \"runs\": [\n";
    for (size_t i = 0; i < runs.size(); ++i) {
        const RunResult &r = runs[i];
        out << "    {\"workers\": " << r.workers
            << ", \"clients\": " << r.clients
            << ", \"requests\": " << r.requests
            << ", \"hit_ratio_target\": " << r.hit_ratio_target
            << ", \"wall_ms\": " << r.wall_ms
            << ", \"throughput_rps\": " << r.throughput_rps
            << ", \"cache_hit_rate\": " << r.cache_hit_rate
            << ", \"p50_ms\": " << r.p50_ms
            << ", \"p95_ms\": " << r.p95_ms
            << ", \"p99_ms\": " << r.p99_ms << "}"
            << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"speedup_workers\": " << widest
        << ",\n  \"warm_vs_cold_speedup\": " << speedup
        << ",\n  \"telemetry_overhead\": {"
        << "\n    \"workers\": " << widest
        << ",\n    \"hit_ratio\": 0.5"
        << ",\n    \"tracing_off_rps\": " << traced_off_rps
        << ",\n    \"tracing_on_rps\": " << traced_on_rps
        << ",\n    \"ratio\": " << overhead_ratio
        << ",\n    \"spans_per_run\": " << overhead_spans
        << "\n  },\n  \"multiproc\": {"
        << "\n    \"workers_per_server\": " << mp_workers
        << ",\n    \"clients_per_server\": " << mp_clients
        << ",\n    \"requests_per_client\": " << mp_requests
        << ",\n    \"capacity_bytes\": " << kCapacityBytes
        << ",\n    \"peak_tier_bytes\": " << peak_bytes
        << ",\n    \"settled_tier_bytes\": " << settled_bytes
        << ",\n    \"single_server_rps\": " << single.throughput_rps
        << ",\n    \"dual_server_rps\": " << dual.throughput_rps
        << ",\n    \"scale_out_efficiency\": " << efficiency
        << "\n  },\n  \"calib_roll\": {"
        << "\n    \"rolls\": " << roll_count
        << ",\n    \"wall_ms\": " << roll_wall_ms
        << ",\n    \"mean_roll_ms\": " << roll_mean_ms
        << ",\n    \"events_delivered\": " << roll_events
        << "\n  }\n}\n";
    out.close();
    std::cout << "wrote " << out_path << "\n";

    bool failed = false;
    if (speedup < 5.0) {
        std::cerr << "FAIL: warm cache speedup " << formatF(speedup, 2)
                  << "x below the 5x acceptance bar\n";
        failed = true;
    }
    if (overhead_ratio < 0.97) {
        std::cerr << "FAIL: tracing-on throughput is "
                  << formatF(overhead_ratio, 3)
                  << "x tracing-off, below the 0.97x acceptance bar\n";
        failed = true;
    }
    // The settled bound is exact; under load the write-path hook is
    // allowed one capacity of transient overshoot (concurrent writers
    // finish their in-flight artifacts before one of them collects).
    if (settled_bytes > kCapacityBytes) {
        std::cerr << "FAIL: artifact tier settled at " << settled_bytes
                  << " B, above the " << kCapacityBytes
                  << " B capacity\n";
        failed = true;
    }
    if (peak_bytes > 2 * kCapacityBytes) {
        std::cerr << "FAIL: artifact tier peaked at " << peak_bytes
                  << " B under load, above 2x the " << kCapacityBytes
                  << " B capacity\n";
        failed = true;
    }
    if (efficiency < 0.7) {
        if (hw >= 4) {
            std::cerr << "FAIL: scale-out efficiency "
                      << formatF(efficiency, 2)
                      << " below the 0.7 acceptance bar\n";
            failed = true;
        } else {
            std::cout << "scale-out efficiency "
                      << formatF(efficiency, 2)
                      << " below 0.7 (report-only: " << hw
                      << " hardware threads)\n";
        }
    }
    return failed ? 1 : 0;
}
