/**
 * @file
 * Fig. 24: execution time of every benchmark under ZZXSched relative
 * to ParSched (the parallelism cost of suppression), plus an alpha
 * ablation showing the NQ/NC-vs-time trade-off knob.
 */

#include "bench_common.h"

using namespace qzz;

int
main()
{
    bench::banner("Figure 24",
                  "relative execution time (ZZXSched / ParSched)");
    exp::SuiteConfig scfg;
    if (exp::quickMode())
        scfg.max_qubits = 6;
    auto suite = exp::buildSuite(scfg);

    const core::GateDurations durations{};
    Table table({"benchmark", "ParSched (ns)", "ZZXSched (ns)",
                 "relative"});
    double worst = 0.0;
    for (const auto &entry : suite) {
        ckt::QuantumCircuit native = ckt::decomposeToNative(
            ckt::routeCircuit(entry.circuit, entry.device.graph())
                .circuit);
        core::Schedule par =
            core::parSchedule(native, entry.device, durations);
        core::Schedule zzx =
            core::zzxSchedule(native, entry.device, durations);
        const double rel = zzx.executionTime() / par.executionTime();
        worst = std::max(worst, rel);
        table.addRow({entry.label, formatF(par.executionTime(), 0),
                      formatF(zzx.executionTime(), 0),
                      formatX(rel, 2)});
    }
    table.print(std::cout);
    std::cout << "\nworst-case slowdown: " << formatX(worst, 2)
              << "  (paper: typically < 2x)\n\n";

    // Ablation: alpha's effect on layers and suppression for one
    // representative two-qubit-gate-heavy instance.
    const auto &entry = [&]() -> const exp::SuiteEntry & {
        for (const auto &e : suite)
            if (e.label == "QFT-6")
                return e;
        return suite.front();
    }();
    ckt::QuantumCircuit native = ckt::decomposeToNative(
        ckt::routeCircuit(entry.circuit, entry.device.graph()).circuit);
    Table ablation({"alpha", "layers", "exec (ns)", "mean NC",
                    "max NQ"});
    ablation.setTitle("alpha ablation on " + entry.label);
    for (double alpha : {0.0, 0.25, 0.5, 1.0, 2.0}) {
        core::ZzxOptions opt;
        opt.suppression.alpha = alpha;
        core::Schedule s =
            core::zzxSchedule(native, entry.device, durations, opt);
        ablation.addRow({formatF(alpha, 2),
                         std::to_string(s.physicalLayerCount()),
                         formatF(s.executionTime(), 0),
                         formatF(s.meanNc(), 2),
                         std::to_string(s.maxNq())});
    }
    ablation.print(std::cout);
    return 0;
}
