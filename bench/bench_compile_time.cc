/**
 * @file
 * Compilation-speed microbenchmarks (google-benchmark): the paper
 * reports < 0.25 s per benchmark for the whole co-optimizing compile
 * (Sec. 7.3).  Measures routing + lowering + ZZXSched, and the inner
 * alpha-optimal suppression queries.
 */

#include <benchmark/benchmark.h>

#include "qzz.h"

using namespace qzz;

namespace {

dev::Device
makeDevice(int rows, int cols)
{
    Rng rng(2);
    return dev::Device(graph::gridTopology(rows, cols),
                       dev::DeviceParams{}, rng);
}

void
BM_ZzxCompileQft9(benchmark::State &state)
{
    auto device = makeDevice(3, 3);
    auto circuit = ckt::qft(9);
    for (auto _ : state) {
        auto native = ckt::decomposeToNative(
            ckt::routeCircuit(circuit, device.graph()).circuit);
        auto sched = core::zzxSchedule(native, device,
                                       core::GateDurations{});
        benchmark::DoNotOptimize(sched.layers.size());
    }
}
BENCHMARK(BM_ZzxCompileQft9)->Unit(benchmark::kMillisecond);

void
BM_ZzxCompileGrc12(benchmark::State &state)
{
    auto device = makeDevice(3, 4);
    Rng rng(3);
    auto circuit = ckt::googleRandom(12, 6, rng);
    for (auto _ : state) {
        auto native = ckt::decomposeToNative(
            ckt::routeCircuit(circuit, device.graph()).circuit);
        auto sched = core::zzxSchedule(native, device,
                                       core::GateDurations{});
        benchmark::DoNotOptimize(sched.layers.size());
    }
}
BENCHMARK(BM_ZzxCompileGrc12)->Unit(benchmark::kMillisecond);

void
BM_ParCompileGrc12(benchmark::State &state)
{
    auto device = makeDevice(3, 4);
    Rng rng(3);
    auto circuit = ckt::googleRandom(12, 6, rng);
    for (auto _ : state) {
        auto native = ckt::decomposeToNative(
            ckt::routeCircuit(circuit, device.graph()).circuit);
        auto sched = core::parSchedule(native, device,
                                       core::GateDurations{});
        benchmark::DoNotOptimize(sched.layers.size());
    }
}
BENCHMARK(BM_ParCompileGrc12)->Unit(benchmark::kMillisecond);

void
BM_AlphaOptimalSuppression(benchmark::State &state)
{
    core::SuppressionSolver solver(graph::gridTopology(3, 4));
    for (auto _ : state) {
        auto res = solver.solve({5, 6});
        benchmark::DoNotOptimize(res.metrics.nc);
    }
}
BENCHMARK(BM_AlphaOptimalSuppression)->Unit(benchmark::kMicrosecond);

void
BM_DualGraphConstruction(benchmark::State &state)
{
    auto topo = graph::gridTopology(5, 5);
    for (auto _ : state) {
        auto emb = topo.embedding();
        auto dual = graph::buildDual(emb);
        benchmark::DoNotOptimize(dual.g.numEdges());
    }
}
BENCHMARK(BM_DualGraphConstruction)->Unit(benchmark::kMicrosecond);

void
BM_PulseLayerStep12Qubits(benchmark::State &state)
{
    auto device = makeDevice(3, 4);
    pulse::PulseLibrary lib = pulse::PulseLibrary::gaussian();
    ckt::QuantumCircuit c(12);
    for (int q = 0; q < 12; ++q)
        c.sx(q);
    auto sched =
        core::parSchedule(c, device, core::GateDurations{});
    sim::PulseScheduleSimulator sim(device, lib);
    for (auto _ : state) {
        auto psi = sim.run(sched);
        benchmark::DoNotOptimize(psi.norm());
    }
}
BENCHMARK(BM_PulseLayerStep12Qubits)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
