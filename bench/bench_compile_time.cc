/**
 * @file
 * Compilation-speed microbenchmarks (google-benchmark): the paper
 * reports < 0.25 s per benchmark for the whole co-optimizing compile
 * (Sec. 7.3).  Measures routing + lowering + ZZXSched, the inner
 * alpha-optimal suppression queries, and the overhead of the
 * stage-based Compiler API (pipeline bookkeeping, diagnostics,
 * batch fan-out) over the raw scheduling calls.
 *
 * Set QZZ_QUICK=1 for a fast smoke run (used by the CI smoke job,
 * which publishes the JSON output as the BENCH_compile_time.json
 * artifact so per-PR API-overhead regressions stay visible).
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "qzz.h"

using namespace qzz;

namespace {

dev::Device
makeDevice(int rows, int cols)
{
    Rng rng(2);
    return dev::Device(graph::gridTopology(rows, cols),
                       dev::DeviceParams{}, rng);
}

void
BM_ZzxCompileQft9(benchmark::State &state)
{
    auto device = makeDevice(3, 3);
    auto circuit = ckt::qft(9);
    for (auto _ : state) {
        auto native = ckt::decomposeToNative(
            ckt::routeCircuit(circuit, device.graph()).circuit);
        auto sched = core::zzxSchedule(native, device,
                                       core::GateDurations{});
        benchmark::DoNotOptimize(sched.layers.size());
    }
}
BENCHMARK(BM_ZzxCompileQft9)->Unit(benchmark::kMillisecond);

void
BM_ZzxCompileGrc12(benchmark::State &state)
{
    auto device = makeDevice(3, 4);
    Rng rng(3);
    auto circuit = ckt::googleRandom(12, 6, rng);
    for (auto _ : state) {
        auto native = ckt::decomposeToNative(
            ckt::routeCircuit(circuit, device.graph()).circuit);
        auto sched = core::zzxSchedule(native, device,
                                       core::GateDurations{});
        benchmark::DoNotOptimize(sched.layers.size());
    }
}
BENCHMARK(BM_ZzxCompileGrc12)->Unit(benchmark::kMillisecond);

void
BM_ParCompileGrc12(benchmark::State &state)
{
    auto device = makeDevice(3, 4);
    Rng rng(3);
    auto circuit = ckt::googleRandom(12, 6, rng);
    for (auto _ : state) {
        auto native = ckt::decomposeToNative(
            ckt::routeCircuit(circuit, device.graph()).circuit);
        auto sched = core::parSchedule(native, device,
                                       core::GateDurations{});
        benchmark::DoNotOptimize(sched.layers.size());
    }
}
BENCHMARK(BM_ParCompileGrc12)->Unit(benchmark::kMillisecond);

void
BM_AlphaOptimalSuppression(benchmark::State &state)
{
    core::SuppressionSolver solver(graph::gridTopology(3, 4));
    for (auto _ : state) {
        auto res = solver.solve({5, 6});
        benchmark::DoNotOptimize(res.metrics.nc);
    }
}
BENCHMARK(BM_AlphaOptimalSuppression)->Unit(benchmark::kMicrosecond);

void
BM_DualGraphConstruction(benchmark::State &state)
{
    auto topo = graph::gridTopology(5, 5);
    for (auto _ : state) {
        auto emb = topo.embedding();
        auto dual = graph::buildDual(emb);
        benchmark::DoNotOptimize(dual.g.numEdges());
    }
}
BENCHMARK(BM_DualGraphConstruction)->Unit(benchmark::kMicrosecond);

// --- Stage-based Compiler API overhead -------------------------------

/** Full Compiler pipeline (route+lower+schedule+pulses); comparing
 *  against BM_ZzxCompileGrc12 isolates the API overhead. */
void
BM_CompilerZzxGrc12(benchmark::State &state)
{
    auto device = makeDevice(3, 4);
    Rng rng(3);
    auto circuit = ckt::googleRandom(12, 6, rng);
    auto compiler = core::CompilerBuilder(device)
                        .pulseMethod(core::PulseMethod::Gaussian)
                        .schedPolicy(core::SchedPolicy::Zzx)
                        .build();
    for (auto _ : state) {
        auto result = compiler.compile(circuit);
        benchmark::DoNotOptimize(result.program.schedule.layers.size());
    }
}
BENCHMARK(BM_CompilerZzxGrc12)->Unit(benchmark::kMillisecond);

/** Legacy shim path (builds a fresh Compiler per call). */
void
BM_ShimCompileGrc12(benchmark::State &state)
{
    auto device = makeDevice(3, 4);
    Rng rng(3);
    auto circuit = ckt::googleRandom(12, 6, rng);
    core::CompileOptions opt;
    opt.pulse = core::PulseMethod::Gaussian;
    opt.sched = core::SchedPolicy::Zzx;
    for (auto _ : state) {
        auto prog = core::compileForDevice(circuit, device, opt);
        benchmark::DoNotOptimize(prog.schedule.layers.size());
    }
}
BENCHMARK(BM_ShimCompileGrc12)->Unit(benchmark::kMillisecond);

/** Per-device table precomputation paid once per CompilerBuilder. */
void
BM_CompilerBuild(benchmark::State &state)
{
    auto device = makeDevice(3, 4);
    for (auto _ : state) {
        auto compiler = core::CompilerBuilder(device)
                            .pulseMethod(core::PulseMethod::Gaussian)
                            .schedPolicy(core::SchedPolicy::Zzx)
                            .build();
        benchmark::DoNotOptimize(&compiler.device());
    }
}
BENCHMARK(BM_CompilerBuild)->Unit(benchmark::kMicrosecond);

/** Batch fan-out: 8 GRC-12 circuits over N worker threads. */
void
BM_CompileBatch8(benchmark::State &state)
{
    auto device = makeDevice(3, 4);
    std::vector<ckt::QuantumCircuit> workload;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        Rng rng(seed);
        workload.push_back(ckt::googleRandom(12, 6, rng));
    }
    auto compiler = core::CompilerBuilder(device)
                        .pulseMethod(core::PulseMethod::Gaussian)
                        .schedPolicy(core::SchedPolicy::Zzx)
                        .build();
    core::BatchOptions opt;
    opt.num_threads = int(state.range(0));
    for (auto _ : state) {
        auto batch = compiler.compileBatch(workload, opt);
        benchmark::DoNotOptimize(batch.results.size());
    }
}
BENCHMARK(BM_CompileBatch8)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_PulseLayerStep12Qubits(benchmark::State &state)
{
    auto device = makeDevice(3, 4);
    pulse::PulseLibrary lib = pulse::PulseLibrary::gaussian();
    ckt::QuantumCircuit c(12);
    for (int q = 0; q < 12; ++q)
        c.sx(q);
    auto sched =
        core::parSchedule(c, device, core::GateDurations{});
    sim::PulseScheduleSimulator sim(device, lib);
    for (auto _ : state) {
        auto psi = sim.run(sched);
        benchmark::DoNotOptimize(psi.norm());
    }
}
BENCHMARK(BM_PulseLayerStep12Qubits)->Unit(benchmark::kMillisecond);

} // namespace

/** BENCHMARK_MAIN(), plus quick mode: QZZ_QUICK=1 caps the per-bench
 *  measuring time unless the caller passed --benchmark_min_time
 *  explicitly. */
int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    std::string quick_flag = "--benchmark_min_time=0.05";
    if (exp::quickMode()) {
        bool has_min_time = false;
        for (const char *a : args)
            has_min_time = has_min_time ||
                           std::string(a).rfind("--benchmark_min_time",
                                                0) == 0;
        if (!has_min_time)
            args.insert(args.begin() + 1, quick_flag.data());
    }
    int args_count = int(args.size());
    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count,
                                               args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
