/**
 * @file
 * Fig. 16: ZZ-crosstalk suppression performance of Rx(pi/2) and I
 * pulses — infidelity versus crosstalk strength for Gaussian,
 * OptCtrl, DCG and Pert pulses on the two-qubit basic region.
 */

#include "bench_common.h"

using namespace qzz;

namespace {

void
runGate(pulse::PulseGate gate, const la::CMatrix &target)
{
    struct Entry
    {
        std::string name;
        pulse::PulseProgram program;
    };
    const auto provider = core::defaultPulseProvider();
    std::vector<Entry> entries;
    entries.push_back(
        {"Gaussian",
         pulse::PulseLibrary::gaussian().get(gate)});
    entries.push_back(
        {"OptCtrl",
         provider->library(core::PulseMethod::OptCtrl)->get(gate)});
    entries.push_back(
        {"DCG", provider->library(core::PulseMethod::DCG)->get(gate)});
    entries.push_back(
        {"Pert",
         provider->library(core::PulseMethod::Pert)->get(gate)});

    Table table({"lambda/2pi (MHz)", "Gaussian", "OptCtrl",
                 "DCG", "Pert"});
    table.setTitle("Infidelity of " + pulse::pulseGateName(gate) +
                   " vs crosstalk strength (lower is better)");
    for (double l_mhz : bench::lambdaSweepMhz()) {
        std::vector<std::string> row{formatF(l_mhz, 2)};
        for (const Entry &e : entries) {
            const double infid = core::oneQubitCrosstalkInfidelity(
                e.program, target, mhz(l_mhz), {}, 0.01);
            row.push_back(bench::sci(bench::clampInfidelity(infid)));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    bench::banner("Figure 16",
                  "single-qubit ZZ suppression (Rx(pi/2) and I)");
    runGate(pulse::PulseGate::SX, la::expPauli(kPi / 4.0, 0.0, 0.0));
    runGate(pulse::PulseGate::Identity, la::identity2());
    std::cout << "Expected shape: optimized pulses sit orders of"
                 " magnitude below Gaussian;\nPert floors lowest"
                 " (first-order term cancelled => lambda^4 scaling),\n"
                 "DCG pays for its longer duration.\n";
    return 0;
}
