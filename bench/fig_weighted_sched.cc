/**
 * @file
 * Calibration-weighted scheduling experiment (beyond the paper):
 * ParSched vs ZZXSched vs ZzxWeighted on devices whose per-edge ZZ
 * rates are Gaussian-jittered around the nominal 200 kHz
 * (dev::Calibration::jittered(), ZZ spread in {0, 25%, 50%}).
 *
 * For each (spread, policy) cell the bench reports the calibrated
 * mean residual ZZ per layer (CompileDiagnostics::mean_residual_zz —
 * the quantity ZzxWeighted optimizes) and the Lindblad-simulated
 * fidelity under always-on crosstalk plus T1/T2 decoherence.  At
 * spread 0 the snapshot is uniform and ZzxWeighted must reproduce
 * classic ZZXSched bit-identically (checked via
 * svc::programArtifactString).
 *
 * Emits BENCH_weighted_sched.json (path overridable via argv[1]) and
 * exits non-zero unless the uniform snapshot is bit-identical and, on
 * every jittered snapshot, ZzxWeighted achieves strictly lower mean
 * residual ZZ than ParSched.  The comparison against classic
 * ZZXSched is reported but not gated: the alpha * NQ term can trade
 * a sliver of residual for smaller regions.  QZZ_QUICK=1 shrinks the
 * instance for smoke runs.
 */

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "bench_common.h"

using namespace qzz;

namespace {

struct Cell
{
    double spread = 0.0;
    std::string policy;
    double mean_residual_zz = 0.0; ///< rad/ns per physical layer
    double mean_nc = 0.0;
    double fidelity = 0.0;
    double execution_time_ns = 0.0;
    int physical_layers = 0;
};

ckt::QuantumCircuit
ghz(int n)
{
    ckt::QuantumCircuit c(n, "GHZ-" + std::to_string(n));
    c.h(0);
    for (int q = 0; q + 1 < n; ++q)
        c.cx(q, q + 1);
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = [] {
        const char *env = std::getenv("QZZ_QUICK");
        return env != nullptr && env[0] == '1';
    }();
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_weighted_sched.json";

    bench::banner("Weighted scheduling",
                  "ParSched / ZZXSched / ZzxWeighted under jittered "
                  "per-edge ZZ");

    // 2x3 grid (2x2 quick), finite coherence so the Lindblad channel
    // matters, and coupling_stddev = 0 so the *only* heterogeneity is
    // the jitter under study: spread 0 is an exactly uniform snapshot.
    const int qubits = quick ? 4 : 6;
    const auto [rows, cols] = dev::Device::gridDimsForQubits(qubits);
    const graph::Topology topo = graph::gridTopology(rows, cols);
    dev::DeviceParams params;
    params.coupling_stddev = 0.0;
    params.t1 = us(200.0);
    params.t2 = us(200.0);

    const ckt::QuantumCircuit circuit = ghz(qubits);
    sim::PulseSimOptions sopt;
    sopt.dt = quick ? 0.2 : 0.1;

    const core::SchedPolicy policies[] = {core::SchedPolicy::Par,
                                          core::SchedPolicy::Zzx,
                                          core::SchedPolicy::ZzxWeighted};

    std::vector<Cell> cells;
    bool uniform_bit_identical = true;
    for (double spread : {0.0, 0.25, 0.5}) {
        dev::CalibrationJitter jitter;
        jitter.t1_rel = 0.0;
        jitter.t2_rel = 0.0;
        jitter.anharmonicity_rel = 0.0;
        jitter.zz_rel = spread;
        Rng rng(99);
        const dev::Device device(
            topo, dev::Calibration::jittered(topo, params, jitter, rng));

        Table table({"policy", "mean residual ZZ (rad/ns)", "mean NC",
                     "fidelity", "exec (ns)"});
        table.setTitle("ZZ spread " + formatF(100.0 * spread, 0) + "%");

        std::string classic_artifact, weighted_artifact;
        for (core::SchedPolicy sched : policies) {
            core::CompileOptions opt;
            opt.pulse = core::PulseMethod::Pert;
            opt.sched = sched;
            const core::Compiler compiler =
                core::CompilerBuilder(device).options(opt).build();
            const core::CompileResult compiled =
                compiler.compile(circuit);
            if (!compiled.ok())
                fatal("compile failed: " + compiled.status.message);
            if (spread == 0.0 && sched == core::SchedPolicy::Zzx)
                classic_artifact =
                    svc::programArtifactString(compiled.program);

            Cell cell;
            cell.spread = spread;
            cell.policy = core::schedPolicyName(sched);
            cell.mean_residual_zz =
                compiled.diagnostics.mean_residual_zz;
            cell.mean_nc = compiled.diagnostics.mean_nc;
            cell.execution_time_ns =
                compiled.diagnostics.execution_time_ns;
            cell.physical_layers = compiled.diagnostics.physical_layers;
            cell.fidelity = exp::evaluateFidelityWithDecoherence(
                                circuit, compiler, sopt)
                                .fidelity;
            if (spread == 0.0 &&
                sched == core::SchedPolicy::ZzxWeighted) {
                // Normalize the recorded policy so the artifact
                // comparison covers every other byte.
                core::CompiledProgram renamed = compiled.program;
                renamed.sched_policy = core::SchedPolicy::Zzx;
                weighted_artifact = svc::programArtifactString(renamed);
            }

            table.addRow({cell.policy, bench::sci(cell.mean_residual_zz),
                          formatF(cell.mean_nc, 2),
                          formatF(cell.fidelity, 4),
                          formatF(cell.execution_time_ns, 0)});
            cells.push_back(std::move(cell));
        }
        if (!classic_artifact.empty() &&
            classic_artifact != weighted_artifact)
            uniform_bit_identical = false;
        table.print(std::cout);
        std::cout << "\n";
        std::cerr << "[fig_weighted_sched] spread "
                  << formatF(100.0 * spread, 0) << "% done\n";
    }

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot open " << out_path << "\n";
        return 1;
    }
    out.precision(12);
    out << "{\n  \"quick\": " << (quick ? "true" : "false")
        << ",\n  \"qubits\": " << qubits
        << ",\n  \"uniform_bit_identical\": "
        << (uniform_bit_identical ? "true" : "false")
        << ",\n  \"cells\": [\n";
    for (size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        out << "    {\"zz_spread\": " << c.spread << ", \"policy\": \""
            << c.policy << "\", \"mean_residual_zz\": "
            << c.mean_residual_zz << ", \"mean_nc\": " << c.mean_nc
            << ", \"fidelity\": " << c.fidelity
            << ", \"execution_time_ns\": " << c.execution_time_ns
            << ", \"physical_layers\": " << c.physical_layers << "}"
            << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    out.close();
    std::cout << "wrote " << out_path << "\n";

    // Acceptance: the uniform snapshot reproduces classic ZZXSched
    // bit-identically, and every jittered snapshot shows the weighted
    // policy strictly below ParSched on the metric it optimizes.
    // (Versus classic ZZXSched the weighted objective can trade a
    // sliver of residual for smaller regions — the alpha * NQ term
    // weighs relatively more once edge weights drop below 1 — so that
    // comparison is reported, not gated.)
    bool ok = uniform_bit_identical;
    if (!uniform_bit_identical)
        std::cerr << "FAIL: ZzxWeighted != ZZXSched on the uniform "
                     "snapshot\n";
    // Gate every jittered spread actually swept (derived from the
    // cells, so extending the sweep can never silently skip the bar).
    std::vector<double> gated;
    for (const Cell &c : cells)
        if (c.spread > 0.0 &&
            std::find(gated.begin(), gated.end(), c.spread) ==
                gated.end())
            gated.push_back(c.spread);
    for (double spread : gated) {
        double par = -1.0, zzx = -1.0, weighted = -1.0;
        for (const Cell &c : cells) {
            if (c.spread != spread)
                continue;
            if (c.policy == "ParSched")
                par = c.mean_residual_zz;
            else if (c.policy == "ZZXSched")
                zzx = c.mean_residual_zz;
            else if (c.policy == "ZzxWeighted")
                weighted = c.mean_residual_zz;
        }
        std::cout << "spread " << formatF(100.0 * spread, 0)
                  << "%: residual ZZ vs ZZXSched "
                  << formatX(weighted / std::max(zzx, 1e-30)) << "\n";
        if (!(weighted >= 0.0 && weighted < par)) {
            std::cerr << "FAIL: at spread " << spread
                      << " mean_residual_zz (ParSched " << bench::sci(par)
                      << ", ZzxWeighted " << bench::sci(weighted)
                      << ") violates ZzxWeighted < ParSched\n";
            ok = false;
        }
    }
    std::cout << (ok ? "weighted-scheduling acceptance OK\n"
                     : "weighted-scheduling acceptance FAILED\n");
    return ok ? 0 : 1;
}
