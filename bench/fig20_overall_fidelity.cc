/**
 * @file
 * Fig. 20: overall fidelity improvements on the 21-instance benchmark
 * suite under always-on ZZ crosstalk: Gau+ParSched (baseline) vs
 * OptCtrl+ZZXSched and Pert+ZZXSched, plus the improvement factor.
 *
 * Set QZZ_QUICK=1 to restrict to <= 6 qubits for a fast smoke run.
 */

#include <cmath>

#include "bench_common.h"

using namespace qzz;

int
main()
{
    bench::banner("Figure 20",
                  "overall fidelity under ZZ crosstalk (21 instances)");
    exp::SuiteConfig scfg;
    if (exp::quickMode())
        scfg.max_qubits = 6;
    auto suite = exp::buildSuite(scfg);
    sim::PulseSimOptions sim_opt;
    sim_opt.dt = 0.1; // Strang error ~1e-4, well below the
                      // fidelity differences reported here


    const core::CompileOptions configs[] = {
        {core::PulseMethod::Gaussian, core::SchedPolicy::Par, {}},
        {core::PulseMethod::OptCtrl, core::SchedPolicy::Zzx, {}},
        {core::PulseMethod::Pert, core::SchedPolicy::Zzx, {}},
    };

    Table table({"benchmark", "Gau+ParSched", "OptCtrl+ZZXSched",
                 "Pert+ZZXSched", "improvement"});
    double log_sum = 0.0;
    double best_improvement = 0.0;
    int count = 0;
    for (const auto &entry : suite) {
        double fid[3] = {0.0, 0.0, 0.0};
        for (int i = 0; i < 3; ++i) {
            const core::Compiler compiler =
                core::CompilerBuilder(entry.device)
                    .options(configs[i])
                    .build();
            fid[i] = exp::evaluateFidelity(entry.circuit, compiler,
                                           sim_opt)
                         .fidelity;
        }
        const double improvement =
            fid[2] / std::max(fid[0], 1e-6);
        log_sum += std::log(std::max(improvement, 1e-6));
        best_improvement = std::max(best_improvement, improvement);
        ++count;
        table.addRow({entry.label, formatF(fid[0], 4),
                      formatF(fid[1], 4), formatF(fid[2], 4),
                      formatX(improvement)});
        // Stream progress: large instances take a while.
        std::cerr << "[fig20] " << entry.label << " done\n";
    }
    table.print(std::cout);
    std::cout << "\ngeometric-mean improvement: "
              << formatX(std::exp(log_sum / std::max(count, 1)))
              << ", max: " << formatX(best_improvement)
              << "  (paper: 11x average, up to 81x)\n";
    return 0;
}
