/**
 * @file
 * Fig. 18: suppression performance of Rx(pi/2) pulses on the 5-level
 * transmon with leakage, with and without DRAG, for anharmonicities
 * of -200 / -300 / -400 MHz.
 */

#include "bench_common.h"

using namespace qzz;

namespace {

pulse::PulseProgram
withDrag(const pulse::PulseProgram &p, double alpha)
{
    auto pair = pulse::applyDrag(p.x_a, p.y_a, alpha);
    return pulse::PulseProgram::singleQubit(pair.x, pair.y);
}

} // namespace

int
main()
{
    bench::banner("Figure 18",
                  "Rx(pi/2) under ZZ crosstalk and leakage (5-level "
                  "transmon, DRAG)");
    const la::CMatrix target = la::expPauli(kPi / 4.0, 0.0, 0.0);
    const auto provider = core::defaultPulseProvider();
    const pulse::PulseProgram gauss =
        pulse::PulseLibrary::gaussian().get(pulse::PulseGate::SX);
    const pulse::PulseProgram pert =
        provider->library(core::PulseMethod::Pert)
            ->get(pulse::PulseGate::SX);
    const pulse::PulseProgram octl =
        provider->library(core::PulseMethod::OptCtrl)
            ->get(pulse::PulseGate::SX);
    const pulse::PulseProgram dcg =
        provider->library(core::PulseMethod::DCG)
            ->get(pulse::PulseGate::SX);

    for (double anh_mhz : {-200.0, -300.0, -400.0}) {
        const double alpha = mhz(anh_mhz);
        Table table({"lambda/2pi (MHz)", "Pert w/o DRAG",
                     "Gaussian w/ DRAG", "Pert w/ DRAG",
                     "OptCtrl w/ DRAG", "DCG w/ DRAG"});
        table.setTitle("anharmonicity " + formatF(anh_mhz, 0) +
                       " MHz");
        for (double l_mhz : {0.0, 0.5, 1.0, 1.5, 2.0}) {
            sim::TransmonConfig cfg;
            cfg.anharmonicity = alpha;
            cfg.lambda = mhz(l_mhz);
            auto cell = [&](const pulse::PulseProgram &p) {
                return bench::sci(bench::clampInfidelity(
                    sim::transmonCrosstalkInfidelity(p, target, cfg,
                                                     0.005)));
            };
            table.addRow({formatF(l_mhz, 2), cell(pert),
                          cell(withDrag(gauss, alpha)),
                          cell(withDrag(pert, alpha)),
                          cell(withDrag(octl, alpha)),
                          cell(withDrag(dcg, alpha))});
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Expected shape: Pert w/ DRAG suppresses both ZZ"
                 " (vs Gaussian w/ DRAG) and\nleakage (vs Pert w/o"
                 " DRAG) simultaneously.\n";
    return 0;
}
