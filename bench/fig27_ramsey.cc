/**
 * @file
 * Fig. 27: Ramsey experiments on the three-qubit chain Q1-Q2-Q3.
 * Groups (a) Q2-Q1, (b) Q2-Q3, (c) both couplings together; original
 * circuit A (Gaussian, idle wait) versus compiled circuits B and C
 * (ZZ-suppressing identity pulses; DCG as on the paper's device, plus
 * the Pert identity as an extension).
 */

#include "bench_common.h"

using namespace qzz;

namespace {

sim::RamseyConfig
baseConfig(const pulse::PulseLibrary &lib)
{
    sim::RamseyConfig cfg;
    cfg.lambda12 = khz(50.0);
    cfg.lambda23 = khz(50.0);
    cfg.library = &lib;
    cfg.segments = 500;
    cfg.dt = 0.02;
    return cfg;
}

void
row(Table &table, const std::string &group, const std::string &label,
    const pulse::PulseLibrary &lib, sim::RamseyCircuit circuit,
    bool probe_q1, bool probe_q3)
{
    sim::RamseyConfig cfg = baseConfig(lib);
    cfg.circuit = circuit;
    sim::ZzMeasurement zz =
        sim::measureEffectiveZz(cfg, probe_q1, probe_q3);
    table.addRow({group, label, lib.name(),
                  formatF(zz.f_ground * 1e3, 4),
                  formatF(zz.f_excited * 1e3, 4),
                  formatF(zz.zz_khz, 2)});
}

} // namespace

int
main()
{
    bench::banner("Figure 27", "Ramsey experiments (effective ZZ)");
    // Shared ownership keeps the libraries alive independent of the
    // process-wide cache.
    const auto provider = core::defaultPulseProvider();
    const pulse::PulseLibrary &gau = pulse::PulseLibrary::gaussian();
    const auto dcg_lib = provider->library(core::PulseMethod::DCG);
    const auto pert_lib = provider->library(core::PulseMethod::Pert);
    const pulse::PulseLibrary &dcg = *dcg_lib;
    const pulse::PulseLibrary &pert = *pert_lib;

    Table table({"group", "circuit", "pulses", "f0 (MHz)", "f1 (MHz)",
                 "ZZ (kHz)"});
    // (a) Q2-Q1.
    row(table, "(a) Q2-Q1", "A", gau, sim::RamseyCircuit::A, true,
        false);
    row(table, "(a) Q2-Q1", "B", dcg, sim::RamseyCircuit::B, true,
        false);
    // (b) Q2-Q3.
    row(table, "(b) Q2-Q3", "A", gau, sim::RamseyCircuit::A, false,
        true);
    row(table, "(b) Q2-Q3", "B", dcg, sim::RamseyCircuit::B, false,
        true);
    // (c) both neighbors.
    row(table, "(c) both", "A", gau, sim::RamseyCircuit::A, true, true);
    row(table, "(c) both", "B", dcg, sim::RamseyCircuit::B, true, true);
    row(table, "(c) both", "C", dcg, sim::RamseyCircuit::C, true, true);
    // Extension: the optimized Pert identity instead of DCG.
    row(table, "(ext) both", "B", pert, sim::RamseyCircuit::B, true,
        true);
    table.print(std::cout);
    std::cout << "\nExpected shape: circuit A measures the bare"
                 " effective ZZ (~200 kHz per coupling,\n~400 kHz for"
                 " both); compiled circuits B and C collapse it to"
                 " ~10 kHz or less.\n";
    return 0;
}
