/**
 * @file
 * Fig. 21: the synergy of co-optimization — using only optimized
 * pulses (Pert+ParSched) or only ZZ-aware scheduling (Gau+ZZXSched)
 * versus both (Pert+ZZXSched).
 */

#include "bench_common.h"

using namespace qzz;

int
main()
{
    bench::banner("Figure 21",
                  "pulse-only vs scheduling-only vs co-optimization");
    exp::SuiteConfig scfg;
    if (exp::quickMode())
        scfg.max_qubits = 6;
    auto suite = exp::buildSuite(scfg);
    sim::PulseSimOptions sim_opt;
    sim_opt.dt = 0.1; // Strang error ~1e-4, well below the
                      // fidelity differences reported here


    const core::CompileOptions configs[] = {
        {core::PulseMethod::Pert, core::SchedPolicy::Par, {}},
        {core::PulseMethod::Gaussian, core::SchedPolicy::Zzx, {}},
        {core::PulseMethod::Pert, core::SchedPolicy::Zzx, {}},
    };

    Table table({"benchmark", "Pert+ParSched", "Gau+ZZXSched",
                 "Pert+ZZXSched"});
    int synergy_wins = 0;
    for (const auto &entry : suite) {
        double fid[3];
        for (int i = 0; i < 3; ++i) {
            const core::Compiler compiler =
                core::CompilerBuilder(entry.device)
                    .options(configs[i])
                    .build();
            fid[i] = exp::evaluateFidelity(entry.circuit, compiler,
                                           sim_opt)
                         .fidelity;
        }
        if (fid[2] >= std::max(fid[0], fid[1]) - 1e-3)
            ++synergy_wins;
        table.addRow({entry.label, formatF(fid[0], 4),
                      formatF(fid[1], 4), formatF(fid[2], 4)});
        std::cerr << "[fig21] " << entry.label << " done\n";
    }
    table.print(std::cout);
    std::cout << "\nco-optimization >= each part alone on "
              << synergy_wins << "/" << suite.size()
              << " instances (paper: higher fidelity than either"
                 " part individually)\n";
    return 0;
}
