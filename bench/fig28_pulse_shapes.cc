/**
 * @file
 * Fig. 28: the optimized Rx(pi/2) pulse shapes — OptCtrl and Pert
 * Fourier waveforms (20 ns) and the 120 ns DCG sequence, sampled as
 * CSV series.
 */

#include "bench_common.h"

using namespace qzz;

namespace {

void
dump(const std::string &name, const pulse::PulseProgram &p,
     double sample_step)
{
    Table table({"t (ns)", "Omega_x (MHz)", "Omega_y (MHz)"});
    table.setTitle(name + " Rx(pi/2) pulse (duration " +
                   formatF(p.duration, 0) + " ns)");
    for (double t = 0.0; t <= p.duration + 1e-9; t += sample_step) {
        const double ox = pulse::PulseProgram::eval(p.x_a, t);
        const double oy = pulse::PulseProgram::eval(p.y_a, t);
        table.addRow({formatF(t, 1), formatF(toMhz(ox), 3),
                      formatF(toMhz(oy), 3)});
    }
    table.printCsv(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    bench::banner("Figure 28", "optimized Rx(pi/2) pulse shapes");
    const auto provider = core::defaultPulseProvider();
    dump("OptCtrl",
         provider->library(core::PulseMethod::OptCtrl)
             ->get(pulse::PulseGate::SX),
         1.0);
    dump("Pert",
         provider->library(core::PulseMethod::Pert)
             ->get(pulse::PulseGate::SX),
         1.0);
    dump("DCG",
         provider->library(core::PulseMethod::DCG)
             ->get(pulse::PulseGate::SX),
         2.0);
    std::cout << "Expected shape: smooth ~tens-of-MHz envelopes for"
                 " OptCtrl/Pert; the DCG\nsequence shows its"
                 " pi | pi/2 -pi/2 | pi | pi/2 segment structure.\n";
    return 0;
}
