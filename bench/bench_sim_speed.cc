/**
 * @file
 * Simulation-engine speed benchmark: fused kernels, per-layer phase
 * vectors, and propagator memoization against the retained scalar
 * reference paths (PulseSimOptions::scalar_reference), per-kernel
 * and end-to-end.
 *
 * Both paths run in the same process on the same inputs and must
 * agree numerically before any timing is reported, so the published
 * speedups are always apples-to-apples.  Publishes
 * BENCH_sim_speed.json (path from argv[1]) and exits non-zero when
 * the end-to-end speedup falls below the acceptance bar — the CI
 * perf job gates on the scalar/optimized *ratio*, which is portable
 * across machines, not on absolute times.
 *
 * QZZ_QUICK=1 shrinks the workload to the 4-qubit suite entry and
 * relaxes the bar (2.5x instead of 5x): quick runs exist to catch
 * "the optimization stopped engaging", not to certify peak speed.
 */

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <new>

#include "bench_common.h"
#include "sim/drive_step.h"

// ----------------------------------------------------------------
// Allocation counter.  The memoized hot path promises zero heap per
// integrator step; counting every operator new during a run (divided
// by the step count) verifies that promise end-to-end rather than by
// code inspection.
// ----------------------------------------------------------------
namespace {
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<bool> g_count_allocs{false};

void *
countedAlloc(std::size_t sz)
{
    if (g_count_allocs.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(sz ? sz : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}
} // namespace

void *
operator new(std::size_t sz)
{
    return countedAlloc(sz);
}

void *
operator new[](std::size_t sz)
{
    return countedAlloc(sz);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

using namespace qzz;

namespace {

using Clock = std::chrono::steady_clock;

double
elapsedNs(Clock::time_point t0)
{
    return std::chrono::duration<double, std::nano>(Clock::now() - t0)
        .count();
}

/** Best-of-reps wall time (ns) for one call of @p fn: robust against
 *  one-off scheduler noise without needing many repetitions. */
template <typename Fn>
double
bestNs(int reps, Fn &&fn)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = Clock::now();
        fn();
        const double ns = elapsedNs(t0);
        if (r == 0 || ns < best)
            best = ns;
    }
    return best;
}

/** A reproducible non-trivial mixed state: |0..0><0..0| pushed
 *  through a few drive propagators so every element is nonzero. */
sim::DensityMatrix
warmState(int n, const pulse::PulseLibrary &lib)
{
    sim::DensityMatrix rho(n);
    la::Mat2 u2;
    la::Mat4 u4;
    sim::drive1QStep(lib.get(pulse::PulseGate::SX), 7.0, 0.4, u2);
    sim::drive2QStep(lib.get(pulse::PulseGate::RZX), 31.0, 0.4, u4);
    for (int q = 0; q < n; ++q)
        rho.apply1Q(u2, q);
    for (int q = 0; q + 1 < n; ++q)
        rho.apply2Q(u4, q, q + 1);
    return rho;
}

struct KernelResult
{
    std::string kernel;
    int qubits = 0;
    double scalar_ns = 0.0;
    double optimized_ns = 0.0;

    double speedup() const
    {
        return optimized_ns > 0.0 ? scalar_ns / optimized_ns : 0.0;
    }
};

struct E2eResult
{
    std::string name;
    std::string benchmark;
    int qubits = 0;
    size_t steps = 0;
    double scalar_ms = 0.0;
    double optimized_ms = 0.0;
    double agreement = 0.0; ///< max |optimized - scalar| (elementwise)
    double optimized_allocs_per_step = 0.0;
    double scalar_allocs_per_step = 0.0;

    double speedup() const
    {
        return optimized_ms > 0.0 ? scalar_ms / optimized_ms : 0.0;
    }
};

/** Total integrator steps a schedule takes at @p dt (mirrors the
 *  simulators' layerSteps: ceil(duration / dt), at least one). */
size_t
totalSteps(const core::Schedule &sched, double dt)
{
    size_t steps = 0;
    for (const core::Layer &layer : sched.layers) {
        if (layer.is_virtual || layer.duration <= 0.0)
            continue;
        steps += std::max<size_t>(
            1, size_t(std::ceil(layer.duration / dt)));
    }
    return steps;
}

uint64_t
countedAllocsDuring(const std::function<void()> &fn)
{
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
    fn();
    g_count_allocs.store(false, std::memory_order_relaxed);
    return g_alloc_count.load(std::memory_order_relaxed);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_sim_speed.json";
    const bool quick = exp::quickMode();
    // The acceptance bar: the optimized engine must beat the scalar
    // reference end-to-end by 5x in full mode (the issue's 5-10x
    // target).  Quick mode runs the 4-qubit entry where fixed
    // per-layer costs weigh more, so it only guards 2.5x.
    const double required_speedup = quick ? 2.5 : 5.0;

    bench::banner("bench_sim_speed",
                  "fused/memoized simulation engine vs scalar "
                  "reference");
    std::cout << (quick ? "quick mode (QZZ_QUICK)" : "full mode")
              << "; acceptance bar: " << formatX(required_speedup)
              << " end-to-end\n\n";

    // ------------------------------------------------------------
    // Per-kernel timings on a 6-qubit (64x64) density matrix — the
    // register size of the paper's Fig. 23 decoherence study.
    // ------------------------------------------------------------
    const pulse::PulseLibrary lib = pulse::PulseLibrary::gaussian();
    const int kn = 6;
    const size_t kdim = size_t(1) << kn;
    const int kreps = quick ? 20 : 200;

    la::Mat2 u2;
    la::Mat4 u4;
    sim::drive1QStep(lib.get(pulse::PulseGate::SX), 10.0, 0.1, u2);
    sim::drive2QStep(lib.get(pulse::PulseGate::RZX), 40.0, 0.1, u4);
    const la::CMatrix u2m =
        sim::drive1QStepScalar(lib.get(pulse::PulseGate::SX), 10.0, 0.1);
    const la::CMatrix u4m = sim::drive2QStepScalar(
        lib.get(pulse::PulseGate::RZX), 40.0, 0.1);

    std::vector<double> energies(kdim);
    for (size_t i = 0; i < kdim; ++i)
        energies[i] = 1e-3 * double(i % 17) - 5e-3;
    const double kdt = 0.1;
    const la::CVector phases = sim::phaseVector(energies, kdt);

    std::vector<double> gamma(size_t(kn), 0.0);
    std::vector<double> keep(size_t(kn), 1.0);
    for (int q = 0; q < kn; ++q) {
        // Mix lossy, dephasing-only and coherent qubits, as a
        // calibrated device would present.
        gamma[size_t(q)] = q % 3 == 0 ? 0.0 : 2e-5 * double(q + 1);
        keep[size_t(q)] = q % 3 == 1 ? 1.0 : 1.0 - 1e-5 * double(q + 1);
    }

    sim::DensityMatrix rho = warmState(kn, lib);
    std::vector<KernelResult> kernels;

    kernels.push_back(
        {"apply1Q", kn,
         bestNs(kreps, [&] { rho.apply1QScalar(u2m, 2); }),
         bestNs(kreps, [&] { rho.apply1Q(u2, 2); })});
    kernels.push_back(
        {"apply2Q", kn,
         bestNs(kreps, [&] { rho.apply2QScalar(u4m, 1, 4); }),
         bestNs(kreps, [&] { rho.apply2Q(u4, 1, 4); })});
    kernels.push_back(
        {"phase", kn,
         bestNs(kreps, [&] { rho.applyDiagonalPhase(energies, kdt); }),
         bestNs(kreps, [&] { rho.applyPhaseVector(phases); })});
    kernels.push_back(
        {"decoherence", kn,
         bestNs(kreps,
                [&] { rho.applyDecoherenceScalar(gamma, keep); }),
         bestNs(kreps, [&] { rho.applyDecoherence(gamma, keep); })});

    // The propagator memo against recomputation: what each gate of a
    // layer (beyond the first of its kind) pays per step.
    {
        sim::StepPropagatorMemo memo;
        const pulse::PulseProgram &rzx =
            lib.get(pulse::PulseGate::RZX);
        memo.get2Q(rzx, pulse::PulseGate::RZX, 0, kdt); // warm
        KernelResult kr;
        kr.kernel = "propagator2Q";
        kr.qubits = 2;
        kr.scalar_ns = bestNs(kreps, [&] {
            la::Mat4 out;
            sim::drive2QStep(rzx, 0.5 * kdt, kdt, out);
        });
        kr.optimized_ns = bestNs(kreps, [&] {
            (void)memo.get2Q(rzx, pulse::PulseGate::RZX, 0, kdt);
        });
        kernels.push_back(kr);
    }

    Table ktable({"kernel", "qubits", "scalar ns/op",
                  "optimized ns/op", "speedup"});
    ktable.setTitle("per-kernel (density matrix, best of " +
                    std::to_string(kreps) + ")");
    for (const KernelResult &k : kernels)
        ktable.addRow({k.kernel, std::to_string(k.qubits),
                       formatF(k.scalar_ns, 0),
                       formatF(k.optimized_ns, 0),
                       formatX(k.speedup())});
    ktable.print(std::cout);
    std::cout << "\n";

    // ------------------------------------------------------------
    // End-to-end: the Fig. 20 (state-vector) and Fig. 23
    // (density-matrix + decoherence) methodology, scalar vs
    // optimized on the identical compiled schedule.
    // ------------------------------------------------------------
    exp::SuiteConfig scfg;
    scfg.max_qubits = quick ? 4 : 6;
    const auto suite = exp::buildSuite(scfg);
    const int want_n = quick ? 4 : 6;
    const exp::SuiteEntry *entry = nullptr;
    for (const auto &e : suite)
        if (e.circuit.numQubits() == want_n) {
            entry = &e;
            break;
        }
    if (!entry) {
        std::cerr << "no " << want_n << "-qubit suite entry\n";
        return 1;
    }

    const core::CompileOptions copt{core::PulseMethod::Gaussian,
                                    core::SchedPolicy::Par,
                                    {}};
    const int e2e_reps = quick ? 2 : 3;

    sim::PulseSimOptions base_opt;
    base_opt.dt = 0.1;
    base_opt.telemetry = false; // time the kernels, not the metrics
    sim::PulseSimOptions scalar_opt = base_opt;
    scalar_opt.scalar_reference = true;

    std::vector<E2eResult> e2e;

    // Fig. 20 style: closed-system state-vector simulation.
    {
        const core::Compiler compiler =
            core::CompilerBuilder(entry->device).options(copt).build();
        const core::CompiledProgram prog =
            core::unwrapOrThrow(compiler.compile(entry->circuit));

        const sim::PulseScheduleSimulator opt_sim(
            entry->device, *prog.library, base_opt);
        const sim::PulseScheduleSimulator ref_sim(
            entry->device, *prog.library, scalar_opt);

        sim::StateVector psi_opt = opt_sim.run(prog.schedule);
        const sim::StateVector psi_ref = ref_sim.run(prog.schedule);
        double max_diff = 0.0;
        for (size_t i = 0; i < psi_opt.dim(); ++i)
            max_diff = std::max(
                max_diff,
                std::abs(psi_opt.amplitudes()[i] -
                         psi_ref.amplitudes()[i]));

        E2eResult r;
        r.name = "fig20_statevector";
        r.benchmark = entry->label;
        r.qubits = want_n;
        r.steps = totalSteps(prog.schedule, base_opt.dt);
        r.agreement = max_diff;
        r.optimized_ms =
            bestNs(e2e_reps,
                   [&] { psi_opt = opt_sim.run(prog.schedule); }) /
            1e6;
        r.scalar_ms =
            bestNs(e2e_reps,
                   [&] { psi_opt = ref_sim.run(prog.schedule); }) /
            1e6;
        const uint64_t opt_allocs = countedAllocsDuring(
            [&] { psi_opt = opt_sim.run(prog.schedule); });
        const uint64_t ref_allocs = countedAllocsDuring(
            [&] { psi_opt = ref_sim.run(prog.schedule); });
        r.optimized_allocs_per_step =
            double(opt_allocs) / double(r.steps);
        r.scalar_allocs_per_step =
            double(ref_allocs) / double(r.steps);
        e2e.push_back(r);
    }

    // Fig. 23 style: open-system density-matrix simulation with
    // T1 = T2 = 200 us, the study's middle coherence point.
    {
        const dev::Device device =
            entry->device.withCoherence(us(200.0), us(200.0));
        const core::Compiler compiler =
            core::CompilerBuilder(device).options(copt).build();
        const core::CompiledProgram prog =
            core::unwrapOrThrow(compiler.compile(entry->circuit));

        const sim::DensityMatrixScheduleSimulator opt_sim(
            device, *prog.library, base_opt);
        const sim::DensityMatrixScheduleSimulator ref_sim(
            device, *prog.library, scalar_opt);

        sim::DensityMatrix rho_opt = opt_sim.run(prog.schedule);
        const sim::DensityMatrix rho_ref = ref_sim.run(prog.schedule);
        double max_diff = 0.0;
        const la::CMatrix &mo = rho_opt.matrix();
        const la::CMatrix &mr = rho_ref.matrix();
        for (size_t r0 = 0; r0 < rho_opt.dim(); ++r0)
            for (size_t c = 0; c < rho_opt.dim(); ++c)
                max_diff = std::max(max_diff,
                                    std::abs(mo(r0, c) - mr(r0, c)));

        E2eResult r;
        r.name = "fig23_density";
        r.benchmark = entry->label;
        r.qubits = want_n;
        r.steps = totalSteps(prog.schedule, base_opt.dt);
        r.agreement = max_diff;
        r.optimized_ms =
            bestNs(e2e_reps,
                   [&] { rho_opt = opt_sim.run(prog.schedule); }) /
            1e6;
        r.scalar_ms =
            bestNs(e2e_reps,
                   [&] { rho_opt = ref_sim.run(prog.schedule); }) /
            1e6;
        const uint64_t opt_allocs = countedAllocsDuring(
            [&] { rho_opt = opt_sim.run(prog.schedule); });
        const uint64_t ref_allocs = countedAllocsDuring(
            [&] { rho_opt = ref_sim.run(prog.schedule); });
        r.optimized_allocs_per_step =
            double(opt_allocs) / double(r.steps);
        r.scalar_allocs_per_step =
            double(ref_allocs) / double(r.steps);
        e2e.push_back(r);
    }

    Table etable({"pipeline", "benchmark", "steps", "scalar ms",
                  "optimized ms", "speedup", "max |diff|",
                  "allocs/step"});
    etable.setTitle("end-to-end (best of " +
                    std::to_string(e2e_reps) + ")");
    for (const E2eResult &r : e2e)
        etable.addRow({r.name, r.benchmark, std::to_string(r.steps),
                       formatF(r.scalar_ms, 2),
                       formatF(r.optimized_ms, 2),
                       formatX(r.speedup()), bench::sci(r.agreement),
                       formatF(r.optimized_allocs_per_step, 2)});
    etable.print(std::cout);
    std::cout << "\n";

    // ------------------------------------------------------------
    // Acceptance: numerical agreement is a hard precondition (a
    // fast-but-wrong engine must never publish a speedup), then the
    // end-to-end ratio bar, then the zero-heap promise.
    // ------------------------------------------------------------
    bool ok = true;
    for (const E2eResult &r : e2e) {
        if (!(r.agreement < 1e-9)) {
            std::cerr << "FAIL: " << r.name
                      << " optimized/scalar disagree (max diff "
                      << bench::sci(r.agreement) << ")\n";
            ok = false;
        }
        if (r.speedup() < required_speedup) {
            std::cerr << "FAIL: " << r.name << " speedup "
                      << formatX(r.speedup()) << " below the "
                      << formatX(required_speedup) << " bar\n";
            ok = false;
        }
        // Per-layer setup (phase vector, job list) is allowed; a
        // budget of one allocation per step means the inner step
        // loop itself is allocation-free.
        if (r.optimized_allocs_per_step > 1.0) {
            std::cerr << "FAIL: " << r.name << " optimized path makes "
                      << formatF(r.optimized_allocs_per_step, 2)
                      << " allocations per step (budget: 1)\n";
            ok = false;
        }
    }

    double min_e2e = 0.0;
    for (size_t i = 0; i < e2e.size(); ++i)
        min_e2e = i == 0 ? e2e[i].speedup()
                         : std::min(min_e2e, e2e[i].speedup());

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot open " << out_path << "\n";
        return 1;
    }
    out.precision(12);
    out << "{\n  \"quick\": " << (quick ? "true" : "false")
        << ",\n  \"required_speedup\": " << required_speedup
        << ",\n  \"min_e2e_speedup\": " << min_e2e
        << ",\n  \"kernels\": [\n";
    for (size_t i = 0; i < kernels.size(); ++i) {
        const KernelResult &k = kernels[i];
        out << "    {\"kernel\": \"" << k.kernel
            << "\", \"qubits\": " << k.qubits
            << ", \"scalar_ns\": " << k.scalar_ns
            << ", \"optimized_ns\": " << k.optimized_ns
            << ", \"speedup\": " << k.speedup() << "}"
            << (i + 1 < kernels.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"e2e\": [\n";
    for (size_t i = 0; i < e2e.size(); ++i) {
        const E2eResult &r = e2e[i];
        out << "    {\"name\": \"" << r.name << "\", \"benchmark\": \""
            << r.benchmark << "\", \"qubits\": " << r.qubits
            << ", \"steps\": " << r.steps
            << ", \"scalar_ms\": " << r.scalar_ms
            << ", \"optimized_ms\": " << r.optimized_ms
            << ", \"speedup\": " << r.speedup()
            << ", \"max_diff\": " << r.agreement
            << ", \"optimized_allocs_per_step\": "
            << r.optimized_allocs_per_step
            << ", \"scalar_allocs_per_step\": "
            << r.scalar_allocs_per_step << "}"
            << (i + 1 < e2e.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"passed\": " << (ok ? "true" : "false")
        << "\n}\n";
    out.close();
    std::cout << "wrote " << out_path << "\n";

    if (!ok)
        return 1;
    std::cout << "PASS: min end-to-end speedup "
              << formatX(min_e2e) << " (bar "
              << formatX(required_speedup) << ")\n";
    return 0;
}
