/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 */

#ifndef QZZ_BENCH_BENCH_COMMON_H
#define QZZ_BENCH_BENCH_COMMON_H

#include <iostream>
#include <string>
#include <vector>

#include "qzz.h"

namespace qzz::bench {

/** The lambda/2pi sweep (MHz) used by Figs. 16-19. */
inline std::vector<double>
lambdaSweepMhz()
{
    return {0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0};
}

/** Clamp infidelities to the paper's 1e-8 display precision. */
inline double
clampInfidelity(double x)
{
    return x < 1e-8 ? 1e-8 : x;
}

/** Scientific-notation cell. */
inline std::string
sci(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3e", v);
    return std::string(buf);
}

/** Banner printed by every figure bench. */
inline void
banner(const std::string &figure, const std::string &description)
{
    std::cout << "==================================================\n"
              << figure << ": " << description << "\n"
              << "==================================================\n";
}

} // namespace qzz::bench

#endif // QZZ_BENCH_BENCH_COMMON_H
