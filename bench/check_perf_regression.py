#!/usr/bin/env python3
"""Compare a fresh bench JSON against its committed baseline.

Machine portability is the whole design: CI runners differ in clock
speed, so absolute nanoseconds are never compared across machines.

* bench_sim_speed publishes scalar/optimized *ratios* measured within
  one run on one machine; those ratios transfer across hosts, so each
  kernel and end-to-end speedup must stay within --tolerance of the
  committed baseline ratio (and the bench's own acceptance bar must
  have passed).

* bench_compile_time publishes absolute per-benchmark times.  Those
  are first normalized by the run's geometric mean, which cancels the
  host speed factor; a benchmark fails only if its share of the run
  grew by more than --tolerance relative to the baseline's share --
  i.e. it got slower relative to its peers, not the machine.

Exit status 0 when nothing regressed, 1 otherwise.  Repin a baseline
by copying the fresh JSON over bench/baselines/<name>.json.

Usage:
  check_perf_regression.py sim_speed     <current.json> <baseline.json>
  check_perf_regression.py compile_time  <current.json> <baseline.json>
"""

import argparse
import json
import math
import sys


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def check_sim_speed(cur, base, tol):
    failures = []
    if not cur.get("passed", False):
        failures.append("bench_sim_speed's own acceptance gate failed")

    def ratios(doc):
        out = {}
        for k in doc.get("kernels", []):
            out["kernel:" + k["kernel"]] = k["speedup"]
        for e in doc.get("e2e", []):
            out["e2e:" + e["name"]] = e["speedup"]
        return out

    cur_r, base_r = ratios(cur), ratios(base)
    for name, baseline in sorted(base_r.items()):
        if name not in cur_r:
            failures.append(f"{name}: missing from current run")
            continue
        current = cur_r[name]
        floor = baseline / (1.0 + tol)
        status = "ok" if current >= floor else "REGRESSED"
        print(f"  {name:28s} baseline {baseline:7.2f}x  "
              f"current {current:7.2f}x  floor {floor:6.2f}x  {status}")
        if current < floor:
            failures.append(
                f"{name}: speedup {current:.2f}x fell more than "
                f"{tol:.0%} below baseline {baseline:.2f}x")
    return failures


UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def compile_time_shares(doc):
    times = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if present.
        if b.get("run_type") == "aggregate":
            continue
        # cpu_time is expressed in the benchmark's own time_unit.
        times[b["name"]] = (float(b["cpu_time"])
                            * UNIT_NS[b.get("time_unit", "ns")])
    if not times:
        return {}
    geomean = math.exp(sum(math.log(t) for t in times.values())
                       / len(times))
    return {name: t / geomean for name, t in times.items()}


def check_compile_time(cur, base, tol):
    failures = []
    cur_s, base_s = compile_time_shares(cur), compile_time_shares(base)
    if not cur_s:
        return ["current compile-time JSON has no benchmarks"]
    for name, baseline in sorted(base_s.items()):
        if name not in cur_s:
            failures.append(f"{name}: missing from current run")
            continue
        current = cur_s[name]
        ceiling = baseline * (1.0 + tol)
        status = "ok" if current <= ceiling else "REGRESSED"
        print(f"  {name:32s} baseline share {baseline:8.4f}  "
              f"current {current:8.4f}  ceiling {ceiling:8.4f}  {status}")
        if current > ceiling:
            failures.append(
                f"{name}: normalized time {current:.4f} grew more than "
                f"{tol:.0%} over baseline {baseline:.4f}")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("mode", choices=["sim_speed", "compile_time"])
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed relative regression (default 0.20)")
    args = ap.parse_args()

    cur, base = load(args.current), load(args.baseline)
    print(f"== {args.mode}: {args.current} vs {args.baseline} "
          f"(tolerance {args.tolerance:.0%}) ==")
    if args.mode == "sim_speed":
        failures = check_sim_speed(cur, base, args.tolerance)
    else:
        failures = check_compile_time(cur, base, args.tolerance)

    if failures:
        print("\nPERF REGRESSION:")
        for f in failures:
            print("  - " + f)
        return 1
    print("no regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
