/**
 * @file
 * Ablation: the suppression requirement R = (NQ <= nq_max,
 * NC <= nc_max) of ZZXSched (Sec. 6) controls the
 * parallelism-vs-suppression trade-off.  This sweep shows how layer
 * counts, execution time and residual crosstalk respond to the
 * thresholds, on a large and a small benchmark.
 */

#include "bench_common.h"

using namespace qzz;

int
main()
{
    bench::banner("Ablation",
                  "suppression requirement thresholds (ZZXSched)");
    exp::SuiteConfig scfg;
    auto suite = exp::buildSuite(scfg);

    for (const char *label : {"QFT-9", "GRC-12"}) {
        const exp::SuiteEntry *entry = nullptr;
        for (const auto &e : suite)
            if (e.label == label)
                entry = &e;
        if (!entry)
            continue;
        ckt::QuantumCircuit native = ckt::decomposeToNative(
            ckt::routeCircuit(entry->circuit, entry->device.graph())
                .circuit);
        core::Schedule par = core::parSchedule(native, entry->device,
                                               core::GateDurations{});

        Table table({"nq_max", "nc_max", "layers", "exec vs ParSched",
                     "mean NC", "max NQ"});
        table.setTitle(std::string(label) +
                       " (device couplings: " +
                       std::to_string(entry->device.numCouplings()) +
                       ")");
        struct Setting
        {
            int nq, nc;
        };
        const int e_half = entry->device.numCouplings() / 2;
        const Setting settings[] = {
            {2, 2},       {2, e_half},  {3, e_half},
            {4, e_half},  {6, e_half},  {12, 2 * e_half},
        };
        for (const Setting &s : settings) {
            core::ZzxOptions opt;
            opt.nq_max = s.nq;
            opt.nc_max = s.nc;
            core::Schedule sched = core::zzxSchedule(
                native, entry->device, core::GateDurations{}, opt);
            table.addRow({std::to_string(s.nq), std::to_string(s.nc),
                          std::to_string(sched.physicalLayerCount()),
                          formatX(sched.executionTime() /
                                      par.executionTime(),
                                  2),
                          formatF(sched.meanNc(), 2),
                          std::to_string(sched.maxNq())});
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Looser requirements recover ParSched-like"
                 " parallelism at the cost of more unsuppressed\n"
                 "couplings per layer; the paper's defaults (NQ < max"
                 " degree, NC <= |E|/2) sit at the knee.\n";
    return 0;
}
