/**
 * @file
 * Fig. 19: ZZ suppression during the two-qubit Rzx(pi/2) gate on the
 * 1-2-3-4 chain: (a) equal spectator couplings swept together for
 * Gaussian / OptCtrl / Pert pulses; (b) the Pert pulse on the
 * (lambda_12, lambda_34) grid.
 */

#include "bench_common.h"

using namespace qzz;

int
main()
{
    bench::banner("Figure 19",
                  "two-qubit Rzx(pi/2) crosstalk suppression");
    const double intra = khz(200.0);

    const auto provider = core::defaultPulseProvider();
    const pulse::PulseProgram gauss =
        pulse::PulseLibrary::gaussian().get(pulse::PulseGate::RZX);
    const pulse::PulseProgram octl =
        provider->library(core::PulseMethod::OptCtrl)
            ->get(pulse::PulseGate::RZX);
    const pulse::PulseProgram pert =
        provider->library(core::PulseMethod::Pert)
            ->get(pulse::PulseGate::RZX);

    {
        Table table({"lambda/2pi (MHz)", "Gaussian", "OptCtrl",
                     "Pert"});
        table.setTitle("(a) equal strengths on 1-2 and 3-4");
        for (double l_mhz : bench::lambdaSweepMhz()) {
            auto cell = [&](const pulse::PulseProgram &p) {
                return bench::sci(bench::clampInfidelity(
                    core::twoQubitCrosstalkInfidelity(
                        p, mhz(l_mhz), mhz(l_mhz), intra, 0.02)));
            };
            table.addRow({formatF(l_mhz, 2), cell(gauss), cell(octl),
                          cell(pert)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    {
        Table table({"l12 \\ l34 (MHz)", "0.0", "0.5", "1.0", "1.5",
                     "2.0"});
        table.setTitle("(b) Pert pulse, different strengths");
        for (double l12 : {0.0, 0.5, 1.0, 1.5, 2.0}) {
            std::vector<std::string> row{formatF(l12, 1)};
            for (double l34 : {0.0, 0.5, 1.0, 1.5, 2.0}) {
                row.push_back(bench::sci(bench::clampInfidelity(
                    core::twoQubitCrosstalkInfidelity(
                        pert, mhz(l12), mhz(l34), intra, 0.02))));
            }
            table.addRow(row);
        }
        table.print(std::cout);
    }
    std::cout << "\nExpected shape: optimized pulses suppress"
                 " cross-region ZZ during the gate;\nthe heat map"
                 " stays flat and low across the strength grid.\n";
    return 0;
}
