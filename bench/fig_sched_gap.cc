/**
 * @file
 * Heuristic-vs-optimal scheduling gap (beyond the paper): on small
 * topologies where the branch-and-bound ExactCutSolver is tractable
 * (grid 2x3, one heavy-hex cell, ring 5) x {uniform, jittered}
 * calibrations, sweep seed-pinned random native layers and compare
 * every per-layer cut of the heuristic SuppressionSolver against the
 * exact optimum — under the classic alpha * NQ + NC objective and the
 * calibration-weighted one — then schedule full random circuits under
 * all five policies (ParSched, ZZXSched, ZzxWeighted, CycleAware,
 * ExactSched) and report each policy's mean calibrated residual ZZ.
 *
 * Emits BENCH_sched_gap.json (path overridable via argv[1]) and exits
 * non-zero if (i) any exact search fails to report Optimal, (ii) the
 * heuristic ever beats the exact optimum (impossible if the solver is
 * correct — this is the differential gate), or (iii) the heuristic's
 * worst cost ratio vs optimal regresses past the pinned bound.
 * QZZ_QUICK=1 shrinks the sweep for smoke runs.
 */

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "bench_common.h"

using namespace qzz;

namespace {

/**
 * The heuristic may legitimately trail the optimum — Algorithm 1's
 * T-join search is alpha-optimal only on planar duals and the greedy
 * path relaxation is approximate elsewhere.  The bound pins that
 * quality: grid and ring stay within 1.13x of optimal, but heavy-hex
 * constrained cuts reach 2.20x (classic) / 2.61x (weighted, jittered
 * calibration) — the degree-2 bridge qubits defeat the greedy
 * region-growing.  Gated with headroom at 3.0 so a regression of the
 * heuristic (or a broken oracle bound) still trips the gate.
 */
constexpr double kMaxGapRatio = 3.0;

/** One random native layer: disjoint RZX on a random edge subset, SX
 *  on a random subset of the rest (mirrors tests/common; the bench
 *  cannot link the test tree, so it carries its own copy). */
ckt::QuantumCircuit
randomLayer(const graph::Topology &topo, uint64_t seed)
{
    Rng rng(seed);
    const graph::Graph &g = topo.g;
    const int n = g.numVertices();
    ckt::QuantumCircuit c(n);

    std::vector<int> edge_order(size_t(g.numEdges()));
    for (int e = 0; e < g.numEdges(); ++e)
        edge_order[size_t(e)] = e;
    rng.shuffle(edge_order);

    std::vector<char> used(size_t(n), 0);
    for (int e : edge_order) {
        const graph::Edge &edge = g.edge(e);
        if (used[size_t(edge.u)] || used[size_t(edge.v)])
            continue;
        if (rng.uniform() >= 0.4)
            continue;
        c.rzx(edge.u, edge.v, kPi / 2.0);
        used[size_t(edge.u)] = 1;
        used[size_t(edge.v)] = 1;
    }
    for (int q = 0; q < n; ++q)
        if (!used[size_t(q)] && rng.uniform() < 0.7)
            c.sx(q);
    if (c.empty())
        c.sx(0);
    return c;
}

/** Stacked random layers as one native circuit. */
ckt::QuantumCircuit
randomCircuit(const graph::Topology &topo, int layers, uint64_t seed)
{
    ckt::QuantumCircuit c(topo.g.numVertices());
    for (int l = 0; l < layers; ++l) {
        const ckt::QuantumCircuit layer =
            randomLayer(topo, seed * 1000003u + uint64_t(l) + 1u);
        for (const ckt::Gate &gate : layer.gates())
            c.add(gate);
    }
    return c;
}

std::vector<int>
twoQubitSet(const ckt::QuantumCircuit &c)
{
    std::vector<int> q;
    for (const ckt::Gate &g : c.gates())
        if (g.isTwoQubit())
            for (int v : g.qubits)
                q.push_back(v);
    std::sort(q.begin(), q.end());
    q.erase(std::unique(q.begin(), q.end()), q.end());
    return q;
}

struct GapStats
{
    int layers = 0;
    int exact_not_optimal = 0;
    int heuristic_beats_exact = 0; ///< solver bug if ever nonzero
    double max_gap_classic = 1.0;
    double sum_gap_classic = 0.0;
    double max_gap_weighted = 1.0;
    double sum_gap_weighted = 0.0;
};

struct PolicyResidual
{
    std::string policy;
    double mean_residual_zz = 0.0;
};

struct CellResult
{
    std::string topology;
    std::string calib;
    GapStats gaps;
    std::vector<PolicyResidual> residuals;
};

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = [] {
        const char *env = std::getenv("QZZ_QUICK");
        return env != nullptr && env[0] == '1';
    }();
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_sched_gap.json";

    bench::banner("Scheduling optimality gap",
                  "heuristic cuts vs the exact branch-and-bound "
                  "oracle, all policies");

    const int layers_per_cell = quick ? 15 : 60;
    const int circuits_per_cell = quick ? 2 : 4;
    const int circuit_depth = quick ? 4 : 6;

    std::vector<graph::Topology> topologies;
    topologies.push_back(graph::gridTopology(2, 3));
    topologies.push_back(graph::ringTopology(5));
    if (!quick)
        topologies.push_back(graph::heavyHexTopology(1, 1));

    const core::SchedPolicy policies[] = {
        core::SchedPolicy::Par, core::SchedPolicy::Zzx,
        core::SchedPolicy::ZzxWeighted, core::SchedPolicy::CycleAware,
        core::SchedPolicy::Exact};

    std::vector<CellResult> cells;
    for (const graph::Topology &topo : topologies) {
        for (double spread : {0.0, 0.4}) {
            // Uniform snapshot at spread 0 (coupling_stddev pinned to
            // zero so the jitter under study is the only
            // heterogeneity), Gaussian-jittered per-edge ZZ otherwise.
            dev::DeviceParams params;
            params.coupling_stddev = 0.0;
            dev::CalibrationJitter jitter;
            jitter.t1_rel = 0.0;
            jitter.t2_rel = 0.0;
            jitter.anharmonicity_rel = 0.0;
            jitter.zz_rel = spread;
            Rng rng(424242);
            const dev::Device device(
                topo,
                dev::Calibration::jittered(topo, params, jitter, rng));
            const std::vector<double> zz = device.couplings();

            CellResult cell;
            cell.topology = topo.name;
            cell.calib = spread == 0.0 ? "uniform" : "jittered40";

            // --- Cut-level differential sweep -----------------------
            core::SuppressionSolver heuristic(topo);
            core::ExactCutSolver exact(topo.g);
            core::SuppressionOptions classic;
            core::SuppressionOptions weighted;
            weighted.edge_zz = &zz;

            for (int seed = 0; seed < layers_per_cell; ++seed) {
                const ckt::QuantumCircuit layer = randomLayer(
                    topo, uint64_t(seed) * 48271u + 11u);
                const std::vector<int> q = twoQubitSet(layer);
                ++cell.gaps.layers;

                for (const core::SuppressionOptions *opt :
                     {&classic, &weighted}) {
                    const bool is_weighted = opt == &weighted;
                    const core::ExactCutResult e =
                        exact.solve(q, *opt);
                    if (e.status != core::ExactStatus::Optimal)
                        ++cell.gaps.exact_not_optimal;
                    const core::SuppressionResult h =
                        heuristic.solve(q, *opt);
                    const double h_cost = core::cutPrimaryObjective(
                        h.metrics, opt->alpha, opt->edge_zz);
                    if (h_cost < e.objective - 1e-9)
                        ++cell.gaps.heuristic_beats_exact;
                    const double ratio =
                        h_cost / std::max(e.objective, 1e-30);
                    if (is_weighted) {
                        cell.gaps.max_gap_weighted = std::max(
                            cell.gaps.max_gap_weighted, ratio);
                        cell.gaps.sum_gap_weighted += ratio;
                    } else {
                        cell.gaps.max_gap_classic = std::max(
                            cell.gaps.max_gap_classic, ratio);
                        cell.gaps.sum_gap_classic += ratio;
                    }
                }
            }

            // --- Schedule-level residual per policy -----------------
            const core::ZzxDeviceTables ztables(device);
            const core::ExactDeviceTables etables(device);
            const core::GateDurations durations{};
            for (core::SchedPolicy policy : policies) {
                double sum = 0.0;
                for (int s = 0; s < circuits_per_cell; ++s) {
                    const ckt::QuantumCircuit c = randomCircuit(
                        topo, circuit_depth,
                        uint64_t(s) * 2654435761u + 97u);
                    core::Schedule sched;
                    switch (policy) {
                    case core::SchedPolicy::Par:
                        sched = core::parSchedule(c, device, durations);
                        break;
                    case core::SchedPolicy::Zzx:
                        sched = core::zzxSchedule(c, device, durations,
                                                  {}, ztables);
                        break;
                    case core::SchedPolicy::ZzxWeighted:
                        sched = core::zzxWeightedSchedule(
                            c, device, durations, {}, ztables);
                        break;
                    case core::SchedPolicy::CycleAware:
                        sched = core::cycleAwareSchedule(
                            c, device, durations, {}, ztables);
                        break;
                    case core::SchedPolicy::Exact:
                        sched = core::exactSchedule(
                            c, device, durations, {},
                            core::ExactLimits{}, etables);
                        break;
                    }
                    sum += core::meanResidualZz(sched, ztables.zz);
                }
                cell.residuals.push_back(
                    {core::schedPolicyName(policy),
                     sum / double(circuits_per_cell)});
            }

            Table table({"metric", "value"});
            table.setTitle(cell.topology + " / " + cell.calib);
            table.addRow({"layers swept",
                          std::to_string(cell.gaps.layers)});
            table.addRow(
                {"max gap classic",
                 formatF(cell.gaps.max_gap_classic, 4)});
            table.addRow(
                {"max gap weighted",
                 formatF(cell.gaps.max_gap_weighted, 4)});
            for (const PolicyResidual &r : cell.residuals)
                table.addRow({"residual " + r.policy,
                              bench::sci(r.mean_residual_zz)});
            table.print(std::cout);
            std::cout << "\n";
            std::cerr << "[fig_sched_gap] " << cell.topology << " / "
                      << cell.calib << " done\n";
            cells.push_back(std::move(cell));
        }
    }

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot open " << out_path << "\n";
        return 1;
    }
    out.precision(12);
    out << "{\n  \"quick\": " << (quick ? "true" : "false")
        << ",\n  \"max_gap_ratio_bound\": " << kMaxGapRatio
        << ",\n  \"cells\": [\n";
    for (size_t i = 0; i < cells.size(); ++i) {
        const CellResult &c = cells[i];
        const double denom = std::max(1, c.gaps.layers);
        out << "    {\"topology\": \"" << c.topology
            << "\", \"calib\": \"" << c.calib
            << "\", \"layers\": " << c.gaps.layers
            << ", \"exact_not_optimal\": " << c.gaps.exact_not_optimal
            << ", \"heuristic_beats_exact\": "
            << c.gaps.heuristic_beats_exact
            << ", \"max_gap_classic\": " << c.gaps.max_gap_classic
            << ", \"mean_gap_classic\": "
            << c.gaps.sum_gap_classic / denom
            << ", \"max_gap_weighted\": " << c.gaps.max_gap_weighted
            << ", \"mean_gap_weighted\": "
            << c.gaps.sum_gap_weighted / denom
            << ", \"mean_residual_zz\": {";
        for (size_t r = 0; r < c.residuals.size(); ++r)
            out << "\"" << c.residuals[r].policy
                << "\": " << c.residuals[r].mean_residual_zz
                << (r + 1 < c.residuals.size() ? ", " : "");
        out << "}}" << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    out.close();
    std::cout << "wrote " << out_path << "\n";

    // Acceptance: exact always Optimal on these sizes, never beaten
    // by any heuristic cut, and the heuristic's worst ratio vs
    // optimal inside the pinned quality bound.
    bool ok = true;
    for (const CellResult &c : cells) {
        if (c.gaps.exact_not_optimal > 0) {
            std::cerr << "FAIL: " << c.topology << "/" << c.calib
                      << ": " << c.gaps.exact_not_optimal
                      << " exact searches exhausted their budget\n";
            ok = false;
        }
        if (c.gaps.heuristic_beats_exact > 0) {
            std::cerr << "FAIL: " << c.topology << "/" << c.calib
                      << ": heuristic beat the exact optimum on "
                      << c.gaps.heuristic_beats_exact
                      << " cuts (exact solver bug)\n";
            ok = false;
        }
        const double worst = std::max(c.gaps.max_gap_classic,
                                      c.gaps.max_gap_weighted);
        if (worst > kMaxGapRatio) {
            std::cerr << "FAIL: " << c.topology << "/" << c.calib
                      << ": heuristic gap ratio " << formatF(worst, 4)
                      << " exceeds the pinned bound "
                      << formatF(kMaxGapRatio, 2) << "\n";
            ok = false;
        }
    }
    std::cout << (ok ? "sched-gap acceptance OK\n"
                     : "sched-gap acceptance FAILED\n");
    return ok ? 0 : 1;
}
