/**
 * @file
 * Control-pulse waveforms.
 *
 * A Waveform is a real-valued envelope Omega(t) in rad/ns over a
 * finite duration.  The shapes used by the paper are all here:
 *  - Gaussian with zero boundaries (the un-optimized baseline),
 *  - the 5-harmonic Fourier ansatz of Appendix A (optimized pulses),
 *  - piecewise sequences (DCG composite pulses),
 * plus scaling/shifting adaptors for drive-noise studies.
 */

#ifndef QZZ_PULSE_WAVEFORM_H
#define QZZ_PULSE_WAVEFORM_H

#include <memory>
#include <vector>

namespace qzz::pulse {

/** Shared-ownership handle to an immutable waveform. */
class Waveform;
using WaveformPtr = std::shared_ptr<const Waveform>;

/** A real control envelope over [0, duration]. */
class Waveform
{
  public:
    virtual ~Waveform() = default;

    /** Envelope value at time @p t (rad/ns); 0 outside [0, T]. */
    virtual double value(double t) const = 0;

    /** Time derivative at @p t; default is a central difference. */
    virtual double derivative(double t) const;

    /** Duration T in ns. */
    virtual double duration() const = 0;

    /** Numerical integral of the envelope over [0, T] (Simpson). */
    double area(int samples = 2001) const;
};

/** The all-zero waveform. */
class ZeroWaveform : public Waveform
{
  public:
    explicit ZeroWaveform(double t) : t_(t) {}
    double value(double) const override { return 0.0; }
    double derivative(double) const override { return 0.0; }
    double duration() const override { return t_; }

  private:
    double t_;
};

/** Constant amplitude over the window. */
class ConstantWaveform : public Waveform
{
  public:
    ConstantWaveform(double amp, double t) : amp_(amp), t_(t) {}
    double value(double t) const override;
    double derivative(double) const override { return 0.0; }
    double duration() const override { return t_; }

  private:
    double amp_;
    double t_;
};

/**
 * Gaussian envelope with subtracted tails so that the value is exactly
 * zero at t = 0 and t = T (the standard hardware-friendly shape).
 */
class GaussianWaveform : public Waveform
{
  public:
    /**
     * @param amp   peak amplitude (rad/ns).
     * @param t     duration T (ns).
     * @param sigma standard deviation (ns); typically T/4.
     */
    GaussianWaveform(double amp, double t, double sigma);

    /** Calibrate the peak so the integral equals @p area. */
    static GaussianWaveform withArea(double area, double t, double sigma);

    double value(double t) const override;
    double derivative(double t) const override;
    double duration() const override { return t_; }

  private:
    double amp_;
    double t_;
    double sigma_;
    double edge_; // raw Gaussian value at the boundary
};

/**
 * The paper's Fourier ansatz (Appendix A):
 *   Omega(t) = sum_j A_j / 2 * (1 + cos(2 pi j t / T - pi))
 * which is smooth and exactly zero at both endpoints.
 */
class FourierWaveform : public Waveform
{
  public:
    FourierWaveform(std::vector<double> coeffs, double t);

    double value(double t) const override;
    double derivative(double t) const override;
    double duration() const override { return t_; }

    const std::vector<double> &coefficients() const { return coeffs_; }

    /** Integral is T/2 * sum(A_j) in closed form. */
    double exactArea() const;

  private:
    std::vector<double> coeffs_;
    double t_;
};

/** Concatenation of segments played back to back. */
class SequenceWaveform : public Waveform
{
  public:
    explicit SequenceWaveform(std::vector<WaveformPtr> segments);

    double value(double t) const override;
    double derivative(double t) const override;
    double duration() const override { return total_; }

  private:
    std::vector<WaveformPtr> segments_;
    std::vector<double> offsets_;
    double total_ = 0.0;
};

/** Amplitude-scaled view of another waveform (drive-noise studies). */
class ScaledWaveform : public Waveform
{
  public:
    ScaledWaveform(WaveformPtr base, double factor)
        : base_(std::move(base)), factor_(factor)
    {
    }
    double value(double t) const override
    {
        return factor_ * base_->value(t);
    }
    double derivative(double t) const override
    {
        return factor_ * base_->derivative(t);
    }
    double duration() const override { return base_->duration(); }

  private:
    WaveformPtr base_;
    double factor_;
};

/** Negated view of another waveform. */
WaveformPtr negate(WaveformPtr base);

} // namespace qzz::pulse

#endif // QZZ_PULSE_WAVEFORM_H
