/**
 * @file
 * Pulse libraries: the mapping from native gates to pulse programs.
 *
 * The paper compiles to the IBMQ native set {Rz(theta), Rx(pi/2),
 * Rzx(pi/2)} plus an explicit identity I = Rx(2 pi) used for
 * crosstalk-suppressing supplementation (Sec. 7.1.2).  Rz is virtual
 * (software frame change) and has no pulses; the three physical gates
 * each get a PulseProgram.
 *
 * gaussianLibrary() builds the unoptimized baseline used on current
 * devices; the optimizers in qzz::core fill libraries for OptCtrl,
 * Pert and DCG.
 */

#ifndef QZZ_PULSE_LIBRARY_H
#define QZZ_PULSE_LIBRARY_H

#include <map>
#include <string>

#include "pulse/program.h"

namespace qzz::pulse {

/** The physical (pulse-backed) native gates. */
enum class PulseGate
{
    /** Rx(pi/2), the sqrt-X gate. */
    SX,
    /** The explicit identity Rx(2 pi) used for supplementation. */
    Identity,
    /** Rzx(pi/2), the cross-resonance two-qubit gate. */
    RZX,
};

/** Human-readable gate name. */
std::string pulseGateName(PulseGate g);

/** A named collection of pulse programs, one per physical gate. */
class PulseLibrary
{
  public:
    PulseLibrary() = default;
    explicit PulseLibrary(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Install/replace the program for a gate. */
    void set(PulseGate g, PulseProgram p);

    /** True if the gate has a program installed. */
    bool has(PulseGate g) const { return programs_.count(g) > 0; }

    /** Fetch a program; fatal() if missing. */
    const PulseProgram &get(PulseGate g) const;

    /**
     * The baseline library: Gaussian envelopes (sigma = T/4),
     * calibrated by pulse area.  Not optimized for ZZ crosstalk.
     *
     * @param t_gate gate duration in ns (paper: 20 ns).
     */
    static PulseLibrary gaussian(double t_gate = 20.0);

    /**
     * First-order DRAG-corrected variant of this library for a
     * transmon with anharmonicity @p alpha (rad/ns, nonzero): every
     * drive quadrature pair — (x_a, y_a), and (x_b, y_b) of two-qubit
     * programs — is replaced by its applyDrag() correction, cancelling
     * the leading leakage into the second excited state (Sec. 7.2.1).
     * The coupling channel and all durations are unchanged, so gate
     * timings (and therefore schedules) are identical to the base
     * library's.  Per-qubit calibrated anharmonicities produce one
     * variant per distinct alpha (see core::getDraggedLibraryShared).
     */
    PulseLibrary withDrag(double alpha) const;

  private:
    std::string name_;
    std::map<PulseGate, PulseProgram> programs_;
};

} // namespace qzz::pulse

#endif // QZZ_PULSE_LIBRARY_H
