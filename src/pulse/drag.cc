#include "pulse/drag.h"

#include <cmath>

#include "common/error.h"

namespace qzz::pulse {

namespace {

/** w1 + scale * d(w2)/dt, with null waveforms treated as zero. */
class DragCombined : public Waveform
{
  public:
    DragCombined(WaveformPtr base, WaveformPtr deriv_of, double scale,
                 double duration)
        : base_(std::move(base)), deriv_of_(std::move(deriv_of)),
          scale_(scale), duration_(duration)
    {
    }

    double
    value(double t) const override
    {
        double v = base_ ? base_->value(t) : 0.0;
        if (deriv_of_)
            v += scale_ * deriv_of_->derivative(t);
        return v;
    }

    double duration() const override { return duration_; }

  private:
    WaveformPtr base_;
    WaveformPtr deriv_of_;
    double scale_;
    double duration_;
};

} // namespace

QuadraturePair
applyDrag(WaveformPtr x, WaveformPtr y, double alpha)
{
    require(alpha != 0.0, "applyDrag: zero anharmonicity");
    require(x != nullptr || y != nullptr, "applyDrag: both quadratures empty");
    const double T = x ? x->duration() : y->duration();

    QuadraturePair out;
    out.x = std::make_shared<DragCombined>(x, y, 1.0 / alpha, T);
    out.y = std::make_shared<DragCombined>(y, x, -1.0 / alpha, T);
    return out;
}

} // namespace qzz::pulse
