/**
 * @file
 * First-order DRAG correction (Motzoi et al., ref. [45] of the paper).
 *
 * Given a two-level pulse (Omega_x, Omega_y) and the transmon
 * anharmonicity alpha (rad/ns, negative for transmons), DRAG plays
 *
 *   Omega_x' = Omega_x + d(Omega_y)/dt / alpha
 *   Omega_y' = Omega_y - d(Omega_x)/dt / alpha
 *
 * which cancels the leading leakage into the second excited state.
 * The paper applies DRAG *on top of* ZZ-optimized two-level pulses
 * (Sec. 7.2.1, "Leakage Errors").
 */

#ifndef QZZ_PULSE_DRAG_H
#define QZZ_PULSE_DRAG_H

#include "pulse/waveform.h"

namespace qzz::pulse {

/** An (x, y) quadrature pair of waveforms. */
struct QuadraturePair
{
    WaveformPtr x;
    WaveformPtr y;
};

/**
 * Apply the first-order DRAG correction.
 *
 * @param x,y   the original quadratures (either may be null = zero).
 * @param alpha anharmonicity in rad/ns (nonzero).
 * @return the corrected pair.
 */
QuadraturePair applyDrag(WaveformPtr x, WaveformPtr y, double alpha);

} // namespace qzz::pulse

#endif // QZZ_PULSE_DRAG_H
