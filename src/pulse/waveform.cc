#include "pulse/waveform.h"

#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace qzz::pulse {

double
Waveform::derivative(double t) const
{
    const double h = 1e-4;
    return (value(t + h) - value(t - h)) / (2.0 * h);
}

double
Waveform::area(int samples) const
{
    require(samples >= 3, "Waveform::area: too few samples");
    if (samples % 2 == 0)
        ++samples; // Simpson needs an odd count
    const double T = duration();
    const double h = T / double(samples - 1);
    double s = value(0.0) + value(T);
    for (int i = 1; i < samples - 1; ++i)
        s += value(double(i) * h) * (i % 2 == 1 ? 4.0 : 2.0);
    return s * h / 3.0;
}

double
ConstantWaveform::value(double t) const
{
    return (t >= 0.0 && t <= t_) ? amp_ : 0.0;
}

GaussianWaveform::GaussianWaveform(double amp, double t, double sigma)
    : amp_(amp), t_(t), sigma_(sigma)
{
    require(t > 0.0 && sigma > 0.0, "GaussianWaveform: bad parameters");
    edge_ = std::exp(-(t_ / 2.0) * (t_ / 2.0) / (2.0 * sigma_ * sigma_));
}

GaussianWaveform
GaussianWaveform::withArea(double area, double t, double sigma)
{
    GaussianWaveform unit(1.0, t, sigma);
    const double unit_area = unit.area();
    require(std::abs(unit_area) > 1e-12,
            "GaussianWaveform::withArea: degenerate envelope");
    return GaussianWaveform(area / unit_area, t, sigma);
}

double
GaussianWaveform::value(double t) const
{
    if (t < 0.0 || t > t_)
        return 0.0;
    const double x = t - t_ / 2.0;
    const double g = std::exp(-x * x / (2.0 * sigma_ * sigma_));
    return amp_ * (g - edge_) / (1.0 - edge_);
}

double
GaussianWaveform::derivative(double t) const
{
    if (t < 0.0 || t > t_)
        return 0.0;
    const double x = t - t_ / 2.0;
    const double g = std::exp(-x * x / (2.0 * sigma_ * sigma_));
    return amp_ * (-x / (sigma_ * sigma_)) * g / (1.0 - edge_);
}

FourierWaveform::FourierWaveform(std::vector<double> coeffs, double t)
    : coeffs_(std::move(coeffs)), t_(t)
{
    require(t > 0.0, "FourierWaveform: non-positive duration");
    require(!coeffs_.empty(), "FourierWaveform: no coefficients");
}

double
FourierWaveform::value(double t) const
{
    if (t < 0.0 || t > t_)
        return 0.0;
    double s = 0.0;
    for (size_t j = 0; j < coeffs_.size(); ++j) {
        const double phase = kTwoPi * double(j + 1) * t / t_ - kPi;
        s += coeffs_[j] / 2.0 * (1.0 + std::cos(phase));
    }
    return s;
}

double
FourierWaveform::derivative(double t) const
{
    if (t < 0.0 || t > t_)
        return 0.0;
    double s = 0.0;
    for (size_t j = 0; j < coeffs_.size(); ++j) {
        const double w = kTwoPi * double(j + 1) / t_;
        s += -coeffs_[j] / 2.0 * w * std::sin(w * t - kPi);
    }
    return s;
}

double
FourierWaveform::exactArea() const
{
    double s = 0.0;
    for (double a : coeffs_)
        s += a;
    return s * t_ / 2.0;
}

SequenceWaveform::SequenceWaveform(std::vector<WaveformPtr> segments)
    : segments_(std::move(segments))
{
    require(!segments_.empty(), "SequenceWaveform: empty sequence");
    for (const auto &seg : segments_) {
        offsets_.push_back(total_);
        total_ += seg->duration();
    }
}

double
SequenceWaveform::value(double t) const
{
    if (t < 0.0 || t > total_)
        return 0.0;
    // Find the segment containing t (few segments; linear scan).
    for (size_t i = segments_.size(); i-- > 0;) {
        if (t >= offsets_[i]) {
            return segments_[i]->value(t - offsets_[i]);
        }
    }
    return 0.0;
}

double
SequenceWaveform::derivative(double t) const
{
    if (t < 0.0 || t > total_)
        return 0.0;
    for (size_t i = segments_.size(); i-- > 0;) {
        if (t >= offsets_[i]) {
            return segments_[i]->derivative(t - offsets_[i]);
        }
    }
    return 0.0;
}

WaveformPtr
negate(WaveformPtr base)
{
    return std::make_shared<ScaledWaveform>(std::move(base), -1.0);
}

} // namespace qzz::pulse
