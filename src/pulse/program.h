/**
 * @file
 * Pulse programs: the set of channel envelopes implementing one gate.
 *
 * Channel layout follows the paper's effective Hamiltonians (Figs. 6
 * and 7): x/y drive quadratures per acted-on qubit, plus one coupling
 * channel for two-qubit gates (which multiplies H_Coupling, here
 * sigma_z (x) sigma_x for the cross-resonance Rzx gate).
 */

#ifndef QZZ_PULSE_PROGRAM_H
#define QZZ_PULSE_PROGRAM_H

#include <string>

#include "pulse/waveform.h"

namespace qzz::pulse {

/** The pulses of one native gate. */
struct PulseProgram
{
    /** Gate duration in ns (all channels share it). */
    double duration = 0.0;
    /** True for two-qubit programs (b channels + coupling active). */
    bool two_qubit = false;

    /** Drive quadratures on the first qubit (null = zero). */
    WaveformPtr x_a;
    WaveformPtr y_a;
    /** Drive quadratures on the second qubit (two-qubit gates). */
    WaveformPtr x_b;
    WaveformPtr y_b;
    /** Coupling channel Omega_(a-b)(t) (two-qubit gates). */
    WaveformPtr coupling;

    /** Evaluate a channel, treating null as zero. */
    static double
    eval(const WaveformPtr &w, double t)
    {
        return w ? w->value(t) : 0.0;
    }

    /** Construct a single-qubit program. */
    static PulseProgram singleQubit(WaveformPtr x, WaveformPtr y);

    /** Construct a two-qubit program. */
    static PulseProgram twoQubit(WaveformPtr x_a, WaveformPtr y_a,
                                 WaveformPtr x_b, WaveformPtr y_b,
                                 WaveformPtr coupling);

    /** A do-nothing single-qubit program of the given duration. */
    static PulseProgram idle(double duration);

    /** Copy with every non-null channel amplitude-scaled. */
    PulseProgram scaled(double factor) const;
};

} // namespace qzz::pulse

#endif // QZZ_PULSE_PROGRAM_H
