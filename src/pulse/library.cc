#include "pulse/library.h"

#include <sstream>

#include "common/error.h"
#include "common/units.h"
#include "pulse/drag.h"

namespace qzz::pulse {

std::string
pulseGateName(PulseGate g)
{
    switch (g) {
    case PulseGate::SX:
        return "Rx(pi/2)";
    case PulseGate::Identity:
        return "I";
    case PulseGate::RZX:
        return "Rzx(pi/2)";
    }
    return "?";
}

void
PulseLibrary::set(PulseGate g, PulseProgram p)
{
    programs_[g] = std::move(p);
}

const PulseProgram &
PulseLibrary::get(PulseGate g) const
{
    auto it = programs_.find(g);
    // Message built only on failure: get() sits on simulator hot
    // paths, and eager concatenation allocated several strings per
    // successful lookup.
    if (it == programs_.end())
        fatal("PulseLibrary '" + name_ + "': no program for " +
              pulseGateName(g));
    return it->second;
}

PulseLibrary
PulseLibrary::withDrag(double alpha) const
{
    require(alpha != 0.0, "PulseLibrary::withDrag: zero anharmonicity");
    std::ostringstream name;
    name.precision(6);
    name << name_ << "+DRAG(" << toMhz(alpha) << " MHz)";
    PulseLibrary out(name.str());
    for (const auto &[gate, program] : programs_) {
        PulseProgram corrected = program;
        if (program.x_a || program.y_a) {
            QuadraturePair pair =
                applyDrag(program.x_a, program.y_a, alpha);
            corrected.x_a = std::move(pair.x);
            corrected.y_a = std::move(pair.y);
        }
        if (program.x_b || program.y_b) {
            QuadraturePair pair =
                applyDrag(program.x_b, program.y_b, alpha);
            corrected.x_b = std::move(pair.x);
            corrected.y_b = std::move(pair.y);
        }
        out.set(gate, std::move(corrected));
    }
    return out;
}

PulseLibrary
PulseLibrary::gaussian(double t_gate)
{
    require(t_gate > 0.0, "gaussian library: bad duration");
    PulseLibrary lib("Gaussian");
    const double sigma = t_gate / 4.0;

    // Rotation angle theta = 2 * integral(Omega) for H = Omega sigma_x.
    auto envelope = [&](double angle) {
        return std::make_shared<GaussianWaveform>(
            GaussianWaveform::withArea(angle / 2.0, t_gate, sigma));
    };

    lib.set(PulseGate::SX,
            PulseProgram::singleQubit(envelope(kPi / 2.0), nullptr));
    lib.set(PulseGate::Identity,
            PulseProgram::singleQubit(envelope(2.0 * kPi), nullptr));
    // Rzx(pi/2) = exp(-i pi/4 Z(x)X): coupling channel area pi/4.
    lib.set(PulseGate::RZX,
            PulseProgram::twoQubit(nullptr, nullptr, nullptr, nullptr,
                                   envelope(kPi / 2.0)));
    return lib;
}

} // namespace qzz::pulse
