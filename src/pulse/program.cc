#include "pulse/program.h"

#include "common/error.h"

namespace qzz::pulse {

PulseProgram
PulseProgram::singleQubit(WaveformPtr x, WaveformPtr y)
{
    require(x != nullptr || y != nullptr, "PulseProgram::singleQubit: no channels");
    PulseProgram p;
    p.duration = x ? x->duration() : y->duration();
    p.two_qubit = false;
    p.x_a = std::move(x);
    p.y_a = std::move(y);
    return p;
}

PulseProgram
PulseProgram::twoQubit(WaveformPtr x_a, WaveformPtr y_a, WaveformPtr x_b,
                       WaveformPtr y_b, WaveformPtr coupling)
{
    require(coupling != nullptr, "PulseProgram::twoQubit: coupling channel required");
    PulseProgram p;
    p.duration = coupling->duration();
    p.two_qubit = true;
    p.x_a = std::move(x_a);
    p.y_a = std::move(y_a);
    p.x_b = std::move(x_b);
    p.y_b = std::move(y_b);
    p.coupling = std::move(coupling);
    return p;
}

PulseProgram
PulseProgram::idle(double duration)
{
    PulseProgram p;
    p.duration = duration;
    p.two_qubit = false;
    return p;
}

PulseProgram
PulseProgram::scaled(double factor) const
{
    auto scale = [&](const WaveformPtr &w) -> WaveformPtr {
        if (!w)
            return nullptr;
        return std::make_shared<ScaledWaveform>(w, factor);
    };
    PulseProgram p = *this;
    p.x_a = scale(x_a);
    p.y_a = scale(y_a);
    p.x_b = scale(x_b);
    p.y_b = scale(y_b);
    p.coupling = scale(coupling);
    return p;
}

} // namespace qzz::pulse
