#include "service/transport.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.h"

namespace qzz::svc {

// ---------------------------------------------------------------------------
// Stream (stdio) transport
// ---------------------------------------------------------------------------

bool
StreamConnection::readLine(std::string &line)
{
    return bool(std::getline(in_, line));
}

bool
StreamConnection::write(const std::string &data)
{
    out_ << data << std::flush;
    return bool(out_);
}

std::unique_ptr<Connection>
StdioTransport::accept()
{
    if (done_.exchange(true))
        return nullptr;
    return std::make_unique<StreamConnection>(in_, out_);
}

// ---------------------------------------------------------------------------
// Socket transport
// ---------------------------------------------------------------------------

namespace {

/** A connected socket session with idle-timeout and line-length
 *  bounds.  Owns the fd. */
class SocketConnection : public Connection
{
  public:
    SocketConnection(int fd, std::string peer,
                     std::chrono::milliseconds idle_timeout,
                     size_t max_line_bytes)
        : fd_(fd), peer_(std::move(peer)), idle_timeout_(idle_timeout),
          max_line_bytes_(max_line_bytes)
    {
    }

    ~SocketConnection() override
    {
        if (fd_ >= 0) {
            ::shutdown(fd_, SHUT_RDWR);
            ::close(fd_);
        }
    }

    bool
    readLine(std::string &line) override
    {
        for (;;) {
            const auto nl = buf_.find('\n');
            if (nl != std::string::npos) {
                line.assign(buf_, 0, nl);
                buf_.erase(0, nl + 1);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                return true;
            }
            if (buf_.size() > max_line_bytes_)
                return false; // overlong request: drop the session
            if (eof_) {
                // Deliver a final unterminated line once, like
                // std::getline, then report end of stream.
                if (buf_.empty())
                    return false;
                line.swap(buf_);
                buf_.clear();
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                return true;
            }
            if (idle_timeout_.count() > 0) {
                struct pollfd pfd = {fd_, POLLIN, 0};
                const int rc =
                    ::poll(&pfd, 1, int(idle_timeout_.count()));
                if (rc == 0)
                    return false; // idle timeout: disconnect
                if (rc < 0) {
                    if (errno == EINTR)
                        continue;
                    return false;
                }
            }
            char chunk[4096];
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n > 0) {
                buf_.append(chunk, size_t(n));
            } else if (n == 0) {
                eof_ = true;
            } else if (errno != EINTR) {
                return false;
            }
        }
    }

    bool
    write(const std::string &data) override
    {
        size_t off = 0;
        while (off < data.size()) {
            // MSG_NOSIGNAL: a vanished peer must read as an error on
            // this session, not SIGPIPE the whole server.
            const ssize_t n = ::send(fd_, data.data() + off,
                                     data.size() - off, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            off += size_t(n);
        }
        return true;
    }

    std::string peer() const override { return peer_; }

  private:
    int fd_;
    std::string peer_;
    std::chrono::milliseconds idle_timeout_;
    size_t max_line_bytes_;
    std::string buf_;
    bool eof_ = false;
};

} // namespace

SocketTransport::SocketTransport(SocketTransportConfig config)
    : config_(std::move(config))
{
    const std::string &spec = config_.listen;
    int fd = -1;
    if (spec.rfind("unix:", 0) == 0) {
        const std::string path = spec.substr(5);
        require(!path.empty(), "SocketTransport: empty unix socket path");
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        require(path.size() < sizeof(addr.sun_path),
                "SocketTransport: unix socket path too long: " + path);
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0)
            fatal("SocketTransport: socket(): " +
                  std::string(std::strerror(errno)));
        // A stale path from a crashed predecessor would fail bind;
        // this server is taking over the endpoint.
        ::unlink(path.c_str());
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            const int err = errno;
            ::close(fd);
            fatal("SocketTransport: bind(" + path +
                  "): " + std::strerror(err));
        }
        unix_path_ = path;
        name_ = "unix:" + path;
    } else if (spec.rfind("tcp:", 0) == 0) {
        std::string host = "0.0.0.0";
        std::string port_str = spec.substr(4);
        const auto colon = port_str.rfind(':');
        if (colon != std::string::npos) {
            host = port_str.substr(0, colon);
            port_str = port_str.substr(colon + 1);
            if (host == "localhost")
                host = "127.0.0.1";
        }
        int port = -1;
        try {
            size_t used = 0;
            port = std::stoi(port_str, &used);
            if (used != port_str.size())
                port = -1;
        } catch (const std::exception &) {
        }
        require(port >= 0 && port <= 65535,
                "SocketTransport: bad tcp port in '" + spec + "'");
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(uint16_t(port));
        require(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                "SocketTransport: bad tcp host in '" + spec + "'");
        fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0)
            fatal("SocketTransport: socket(): " +
                  std::string(std::strerror(errno)));
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            const int err = errno;
            ::close(fd);
            fatal("SocketTransport: bind(" + spec +
                  "): " + std::strerror(err));
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                          &len) == 0)
            port_ = int(ntohs(bound.sin_port));
        name_ = "tcp:" + host + ":" + std::to_string(port_);
    } else {
        fatal("SocketTransport: listen spec must be tcp:[HOST:]PORT or "
              "unix:PATH, got '" +
              spec + "'");
    }
    if (::listen(fd, 64) != 0) {
        const int err = errno;
        ::close(fd);
        fatal("SocketTransport: listen(" + name_ +
              "): " + std::strerror(err));
    }
    if (::pipe2(wake_fds_, O_CLOEXEC) != 0) {
        const int err = errno;
        ::close(fd);
        fatal("SocketTransport: pipe2(): " +
              std::string(std::strerror(err)));
    }
    listen_fd_ = fd;
}

SocketTransport::~SocketTransport()
{
    shutdown();
    if (listen_fd_ >= 0)
        ::close(listen_fd_);
    for (int fd : wake_fds_)
        if (fd >= 0)
            ::close(fd);
    if (!unix_path_.empty())
        ::unlink(unix_path_.c_str());
}

std::unique_ptr<Connection>
SocketTransport::accept()
{
    while (!down_.load()) {
        struct pollfd pfds[2] = {{listen_fd_, POLLIN, 0},
                                 {wake_fds_[0], POLLIN, 0}};
        const int rc = ::poll(pfds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return nullptr;
        }
        if (pfds[1].revents != 0)
            return nullptr; // shutdown() wrote the wake byte
        if ((pfds[0].revents & POLLIN) == 0)
            continue;
        sockaddr_storage peer_addr{};
        socklen_t len = sizeof(peer_addr);
        const int fd =
            ::accept(listen_fd_,
                     reinterpret_cast<sockaddr *>(&peer_addr), &len);
        if (fd < 0)
            continue; // transient (ECONNABORTED, EINTR, ...)
        std::string peer = "?";
        if (peer_addr.ss_family == AF_INET) {
            const auto *in4 =
                reinterpret_cast<const sockaddr_in *>(&peer_addr);
            char host[INET_ADDRSTRLEN] = {0};
            ::inet_ntop(AF_INET, &in4->sin_addr, host, sizeof(host));
            peer = std::string(host) + ":" +
                   std::to_string(ntohs(in4->sin_port));
        } else if (peer_addr.ss_family == AF_UNIX) {
            peer = name_;
        }
        return std::make_unique<SocketConnection>(
            fd, std::move(peer), config_.idle_timeout,
            config_.max_line_bytes);
    }
    return nullptr;
}

void
SocketTransport::shutdown()
{
    if (down_.exchange(true))
        return;
    // Async-signal-safe by design: a signal-watcher thread (or even a
    // handler) only needs this one write() to stop the accept loop.
    const char byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
}

} // namespace qzz::svc
