/**
 * @file
 * Minimal JSON-lines request parsing for the service front-end.
 *
 * The compile_server protocol is one flat JSON object per line with
 * string / number / boolean / null values — no nesting is needed to
 * describe a compilation request, so none is accepted.  The parser is
 * strict about what it does handle (escapes, exponents, type errors
 * carry positions) and rejects everything else with a clear message,
 * instead of silently mis-reading a malformed request.
 */

#ifndef QZZ_SERVICE_JSONL_H
#define QZZ_SERVICE_JSONL_H

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

namespace qzz::svc {

/** One scalar field value of a request object. */
using JsonScalar = std::variant<std::nullptr_t, bool, double, std::string>;

/** A parsed flat JSON object (ordered for deterministic output). */
class JsonObject
{
  public:
    /**
     * Parse one JSON-lines record.  On failure returns nullopt and,
     * when @p error is non-null, stores a human-readable description
     * including the byte offset.
     */
    static std::optional<JsonObject> parse(std::string_view line,
                                           std::string *error = nullptr);

    bool has(const std::string &key) const;

    /** Typed accessors; nullopt when absent or differently typed. */
    std::optional<std::string> getString(const std::string &key) const;
    std::optional<double> getNumber(const std::string &key) const;
    std::optional<bool> getBool(const std::string &key) const;
    /** getNumber() rounded; nullopt when absent or not integral. */
    std::optional<int64_t> getInt(const std::string &key) const;

    const std::map<std::string, JsonScalar> &fields() const
    {
        return fields_;
    }

  private:
    std::map<std::string, JsonScalar> fields_;
};

/** Escape @p s for embedding in a JSON string literal. */
std::string jsonEscape(std::string_view s);

} // namespace qzz::svc

#endif // QZZ_SERVICE_JSONL_H
