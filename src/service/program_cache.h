/**
 * @file
 * ProgramCache: a sharded, mutex-striped in-memory LRU of compiled
 * programs keyed by request fingerprint, with an optional on-disk
 * artifact tier.
 *
 * Requests for the same (circuit DAG, device, options) triple
 * fingerprint identically (service/fingerprint.h) and compilation is
 * deterministic, so a cached CompiledProgram is bit-identical to what
 * a cold compile would produce — the cache hands out shared_ptrs to
 * immutable programs instead of recompiling.
 *
 * Concurrency: keys are striped over N independent shards (fingerprint
 * low bits), each with its own mutex, LRU list and map, so concurrent
 * service workers rarely contend.  Counters are lock-free atomics.
 *
 * Disk tier: when an artifact directory is configured, insertions are
 * persisted as "<fingerprint>.qzzprog" via the same write-private-
 * temp-then-rename pattern as the pulse calibration store, so
 * concurrent writers can never leave a torn artifact; misses fall
 * back to loading from disk (surviving process restarts and sharing
 * warm state between processes).  Each persisted artifact is recorded
 * in the directory's manifest.jsonl under an advisory file lock, and
 * the tier is bounded by svc::ArtifactGc (artifact_gc.h): N server
 * processes share one directory, with lock-free readers falling back
 * to a miss when GC races an eviction under them.  Disk hits touch
 * the artifact's mtime so the GC's LRU order tracks use, not just
 * creation.
 */

#ifndef QZZ_SERVICE_PROGRAM_CACHE_H
#define QZZ_SERVICE_PROGRAM_CACHE_H

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/telemetry.h"
#include "core/framework.h"
#include "service/fingerprint.h"

namespace qzz::svc {

class ArtifactGc;

/** ProgramCache construction knobs. */
struct ProgramCacheConfig
{
    /** Total in-memory entry bound across all shards (>= 1).  The
     *  effective bound is shards * ceil(capacity / shards): never
     *  below this value, at most shards - 1 above it. */
    size_t capacity = 256;
    /** Mutex stripes; rounded up to a power of two, capped by
     *  capacity so every shard can hold at least one entry. */
    int shards = 8;
    /** On-disk artifact tier directory; empty disables the tier. */
    std::string artifact_dir;
    /** Artifact-tier garbage collector (artifact_gc.h).  When set,
     *  every artifact write is followed by ArtifactGc::maybeCollect()
     *  so the directory's byte bound holds under load instead of
     *  waiting for the next periodic pass. */
    std::shared_ptr<ArtifactGc> gc;
    /** Instrument registry the cache reports into (qzz_cache_*);
     *  null gives the cache a private registry. */
    std::shared_ptr<tel::MetricsRegistry> metrics;
};

/** Monotonic counters + current occupancy of a ProgramCache. */
struct ProgramCacheStats
{
    uint64_t hits = 0;        ///< in-memory lookup hits
    uint64_t misses = 0;      ///< lookups answered by neither tier
    uint64_t evictions = 0;   ///< LRU entries dropped for capacity
    uint64_t insertions = 0;  ///< successful insert() calls
    uint64_t disk_hits = 0;   ///< misses rescued by the artifact tier
    uint64_t disk_writes = 0; ///< artifacts persisted
    /** Cumulative artifact bytes persisted to the disk tier — the
     *  write-side number the GC's byte bound meters against. */
    uint64_t disk_bytes_written = 0;
    size_t entries = 0;       ///< current in-memory entry count
    /** Sum of the per-entry artifact byte sizes of the in-memory
     *  entries (each entry's size is its serialized-artifact length,
     *  the same accounting unit as the on-disk manifest). */
    uint64_t entry_bytes = 0;

    double
    hitRate() const
    {
        const uint64_t total = hits + disk_hits + misses;
        return total == 0 ? 0.0
                          : double(hits + disk_hits) / double(total);
    }
};

/** Sharded LRU cache of immutable compiled programs. */
class ProgramCache
{
  public:
    explicit ProgramCache(ProgramCacheConfig config = {});

    ProgramCache(const ProgramCache &) = delete;
    ProgramCache &operator=(const ProgramCache &) = delete;

    /**
     * Fetch the program for @p key, refreshing its LRU position.
     * Falls back to the artifact tier on an in-memory miss (the
     * loaded program is promoted into memory).  nullptr on miss.
     */
    std::shared_ptr<const core::CompiledProgram>
    lookup(const Fingerprint &key);

    /**
     * Insert @p program under @p key (no-op if already present,
     * refreshing recency).  Evicts the shard's least-recently-used
     * entries beyond capacity and persists to the artifact tier.
     */
    void insert(const Fingerprint &key,
                std::shared_ptr<const core::CompiledProgram> program);

    /**
     * True iff @p key is resident in the in-memory tier right now.
     * Touches no counters and no LRU state, and never goes to disk —
     * this is the cheap admission probe (compile_service.h boosts
     * requests whose fingerprint is already warm), not a lookup.
     */
    bool contains(const Fingerprint &key) const;

    /** Drop every in-memory entry (artifact tier is untouched). */
    void clear();

    /**
     * Drop every in-memory entry compiled against a calibration epoch
     * below @p min_epoch — the invalidation half of a calibration
     * roll (CalibrationHub).  The artifact tier is untouched: disk
     * entries are retired by ArtifactGc's keep_epochs bound instead.
     * Returns the number of entries removed.
     */
    size_t sweepEpochsBelow(uint64_t min_epoch);

    /** Current in-memory entry count. */
    size_t size() const;

    /** Snapshot of the counters. */
    ProgramCacheStats stats() const;

    const ProgramCacheConfig &config() const { return config_; }

  private:
    struct Entry
    {
        Fingerprint key;
        std::shared_ptr<const core::CompiledProgram> program;
        /** Serialized-artifact size (the manifest accounting unit). */
        uint64_t bytes = 0;
    };
    struct Shard
    {
        mutable std::mutex mu;
        /** Front = most recently used. */
        std::list<Entry> lru;
        std::unordered_map<Fingerprint, std::list<Entry>::iterator,
                           FingerprintHash>
            map;
        /** Sum of Entry::bytes over this shard's entries. */
        uint64_t bytes = 0;
    };

    Shard &shardFor(const Fingerprint &key);
    const Shard &shardFor(const Fingerprint &key) const;
    void insertLocked(Shard &shard, const Fingerprint &key,
                      std::shared_ptr<const core::CompiledProgram> program,
                      uint64_t bytes);
    std::shared_ptr<const core::CompiledProgram>
    loadArtifact(const Fingerprint &key, uint64_t &bytes);
    void storeArtifact(const Fingerprint &key, const std::string &serialized,
                       uint64_t calib_epoch);

    ProgramCacheConfig config_;
    size_t shard_capacity_ = 1;
    std::vector<std::unique_ptr<Shard>> shards_;

    /** Keeps the fallback registry alive when none was configured;
     *  the instruments below live in it (or the shared one). */
    std::shared_ptr<tel::MetricsRegistry> registry_;
    tel::Counter *hits_ = nullptr;
    tel::Counter *misses_ = nullptr;
    tel::Counter *evictions_ = nullptr;
    tel::Counter *insertions_ = nullptr;
    tel::Counter *disk_hits_ = nullptr;
    tel::Counter *disk_writes_ = nullptr;
    tel::Counter *disk_bytes_written_ = nullptr;
    tel::Gauge *entries_gauge_ = nullptr;
    tel::Gauge *entry_bytes_gauge_ = nullptr;
};

} // namespace qzz::svc

#endif // QZZ_SERVICE_PROGRAM_CACHE_H
