#include "service/artifact_gc.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <unordered_map>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "service/jsonl.h"

namespace qzz::svc {

namespace fs = std::filesystem;

namespace {

fs::path
manifestPath(const std::string &dir)
{
    return fs::path(dir) / "manifest.jsonl";
}

fs::path
lockPath(const std::string &dir)
{
    return fs::path(dir) / "manifest.lock";
}

int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

/** File mtime as milliseconds since the Unix epoch; 0 on error. */
int64_t
fileMtimeMs(const fs::path &path)
{
    std::error_code ec;
    const auto ftime = fs::last_write_time(path, ec);
    if (ec)
        return 0;
    // Portable file_clock -> system_clock conversion (clock_cast is
    // not in this libstdc++): rebase by the distance between the two
    // clocks' nows.  Millisecond-exact is not needed — the GC only
    // orders artifacts relative to each other.
    const auto sys = std::chrono::system_clock::now() +
                     std::chrono::duration_cast<
                         std::chrono::system_clock::duration>(
                         ftime - fs::file_time_type::clock::now());
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               sys.time_since_epoch())
        .count();
}

std::string
manifestLine(const ManifestEntry &e)
{
    std::ostringstream os;
    os << "{\"fp\":\"" << e.fp.hex() << "\",\"bytes\":" << e.bytes
       << ",\"mtime_ms\":" << e.mtime_ms
       << ",\"calib_epoch\":" << e.calib_epoch << "}";
    return os.str();
}

/** Read just the calib_epoch header field of an artifact file (the
 *  fourth line; see artifact.cc), for adopting files the manifest
 *  does not list.  0 when unreadable. */
uint64_t
readArtifactEpoch(const fs::path &path)
{
    std::ifstream in(path);
    std::string line;
    for (int i = 0; i < 4 && std::getline(in, line); ++i) {
        std::istringstream ls(line);
        std::string tag;
        uint64_t epoch = 0;
        if ((ls >> tag) && tag == "calib_epoch" && (ls >> epoch))
            return epoch;
    }
    return 0;
}

} // namespace

// ---------------------------------------------------------------------------
// Locking + manifest I/O
// ---------------------------------------------------------------------------

ArtifactDirLock::ArtifactDirLock(const std::string &dir)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        return;
    const int fd =
        ::open(lockPath(dir).c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd < 0)
        return;
    if (::flock(fd, LOCK_EX) != 0) {
        ::close(fd);
        return;
    }
    fd_ = fd;
}

ArtifactDirLock::~ArtifactDirLock()
{
    if (fd_ >= 0) {
        ::flock(fd_, LOCK_UN);
        ::close(fd_);
    }
}

bool
appendManifestEntry(const std::string &dir, const ManifestEntry &e)
{
    ArtifactDirLock lock(dir);
    if (!lock.ok())
        return false;
    const fs::path path = manifestPath(dir);
    std::error_code ec;
    const bool fresh = !fs::exists(path, ec) || fs::file_size(path, ec) == 0;
    std::ofstream out(path, std::ios::app);
    if (!out)
        return false;
    if (fresh)
        out << "{\"qzz_manifest\":" << kManifestVersion << "}\n";
    out << manifestLine(e) << "\n";
    out.flush();
    return out.good();
}

std::vector<ManifestEntry>
readManifest(const std::string &dir)
{
    std::vector<ManifestEntry> entries;
    std::ifstream in(manifestPath(dir));
    if (!in)
        return entries;
    std::string line;
    bool header_ok = false;
    while (std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        const auto obj = JsonObject::parse(line);
        if (!obj)
            continue; // a torn append tail reads as absent, never fatal
        if (!header_ok) {
            // First parseable line must be a matching version header;
            // otherwise the whole file is treated as absent and the
            // next GC pass rebuilds it from the directory scan.
            const auto version = obj->getInt("qzz_manifest");
            if (!version || *version != kManifestVersion)
                return {};
            header_ok = true;
            continue;
        }
        const auto fp_hex = obj->getString("fp");
        const auto bytes = obj->getInt("bytes");
        const auto mtime = obj->getInt("mtime_ms");
        const auto epoch = obj->getInt("calib_epoch");
        if (!fp_hex || !bytes || !mtime || !epoch || *bytes < 0 ||
            *epoch < 0)
            continue;
        const auto fp = Fingerprint::fromHex(*fp_hex);
        if (!fp)
            continue;
        entries.push_back(
            {*fp, uint64_t(*bytes), *mtime, uint64_t(*epoch)});
    }
    return entries;
}

// ---------------------------------------------------------------------------
// ArtifactGc
// ---------------------------------------------------------------------------

ArtifactGc::ArtifactGc(std::string dir, ArtifactGcConfig config,
                       std::shared_ptr<tel::MetricsRegistry> metrics)
    : dir_(std::move(dir)), config_(config),
      registry_(metrics ? std::move(metrics)
                        : std::make_shared<tel::MetricsRegistry>())
{
    tel::MetricsRegistry &reg = *registry_;
    passes_counter_ =
        &reg.counter("qzz_gc_passes_total", "Artifact GC passes run.");
    evicted_counter_ = &reg.counter("qzz_gc_evicted_total",
                                    "Artifacts deleted by GC.");
    evicted_age_counter_ = &reg.counter(
        "qzz_gc_evicted_age_total", "Artifacts evicted for max_age.");
    evicted_epoch_counter_ =
        &reg.counter("qzz_gc_evicted_epoch_total",
                     "Artifacts evicted for a stale calib_epoch.");
    evicted_capacity_counter_ =
        &reg.counter("qzz_gc_evicted_capacity_total",
                     "Artifacts evicted under the byte bound (LRU).");
    tier_bytes_gauge_ =
        &reg.gauge("qzz_gc_tier_bytes",
                   "Artifact-tier bytes after the last GC pass.");
}

ArtifactGc::~ArtifactGc() { stop(); }

uint64_t
ArtifactGc::directoryBytes() const
{
    uint64_t total = 0;
    std::error_code ec;
    for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (it->path().extension() != ".qzzprog")
            continue;
        std::error_code size_ec;
        const auto size = fs::file_size(it->path(), size_ec);
        if (!size_ec)
            total += size;
    }
    return total;
}

ArtifactGcStats
ArtifactGc::run()
{
    ArtifactGcStats stats;
    std::error_code ec;
    if (!fs::is_directory(dir_, ec) || ec)
        return stats;

    // The lock serializes this pass against manifest appends and GC
    // passes in every process sharing the directory.  A failed lock
    // degrades to best effort: deletions stay safe (remove tolerates
    // a concurrent unlink) and a lost manifest append is re-adopted
    // by the next pass.
    ArtifactDirLock lock(dir_);

    struct Item
    {
        ManifestEntry entry;
        bool present = false;
        bool evict = false;
    };
    std::unordered_map<std::string, Item> items;
    for (const ManifestEntry &e : readManifest(dir_)) {
        ++stats.manifest_entries;
        items[e.fp.hex()].entry = e; // last append wins
    }

    // Reconcile with the directory: stat() is the authority on size
    // and recency; the manifest's calib_epoch survives (the file
    // header is only parsed for adopted strays).
    for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
         it.increment(ec)) {
        const fs::path &path = it->path();
        if (path.extension() != ".qzzprog")
            continue;
        const auto fp = Fingerprint::fromHex(path.stem().string());
        if (!fp)
            continue;
        std::error_code size_ec;
        const uint64_t bytes = fs::file_size(path, size_ec);
        if (size_ec)
            continue;
        auto [slot, inserted] = items.try_emplace(fp->hex());
        if (inserted) {
            ++stats.adopted;
            slot->second.entry.fp = *fp;
            slot->second.entry.calib_epoch = readArtifactEpoch(path);
        }
        slot->second.entry.bytes = bytes;
        slot->second.entry.mtime_ms = fileMtimeMs(path);
        slot->second.present = true;
    }

    std::vector<Item *> live;
    for (auto &[hex, item] : items) {
        if (!item.present) {
            ++stats.dropped_lines;
            continue;
        }
        ++stats.scanned;
        stats.bytes_before += item.entry.bytes;
        stats.max_epoch = std::max(stats.max_epoch, item.entry.calib_epoch);
        live.push_back(&item);
    }

    // Bound 1 + 2: age and stale calibration epochs.
    const int64_t now = nowMs();
    uint64_t remaining = stats.bytes_before;
    for (Item *item : live) {
        if (config_.max_age.count() > 0 &&
            now - item->entry.mtime_ms > config_.max_age.count()) {
            item->evict = true;
            ++stats.evicted_age;
        } else if (config_.keep_epochs > 0 &&
                   item->entry.calib_epoch + uint64_t(config_.keep_epochs) <=
                       stats.max_epoch) {
            item->evict = true;
            ++stats.evicted_epoch;
        }
        if (item->evict)
            remaining -= item->entry.bytes;
    }

    // Bound 3: byte capacity, LRU by mtime over the survivors.
    if (config_.capacity_bytes > 0 && remaining > config_.capacity_bytes) {
        std::vector<Item *> survivors;
        for (Item *item : live)
            if (!item->evict)
                survivors.push_back(item);
        std::sort(survivors.begin(), survivors.end(),
                  [](const Item *a, const Item *b) {
                      if (a->entry.mtime_ms != b->entry.mtime_ms)
                          return a->entry.mtime_ms < b->entry.mtime_ms;
                      return a->entry.fp.hex() < b->entry.fp.hex();
                  });
        for (Item *item : survivors) {
            if (remaining <= config_.capacity_bytes)
                break;
            item->evict = true;
            ++stats.evicted_capacity;
            remaining -= item->entry.bytes;
        }
    }

    std::vector<const ManifestEntry *> kept;
    for (Item *item : live) {
        if (item->evict) {
            ++stats.evicted;
            std::error_code rm_ec;
            fs::remove(fs::path(dir_) /
                           (item->entry.fp.hex() + ".qzzprog"),
                       rm_ec);
        } else {
            stats.bytes_after += item->entry.bytes;
            kept.push_back(&item->entry);
        }
    }

    // Compact the manifest (temp + rename, like every other writer in
    // this codebase: a crashed GC can never leave a torn manifest).
    const fs::path final_path = manifestPath(dir_);
    const fs::path tmp = final_path.string() + ".tmp." +
                         std::to_string(uint64_t(::getpid()));
    bool ok = false;
    {
        std::ofstream out(tmp);
        if (out) {
            out << "{\"qzz_manifest\":" << kManifestVersion << "}\n";
            for (const ManifestEntry *e : kept)
                out << manifestLine(*e) << "\n";
            out.flush();
            ok = out.good();
        }
    }
    std::error_code rename_ec;
    if (ok)
        fs::rename(tmp, final_path, rename_ec);
    if (!ok || rename_ec)
        fs::remove(tmp, rename_ec);

    passes_.fetch_add(1, std::memory_order_relaxed);
    passes_counter_->inc();
    evicted_counter_->inc(stats.evicted);
    evicted_age_counter_->inc(stats.evicted_age);
    evicted_epoch_counter_->inc(stats.evicted_epoch);
    evicted_capacity_counter_->inc(stats.evicted_capacity);
    tier_bytes_gauge_->set(double(stats.bytes_after));
    {
        std::lock_guard<std::mutex> guard(stats_mu_);
        last_stats_ = stats;
    }
    return stats;
}

void
ArtifactGc::maybeCollect()
{
    if (config_.capacity_bytes == 0)
        return;
    if (directoryBytes() <= config_.capacity_bytes)
        return;
    // One pass at a time per process: a burst of writers triggers a
    // single collection, not a pileup behind the directory lock.
    if (collecting_.exchange(true))
        return;
    run();
    collecting_.store(false);
}

ArtifactGcStats
ArtifactGc::lastStats() const
{
    std::lock_guard<std::mutex> guard(stats_mu_);
    return last_stats_;
}

void
ArtifactGc::start(std::chrono::milliseconds interval)
{
    std::lock_guard<std::mutex> guard(bg_mu_);
    if (bg_thread_.joinable() || interval.count() <= 0)
        return;
    bg_stop_ = false;
    bg_thread_ = std::thread([this, interval] {
        std::unique_lock<std::mutex> lock(bg_mu_);
        while (!bg_cv_.wait_for(lock, interval,
                                [this] { return bg_stop_; })) {
            lock.unlock();
            run();
            lock.lock();
        }
    });
}

void
ArtifactGc::stop()
{
    std::thread joinee;
    {
        std::lock_guard<std::mutex> guard(bg_mu_);
        bg_stop_ = true;
        joinee.swap(bg_thread_);
    }
    bg_cv_.notify_all();
    if (joinee.joinable())
        joinee.join();
}

} // namespace qzz::svc
