/**
 * @file
 * Pluggable byte transports for the JSON-lines serving front-end.
 *
 * A Transport accepts Connections; each Connection is one client
 * session speaking the line protocol (docs/protocol.md).  Two
 * implementations:
 *
 *   - StdioTransport: exactly one session over a std::istream /
 *     std::ostream pair (stdin/stdout by default) — the classic
 *     pipe-driven daemon, bit-compatible with the original
 *     compile_server loop.  Also the test seam: point it at
 *     stringstreams to drive a session in-process.
 *
 *   - SocketTransport: a TCP ("tcp:[HOST:]PORT") or Unix-domain
 *     ("unix:PATH") listener serving one session per accepted
 *     connection.  Sessions get per-connection DoS bounds the stdio
 *     path deliberately lacks: an idle timeout (a silent peer is
 *     disconnected) and a maximum line length (an unterminated
 *     request cannot grow the buffer unboundedly).  accept() blocks
 *     in poll() on the listener plus a self-pipe, so shutdown() —
 *     including from a signal-watcher thread — wakes it immediately
 *     for a graceful drain.
 *
 * Connections are blocking and owned by exactly one session thread;
 * none of these classes is thread-safe per instance except
 * Transport::shutdown(), which may race accept().
 */

#ifndef QZZ_SERVICE_TRANSPORT_H
#define QZZ_SERVICE_TRANSPORT_H

#include <atomic>
#include <chrono>
#include <cstddef>
#include <iostream>
#include <memory>
#include <string>

namespace qzz::svc {

/** One bidirectional line-oriented client session. */
class Connection
{
  public:
    virtual ~Connection() = default;

    /**
     * Read the next line into @p line (newline stripped; a trailing
     * '\r' is stripped on socket connections).  False on EOF, a read
     * error, an exceeded idle timeout, or an overlong line — the
     * session ends either way.  A final unterminated line before EOF
     * is delivered, matching std::getline.
     */
    virtual bool readLine(std::string &line) = 0;

    /** Write @p data and flush; false when the peer is gone. */
    virtual bool write(const std::string &data) = 0;

    /** Human-readable peer description (logging only). */
    virtual std::string peer() const = 0;
};

/** Accepts client connections until shut down. */
class Transport
{
  public:
    virtual ~Transport() = default;

    /** Block until the next session; nullptr once shut down (or, for
     *  stdio, after its single session has been handed out). */
    virtual std::unique_ptr<Connection> accept() = 0;

    /** Unblock accept() and make it return nullptr from now on.
     *  Thread-safe and async-usable against a blocked accept(). */
    virtual void shutdown() = 0;

    /** Human-readable bound-endpoint description. */
    virtual std::string name() const = 0;
};

/** A Connection over caller-owned iostreams (the stdio session and
 *  the in-process test seam). */
class StreamConnection : public Connection
{
  public:
    StreamConnection(std::istream &in, std::ostream &out)
        : in_(in), out_(out)
    {
    }

    bool readLine(std::string &line) override;
    bool write(const std::string &data) override;
    std::string peer() const override { return "stdio"; }

  private:
    std::istream &in_;
    std::ostream &out_;
};

/** The single-session pipe transport. */
class StdioTransport : public Transport
{
  public:
    StdioTransport(std::istream &in = std::cin,
                   std::ostream &out = std::cout)
        : in_(in), out_(out)
    {
    }

    std::unique_ptr<Connection> accept() override;
    void shutdown() override { done_.store(true); }
    std::string name() const override { return "stdio"; }

  private:
    std::istream &in_;
    std::ostream &out_;
    std::atomic<bool> done_{false};
};

/** SocketTransport construction knobs. */
struct SocketTransportConfig
{
    /** "tcp:PORT", "tcp:HOST:PORT" (numeric IPv4 host or localhost),
     *  or "unix:PATH". */
    std::string listen;
    /** Disconnect a session after this long without a complete line;
     *  0 waits forever (trusted peers only). */
    std::chrono::milliseconds idle_timeout{0};
    /** Session-fatal bound on one request line's length. */
    size_t max_line_bytes = 1 << 20;
};

/** TCP / Unix-domain listener: one session per connection. */
class SocketTransport : public Transport
{
  public:
    /** Binds and listens; throws UserError on a bad spec or a bind
     *  failure (the caller gets one clean error line, not a half-up
     *  server). */
    explicit SocketTransport(SocketTransportConfig config);
    ~SocketTransport() override;

    SocketTransport(const SocketTransport &) = delete;
    SocketTransport &operator=(const SocketTransport &) = delete;

    std::unique_ptr<Connection> accept() override;
    void shutdown() override;
    std::string name() const override { return name_; }

    /** Actual TCP port after binding ("tcp:0" asks the kernel to
     *  pick, which is how tests avoid port races); 0 for unix. */
    int port() const { return port_; }

  private:
    SocketTransportConfig config_;
    std::string name_;
    std::string unix_path_; ///< unlinked on destruction
    int listen_fd_ = -1;
    int wake_fds_[2] = {-1, -1}; ///< self-pipe: shutdown() -> accept()
    std::atomic<bool> down_{false};
    int port_ = 0;
};

} // namespace qzz::svc

#endif // QZZ_SERVICE_TRANSPORT_H
