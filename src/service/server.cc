#include "service/server.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <vector>

#include <csignal>
#include <fcntl.h>
#include <unistd.h>

#include "circuit/benchmarks.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/pulse_opt.h"
#include "core/schedule_io.h"
#include "graph/topologies.h"
#include "service/artifact.h"
#include "service/artifact_gc.h"
#include "service/calibration_hub.h"
#include "service/jsonl.h"

namespace qzz::svc {

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(Server &server, Connection &conn)
    : server_(server), conn_(conn)
{
    writer_ = std::thread([this] { writerLoop(); });
}

Session::~Session()
{
    unsubscribeHub();
    stopWriter();
}

bool
Session::run()
{
    std::string line;
    uint64_t lineno = 0;
    bool quit = false;
    while (!quit && conn_.readLine(line)) {
        ++lineno;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        std::string error;
        const auto obj = JsonObject::parse(line, &error);
        if (!obj) {
            enqueueError(std::to_string(lineno),
                         "parse error: " + error);
            continue;
        }
        if (const auto cmd = obj->getString("cmd")) {
            // Control records are synchronization points: settle
            // every earlier response before acting.
            waitForWriterIdle();
            if (*cmd == "quit") {
                quit = true;
            } else if (*cmd == "metrics") {
                respondMetrics(*obj);
            } else if (*cmd == "hello") {
                respondHello(*obj);
            } else if (*cmd == "gc") {
                respondGc();
            } else if (*cmd == "calibrate") {
                respondCalibrate(*obj);
            } else {
                enqueueError(requestId(*obj, lineno),
                             "unknown cmd '" + *cmd + "'");
            }
            continue;
        }
        handleRequest(*obj, lineno);
    }
    unsubscribeHub();
    stopWriter();
    return quit;
}

std::string
Session::requestId(const JsonObject &obj, uint64_t lineno)
{
    if (const auto id = obj.getString("id"))
        return *id;
    return std::to_string(lineno);
}

void
Session::handleRequest(const JsonObject &obj, uint64_t lineno)
{
    const std::string id = requestId(obj, lineno);

    const auto family = obj.getString("benchmark");
    if (!family) {
        enqueueError(id, "missing 'benchmark' (one of: " +
                             joinNames(ckt::benchmarkFamilyNames()) +
                             ")");
        return;
    }
    // Bounded before the int64 -> int narrowing: a huge value
    // must produce an error line, not a wrapped register size or
    // a generator allocation failure.
    constexpr int64_t kMaxQubits = 256;
    const auto qubits = obj.getInt("qubits");
    if (!qubits || *qubits < 2 || *qubits > kMaxQubits) {
        enqueueError(id, "missing or bad 'qubits' (integer in [2, " +
                             std::to_string(kMaxQubits) + "])");
        return;
    }
    const uint64_t seed = uint64_t(obj.getInt("seed").value_or(1));

    CompileRequest request;
    try {
        auto circuit = ckt::namedBenchmark(*family, int(*qubits), seed);
        if (!circuit) {
            enqueueError(id, "unknown benchmark '" + *family +
                                 "' (one of: " +
                                 joinNames(
                                     ckt::benchmarkFamilyNames()) +
                                 ")");
            return;
        }
        request.circuit = std::move(*circuit);
        request.device = server_.deviceFor(obj, int(*qubits));
    } catch (const std::exception &e) {
        // UserError for bad parameters, plus anything a generator
        // or topology builder throws on extreme inputs: one error
        // line, never a dead daemon.
        enqueueError(id, e.what());
        return;
    }

    if (const auto pulse = obj.getString("pulse")) {
        const auto method = core::pulseMethodFromName(*pulse);
        if (!method) {
            enqueueError(id, "unknown pulse method '" + *pulse +
                                 "' (one of: " +
                                 joinNames(core::pulseMethodNames()) +
                                 ")");
            return;
        }
        request.options.pulse = *method;
    }
    if (const auto sched = obj.getString("sched")) {
        const auto policy = core::schedPolicyFromName(*sched);
        if (!policy) {
            enqueueError(id, "unknown scheduling policy '" + *sched +
                                 "' (one of: " +
                                 joinNames(core::schedPolicyNames()) +
                                 ")");
            return;
        }
        request.options.sched = *policy;
    }
    request.request.priority = int(obj.getInt("priority").value_or(0));
    request.request.seed = seed;
    request.request.use_cache = obj.getBool("use_cache").value_or(true);
    // Every request carries a trace id — client-supplied for
    // cross-system correlation, minted here otherwise — and the
    // response echoes it whether or not span logging is on.
    request.request.trace_id =
        obj.getString("trace_id").value_or(std::string());
    if (request.request.trace_id.empty())
        request.request.trace_id = TraceLog::mintTraceId();
    if (const auto deadline = obj.getNumber("deadline_ms"))
        request.request.deadline = std::chrono::milliseconds(
            int64_t(std::max(0.0, *deadline)));

    Pending pending;
    pending.id = id;
    pending.label = request.circuit.name();
    pending.handle = server_.service().submit(std::move(request));
    OutItem item;
    item.pending = std::move(pending);
    enqueue(std::move(item));
}

// ---------------------------------------------------------------------------
// Ordered output: a writer thread blocks on each queued item in
// turn, so responses stream out the moment their turn completes
// while the reader keeps accepting requests.
// ---------------------------------------------------------------------------

void
Session::writerLoop()
{
    for (;;) {
        OutItem item;
        {
            std::unique_lock<std::mutex> lock(out_mu_);
            out_cv_.wait(lock,
                         [this] { return out_done_ || !out_.empty(); });
            if (out_.empty()) {
                if (out_done_)
                    return;
                continue;
            }
            item = std::move(out_.front());
            out_.pop_front();
            writer_busy_ = true;
        }
        if (item.is_raw)
            conn_.write(item.raw);
        else if (item.is_error)
            printError(item.id, item.message);
        else
            respond(item.pending, item.pending.handle.get());
        {
            std::lock_guard<std::mutex> lock(out_mu_);
            writer_busy_ = false;
            if (out_.empty())
                idle_cv_.notify_all();
        }
    }
}

void
Session::enqueue(OutItem item)
{
    {
        std::lock_guard<std::mutex> lock(out_mu_);
        out_.push_back(std::move(item));
    }
    out_cv_.notify_one();
}

void
Session::enqueueError(const std::string &id, const std::string &message)
{
    OutItem item;
    item.is_error = true;
    item.id = id;
    item.message = message;
    enqueue(std::move(item));
}

void
Session::enqueueRaw(std::string line)
{
    OutItem item;
    item.is_raw = true;
    item.raw = std::move(line);
    enqueue(std::move(item));
}

void
Session::unsubscribeHub()
{
    if (subscribed_) {
        server_.hub().unsubscribe(hub_token_);
        subscribed_ = false;
    }
}

void
Session::waitForWriterIdle()
{
    std::unique_lock<std::mutex> lock(out_mu_);
    idle_cv_.wait(lock,
                  [this] { return out_.empty() && !writer_busy_; });
}

void
Session::stopWriter()
{
    {
        std::lock_guard<std::mutex> lock(out_mu_);
        if (out_done_ && !writer_.joinable())
            return;
        out_done_ = true;
    }
    out_cv_.notify_all();
    if (writer_.joinable())
        writer_.join();
}

namespace {

double
unixNowMs()
{
    return double(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::system_clock::now()
                          .time_since_epoch())
                      .count()) /
           1000.0;
}

} // namespace

void
Session::respond(const Pending &pending, const ServiceResult &result)
{
    const double respond_start = unixNowMs();
    const auto t0 = std::chrono::steady_clock::now();
    std::ostringstream os;
    os.precision(12);
    os << "{\"id\":\"" << jsonEscape(pending.id)
       << "\",\"ok\":" << (result.ok() ? "true" : "false")
       << ",\"outcome\":\"" << outcomeName(result.outcome)
       << "\",\"benchmark\":\"" << jsonEscape(pending.label)
       << "\",\"fingerprint\":\"" << result.fingerprint.hex()
       << "\",\"cache_hit\":"
       << (result.outcome == Outcome::CacheHit ? "true" : "false")
       << ",\"queue_ms\":" << result.queue_ms
       << ",\"compile_ms\":" << result.compile_ms;
    if (!result.trace_id.empty())
        os << ",\"trace_id\":\"" << jsonEscape(result.trace_id)
           << "\"";
    if (result.ok()) {
        std::ostringstream program;
        core::ScheduleIoOptions io;
        io.pretty = false;
        io.sample_dt = server_.config().sample_dt;
        core::writeCompiledProgramJson(*result.program, program, io);
        std::string doc = program.str();
        while (!doc.empty() && doc.back() == '\n')
            doc.pop_back();
        os << ",\"program\":" << doc;
    } else if (!result.status.message.empty()) {
        os << ",\"error\":\"" << jsonEscape(result.status.message)
           << "\"";
    }
    os << "}\n";
    const std::string payload = os.str();
    conn_.write(payload);
    // The final leaf of the request's span tree: serialization plus
    // the write back to the client, parented on the service's root
    // span (nonzero only when tracing is on).
    TraceLog *trace = server_.traceLog();
    if (trace && result.root_span_id != 0) {
        TraceSpan span;
        span.trace_id = result.trace_id;
        span.span_id = TraceLog::mintSpanId();
        span.parent_id = result.root_span_id;
        span.name = "respond";
        span.start_unix_ms = respond_start;
        span.duration_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        span.attrs.emplace_back("bytes",
                                std::to_string(payload.size()));
        trace->emit(span);
    }
}

void
Session::printError(const std::string &id, const std::string &message)
{
    conn_.write("{\"id\":\"" + jsonEscape(id) +
                "\",\"ok\":false,\"error\":\"" + jsonEscape(message) +
                "\"}\n");
}

void
Session::respondMetrics(const JsonObject &obj)
{
    // {"format":"prometheus"} returns the same exposition body the
    // scrape endpoint serves, as one escaped JSON string field (the
    // protocol stays strictly line-oriented).
    if (obj.getString("format").value_or("json") == "prometheus") {
        enqueueRaw("{\"metrics\":true,\"format\":\"prometheus\","
                   "\"exposition\":\"" +
                   jsonEscape(server_.renderPrometheus()) + "\"}\n");
        return;
    }
    const MetricsSnapshot m = server_.service().metrics();
    const CalibrationHubStats h = server_.hub().stats();
    std::ostringstream os;
    os.precision(12);
    os << "{\"metrics\":true,\"submitted\":" << m.submitted
       << ",\"completed\":" << m.completed << ",\"failed\":" << m.failed
       << ",\"cancelled\":" << m.cancelled << ",\"expired\":" << m.expired
       << ",\"rejected\":" << m.rejected
       << ",\"cache_hits\":" << m.cache_hits
       << ",\"cache_misses\":" << m.cache_misses
       << ",\"coalesced\":" << m.coalesced
       << ",\"cache_hit_rate\":" << m.cache_hit_rate
       << ",\"queue_depth\":" << m.queue_depth
       << ",\"workers\":" << m.workers
       << ",\"throughput_per_s\":" << m.throughput_per_s
       << ",\"latency_p50_ms\":" << m.latency_p50_ms
       << ",\"latency_p95_ms\":" << m.latency_p95_ms
       << ",\"latency_p99_ms\":" << m.latency_p99_ms
       << ",\"warm_boosted\":" << m.warm_boosted
       << ",\"cache_entries\":" << m.cache_stats.entries
       << ",\"cache_entry_bytes\":" << m.cache_stats.entry_bytes
       << ",\"disk_writes\":" << m.cache_stats.disk_writes
       << ",\"disk_bytes_written\":" << m.cache_stats.disk_bytes_written
       << ",\"calib_epochs_applied\":" << h.epochs_applied
       << ",\"calib_updates_rejected\":" << h.updates_rejected
       << ",\"calib_entries_invalidated\":" << h.entries_invalidated
       << ",\"calib_watch_loads\":" << h.watch_loads
       << ",\"calib_watch_errors\":" << h.watch_errors
       << ",\"calib_watch_latency_ms\":" << h.last_watch_latency_ms
       << ",\"calib_current\":{";
    for (size_t i = 0; i < h.current.size(); ++i) {
        if (i)
            os << ",";
        os << "\"" << jsonEscape(h.current[i].first)
           << "\":" << h.current[i].second;
    }
    os << "}}\n";
    enqueueRaw(os.str());
}

namespace {

std::string
jsonStringArray(const std::vector<std::string> &names)
{
    std::string out = "[";
    for (size_t i = 0; i < names.size(); ++i) {
        if (i)
            out += ',';
        out += '"';
        out += jsonEscape(names[i]);
        out += '"';
    }
    out += ']';
    return out;
}

} // namespace

void
Session::respondHello(const JsonObject &obj)
{
    // The calib_events capability: subscribe this session to
    // asynchronous {"event":"calib_epoch"} frames (routed through the
    // writer queue, so they interleave whole-line with responses).
    // Re-sending hello with calib_events:false unsubscribes.
    if (const auto want = obj.getBool("calib_events")) {
        if (*want && !subscribed_) {
            hub_token_ = server_.hub().subscribe(
                [this](const std::string &line) { enqueueRaw(line); });
            subscribed_ = true;
        } else if (!*want && subscribed_) {
            unsubscribeHub();
        }
    }
    std::ostringstream os;
    os << "{\"hello\":true,\"protocol_version\":" << kProtocolVersion
       << ",\"fingerprint_version\":" << kFingerprintVersion
       << ",\"artifact_version\":" << kArtifactVersion
       << ",\"manifest_version\":" << kManifestVersion
       << ",\"benchmarks\":"
       << jsonStringArray(ckt::benchmarkFamilyNames())
       << ",\"pulse_methods\":"
       << jsonStringArray(core::pulseMethodNames())
       << ",\"sched_policies\":"
       << jsonStringArray(core::schedPolicyNames())
       << ",\"topologies\":[\"grid\",\"line\",\"ring\",\"heavyhex\","
          "\"trigrid\"]"
       << ",\"commands\":[\"hello\",\"metrics\",\"gc\",\"calibrate\","
          "\"quit\"]"
       << ",\"events\":[\"calib_epoch\"]"
       << ",\"calib_events\":" << (subscribed_ ? "true" : "false")
       << "}\n";
    enqueueRaw(os.str());
}

void
Session::respondGc()
{
    ArtifactGc *gc = server_.gc();
    if (!gc) {
        enqueueRaw("{\"gc\":true,\"enabled\":false}\n");
        return;
    }
    const ArtifactGcStats s = gc->run();
    std::ostringstream os;
    os << "{\"gc\":true,\"enabled\":true,\"scanned\":" << s.scanned
       << ",\"adopted\":" << s.adopted
       << ",\"dropped_lines\":" << s.dropped_lines
       << ",\"evicted\":" << s.evicted
       << ",\"evicted_age\":" << s.evicted_age
       << ",\"evicted_epoch\":" << s.evicted_epoch
       << ",\"evicted_capacity\":" << s.evicted_capacity
       << ",\"bytes_before\":" << s.bytes_before
       << ",\"bytes_after\":" << s.bytes_after
       << ",\"capacity_bytes\":" << gc->config().capacity_bytes
       << ",\"passes\":" << gc->passes() << "}\n";
    enqueueRaw(os.str());
}

void
Session::respondCalibrate(const JsonObject &obj)
{
    const auto fail = [this](const std::string &message) {
        enqueueRaw("{\"calibrate\":true,\"applied\":false,\"error\":\"" +
                   jsonEscape(message) + "\"}\n");
    };
    // The protocol is flat JSON lines, so the snapshot document rides
    // as an escaped string field rather than a nested object.
    const auto snapshot = obj.getString("snapshot");
    if (!snapshot) {
        fail("missing 'snapshot' (calibration JSON document as a "
             "string)");
        return;
    }
    std::string parse_error;
    auto calib = dev::readCalibrationJson(*snapshot, &parse_error);
    if (!calib) {
        fail("bad snapshot: " + parse_error);
        return;
    }
    graph::Topology topo;
    try {
        topo = server_.topologyFor(obj, calib->num_qubits);
    } catch (const std::exception &e) {
        fail(e.what());
        return;
    }
    const uint64_t device_seed =
        uint64_t(obj.getInt("device_seed").value_or(7));

    const CalibrationUpdate u = server_.hub().apply(
        std::move(topo), device_seed, std::move(*calib), "calibrate");
    std::ostringstream os;
    os << "{\"calibrate\":true,\"applied\":"
       << (u.applied ? "true" : "false") << ",\"device\":\""
       << jsonEscape(u.device_key) << "\",\"epoch\":" << u.epoch
       << ",\"entries_invalidated\":" << u.entries_invalidated
       << ",\"gc_evicted\":" << u.gc_evicted
       << ",\"gc_evicted_epoch\":" << u.gc_evicted_epoch;
    if (!u.applied)
        os << ",\"error\":\"" << jsonEscape(u.error) << "\"";
    os << "}\n";
    enqueueRaw(os.str());
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      registry_(std::make_shared<tel::MetricsRegistry>())
{
    if (!config_.trace_log.empty()) {
        TraceLogConfig tc;
        tc.path = config_.trace_log;
        tc.max_bytes = config_.trace_max_bytes;
        tc.slow_ms = config_.slow_ms;
        trace_ = std::make_shared<TraceLog>(tc);
    }
    if (!config_.artifact_dir.empty()) {
        ArtifactGcConfig gc_config;
        gc_config.capacity_bytes = config_.gc_capacity_bytes;
        gc_config.max_age = config_.gc_max_age;
        gc_config.keep_epochs = config_.gc_keep_epochs;
        gc_ = std::make_shared<ArtifactGc>(config_.artifact_dir,
                                           gc_config, registry_);
    }
    CompileServiceConfig sc;
    sc.num_workers = config_.workers;
    sc.cache.capacity = config_.cache_capacity;
    sc.cache.artifact_dir = config_.artifact_dir;
    sc.cache.gc = gc_;
    sc.metrics = registry_;
    sc.trace = trace_;
    service_ = std::make_unique<CompileService>(sc);
    if (gc_ && config_.gc_interval.count() > 0)
        gc_->start(config_.gc_interval);

    CalibrationHubConfig hc;
    hc.watch_dir = config_.watch_calib_dir;
    hc.watch_interval = config_.watch_calib_interval;
    // One knob governs both invalidation tiers: keep the newest K
    // calibration epochs on disk (ArtifactGc) and in memory (the
    // hub's sweep on each roll).
    hc.keep_epochs = config_.gc_keep_epochs;
    hc.metrics = registry_;
    hub_ = std::make_unique<CalibrationHub>(hc, &service_->cache(),
                                            gc_.get());
    hub_->startWatch();

    if (!config_.metrics_listen.empty()) {
        SocketTransportConfig mc;
        mc.listen = config_.metrics_listen;
        // A scraper that stalls mid-request must not pin the accept
        // loop forever.
        mc.idle_timeout = std::chrono::milliseconds(5000);
        metrics_transport_ = std::make_unique<SocketTransport>(mc);
        metrics_thread_ = std::thread([this] { metricsLoop(); });
    }
}

Server::~Server()
{
    if (metrics_transport_)
        metrics_transport_->shutdown();
    if (metrics_thread_.joinable())
        metrics_thread_.join();
    hub_->stopWatch();
    if (gc_)
        gc_->stop();
    service_->shutdown(true);
}

int
Server::metricsPort() const
{
    return metrics_transport_ ? metrics_transport_->port() : 0;
}

std::string
Server::renderPrometheus()
{
    // Gauges are computed on read: metrics() refreshes queue depth,
    // uptime and worker count in the registry, and cache().stats()
    // (called inside metrics()) refreshes the occupancy gauges.  The
    // hub's counters are live in the registry already.
    (void)service_->metrics();
    return registry_->renderPrometheus();
}

void
Server::metricsLoop()
{
    // Scrapes are short one-shot exchanges; serving them serially on
    // the accept thread keeps the endpoint to one thread total.
    while (auto conn = metrics_transport_->accept())
        serveMetricsConnection(*conn);
}

void
Server::serveMetricsConnection(Connection &conn)
{
    const auto sendResponse = [&conn](const std::string &status,
                                      const std::string &content_type,
                                      const std::string &body) {
        std::ostringstream os;
        os << "HTTP/1.1 " << status << "\r\n"
           << "Content-Type: " << content_type << "\r\n"
           << "Content-Length: " << body.size() << "\r\n"
           << "Connection: close\r\n\r\n"
           << body;
        conn.write(os.str());
    };
    // Request line: "GET <path> HTTP/1.x".  readLine strips the
    // trailing CR on socket connections.
    std::string line;
    if (!conn.readLine(line))
        return;
    std::istringstream request(line);
    std::string method, path, version;
    request >> method >> path >> version;
    // Drain the headers so the response is not racing unread input.
    while (conn.readLine(line) && !line.empty()) {
    }
    if (method != "GET") {
        sendResponse("405 Method Not Allowed", "text/plain",
                     "method not allowed\n");
        return;
    }
    if (path != "/metrics" && path != "/metrics/") {
        sendResponse("404 Not Found", "text/plain", "not found\n");
        return;
    }
    sendResponse("200 OK",
                 "text/plain; version=0.0.4; charset=utf-8",
                 renderPrometheus());
}

bool
Server::runSession(Connection &conn)
{
    Session session(*this, conn);
    return session.run();
}

graph::Topology
Server::topologyFor(const JsonObject &obj, int default_qubits)
{
    const std::string kind = obj.getString("topology").value_or("grid");
    graph::Topology topo;
    if (kind == "grid" || kind == "trigrid") {
        auto [r, c] = dev::Device::gridDimsForQubits(default_qubits);
        const int rows = int(obj.getInt("rows").value_or(r));
        const int cols = int(obj.getInt("cols").value_or(c));
        topo = kind == "grid"
                   ? graph::gridTopology(rows, cols)
                   : graph::triangulatedGridTopology(rows, cols);
    } else if (kind == "heavyhex") {
        const int rows = int(obj.getInt("rows").value_or(1));
        const int cols = int(obj.getInt("cols").value_or(1));
        topo = graph::heavyHexTopology(rows, cols);
    } else if (kind == "line") {
        topo = graph::lineTopology(
            int(obj.getInt("size").value_or(default_qubits)));
    } else if (kind == "ring") {
        topo = graph::ringTopology(
            int(obj.getInt("size").value_or(default_qubits)));
    } else {
        fatal("unknown topology '" + kind +
              "' (one of: grid, line, ring, heavyhex, trigrid)");
    }
    return topo;
}

std::shared_ptr<const dev::Device>
Server::deviceFor(const JsonObject &obj, int circuit_qubits)
{
    const uint64_t device_seed =
        uint64_t(obj.getInt("device_seed").value_or(7));
    constexpr int64_t kMaxEpoch = 4096;
    const int64_t calib_epoch = obj.getInt("calib_epoch").value_or(0);
    if (calib_epoch < 0 || calib_epoch > kMaxEpoch)
        fatal("bad 'calib_epoch' (integer in [0, " +
              std::to_string(kMaxEpoch) + "])");

    graph::Topology topo = topologyFor(obj, circuit_qubits);

    // Requests that do not pin an explicit calib_epoch follow the
    // live calibration plane: a pushed generation (CalibrationHub)
    // supersedes the implicit boot snapshot.  An explicit calib_epoch
    // keeps the deterministic sampled-then-drifted chain below, so
    // pinned replays stay bit-for-bit reproducible across pushes.
    if (!obj.has("calib_epoch")) {
        if (auto live = hub_->liveDevice(topo.name, device_seed))
            return live;
    }

    const std::string key = topo.name + "#" +
                            std::to_string(device_seed) + "@" +
                            std::to_string(calib_epoch);
    // One mutex over lookup and construction: sessions racing on a
    // cold key would otherwise build the same device twice, and
    // construction is cheap next to a compile.
    std::lock_guard<std::mutex> lock(devices_mu_);
    auto it = devices_.find(key);
    if (it != devices_.end())
        return it->second;
    // Epoch e = the base snapshot recalibrated e times, each
    // drift step deterministically seeded, so every client asking
    // for (topology, device_seed, epoch) sees the same device —
    // and the same fingerprint.
    Rng rng(device_seed);
    dev::Calibration calib =
        dev::Calibration::sampled(topo, dev::DeviceParams{}, rng);
    for (int64_t e = 0; e < calib_epoch; ++e) {
        Rng drift_rng(device_seed ^ (uint64_t(e) + 1));
        calib = calib.drifted({}, drift_rng);
    }
    auto device = std::make_shared<const dev::Device>(std::move(topo),
                                                      std::move(calib));
    devices_.emplace(key, device);
    return device;
}

namespace {

/** serve()'s SIGTERM/SIGINT handler target: the only async-signal-
 *  safe thing to do is write one byte to a pipe the watcher thread
 *  reads. */
std::atomic<int> g_term_pipe_wr{-1};

void
onTerminateSignal(int)
{
    const int fd = g_term_pipe_wr.load();
    if (fd >= 0) {
        const char byte = 1;
        [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
    }
}

} // namespace

int
Server::serve(Transport &transport)
{
    int sig_pipe[2] = {-1, -1};
    if (::pipe2(sig_pipe, O_CLOEXEC) != 0)
        fatal("Server: pipe2(): " + std::string(std::strerror(errno)));
    g_term_pipe_wr.store(sig_pipe[1]);
    struct sigaction sa
    {
    };
    sa.sa_handler = &onTerminateSignal;
    ::sigemptyset(&sa.sa_mask);
    struct sigaction old_term
    {
    };
    struct sigaction old_int
    {
    };
    ::sigaction(SIGTERM, &sa, &old_term);
    ::sigaction(SIGINT, &sa, &old_int);

    // The watcher turns a signal byte into a transport shutdown; the
    // accept loop then winds down exactly like a client-driven stop:
    // no new sessions, in-flight sessions and queued compiles finish.
    std::thread watcher([&transport, &sig_pipe] {
        char byte = 0;
        for (;;) {
            const ssize_t n = ::read(sig_pipe[0], &byte, 1);
            if (n < 0 && errno == EINTR)
                continue;
            break;
        }
        if (byte == 1)
            transport.shutdown();
    });

    std::vector<std::thread> sessions;
    while (auto conn = transport.accept()) {
        sessions.emplace_back(
            [this, c = std::shared_ptr<Connection>(std::move(conn))] {
                Session(*this, *c).run();
            });
    }
    for (std::thread &session : sessions)
        session.join();

    g_term_pipe_wr.store(-1);
    ::sigaction(SIGTERM, &old_term, nullptr);
    ::sigaction(SIGINT, &old_int, nullptr);
    {
        // A zero byte stops the watcher without a transport shutdown
        // (it already happened or was never needed).
        const char byte = 0;
        [[maybe_unused]] const ssize_t n = ::write(sig_pipe[1], &byte, 1);
    }
    watcher.join();
    ::close(sig_pipe[0]);
    ::close(sig_pipe[1]);

    service_->shutdown(true);
    return 0;
}

} // namespace qzz::svc
