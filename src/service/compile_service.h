/**
 * @file
 * CompileService: an asynchronous, cache-fronted compilation server.
 *
 * The service turns core::Compiler into a long-running serving
 * system:
 *
 *   submit() --> [priority queue] --> worker pool --> futures
 *                      |                  |
 *                      |             ProgramCache (fingerprint-keyed,
 *                      |             sharded LRU + artifact tier)
 *                      |                  |
 *                      +---- compiler registry: one immutable
 *                            core::Compiler per (device, options)
 *                            fingerprint, sharing ZzxDeviceTables and
 *                            the pulse library across all requests
 *
 * Requests carry a priority (higher served first), an optional
 * deadline (expired requests are failed without compiling), an
 * explicit RNG seed recorded for provenance (the service itself is
 * deterministic: no global RNG anywhere in the request path), and
 * land on a std::future.  Identical concurrent submissions coalesce:
 * at most one cold compile runs per fingerprint at a time, with
 * duplicates parking on the in-flight compilation and resolving as
 * Outcome::Coalesced when it publishes.  Graceful teardown: drain()
 * waits for the queue to empty; shutdown() optionally drains or
 * fails pending requests, then joins the workers.
 *
 * Admission is cache-aware within a priority class: requests whose
 * fingerprint is already resident in the program cache ("warm") jump
 * ahead of cold ones — a warm request costs microseconds and holds a
 * worker for no meaningful time, so boosting it slashes its latency
 * without delaying any cold compile by more than that.  Cold
 * requests are batched per (device, options) compiler key: up to
 * cold_batch_limit consecutive requests sharing one immutable
 * core::Compiler (its routing tables and pulse library) are served
 * back to back for locality, after which the queue rotates to the
 * group holding the oldest waiting request, bounding cross-group
 * unfairness.  Both lanes stay FIFO internally, and turning
 * cache_aware_admission off restores strict FIFO within a priority.
 *
 * Every completed request updates instruments in a
 * tel::MetricsRegistry (counters, queue/latency/compile histograms);
 * MetricsSnapshot is a point-in-time render of those instruments,
 * with p50/p95/p99 derived from the log-bucket latency histogram
 * (the full completion history, not a lossy recent-sample window).
 * When a TraceLog is configured, every request additionally leaves a
 * span tree behind (service/trace.h): queue-wait, cache probe, the
 * compile with its per-pass children, and the artifact write.
 *
 * The JSON-lines wire protocol examples/compile_server speaks on top
 * of this service is specified in docs/protocol.md.
 */

#ifndef QZZ_SERVICE_COMPILE_SERVICE_H
#define QZZ_SERVICE_COMPILE_SERVICE_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/telemetry.h"
#include "core/compiler.h"
#include "service/program_cache.h"
#include "service/trace.h"

namespace qzz::svc {

/** Per-request controls. */
struct RequestOptions
{
    /** Higher priorities are served first; within a priority, warm
     *  (already-cached) requests lead and cold ones batch per
     *  compiler key (see the admission notes above). */
    int priority = 0;
    /** Relative deadline from submit(); requests still queued past it
     *  complete with Outcome::DeadlineExceeded (never compiled). */
    std::optional<std::chrono::milliseconds> deadline;
    /** Provenance: the seed that generated the circuit (echoed into
     *  the result; never read from any global RNG). */
    uint64_t seed = 0;
    /** Bypass the program cache (forces a cold compile). */
    bool use_cache = true;
    /** Trace correlation id, echoed into the result.  When tracing is
     *  enabled and this is empty, submit() mints one
     *  (TraceLog::mintTraceId); clients may supply their own to
     *  stitch qzz spans into a wider trace. */
    std::string trace_id;
};

/** One compilation job. */
struct CompileRequest
{
    ckt::QuantumCircuit circuit;
    /** Shared so thousands of queued requests alias one device. */
    std::shared_ptr<const dev::Device> device;
    core::CompileOptions options;
    RequestOptions request;
};

/** How a request left the service. */
enum class Outcome
{
    Compiled, ///< cold compile succeeded
    CacheHit, ///< served from the program cache
    /** Rode an identical in-flight compilation instead of compiling:
     *  the result shares the primary's program (same shared_ptr) and
     *  compiler status, with the follower's own fingerprint, seed
     *  and queue time; compile_ms is 0 and diagnostics are empty
     *  (the primary did the work).  A primary that *fails* resolves
     *  its followers as Failed, not Coalesced. */
    Coalesced,
    Failed, ///< compiler reported an error (see status)
    Cancelled,        ///< cancelled while queued
    DeadlineExceeded, ///< deadline passed before a worker got to it
    Rejected,         ///< queue full or service shutting down
};

/** Display name of an outcome. */
std::string outcomeName(Outcome outcome);

/** What a request's future resolves to. */
struct ServiceResult
{
    Outcome outcome = Outcome::Rejected;
    /** The compiled program; null unless Compiled / CacheHit. */
    std::shared_ptr<const core::CompiledProgram> program;
    /** Compiler status (set for Compiled / Failed). */
    core::CompileStatus status;
    /** Per-stage diagnostics of a cold compile (empty on cache hit). */
    core::CompileDiagnostics diagnostics;
    /** The request's cache key. */
    Fingerprint fingerprint;
    /** Echo of RequestOptions::seed. */
    uint64_t seed = 0;
    /** Time spent queued / compiling (ms). */
    double queue_ms = 0.0;
    double compile_ms = 0.0;
    /** Completion order stamp (1-based; 0 if never processed). */
    uint64_t completion_seq = 0;
    /** Echo of RequestOptions::trace_id (empty when the client sent
     *  none and tracing is off). */
    std::string trace_id;
    /** Root span id of this request's trace (0 when tracing is off);
     *  the Session parents its respond span on it. */
    uint64_t root_span_id = 0;
    /** Program-cache probe / artifact-write time (ms); 0 when the
     *  step did not run.  Surfaced as trace spans. */
    double cache_probe_ms = 0.0;
    double artifact_write_ms = 0.0;

    bool ok() const { return program != nullptr; }
};

/** A submitted request: its future plus queue-side controls. */
class RequestHandle
{
  public:
    RequestHandle() = default;

    /** Valid once per handle (std::future semantics). */
    std::future<ServiceResult> &future() { return future_; }
    /** Blocking convenience: future().get(). */
    ServiceResult get() { return future_.get(); }

    /** Cancel if still queued; false once a worker picked it up. */
    bool cancel();

    uint64_t id() const { return id_; }
    const Fingerprint &fingerprint() const { return fingerprint_; }

  private:
    friend class CompileService;
    struct Task;
    std::shared_ptr<Task> task_;
    std::future<ServiceResult> future_;
    uint64_t id_ = 0;
    Fingerprint fingerprint_;
};

/** CompileService construction knobs. */
struct CompileServiceConfig
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    int num_workers = 0;
    /** Queued-request bound; submissions beyond it are Rejected. */
    size_t max_queue = 4096;
    /** Start with workers paused (tests / queue preloading); call
     *  resume() to begin serving. */
    bool start_paused = false;
    /** Retained for configuration compatibility; latency percentiles
     *  now derive from the log-bucket latency histogram (the full
     *  history), not a bounded sample window. */
    size_t latency_window = 8192;
    /**
     * Collapse concurrent duplicate requests onto one compilation:
     * when a worker misses the cache but an identical fingerprint is
     * already compiling on another worker, the request parks on that
     * in-flight compile and resolves with Outcome::Coalesced instead
     * of cold-compiling a second time.  Guarantees at most one cold
     * compile per fingerprint among concurrent cache-using
     * submissions (the in-flight registry is checked under one lock
     * with the cache, and the winner publishes to the cache before
     * retiring its registry entry).
     */
    bool coalesce = true;
    /**
     * Cache-aware admission (see the file comment): warm requests
     * jump ahead of cold ones within their priority class, and cold
     * requests are served in per-compiler-key batches.  Off = strict
     * FIFO within a priority.
     */
    bool cache_aware_admission = true;
    /** Consecutive cold requests served from one compiler-key group
     *  before rotating to the group with the oldest waiter (>= 1). */
    int cold_batch_limit = 8;
    ProgramCacheConfig cache;
    /** Instrument registry shared with the rest of the process; null
     *  gives the service (and its cache) a private registry. */
    std::shared_ptr<tel::MetricsRegistry> metrics;
    /** Span sink; null disables tracing entirely. */
    std::shared_ptr<TraceLog> trace;
};

/** Point-in-time service health: counters, latency, cache state. */
struct MetricsSnapshot
{
    uint64_t submitted = 0;
    uint64_t completed = 0; ///< Compiled + CacheHit
    uint64_t failed = 0;
    uint64_t cancelled = 0;
    uint64_t expired = 0;
    uint64_t rejected = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    /** Requests that rode an identical in-flight compilation instead
     *  of cold-compiling (counted toward completed). */
    uint64_t coalesced = 0;
    /** Requests admitted to the warm lane (fingerprint already
     *  resident at submit time; served ahead of cold peers). */
    uint64_t warm_boosted = 0;
    size_t queue_depth = 0;
    int workers = 0;
    double uptime_ms = 0.0;
    /** Completed requests per second of uptime. */
    double throughput_per_s = 0.0;
    /** End-to-end latency percentiles derived from the log-bucket
     *  latency histogram over the full completion history (ms). */
    double latency_p50_ms = 0.0;
    double latency_p95_ms = 0.0;
    double latency_p99_ms = 0.0;
    /** Share of lookups answered by the cache (either tier). */
    double cache_hit_rate = 0.0;
    ProgramCacheStats cache_stats;
};

/** The serving front-end over core::Compiler. */
class CompileService
{
  public:
    explicit CompileService(CompileServiceConfig config = {});
    /** Drains pending work, then joins the workers. */
    ~CompileService();

    CompileService(const CompileService &) = delete;
    CompileService &operator=(const CompileService &) = delete;

    /** Enqueue one request (thread-safe). */
    RequestHandle submit(CompileRequest request);
    /** Enqueue many requests; handles land in input order. */
    std::vector<RequestHandle>
    submitBatch(std::vector<CompileRequest> requests);

    /** Start serving when constructed with start_paused. */
    void resume();

    /** Block until the queue is empty and no request is in flight. */
    void drain();

    /**
     * Stop accepting requests, then either finish the queue
     * (@p drain_pending) or fail it with Outcome::Cancelled; joins
     * the workers.  Idempotent.
     */
    void shutdown(bool drain_pending = true);

    MetricsSnapshot metrics() const;

    ProgramCache &cache() { return cache_; }
    int numWorkers() const { return int(workers_.size()); }

    /** The instrument registry this service reports into (the
     *  configured one, or the private fallback). */
    tel::MetricsRegistry &metricsRegistry() { return *registry_; }
    /** Null when tracing is off. */
    TraceLog *traceLog() { return config_.trace.get(); }

  private:
    using Clock = std::chrono::steady_clock;
    using TaskPtr = std::shared_ptr<RequestHandle::Task>;

    /** The cache-aware admission queue (defined in the .cc). */
    class Admission;

    struct Inflight;

    void workerLoop();
    void serve(const TaskPtr &task);
    std::shared_ptr<const core::Compiler>
    compilerFor(const TaskPtr &task);
    void finish(const TaskPtr &task, ServiceResult result);
    /** Build and emit the request's span tree (no-op when tracing is
     *  off or the task never got a root span). */
    void emitTrace(const TaskPtr &task, const ServiceResult &result,
                   double latency_ms);
    /** Resolve every follower parked on @p inflight with the primary
     *  compile's outcome (shared program, or the failure status). */
    void resolveFollowers(const std::shared_ptr<Inflight> &inflight,
                          const ServiceResult &primary);

    CompileServiceConfig config_;
    /** Declared before cache_: the cache reports into it. */
    std::shared_ptr<tel::MetricsRegistry> registry_;
    ProgramCache cache_;
    Clock::time_point start_;

    mutable std::mutex mu_;
    std::condition_variable work_cv_;
    std::condition_variable idle_cv_;
    std::unique_ptr<Admission> queue_;
    size_t in_flight_ = 0;
    bool paused_ = false;
    bool accepting_ = true;
    bool stopping_ = false;
    uint64_t next_id_ = 1;

    std::mutex compilers_mu_;
    std::unordered_map<Fingerprint,
                       std::shared_ptr<const core::Compiler>,
                       FingerprintHash>
        compilers_;

    /** In-flight cold compiles by fingerprint; duplicate requests
     *  park here until the primary publishes (request coalescing). */
    std::mutex coalesce_mu_;
    std::unordered_map<Fingerprint, std::shared_ptr<Inflight>,
                       FingerprintHash>
        inflight_;

    /** Registry-owned instruments (qzz_service_*; see
     *  docs/observability.md for the catalog).  Plain pointers: the
     *  registry outlives the service. */
    tel::Counter *submitted_ = nullptr;
    tel::Counter *completed_ = nullptr;
    tel::Counter *failed_ = nullptr;
    tel::Counter *cancelled_ = nullptr;
    tel::Counter *expired_ = nullptr;
    tel::Counter *rejected_ = nullptr;
    tel::Counter *cache_hits_ = nullptr;
    tel::Counter *cache_misses_ = nullptr;
    tel::Counter *coalesced_ = nullptr;
    tel::Counter *warm_boosted_ = nullptr;
    tel::Histogram *latency_hist_ = nullptr;
    tel::Histogram *queue_hist_ = nullptr;
    tel::Histogram *compile_hist_ = nullptr;
    tel::Gauge *queue_depth_gauge_ = nullptr;
    tel::Gauge *workers_gauge_ = nullptr;
    tel::Gauge *uptime_gauge_ = nullptr;

    std::atomic<uint64_t> completion_seq_{0};

    std::vector<std::thread> workers_;
};

} // namespace qzz::svc

#endif // QZZ_SERVICE_COMPILE_SERVICE_H
