/**
 * @file
 * CalibrationHub: the live calibration plane of the serving fabric.
 *
 * dev::Calibration snapshots give every layer calibrated numbers, but
 * until now a running server was frozen at whatever epoch it booted
 * with.  The hub closes the loop: a calibration daemon pushes a new
 * epoch — either as a {"cmd":"calibrate"} record carrying the full
 * snapshot JSON, or by dropping a file into a watched directory — and
 * the hub rolls the serving generation while requests are in flight:
 *
 *   push / watch file
 *        |
 *        v
 *   validate (topology match, T2 <= 2 T1, monotonic epoch)
 *        |
 *        v
 *   swap the live dev::Device generation for that device key
 *     -> new submissions fingerprint against the new epoch
 *        (kFingerprintVersion 2 mixes the full snapshot, so the
 *        roll is a distinct cache generation automatically)
 *        |
 *        +--> sweep superseded epochs out of the in-memory
 *        |    ProgramCache and kick an ArtifactGc pass so the
 *        |    disk tier retires stale generations
 *        |
 *        +--> push {"event":"calib_epoch",...} to every subscribed
 *             session (server.h routes the frame through the
 *             session's in-order writer thread)
 *
 * Device keys are "<topology-name>#<device_seed>" (e.g. "grid-3x3#7")
 * — the same identity the server's device memo uses minus the epoch,
 * which the hub owns.  Watch-directory files are named
 * "<topology-name>@<device_seed>.qzzcalib" ('@' instead of '#' so the
 * names stay shell-friendly); see docs/formats.md.
 *
 * Thread safety: every public method is safe to call from any thread.
 * Subscriber callbacks run under the hub's subscriber mutex, so
 * unsubscribe() returning guarantees no callback is in flight.
 */

#ifndef QZZ_SERVICE_CALIBRATION_HUB_H
#define QZZ_SERVICE_CALIBRATION_HUB_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/telemetry.h"
#include "device/calibration.h"
#include "device/device.h"
#include "graph/topologies.h"

namespace qzz::svc {

class ArtifactGc;
class ProgramCache;

/** CalibrationHub construction knobs. */
struct CalibrationHubConfig
{
    /** Directory polled for "<topology>@<seed>.qzzcalib" snapshot
     *  files; empty disables the watcher. */
    std::string watch_dir;
    /** Watcher poll period. */
    std::chrono::milliseconds watch_interval{250};
    /** Keep only the newest K applied calibration epochs in the
     *  in-memory program cache when a roll lands (0 = never sweep).
     *  Mirrors ArtifactGcConfig::keep_epochs for the disk tier. */
    int keep_epochs = 0;
    /** Instrument registry the hub reports into (qzz_calib_*); null
     *  gives it a private registry. */
    std::shared_ptr<tel::MetricsRegistry> metrics;
};

/** Outcome of one calibration push (applied or rejected). */
struct CalibrationUpdate
{
    bool applied = false;
    /** Why the update was rejected (empty when applied). */
    std::string error;
    /** "<topology-name>#<device_seed>". */
    std::string device_key;
    /** The snapshot's epoch (applied or attempted). */
    uint64_t epoch = 0;
    /** In-memory cache entries swept as superseded by this roll. */
    size_t entries_invalidated = 0;
    /** Disk artifacts evicted by the GC pass this roll kicked. */
    uint64_t gc_evicted = 0;
    /** ... of which stale-calibration-epoch evictions. */
    uint64_t gc_evicted_epoch = 0;
};

/** Monotonic hub counters plus the current live epoch per device. */
struct CalibrationHubStats
{
    uint64_t epochs_applied = 0;
    uint64_t updates_rejected = 0;
    uint64_t entries_invalidated = 0;
    /** Watch-directory snapshots successfully applied. */
    uint64_t watch_loads = 0;
    /** Watch-directory files that failed to load/parse/name-parse. */
    uint64_t watch_errors = 0;
    /** File-mtime -> applied delay of the newest watch load (ms). */
    double last_watch_latency_ms = 0.0;
    /** Sorted (device key, live epoch) pairs. */
    std::vector<std::pair<std::string, uint64_t>> current;
};

/**
 * The live calibration plane: validates pushed snapshots, owns the
 * current device generation per device key, and fans invalidation out
 * to the cache tiers and subscribed sessions.
 */
class CalibrationHub
{
  public:
    /** @p cache and @p gc may be null (no sweep / no GC kick); when
     *  set they must outlive the hub. */
    CalibrationHub(CalibrationHubConfig config, ProgramCache *cache,
                   ArtifactGc *gc);
    ~CalibrationHub();

    CalibrationHub(const CalibrationHub &) = delete;
    CalibrationHub &operator=(const CalibrationHub &) = delete;

    /**
     * Apply one calibration push for the device (@p topo, @p
     * device_seed).  Validates the snapshot against the topology
     * (including T2 <= 2 T1) and requires a strictly newer epoch than
     * the live one (the implicit boot generation is epoch 0, so the
     * first push must carry epoch >= 1).  On success the live device
     * generation is swapped, superseded epochs are swept from the
     * in-memory cache (per keep_epochs), a GC pass is kicked, and
     * subscribers are notified.  Never throws: rejections come back
     * as {applied=false, error}.  @p source tags the notification
     * ("calibrate" for the verb, "watch:<file>" for the watcher).
     */
    CalibrationUpdate apply(graph::Topology topo, uint64_t device_seed,
                            dev::Calibration calib,
                            const std::string &source);

    /** The live (pushed) device generation for a key; null when no
     *  push has been applied for it. */
    std::shared_ptr<const dev::Device>
    liveDevice(const std::string &topology_name,
               uint64_t device_seed) const;

    /** Live epoch for a device key; 0 when no push applied. */
    uint64_t currentEpoch(const std::string &device_key) const;

    /** A subscriber receives each calib_epoch event as one complete
     *  JSON line (newline included).  Callbacks run under the hub's
     *  subscriber mutex — keep them cheap (enqueue, don't write). */
    using EventSink = std::function<void(const std::string &)>;

    /** Register @p sink; returns the token unsubscribe() takes. */
    uint64_t subscribe(EventSink sink);
    /** After this returns, no callback for the token is in flight. */
    void unsubscribe(uint64_t token);
    size_t subscriberCount() const;

    /** Start the watch thread (no-op when watch_dir is empty). */
    void startWatch();
    /** Stop and join the watch thread (idempotent). */
    void stopWatch();

    /**
     * One watcher pass: apply every new or changed
     * "<topology>@<seed>.qzzcalib" file under watch_dir.  A file is
     * only reprocessed when its (mtime, size) changes, so a rejected
     * or malformed file is not retried every tick.  Returns the
     * number of snapshots applied.  Public so tests can drive the
     * watcher deterministically without the polling thread.
     */
    size_t pollWatchDir();

    CalibrationHubStats stats() const;

    const CalibrationHubConfig &config() const { return config_; }

    /** "<topology-name>#<device_seed>". */
    static std::string deviceKey(const std::string &topology_name,
                                 uint64_t device_seed);

  private:
    struct Generation
    {
        std::shared_ptr<const dev::Device> device;
        uint64_t epoch = 0;
    };

    CalibrationUpdate reject(CalibrationUpdate update, std::string why);
    void notify(const CalibrationUpdate &update, const std::string &id,
                const std::string &source);
    void watchLoop();

    CalibrationHubConfig config_;
    ProgramCache *cache_;
    ArtifactGc *gc_;

    std::shared_ptr<tel::MetricsRegistry> registry_;
    tel::Counter *epochs_applied_ = nullptr;
    tel::Counter *updates_rejected_ = nullptr;
    tel::Counter *entries_invalidated_ = nullptr;
    tel::Counter *watch_loads_ = nullptr;
    tel::Counter *watch_errors_ = nullptr;

    mutable std::mutex mu_;
    std::map<std::string, Generation> live_;
    /** Highest epoch ever applied (the sweep threshold base). */
    uint64_t max_applied_epoch_ = 0;
    double last_watch_latency_ms_ = 0.0;
    /** Per-path (mtime_ms, size) of the last processed version. */
    std::map<std::string, std::pair<int64_t, uint64_t>> watch_seen_;

    mutable std::mutex subs_mu_;
    std::map<uint64_t, EventSink> subscribers_;
    uint64_t next_token_ = 1;

    std::mutex watch_mu_;
    std::condition_variable watch_cv_;
    bool watch_stop_ = false;
    std::thread watcher_;
};

/**
 * Rebuild a topology from its canonical name ("grid-3x3", "line-6",
 * "ring-8", "trigrid-2x4", "heavyhex-1x1") — the inverse of the
 * graph::*Topology() factories' naming, used to resolve watch-file
 * names to devices.  nullopt for unknown or malformed names.
 */
std::optional<graph::Topology>
topologyFromName(const std::string &name);

} // namespace qzz::svc

#endif // QZZ_SERVICE_CALIBRATION_HUB_H
