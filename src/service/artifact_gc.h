/**
 * @file
 * Garbage collection for the shared on-disk artifact tier.
 *
 * N server processes share one artifact directory (program_cache.h
 * writes one "<fingerprint>.qzzprog" file per compiled program).  To
 * keep that directory bounded, the tier maintains a versioned
 * manifest — manifest.jsonl, one flat JSON line per artifact carrying
 * its fingerprint, byte size, mtime and calib_epoch — and ArtifactGc
 * enforces three bounds over it:
 *
 *   - byte capacity: least-recently-used artifacts (by file mtime;
 *     disk hits touch the file) are evicted until the directory fits;
 *   - max age: artifacts older than the bound are evicted;
 *   - stale calibration epochs: with keep_epochs = K, artifacts whose
 *     calib_epoch trails the newest epoch in the directory by K or
 *     more are evicted — a calibration roll retires the old
 *     generation instead of leaving it pinned by recency.
 *
 * Concurrency model (docs/formats.md#artifact-manifest):
 *   - Writers append one manifest line under an advisory exclusive
 *     flock on manifest.lock, after the artifact file itself has been
 *     atomically renamed into place.
 *   - ArtifactGc::run() takes the same lock, reconciles the manifest
 *     against a directory scan (files missing from the manifest are
 *     adopted; manifest lines whose file vanished are dropped),
 *     evicts, and rewrites the manifest compacted via temp + rename.
 *     The lock serializes GC passes and manifest appends across
 *     processes.
 *   - Readers take no lock at all: a cache lookup just opens the
 *     artifact file, and if GC unlinked it first the open fails and
 *     the lookup falls back to a miss (an already-open file survives
 *     unlink, so in-progress loads always complete).
 */

#ifndef QZZ_SERVICE_ARTIFACT_GC_H
#define QZZ_SERVICE_ARTIFACT_GC_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/telemetry.h"
#include "service/fingerprint.h"

namespace qzz::svc {

/** Manifest format version (header line of manifest.jsonl). */
inline constexpr int kManifestVersion = 1;

/** One manifest line: the GC-relevant facts about one artifact. */
struct ManifestEntry
{
    Fingerprint fp;
    uint64_t bytes = 0;
    /** Milliseconds since the Unix epoch of the artifact's mtime at
     *  append time; GC refreshes it from stat() when reconciling. */
    int64_t mtime_ms = 0;
    /** CompiledProgram::calib_epoch the artifact was compiled at. */
    uint64_t calib_epoch = 0;
};

/**
 * RAII advisory exclusive lock on an artifact directory's
 * manifest.lock file (flock, blocking).  ok() is false when the lock
 * file could not be opened — callers degrade to best effort: a
 * writer skips its manifest append (the next GC pass adopts the
 * orphaned artifact from the directory scan).
 */
class ArtifactDirLock
{
  public:
    explicit ArtifactDirLock(const std::string &dir);
    ~ArtifactDirLock();

    ArtifactDirLock(const ArtifactDirLock &) = delete;
    ArtifactDirLock &operator=(const ArtifactDirLock &) = delete;

    bool ok() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
};

/** Append one line to @p dir's manifest under the directory lock.
 *  Returns false (best effort, never throws) when the directory or
 *  lock is unavailable. */
bool appendManifestEntry(const std::string &dir, const ManifestEntry &e);

/** Parse @p dir's manifest (no locking — callers that need a
 *  consistent view hold an ArtifactDirLock).  Malformed lines and a
 *  missing file read as an empty/partial result, never an error. */
std::vector<ManifestEntry> readManifest(const std::string &dir);

/** ArtifactGc policy knobs; a zero value disables that bound. */
struct ArtifactGcConfig
{
    /** Directory byte bound (sum of *.qzzprog sizes). */
    uint64_t capacity_bytes = 0;
    /** Evict artifacts whose mtime is older than this. */
    std::chrono::milliseconds max_age{0};
    /** Keep only the newest K calibration epochs present in the
     *  directory: artifacts with calib_epoch <= max_epoch - K are
     *  evicted.  0 keeps every epoch. */
    int keep_epochs = 0;
};

/** What one ArtifactGc::run() pass did. */
struct ArtifactGcStats
{
    uint64_t scanned = 0;          ///< artifacts present before the pass
    uint64_t manifest_entries = 0; ///< manifest lines read (pre-reconcile)
    uint64_t adopted = 0;          ///< files present but unlisted
    uint64_t dropped_lines = 0;    ///< manifest lines without a file
    uint64_t evicted = 0;          ///< artifacts deleted
    uint64_t evicted_age = 0;      ///< ... for exceeding max_age
    uint64_t evicted_epoch = 0;    ///< ... for a stale calib_epoch
    uint64_t evicted_capacity = 0; ///< ... LRU under the byte bound
    uint64_t bytes_before = 0;
    uint64_t bytes_after = 0;
    uint64_t max_epoch = 0; ///< newest calib_epoch seen
};

/**
 * The artifact-tier garbage collector.  run() executes one pass (safe
 * to call concurrently from any thread or process — the directory
 * lock serializes).  start() runs passes on a background thread at a
 * fixed interval; maybeCollect() is the write-path hook: it runs a
 * pass only when a cheap directory scan shows the byte capacity
 * exceeded, so a burst of cold compiles cannot overshoot the bound by
 * more than one artifact per process for long.
 */
class ArtifactGc
{
  public:
    /** @p metrics: registry the GC reports into (qzz_gc_*); null
     *  gives it a private registry. */
    ArtifactGc(std::string dir, ArtifactGcConfig config,
               std::shared_ptr<tel::MetricsRegistry> metrics = nullptr);
    ~ArtifactGc();

    ArtifactGc(const ArtifactGc &) = delete;
    ArtifactGc &operator=(const ArtifactGc &) = delete;

    /** One GC pass; returns what it did. */
    ArtifactGcStats run();

    /** Run a pass iff the directory currently exceeds the byte
     *  capacity (no-op when capacity_bytes is 0 or a pass is already
     *  running in this process). */
    void maybeCollect();

    /** Current sum of artifact byte sizes in the directory (no lock:
     *  a moving target under concurrent writers). */
    uint64_t directoryBytes() const;

    /** Start periodic passes on a background thread.  Idempotent. */
    void start(std::chrono::milliseconds interval);
    /** Stop the background thread (joins).  Idempotent. */
    void stop();

    /** Cumulative stats of the most recent completed pass. */
    ArtifactGcStats lastStats() const;
    /** Total passes run by this instance. */
    uint64_t passes() const { return passes_.load(); }

    const std::string &dir() const { return dir_; }
    const ArtifactGcConfig &config() const { return config_; }

  private:
    std::string dir_;
    ArtifactGcConfig config_;

    std::shared_ptr<tel::MetricsRegistry> registry_;
    tel::Counter *passes_counter_ = nullptr;
    tel::Counter *evicted_counter_ = nullptr;
    tel::Counter *evicted_age_counter_ = nullptr;
    tel::Counter *evicted_epoch_counter_ = nullptr;
    tel::Counter *evicted_capacity_counter_ = nullptr;
    tel::Gauge *tier_bytes_gauge_ = nullptr;

    std::atomic<bool> collecting_{false};
    std::atomic<uint64_t> passes_{0};

    mutable std::mutex stats_mu_;
    ArtifactGcStats last_stats_;

    std::mutex bg_mu_;
    std::condition_variable bg_cv_;
    bool bg_stop_ = false;
    std::thread bg_thread_;
};

} // namespace qzz::svc

#endif // QZZ_SERVICE_ARTIFACT_GC_H
