#include "service/trace.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <random>
#include <system_error>

#include "common/error.h"
#include "service/jsonl.h"

namespace qzz::svc {

namespace {

/** splitmix64: avalanche a counter into 64 well-mixed bits. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::string
hex16(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Milliseconds with microsecond resolution, no exponent. */
std::string
formatMs(double ms)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", ms);
    return buf;
}

} // namespace

std::string
renderTraceSpan(const TraceSpan &span)
{
    std::string out = "{\"trace_id\":\"" + jsonEscape(span.trace_id) +
                      "\",\"span_id\":" + std::to_string(span.span_id) +
                      ",\"parent_id\":" + std::to_string(span.parent_id) +
                      ",\"name\":\"" + jsonEscape(span.name) +
                      "\",\"start_ms\":" + formatMs(span.start_unix_ms) +
                      ",\"dur_ms\":" + formatMs(span.duration_ms);
    if (!span.attrs.empty()) {
        out += ",\"attrs\":{";
        bool first = true;
        for (const auto &[k, v] : span.attrs) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += jsonEscape(k);
            out += "\":\"";
            out += jsonEscape(v);
            out += '"';
        }
        out += '}';
    }
    out += '}';
    return out;
}

TraceLog::TraceLog(TraceLogConfig config)
    : config_(std::move(config))
{
    require(!config_.path.empty(), "TraceLog: path must be non-empty");
    std::error_code ec;
    const auto size = std::filesystem::file_size(config_.path, ec);
    offset_ = ec ? 0 : uint64_t(size);
    out_.open(config_.path, std::ios::app);
    require(out_.is_open(),
            "TraceLog: cannot open \"" + config_.path + "\" for append");
}

void
TraceLog::emit(const TraceSpan &span)
{
    const std::string line = renderTraceSpan(span) + "\n";
    std::lock_guard<std::mutex> lock(mu_);
    writeLocked(line);
    if (span.parent_id == 0)
        maybeLogSlowLocked(span);
}

void
TraceLog::emitTree(const std::vector<TraceSpan> &spans)
{
    if (spans.empty())
        return;
    std::string block;
    for (const TraceSpan &span : spans)
        block += renderTraceSpan(span) + "\n";
    std::lock_guard<std::mutex> lock(mu_);
    writeLocked(block);
    spans_emitted_.fetch_add(spans.size() - 1,
                             std::memory_order_relaxed);
    for (const TraceSpan &span : spans)
        if (span.parent_id == 0)
            maybeLogSlowLocked(span);
}

void
TraceLog::writeLocked(const std::string &line)
{
    if (config_.max_bytes > 0 && offset_ > 0 &&
        offset_ + line.size() > config_.max_bytes) {
        out_.close();
        std::error_code ec;
        const std::string old = config_.path + ".1";
        std::filesystem::remove(old, ec);
        std::filesystem::rename(config_.path, old, ec);
        out_.open(config_.path, std::ios::trunc);
        offset_ = 0;
        rotations_.fetch_add(1, std::memory_order_relaxed);
    }
    out_ << line;
    out_.flush();
    offset_ += line.size();
    spans_emitted_.fetch_add(1, std::memory_order_relaxed);
}

void
TraceLog::maybeLogSlowLocked(const TraceSpan &root)
{
    if (config_.slow_ms <= 0.0 || root.duration_ms < config_.slow_ms)
        return;
    std::string line = "qzz-slow trace_id=" + root.trace_id +
                       " name=" + root.name +
                       " dur_ms=" + formatMs(root.duration_ms);
    for (const auto &[k, v] : root.attrs)
        line += " " + k + "=" + v;
    std::ostream &sink = slow_sink_ ? *slow_sink_ : std::cerr;
    sink << line << std::endl;
    slow_logged_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t
TraceLog::spansEmitted() const
{
    return spans_emitted_.load(std::memory_order_relaxed);
}

uint64_t
TraceLog::rotations() const
{
    return rotations_.load(std::memory_order_relaxed);
}

uint64_t
TraceLog::slowLogged() const
{
    return slow_logged_.load(std::memory_order_relaxed);
}

void
TraceLog::setSlowSink(std::ostream *sink)
{
    std::lock_guard<std::mutex> lock(mu_);
    slow_sink_ = sink;
}

std::string
TraceLog::mintTraceId()
{
    // One random 64-bit lane per process (entropy + clock, so forked
    // children diverge) crossed with a process-local counter: ids are
    // unique in-process by construction and collide across processes
    // only if two 64-bit mixes agree.
    static const uint64_t process_lane =
        mix64((uint64_t(std::random_device{}()) << 32) ^
              std::random_device{}() ^
              uint64_t(std::chrono::steady_clock::now()
                           .time_since_epoch()
                           .count()));
    static std::atomic<uint64_t> counter{0};
    const uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
    return hex16(mix64(process_lane ^ n)) + hex16(mix64(n + process_lane));
}

uint64_t
TraceLog::mintSpanId()
{
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace qzz::svc
