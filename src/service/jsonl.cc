#include "service/jsonl.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace qzz::svc {

namespace {

/** Cursor over one line with position-carrying error reporting. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    bool
    fail(const std::string &what)
    {
        if (error_.empty()) {
            std::ostringstream os;
            os << what << " at offset " << pos_;
            error_ = os.str();
        }
        return false;
    }

    const std::string &error() const { return error_; }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool atEnd() const { return pos_ >= text_.size(); }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    bool
    consume(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        out.clear();
        while (true) {
            if (atEnd())
                return fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (atEnd())
                    return fail("unterminated escape");
                char e = text_[pos_++];
                switch (e) {
                case '"':
                case '\\':
                case '/':
                    out.push_back(e);
                    break;
                case 'b':
                    out.push_back('\b');
                    break;
                case 'f':
                    out.push_back('\f');
                    break;
                case 'n':
                    out.push_back('\n');
                    break;
                case 'r':
                    out.push_back('\r');
                    break;
                case 't':
                    out.push_back('\t');
                    break;
                case 'u': {
                    // ASCII-range \uXXXX only (jsonEscape emits
                    // \u00XX for control bytes); non-ASCII
                    // codepoints would need UTF-8 encoding the
                    // protocol has no use for.
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        if (atEnd())
                            return fail("unterminated \\u escape");
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= unsigned(h - 'A' + 10);
                        else
                            return fail("malformed \\u escape");
                    }
                    if (code >= 0x80)
                        return fail("non-ASCII \\u escape");
                    out.push_back(char(code));
                    break;
                }
                default:
                    return fail("unsupported escape");
                }
            } else {
                out.push_back(c);
            }
        }
    }

    bool
    parseNumber(double &out)
    {
        const size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (consume('.'))
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        const std::string token(text_.substr(start, pos_ - start));
        char *end = nullptr;
        out = std::strtod(token.c_str(), &end);
        if (token.empty() || end != token.c_str() + token.size())
            return fail("malformed number");
        return true;
    }

    bool
    parseScalar(JsonScalar &out)
    {
        skipSpace();
        const char c = peek();
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = std::move(s);
            return true;
        }
        if (c == 't') {
            if (!literal("true"))
                return fail("malformed literal");
            out = true;
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return fail("malformed literal");
            out = false;
            return true;
        }
        if (c == 'n') {
            if (!literal("null"))
                return fail("malformed literal");
            out = nullptr;
            return true;
        }
        if (c == '{' || c == '[')
            return fail("nested values are not part of the protocol");
        double v = 0.0;
        if (!parseNumber(v))
            return false;
        out = v;
        return true;
    }

    bool
    parseObject(std::map<std::string, JsonScalar> &fields)
    {
        skipSpace();
        if (!consume('{'))
            return fail("expected '{'");
        skipSpace();
        if (consume('}')) {
            skipSpace();
            return atEndOrFail();
        }
        while (true) {
            skipSpace();
            std::string key;
            if (!parseString(key))
                return false;
            skipSpace();
            if (!consume(':'))
                return fail("expected ':'");
            JsonScalar value;
            if (!parseScalar(value))
                return false;
            if (!fields.emplace(std::move(key), std::move(value)).second)
                return fail("duplicate key");
            skipSpace();
            if (consume(','))
                continue;
            if (consume('}')) {
                skipSpace();
                return atEndOrFail();
            }
            return fail("expected ',' or '}'");
        }
    }

  private:
    bool
    atEndOrFail()
    {
        return atEnd() ? true : fail("trailing characters");
    }

    std::string_view text_;
    size_t pos_ = 0;
    std::string error_;
};

} // namespace

std::optional<JsonObject>
JsonObject::parse(std::string_view line, std::string *error)
{
    JsonObject obj;
    Parser parser(line);
    if (!parser.parseObject(obj.fields_)) {
        if (error != nullptr)
            *error = parser.error();
        return std::nullopt;
    }
    return obj;
}

bool
JsonObject::has(const std::string &key) const
{
    return fields_.count(key) != 0;
}

std::optional<std::string>
JsonObject::getString(const std::string &key) const
{
    auto it = fields_.find(key);
    if (it == fields_.end())
        return std::nullopt;
    if (const std::string *s = std::get_if<std::string>(&it->second))
        return *s;
    return std::nullopt;
}

std::optional<double>
JsonObject::getNumber(const std::string &key) const
{
    auto it = fields_.find(key);
    if (it == fields_.end())
        return std::nullopt;
    if (const double *v = std::get_if<double>(&it->second))
        return *v;
    return std::nullopt;
}

std::optional<bool>
JsonObject::getBool(const std::string &key) const
{
    auto it = fields_.find(key);
    if (it == fields_.end())
        return std::nullopt;
    if (const bool *v = std::get_if<bool>(&it->second))
        return *v;
    return std::nullopt;
}

std::optional<int64_t>
JsonObject::getInt(const std::string &key) const
{
    const std::optional<double> v = getNumber(key);
    if (!v)
        return std::nullopt;
    const double r = std::round(*v);
    if (std::abs(*v - r) > 1e-9 || !std::isfinite(r))
        return std::nullopt;
    // Reject values outside int64 range before the cast — the
    // conversion of an unrepresentable double is undefined behavior,
    // and this parser's whole job is rejecting untrusted input
    // cleanly.  (2^63 is exactly representable; the half-open bound
    // is the exact test.)
    if (!(r >= -9223372036854775808.0 && r < 9223372036854775808.0))
        return std::nullopt;
    return int64_t(r);
}

std::string
jsonEscape(std::string_view s)
{
    static const char hex[] = "0123456789abcdef";
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\b':
            out += "\\b";
            break;
        case '\f':
            out += "\\f";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            // RFC 8259: all other control characters must be escaped
            // too, or the emitted line is not valid JSON.
            if (static_cast<unsigned char>(c) < 0x20) {
                out += "\\u00";
                out.push_back(hex[(c >> 4) & 0xf]);
                out.push_back(hex[c & 0xf]);
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace qzz::svc
