/**
 * @file
 * The JSON-lines serving front-end over CompileService, split from
 * the transport it speaks over.
 *
 *   Transport (transport.h)          Server (this file)
 *   ----------------------           ---------------------------
 *   accept() -> Connection  --->     one Session per connection
 *                                      |-- reader: parse, validate,
 *                                      |   submit to the shared
 *                                      |   CompileService
 *                                      |-- writer thread: stream
 *                                          responses in request order
 *
 * Server::serve() is the daemon loop: it accepts sessions until the
 * transport shuts down (each on its own thread), installs a SIGTERM
 * handler that drains gracefully — stop accepting, finish every
 * in-flight session and queued compile, then exit — and finally
 * drains the service.  All sessions share one CompileService (worker
 * pool + program cache + artifact tier), one device memo, and one
 * ArtifactGc, so N connections hitting the same fingerprints coalesce
 * and share warm state exactly like one pipelined stdio client.
 *
 * Session is public on purpose: tests drive it directly over a
 * StreamConnection pair of stringstreams, asserting the wire protocol
 * (docs/protocol.md) without sockets or a child process.  The
 * protocol itself is unchanged from the original stdio daemon —
 * byte-identical responses for identical stdio input — plus two
 * additive verbs: {"cmd":"hello"} (capability handshake) and
 * {"cmd":"gc"} (run an artifact-tier GC pass).
 *
 * Observability (docs/observability.md): the server owns one shared
 * tel::MetricsRegistry that the service, cache, GC and hub all report
 * into, an optional TraceLog every request's span tree is written to,
 * and an optional second listener serving GET /metrics in Prometheus
 * text exposition format ({"cmd":"metrics"} keeps its JSON shape and
 * gains a {"format":"prometheus"} variant).
 */

#ifndef QZZ_SERVICE_SERVER_H
#define QZZ_SERVICE_SERVER_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/telemetry.h"
#include "device/device.h"
#include "service/compile_service.h"
#include "service/trace.h"
#include "service/transport.h"

namespace qzz::svc {

class ArtifactGc;
class CalibrationHub;
class JsonObject;

/** Wire-protocol version reported by {"cmd":"hello"}; bumped when a
 *  response field changes meaning (new fields are additive and do
 *  not bump it). */
inline constexpr int kProtocolVersion = 1;

/** Server construction knobs (the compile_server flag surface). */
struct ServerConfig
{
    /** CompileService worker threads; 0 = all cores. */
    int workers = 0;
    /** Program-cache entry capacity. */
    size_t cache_capacity = 256;
    /** On-disk artifact tier directory; empty disables it. */
    std::string artifact_dir;
    /** Waveform sample spacing (ns) in response schedule JSON; 0
     *  omits samples. */
    double sample_dt = 0.0;
    /** Artifact-tier byte bound (0 = unbounded); enforced by GC on
     *  the write path and on {"cmd":"gc"}. */
    uint64_t gc_capacity_bytes = 0;
    /** Artifact max age (0 = no age bound). */
    std::chrono::milliseconds gc_max_age{0};
    /** Keep only the newest K calibration epochs (0 = all). */
    int gc_keep_epochs = 0;
    /** Background GC pass interval (0 = no background thread). */
    std::chrono::milliseconds gc_interval{0};
    /** Directory the CalibrationHub polls for
     *  "<topology>@<seed>.qzzcalib" snapshot files; empty disables
     *  the watcher (the {"cmd":"calibrate"} verb always works). */
    std::string watch_calib_dir;
    /** Calibration watcher poll period. */
    std::chrono::milliseconds watch_calib_interval{250};
    /** Prometheus scrape listener spec ("tcp:PORT" or
     *  "tcp:HOST:PORT"; "tcp:0" lets the kernel pick — see
     *  metricsPort()).  Empty disables the endpoint.  The listener
     *  serves GET /metrics in text exposition format 0.0.4 and
     *  should stay on a trusted interface (docs/observability.md). */
    std::string metrics_listen;
    /** Trace-span JSONL log path; empty disables tracing. */
    std::string trace_log;
    /** Trace log size bound: the file rotates to "<path>.1" before
     *  exceeding this many bytes (0 = never rotate). */
    uint64_t trace_max_bytes = 64ull << 20;
    /** Log a one-line summary of any request whose root span is
     *  slower than this many milliseconds; 0 disables. */
    double slow_ms = 0.0;
};

class Server;

/** One client session: reads requests off a Connection, submits them
 *  to the shared service, and streams responses back in request
 *  order via a dedicated writer thread. */
class Session
{
  public:
    Session(Server &server, Connection &conn);
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** Serve until EOF, a dead connection, or {"cmd":"quit"}; true
     *  iff quit ended it. */
    bool run();

  private:
    /** A submitted request waiting for its response slot. */
    struct Pending
    {
        std::string id;
        std::string label;
        RequestHandle handle;
    };

    /** One queued output line: a pending response, an inline error,
     *  or a fully-rendered raw line (control responses and pushed
     *  event frames).  Every byte the session emits flows through
     *  this queue, so the writer thread is the single writer on the
     *  connection and async calib_epoch events can never interleave
     *  with a response mid-line. */
    struct OutItem
    {
        bool is_error = false;
        bool is_raw = false;
        Pending pending;     ///< valid when !is_error && !is_raw
        std::string id;      ///< valid when is_error
        std::string message; ///< valid when is_error
        std::string raw;     ///< valid when is_raw
    };

    static std::string requestId(const JsonObject &obj, uint64_t lineno);
    void handleRequest(const JsonObject &obj, uint64_t lineno);

    void writerLoop();
    void enqueue(OutItem item);
    void enqueueError(const std::string &id, const std::string &message);
    /** Queue one complete output line (newline included) verbatim —
     *  safe from any thread; the CalibrationHub event sink uses it. */
    void enqueueRaw(std::string line);
    /** Block until every queued response has been written. */
    void waitForWriterIdle();
    void stopWriter();
    /** Drop the hub subscription; after this no event sink can touch
     *  this session (must precede stopWriter on every exit path). */
    void unsubscribeHub();

    void respond(const Pending &pending, const ServiceResult &result);
    void printError(const std::string &id, const std::string &message);
    void respondMetrics(const JsonObject &obj);
    void respondHello(const JsonObject &obj);
    void respondGc();
    void respondCalibrate(const JsonObject &obj);

    Server &server_;
    Connection &conn_;

    /** Nonzero once this session subscribed to calib_epoch events
     *  via {"cmd":"hello","calib_events":true}. */
    uint64_t hub_token_ = 0;
    bool subscribed_ = false;

    std::mutex out_mu_;
    std::condition_variable out_cv_;
    std::condition_variable idle_cv_;
    std::deque<OutItem> out_;
    bool out_done_ = false;
    bool writer_busy_ = false;
    std::thread writer_;
};

/** The daemon: shared serving state plus the accept loop. */
class Server
{
  public:
    explicit Server(ServerConfig config = {});
    /** Stops background GC and drains the service. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Accept sessions from @p transport until it shuts down, then
     * join every session thread and drain the service.  SIGTERM (and
     * SIGINT) trigger exactly that shutdown — a graceful drain, not
     * an abort.  Returns a process exit code.
     */
    int serve(Transport &transport);

    /** Run one session synchronously on this thread (the stdio path
     *  uses serve(); tests call this directly).  True iff the client
     *  sent {"cmd":"quit"}. */
    bool runSession(Connection &conn);

    /**
     * Resolve the device a request object names, memoized on
     * (topology, device_seed, calib_epoch) and shared across every
     * session.  Thread-safe.  Throws UserError on bad parameters.
     */
    std::shared_ptr<const dev::Device> deviceFor(const JsonObject &obj,
                                                 int circuit_qubits);

    /**
     * Build the topology a request object names ("topology" plus
     * rows/cols/size, defaulting dimensions from @p default_qubits).
     * The topology half of deviceFor(), shared with the calibrate
     * verb.  Throws UserError on bad parameters.
     */
    graph::Topology topologyFor(const JsonObject &obj,
                                int default_qubits);

    CompileService &service() { return *service_; }
    /** Null when no artifact dir is configured. */
    ArtifactGc *gc() { return gc_.get(); }
    /** The live calibration plane (always constructed). */
    CalibrationHub &hub() { return *hub_; }
    const ServerConfig &config() const { return config_; }

    /** The process-wide instrument registry every subsystem of this
     *  server reports into. */
    tel::MetricsRegistry &metricsRegistry() { return *registry_; }
    /** Null when trace_log is empty. */
    TraceLog *traceLog() { return trace_.get(); }
    /** Bound port of the metrics listener (resolves "tcp:0"); 0 when
     *  the endpoint is disabled. */
    int metricsPort() const;

    /**
     * Refresh every gauge that is computed on read (service uptime
     * and queue depth, cache occupancy) and render the full registry
     * in Prometheus text exposition format 0.0.4.  This is the body
     * both GET /metrics and {"cmd":"metrics","format":"prometheus"}
     * serve.  Thread-safe.
     */
    std::string renderPrometheus();

  private:
    void metricsLoop();
    /** Serve one HTTP/1.1 exchange on an accepted scrape connection. */
    void serveMetricsConnection(Connection &conn);

    ServerConfig config_;
    std::shared_ptr<tel::MetricsRegistry> registry_;
    std::shared_ptr<TraceLog> trace_;
    std::shared_ptr<ArtifactGc> gc_;
    std::unique_ptr<CompileService> service_;
    /** Declared after service_/gc_: the hub (and its watch thread)
     *  is destroyed first, while the cache and GC it points at are
     *  still alive. */
    std::unique_ptr<CalibrationHub> hub_;

    /** The scrape listener and its accept thread (metrics_listen). */
    std::unique_ptr<SocketTransport> metrics_transport_;
    std::thread metrics_thread_;

    std::mutex devices_mu_;
    std::unordered_map<std::string, std::shared_ptr<const dev::Device>>
        devices_;
};

} // namespace qzz::svc

#endif // QZZ_SERVICE_SERVER_H
