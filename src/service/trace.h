/**
 * @file
 * Per-request trace spans and the JSONL sink they are written to.
 *
 * Every request entering the serving plane carries a trace_id —
 * minted at Session read, or supplied by the client and echoed in the
 * response — and leaves behind a small span tree:
 *
 *   request                       (root, parent_id 0)
 *     |-- queue_wait              admission queue time
 *     |-- cache_probe             program-cache lookup (memory + disk)
 *     |-- compile                 whole pipeline, when a compile ran
 *     |     |-- route / lower / schedule / pulses
 *     |-- artifact_write          cache insert + artifact-tier store
 *   respond                       (child of request; emitted by the
 *                                  Session after the bytes are out)
 *
 * Spans are JSON-lines records appended to one file (--trace-log)
 * with size-bounded rotation: when the file would exceed max_bytes it
 * is renamed to "<path>.1" (replacing any previous one) and a fresh
 * file is started, so the sink holds at most ~2x max_bytes.  A
 * --slow-ms threshold additionally logs a compact single-line summary
 * of any root span that took longer, to stderr by default.
 *
 * Span ids are unique per process (one atomic), so parent/child edges
 * never collide across concurrent requests; trace ids are 32 hex
 * chars, unique across processes with overwhelming probability.
 */

#ifndef QZZ_SERVICE_TRACE_H
#define QZZ_SERVICE_TRACE_H

#include <atomic>
#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace qzz::svc {

/** One timed operation inside a trace. */
struct TraceSpan
{
    std::string trace_id;
    uint64_t span_id = 0;
    /** 0 marks a root span. */
    uint64_t parent_id = 0;
    std::string name;
    /** Wall-clock start, milliseconds since the unix epoch. */
    double start_unix_ms = 0.0;
    double duration_ms = 0.0;
    /** Free-form annotations (outcome, fingerprint, ...). */
    std::vector<std::pair<std::string, std::string>> attrs;
};

struct TraceLogConfig
{
    /** JSONL sink path; must be non-empty. */
    std::string path;
    /** Rotate when the file would exceed this (0 = never rotate). */
    uint64_t max_bytes = 64ull << 20;
    /** Root spans at least this slow get a one-line summary on the
     *  slow sink; 0 disables. */
    double slow_ms = 0.0;
};

/** Thread-safe JSONL span sink with size-bounded rotation. */
class TraceLog
{
  public:
    explicit TraceLog(TraceLogConfig config);

    TraceLog(const TraceLog &) = delete;
    TraceLog &operator=(const TraceLog &) = delete;

    /** Append one span record. */
    void emit(const TraceSpan &span);
    /** Append a whole tree under one lock, so a request's spans land
     *  contiguously; also checks the root span against slow_ms. */
    void emitTree(const std::vector<TraceSpan> &spans);

    uint64_t spansEmitted() const;
    uint64_t rotations() const;
    uint64_t slowLogged() const;
    double slowMs() const { return config_.slow_ms; }
    const std::string &path() const { return config_.path; }

    /** Redirect slow-request summaries (tests); default is stderr.
     *  The sink must outlive the log. */
    void setSlowSink(std::ostream *sink);

    /** 32 lowercase hex chars, unique across processes with
     *  overwhelming probability. */
    static std::string mintTraceId();
    /** Process-unique span id (never 0). */
    static uint64_t mintSpanId();

  private:
    void writeLocked(const std::string &line);
    void maybeLogSlowLocked(const TraceSpan &root);

    TraceLogConfig config_;
    std::mutex mu_;
    std::ofstream out_;
    uint64_t offset_ = 0;
    std::ostream *slow_sink_ = nullptr; ///< null = stderr
    std::atomic<uint64_t> spans_emitted_{0};
    std::atomic<uint64_t> rotations_{0};
    std::atomic<uint64_t> slow_logged_{0};
};

/** Render one span as its JSONL record (no trailing newline);
 *  exposed for tests. */
std::string renderTraceSpan(const TraceSpan &span);

} // namespace qzz::svc

#endif // QZZ_SERVICE_TRACE_H
