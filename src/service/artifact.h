/**
 * @file
 * Compiled-program artifacts: a lossless, versioned text round-trip
 * of a CompiledProgram minus its pulse library.
 *
 * The on-disk tier of the program cache persists one artifact per
 * request fingerprint.  The pulse library itself is NOT serialized —
 * it is calibration data owned by the pulse store (core/pulse_opt.h),
 * addressed by the PulseMethod the artifact records — so loading an
 * artifact re-attaches the shared library for its method.  Every
 * double is written with max_digits10 precision, which round-trips
 * IEEE-754 binary64 exactly: a program loaded from disk is
 * bit-identical to the one that was stored.
 */

#ifndef QZZ_SERVICE_ARTIFACT_H
#define QZZ_SERVICE_ARTIFACT_H

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "core/framework.h"

namespace qzz::svc {

/** Artifact format version (stored in the header line).
 *  v2: adds the calib_epoch field — artifacts are versioned by the
 *  calibration-snapshot epoch they were compiled against. */
inline constexpr int kArtifactVersion = 2;

/** Serialize @p program (without its pulse library) to @p os. */
void writeProgramArtifact(const core::CompiledProgram &program,
                          std::ostream &os);

/** writeProgramArtifact() into a string (also the canonical
 *  byte-for-byte program identity used by the bit-identity tests). */
std::string programArtifactString(const core::CompiledProgram &program);

/**
 * Parse an artifact back.  The returned program carries a null
 * library when @p attach_library is false; otherwise the shared
 * calibration library for the recorded PulseMethod is re-attached via
 * getPulseLibraryShared().  Returns nullopt on malformed or
 * version-mismatched input.
 */
std::optional<core::CompiledProgram>
readProgramArtifact(std::istream &is, bool attach_library = true);

} // namespace qzz::svc

#endif // QZZ_SERVICE_ARTIFACT_H
