#include "service/fingerprint.h"

#include <algorithm>
#include <bit>
#include <tuple>
#include <vector>

#include "circuit/dag.h"

namespace qzz::svc {

namespace {

/** SplitMix64 finalizer: full-avalanche diffusion of one word. */
uint64_t
diffuse(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

constexpr uint64_t kLaneHiSeed = 0x6a09e667f3bcc908ULL; // sqrt(2)
constexpr uint64_t kLaneLoSeed = 0xbb67ae8584caa73bULL; // sqrt(3)
constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

} // namespace

std::string
Fingerprint::hex() const
{
    static const char digits[] = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i)
        out[size_t(15 - i)] = digits[(hi >> (4 * i)) & 0xf];
    for (int i = 0; i < 16; ++i)
        out[size_t(31 - i)] = digits[(lo >> (4 * i)) & 0xf];
    return out;
}

std::optional<Fingerprint>
Fingerprint::fromHex(std::string_view hex)
{
    if (hex.size() != 32)
        return std::nullopt;
    Fingerprint fp;
    for (size_t i = 0; i < 32; ++i) {
        const char c = hex[i];
        uint64_t nibble;
        if (c >= '0' && c <= '9')
            nibble = uint64_t(c - '0');
        else if (c >= 'a' && c <= 'f')
            nibble = uint64_t(c - 'a') + 10;
        else
            return std::nullopt;
        uint64_t &lane = i < 16 ? fp.hi : fp.lo;
        lane = (lane << 4) | nibble;
    }
    return fp;
}

FingerprintBuilder::FingerprintBuilder()
    : hi_(diffuse(kLaneHiSeed ^ kFingerprintVersion)),
      lo_(diffuse(kLaneLoSeed + kFingerprintVersion))
{
}

FingerprintBuilder &
FingerprintBuilder::mix(uint64_t word)
{
    ++count_;
    // Each lane sees the word keyed differently; the lanes cross-feed
    // so they never degenerate into two independent 64-bit hashes of
    // the same stream.
    const uint64_t d = diffuse(word + count_ * kGolden);
    lo_ = diffuse(lo_ ^ d) + hi_;
    hi_ = diffuse(hi_ + std::rotl(d, 23)) ^ std::rotl(lo_, 41);
    return *this;
}

FingerprintBuilder &
FingerprintBuilder::mix(double v)
{
    if (v == 0.0)
        v = 0.0; // collapse -0.0 and +0.0 to one representation
    return mix(std::bit_cast<uint64_t>(v));
}

FingerprintBuilder &
FingerprintBuilder::mix(std::string_view s)
{
    mix(uint64_t(s.size()));
    uint64_t word = 0;
    int shift = 0;
    for (unsigned char c : s) {
        word |= uint64_t(c) << shift;
        shift += 8;
        if (shift == 64) {
            mix(word);
            word = 0;
            shift = 0;
        }
    }
    if (shift != 0)
        mix(word);
    return *this;
}

FingerprintBuilder &
FingerprintBuilder::mix(const Fingerprint &fp)
{
    return mix(fp.hi).mix(fp.lo);
}

Fingerprint
FingerprintBuilder::finish() const
{
    // Final avalanche over both lanes and the word count, so prefixes
    // of a stream never share a fingerprint with the full stream.
    Fingerprint fp;
    fp.hi = diffuse(hi_ + diffuse(count_));
    fp.lo = diffuse(lo_ ^ std::rotl(fp.hi, 32));
    return fp;
}

namespace {

/** Canonical comparison key of a gate: (kind, qubits, params). */
bool
gateKeyLess(const ckt::Gate &a, const ckt::Gate &b)
{
    return std::tie(a.kind, a.qubits, a.params) <
           std::tie(b.kind, b.qubits, b.params);
}

void
mixGate(FingerprintBuilder &h, const ckt::Gate &g)
{
    h.mix(uint64_t(g.kind));
    h.mix(uint64_t(g.qubits.size()));
    for (int q : g.qubits)
        h.mix(q);
    h.mix(uint64_t(g.params.size()));
    for (double p : g.params)
        h.mix(p);
}

} // namespace

ckt::QuantumCircuit
canonicalGateOrder(const ckt::QuantumCircuit &circuit)
{
    // Repeatedly emit the schedulable gate with the smallest (kind,
    // qubits, params) key.  Two gates with equal keys address the
    // same qubits and therefore depend on each other, so they are
    // never schedulable together — the order is well defined and
    // depends only on the DAG.
    ckt::QuantumCircuit canonical(circuit.numQubits(),
                                  circuit.name());
    ckt::DagFrontier frontier(circuit);
    const std::vector<ckt::Gate> &gates = circuit.gates();
    while (!frontier.done()) {
        const std::vector<int> ready = frontier.schedulable();
        int best = ready.front();
        for (size_t i = 1; i < ready.size(); ++i)
            if (gateKeyLess(gates[size_t(ready[i])], gates[size_t(best)]))
                best = ready[i];
        canonical.add(gates[size_t(best)]);
        frontier.markScheduled(best);
    }
    return canonical;
}

Fingerprint
fingerprintOrderedCircuit(const ckt::QuantumCircuit &circuit)
{
    FingerprintBuilder h;
    h.mix(std::string_view("circuit"));
    h.mix(circuit.numQubits());
    // The display name rides along in serialized artifacts, so it is
    // part of the program's byte-for-byte identity and must key the
    // cache too.
    h.mix(std::string_view(circuit.name()));
    h.mix(uint64_t(circuit.size()));
    for (const ckt::Gate &g : circuit.gates())
        mixGate(h, g);
    return h.finish();
}

Fingerprint
fingerprintCircuit(const ckt::QuantumCircuit &circuit)
{
    return fingerprintOrderedCircuit(canonicalGateOrder(circuit));
}

Fingerprint
fingerprintCalibration(const dev::Calibration &calib)
{
    FingerprintBuilder h;
    h.mix(std::string_view("calibration"));
    // The id is provenance, not physics: it must NOT be mixed, so
    // relabelled-but-identical snapshots share cache entries.  The
    // epoch IS mixed: a recalibration is a distinct cache generation
    // even when it happens to reproduce the same numbers.
    h.mix(calib.epoch);
    h.mix(calib.num_qubits);
    h.mix(calib.coupling_mean);
    h.mix(calib.coupling_stddev);
    auto mixVector = [&h](const std::vector<double> &v) {
        h.mix(uint64_t(v.size()));
        for (double x : v)
            h.mix(x);
    };
    mixVector(calib.t1);
    mixVector(calib.t2);
    mixVector(calib.anharmonicity);
    mixVector(calib.zz);
    return h.finish();
}

Fingerprint
fingerprintDevice(const dev::Device &device)
{
    FingerprintBuilder h;
    h.mix(std::string_view("device"));
    const graph::Graph &g = device.graph();
    h.mix(g.numVertices());
    h.mix(g.numEdges());
    for (const graph::Edge &e : g.edges()) {
        h.mix(e.u);
        h.mix(e.v);
    }
    // The straight-line layout fixes the rotation-system embedding —
    // and with it the dual graph the suppression solver cuts — so it
    // is part of the device identity.
    for (const auto &[x, y] : device.topology().coords) {
        h.mix(x);
        h.mix(y);
    }
    h.mix(fingerprintCalibration(device.calibration()));
    return h.finish();
}

Fingerprint
fingerprintOptions(const core::CompileOptions &options)
{
    FingerprintBuilder h;
    h.mix(std::string_view("options"));
    h.mix(uint64_t(options.pulse));
    h.mix(uint64_t(options.sched));
    h.mix(options.zzx.suppression.alpha);
    h.mix(options.zzx.suppression.top_k);
    h.mix(options.zzx.nq_max);
    h.mix(options.zzx.nc_max);
    return h.finish();
}

Fingerprint
composeRequestFingerprint(const Fingerprint &circuit,
                          const Fingerprint &device,
                          const Fingerprint &options)
{
    FingerprintBuilder h;
    h.mix(std::string_view("request"));
    h.mix(circuit);
    h.mix(device);
    h.mix(options);
    return h.finish();
}

Fingerprint
fingerprintRequest(const ckt::QuantumCircuit &circuit,
                   const dev::Device &device,
                   const core::CompileOptions &options)
{
    return composeRequestFingerprint(fingerprintCircuit(circuit),
                                     fingerprintDevice(device),
                                     fingerprintOptions(options));
}

} // namespace qzz::svc
