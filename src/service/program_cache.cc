#include "service/program_cache.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <system_error>
#include <thread>

#include "common/error.h"
#include "service/artifact.h"
#include "service/artifact_gc.h"

namespace qzz::svc {

namespace {

/** Smallest power of two >= v (v >= 1). */
size_t
ceilPow2(size_t v)
{
    size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

std::filesystem::path
artifactPath(const std::string &dir, const Fingerprint &key)
{
    return std::filesystem::path(dir) / (key.hex() + ".qzzprog");
}

} // namespace

ProgramCache::ProgramCache(ProgramCacheConfig config)
    : config_(std::move(config))
{
    require(config_.capacity >= 1, "ProgramCache: capacity must be >= 1");
    require(config_.shards >= 1, "ProgramCache: shards must be >= 1");
    size_t n = ceilPow2(size_t(config_.shards));
    // Never more shards than capacity: each shard must be able to
    // hold at least one entry for the total bound to be meaningful.
    while (n > config_.capacity)
        n >>= 1;
    config_.shards = int(n);
    // Ceiling division: floor would silently under-provision (e.g.
    // capacity 10 over 8 shards evicting at 8 entries).  The
    // effective bound is n * ceil(capacity / n), i.e. never below
    // the configured capacity and at most shards - 1 above it.
    shard_capacity_ = (config_.capacity + n - 1) / n;
    shards_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        shards_.push_back(std::make_unique<Shard>());
    registry_ = config_.metrics
                    ? config_.metrics
                    : std::make_shared<tel::MetricsRegistry>();
    tel::MetricsRegistry &reg = *registry_;
    hits_ = &reg.counter("qzz_cache_hits_total",
                         "In-memory program-cache lookup hits.");
    misses_ = &reg.counter(
        "qzz_cache_misses_total",
        "Program-cache lookups answered by neither tier.");
    evictions_ = &reg.counter("qzz_cache_evictions_total",
                              "LRU entries dropped for capacity.");
    insertions_ = &reg.counter("qzz_cache_insertions_total",
                               "Successful insert() calls.");
    disk_hits_ = &reg.counter(
        "qzz_cache_disk_hits_total",
        "In-memory misses rescued by the artifact tier.");
    disk_writes_ = &reg.counter("qzz_cache_disk_writes_total",
                                "Artifacts persisted to the disk tier.");
    disk_bytes_written_ =
        &reg.counter("qzz_cache_disk_bytes_written_total",
                     "Cumulative artifact bytes persisted.");
    entries_gauge_ = &reg.gauge("qzz_cache_entries",
                                "Current in-memory entry count.");
    entry_bytes_gauge_ =
        &reg.gauge("qzz_cache_entry_bytes",
                   "Serialized bytes of the in-memory entries.");
}

ProgramCache::Shard &
ProgramCache::shardFor(const Fingerprint &key)
{
    // The fingerprint lanes are avalanche-mixed; the low bits of lo
    // are as good as any hash.
    return *shards_[size_t(key.lo) & (shards_.size() - 1)];
}

const ProgramCache::Shard &
ProgramCache::shardFor(const Fingerprint &key) const
{
    return *shards_[size_t(key.lo) & (shards_.size() - 1)];
}

bool
ProgramCache::contains(const Fingerprint &key) const
{
    const Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.map.find(key) != shard.map.end();
}

std::shared_ptr<const core::CompiledProgram>
ProgramCache::lookup(const Fingerprint &key)
{
    Shard &shard = shardFor(key);
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            hits_->inc();
            return it->second->program;
        }
    }
    uint64_t bytes = 0;
    if (auto program = loadArtifact(key, bytes)) {
        disk_hits_->inc();
        std::lock_guard<std::mutex> lock(shard.mu);
        insertLocked(shard, key, program, bytes);
        return program;
    }
    misses_->inc();
    return nullptr;
}

void
ProgramCache::insert(const Fingerprint &key,
                     std::shared_ptr<const core::CompiledProgram> program)
{
    require(program != nullptr, "ProgramCache::insert: null program");
    // Serialize exactly once: the string is both the entry's byte
    // accounting (the unit the manifest and GC bound use) and, when
    // the disk tier is on, the artifact payload itself.
    const std::string serialized = programArtifactString(*program);
    const uint64_t bytes = serialized.size();
    if (!config_.artifact_dir.empty())
        storeArtifact(key, serialized, program->calib_epoch);
    Shard &shard = shardFor(key);
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        insertLocked(shard, key, std::move(program), bytes);
    }
    insertions_->inc();
}

void
ProgramCache::insertLocked(
    Shard &shard, const Fingerprint &key,
    std::shared_ptr<const core::CompiledProgram> program, uint64_t bytes)
{
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        shard.bytes += bytes - it->second->bytes;
        it->second->program = std::move(program);
        it->second->bytes = bytes;
        return;
    }
    shard.lru.push_front(Entry{key, std::move(program), bytes});
    shard.map.emplace(key, shard.lru.begin());
    shard.bytes += bytes;
    while (shard.lru.size() > shard_capacity_) {
        shard.bytes -= shard.lru.back().bytes;
        shard.map.erase(shard.lru.back().key);
        shard.lru.pop_back();
        evictions_->inc();
    }
}

void
ProgramCache::clear()
{
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        shard->lru.clear();
        shard->map.clear();
        shard->bytes = 0;
    }
}

size_t
ProgramCache::sweepEpochsBelow(uint64_t min_epoch)
{
    size_t removed = 0;
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        for (auto it = shard->lru.begin(); it != shard->lru.end();) {
            if (it->program->calib_epoch < min_epoch) {
                shard->bytes -= it->bytes;
                shard->map.erase(it->key);
                it = shard->lru.erase(it);
                ++removed;
            } else {
                ++it;
            }
        }
    }
    return removed;
}

size_t
ProgramCache::size() const
{
    size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        total += shard->lru.size();
    }
    return total;
}

ProgramCacheStats
ProgramCache::stats() const
{
    ProgramCacheStats s;
    s.hits = hits_->value();
    s.misses = misses_->value();
    s.evictions = evictions_->value();
    s.insertions = insertions_->value();
    s.disk_hits = disk_hits_->value();
    s.disk_writes = disk_writes_->value();
    s.disk_bytes_written = disk_bytes_written_->value();
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        s.entries += shard->lru.size();
        s.entry_bytes += shard->bytes;
    }
    // Occupancy gauges refresh on this read path (stats() sits on
    // both the metrics verb and the scrape render).
    entries_gauge_->set(double(s.entries));
    entry_bytes_gauge_->set(double(s.entry_bytes));
    return s;
}

std::shared_ptr<const core::CompiledProgram>
ProgramCache::loadArtifact(const Fingerprint &key, uint64_t &bytes)
{
    if (config_.artifact_dir.empty())
        return nullptr;
    const auto path = artifactPath(config_.artifact_dir, key);
    std::ifstream in(path);
    if (!in)
        return nullptr; // includes a GC eviction racing this lookup
    // A corrupt artifact must read as a miss, never kill a serving
    // worker: beyond parse failures (nullopt), circuit reconstruction
    // can throw UserError on mangled gate payloads.
    try {
        std::optional<core::CompiledProgram> program =
            readProgramArtifact(in);
        if (!program)
            return nullptr; // torn/stale artifact: treat as a miss
        std::error_code ec;
        const auto size = std::filesystem::file_size(path, ec);
        bytes = ec ? 0 : uint64_t(size);
        // Touch the artifact so the GC's LRU-by-mtime order reflects
        // use; best effort (the file may already be evicted).
        std::filesystem::last_write_time(
            path, std::filesystem::file_time_type::clock::now(), ec);
        return std::make_shared<const core::CompiledProgram>(
            std::move(*program));
    } catch (const std::exception &) {
        return nullptr;
    }
}

void
ProgramCache::storeArtifact(const Fingerprint &key,
                            const std::string &serialized,
                            uint64_t calib_epoch)
{
    std::error_code ec;
    std::filesystem::create_directories(config_.artifact_dir, ec);
    if (ec)
        return; // the artifact tier is best-effort
    const auto final_path = artifactPath(config_.artifact_dir, key);
    if (std::filesystem::exists(final_path, ec))
        return; // artifacts are immutable: first writer wins
    // Write-private temp then rename, exactly like the pulse
    // calibration store: concurrent writers can never tear a file.
    static const unsigned process_tag = std::random_device{}();
    static std::atomic<unsigned> counter{0};
    const auto suffix =
        std::to_string(process_tag) + "." +
        std::to_string(
            std::hash<std::thread::id>{}(std::this_thread::get_id())) +
        "." + std::to_string(counter.fetch_add(1));
    const auto tmp = final_path.string() + ".tmp." + suffix;
    bool ok;
    {
        std::ofstream out(tmp);
        if (!out)
            return;
        out << serialized;
        out.flush();
        ok = out.good();
    }
    if (ok) {
        std::filesystem::rename(tmp, final_path, ec);
        if (!ec) {
            disk_writes_->inc();
            disk_bytes_written_->inc(serialized.size());
            // Record the artifact in the shared manifest (under the
            // directory's advisory lock), then let the GC enforce
            // the byte bound while the write is still hot.
            ManifestEntry entry;
            entry.fp = key;
            entry.bytes = serialized.size();
            entry.mtime_ms =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::system_clock::now().time_since_epoch())
                    .count();
            entry.calib_epoch = calib_epoch;
            appendManifestEntry(config_.artifact_dir, entry);
            if (config_.gc)
                config_.gc->maybeCollect();
        }
    }
    if (!ok || ec)
        std::filesystem::remove(tmp, ec);
}

} // namespace qzz::svc
