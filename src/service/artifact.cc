#include "service/artifact.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/pulse_opt.h"

namespace qzz::svc {

namespace {

/**
 * Ceiling on any element count read from an artifact.  Counts stream
 * in as size_t, so a corrupt field like "-1" parses to 2^64-1 and an
 * unchecked resize() would throw length_error (or worse, allocate);
 * real programs are nowhere near this bound.
 */
constexpr size_t kMaxCount = size_t(1) << 24;

bool
readCount(std::istream &is, size_t &out)
{
    return bool(is >> out) && out <= kMaxCount;
}

void
writeGate(std::ostream &os, const ckt::Gate &g)
{
    os << "g " << int(g.kind) << " " << g.qubits.size();
    for (int q : g.qubits)
        os << " " << q;
    os << " " << g.params.size();
    for (double p : g.params)
        os << " " << p;
}

/** Reads the tokens produced by writeGate() after its "g" tag. */
bool
readGate(std::istream &is, ckt::Gate &g)
{
    int kind = 0;
    size_t nq = 0, np = 0;
    if (!(is >> kind) || !readCount(is, nq))
        return false;
    g.kind = ckt::GateKind(kind);
    g.qubits.resize(nq);
    for (int &q : g.qubits)
        if (!(is >> q))
            return false;
    if (!readCount(is, np))
        return false;
    g.params.resize(np);
    for (double &p : g.params)
        if (!(is >> p))
            return false;
    return true;
}

bool
expectTag(std::istream &is, const char *tag)
{
    std::string tok;
    return (is >> tok) && tok == tag;
}

/** Length-prefixed string: "<len> <exactly len bytes>". */
void
writeString(std::ostream &os, const std::string &s)
{
    os << s.size() << " " << s;
}

bool
readString(std::istream &is, std::string &s)
{
    size_t len = 0;
    if (!readCount(is, len))
        return false;
    if (is.get() != ' ')
        return false;
    s.resize(len);
    is.read(s.data(), std::streamsize(len));
    return bool(is);
}

} // namespace

void
writeProgramArtifact(const core::CompiledProgram &program,
                     std::ostream &os)
{
    os.precision(17); // max_digits10: exact binary64 round-trip
    os << "qzzprog " << kArtifactVersion << "\n";
    os << "pulse_method " << core::pulseMethodName(program.pulse_method)
       << "\n";
    os << "sched_policy " << core::schedPolicyName(program.sched_policy)
       << "\n";
    os << "calib_epoch " << program.calib_epoch << "\n";

    const ckt::QuantumCircuit &native = program.native;
    os << "native " << native.numQubits() << " ";
    writeString(os, native.name());
    os << "\n" << native.size() << "\n";
    for (const ckt::Gate &g : native.gates()) {
        writeGate(os, g);
        os << "\n";
    }

    os << "layout " << program.final_layout.size();
    for (int v : program.final_layout)
        os << " " << v;
    os << "\n";

    const core::Schedule &sched = program.schedule;
    os << "schedule " << sched.num_qubits << " " << sched.layers.size()
       << "\n";
    for (const core::Layer &layer : sched.layers) {
        os << "layer " << int(layer.is_virtual) << " " << layer.duration
           << "\n";
        os << "side " << layer.side.size();
        for (int s : layer.side)
            os << " " << s;
        os << "\n";
        os << "metrics " << layer.metrics.nc << " " << layer.metrics.nq
           << " " << layer.metrics.unsuppressed_edge.size();
        for (char f : layer.metrics.unsuppressed_edge)
            os << " " << int(f);
        os << " " << layer.metrics.region_of.size();
        for (int r : layer.metrics.region_of)
            os << " " << r;
        os << "\n";
        os << "gates " << layer.gates.size() << "\n";
        for (const core::ScheduledGate &sg : layer.gates) {
            writeGate(os, sg.gate);
            os << " " << int(sg.supplemented) << "\n";
        }
    }
    os << "end\n";
}

std::string
programArtifactString(const core::CompiledProgram &program)
{
    std::ostringstream os;
    writeProgramArtifact(program, os);
    return os.str();
}

std::optional<core::CompiledProgram>
readProgramArtifact(std::istream &is, bool attach_library)
{
    int version = 0;
    if (!expectTag(is, "qzzprog") || !(is >> version) ||
        version != kArtifactVersion)
        return std::nullopt;

    std::string method_name, policy_name;
    if (!expectTag(is, "pulse_method") || !(is >> method_name))
        return std::nullopt;
    if (!expectTag(is, "sched_policy") || !(is >> policy_name))
        return std::nullopt;
    const auto method = core::pulseMethodFromName(method_name);
    const auto policy = core::schedPolicyFromName(policy_name);
    if (!method || !policy)
        return std::nullopt;

    uint64_t calib_epoch = 0;
    if (!expectTag(is, "calib_epoch") || !(is >> calib_epoch))
        return std::nullopt;

    core::CompiledProgram program;
    program.pulse_method = *method;
    program.sched_policy = *policy;
    program.calib_epoch = calib_epoch;

    int native_qubits = 0;
    std::string native_name;
    size_t num_gates = 0;
    if (!expectTag(is, "native") || !(is >> native_qubits) ||
        !readString(is, native_name) || !readCount(is, num_gates))
        return std::nullopt;
    program.native = ckt::QuantumCircuit(native_qubits, native_name);
    for (size_t i = 0; i < num_gates; ++i) {
        ckt::Gate g;
        if (!expectTag(is, "g") || !readGate(is, g))
            return std::nullopt;
        program.native.add(std::move(g));
    }

    size_t layout_size = 0;
    if (!expectTag(is, "layout") || !readCount(is, layout_size))
        return std::nullopt;
    program.final_layout.resize(layout_size);
    for (int &v : program.final_layout)
        if (!(is >> v))
            return std::nullopt;

    size_t num_layers = 0;
    if (!expectTag(is, "schedule") ||
        !(is >> program.schedule.num_qubits) ||
        !readCount(is, num_layers))
        return std::nullopt;
    program.schedule.layers.resize(num_layers);
    for (core::Layer &layer : program.schedule.layers) {
        int is_virtual = 0;
        if (!expectTag(is, "layer") || !(is >> is_virtual) ||
            !(is >> layer.duration))
            return std::nullopt;
        layer.is_virtual = is_virtual != 0;

        size_t side_size = 0;
        if (!expectTag(is, "side") || !readCount(is, side_size))
            return std::nullopt;
        layer.side.resize(side_size);
        for (int &s : layer.side)
            if (!(is >> s))
                return std::nullopt;

        size_t n_unsup = 0, n_region = 0;
        if (!expectTag(is, "metrics") || !(is >> layer.metrics.nc) ||
            !(is >> layer.metrics.nq) || !readCount(is, n_unsup))
            return std::nullopt;
        layer.metrics.unsuppressed_edge.resize(n_unsup);
        for (char &f : layer.metrics.unsuppressed_edge) {
            int v = 0;
            if (!(is >> v))
                return std::nullopt;
            f = char(v);
        }
        if (!readCount(is, n_region))
            return std::nullopt;
        layer.metrics.region_of.resize(n_region);
        for (int &r : layer.metrics.region_of)
            if (!(is >> r))
                return std::nullopt;

        size_t n_layer_gates = 0;
        if (!expectTag(is, "gates") || !readCount(is, n_layer_gates))
            return std::nullopt;
        layer.gates.resize(n_layer_gates);
        for (core::ScheduledGate &sg : layer.gates) {
            int supplemented = 0;
            if (!expectTag(is, "g") || !readGate(is, sg.gate) ||
                !(is >> supplemented))
                return std::nullopt;
            sg.supplemented = supplemented != 0;
        }
    }
    if (!expectTag(is, "end"))
        return std::nullopt;

    if (attach_library)
        program.library = core::getPulseLibraryShared(program.pulse_method);
    return program;
}

} // namespace qzz::svc
