#include "service/compile_service.h"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>

#include "common/error.h"

namespace qzz::svc {

// ---------------------------------------------------------------------------
// Task
// ---------------------------------------------------------------------------

namespace {

/** Lifecycle of a queued task (RequestHandle::Task::state). */
enum TaskState : int
{
    kQueued = 0,
    kClaimed = 1,
    kFinished = 2,
    kCancelRequested = 3,
};

} // namespace

struct RequestHandle::Task
{
    /** request.circuit is stored in canonical gate order (rewritten
     *  by submit()), so serve() compiles it directly. */
    CompileRequest request;
    Fingerprint fingerprint;
    /** Compiler-registry key (device x options sub-fingerprints),
     *  precomputed by submit() so serve() need not rehash. */
    Fingerprint compiler_key;
    uint64_t id = 0;
    /** FIFO tiebreak within a lane (equals the submit id). */
    uint64_t seq = 0;
    /** Admission hint: the fingerprint was cache-resident at
     *  submit time (see CompileService::Admission). */
    bool warm = false;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    std::chrono::steady_clock::time_point enqueued;
    std::promise<ServiceResult> promise;
    std::atomic<int> state{kQueued};
};

/** Followers parked on one in-flight cold compile. */
struct CompileService::Inflight
{
    std::vector<TaskPtr> followers;
};

/**
 * The cache-aware admission queue (guarded by CompileService::mu_).
 *
 * Per priority class (higher first) there are two lanes:
 *   - warm: requests whose fingerprint was cache-resident at submit
 *     time, FIFO.  Always served before the cold lane of the same
 *     class — a warm request only needs a cache read, so boosting it
 *     costs the cold work nothing measurable.
 *   - cold: requests grouped per compiler key (device x options), so
 *     consecutive cold compiles share one immutable core::Compiler's
 *     routing tables and pulse library.  The queue serves up to
 *     batch_limit requests from the sticky active group, then
 *     rotates to the group holding the oldest waiter, which bounds
 *     how long a group can be starved by a hot neighbour.
 *
 * With cache_aware off, every task lands in one cold group per
 * class, which degenerates to the classic strict FIFO per priority.
 */
class CompileService::Admission
{
  public:
    Admission(bool cache_aware, int batch_limit)
        : cache_aware_(cache_aware), batch_limit_(batch_limit)
    {
    }

    void
    push(const TaskPtr &task)
    {
        Class &cls = classes_[task->request.request.priority];
        if (cache_aware_ && task->warm) {
            cls.warm.push_back(task);
        } else {
            const Fingerprint key =
                cache_aware_ ? task->compiler_key : Fingerprint{};
            cls.cold[key].push_back(task);
        }
        ++total_;
    }

    /** Next task per the admission policy; requires !empty(). */
    TaskPtr
    pop()
    {
        auto cls_it = classes_.begin();
        Class &cls = cls_it->second;
        TaskPtr task;
        if (!cls.warm.empty()) {
            task = cls.warm.front();
            cls.warm.pop_front();
        } else {
            auto group = cls.cold.end();
            if (cls.has_active &&
                cls.served_in_batch < batch_limit_)
                group = cls.cold.find(cls.active_key);
            if (group == cls.cold.end()) {
                // Rotate to the group with the oldest waiting head.
                uint64_t oldest = ~uint64_t(0);
                for (auto it = cls.cold.begin(); it != cls.cold.end();
                     ++it) {
                    if (it->second.front()->seq < oldest) {
                        oldest = it->second.front()->seq;
                        group = it;
                    }
                }
                cls.active_key = group->first;
                cls.has_active = true;
                cls.served_in_batch = 0;
            }
            task = group->second.front();
            group->second.pop_front();
            ++cls.served_in_batch;
            if (group->second.empty()) {
                cls.cold.erase(group);
                cls.has_active = false;
            }
        }
        if (cls.warm.empty() && cls.cold.empty())
            classes_.erase(cls_it);
        --total_;
        return task;
    }

    bool empty() const { return total_ == 0; }
    size_t size() const { return total_; }

    /** Remove and return everything (shutdown without drain). */
    std::vector<TaskPtr>
    drainAll()
    {
        std::vector<TaskPtr> all;
        all.reserve(total_);
        for (auto &[priority, cls] : classes_) {
            all.insert(all.end(), cls.warm.begin(), cls.warm.end());
            for (auto &[key, group] : cls.cold)
                all.insert(all.end(), group.begin(), group.end());
        }
        classes_.clear();
        total_ = 0;
        return all;
    }

  private:
    struct Class
    {
        std::deque<TaskPtr> warm;
        std::unordered_map<Fingerprint, std::deque<TaskPtr>,
                           FingerprintHash>
            cold;
        Fingerprint active_key;
        bool has_active = false;
        int served_in_batch = 0;
    };

    bool cache_aware_;
    int batch_limit_;
    /** Highest priority first. */
    std::map<int, Class, std::greater<int>> classes_;
    size_t total_ = 0;
};

bool
RequestHandle::cancel()
{
    if (!task_)
        return false;
    int expected = kQueued;
    return task_->state.compare_exchange_strong(expected,
                                                kCancelRequested);
}

std::string
outcomeName(Outcome outcome)
{
    switch (outcome) {
    case Outcome::Compiled:
        return "Compiled";
    case Outcome::CacheHit:
        return "CacheHit";
    case Outcome::Coalesced:
        return "Coalesced";
    case Outcome::Failed:
        return "Failed";
    case Outcome::Cancelled:
        return "Cancelled";
    case Outcome::DeadlineExceeded:
        return "DeadlineExceeded";
    case Outcome::Rejected:
        return "Rejected";
    }
    return "Unknown";
}

// ---------------------------------------------------------------------------
// CompileService
// ---------------------------------------------------------------------------

CompileService::CompileService(CompileServiceConfig config)
    : config_(std::move(config)), cache_(config_.cache),
      start_(Clock::now()),
      queue_(std::make_unique<Admission>(config_.cache_aware_admission,
                                         config_.cold_batch_limit)),
      paused_(config_.start_paused)
{
    require(config_.latency_window >= 1,
            "CompileService: latency_window must be >= 1");
    require(config_.cold_batch_limit >= 1,
            "CompileService: cold_batch_limit must be >= 1");
    int n = config_.num_workers;
    if (n <= 0)
        n = std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(size_t(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

CompileService::~CompileService() { shutdown(true); }

RequestHandle
CompileService::submit(CompileRequest request)
{
    require(request.device != nullptr,
            "CompileService::submit: request has no device");

    RequestHandle handle;
    auto task = std::make_shared<RequestHandle::Task>();
    // Canonicalize once: the same gate order feeds the fingerprint
    // and (on a miss) the compile, so the sub-fingerprints computed
    // here are not rehashed on the worker.
    request.circuit = canonicalGateOrder(request.circuit);
    const Fingerprint circuit_fp =
        fingerprintOrderedCircuit(request.circuit);
    const Fingerprint device_fp = fingerprintDevice(*request.device);
    const Fingerprint options_fp = fingerprintOptions(request.options);
    task->fingerprint =
        composeRequestFingerprint(circuit_fp, device_fp, options_fp);
    FingerprintBuilder key;
    key.mix(std::string_view("compiler"));
    key.mix(device_fp);
    key.mix(options_fp);
    task->compiler_key = key.finish();
    task->request = std::move(request);
    task->enqueued = Clock::now();
    if (task->request.request.deadline)
        task->deadline = task->enqueued + *task->request.request.deadline;
    handle.task_ = task;
    handle.fingerprint_ = task->fingerprint;
    handle.future_ = task->promise.get_future();

    bool accepted = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (accepting_ && queue_->size() < config_.max_queue) {
            task->id = next_id_++;
            task->seq = task->id;
            handle.id_ = task->id;
            // The warm probe happens at admission time, under mu_, so
            // the lane choice is consistent with everything already
            // queued; a fingerprint evicted between here and serve()
            // just costs that one request a cold compile.
            task->warm = task->request.request.use_cache &&
                         config_.cache_aware_admission &&
                         cache_.contains(task->fingerprint);
            queue_->push(task);
            accepted = true;
        }
    }
    if (accepted) {
        submitted_.fetch_add(1, std::memory_order_relaxed);
        if (task->warm)
            warm_boosted_.fetch_add(1, std::memory_order_relaxed);
        work_cv_.notify_one();
    } else {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        ServiceResult result;
        result.outcome = Outcome::Rejected;
        result.fingerprint = task->fingerprint;
        result.seed = task->request.request.seed;
        task->state.store(kFinished);
        task->promise.set_value(std::move(result));
    }
    return handle;
}

std::vector<RequestHandle>
CompileService::submitBatch(std::vector<CompileRequest> requests)
{
    std::vector<RequestHandle> handles;
    handles.reserve(requests.size());
    for (CompileRequest &request : requests)
        handles.push_back(submit(std::move(request)));
    return handles;
}

void
CompileService::resume()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        paused_ = false;
    }
    work_cv_.notify_all();
}

void
CompileService::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock,
                  [this] { return queue_->empty() && in_flight_ == 0; });
}

void
CompileService::shutdown(bool drain_pending)
{
    std::vector<TaskPtr> dropped;
    {
        std::lock_guard<std::mutex> lock(mu_);
        accepting_ = false;
        paused_ = false;
        if (!drain_pending)
            dropped = queue_->drainAll();
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (const TaskPtr &task : dropped) {
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        ServiceResult result;
        result.outcome = Outcome::Cancelled;
        result.fingerprint = task->fingerprint;
        result.seed = task->request.request.seed;
        task->state.store(kFinished);
        task->promise.set_value(std::move(result));
    }
    for (std::thread &worker : workers_)
        if (worker.joinable())
            worker.join();
    idle_cv_.notify_all();
}

void
CompileService::workerLoop()
{
    for (;;) {
        TaskPtr task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [this] {
                return stopping_ || (!paused_ && !queue_->empty());
            });
            if (!paused_ && !queue_->empty()) {
                task = queue_->pop();
                ++in_flight_;
            } else if (stopping_) {
                return;
            } else {
                continue;
            }
        }
        serve(task);
        {
            std::lock_guard<std::mutex> lock(mu_);
            --in_flight_;
            if (queue_->empty() && in_flight_ == 0)
                idle_cv_.notify_all();
        }
    }
}

void
CompileService::serve(const TaskPtr &task)
{
    const auto picked_up = Clock::now();
    ServiceResult result;
    result.fingerprint = task->fingerprint;
    result.seed = task->request.request.seed;
    result.queue_ms = std::chrono::duration<double, std::milli>(
                          picked_up - task->enqueued)
                          .count();

    int expected = kQueued;
    if (!task->state.compare_exchange_strong(expected, kClaimed)) {
        // The only competing transition is a queued-side cancel().
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        result.outcome = Outcome::Cancelled;
        finish(task, std::move(result));
        return;
    }
    if (task->deadline && picked_up > *task->deadline) {
        expired_.fetch_add(1, std::memory_order_relaxed);
        result.outcome = Outcome::DeadlineExceeded;
        finish(task, std::move(result));
        return;
    }

    const CompileRequest &request = task->request;
    std::shared_ptr<Inflight> inflight;
    if (request.request.use_cache) {
        if (auto program = cache_.lookup(task->fingerprint)) {
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            completed_.fetch_add(1, std::memory_order_relaxed);
            result.outcome = Outcome::CacheHit;
            result.program = std::move(program);
            finish(task, std::move(result));
            return;
        }
        if (config_.coalesce) {
            std::lock_guard<std::mutex> lock(coalesce_mu_);
            auto it = inflight_.find(task->fingerprint);
            if (it != inflight_.end()) {
                // An identical compile is already in flight on
                // another worker: park on it.  The primary resolves
                // this task's promise when it publishes, and this
                // worker is immediately free for other requests.
                // Counted as coalesced, not as a cache miss — the
                // hit rate should reflect compiles actually run.
                it->second->followers.push_back(task);
                return;
            }
            // Primary election re-checks the cache under the registry
            // lock: a finishing primary inserts into the cache before
            // retiring its registry entry (also under this lock), so
            // "no entry and still a miss" proves no successful
            // duplicate compile finished in between — concurrent
            // identical submissions cold-compile at most once.
            if (auto program = cache_.lookup(task->fingerprint)) {
                cache_hits_.fetch_add(1, std::memory_order_relaxed);
                completed_.fetch_add(1, std::memory_order_relaxed);
                result.outcome = Outcome::CacheHit;
                result.program = std::move(program);
                finish(task, std::move(result));
                return;
            }
            inflight = std::make_shared<Inflight>();
            inflight_.emplace(task->fingerprint, inflight);
        }
        // Only an elected primary (or a cold compile with coalescing
        // off) is a real miss: it runs the compiler.
        cache_misses_.fetch_add(1, std::memory_order_relaxed);
    }

    // request.circuit is already in canonical gate order (submit()
    // rewrote it): routing and scheduling are list-order sensitive,
    // so compiling the canonical form is what makes every DAG-equal
    // submission of this fingerprint receive the same bit-identical
    // program, whether it compiles cold here or lands on the cache
    // entry a reordered twin wrote.
    const auto compile_start = Clock::now();
    core::CompileResult compiled;
    try {
        const std::shared_ptr<const core::Compiler> compiler =
            compilerFor(task);
        compiled = compiler->compile(request.circuit);
    } catch (const UserError &e) {
        // compile() maps exceptions to a status itself, but building
        // the Compiler (per-device tables: planar embedding,
        // all-pairs distances) can throw on a degenerate device —
        // that must fail this request, never escape the worker
        // thread and terminate the service.
        compiled.status.code = core::CompileStatusCode::InvalidInput;
        compiled.status.pass = "prepare";
        compiled.status.message = e.what();
    } catch (const std::exception &e) {
        compiled.status.code = core::CompileStatusCode::Internal;
        compiled.status.pass = "prepare";
        compiled.status.message = e.what();
    }
    result.compile_ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - compile_start)
                            .count();
    result.status = std::move(compiled.status);
    result.diagnostics = std::move(compiled.diagnostics);
    if (result.status.ok()) {
        auto program = std::make_shared<const core::CompiledProgram>(
            std::move(compiled.program));
        if (request.request.use_cache)
            cache_.insert(task->fingerprint, program);
        completed_.fetch_add(1, std::memory_order_relaxed);
        result.outcome = Outcome::Compiled;
        result.program = std::move(program);
    } else {
        failed_.fetch_add(1, std::memory_order_relaxed);
        result.outcome = Outcome::Failed;
    }
    if (inflight)
        resolveFollowers(inflight, result);
    finish(task, std::move(result));
}

void
CompileService::resolveFollowers(
    const std::shared_ptr<Inflight> &inflight,
    const ServiceResult &primary)
{
    std::vector<TaskPtr> followers;
    {
        // Retire the registry entry only now — after the successful
        // program has been inserted into the cache — so a racing
        // duplicate that finds no entry is guaranteed to find the
        // cache entry instead (see the primary-election comment in
        // serve()).  Followers stop accumulating once the entry is
        // gone.
        std::lock_guard<std::mutex> lock(coalesce_mu_);
        inflight_.erase(primary.fingerprint);
        followers.swap(inflight->followers);
    }
    for (const TaskPtr &follower : followers) {
        ServiceResult result;
        result.fingerprint = follower->fingerprint;
        result.seed = follower->request.request.seed;
        result.queue_ms = std::chrono::duration<double, std::milli>(
                              Clock::now() - follower->enqueued)
                              .count();
        result.status = primary.status;
        if (primary.program) {
            coalesced_.fetch_add(1, std::memory_order_relaxed);
            completed_.fetch_add(1, std::memory_order_relaxed);
            result.outcome = Outcome::Coalesced;
            result.program = primary.program;
        } else {
            failed_.fetch_add(1, std::memory_order_relaxed);
            result.outcome = Outcome::Failed;
        }
        finish(follower, std::move(result));
    }
}

std::shared_ptr<const core::Compiler>
CompileService::compilerFor(const TaskPtr &task)
{
    const CompileRequest &request = task->request;
    const Fingerprint &key = task->compiler_key;
    {
        std::lock_guard<std::mutex> lock(compilers_mu_);
        auto it = compilers_.find(key);
        if (it != compilers_.end())
            return it->second;
    }
    // Build outside the lock: ZzxDeviceTables (planar embedding,
    // all-pairs distances) are expensive, and holding the registry
    // mutex through a build would serialize workers on unrelated
    // devices.  Two workers racing on the same cold key build twice;
    // the first to publish wins and the duplicate is dropped —
    // wasted work, never wrong results.
    auto compiler = std::make_shared<const core::Compiler>(
        core::CompilerBuilder(*request.device)
            .options(request.options)
            .build());
    std::lock_guard<std::mutex> lock(compilers_mu_);
    auto [it, inserted] = compilers_.emplace(key, compiler);
    return inserted ? compiler : it->second;
}

void
CompileService::finish(const TaskPtr &task, ServiceResult result)
{
    if (result.outcome == Outcome::Compiled ||
        result.outcome == Outcome::CacheHit ||
        result.outcome == Outcome::Coalesced ||
        result.outcome == Outcome::Failed) {
        const double latency =
            std::chrono::duration<double, std::milli>(
                Clock::now() - task->enqueued)
                .count();
        recordLatency(latency);
    }
    result.completion_seq =
        completion_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    task->state.store(kFinished);
    task->promise.set_value(std::move(result));
}

void
CompileService::recordLatency(double ms)
{
    std::lock_guard<std::mutex> lock(latency_mu_);
    if (latency_window_.size() < config_.latency_window) {
        latency_window_.push_back(ms);
    } else {
        latency_window_[latency_next_] = ms;
        latency_next_ = (latency_next_ + 1) % config_.latency_window;
    }
}

namespace {

double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank = p * double(sorted.size() - 1);
    const size_t lo = size_t(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - double(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

} // namespace

MetricsSnapshot
CompileService::metrics() const
{
    MetricsSnapshot m;
    m.submitted = submitted_.load(std::memory_order_relaxed);
    m.completed = completed_.load(std::memory_order_relaxed);
    m.failed = failed_.load(std::memory_order_relaxed);
    m.cancelled = cancelled_.load(std::memory_order_relaxed);
    m.expired = expired_.load(std::memory_order_relaxed);
    m.rejected = rejected_.load(std::memory_order_relaxed);
    m.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    m.cache_misses = cache_misses_.load(std::memory_order_relaxed);
    m.coalesced = coalesced_.load(std::memory_order_relaxed);
    m.warm_boosted = warm_boosted_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mu_);
        m.queue_depth = queue_->size();
    }
    m.workers = int(workers_.size());
    m.uptime_ms = std::chrono::duration<double, std::milli>(
                      Clock::now() - start_)
                      .count();
    m.throughput_per_s = m.uptime_ms > 0.0
                             ? double(m.completed) * 1e3 / m.uptime_ms
                             : 0.0;
    {
        std::lock_guard<std::mutex> lock(latency_mu_);
        std::vector<double> sorted = latency_window_;
        std::sort(sorted.begin(), sorted.end());
        m.latency_p50_ms = percentile(sorted, 0.50);
        m.latency_p95_ms = percentile(sorted, 0.95);
        m.latency_p99_ms = percentile(sorted, 0.99);
    }
    const uint64_t looked_up = m.cache_hits + m.cache_misses;
    m.cache_hit_rate =
        looked_up == 0 ? 0.0 : double(m.cache_hits) / double(looked_up);
    m.cache_stats = cache_.stats();
    return m;
}

} // namespace qzz::svc
