#include "service/compile_service.h"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>

#include "common/error.h"

namespace qzz::svc {

// ---------------------------------------------------------------------------
// Task
// ---------------------------------------------------------------------------

namespace {

/** Lifecycle of a queued task (RequestHandle::Task::state). */
enum TaskState : int
{
    kQueued = 0,
    kClaimed = 1,
    kFinished = 2,
    kCancelRequested = 3,
};

} // namespace

struct RequestHandle::Task
{
    /** request.circuit is stored in canonical gate order (rewritten
     *  by submit()), so serve() compiles it directly. */
    CompileRequest request;
    Fingerprint fingerprint;
    /** Compiler-registry key (device x options sub-fingerprints),
     *  precomputed by submit() so serve() need not rehash. */
    Fingerprint compiler_key;
    uint64_t id = 0;
    /** FIFO tiebreak within a lane (equals the submit id). */
    uint64_t seq = 0;
    /** Admission hint: the fingerprint was cache-resident at
     *  submit time (see CompileService::Admission). */
    bool warm = false;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    std::chrono::steady_clock::time_point enqueued;
    /** Wall-clock enqueue time (ms since the unix epoch): the base
     *  every span start in this request's trace is laid out from. */
    double enqueued_unix_ms = 0.0;
    /** Root span id, minted at submit() when tracing is on (0 off). */
    uint64_t root_span_id = 0;
    std::promise<ServiceResult> promise;
    std::atomic<int> state{kQueued};
};

/** Followers parked on one in-flight cold compile. */
struct CompileService::Inflight
{
    std::vector<TaskPtr> followers;
};

/**
 * The cache-aware admission queue (guarded by CompileService::mu_).
 *
 * Per priority class (higher first) there are two lanes:
 *   - warm: requests whose fingerprint was cache-resident at submit
 *     time, FIFO.  Always served before the cold lane of the same
 *     class — a warm request only needs a cache read, so boosting it
 *     costs the cold work nothing measurable.
 *   - cold: requests grouped per compiler key (device x options), so
 *     consecutive cold compiles share one immutable core::Compiler's
 *     routing tables and pulse library.  The queue serves up to
 *     batch_limit requests from the sticky active group, then
 *     rotates to the group holding the oldest waiter, which bounds
 *     how long a group can be starved by a hot neighbour.
 *
 * With cache_aware off, every task lands in one cold group per
 * class, which degenerates to the classic strict FIFO per priority.
 */
class CompileService::Admission
{
  public:
    Admission(bool cache_aware, int batch_limit)
        : cache_aware_(cache_aware), batch_limit_(batch_limit)
    {
    }

    void
    push(const TaskPtr &task)
    {
        Class &cls = classes_[task->request.request.priority];
        if (cache_aware_ && task->warm) {
            cls.warm.push_back(task);
        } else {
            const Fingerprint key =
                cache_aware_ ? task->compiler_key : Fingerprint{};
            cls.cold[key].push_back(task);
        }
        ++total_;
    }

    /** Next task per the admission policy; requires !empty(). */
    TaskPtr
    pop()
    {
        auto cls_it = classes_.begin();
        Class &cls = cls_it->second;
        TaskPtr task;
        if (!cls.warm.empty()) {
            task = cls.warm.front();
            cls.warm.pop_front();
        } else {
            auto group = cls.cold.end();
            if (cls.has_active &&
                cls.served_in_batch < batch_limit_)
                group = cls.cold.find(cls.active_key);
            if (group == cls.cold.end()) {
                // Rotate to the group with the oldest waiting head.
                uint64_t oldest = ~uint64_t(0);
                for (auto it = cls.cold.begin(); it != cls.cold.end();
                     ++it) {
                    if (it->second.front()->seq < oldest) {
                        oldest = it->second.front()->seq;
                        group = it;
                    }
                }
                cls.active_key = group->first;
                cls.has_active = true;
                cls.served_in_batch = 0;
            }
            task = group->second.front();
            group->second.pop_front();
            ++cls.served_in_batch;
            if (group->second.empty()) {
                cls.cold.erase(group);
                cls.has_active = false;
            }
        }
        if (cls.warm.empty() && cls.cold.empty())
            classes_.erase(cls_it);
        --total_;
        return task;
    }

    bool empty() const { return total_ == 0; }
    size_t size() const { return total_; }

    /** Remove and return everything (shutdown without drain). */
    std::vector<TaskPtr>
    drainAll()
    {
        std::vector<TaskPtr> all;
        all.reserve(total_);
        for (auto &[priority, cls] : classes_) {
            all.insert(all.end(), cls.warm.begin(), cls.warm.end());
            for (auto &[key, group] : cls.cold)
                all.insert(all.end(), group.begin(), group.end());
        }
        classes_.clear();
        total_ = 0;
        return all;
    }

  private:
    struct Class
    {
        std::deque<TaskPtr> warm;
        std::unordered_map<Fingerprint, std::deque<TaskPtr>,
                           FingerprintHash>
            cold;
        Fingerprint active_key;
        bool has_active = false;
        int served_in_batch = 0;
    };

    bool cache_aware_;
    int batch_limit_;
    /** Highest priority first. */
    std::map<int, Class, std::greater<int>> classes_;
    size_t total_ = 0;
};

bool
RequestHandle::cancel()
{
    if (!task_)
        return false;
    int expected = kQueued;
    return task_->state.compare_exchange_strong(expected,
                                                kCancelRequested);
}

std::string
outcomeName(Outcome outcome)
{
    switch (outcome) {
    case Outcome::Compiled:
        return "Compiled";
    case Outcome::CacheHit:
        return "CacheHit";
    case Outcome::Coalesced:
        return "Coalesced";
    case Outcome::Failed:
        return "Failed";
    case Outcome::Cancelled:
        return "Cancelled";
    case Outcome::DeadlineExceeded:
        return "DeadlineExceeded";
    case Outcome::Rejected:
        return "Rejected";
    }
    return "Unknown";
}

// ---------------------------------------------------------------------------
// CompileService
// ---------------------------------------------------------------------------

namespace {

/** The service's cache always reports into the service's registry
 *  unless the caller wired its own. */
ProgramCacheConfig
cacheConfigWithRegistry(ProgramCacheConfig config,
                        std::shared_ptr<tel::MetricsRegistry> registry)
{
    if (!config.metrics)
        config.metrics = std::move(registry);
    return config;
}

/** Latency-style buckets: 10us first bound, doubling, top finite
 *  bound ~5.6 minutes — wide enough for any sane compile. */
tel::HistogramBuckets
latencyBuckets()
{
    return tel::HistogramBuckets::logarithmic(0.01, 2.0, 26);
}

double
unixNowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

} // namespace

CompileService::CompileService(CompileServiceConfig config)
    : config_(std::move(config)),
      registry_(config_.metrics
                    ? config_.metrics
                    : std::make_shared<tel::MetricsRegistry>()),
      cache_(cacheConfigWithRegistry(config_.cache, registry_)),
      start_(Clock::now()),
      queue_(std::make_unique<Admission>(config_.cache_aware_admission,
                                         config_.cold_batch_limit)),
      paused_(config_.start_paused)
{
    require(config_.latency_window >= 1,
            "CompileService: latency_window must be >= 1");
    require(config_.cold_batch_limit >= 1,
            "CompileService: cold_batch_limit must be >= 1");
    tel::MetricsRegistry &reg = *registry_;
    submitted_ = &reg.counter("qzz_service_requests_submitted_total",
                              "Requests accepted by submit().");
    completed_ = &reg.counter(
        "qzz_service_requests_completed_total",
        "Requests resolved with a program (Compiled, CacheHit or "
        "Coalesced).");
    failed_ = &reg.counter("qzz_service_requests_failed_total",
                           "Requests whose compile reported an error.");
    cancelled_ = &reg.counter("qzz_service_requests_cancelled_total",
                              "Requests cancelled while queued.");
    expired_ = &reg.counter(
        "qzz_service_requests_expired_total",
        "Requests whose deadline passed before a worker got to them.");
    rejected_ = &reg.counter(
        "qzz_service_requests_rejected_total",
        "Submissions refused (queue full or shutting down).");
    cache_hits_ = &reg.counter(
        "qzz_service_cache_probe_hits_total",
        "Request-path cache probes answered by either cache tier.");
    cache_misses_ = &reg.counter(
        "qzz_service_cache_probe_misses_total",
        "Request-path cache probes that led to a cold compile.");
    coalesced_ = &reg.counter(
        "qzz_service_requests_coalesced_total",
        "Requests that rode an identical in-flight compilation.");
    warm_boosted_ = &reg.counter(
        "qzz_service_requests_warm_boosted_total",
        "Requests admitted to the warm lane (cache-resident at "
        "submit).");
    latency_hist_ = &reg.histogram(
        "qzz_service_request_latency_ms",
        "End-to-end request latency (submit to resolve), ms.",
        latencyBuckets());
    queue_hist_ = &reg.histogram(
        "qzz_service_queue_wait_ms",
        "Time a request waited in the admission queue, ms.",
        latencyBuckets());
    compile_hist_ = &reg.histogram(
        "qzz_service_compile_ms",
        "Wall time of cold compiles actually run, ms.",
        latencyBuckets());
    queue_depth_gauge_ = &reg.gauge("qzz_service_queue_depth",
                                    "Requests currently queued.");
    workers_gauge_ =
        &reg.gauge("qzz_service_workers", "Worker thread count.");
    uptime_gauge_ = &reg.gauge("qzz_service_uptime_ms",
                               "Service uptime, ms.");
    int n = config_.num_workers;
    if (n <= 0)
        n = std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(size_t(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    workers_gauge_->set(double(n));
}

CompileService::~CompileService() { shutdown(true); }

RequestHandle
CompileService::submit(CompileRequest request)
{
    require(request.device != nullptr,
            "CompileService::submit: request has no device");

    RequestHandle handle;
    auto task = std::make_shared<RequestHandle::Task>();
    // Canonicalize once: the same gate order feeds the fingerprint
    // and (on a miss) the compile, so the sub-fingerprints computed
    // here are not rehashed on the worker.
    request.circuit = canonicalGateOrder(request.circuit);
    const Fingerprint circuit_fp =
        fingerprintOrderedCircuit(request.circuit);
    const Fingerprint device_fp = fingerprintDevice(*request.device);
    const Fingerprint options_fp = fingerprintOptions(request.options);
    task->fingerprint =
        composeRequestFingerprint(circuit_fp, device_fp, options_fp);
    FingerprintBuilder key;
    key.mix(std::string_view("compiler"));
    key.mix(device_fp);
    key.mix(options_fp);
    task->compiler_key = key.finish();
    task->request = std::move(request);
    task->enqueued = Clock::now();
    task->enqueued_unix_ms = unixNowMs();
    if (config_.trace) {
        if (task->request.request.trace_id.empty())
            task->request.request.trace_id = TraceLog::mintTraceId();
        task->root_span_id = TraceLog::mintSpanId();
    }
    if (task->request.request.deadline)
        task->deadline = task->enqueued + *task->request.request.deadline;
    handle.task_ = task;
    handle.fingerprint_ = task->fingerprint;
    handle.future_ = task->promise.get_future();

    bool accepted = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (accepting_ && queue_->size() < config_.max_queue) {
            task->id = next_id_++;
            task->seq = task->id;
            handle.id_ = task->id;
            // The warm probe happens at admission time, under mu_, so
            // the lane choice is consistent with everything already
            // queued; a fingerprint evicted between here and serve()
            // just costs that one request a cold compile.
            task->warm = task->request.request.use_cache &&
                         config_.cache_aware_admission &&
                         cache_.contains(task->fingerprint);
            queue_->push(task);
            accepted = true;
        }
    }
    if (accepted) {
        submitted_->inc();
        if (task->warm)
            warm_boosted_->inc();
        work_cv_.notify_one();
    } else {
        rejected_->inc();
        ServiceResult result;
        result.outcome = Outcome::Rejected;
        result.fingerprint = task->fingerprint;
        result.seed = task->request.request.seed;
        result.trace_id = task->request.request.trace_id;
        task->state.store(kFinished);
        task->promise.set_value(std::move(result));
    }
    return handle;
}

std::vector<RequestHandle>
CompileService::submitBatch(std::vector<CompileRequest> requests)
{
    std::vector<RequestHandle> handles;
    handles.reserve(requests.size());
    for (CompileRequest &request : requests)
        handles.push_back(submit(std::move(request)));
    return handles;
}

void
CompileService::resume()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        paused_ = false;
    }
    work_cv_.notify_all();
}

void
CompileService::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock,
                  [this] { return queue_->empty() && in_flight_ == 0; });
}

void
CompileService::shutdown(bool drain_pending)
{
    std::vector<TaskPtr> dropped;
    {
        std::lock_guard<std::mutex> lock(mu_);
        accepting_ = false;
        paused_ = false;
        if (!drain_pending)
            dropped = queue_->drainAll();
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (const TaskPtr &task : dropped) {
        cancelled_->inc();
        ServiceResult result;
        result.outcome = Outcome::Cancelled;
        result.fingerprint = task->fingerprint;
        result.seed = task->request.request.seed;
        result.trace_id = task->request.request.trace_id;
        task->state.store(kFinished);
        task->promise.set_value(std::move(result));
    }
    for (std::thread &worker : workers_)
        if (worker.joinable())
            worker.join();
    idle_cv_.notify_all();
}

void
CompileService::workerLoop()
{
    for (;;) {
        TaskPtr task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [this] {
                return stopping_ || (!paused_ && !queue_->empty());
            });
            if (!paused_ && !queue_->empty()) {
                task = queue_->pop();
                ++in_flight_;
            } else if (stopping_) {
                return;
            } else {
                continue;
            }
        }
        serve(task);
        {
            std::lock_guard<std::mutex> lock(mu_);
            --in_flight_;
            if (queue_->empty() && in_flight_ == 0)
                idle_cv_.notify_all();
        }
    }
}

void
CompileService::serve(const TaskPtr &task)
{
    const auto picked_up = Clock::now();
    ServiceResult result;
    result.fingerprint = task->fingerprint;
    result.seed = task->request.request.seed;
    result.queue_ms = std::chrono::duration<double, std::milli>(
                          picked_up - task->enqueued)
                          .count();

    int expected = kQueued;
    if (!task->state.compare_exchange_strong(expected, kClaimed)) {
        // The only competing transition is a queued-side cancel().
        cancelled_->inc();
        result.outcome = Outcome::Cancelled;
        finish(task, std::move(result));
        return;
    }
    if (task->deadline && picked_up > *task->deadline) {
        expired_->inc();
        result.outcome = Outcome::DeadlineExceeded;
        finish(task, std::move(result));
        return;
    }

    const CompileRequest &request = task->request;
    // Probe time accumulates across both lookups (the plain one and
    // the re-check under the coalesce lock) into one span.
    const auto timedLookup = [this, &task, &result] {
        const auto probe_start = Clock::now();
        auto program = cache_.lookup(task->fingerprint);
        result.cache_probe_ms +=
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      probe_start)
                .count();
        return program;
    };
    std::shared_ptr<Inflight> inflight;
    if (request.request.use_cache) {
        if (auto program = timedLookup()) {
            cache_hits_->inc();
            completed_->inc();
            result.outcome = Outcome::CacheHit;
            result.program = std::move(program);
            finish(task, std::move(result));
            return;
        }
        if (config_.coalesce) {
            std::lock_guard<std::mutex> lock(coalesce_mu_);
            auto it = inflight_.find(task->fingerprint);
            if (it != inflight_.end()) {
                // An identical compile is already in flight on
                // another worker: park on it.  The primary resolves
                // this task's promise when it publishes, and this
                // worker is immediately free for other requests.
                // Counted as coalesced, not as a cache miss — the
                // hit rate should reflect compiles actually run.
                it->second->followers.push_back(task);
                return;
            }
            // Primary election re-checks the cache under the registry
            // lock: a finishing primary inserts into the cache before
            // retiring its registry entry (also under this lock), so
            // "no entry and still a miss" proves no successful
            // duplicate compile finished in between — concurrent
            // identical submissions cold-compile at most once.
            if (auto program = timedLookup()) {
                cache_hits_->inc();
                completed_->inc();
                result.outcome = Outcome::CacheHit;
                result.program = std::move(program);
                finish(task, std::move(result));
                return;
            }
            inflight = std::make_shared<Inflight>();
            inflight_.emplace(task->fingerprint, inflight);
        }
        // Only an elected primary (or a cold compile with coalescing
        // off) is a real miss: it runs the compiler.
        cache_misses_->inc();
    }

    // request.circuit is already in canonical gate order (submit()
    // rewrote it): routing and scheduling are list-order sensitive,
    // so compiling the canonical form is what makes every DAG-equal
    // submission of this fingerprint receive the same bit-identical
    // program, whether it compiles cold here or lands on the cache
    // entry a reordered twin wrote.
    const auto compile_start = Clock::now();
    core::CompileResult compiled;
    try {
        const std::shared_ptr<const core::Compiler> compiler =
            compilerFor(task);
        compiled = compiler->compile(request.circuit);
    } catch (const UserError &e) {
        // compile() maps exceptions to a status itself, but building
        // the Compiler (per-device tables: planar embedding,
        // all-pairs distances) can throw on a degenerate device —
        // that must fail this request, never escape the worker
        // thread and terminate the service.
        compiled.status.code = core::CompileStatusCode::InvalidInput;
        compiled.status.pass = "prepare";
        compiled.status.message = e.what();
    } catch (const std::exception &e) {
        compiled.status.code = core::CompileStatusCode::Internal;
        compiled.status.pass = "prepare";
        compiled.status.message = e.what();
    }
    result.compile_ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - compile_start)
                            .count();
    result.status = std::move(compiled.status);
    result.diagnostics = std::move(compiled.diagnostics);
    if (result.status.ok()) {
        auto program = std::make_shared<const core::CompiledProgram>(
            std::move(compiled.program));
        if (request.request.use_cache) {
            const auto write_start = Clock::now();
            cache_.insert(task->fingerprint, program);
            result.artifact_write_ms =
                std::chrono::duration<double, std::milli>(Clock::now() -
                                                          write_start)
                    .count();
        }
        completed_->inc();
        result.outcome = Outcome::Compiled;
        result.program = std::move(program);
    } else {
        failed_->inc();
        result.outcome = Outcome::Failed;
    }
    if (inflight)
        resolveFollowers(inflight, result);
    finish(task, std::move(result));
}

void
CompileService::resolveFollowers(
    const std::shared_ptr<Inflight> &inflight,
    const ServiceResult &primary)
{
    std::vector<TaskPtr> followers;
    {
        // Retire the registry entry only now — after the successful
        // program has been inserted into the cache — so a racing
        // duplicate that finds no entry is guaranteed to find the
        // cache entry instead (see the primary-election comment in
        // serve()).  Followers stop accumulating once the entry is
        // gone.
        std::lock_guard<std::mutex> lock(coalesce_mu_);
        inflight_.erase(primary.fingerprint);
        followers.swap(inflight->followers);
    }
    for (const TaskPtr &follower : followers) {
        ServiceResult result;
        result.fingerprint = follower->fingerprint;
        result.seed = follower->request.request.seed;
        result.queue_ms = std::chrono::duration<double, std::milli>(
                              Clock::now() - follower->enqueued)
                              .count();
        result.status = primary.status;
        if (primary.program) {
            coalesced_->inc();
            completed_->inc();
            result.outcome = Outcome::Coalesced;
            result.program = primary.program;
        } else {
            failed_->inc();
            result.outcome = Outcome::Failed;
        }
        finish(follower, std::move(result));
    }
}

std::shared_ptr<const core::Compiler>
CompileService::compilerFor(const TaskPtr &task)
{
    const CompileRequest &request = task->request;
    const Fingerprint &key = task->compiler_key;
    {
        std::lock_guard<std::mutex> lock(compilers_mu_);
        auto it = compilers_.find(key);
        if (it != compilers_.end())
            return it->second;
    }
    // Build outside the lock: ZzxDeviceTables (planar embedding,
    // all-pairs distances) are expensive, and holding the registry
    // mutex through a build would serialize workers on unrelated
    // devices.  Two workers racing on the same cold key build twice;
    // the first to publish wins and the duplicate is dropped —
    // wasted work, never wrong results.
    auto compiler = std::make_shared<const core::Compiler>(
        core::CompilerBuilder(*request.device)
            .options(request.options)
            .build());
    std::lock_guard<std::mutex> lock(compilers_mu_);
    auto [it, inserted] = compilers_.emplace(key, compiler);
    return inserted ? compiler : it->second;
}

void
CompileService::finish(const TaskPtr &task, ServiceResult result)
{
    const double latency = std::chrono::duration<double, std::milli>(
                               Clock::now() - task->enqueued)
                               .count();
    if (result.outcome == Outcome::Compiled ||
        result.outcome == Outcome::CacheHit ||
        result.outcome == Outcome::Coalesced ||
        result.outcome == Outcome::Failed) {
        latency_hist_->observe(latency);
        queue_hist_->observe(result.queue_ms);
        if (result.outcome == Outcome::Compiled ||
            result.outcome == Outcome::Failed)
            compile_hist_->observe(result.compile_ms);
    }
    result.completion_seq =
        completion_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    result.trace_id = task->request.request.trace_id;
    result.root_span_id = task->root_span_id;
    emitTrace(task, result, latency);
    task->state.store(kFinished);
    task->promise.set_value(std::move(result));
}

void
CompileService::emitTrace(const TaskPtr &task,
                          const ServiceResult &result, double latency_ms)
{
    TraceLog *trace = config_.trace.get();
    if (!trace || task->root_span_id == 0)
        return;
    // Span starts are laid out sequentially from the wall-clock
    // enqueue time: queue wait, then the cache probe, then the
    // compile (whose pass children carry their measured offsets),
    // then the artifact write.  Every duration is measured; only the
    // start offsets are reconstructed.
    const double base = task->enqueued_unix_ms;
    const std::string &tid = task->request.request.trace_id;
    std::vector<TraceSpan> spans;

    TraceSpan root;
    root.trace_id = tid;
    root.span_id = task->root_span_id;
    root.name = "request";
    root.start_unix_ms = base;
    root.duration_ms = latency_ms;
    root.attrs.emplace_back("outcome", outcomeName(result.outcome));
    root.attrs.emplace_back("fingerprint", result.fingerprint.hex());
    spans.push_back(std::move(root));

    const auto child = [&](const std::string &name, double start_off,
                           double dur) {
        TraceSpan span;
        span.trace_id = tid;
        span.span_id = TraceLog::mintSpanId();
        span.parent_id = task->root_span_id;
        span.name = name;
        span.start_unix_ms = base + start_off;
        span.duration_ms = dur;
        return span;
    };

    spans.push_back(child("queue_wait", 0.0, result.queue_ms));
    double offset = result.queue_ms;
    if (result.cache_probe_ms > 0.0) {
        spans.push_back(
            child("cache_probe", offset, result.cache_probe_ms));
        offset += result.cache_probe_ms;
    }
    if (result.outcome == Outcome::Compiled ||
        result.outcome == Outcome::Failed) {
        TraceSpan compile = child("compile", offset, result.compile_ms);
        const uint64_t compile_id = compile.span_id;
        const double compile_start = compile.start_unix_ms;
        spans.push_back(std::move(compile));
        for (const core::StageDiagnostics &stage :
             result.diagnostics.stages) {
            TraceSpan pass;
            pass.trace_id = tid;
            pass.span_id = TraceLog::mintSpanId();
            pass.parent_id = compile_id;
            pass.name = stage.stage;
            pass.start_unix_ms = compile_start + stage.start_ms;
            pass.duration_ms = stage.wall_ms;
            spans.push_back(std::move(pass));
        }
        offset += result.compile_ms;
    }
    if (result.artifact_write_ms > 0.0)
        spans.push_back(
            child("artifact_write", offset, result.artifact_write_ms));
    trace->emitTree(spans);
}

MetricsSnapshot
CompileService::metrics() const
{
    MetricsSnapshot m;
    m.submitted = submitted_->value();
    m.completed = completed_->value();
    m.failed = failed_->value();
    m.cancelled = cancelled_->value();
    m.expired = expired_->value();
    m.rejected = rejected_->value();
    m.cache_hits = cache_hits_->value();
    m.cache_misses = cache_misses_->value();
    m.coalesced = coalesced_->value();
    m.warm_boosted = warm_boosted_->value();
    {
        std::lock_guard<std::mutex> lock(mu_);
        m.queue_depth = queue_->size();
    }
    m.workers = int(workers_.size());
    m.uptime_ms = std::chrono::duration<double, std::milli>(
                      Clock::now() - start_)
                      .count();
    m.throughput_per_s = m.uptime_ms > 0.0
                             ? double(m.completed) * 1e3 / m.uptime_ms
                             : 0.0;
    // One histogram snapshot feeds all three percentiles, so they are
    // mutually consistent (p50 <= p95 <= p99 by construction) and
    // weight the full completion history instead of a lossy
    // recent-sample ring.
    const tel::HistogramSnapshot latency = latency_hist_->snapshot();
    m.latency_p50_ms = latency.quantile(0.50);
    m.latency_p95_ms = latency.quantile(0.95);
    m.latency_p99_ms = latency.quantile(0.99);
    const uint64_t looked_up = m.cache_hits + m.cache_misses;
    m.cache_hit_rate =
        looked_up == 0 ? 0.0 : double(m.cache_hits) / double(looked_up);
    m.cache_stats = cache_.stats();
    // Refresh the scrape-side gauges on the same read path, so a
    // GET /metrics render (which calls this first) exports current
    // values without its own locking discipline.
    queue_depth_gauge_->set(double(m.queue_depth));
    uptime_gauge_->set(m.uptime_ms);
    return m;
}

} // namespace qzz::svc
