#include "service/calibration_hub.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "service/artifact_gc.h"
#include "service/jsonl.h"
#include "service/program_cache.h"

namespace qzz::svc {

namespace fs = std::filesystem;

namespace {

int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

/** File mtime as milliseconds since the Unix epoch; 0 on error
 *  (portable file_clock -> system_clock rebase, as in artifact_gc). */
int64_t
fileMtimeMs(const fs::path &path)
{
    std::error_code ec;
    const auto ftime = fs::last_write_time(path, ec);
    if (ec)
        return 0;
    const auto sys = std::chrono::system_clock::now() +
                     std::chrono::duration_cast<
                         std::chrono::system_clock::duration>(
                         ftime - fs::file_time_type::clock::now());
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               sys.time_since_epoch())
        .count();
}

/** Strictly parse a positive decimal integer bounded by @p max. */
bool
parseCount(std::string_view s, int max, int &out)
{
    if (s.empty() || s.size() > 9)
        return false;
    long v = 0;
    for (const char c : s) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + (c - '0');
    }
    if (v < 1 || v > max)
        return false;
    out = int(v);
    return true;
}

/** Parse "RxC" with both dimensions in [1, max]. */
bool
parseDims(std::string_view s, int max, int &rows, int &cols)
{
    const size_t x = s.find('x');
    if (x == std::string_view::npos)
        return false;
    return parseCount(s.substr(0, x), max, rows) &&
           parseCount(s.substr(x + 1), max, cols);
}

} // namespace

std::optional<graph::Topology>
topologyFromName(const std::string &name)
{
    // Bound the dimensions well below anything the serving path
    // accepts (256 qubits), so a hostile watch-file name cannot ask
    // for a giant topology allocation.
    constexpr int kMaxDim = 4096;
    const std::string_view sv(name);
    try {
        int r = 0, c = 0, n = 0;
        if (sv.starts_with("grid-") &&
            parseDims(sv.substr(5), kMaxDim, r, c))
            return graph::gridTopology(r, c);
        if (sv.starts_with("trigrid-") &&
            parseDims(sv.substr(8), kMaxDim, r, c))
            return graph::triangulatedGridTopology(r, c);
        if (sv.starts_with("heavyhex-") &&
            parseDims(sv.substr(9), kMaxDim, r, c))
            return graph::heavyHexTopology(r, c);
        if (sv.starts_with("line-") &&
            parseCount(sv.substr(5), kMaxDim, n))
            return graph::lineTopology(n);
        if (sv.starts_with("ring-") &&
            parseCount(sv.substr(5), kMaxDim, n))
            return graph::ringTopology(n);
    } catch (const std::exception &) {
        // A factory rejecting its dimensions is a malformed name.
    }
    return std::nullopt;
}

// ---------------------------------------------------------------------------
// CalibrationHub
// ---------------------------------------------------------------------------

CalibrationHub::CalibrationHub(CalibrationHubConfig config,
                               ProgramCache *cache, ArtifactGc *gc)
    : config_(std::move(config)), cache_(cache), gc_(gc),
      registry_(config_.metrics
                    ? config_.metrics
                    : std::make_shared<tel::MetricsRegistry>())
{
    tel::MetricsRegistry &reg = *registry_;
    epochs_applied_ = &reg.counter("qzz_calib_epochs_applied_total",
                                   "Calibration pushes applied.");
    updates_rejected_ =
        &reg.counter("qzz_calib_updates_rejected_total",
                     "Calibration pushes rejected (validation or "
                     "stale epoch).");
    entries_invalidated_ =
        &reg.counter("qzz_calib_entries_invalidated_total",
                     "In-memory cache entries swept by rolls.");
    watch_loads_ = &reg.counter(
        "qzz_calib_watch_loads_total",
        "Watch-directory snapshots successfully applied.");
    watch_errors_ =
        &reg.counter("qzz_calib_watch_errors_total",
                     "Watch-directory files that failed to load.");
}

CalibrationHub::~CalibrationHub() { stopWatch(); }

std::string
CalibrationHub::deviceKey(const std::string &topology_name,
                          uint64_t device_seed)
{
    return topology_name + "#" + std::to_string(device_seed);
}

CalibrationUpdate
CalibrationHub::reject(CalibrationUpdate update, std::string why)
{
    update.applied = false;
    update.error = std::move(why);
    updates_rejected_->inc();
    return update;
}

CalibrationUpdate
CalibrationHub::apply(graph::Topology topo, uint64_t device_seed,
                      dev::Calibration calib, const std::string &source)
{
    CalibrationUpdate update;
    update.device_key = deviceKey(topo.name, device_seed);
    update.epoch = calib.epoch;

    try {
        calib.validateFor(topo);
    } catch (const std::exception &e) {
        return reject(std::move(update), e.what());
    }

    // Epochs are strictly monotonic per device: the implicit boot
    // generation is epoch 0, so the first push must carry >= 1.
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = live_.find(update.device_key);
        const uint64_t current =
            it == live_.end() ? 0 : it->second.epoch;
        if (calib.epoch <= current) {
            updates_rejected_->inc();
            update.error = "stale epoch " +
                           std::to_string(calib.epoch) + " (live is " +
                           std::to_string(current) + ")";
            return update;
        }
    }

    const std::string calib_id = calib.id;
    std::shared_ptr<const dev::Device> device;
    try {
        device = std::make_shared<const dev::Device>(std::move(topo),
                                                     std::move(calib));
    } catch (const std::exception &e) {
        return reject(std::move(update), e.what());
    }

    uint64_t sweep_below = 0;
    {
        // Re-check monotonicity under the lock: a racing apply() for
        // the same key may have landed a newer epoch while the device
        // was being built.
        std::lock_guard<std::mutex> lock(mu_);
        Generation &gen = live_[update.device_key];
        if (update.epoch <= gen.epoch) {
            updates_rejected_->inc();
            update.error = "stale epoch " +
                           std::to_string(update.epoch) + " (live is " +
                           std::to_string(gen.epoch) + ")";
            return update;
        }
        gen.device = std::move(device);
        gen.epoch = update.epoch;
        max_applied_epoch_ = std::max(max_applied_epoch_, update.epoch);
        epochs_applied_->inc();
        if (config_.keep_epochs > 0 &&
            max_applied_epoch_ >= uint64_t(config_.keep_epochs))
            sweep_below =
                max_applied_epoch_ - uint64_t(config_.keep_epochs) + 1;
    }
    update.applied = true;

    // Invalidation fan-out happens outside the hub lock: the sweep
    // takes per-shard cache mutexes and a GC pass does file IO.
    if (cache_ && sweep_below > 0) {
        update.entries_invalidated =
            cache_->sweepEpochsBelow(sweep_below);
        entries_invalidated_->inc(update.entries_invalidated);
    }
    if (gc_) {
        const ArtifactGcStats s = gc_->run();
        update.gc_evicted = s.evicted;
        update.gc_evicted_epoch = s.evicted_epoch;
    }

    notify(update, calib_id, source);
    return update;
}

void
CalibrationHub::notify(const CalibrationUpdate &update,
                       const std::string &id, const std::string &source)
{
    std::ostringstream os;
    os << "{\"event\":\"calib_epoch\",\"device\":\""
       << jsonEscape(update.device_key)
       << "\",\"epoch\":" << update.epoch << ",\"calib_id\":\""
       << jsonEscape(id)
       << "\",\"entries_invalidated\":" << update.entries_invalidated
       << ",\"source\":\"" << jsonEscape(source) << "\"}\n";
    const std::string line = os.str();
    std::lock_guard<std::mutex> lock(subs_mu_);
    for (auto &[token, sink] : subscribers_)
        sink(line);
}

std::shared_ptr<const dev::Device>
CalibrationHub::liveDevice(const std::string &topology_name,
                           uint64_t device_seed) const
{
    const std::string key = deviceKey(topology_name, device_seed);
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = live_.find(key);
    return it == live_.end() ? nullptr : it->second.device;
}

uint64_t
CalibrationHub::currentEpoch(const std::string &device_key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = live_.find(device_key);
    return it == live_.end() ? 0 : it->second.epoch;
}

uint64_t
CalibrationHub::subscribe(EventSink sink)
{
    std::lock_guard<std::mutex> lock(subs_mu_);
    const uint64_t token = next_token_++;
    subscribers_.emplace(token, std::move(sink));
    return token;
}

void
CalibrationHub::unsubscribe(uint64_t token)
{
    std::lock_guard<std::mutex> lock(subs_mu_);
    subscribers_.erase(token);
}

size_t
CalibrationHub::subscriberCount() const
{
    std::lock_guard<std::mutex> lock(subs_mu_);
    return subscribers_.size();
}

CalibrationHubStats
CalibrationHub::stats() const
{
    CalibrationHubStats s;
    s.epochs_applied = epochs_applied_->value();
    s.updates_rejected = updates_rejected_->value();
    s.entries_invalidated = entries_invalidated_->value();
    s.watch_loads = watch_loads_->value();
    s.watch_errors = watch_errors_->value();
    std::lock_guard<std::mutex> lock(mu_);
    s.last_watch_latency_ms = last_watch_latency_ms_;
    s.current.reserve(live_.size());
    for (const auto &[key, gen] : live_)
        s.current.emplace_back(key, gen.epoch);
    return s;
}

// ---------------------------------------------------------------------------
// Watch directory
// ---------------------------------------------------------------------------

void
CalibrationHub::startWatch()
{
    if (config_.watch_dir.empty() || watcher_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(watch_mu_);
        watch_stop_ = false;
    }
    watcher_ = std::thread([this] { watchLoop(); });
}

void
CalibrationHub::stopWatch()
{
    {
        std::lock_guard<std::mutex> lock(watch_mu_);
        watch_stop_ = true;
    }
    watch_cv_.notify_all();
    if (watcher_.joinable())
        watcher_.join();
}

void
CalibrationHub::watchLoop()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(watch_mu_);
            watch_cv_.wait_for(lock, config_.watch_interval,
                               [this] { return watch_stop_; });
            if (watch_stop_)
                return;
        }
        pollWatchDir();
    }
}

size_t
CalibrationHub::pollWatchDir()
{
    if (config_.watch_dir.empty())
        return 0;
    std::error_code ec;
    fs::directory_iterator it(config_.watch_dir, ec);
    if (ec)
        return 0;

    // Deterministic processing order so a burst of dropped files
    // applies in a stable sequence.
    std::vector<fs::path> paths;
    for (const auto &entry : it) {
        if (entry.path().extension() == ".qzzcalib")
            paths.push_back(entry.path());
    }
    std::sort(paths.begin(), paths.end());

    size_t applied = 0;
    for (const fs::path &path : paths) {
        const int64_t mtime_ms = fileMtimeMs(path);
        const uint64_t size = uint64_t(fs::file_size(path, ec));
        const auto sig = std::make_pair(mtime_ms, ec ? 0 : size);
        {
            // Mark the version processed up front: a file that fails
            // to load or is rejected is not retried until it changes.
            std::lock_guard<std::mutex> lock(mu_);
            auto seen = watch_seen_.find(path.string());
            if (seen != watch_seen_.end() && seen->second == sig)
                continue;
            watch_seen_[path.string()] = sig;
        }

        // "<topology-name>@<device_seed>.qzzcalib"
        const std::string stem = path.stem().string();
        const size_t at = stem.rfind('@');
        std::optional<graph::Topology> topo;
        uint64_t device_seed = 0;
        if (at != std::string::npos && at + 1 < stem.size()) {
            const std::string seed_str = stem.substr(at + 1);
            char *end = nullptr;
            device_seed = std::strtoull(seed_str.c_str(), &end, 10);
            if (end == seed_str.c_str() + seed_str.size())
                topo = topologyFromName(stem.substr(0, at));
        }
        if (!topo) {
            watch_errors_->inc();
            continue;
        }

        std::string error;
        auto calib = dev::loadCalibrationFile(path.string(), &error);
        if (!calib) {
            watch_errors_->inc();
            continue;
        }

        const CalibrationUpdate update =
            apply(std::move(*topo), device_seed, std::move(*calib),
                  "watch:" + path.filename().string());
        if (update.applied) {
            ++applied;
            watch_loads_->inc();
            std::lock_guard<std::mutex> lock(mu_);
            last_watch_latency_ms_ =
                double(std::max<int64_t>(0, nowMs() - mtime_ms));
        }
        // A rejected update (stale epoch, bad snapshot) is already
        // counted in updates_rejected; it is not a watch IO error.
    }
    return applied;
}

} // namespace qzz::svc
