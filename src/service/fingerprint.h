/**
 * @file
 * Compilation-request fingerprinting.
 *
 * A Fingerprint is a stable 128-bit content hash identifying one
 * compilation job: the circuit (as a DAG — invariant under gate-list
 * reorderings that preserve per-qubit order), the device (topology,
 * layout coordinates, per-edge ZZ couplings, coherence and transmon
 * parameters), and the compile options (PulseMethod, SchedPolicy,
 * ZZXSched knobs).  Two requests with equal fingerprints compile to
 * bit-identical CompiledPrograms, which is what makes the fingerprint
 * a sound cache key for the service layer (service/program_cache.h).
 *
 * The hash is content-addressed and versioned: it depends only on the
 * mixed words, never on pointer values, iteration order of hash maps,
 * or platform endianness of the mixing arithmetic (all math is on
 * explicit uint64_t lanes).  Bumping kFingerprintVersion invalidates
 * every persisted artifact at once, mirroring the "v4_" prefix of the
 * pulse calibration store.
 */

#ifndef QZZ_SERVICE_FINGERPRINT_H
#define QZZ_SERVICE_FINGERPRINT_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "circuit/circuit.h"
#include "core/framework.h"
#include "device/device.h"

namespace qzz::svc {

/** Bumped whenever the fingerprinted content or mixing changes.
 *  v2: the device hash covers the full per-qubit calibration
 *  snapshot (per-qubit T1/T2/anharmonicity, per-edge ZZ, epoch)
 *  instead of one uniform DeviceParams tuple. */
inline constexpr uint64_t kFingerprintVersion = 2;

/** A 128-bit content hash. */
struct Fingerprint
{
    uint64_t hi = 0;
    uint64_t lo = 0;

    bool operator==(const Fingerprint &) const = default;

    /** Lowercase 32-digit hex form, e.g. for artifact file names. */
    std::string hex() const;

    /** Inverse of hex(): exactly 32 lowercase hex digits, else
     *  nullopt (used to parse artifact file names and manifest
     *  lines back into keys). */
    static std::optional<Fingerprint> fromHex(std::string_view hex);
};

/** Hasher for unordered containers keyed by Fingerprint. */
struct FingerprintHash
{
    size_t
    operator()(const Fingerprint &fp) const
    {
        // The lanes are already avalanche-mixed; fold them.
        return size_t(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ULL));
    }
};

/**
 * Incremental 128-bit hasher with collision-resistant (non-
 * cryptographic) mixing: every absorbed word is diffused through a
 * SplitMix64-style finalizer and folded into two cross-coupled
 * lanes, so single-bit input differences avalanche across the whole
 * state.  Word count is part of the state, making concatenation
 * ambiguities ("ab" + "c" vs "a" + "bc") distinct.
 */
class FingerprintBuilder
{
  public:
    FingerprintBuilder();

    FingerprintBuilder &mix(uint64_t word);
    FingerprintBuilder &mix(int v) { return mix(uint64_t(int64_t(v))); }
    /** Bit-pattern of @p v, with -0.0 canonicalized to 0.0. */
    FingerprintBuilder &mix(double v);
    /** Length-prefixed bytes of @p s. */
    FingerprintBuilder &mix(std::string_view s);
    /** Fold a sub-fingerprint in (for hierarchical composition). */
    FingerprintBuilder &mix(const Fingerprint &fp);

    /** Finalize (the builder may keep absorbing afterwards). */
    Fingerprint finish() const;

  private:
    uint64_t hi_;
    uint64_t lo_;
    uint64_t count_ = 0;
};

/**
 * Rewrite a circuit into its canonical topological gate order: at
 * every step the schedulable gate with the smallest (kind, qubits,
 * params) key is emitted first.  Gates with equal keys address the
 * same qubits and therefore depend on each other, so the order is
 * well defined and depends only on the DAG — every gate-list
 * ordering that preserves per-qubit program order canonicalizes to
 * the same circuit (register size and name are preserved).
 *
 * The compile service compiles this canonical form: routing and
 * scheduling consume gates in list order, so canonicalizing first is
 * what makes "equal fingerprint => bit-identical CompiledProgram"
 * hold across reordered submissions, not just resubmitted ones.
 */
ckt::QuantumCircuit canonicalGateOrder(const ckt::QuantumCircuit &circuit);

/**
 * Fingerprint of a circuit *as a DAG*: gates are absorbed in the
 * canonicalGateOrder() sequence (plus the register size and name),
 * so any reordering of the gate list that preserves the per-qubit
 * program order hashes identically, while any swap of two dependent
 * gates changes the hash.
 */
Fingerprint fingerprintCircuit(const ckt::QuantumCircuit &circuit);

/**
 * Hash a circuit's gates exactly in list order (no canonicalization
 * pass).  For any circuit c,
 *   fingerprintCircuit(c) == fingerprintOrderedCircuit(canonicalGateOrder(c)),
 * so callers that already hold the canonical form (the compile
 * service canonicalizes once per request) can skip the extra
 * frontier walk.
 */
Fingerprint fingerprintOrderedCircuit(const ckt::QuantumCircuit &circuit);

/**
 * Fingerprint of a device: vertex/edge structure, straight-line
 * coordinates (they fix the planar embedding and hence the
 * suppression solver's cut space), and the full calibration snapshot
 * — per-edge ZZ couplings, per-qubit T1/T2/anharmonicity vectors,
 * the sampling moments, and the snapshot epoch.  The snapshot id is
 * deliberately excluded: it is a provenance label, and the
 * fingerprint must change iff a physical field or the epoch changes,
 * so equal recalibrations relabelled differently still share cached
 * programs while every real drift (or a new epoch over identical
 * numbers) gets its own cache entry.
 */
Fingerprint fingerprintDevice(const dev::Device &device);

/** The calibration component of fingerprintDevice() on its own (no
 *  topology): epoch, sampling moments, per-qubit vectors, per-edge
 *  ZZ.  Excludes Calibration::id (see fingerprintDevice()). */
Fingerprint fingerprintCalibration(const dev::Calibration &calib);

/** Fingerprint of the compile configuration (pulse, sched, zzx). */
Fingerprint fingerprintOptions(const core::CompileOptions &options);

/** The cache key: circuit x device x options (plus the version). */
Fingerprint fingerprintRequest(const ckt::QuantumCircuit &circuit,
                               const dev::Device &device,
                               const core::CompileOptions &options);

/** Compose a request fingerprint from its already-computed parts
 *  (identical to fingerprintRequest(); lets callers that need the
 *  sub-fingerprints anyway avoid hashing the inputs twice). */
Fingerprint composeRequestFingerprint(const Fingerprint &circuit,
                                      const Fingerprint &device,
                                      const Fingerprint &options);

} // namespace qzz::svc

#endif // QZZ_SERVICE_FINGERPRINT_H
