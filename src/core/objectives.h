/**
 * @file
 * The ZZ-suppressing pulse-optimization objectives (Secs. 4, 7.1.1).
 *
 * Two loss families over a candidate pulse:
 *
 *  OptCtrl: L = sum_lambda [1 - F_avg(U(T), target (x) I)]
 *               + w [1 - F_avg(U_ctrl(T), target)]
 *    — quantum optimal control on observed fidelity, averaged over a
 *      range of crosstalk strengths.
 *
 *  Pert:    L = |U1_xtalk(T)| / T + w [1 - F_avg(U_ctrl(T), target)]
 *    — the paper's new objective: drive the first-order Dyson term of
 *      the crosstalk to zero.  For a single-qubit gate the first-order
 *      term is M = int U_ctrl^dag sz U_ctrl dt (neighbor independent);
 *      for a two-qubit gate both M_a (sz x I) and M_b (I x sz) must
 *      vanish, evaluated in the interaction picture of
 *      H_ctrl + lambda_ab H_intra (the U~2 frame).
 */

#ifndef QZZ_CORE_OBJECTIVES_H
#define QZZ_CORE_OBJECTIVES_H

#include <vector>

#include "core/regions.h"

namespace qzz::core {

/** Shared objective configuration. */
struct ObjectiveConfig
{
    /** Weight w of the gate-implementation term. */
    double weight = 10.0;
    /** Integrator step during optimization (ns). */
    double dt = 0.02;
    /** Crosstalk strengths averaged by OptCtrl (rad/ns). */
    std::vector<double> lambda_samples;
    /** Nominal intra-pair ZZ strength for two-qubit gates (rad/ns). */
    double lambda_intra = 0.0;
};

/** Pert loss for a single-qubit pulse against @p target. */
double pertLossOneQubit(const pulse::PulseProgram &p,
                        const la::CMatrix &target,
                        const ObjectiveConfig &cfg);

/** Pert loss for a two-qubit pulse against @p target (= Rzx(pi/2)). */
double pertLossTwoQubit(const pulse::PulseProgram &p,
                        const la::CMatrix &target,
                        const ObjectiveConfig &cfg);

/** OptCtrl loss for a single-qubit pulse. */
double optCtrlLossOneQubit(const pulse::PulseProgram &p,
                           const la::CMatrix &target,
                           const ObjectiveConfig &cfg);

/** OptCtrl loss for a two-qubit pulse. */
double optCtrlLossTwoQubit(const pulse::PulseProgram &p,
                           const la::CMatrix &target,
                           const ObjectiveConfig &cfg);

/**
 * Norm of the first-order crosstalk term(s) of a pulse, normalized by
 * duration.  Diagnostic used by tests and the perturbative-scaling
 * property checks.
 */
double firstOrderCrosstalkNorm(const pulse::PulseProgram &p,
                               double lambda_intra, double dt = 0.02);

} // namespace qzz::core

#endif // QZZ_CORE_OBJECTIVES_H
