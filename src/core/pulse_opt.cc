#include "core/pulse_opt.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <sstream>
#include <thread>

#include "circuit/gate.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/units.h"
#include "core/dcg.h"

namespace qzz::core {

using la::CMatrix;
using pulse::FourierWaveform;
using pulse::PulseGate;
using pulse::PulseProgram;

std::string
pulseMethodName(PulseMethod m)
{
    switch (m) {
    case PulseMethod::Gaussian:
        return "Gaussian";
    case PulseMethod::OptCtrl:
        return "OptCtrl";
    case PulseMethod::Pert:
        return "Pert";
    case PulseMethod::DCG:
        return "DCG";
    }
    return "?";
}

std::optional<PulseMethod>
pulseMethodFromName(std::string_view name)
{
    for (PulseMethod m :
         {PulseMethod::Gaussian, PulseMethod::OptCtrl,
          PulseMethod::Pert, PulseMethod::DCG}) {
        if (iequalsAscii(name, pulseMethodName(m)))
            return m;
    }
    if (iequalsAscii(name, "Gau")) // exp::configName() abbreviation
        return PulseMethod::Gaussian;
    return std::nullopt;
}

const std::vector<std::string> &
pulseMethodNames()
{
    static const std::vector<std::string> names = {
        pulseMethodName(PulseMethod::Gaussian),
        pulseMethodName(PulseMethod::OptCtrl),
        pulseMethodName(PulseMethod::Pert),
        pulseMethodName(PulseMethod::DCG)};
    return names;
}

namespace {

/** Target unitary of a native pulse gate. */
CMatrix
targetMatrix(PulseGate gate)
{
    switch (gate) {
    case PulseGate::SX:
        return ckt::gateMatrix({ckt::GateKind::SX, {0}});
    case PulseGate::Identity:
        // I = Rx(2 pi) = -I2; average gate fidelity ignores the phase.
        return la::identity2();
    case PulseGate::RZX:
        return ckt::gateMatrix({ckt::GateKind::RZX, {0, 1}, {kPi / 2.0}});
    }
    panic("targetMatrix: unknown gate");
}

int
channelsFor(PulseGate gate)
{
    return gate == PulseGate::RZX ? 5 : 2;
}

/** Unpack a flat parameter vector into a pulse program. */
PulseProgram
buildProgram(PulseGate gate, const std::vector<double> &params,
             int harmonics, double t_gate)
{
    const int nch = channelsFor(gate);
    ensure(int(params.size()) == nch * harmonics,
           "buildProgram: parameter count mismatch");
    auto wf = [&](int ch) -> pulse::WaveformPtr {
        std::vector<double> coeffs(
            params.begin() + ch * harmonics,
            params.begin() + (ch + 1) * harmonics);
        return std::make_shared<FourierWaveform>(std::move(coeffs),
                                                 t_gate);
    };
    if (gate == PulseGate::RZX) {
        return PulseProgram::twoQubit(wf(0), wf(1), wf(2), wf(3), wf(4));
    }
    return PulseProgram::singleQubit(wf(0), wf(1));
}

/** Initial parameters implementing the bare gate, plus jitter. */
std::vector<double>
initialParams(PulseGate gate, int harmonics, double t_gate, Rng &rng,
              bool jitter_main)
{
    const int nch = channelsFor(gate);
    std::vector<double> p(size_t(nch) * size_t(harmonics), 0.0);
    // The Fourier area is (T/2) * sum(A_j); rotation angle = 2 * area.
    const double unit = kPi / (2.0 * t_gate); // area pi/4 on A_1
    switch (gate) {
    case PulseGate::SX:
        p[0] = 2.0 * unit; // theta = pi/2
        break;
    case PulseGate::Identity:
        p[0] = 8.0 * unit; // theta = 2 pi
        break;
    case PulseGate::RZX:
        // Coupling channel carries the pi/4 ZX area; an initial pi
        // rotation on the control echoes its spectators (echoed
        // cross-resonance), giving the optimizer a good basin.
        p[size_t(4) * size_t(harmonics)] = 2.0 * unit; // ZX area pi/4
        p[0] = 4.0 * unit;                             // X_a area pi
        break;
    }
    const double amp = 0.15 * unit * (jitter_main ? 4.0 : 1.0);
    for (auto &v : p)
        v += rng.uniform(-amp, amp);
    return p;
}

/** The calibration-store directory (may not exist yet). */
std::filesystem::path
cacheDir()
{
    if (const char *env = std::getenv("QZZ_PULSE_CACHE"))
        return std::filesystem::path(env);
#ifdef QZZ_DEFAULT_CACHE_DIR
    return std::filesystem::path(QZZ_DEFAULT_CACHE_DIR);
#else
    return std::filesystem::path("qzz_pulse_cache");
#endif
}

std::string
cacheKey(PulseMethod method, PulseGate gate, const PulseOptConfig &cfg)
{
    std::ostringstream ss;
    ss << "v4_" << pulseMethodName(method) << "_";
    switch (gate) {
    case PulseGate::SX:
        ss << "sx";
        break;
    case PulseGate::Identity:
        ss << "id";
        break;
    case PulseGate::RZX:
        ss << "rzx";
        break;
    }
    ss << "_h" << cfg.harmonics << "_T" << int(cfg.t_gate * 100);
    return ss.str();
}

bool
loadCoeffsFrom(const std::filesystem::path &dir, const std::string &key,
               int nch, int harmonics,
               std::vector<std::vector<double>> &out)
{
    std::ifstream in(dir / (key + ".txt"));
    if (!in)
        return false;
    out.assign(size_t(nch), std::vector<double>(size_t(harmonics), 0.0));
    for (auto &ch : out)
        for (auto &v : ch)
            if (!(in >> v))
                return false;
    return true;
}

bool
loadCoeffs(const std::string &key, int nch, int harmonics,
           std::vector<std::vector<double>> &out)
{
    if (loadCoeffsFrom(cacheDir(), key, nch, harmonics, out))
        return true;
#ifdef QZZ_SEED_CACHE_DIR
    // Factory calibration committed with the repository: spares cold
    // builds the multi-minute Adam optimization for the default keys.
    return loadCoeffsFrom(std::filesystem::path(QZZ_SEED_CACHE_DIR), key,
                          nch, harmonics, out);
#else
    return false;
#endif
}

void
storeCoeffs(const std::string &key,
            const std::vector<std::vector<double>> &coeffs)
{
    std::error_code ec;
    std::filesystem::create_directories(cacheDir(), ec);
    if (ec)
        return; // cache is best-effort
    // Write to a writer-private temp file and rename into place so
    // concurrent writers (ctest -j runs many optimizing processes at
    // once) can never leave a torn file behind.  The suffix combines
    // a per-process random tag, the thread id, and a counter so no
    // two writers ever share a temp path.
    static const unsigned process_tag = std::random_device{}();
    static std::atomic<unsigned> store_counter{0};
    const auto suffix =
        std::to_string(process_tag) + "." +
        std::to_string(
            std::hash<std::thread::id>{}(std::this_thread::get_id())) +
        "." + std::to_string(store_counter.fetch_add(1));
    const auto tmp = cacheDir() / (key + ".tmp." + suffix);
    bool ok;
    {
        std::ofstream out(tmp);
        if (!out)
            return;
        out.precision(17);
        for (const auto &ch : coeffs) {
            for (double v : ch)
                out << v << " ";
            out << "\n";
        }
        out.flush();
        ok = out.good();
    }
    if (ok)
        std::filesystem::rename(tmp, cacheDir() / (key + ".txt"), ec);
    if (!ok || ec)
        std::filesystem::remove(tmp, ec);
}

} // namespace

PulseOptConfig
defaultPulseOptConfig(PulseMethod method, PulseGate gate)
{
    PulseOptConfig cfg;
    cfg.objective.weight = 10.0;
    cfg.objective.lambda_intra = khz(200);
    // The echo-like suppressing basin sits far from the weak-drive
    // initialization; a hot-ish cosine-decayed schedule reaches it.
    cfg.adam.lr = 0.02;
    cfg.adam.lr_final = 0.002;
    cfg.adam.max_iters = 800;
    if (method == PulseMethod::OptCtrl)
        cfg.objective.lambda_samples = {mhz(0.25), mhz(0.75), mhz(1.5)};
    if (gate == PulseGate::RZX) {
        cfg.objective.dt = 0.05;
        cfg.adam.max_iters = 500;
        if (method == PulseMethod::OptCtrl) {
            cfg.objective.lambda_samples = {mhz(0.3), mhz(1.0)};
            cfg.adam.max_iters = 350;
        }
        cfg.restarts = 1;
    } else {
        cfg.objective.dt = 0.02;
        cfg.restarts = 2;
    }
    return cfg;
}

PulseOptConfig
defaultPulseOptConfig(PulseMethod method, PulseGate gate,
                      const dev::Device &device)
{
    PulseOptConfig cfg = defaultPulseOptConfig(method, gate);
    const double mean_zz = device.calibration().meanZz();
    if (mean_zz <= 0.0)
        return cfg; // edgeless device: keep the nominal strengths
    // The stock defaults assume the paper's nominal 200 kHz coupling;
    // rescale the objective's ZZ strengths to the calibrated mean.
    const double scale = mean_zz / khz(200);
    cfg.objective.lambda_intra = mean_zz;
    for (double &lambda : cfg.objective.lambda_samples)
        lambda *= scale;
    return cfg;
}

PulseProgram
programFromCoeffs(const std::vector<std::vector<double>> &coeffs,
                  double t_gate)
{
    require(coeffs.size() == 2 || coeffs.size() == 5,
            "programFromCoeffs: expected 2 or 5 channels");
    std::vector<double> flat;
    for (const auto &ch : coeffs)
        flat.insert(flat.end(), ch.begin(), ch.end());
    const int harmonics = int(coeffs[0].size());
    const PulseGate gate =
        coeffs.size() == 5 ? PulseGate::RZX : PulseGate::SX;
    return buildProgram(gate, flat, harmonics, t_gate);
}

OptimizedPulse
optimizePulse(PulseMethod method, PulseGate gate,
              const PulseOptConfig &cfg)
{
    require(method == PulseMethod::OptCtrl || method == PulseMethod::Pert,
            "optimizePulse: only OptCtrl and Pert are optimized");
    const CMatrix target = targetMatrix(gate);
    const bool two_q = gate == PulseGate::RZX;

    // Band-limiting regularizer shared by the main and polish losses.
    const double unit = kPi / (2.0 * cfg.t_gate);
    auto smoothness = [&](const std::vector<double> &params) {
        double reg = 0.0;
        for (size_t i = 0; i < params.size(); ++i) {
            const double j = double(i % size_t(cfg.harmonics));
            const double a = params[i] / unit;
            reg += j * j * a * a;
        }
        return cfg.smoothness_weight * reg;
    };

    LossFn loss = [&](const std::vector<double> &params) {
        PulseProgram p =
            buildProgram(gate, params, cfg.harmonics, cfg.t_gate);
        if (method == PulseMethod::Pert) {
            return smoothness(params) +
                   (two_q ? pertLossTwoQubit(p, target, cfg.objective)
                          : pertLossOneQubit(p, target, cfg.objective));
        }
        return smoothness(params) +
               (two_q ? optCtrlLossTwoQubit(p, target, cfg.objective)
                      : optCtrlLossOneQubit(p, target, cfg.objective));
    };

    Rng rng(cfg.seed);
    OptimizeResult best;
    best.loss = std::numeric_limits<double>::infinity();
    for (int r = 0; r < std::max(1, cfg.restarts); ++r) {
        Rng child = rng.split();
        std::vector<double> init;
        if (r == 0 && !cfg.warm_start.empty()) {
            require(int(cfg.warm_start.size()) ==
                        channelsFor(gate) * cfg.harmonics,
                    "optimizePulse: warm start has the wrong size");
            init = cfg.warm_start;
        } else {
            init = initialParams(gate, cfg.harmonics, cfg.t_gate,
                                 child, r > 0);
        }
        OptimizeResult res = minimizeAdam(loss, std::move(init), cfg.adam);
        if (res.loss < best.loss)
            best = std::move(res);
    }

    if (cfg.polish_iters > 0) {
        // Low-rate polish with a stiffer gate-implementation term.
        PulseOptConfig pcfg = cfg;
        pcfg.objective.weight *= cfg.polish_weight_gain;
        LossFn polish_loss = [&](const std::vector<double> &params) {
            PulseProgram p =
                buildProgram(gate, params, cfg.harmonics, cfg.t_gate);
            if (method == PulseMethod::Pert) {
                return smoothness(params) +
                       (two_q ? pertLossTwoQubit(p, target,
                                                 pcfg.objective)
                              : pertLossOneQubit(p, target,
                                                 pcfg.objective));
            }
            return smoothness(params) +
                   (two_q ? optCtrlLossTwoQubit(p, target,
                                                pcfg.objective)
                          : optCtrlLossOneQubit(p, target,
                                                pcfg.objective));
        };
        AdamOptions popt = cfg.adam;
        popt.max_iters = cfg.polish_iters;
        popt.lr = cfg.adam.lr_final;
        popt.lr_final = cfg.adam.lr_final / 10.0;
        OptimizeResult res =
            minimizeAdam(polish_loss, best.params, popt);
        // The polish loss weights the gate term more strongly; adopt
        // its solution unless it regressed the original objective
        // badly (it gains calibration fidelity for a small crosstalk
        // trade).
        const double original = loss(res.params);
        if (original < best.loss * 3.0) {
            best.params = std::move(res.params);
            best.loss = original;
        }
    }

    OptimizedPulse out;
    out.final_loss = best.loss;
    out.iterations = best.iterations;
    const int nch = channelsFor(gate);
    for (int ch = 0; ch < nch; ++ch)
        out.coeffs.emplace_back(
            best.params.begin() + ch * cfg.harmonics,
            best.params.begin() + (ch + 1) * cfg.harmonics);
    out.program =
        buildProgram(gate, best.params, cfg.harmonics, cfg.t_gate);
    return out;
}

namespace {

/** Coefficients for (method, gate): disk-cached, optimizing on miss. */
std::vector<std::vector<double>>
obtainCoeffs(PulseMethod method, PulseGate gate)
{
    PulseOptConfig cfg = defaultPulseOptConfig(method, gate);
    const std::string key = cacheKey(method, gate, cfg);
    std::vector<std::vector<double>> coeffs;
    if (loadCoeffs(key, channelsFor(gate), cfg.harmonics, coeffs))
        return coeffs;
    if (method == PulseMethod::OptCtrl) {
        // Warm-start optimal control from the Pert solution: the
        // average-fidelity landscape is shallow near the Gaussian
        // basin, while the perturbative solution already sits in the
        // suppressing one.
        auto pert = obtainCoeffs(PulseMethod::Pert, gate);
        cfg.warm_start.clear();
        for (const auto &ch : pert)
            cfg.warm_start.insert(cfg.warm_start.end(), ch.begin(),
                                  ch.end());
        cfg.restarts = 1;
    }
    OptimizedPulse opt = optimizePulse(method, gate, cfg);
    storeCoeffs(key, opt.coeffs);
    return opt.coeffs;
}

pulse::PulseLibrary
buildOptimizedLibrary(PulseMethod method)
{
    pulse::PulseLibrary lib(pulseMethodName(method));
    for (PulseGate gate :
         {PulseGate::SX, PulseGate::Identity, PulseGate::RZX}) {
        const double t_gate =
            defaultPulseOptConfig(method, gate).t_gate;
        lib.set(gate, programFromCoeffs(obtainCoeffs(method, gate),
                                        t_gate));
    }
    return lib;
}

/** Guards the memo map itself: compileBatch() workers and ctest -j
 *  threads may request libraries concurrently.  Held only for
 *  lookups/inserts, never across a library build. */
std::mutex &
libraryMutex()
{
    static std::mutex m;
    return m;
}

/** Serializes cold builds of one method so the (possibly
 *  multi-minute) optimization runs exactly once, without blocking
 *  cached lookups of the other methods. */
std::mutex &
libraryBuildMutex(PulseMethod method)
{
    static std::array<std::mutex, 4> mutexes;
    return mutexes[size_t(method) % mutexes.size()];
}

std::map<PulseMethod, std::shared_ptr<const pulse::PulseLibrary>> &
libraryMemo()
{
    static std::map<PulseMethod,
                    std::shared_ptr<const pulse::PulseLibrary>>
        memo;
    return memo;
}

/** Memo of DRAG-corrected variants, keyed on (method, alpha bits) so
 *  heterogeneous devices share one library per distinct calibrated
 *  anharmonicity.  Guarded by libraryMutex() like the base memo. */
std::map<std::pair<PulseMethod, uint64_t>,
         std::shared_ptr<const pulse::PulseLibrary>> &
draggedMemo()
{
    static std::map<std::pair<PulseMethod, uint64_t>,
                    std::shared_ptr<const pulse::PulseLibrary>>
        memo;
    return memo;
}

uint64_t
alphaKey(double alpha)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(alpha));
    std::memcpy(&bits, &alpha, sizeof(bits));
    return bits;
}

std::shared_ptr<const pulse::PulseLibrary>
lookupLibrary(PulseMethod method)
{
    const std::lock_guard<std::mutex> lock(libraryMutex());
    auto &memo = libraryMemo();
    auto it = memo.find(method);
    return it != memo.end() ? it->second : nullptr;
}

} // namespace

std::shared_ptr<const pulse::PulseLibrary>
getPulseLibraryShared(PulseMethod method)
{
    if (auto cached = lookupLibrary(method))
        return cached;

    // Build outside the memo lock: only same-method builders
    // serialize, and double-checking under the build mutex makes the
    // build happen once.
    const std::lock_guard<std::mutex> build_lock(
        libraryBuildMutex(method));
    if (auto cached = lookupLibrary(method))
        return cached;

    pulse::PulseLibrary lib;
    switch (method) {
    case PulseMethod::Gaussian:
        lib = pulse::PulseLibrary::gaussian();
        break;
    case PulseMethod::DCG:
        lib = dcgLibrary();
        break;
    case PulseMethod::OptCtrl:
    case PulseMethod::Pert:
        lib = buildOptimizedLibrary(method);
        break;
    }
    auto shared = std::make_shared<const pulse::PulseLibrary>(
        std::move(lib));
    const std::lock_guard<std::mutex> lock(libraryMutex());
    auto [pos, ok] = libraryMemo().emplace(method, std::move(shared));
    ensure(ok, "getPulseLibrary: memo insert failed");
    return pos->second;
}

const pulse::PulseLibrary &
getPulseLibrary(PulseMethod method)
{
    return *getPulseLibraryShared(method);
}

std::shared_ptr<const pulse::PulseLibrary>
getDraggedLibraryShared(PulseMethod method, double alpha)
{
    require(alpha != 0.0,
            "getDraggedLibraryShared: zero anharmonicity");
    const auto key = std::make_pair(method, alphaKey(alpha));
    {
        const std::lock_guard<std::mutex> lock(libraryMutex());
        auto it = draggedMemo().find(key);
        if (it != draggedMemo().end())
            return it->second;
    }
    // Derive outside the memo lock (the base library itself may need
    // a cold build); racing builders produce identical variants and
    // the first insert wins.
    auto base = getPulseLibraryShared(method);
    auto dragged = std::make_shared<const pulse::PulseLibrary>(
        base->withDrag(alpha));
    const std::lock_guard<std::mutex> lock(libraryMutex());
    auto [pos, inserted] = draggedMemo().emplace(key, std::move(dragged));
    return pos->second;
}

std::vector<std::shared_ptr<const pulse::PulseLibrary>>
perQubitPulseLibraries(PulseMethod method, const dev::Device &device)
{
    std::vector<std::shared_ptr<const pulse::PulseLibrary>> out;
    out.reserve(size_t(device.numQubits()));
    for (int q = 0; q < device.numQubits(); ++q)
        out.push_back(
            getDraggedLibraryShared(method, device.anharmonicity(q)));
    return out;
}

void
clearPulseLibraryCache()
{
    const std::lock_guard<std::mutex> lock(libraryMutex());
    libraryMemo().clear();
    draggedMemo().clear();
}

} // namespace qzz::core
