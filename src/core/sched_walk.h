/**
 * @file
 * The ZZX frontier walk, parameterized over the source of cuts.
 *
 * Algorithm 2's outer loop — flush virtual RZ layers, Case 1 (only
 * single-qubit gates schedulable) vs Case 2 (TwoQSchedule seeding and
 * growth), placement in S with identity supplementation — is policy
 * independent: ZZXSched, its calibration-weighted variant, the exact
 * branch-and-bound scheduler and the cycle-aware policy all share it
 * and differ only in how a layer's cut is chosen.  scheduleByCuts()
 * is that shared loop; a LayerCutOracle supplies the cuts.
 *
 * Oracles own their caching policy: the heuristic oracle memoizes the
 * unconstrained Case-1 cut (it never changes within a schedule), the
 * exact oracle memoizes per constrained-qubit set, and the
 * cycle-aware oracle cannot cache across layers at all because its
 * edge weights evolve with the accumulated crosstalk.
 */

#ifndef QZZ_CORE_SCHED_WALK_H
#define QZZ_CORE_SCHED_WALK_H

#include "core/zzx_sched.h"

namespace qzz::core {

/**
 * Supplies the cut for each layer the walk builds.  cutFor() may be
 * called several times per layer (TwoQSchedule probes candidate gate
 * groups); onLayerCommitted() is called once per appended *physical*
 * layer, after its metrics and side are final, so stateful policies
 * can carry information across layer boundaries.
 */
class LayerCutOracle
{
  public:
    virtual ~LayerCutOracle() = default;

    /**
     * A cut with all of @p q inside one partition (empty @p q means
     * unconstrained).  Implementations must be deterministic and must
     * guarantee the constraint (via a trivial fallback if needed), as
     * SuppressionSolver::solve() does.
     */
    virtual SuppressionResult cutFor(const std::vector<int> &q) = 0;

    /** Hook run after each physical layer is appended. */
    virtual void
    onLayerCommitted(const Layer &layer)
    {
        (void)layer;
    }
};

/**
 * Run the frontier walk over @p native, drawing every cut from
 * @p oracle.
 *
 * @param native    native-gate circuit over the device's qubits.
 * @param dev       target device.
 * @param durations per-gate durations.
 * @param opt       *resolved* options (see resolveZzxOptions()) — the
 *                  requirement R drives TwoQSchedule's splitting.
 * @param dist      all-pairs qubit distances (gate distances).
 * @param oracle    the cut source.
 */
Schedule scheduleByCuts(const ckt::QuantumCircuit &native,
                        const dev::Device &dev,
                        const GateDurations &durations,
                        const ZzxOptions &opt,
                        const std::vector<std::vector<int>> &dist,
                        LayerCutOracle &oracle);

} // namespace qzz::core

#endif // QZZ_CORE_SCHED_WALK_H
