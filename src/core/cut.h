/**
 * @file
 * Cuts of a device topology and the paper's suppression metrics.
 *
 * A layer's qubits split into S (pulses applied) and T (idle).  The
 * couplings with both endpoints on the same side carry *unsuppressed*
 * ZZ crosstalk; those form the remaining-set of the cut (S, T).  The
 * two quality metrics of Sec. 2.1:
 *   NC = #couplings with unsuppressed crosstalk  (= |remaining-set|)
 *   NQ = #qubits in the largest same-status region
 */

#ifndef QZZ_CORE_CUT_H
#define QZZ_CORE_CUT_H

#include <vector>

#include "graph/graph.h"

namespace qzz::core {

/** NQ/NC metrics plus the supporting region structure. */
struct SuppressionMetrics
{
    /** #couplings with unsuppressed crosstalk. */
    int nc = 0;
    /** #qubits in the largest region. */
    int nq = 0;
    /** Per-edge flag: true if crosstalk on the edge is unsuppressed. */
    std::vector<char> unsuppressed_edge;
    /** Region (same-status connected component) id per vertex. */
    std::vector<int> region_of;

    /** The combined objective alpha * NQ + NC. */
    double
    objective(double alpha) const
    {
        return alpha * double(nq) + double(nc);
    }
};

/**
 * Evaluate the metrics of a vertex 2-coloring (cut) of @p g.
 *
 * @param g    the topology.
 * @param side 0/1 per vertex.
 */
SuppressionMetrics evaluateCut(const graph::Graph &g,
                               const std::vector<int> &side);

/**
 * Calibrated residual ZZ of a cut: the sum of per-edge ZZ strength
 * *magnitudes* (rad/ns, edge-id aligned with the topology; static ZZ
 * is conventionally negative) over the cut's unsuppressed couplings.
 * The calibration-weighted counterpart of NC — two cuts with equal NC
 * can differ substantially on a device whose couplers are not all
 * equally strong.
 */
double residualZz(const SuppressionMetrics &metrics,
                  const std::vector<double> &zz);

/** True when all vertices of @p q share one side value. */
bool sameSide(const std::vector<int> &side, const std::vector<int> &q);

} // namespace qzz::core

#endif // QZZ_CORE_CUT_H
