/**
 * @file
 * ParSched: the maximal-parallelism baseline scheduler.
 *
 * Every schedulable gate starts as early as possible (ASAP), matching
 * the state-of-the-art policy of Qiskit/Qulic the paper compares
 * against (Sec. 7.3, "Comparison").  No identity supplementation, no
 * crosstalk awareness.
 */

#ifndef QZZ_CORE_PAR_SCHED_H
#define QZZ_CORE_PAR_SCHED_H

#include "core/schedule.h"
#include "device/device.h"

namespace qzz::core {

/**
 * Schedule @p native ASAP.
 *
 * @param native    a native-gate circuit over the device's qubits.
 * @param dev       the target device (for layer metrics only).
 * @param durations per-gate durations.
 */
Schedule parSchedule(const ckt::QuantumCircuit &native,
                     const dev::Device &dev,
                     const GateDurations &durations);

} // namespace qzz::core

#endif // QZZ_CORE_PAR_SCHED_H
