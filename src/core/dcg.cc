#include "core/dcg.h"

#include "common/units.h"

namespace qzz::core {

using pulse::GaussianWaveform;
using pulse::PulseProgram;
using pulse::SequenceWaveform;
using pulse::WaveformPtr;

namespace {

/** A Gaussian x-rotation segment of the given angle and duration. */
WaveformPtr
segment(double angle, double duration)
{
    // Rotation angle theta = 2 * area.
    return std::make_shared<GaussianWaveform>(GaussianWaveform::withArea(
        angle / 2.0, duration, duration / 4.0));
}

} // namespace

PulseProgram
dcgIdentity(double t_seg)
{
    auto seq = std::make_shared<SequenceWaveform>(std::vector<WaveformPtr>{
        segment(kPi, t_seg),
        segment(kPi, t_seg),
    });
    return PulseProgram::singleQubit(seq, nullptr);
}

PulseProgram
dcgSx(double t_seg)
{
    auto seq = std::make_shared<SequenceWaveform>(std::vector<WaveformPtr>{
        segment(kPi, t_seg),
        segment(kPi / 2.0, t_seg),
        segment(-kPi / 2.0, t_seg),
        segment(kPi, t_seg),
        segment(kPi / 2.0, 2.0 * t_seg),
    });
    return PulseProgram::singleQubit(seq, nullptr);
}

pulse::PulseLibrary
dcgLibrary(double t_seg)
{
    pulse::PulseLibrary lib("DCG");
    lib.set(pulse::PulseGate::SX, dcgSx(t_seg));
    lib.set(pulse::PulseGate::Identity, dcgIdentity(t_seg));
    return lib;
}

} // namespace qzz::core
