#include "core/schedule_io.h"

#include <cmath>

#include "common/error.h"

namespace qzz::core {

namespace {

/** Minimal JSON emitter: handles the fixed shapes we produce. */
class JsonWriter
{
  public:
    JsonWriter(std::ostream &os, bool pretty) : os_(os), pretty_(pretty)
    {
        os_.precision(12);
    }

    void
    beginObject()
    {
        separate();
        os_ << "{";
        push();
        just_opened_ = true;
    }
    void
    endObject()
    {
        pop();
        newline();
        os_ << "}";
        just_opened_ = false;
    }
    void
    beginArray()
    {
        separate();
        os_ << "[";
        push();
        just_opened_ = true;
    }
    void
    endArray()
    {
        pop();
        newline();
        os_ << "]";
        just_opened_ = false;
    }

    void
    key(const std::string &k)
    {
        separate();
        os_ << "\"" << k << "\":";
        if (pretty_)
            os_ << " ";
        pending_value_ = true;
    }

    void
    value(double v)
    {
        separate();
        if (std::isfinite(v))
            os_ << v;
        else
            os_ << "null";
        just_opened_ = false;
    }
    void
    value(int v)
    {
        separate();
        os_ << v;
        just_opened_ = false;
    }
    void
    value(bool v)
    {
        separate();
        os_ << (v ? "true" : "false");
        just_opened_ = false;
    }
    void
    value(const std::string &v)
    {
        separate();
        os_ << "\"" << v << "\"";
        just_opened_ = false;
    }

  private:
    std::ostream &os_;
    bool pretty_;
    int depth_ = 0;
    bool just_opened_ = true;
    bool pending_value_ = false;

    void
    push()
    {
        ++depth_;
    }
    void
    pop()
    {
        --depth_;
    }
    void
    newline()
    {
        if (!pretty_)
            return;
        os_ << "\n";
        for (int i = 0; i < depth_; ++i)
            os_ << "  ";
    }
    void
    separate()
    {
        if (pending_value_) {
            pending_value_ = false;
            return; // value follows its key on the same line
        }
        if (!just_opened_)
            os_ << ",";
        newline();
        just_opened_ = false;
    }
};

void
writeChannel(JsonWriter &w, const char *name,
             const pulse::WaveformPtr &wf, double duration,
             double sample_dt)
{
    if (!wf)
        return;
    w.key(name);
    w.beginArray();
    for (double t = 0.0; t <= duration + 1e-9; t += sample_dt)
        w.value(wf->value(t));
    w.endArray();
}

/** Shared body of the two entry points; @p program adds the
 *  configuration fields when non-null. */
void
writeScheduleDocument(const Schedule &schedule,
                      const pulse::PulseLibrary &library,
                      const CompiledProgram *program, std::ostream &os,
                      const ScheduleIoOptions &opt)
{
    require(opt.sample_dt >= 0.0, "writeScheduleJson: bad sample_dt");
    JsonWriter w(os, opt.pretty);
    w.beginObject();
    w.key("num_qubits");
    w.value(schedule.num_qubits);
    w.key("execution_time_ns");
    w.value(schedule.executionTime());
    w.key("pulse_library");
    w.value(library.name());
    if (program != nullptr) {
        w.key("pulse_method");
        w.value(pulseMethodName(program->pulse_method));
        w.key("sched_policy");
        w.value(schedPolicyName(program->sched_policy));
        w.key("calib_epoch");
        w.value(double(program->calib_epoch));
    }

    w.key("layers");
    w.beginArray();
    for (const Layer &layer : schedule.layers) {
        w.beginObject();
        w.key("virtual");
        w.value(layer.is_virtual);
        w.key("duration_ns");
        w.value(layer.duration);
        if (!layer.is_virtual) {
            w.key("nq");
            w.value(layer.metrics.nq);
            w.key("nc");
            w.value(layer.metrics.nc);
            w.key("side");
            w.beginArray();
            for (int s : layer.side)
                w.value(s);
            w.endArray();
        }
        w.key("gates");
        w.beginArray();
        for (const ScheduledGate &sg : layer.gates) {
            w.beginObject();
            w.key("kind");
            w.value(ckt::gateKindName(sg.gate.kind));
            w.key("qubits");
            w.beginArray();
            for (int q : sg.gate.qubits)
                w.value(q);
            w.endArray();
            if (!sg.gate.params.empty()) {
                w.key("params");
                w.beginArray();
                for (double p : sg.gate.params)
                    w.value(p);
                w.endArray();
            }
            w.key("supplemented");
            w.value(sg.supplemented);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();

    if (opt.sample_dt > 0.0) {
        w.key("pulses");
        w.beginObject();
        for (pulse::PulseGate g :
             {pulse::PulseGate::SX, pulse::PulseGate::Identity,
              pulse::PulseGate::RZX}) {
            if (!library.has(g))
                continue;
            const pulse::PulseProgram &p = library.get(g);
            w.key(pulse::pulseGateName(g));
            w.beginObject();
            w.key("duration_ns");
            w.value(p.duration);
            w.key("two_qubit");
            w.value(p.two_qubit);
            w.key("channels");
            w.beginObject();
            writeChannel(w, "x_a", p.x_a, p.duration, opt.sample_dt);
            writeChannel(w, "y_a", p.y_a, p.duration, opt.sample_dt);
            writeChannel(w, "x_b", p.x_b, p.duration, opt.sample_dt);
            writeChannel(w, "y_b", p.y_b, p.duration, opt.sample_dt);
            writeChannel(w, "coupling", p.coupling, p.duration,
                         opt.sample_dt);
            w.endObject();
            w.endObject();
        }
        w.endObject();
    }
    w.endObject();
    os << "\n";
}

} // namespace

void
writeScheduleJson(const Schedule &schedule,
                  const pulse::PulseLibrary &library, std::ostream &os,
                  const ScheduleIoOptions &opt)
{
    writeScheduleDocument(schedule, library, nullptr, os, opt);
}

void
writeCompiledProgramJson(const CompiledProgram &program,
                         std::ostream &os, const ScheduleIoOptions &opt)
{
    require(program.library != nullptr,
            "writeCompiledProgramJson: program has no pulse library");
    writeScheduleDocument(program.schedule, *program.library, &program,
                          os, opt);
}

} // namespace qzz::core
