#include "core/zzx_sched.h"

#include <algorithm>
#include <limits>

#include "circuit/dag.h"
#include "common/error.h"

namespace qzz::core {

using ckt::Gate;
using ckt::GateKind;
using ckt::QuantumCircuit;

ZzxOptions
resolveZzxOptions(ZzxOptions opt, const dev::Device &dev)
{
    const graph::Graph &g = dev.graph();
    if (opt.nq_max < 0) {
        int maxdeg = 0;
        for (int v = 0; v < g.numVertices(); ++v)
            maxdeg = std::max(maxdeg, g.degree(v));
        opt.nq_max = std::max(2, maxdeg - 1); // NQ < max degree
    }
    if (opt.nc_max < 0)
        opt.nc_max = g.numEdges() / 2;
    return opt;
}

int
gateDistance(const Gate &a, const Gate &b,
             const std::vector<std::vector<int>> &dist)
{
    int d = 0;
    for (int qa : a.qubits)
        for (int qb : b.qubits)
            d += dist[qa][qb];
    return d;
}

namespace {

/** All qubits touched by the given gates (by frontier index list). */
std::vector<int>
gateQubits(const QuantumCircuit &c, const std::vector<int> &gate_ids)
{
    std::vector<int> q;
    for (int gi : gate_ids)
        for (int v : c.gates()[gi].qubits)
            q.push_back(v);
    std::sort(q.begin(), q.end());
    q.erase(std::unique(q.begin(), q.end()), q.end());
    return q;
}

/** Does a cut satisfy the suppression requirement R? */
bool
satisfiesR(const SuppressionResult &res, const ZzxOptions &opt)
{
    return res.constraint_ok && res.metrics.nq <= opt.nq_max &&
           res.metrics.nc <= opt.nc_max;
}

/** Min distance between a gate and a group (Definition 6.2). */
int
gateGroupDistance(const QuantumCircuit &c, int gate,
                  const std::vector<int> &group,
                  const std::vector<std::vector<int>> &dist)
{
    int best = std::numeric_limits<int>::max();
    for (int member : group)
        best = std::min(best, gateDistance(c.gates()[gate],
                                           c.gates()[member], dist));
    return best;
}

/** TwoQSchedule outcome: the cut plus the qubits it constrains. */
struct TwoQResult
{
    SuppressionResult cut;
    std::vector<int> q; ///< qubits of the chosen gates (inside S)
};

/**
 * Procedure TwoQSchedule (Algorithm 2, lines 15-28): returns the S
 * partition to drive this layer.
 */
TwoQResult
twoQSchedule(const QuantumCircuit &c, const std::vector<int> &sg2,
             const SuppressionSolver &solver,
             const std::vector<std::vector<int>> &dist,
             const ZzxOptions &opt)
{
    // Try all two-qubit gates at once.
    std::vector<int> all_q = gateQubits(c, sg2);
    SuppressionResult all = solver.solve(all_q, opt.suppression);
    if (satisfiesR(all, opt) || sg2.size() == 1)
        return {std::move(all), std::move(all_q)};

    // Heuristic: separate the two closest gates, then grow the groups
    // farthest-gate-first while R holds.
    int seed_a = -1, seed_b = -1;
    int best_d = std::numeric_limits<int>::max();
    for (size_t i = 0; i < sg2.size(); ++i)
        for (size_t j = i + 1; j < sg2.size(); ++j) {
            const int d = gateDistance(c.gates()[sg2[i]],
                                       c.gates()[sg2[j]], dist);
            if (d < best_d) {
                best_d = d;
                seed_a = sg2[i];
                seed_b = sg2[j];
            }
        }

    std::vector<int> group_a{seed_a}, group_b{seed_b};
    std::vector<int> rest;
    for (int gi : sg2)
        if (gi != seed_a && gi != seed_b)
            rest.push_back(gi);

    while (!rest.empty()) {
        // The (gate, group) pair with maximum distance.
        int pick = -1;
        int pick_group = 0; // 0 = A, 1 = B
        int pick_d = -1;
        for (int gi : rest) {
            const int da = gateGroupDistance(c, gi, group_a, dist);
            const int db = gateGroupDistance(c, gi, group_b, dist);
            const int d = std::max(da, db);
            if (d > pick_d) {
                pick_d = d;
                pick = gi;
                pick_group = da >= db ? 0 : 1;
            }
        }
        std::vector<int> &group = pick_group == 0 ? group_a : group_b;
        std::vector<int> trial = group;
        trial.push_back(pick);
        SuppressionResult res =
            solver.solve(gateQubits(c, trial), opt.suppression);
        if (!satisfiesR(res, opt))
            break;
        group.push_back(pick);
        rest.erase(std::find(rest.begin(), rest.end(), pick));
    }

    const std::vector<int> &chosen =
        group_a.size() >= group_b.size() ? group_a : group_b;
    std::vector<int> chosen_q = gateQubits(c, chosen);
    SuppressionResult res = solver.solve(chosen_q, opt.suppression);
    return {std::move(res), std::move(chosen_q)};
}

} // namespace

ZzxDeviceTables::ZzxDeviceTables(const dev::Device &dev)
    : solver(dev.topology()), dist(dev.graph().allPairsDistances()),
      zz(dev.couplings())
{
}

Schedule
zzxSchedule(const QuantumCircuit &native, const dev::Device &dev,
            const GateDurations &durations, const ZzxOptions &opt)
{
    return zzxSchedule(native, dev, durations, opt,
                       ZzxDeviceTables(dev));
}

Schedule
zzxWeightedSchedule(const QuantumCircuit &native, const dev::Device &dev,
                    const GateDurations &durations, const ZzxOptions &opt)
{
    return zzxWeightedSchedule(native, dev, durations, opt,
                               ZzxDeviceTables(dev));
}

Schedule
zzxWeightedSchedule(const QuantumCircuit &native, const dev::Device &dev,
                    const GateDurations &durations,
                    const ZzxOptions &opt, const ZzxDeviceTables &tables)
{
    // The weighted policy is the classic search with the calibrated
    // per-edge rates injected into the suppression objective; the
    // tables outlive the call, so the solver can borrow them.
    ZzxOptions weighted = opt;
    weighted.suppression.edge_zz = &tables.zz;
    return zzxSchedule(native, dev, durations, weighted, tables);
}

Schedule
zzxSchedule(const QuantumCircuit &native, const dev::Device &dev,
            const GateDurations &durations, const ZzxOptions &opt_in,
            const ZzxDeviceTables &tables)
{
    require(native.isNative(), "zzxSchedule: circuit must be native");
    require(native.numQubits() == dev.numQubits(),
            "zzxSchedule: circuit/device size mismatch");

    const ZzxOptions opt = resolveZzxOptions(opt_in, dev);
    const SuppressionSolver &solver = tables.solver;
    const auto &dist = tables.dist;

    Schedule sched;
    sched.num_qubits = native.numQubits();
    ckt::DagFrontier frontier(native);

    // The Case-1 cut constrains no qubits, so it is the same for every
    // 1Q-only frontier: solve it once per schedule on first need.
    // Deep circuits alternate 1Q layers with 2Q layers, and the solve
    // (matching plus greedy path relaxation, fully deterministic — so
    // reuse is bit-identical) dominated their compile time.
    SuppressionResult case1_cut;
    bool have_case1 = false;

    while (!frontier.done()) {
        const std::vector<int> ready = frontier.schedulable();
        ensure(!ready.empty(), "zzxSchedule: stalled frontier");

        // Flush virtual RZ gates into a zero-duration layer.
        std::vector<int> virt, phys;
        for (int gi : ready) {
            if (native.gates()[gi].isVirtual())
                virt.push_back(gi);
            else
                phys.push_back(gi);
        }
        if (!virt.empty()) {
            Layer layer;
            layer.is_virtual = true;
            for (int gi : virt) {
                layer.gates.push_back({native.gates()[gi], false});
                frontier.markScheduled(gi);
            }
            sched.layers.push_back(std::move(layer));
            continue;
        }
        if (phys.empty())
            continue;

        // Case analysis on the schedulable set.
        std::vector<int> sg2;
        for (int gi : phys)
            if (native.gates()[gi].isTwoQubit())
                sg2.push_back(gi);

        SuppressionResult cut;
        std::vector<char> s_mask;
        if (sg2.empty()) {
            // Case 1: unconstrained cut; S = side with more gates.
            if (!have_case1) {
                case1_cut = solver.solve({}, opt.suppression);
                have_case1 = true;
            }
            cut = case1_cut;
            int count[2] = {0, 0};
            for (int gi : phys)
                ++count[cut.side[native.gates()[gi].qubits[0]]];
            const int s_value = count[1] >= count[0] ? 1 : 0;
            s_mask.assign(cut.side.size(), 0);
            for (size_t v = 0; v < cut.side.size(); ++v)
                s_mask[v] = cut.side[v] == s_value ? 1 : 0;
        } else {
            // Case 2: two-qubit gates present.  S is the partition
            // holding the chosen group's qubits (the solver
            // guarantees they share a side, via fallback if needed).
            TwoQResult two = twoQSchedule(native, sg2, solver, dist, opt);
            cut = std::move(two.cut);
            ensure(!two.q.empty(), "twoQSchedule returned no qubits");
            const int s_value = cut.side[two.q[0]];
            s_mask.assign(cut.side.size(), 0);
            for (size_t v = 0; v < cut.side.size(); ++v)
                s_mask[v] = cut.side[v] == s_value ? 1 : 0;
        }

        // Procedure Schedule: place every frontier gate fully in S.
        Layer layer;
        std::vector<char> used(size_t(sched.num_qubits), 0);
        for (int gi : phys) {
            const Gate &g = native.gates()[gi];
            bool in_s = true;
            for (int q : g.qubits)
                in_s = in_s && s_mask[q];
            if (!in_s)
                continue;
            layer.gates.push_back({g, false});
            layer.duration = std::max(layer.duration, durations.of(g));
            for (int q : g.qubits)
                used[q] = 1;
            frontier.markScheduled(gi);
        }
        ensure(!layer.gates.empty(),
               "zzxSchedule: layer would be empty (cut excluded every "
               "schedulable gate)");

        // Supplement the rest of S with identity gates so the driven
        // set equals S exactly.
        for (int q = 0; q < sched.num_qubits; ++q) {
            if (s_mask[q] && !used[q]) {
                layer.gates.push_back({Gate(GateKind::I, {q}), true});
                layer.duration =
                    std::max(layer.duration, durations.identity);
            }
        }

        std::vector<int> side(size_t(sched.num_qubits), 0);
        for (int q = 0; q < sched.num_qubits; ++q)
            side[q] = s_mask[q] ? 1 : 0;
        layer.metrics = evaluateCut(dev.graph(), side);
        layer.side = std::move(side);
        sched.layers.push_back(std::move(layer));
    }
    return sched;
}

} // namespace qzz::core
