#include "core/zzx_sched.h"

#include <algorithm>

#include "core/sched_walk.h"

namespace qzz::core {

using ckt::Gate;
using ckt::QuantumCircuit;

ZzxOptions
resolveZzxOptions(ZzxOptions opt, const dev::Device &dev)
{
    const graph::Graph &g = dev.graph();
    if (opt.nq_max < 0) {
        int maxdeg = 0;
        for (int v = 0; v < g.numVertices(); ++v)
            maxdeg = std::max(maxdeg, g.degree(v));
        opt.nq_max = std::max(2, maxdeg - 1); // NQ < max degree
    }
    if (opt.nc_max < 0)
        opt.nc_max = g.numEdges() / 2;
    return opt;
}

int
gateDistance(const Gate &a, const Gate &b,
             const std::vector<std::vector<int>> &dist)
{
    int d = 0;
    for (int qa : a.qubits)
        for (int qb : b.qubits)
            d += dist[qa][qb];
    return d;
}

namespace {

/**
 * Cut source of the heuristic policies: every cut comes from one
 * alpha-optimal SuppressionSolver run.  The Case-1 cut constrains no
 * qubits, so it is the same for every 1Q-only frontier: solve it once
 * per schedule on first need.  Deep circuits alternate 1Q layers with
 * 2Q layers, and the solve (matching plus greedy path relaxation,
 * fully deterministic — so reuse is bit-identical) dominated their
 * compile time.
 */
class HeuristicCutOracle final : public LayerCutOracle
{
  public:
    HeuristicCutOracle(const SuppressionSolver &solver,
                       const SuppressionOptions &sopt)
        : solver_(solver), sopt_(sopt)
    {
    }

    SuppressionResult
    cutFor(const std::vector<int> &q) override
    {
        if (q.empty()) {
            if (!have_case1_) {
                case1_ = solver_.solve({}, sopt_);
                have_case1_ = true;
            }
            return case1_;
        }
        return solver_.solve(q, sopt_);
    }

  private:
    const SuppressionSolver &solver_;
    SuppressionOptions sopt_;
    SuppressionResult case1_;
    bool have_case1_ = false;
};

} // namespace

ZzxDeviceTables::ZzxDeviceTables(const dev::Device &dev)
    : solver(dev.topology()), dist(dev.graph().allPairsDistances()),
      zz(dev.couplings())
{
}

Schedule
zzxSchedule(const QuantumCircuit &native, const dev::Device &dev,
            const GateDurations &durations, const ZzxOptions &opt)
{
    return zzxSchedule(native, dev, durations, opt,
                       ZzxDeviceTables(dev));
}

Schedule
zzxWeightedSchedule(const QuantumCircuit &native, const dev::Device &dev,
                    const GateDurations &durations, const ZzxOptions &opt)
{
    return zzxWeightedSchedule(native, dev, durations, opt,
                               ZzxDeviceTables(dev));
}

Schedule
zzxWeightedSchedule(const QuantumCircuit &native, const dev::Device &dev,
                    const GateDurations &durations,
                    const ZzxOptions &opt, const ZzxDeviceTables &tables)
{
    // The weighted policy is the classic search with the calibrated
    // per-edge rates injected into the suppression objective; the
    // tables outlive the call, so the solver can borrow them.
    ZzxOptions weighted = opt;
    weighted.suppression.edge_zz = &tables.zz;
    return zzxSchedule(native, dev, durations, weighted, tables);
}

Schedule
zzxSchedule(const QuantumCircuit &native, const dev::Device &dev,
            const GateDurations &durations, const ZzxOptions &opt_in,
            const ZzxDeviceTables &tables)
{
    const ZzxOptions opt = resolveZzxOptions(opt_in, dev);
    HeuristicCutOracle oracle(tables.solver, opt.suppression);
    return scheduleByCuts(native, dev, durations, opt, tables.dist,
                          oracle);
}

} // namespace qzz::core
