/**
 * @file
 * Solver-optimal scheduling baseline (ROADMAP item 2).
 *
 * ExactCutSolver answers the same query as SuppressionSolver — a cut
 * (S, T) with Q inside one partition minimizing alpha * NQ + NC, or
 * the calibration-weighted alpha * NQ + sum |zz[e]| / max|zz| when
 * per-edge rates are supplied — but *exactly*, by branch-and-bound
 * over vertex side assignments instead of the heuristic dual T-join
 * search.  Intractable in general (the search space is 2^(n-1)), it
 * is fast on the small devices where it matters: as the per-layer
 * optimality oracle for the heuristics (tests/properties, the
 * fig_sched_gap bench) and as a paper-grade baseline policy
 * (SchedPolicy::Exact).
 *
 * Search mechanics: vertices are assigned in multi-source BFS order
 * from Q (regions form early, so bounds bite early); a rollbackable
 * union-find tracks same-side regions incrementally; partial NC /
 * weighted-NC / largest-region values are monotone in the assignment,
 * so alpha * max(1, region) + cost is an admissible lower bound.  Q
 * is pinned to side 1 (for empty Q, the first vertex — the metrics
 * are invariant under a global flip), halving the space and making
 * the result deterministic.  Ties between equal-objective cuts break
 * to the classic objective and then to the first candidate in DFS
 * order, so repeated runs are bit-identical.
 *
 * The search budget is node-based by default (deterministic); an
 * optional wall-clock bound exists for interactive use.  When the
 * budget runs out the best incumbent found so far is returned —
 * seeded with the trivial cut S = Q, so there is always one — with
 * status BudgetExhausted instead of Optimal.
 */

#ifndef QZZ_CORE_EXACT_SCHED_H
#define QZZ_CORE_EXACT_SCHED_H

#include <map>
#include <mutex>
#include <tuple>

#include "core/zzx_sched.h"

namespace qzz::core {

/** Did the branch-and-bound search complete? */
enum class ExactStatus
{
    Optimal,         ///< the full space was searched (modulo pruning)
    BudgetExhausted, ///< budget hit: best incumbent so far returned
};

/** Display name of a status ("Optimal" / "BudgetExhausted"). */
std::string exactStatusName(ExactStatus status);

/** Search budget of ExactCutSolver::solve(). */
struct ExactLimits
{
    /** Branch-and-bound node cap (a node is one tried vertex-side
     *  assignment).  Deterministic: the same instance under the same
     *  cap always returns the same result. */
    long max_nodes = 1000000;
    /**
     * Optional wall-clock cap in milliseconds; <= 0 disables it.
     * A time budget makes BudgetExhausted outcomes machine-dependent,
     * so results are only memoized when it is off.
     */
    double max_millis = 0.0;
};

/** Outcome of one exact cut search. */
struct ExactCutResult
{
    /** Vertex side (0/1); all of Q on side 1. */
    std::vector<int> side;
    /** Metrics of the returned cut. */
    SuppressionMetrics metrics;
    /** Primary objective of the cut: classic alpha * NQ + NC, or the
     *  calibration-weighted variant when edge_zz was set. */
    double objective = 0.0;
    /** Classic alpha * NQ + NC tie-break value. */
    double tie = 0.0;
    ExactStatus status = ExactStatus::Optimal;
    /** Branch-and-bound nodes visited. */
    long nodes = 0;
};

/**
 * The primary objective both SuppressionSolver and ExactCutSolver
 * minimize for a given cut: alpha * NQ + NC, or — when @p edge_zz is
 * non-null with at least one finite nonzero rate — the
 * calibration-weighted alpha * NQ + sum_{e unsuppressed}
 * |zz[e]| / max|zz| (identical normalization to
 * SuppressionSolver::solve(), so heuristic and exact costs are
 * directly comparable).
 */
double cutPrimaryObjective(const SuppressionMetrics &metrics,
                           double alpha,
                           const std::vector<double> *edge_zz);

/**
 * Reusable exact solver over one topology graph.  solve() is const
 * and thread-safe; optimal results under a pure node budget are
 * memoized per (Q, alpha, weighted) across calls, so schedulers
 * revisiting the same constrained set (the unconstrained Case-1 cut,
 * repeated TwoQSchedule probes across a batch) pay the search once.
 *
 * As with SuppressionOptions::edge_zz, a given solver instance must
 * always be passed the same per-edge rate vector (the memo key
 * records only its presence, not its contents) — the natural use is
 * one solver per device snapshot.
 */
class ExactCutSolver
{
  public:
    explicit ExactCutSolver(const graph::Graph &g);

    /**
     * Exact counterpart of SuppressionSolver::solve().
     *
     * @param q      qubits that must share a partition (may be empty).
     * @param opt    objective knobs (alpha, optional edge_zz; top_k is
     *               a heuristic-search knob and is ignored).
     * @param limits search budget.
     */
    ExactCutResult solve(const std::vector<int> &q,
                         const SuppressionOptions &opt = {},
                         const ExactLimits &limits = {}) const;

    const graph::Graph &topologyGraph() const { return g_; }

  private:
    graph::Graph g_;

    /** (sorted Q, alpha, weighted?, node cap) -> optimal result. */
    using MemoKey = std::tuple<std::vector<int>, double, bool, long>;
    mutable std::mutex memo_mutex_;
    mutable std::map<MemoKey, ExactCutResult> memo_;
};

/**
 * Per-device tables of the exact policy, mirroring ZzxDeviceTables:
 * the exact solver (with its cross-compile memo), the all-pairs qubit
 * distances and the snapshot's per-edge ZZ rates.  Immutable from the
 * caller's view and thread-safe to share.
 */
struct ExactDeviceTables
{
    explicit ExactDeviceTables(const dev::Device &dev);

    ExactCutSolver solver;
    std::vector<std::vector<int>> dist;
    std::vector<double> zz;
};

/**
 * Schedule a native circuit with the ZZX frontier walk, drawing every
 * layer cut from the exact solver instead of the heuristic search
 * (classic alpha * NQ + NC objective, like zzxSchedule()).  Per-layer
 * cuts are solver-optimal whenever the budget suffices; a layer whose
 * search exhausted the budget silently degrades to its best incumbent
 * (query the solver directly for statuses).  TwoQSchedule grouping
 * and the suppression requirement R behave exactly as in
 * zzxSchedule().
 */
Schedule exactSchedule(const ckt::QuantumCircuit &native,
                       const dev::Device &dev,
                       const GateDurations &durations,
                       const ZzxOptions &opt = {},
                       const ExactLimits &limits = {});

/** Same, reusing precomputed per-device tables. */
Schedule exactSchedule(const ckt::QuantumCircuit &native,
                       const dev::Device &dev,
                       const GateDurations &durations,
                       const ZzxOptions &opt, const ExactLimits &limits,
                       const ExactDeviceTables &tables);

} // namespace qzz::core

#endif // QZZ_CORE_EXACT_SCHED_H
