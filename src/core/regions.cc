#include "core/regions.h"

#include <cmath>

#include "common/error.h"

namespace qzz::core {

using la::CMatrix;
using la::cplx;
using pulse::PulseProgram;

ode::HamiltonianFn
oneQubitBlockH(const PulseProgram &p, double zshift,
               const DriveNoise &noise)
{
    const double scale = 1.0 + noise.amplitude_error;
    const double zc = zshift + noise.detuning / 2.0;
    return [&p, scale, zc](double t, CMatrix &h) {
        const double ox = scale * PulseProgram::eval(p.x_a, t);
        const double oy = scale * PulseProgram::eval(p.y_a, t);
        // H = ox sx + oy sy + zc sz.
        h(0, 0) = zc;
        h(0, 1) = cplx{ox, -oy};
        h(1, 0) = cplx{ox, oy};
        h(1, 1) = -zc;
    };
}

ode::HamiltonianFn
twoQubitBlockH(const PulseProgram &p, double shift_a, double shift_b,
               double lambda_ab, const DriveNoise &noise)
{
    const double scale = 1.0 + noise.amplitude_error;
    const double det = noise.detuning / 2.0;
    return [&p, scale, shift_a, shift_b, lambda_ab, det](double t,
                                                         CMatrix &h) {
        const double oxa = scale * PulseProgram::eval(p.x_a, t);
        const double oya = scale * PulseProgram::eval(p.y_a, t);
        const double oxb = scale * PulseProgram::eval(p.x_b, t);
        const double oyb = scale * PulseProgram::eval(p.y_b, t);
        const double oc = scale * PulseProgram::eval(p.coupling, t);
        // Basis |a b> with a as the most significant qubit.
        // Drive on a: (ox sx + oy sy + sa sz) (x) I
        const double sa = shift_a + det;
        const double sb = shift_b + det;
        const cplx da{oxa, -oya};
        h(0, 2) += da;
        h(1, 3) += da;
        h(2, 0) += std::conj(da);
        h(3, 1) += std::conj(da);
        h(0, 0) += sa;
        h(1, 1) += sa;
        h(2, 2) += -sa;
        h(3, 3) += -sa;
        // Drive on b: I (x) (ox sx + oy sy + sb sz)
        const cplx db{oxb, -oyb};
        h(0, 1) += db;
        h(2, 3) += db;
        h(1, 0) += std::conj(db);
        h(3, 2) += std::conj(db);
        h(0, 0) += sb;
        h(1, 1) += -sb;
        h(2, 2) += sb;
        h(3, 3) += -sb;
        // Coupling channel: oc * sz (x) sx.
        h(0, 1) += oc;
        h(1, 0) += oc;
        h(2, 3) += -oc;
        h(3, 2) += -oc;
        // Intra-pair crosstalk: lab * sz (x) sz.
        h(0, 0) += lambda_ab;
        h(1, 1) += -lambda_ab;
        h(2, 2) += -lambda_ab;
        h(3, 3) += lambda_ab;
    };
}

double
oneQubitCrosstalkInfidelity(const PulseProgram &p, const CMatrix &target,
                            double lambda, const DriveNoise &noise,
                            double dt)
{
    require(!p.two_qubit, "oneQubitCrosstalkInfidelity: 1q pulse needed");
    ode::PropagationOptions opt;
    opt.dt = dt;
    // Spectator blocks z = +1 / -1.
    cplx tr = 0.0;
    for (double z : {1.0, -1.0}) {
        CMatrix u = ode::propagate(oneQubitBlockH(p, z * lambda, noise),
                                   2, 0.0, p.duration, opt);
        tr += (target.dagger() * u).trace();
    }
    // F_avg over the 4-dim system; blocks are unitary so
    // tr(M M^dag) = d.
    const double d = 4.0;
    const double f = (d + std::norm(tr)) / (d * (d + 1.0));
    return 1.0 - f;
}

CMatrix
tildeU2(const PulseProgram &p, double lambda_ab, double dt)
{
    ode::PropagationOptions opt;
    opt.dt = dt;
    return ode::propagate(twoQubitBlockH(p, 0.0, 0.0, lambda_ab), 4, 0.0,
                          p.duration, opt);
}

double
twoQubitCrosstalkInfidelity(const PulseProgram &p, double lambda_a,
                            double lambda_b, double lambda_ab, double dt)
{
    require(p.two_qubit, "twoQubitCrosstalkInfidelity: 2q pulse needed");
    ode::PropagationOptions opt;
    opt.dt = dt;
    const CMatrix target = tildeU2(p, lambda_ab, dt);
    cplx tr = 0.0;
    for (double za : {1.0, -1.0}) {
        for (double zb : {1.0, -1.0}) {
            CMatrix u = ode::propagate(
                twoQubitBlockH(p, za * lambda_a, zb * lambda_b,
                               lambda_ab),
                4, 0.0, p.duration, opt);
            tr += (target.dagger() * u).trace();
        }
    }
    const double d = 16.0;
    const double f = (d + std::norm(tr)) / (d * (d + 1.0));
    return 1.0 - f;
}

double
gateFidelity(const PulseProgram &p, const CMatrix &target, double dt)
{
    ode::PropagationOptions opt;
    opt.dt = dt;
    CMatrix u;
    if (p.two_qubit) {
        u = ode::propagate(twoQubitBlockH(p, 0.0, 0.0, 0.0), 4, 0.0,
                           p.duration, opt);
    } else {
        u = ode::propagate(oneQubitBlockH(p, 0.0), 2, 0.0, p.duration,
                           opt);
    }
    return la::averageGateFidelity(u, target);
}

} // namespace qzz::core
