#include "core/optimizer.h"

#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace qzz::core {

OptimizeResult
minimizeAdam(const LossFn &loss, std::vector<double> init,
             const AdamOptions &opt)
{
    require(!init.empty(), "minimizeAdam: empty parameter vector");
    const size_t n = init.size();

    std::vector<double> x = std::move(init);
    std::vector<double> m(n, 0.0), v(n, 0.0), grad(n, 0.0);

    OptimizeResult res;
    res.params = x;
    res.loss = loss(x);
    res.history.push_back(res.loss);

    int stale = 0;
    for (int it = 1; it <= opt.max_iters; ++it) {
        // Central finite differences.
        for (size_t i = 0; i < n; ++i) {
            std::vector<double> xp = x, xm = x;
            xp[i] += opt.fd_step;
            xm[i] -= opt.fd_step;
            grad[i] = (loss(xp) - loss(xm)) / (2.0 * opt.fd_step);
        }

        // Cosine learning-rate decay.
        const double progress = double(it) / double(opt.max_iters);
        const double lr =
            opt.lr_final + 0.5 * (opt.lr - opt.lr_final) *
                               (1.0 + std::cos(kPi * progress));

        for (size_t i = 0; i < n; ++i) {
            m[i] = opt.beta1 * m[i] + (1.0 - opt.beta1) * grad[i];
            v[i] = opt.beta2 * v[i] +
                   (1.0 - opt.beta2) * grad[i] * grad[i];
            const double mhat =
                m[i] / (1.0 - std::pow(opt.beta1, double(it)));
            const double vhat =
                v[i] / (1.0 - std::pow(opt.beta2, double(it)));
            x[i] -= lr * mhat / (std::sqrt(vhat) + opt.epsilon);
        }

        const double l = loss(x);
        res.history.push_back(l);
        res.iterations = it;
        if (l < res.loss - 1e-12) {
            res.loss = l;
            res.params = x;
            stale = 0;
        } else {
            ++stale;
        }
        if (res.loss < opt.target_loss || stale > opt.patience)
            break;
    }
    return res;
}

} // namespace qzz::core
