#include "core/cycle_sched.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "core/sched_walk.h"

namespace qzz::core {

std::vector<double>
accumulatedZz(const Schedule &schedule, const std::vector<double> &zz)
{
    std::vector<double> acc(zz.size(), 0.0);
    for (const Layer &layer : schedule.layers) {
        if (layer.is_virtual)
            continue;
        require(layer.metrics.unsuppressed_edge.size() == zz.size(),
                "accumulatedZz: schedule/device edge count mismatch");
        for (size_t e = 0; e < zz.size(); ++e)
            if (layer.metrics.unsuppressed_edge[e])
                acc[e] += std::abs(zz[e]) * layer.duration;
    }
    return acc;
}

namespace {

/**
 * Weighted-cut oracle with per-edge accumulated-ZZ state.  Within a
 * layer the weights are frozen (every TwoQSchedule probe of that layer
 * sees the same objective); they are recomputed lazily after each
 * committed physical layer.  Nothing is memoized across layers — the
 * objective itself moves.
 */
class CycleCutOracle final : public LayerCutOracle
{
  public:
    CycleCutOracle(const SuppressionSolver &solver,
                   const SuppressionOptions &sopt,
                   const std::vector<double> &zz, double history_weight)
        : solver_(solver), sopt_(sopt), zz_(zz),
          acc_(zz.size(), 0.0), weights_(zz.size(), 0.0),
          history_weight_(history_weight)
    {
        sopt_.edge_zz = &weights_;
    }

    SuppressionResult
    cutFor(const std::vector<int> &q) override
    {
        if (dirty_)
            refresh();
        return solver_.solve(q, sopt_);
    }

    void
    onLayerCommitted(const Layer &layer) override
    {
        if (layer.is_virtual)
            return;
        require(layer.metrics.unsuppressed_edge.size() == zz_.size(),
                "CycleCutOracle: layer/device edge count mismatch");
        for (size_t e = 0; e < zz_.size(); ++e)
            if (layer.metrics.unsuppressed_edge[e])
                acc_[e] += std::abs(zz_[e]) * layer.duration;
        dirty_ = true;
    }

  private:
    void
    refresh()
    {
        double max_acc = 0.0;
        for (double a : acc_)
            max_acc = std::max(max_acc, a);
        for (size_t e = 0; e < zz_.size(); ++e) {
            const double boost =
                max_acc > 0.0
                    ? 1.0 + history_weight_ * acc_[e] / max_acc
                    : 1.0;
            weights_[e] = std::abs(zz_[e]) * boost;
        }
        dirty_ = false;
    }

    const SuppressionSolver &solver_;
    SuppressionOptions sopt_;
    const std::vector<double> &zz_;
    std::vector<double> acc_;
    std::vector<double> weights_;
    double history_weight_;
    bool dirty_ = true; ///< weights need (re)computation before use
};

} // namespace

Schedule
cycleAwareSchedule(const ckt::QuantumCircuit &native,
                   const dev::Device &dev, const GateDurations &durations,
                   const CycleOptions &opt)
{
    return cycleAwareSchedule(native, dev, durations, opt,
                              ZzxDeviceTables(dev));
}

Schedule
cycleAwareSchedule(const ckt::QuantumCircuit &native,
                   const dev::Device &dev, const GateDurations &durations,
                   const CycleOptions &opt_in, const ZzxDeviceTables &tables)
{
    const ZzxOptions opt = resolveZzxOptions(opt_in.zzx, dev);
    CycleCutOracle oracle(tables.solver, opt.suppression, tables.zz,
                          opt_in.history_weight);
    return scheduleByCuts(native, dev, durations, opt, tables.dist,
                          oracle);
}

} // namespace qzz::core
