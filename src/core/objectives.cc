#include "core/objectives.h"

#include "common/error.h"
#include "linalg/fidelity.h"

namespace qzz::core {

using la::CMatrix;

namespace {

/** sz (x) I on the |ab> basis. */
const CMatrix &
szI()
{
    static const CMatrix m =
        la::kron(la::pauliZ(), la::identity2());
    return m;
}

/** I (x) sz on the |ab> basis. */
const CMatrix &
Isz()
{
    static const CMatrix m =
        la::kron(la::identity2(), la::pauliZ());
    return m;
}

} // namespace

double
firstOrderCrosstalkNorm(const pulse::PulseProgram &p, double lambda_intra,
                        double dt)
{
    ode::PropagationOptions opt;
    opt.dt = dt;
    if (!p.two_qubit) {
        auto res = ode::propagateWithDyson(oneQubitBlockH(p, 0.0),
                                           {la::pauliZ()}, 2, 0.0,
                                           p.duration, opt);
        return res.firstOrder[0].frobeniusNorm() / p.duration;
    }
    auto res = ode::propagateWithDyson(
        twoQubitBlockH(p, 0.0, 0.0, lambda_intra), {szI(), Isz()}, 4,
        0.0, p.duration, opt);
    return (res.firstOrder[0].frobeniusNorm() +
            res.firstOrder[1].frobeniusNorm()) /
           p.duration;
}

double
pertLossOneQubit(const pulse::PulseProgram &p, const CMatrix &target,
                 const ObjectiveConfig &cfg)
{
    ode::PropagationOptions opt;
    opt.dt = cfg.dt;
    auto res = ode::propagateWithDyson(oneQubitBlockH(p, 0.0),
                                       {la::pauliZ()}, 2, 0.0,
                                       p.duration, opt);
    const double xtalk =
        res.firstOrder[0].frobeniusNorm() / p.duration;
    const double gate = 1.0 - la::averageGateFidelity(res.u, target);
    return xtalk + cfg.weight * gate;
}

double
pertLossTwoQubit(const pulse::PulseProgram &p, const CMatrix &target,
                 const ObjectiveConfig &cfg)
{
    ode::PropagationOptions opt;
    opt.dt = cfg.dt;
    // First-order terms live in the U~2 frame (H_ctrl + intra ZZ).
    auto res = ode::propagateWithDyson(
        twoQubitBlockH(p, 0.0, 0.0, cfg.lambda_intra), {szI(), Isz()},
        4, 0.0, p.duration, opt);
    const double xtalk = (res.firstOrder[0].frobeniusNorm() +
                          res.firstOrder[1].frobeniusNorm()) /
                         p.duration;
    // The gate constraint U_ctrl(T) = U2 uses the bare drive (no
    // intra crosstalk).
    CMatrix u_ctrl = ode::propagate(twoQubitBlockH(p, 0.0, 0.0, 0.0), 4,
                                    0.0, p.duration, opt);
    const double gate = 1.0 - la::averageGateFidelity(u_ctrl, target);
    return xtalk + cfg.weight * gate;
}

double
optCtrlLossOneQubit(const pulse::PulseProgram &p, const CMatrix &target,
                    const ObjectiveConfig &cfg)
{
    require(!cfg.lambda_samples.empty(),
            "optCtrlLossOneQubit: no lambda samples");
    double loss = 0.0;
    for (double lambda : cfg.lambda_samples)
        loss += oneQubitCrosstalkInfidelity(p, target, lambda, {},
                                            cfg.dt);
    loss /= double(cfg.lambda_samples.size());
    loss += cfg.weight * (1.0 - gateFidelity(p, target, cfg.dt));
    return loss;
}

double
optCtrlLossTwoQubit(const pulse::PulseProgram &p, const CMatrix &target,
                    const ObjectiveConfig &cfg)
{
    require(!cfg.lambda_samples.empty(),
            "optCtrlLossTwoQubit: no lambda samples");
    double loss = 0.0;
    for (double lambda : cfg.lambda_samples)
        loss += twoQubitCrosstalkInfidelity(p, lambda, lambda,
                                            cfg.lambda_intra, cfg.dt);
    loss /= double(cfg.lambda_samples.size());
    loss += cfg.weight * (1.0 - gateFidelity(p, target, cfg.dt));
    return loss;
}

} // namespace qzz::core
