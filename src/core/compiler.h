/**
 * @file
 * Stage-based compilation API.
 *
 * The paper's framework (Fig. 2) is a four-stage pipeline — route to
 * the topology, lower to the native gate set, schedule, attach pulses.
 * This header makes that pipeline explicit and extensible:
 *
 *  - Pass            one pipeline stage operating on a CompileContext.
 *  - CompileContext  the state threaded through the passes (segments,
 *                    layout, native circuit, schedule, diagnostics,
 *                    status channel).
 *  - Scheduler       scheduling-policy interface (ParScheduler,
 *                    ZzxScheduler; open to new policies such as
 *                    cycle-aware variants).
 *  - PulseProvider   pulse-library source with shared ownership
 *                    (process-wide calibration cache, or a fixed
 *                    injected library, e.g. a DD-substituted one).
 *  - Compiler        an immutable pipeline built by CompilerBuilder;
 *                    compile() / compileSegments() / compileBatch().
 *
 * Passes report failures through the context's structured status
 * channel instead of throwing; the legacy compileForDevice() /
 * compileSegmentsForDevice() shims in core/framework.h translate a
 * failed status back into fatal()/panic() for old callers.
 *
 * A Compiler is immutable after build() and safe to share across
 * threads: compileBatch() runs one CompileContext per circuit on a
 * small thread pool while sharing the device routing tables and the
 * pulse library.
 */

#ifndef QZZ_CORE_COMPILER_H
#define QZZ_CORE_COMPILER_H

#include <memory>
#include <string>
#include <vector>

#include "core/cycle_sched.h"
#include "core/exact_sched.h"
#include "core/framework.h"

namespace qzz::core {

// ---------------------------------------------------------------------------
// Diagnostics and status channel
// ---------------------------------------------------------------------------

/** Wall time and work counters of one executed pass. */
struct StageDiagnostics
{
    /** Pass name (e.g. "route", "schedule"). */
    std::string stage;
    /** Wall-clock time spent in the pass (ms). */
    double wall_ms = 0.0;
    /** Offset of the pass start from the start of the pass pipeline
     *  (ms) — wall_ms laid out on a common timeline, so callers (the
     *  service's trace spans) can reconstruct per-pass intervals. */
    double start_ms = 0.0;
    /** Schedule layers appended by the pass (schedule stage). */
    int layers_added = 0;
    /** Native gates appended by the pass (lower stage). */
    int gates_added = 0;
};

/** Per-compilation diagnostics accumulated across the pipeline. */
struct CompileDiagnostics
{
    /** One entry per executed pass, in execution order. */
    std::vector<StageDiagnostics> stages;
    /** End-to-end compile wall time (ms). */
    double total_ms = 0.0;
    /** SWAPs inserted by routing (summed over segments). */
    int swaps_inserted = 0;
    /** Non-virtual layer count of the final schedule. */
    int physical_layers = 0;
    /** Mean unsuppressed-coupling count per physical layer. */
    double mean_nc = 0.0;
    /** Worst largest-region size over physical layers. */
    int max_nq = 0;
    /** Total schedule duration (ns). */
    double execution_time_ns = 0.0;
    /** Mean calibrated residual ZZ rate per physical layer (rad/ns):
     *  the NC metric weighted by the device snapshot's per-edge ZZ
     *  strengths (see core::residualZzRate()). */
    double mean_residual_zz = 0.0;
};

/** Outcome category of a compilation. */
enum class CompileStatusCode
{
    Ok,           ///< compilation succeeded
    InvalidInput, ///< caller error (bad circuit/options); maps to fatal()
    Internal,     ///< violated library invariant; maps to panic()
};

/** Structured error/status channel carried by CompileContext. */
struct CompileStatus
{
    CompileStatusCode code = CompileStatusCode::Ok;
    /** Name of the pass that failed (empty on success or validation). */
    std::string pass;
    /** Human-readable failure description. */
    std::string message;

    bool ok() const { return code == CompileStatusCode::Ok; }
};

// ---------------------------------------------------------------------------
// Scheduler interface
// ---------------------------------------------------------------------------

/**
 * Opaque per-device state prepared once per Compiler and reused by
 * every compile (and every batch worker).  Implementations must be
 * immutable after prepare() so they can be shared across threads.
 */
class SchedulerState
{
  public:
    virtual ~SchedulerState() = default;
};

/**
 * A scheduling policy.  Implementations must be stateless with
 * respect to individual compilations: schedule() is const and may be
 * called concurrently from compileBatch() workers.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Display name, e.g. "ParSched" / "ZZXSched". */
    virtual std::string name() const = 0;

    /**
     * Precompute per-device tables (all-pairs distances, suppression
     * solver, ...) shared by every subsequent schedule() call.  May
     * return nullptr when the policy needs none.
     */
    virtual std::shared_ptr<const SchedulerState>
    prepare(const dev::Device &dev) const
    {
        (void)dev;
        return nullptr;
    }

    /**
     * Layer a native circuit.
     *
     * @param native    native-gate circuit over the device's qubits.
     * @param dev       target device.
     * @param durations per-gate durations from the pulse library.
     * @param state     the result of prepare() for @p dev (may be
     *                  nullptr when called outside a Compiler).
     */
    virtual Schedule schedule(const ckt::QuantumCircuit &native,
                              const dev::Device &dev,
                              const GateDurations &durations,
                              const SchedulerState *state) const = 0;
};

/** ASAP maximal-parallelism baseline (wraps parSchedule()). */
class ParScheduler final : public Scheduler
{
  public:
    std::string name() const override { return "ParSched"; }
    Schedule schedule(const ckt::QuantumCircuit &native,
                      const dev::Device &dev,
                      const GateDurations &durations,
                      const SchedulerState *state) const override;
};

/**
 * The paper's ZZ-aware scheduler (wraps zzxSchedule()), optionally in
 * its calibration-weighted variant (SchedPolicy::ZzxWeighted, wraps
 * zzxWeightedSchedule()): the weighted flag swaps the suppression
 * objective to calibrated residual ZZ with the classic order as
 * tie-break, so uniform snapshots schedule bit-identically.
 */
class ZzxScheduler final : public Scheduler
{
  public:
    explicit ZzxScheduler(ZzxOptions opt = {}, bool weighted = false)
        : opt_(opt), weighted_(weighted)
    {
    }

    std::string name() const override
    {
        return weighted_ ? "ZzxWeighted" : "ZZXSched";
    }
    /** Builds the shared ZzxDeviceTables (distances + solver + ZZ). */
    std::shared_ptr<const SchedulerState>
    prepare(const dev::Device &dev) const override;
    Schedule schedule(const ckt::QuantumCircuit &native,
                      const dev::Device &dev,
                      const GateDurations &durations,
                      const SchedulerState *state) const override;

    const ZzxOptions &options() const { return opt_; }
    bool weighted() const { return weighted_; }

  private:
    ZzxOptions opt_;
    bool weighted_ = false;
};

/**
 * Solver-optimal baseline (SchedPolicy::Exact, wraps exactSchedule()):
 * every layer cut comes from the branch-and-bound ExactCutSolver.
 * Exponential worst case — meant for the small devices where the
 * heuristics are benchmarked against it.
 */
class ExactScheduler final : public Scheduler
{
  public:
    explicit ExactScheduler(ZzxOptions opt = {}) : opt_(opt) {}

    std::string name() const override { return "ExactSched"; }
    /** Builds the shared ExactDeviceTables (distances + solver + ZZ). */
    std::shared_ptr<const SchedulerState>
    prepare(const dev::Device &dev) const override;
    Schedule schedule(const ckt::QuantumCircuit &native,
                      const dev::Device &dev,
                      const GateDurations &durations,
                      const SchedulerState *state) const override;

    const ZzxOptions &options() const { return opt_; }

  private:
    ZzxOptions opt_;
};

/**
 * Cycle-aware policy (SchedPolicy::CycleAware, wraps
 * cycleAwareSchedule()): the calibration-weighted search with per-edge
 * accumulated-ZZ state carried across layer boundaries.
 */
class CycleScheduler final : public Scheduler
{
  public:
    explicit CycleScheduler(ZzxOptions opt = {}) { opt_.zzx = opt; }
    explicit CycleScheduler(CycleOptions opt) : opt_(opt) {}

    std::string name() const override { return "CycleAware"; }
    /** Builds the shared ZzxDeviceTables (distances + solver + ZZ). */
    std::shared_ptr<const SchedulerState>
    prepare(const dev::Device &dev) const override;
    Schedule schedule(const ckt::QuantumCircuit &native,
                      const dev::Device &dev,
                      const GateDurations &durations,
                      const SchedulerState *state) const override;

    const CycleOptions &options() const { return opt_; }

  private:
    CycleOptions opt_;
};

/** Scheduler implementing a SchedPolicy enum value. */
std::shared_ptr<const Scheduler> makeScheduler(SchedPolicy policy,
                                               const ZzxOptions &zzx = {});

// ---------------------------------------------------------------------------
// Pulse providers
// ---------------------------------------------------------------------------

/**
 * Source of pulse libraries with explicit shared ownership: the
 * returned shared_ptr keeps the library alive for as long as any
 * CompiledProgram references it, independent of process-global
 * caches.  library() must be thread-safe (compileBatch() calls it
 * from worker threads).
 */
class PulseProvider
{
  public:
    virtual ~PulseProvider() = default;

    /** The library for @p method; never nullptr on success. */
    virtual std::shared_ptr<const pulse::PulseLibrary>
    library(PulseMethod method) = 0;
};

/**
 * The default provider: the process-wide memo backed by the on-disk
 * calibration store (see getPulseLibraryShared()).
 */
class CachedPulseProvider final : public PulseProvider
{
  public:
    std::shared_ptr<const pulse::PulseLibrary>
    library(PulseMethod method) override;
};

/**
 * Serves one fixed library regardless of the requested method.  Used
 * to inject substituted libraries (e.g. substituteIdentity() DD
 * sequences) or experimental calibrations into the pipeline.
 */
class FixedPulseProvider final : public PulseProvider
{
  public:
    explicit FixedPulseProvider(pulse::PulseLibrary lib)
        : lib_(std::make_shared<const pulse::PulseLibrary>(
              std::move(lib)))
    {
    }
    explicit FixedPulseProvider(
        std::shared_ptr<const pulse::PulseLibrary> lib)
        : lib_(std::move(lib))
    {
    }

    std::shared_ptr<const pulse::PulseLibrary>
    library(PulseMethod method) override
    {
        (void)method;
        return lib_;
    }

  private:
    std::shared_ptr<const pulse::PulseLibrary> lib_;
};

/** A fresh CachedPulseProvider. */
std::shared_ptr<PulseProvider> defaultPulseProvider();

// ---------------------------------------------------------------------------
// CompileContext and Pass
// ---------------------------------------------------------------------------

/**
 * The state a compilation threads through its passes.  Inputs
 * (device, options, services) are immutable references owned by the
 * Compiler; working state is private to this context, so concurrent
 * compilations never share a context.
 */
class CompileContext
{
  public:
    CompileContext(const dev::Device &device, const CompileOptions &opt,
                   const Scheduler &scheduler,
                   const SchedulerState *scheduler_state,
                   PulseProvider &provider,
                   std::vector<ckt::QuantumCircuit> segments);

    /** @name Immutable inputs and services
     *  @{ */
    const dev::Device &device;
    const CompileOptions &options;
    const Scheduler &scheduler;
    const SchedulerState *scheduler_state;
    PulseProvider &provider;
    /** @} */

    /** @name Working state
     *  @{ */
    /** Barrier-separated input segments (one for a plain compile). */
    std::vector<ckt::QuantumCircuit> segments;
    /** Routed segments over physical qubits (set by RoutePass). */
    std::vector<ckt::QuantumCircuit> routed_segments;
    /** Native-gate segments (set by LowerPass). */
    std::vector<ckt::QuantumCircuit> native_segments;
    /** final_layout[logical] = physical qubit after the last segment. */
    std::vector<int> final_layout;
    /** SWAPs inserted so far. */
    int swaps_inserted = 0;
    /** Per-gate durations; valid once ensureLibrary() has run. */
    GateDurations durations;
    /** The program being assembled (native, schedule, library). */
    CompiledProgram program;
    /** @} */

    /** Structured error/status channel (replaces fatal()). */
    CompileStatus status;
    /** Per-stage diagnostics (wall time, layer/gate counts). */
    CompileDiagnostics diagnostics;

    /** Record a caller-input failure; later passes are skipped. */
    void fail(std::string pass, std::string message,
              CompileStatusCode code = CompileStatusCode::InvalidInput);

    /**
     * Fetch the pulse library from the provider (once) and derive the
     * gate durations from it.  Returns nullptr — with the status
     * channel set — when the provider has no library to give.
     */
    const pulse::PulseLibrary *ensureLibrary();
};

/**
 * One pipeline stage.  run() must be const and reentrant — pass
 * objects are shared between the compilations of a batch.  Failures
 * are reported via ctx.fail(); exceptions thrown by qzz primitives
 * (UserError / InternalError) are converted to a failed status by the
 * pass runner.
 */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Short stage name used in diagnostics, e.g. "route". */
    virtual std::string name() const = 0;

    /** Execute the stage on @p ctx. */
    virtual void run(CompileContext &ctx) const = 0;
};

/** Route every segment to the topology, threading the layout. */
class RoutePass final : public Pass
{
  public:
    std::string name() const override { return "route"; }
    void run(CompileContext &ctx) const override;
};

/** Lower routed segments to the native gate set. */
class LowerPass final : public Pass
{
  public:
    std::string name() const override { return "lower"; }
    void run(CompileContext &ctx) const override;
};

/** Layer each native segment with the configured Scheduler. */
class SchedulePass final : public Pass
{
  public:
    std::string name() const override { return "schedule"; }
    void run(CompileContext &ctx) const override;
};

/** Attach the pulse library to the compiled program. */
class AttachPulsesPass final : public Pass
{
  public:
    std::string name() const override { return "pulses"; }
    void run(CompileContext &ctx) const override;
};

/** The paper's pipeline: route, lower, schedule, attach pulses. */
std::vector<std::shared_ptr<const Pass>> defaultPassPipeline();

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

/** The outcome of one compilation. */
struct CompileResult
{
    /** Valid only when status.ok(). */
    CompiledProgram program;
    CompileDiagnostics diagnostics;
    CompileStatus status;

    bool ok() const { return status.ok(); }
};

/**
 * Surface a failed CompileResult with the legacy throwing behavior —
 * InvalidInput via fatal() (UserError), Internal via panic()
 * (InternalError) — or return the program on success.  Used by the
 * compileForDevice() shims and the exp:: evaluators.
 */
CompiledProgram unwrapOrThrow(CompileResult result);

/** compileBatch() controls. */
struct BatchOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    int num_threads = 0;
};

/** The outcome of a batch compilation. */
struct BatchResult
{
    /** One result per input circuit, in input order. */
    std::vector<CompileResult> results;
    /** End-to-end batch wall time (ms). */
    double wall_ms = 0.0;
    /** Resolved thread cap applied to the batch (the shared pool may
     *  hold fewer workers on small machines). */
    int threads_used = 0;

    /** True when every circuit compiled successfully. */
    bool allOk() const;
};

/**
 * An immutable compilation pipeline bound to one device and one
 * configuration.  Built by CompilerBuilder; safe to share across
 * threads.  Per-device tables (scheduler state) are precomputed at
 * build time and reused by every compile.
 */
class Compiler
{
  public:
    /** Compile one circuit. */
    CompileResult compile(const ckt::QuantumCircuit &circuit) const;

    /**
     * Compile a barrier-separated circuit: each segment is routed,
     * lowered and scheduled independently, with the qubit layout
     * threaded from one segment to the next; the schedule is the
     * concatenation (Sec. 8 composition with outer crosstalk passes).
     */
    CompileResult
    compileSegments(std::vector<ckt::QuantumCircuit> segments) const;

    /**
     * Compile @p circuits concurrently on a thread pool.  Routing
     * tables, scheduler state and the pulse library are shared; each
     * circuit gets its own CompileContext, and results land in input
     * order.  Output is identical to calling compile() sequentially.
     */
    BatchResult
    compileBatch(const std::vector<ckt::QuantumCircuit> &circuits,
                 const BatchOptions &opt = {}) const;

    const dev::Device &device() const { return device_; }
    const CompileOptions &options() const { return options_; }
    const Scheduler &scheduler() const { return *scheduler_; }
    const std::vector<std::shared_ptr<const Pass>> &passes() const
    {
        return passes_;
    }

  private:
    friend class CompilerBuilder;
    Compiler(dev::Device device, CompileOptions options,
             std::shared_ptr<const Scheduler> scheduler,
             std::shared_ptr<PulseProvider> provider,
             std::vector<std::shared_ptr<const Pass>> passes);

    dev::Device device_;
    CompileOptions options_;
    std::shared_ptr<const Scheduler> scheduler_;
    std::shared_ptr<const SchedulerState> scheduler_state_;
    std::shared_ptr<PulseProvider> provider_;
    std::vector<std::shared_ptr<const Pass>> passes_;
};

/**
 * Fluent builder for Compiler.
 *
 * @code
 *   core::Compiler c = core::CompilerBuilder(device)
 *                          .pulseMethod(core::PulseMethod::Pert)
 *                          .schedPolicy(core::SchedPolicy::Zzx)
 *                          .build();
 *   core::CompileResult r = c.compile(circuit);
 * @endcode
 *
 * Custom Scheduler / PulseProvider implementations override the
 * enum-selected defaults; addPass() appends extra stages after the
 * default pipeline, passes() replaces it wholesale.
 */
class CompilerBuilder
{
  public:
    explicit CompilerBuilder(dev::Device device)
        : device_(std::move(device))
    {
    }

    /** Adopt a whole CompileOptions (pulse, sched, zzx). */
    CompilerBuilder &options(const CompileOptions &opt);
    CompilerBuilder &pulseMethod(PulseMethod m);
    CompilerBuilder &schedPolicy(SchedPolicy p);
    CompilerBuilder &zzxOptions(const ZzxOptions &opt);

    /** Inject a scheduling policy (overrides schedPolicy()). */
    CompilerBuilder &scheduler(std::shared_ptr<const Scheduler> s);
    /** Inject a pulse source (overrides pulseMethod() lookup). */
    CompilerBuilder &pulseProvider(std::shared_ptr<PulseProvider> p);
    /** Append a custom stage after the current pipeline. */
    CompilerBuilder &addPass(std::shared_ptr<const Pass> pass);
    /** Replace the pipeline wholesale. */
    CompilerBuilder &
    passes(std::vector<std::shared_ptr<const Pass>> passes);

    /** Assemble the Compiler (precomputes per-device tables). */
    Compiler build() const;

  private:
    dev::Device device_;
    CompileOptions options_;
    std::shared_ptr<const Scheduler> scheduler_;
    std::shared_ptr<PulseProvider> provider_;
    std::vector<std::shared_ptr<const Pass>> extra_passes_;
    std::vector<std::shared_ptr<const Pass>> replaced_passes_;
    bool replace_pipeline_ = false;
};

} // namespace qzz::core

#endif // QZZ_CORE_COMPILER_H
