/**
 * @file
 * Basic-region Hamiltonian models (Sec. 4 of the paper) and their
 * exact block decomposition.
 *
 * Spectator qubits are undriven and couple to the region only through
 * diagonal sigma_z terms, so the region Hamiltonian is block-diagonal
 * over spectator basis states:
 *
 *  - single-qubit region (Fig. 6): for spectator eigenvalue z = +-1,
 *      H_z(t) = Ox(t) sx + Oy(t) sy + z * lambda * sz        (2x2)
 *  - two-qubit region (Fig. 7): for left/right spectators (za, zb),
 *      H_{za,zb}(t) = H_ctrl(t) + za*la sz(x)I + zb*lb I(x)sz
 *                     + lab sz(x)sz                          (4x4)
 *    with H_ctrl = drives on a, b plus the coupling channel
 *    multiplying H_Coupling = sz (x) sx (cross resonance).
 *
 * This makes small-system pulse optimization exact *and* cheap, and is
 * the computational backbone of Figs. 16-19.
 */

#ifndef QZZ_CORE_REGIONS_H
#define QZZ_CORE_REGIONS_H

#include "linalg/fidelity.h"
#include "ode/propagator.h"
#include "pulse/program.h"

namespace qzz::core {

/** Drive imperfections for the robustness study (Fig. 17). */
struct DriveNoise
{
    /** Carrier frequency detuning (rad/ns); adds (detuning/2) sz per
     *  driven qubit. */
    double detuning = 0.0;
    /** Relative amplitude error; all drive channels scale by
     *  (1 + amplitude_error). */
    double amplitude_error = 0.0;
};

/**
 * Hamiltonian of one driven qubit with a static sigma_z shift.
 *
 * @param p      the pulse program (x_a / y_a channels used).
 * @param zshift coefficient of sigma_z (spectator field), rad/ns.
 * @param noise  drive imperfections.
 */
ode::HamiltonianFn oneQubitBlockH(const pulse::PulseProgram &p,
                                  double zshift,
                                  const DriveNoise &noise = {});

/**
 * Hamiltonian of a driven pair with static sigma_z shifts.
 *
 * @param p         two-qubit pulse program.
 * @param shift_a   sz (x) I coefficient (left spectator field).
 * @param shift_b   I (x) sz coefficient (right spectator field).
 * @param lambda_ab intra-pair ZZ strength.
 * @param noise     drive imperfections.
 */
ode::HamiltonianFn twoQubitBlockH(const pulse::PulseProgram &p,
                                  double shift_a, double shift_b,
                                  double lambda_ab,
                                  const DriveNoise &noise = {});

/**
 * Crosstalk-suppression infidelity of a single-qubit pulse (Fig. 16):
 * 1 - F_avg(U_full, target (x) I) on the qubit + one-spectator system,
 * computed exactly from the two spectator blocks.
 *
 * @param p      the pulse.
 * @param target the intended 2x2 gate.
 * @param lambda spectator coupling strength (rad/ns).
 * @param noise  drive imperfections.
 * @param dt     integrator step (ns).
 */
double oneQubitCrosstalkInfidelity(const pulse::PulseProgram &p,
                                   const la::CMatrix &target,
                                   double lambda,
                                   const DriveNoise &noise = {},
                                   double dt = 0.01);

/**
 * Crosstalk-suppression infidelity of a two-qubit pulse on the
 * 1-2-3-4 chain of Fig. 19: 1 - F_avg(U_full, I (x) U~2 (x) I), where
 * U~2 is the pulse's own evolution including the intra-pair coupling
 * at @p lambda_ab (the paper's desired evolution).
 *
 * @param p         the two-qubit pulse.
 * @param lambda_a  coupling 1-2 (left spectator).
 * @param lambda_b  coupling 3-4 (right spectator).
 * @param lambda_ab intra-pair coupling 2-3.
 * @param dt        integrator step (ns).
 */
double twoQubitCrosstalkInfidelity(const pulse::PulseProgram &p,
                                   double lambda_a, double lambda_b,
                                   double lambda_ab, double dt = 0.01);

/**
 * Gate-implementation fidelity F_avg(U_ctrl(T), target) of a pulse in
 * the absence of any crosstalk.
 */
double gateFidelity(const pulse::PulseProgram &p,
                    const la::CMatrix &target, double dt = 0.01);

/** Evolution of a two-qubit pulse including intra-pair crosstalk
 *  (the paper's U~2(T)). */
la::CMatrix tildeU2(const pulse::PulseProgram &p, double lambda_ab,
                    double dt = 0.01);

} // namespace qzz::core

#endif // QZZ_CORE_REGIONS_H
