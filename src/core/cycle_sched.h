/**
 * @file
 * Cycle-aware ZZ scheduling (ROADMAP item 2b; arXiv 2503.13204).
 *
 * The per-cut policies (ZZXSched, ZzxWeighted, Exact) score every
 * layer independently, so on a topology where some residual crosstalk
 * is unavoidable (any non-bipartite device) they keep choosing the
 * *same* optimal cut — and the same unlucky couplings accumulate ZZ
 * phase layer after layer while the rest stay clean.  Coherent errors
 * compound quadratically, so concentrating the residual on a few
 * edges is the worst possible distribution of a fixed per-layer
 * budget.
 *
 * The cycle-aware policy carries per-edge *accumulated* ZZ phase
 * (sum over committed layers of |zz[e]| x layer duration on the
 * layers that left e unsuppressed) across layer boundaries.  Each new
 * layer is cut with the weighted suppression search, but an edge's
 * weight is its calibrated rate boosted by its accumulated debt:
 *
 *     w[e] = |zz[e]| * (1 + history_weight * acc[e] / max_a acc[a])
 *
 * Edges that have already absorbed the most phase become the most
 * expensive to leave on, so the cut rotates the residual across the
 * device instead of revisiting the same couplings.  With
 * history_weight = 0 (or while nothing has accumulated — e.g. every
 * layer of a bipartite 1Q-only schedule) the weights reduce to
 * |zz[e]| and the policy reproduces zzxWeightedSchedule()
 * bit-identically.
 */

#ifndef QZZ_CORE_CYCLE_SCHED_H
#define QZZ_CORE_CYCLE_SCHED_H

#include "core/zzx_sched.h"

namespace qzz::core {

/** Options of the cycle-aware policy. */
struct CycleOptions
{
    /** The underlying walk and requirement-R knobs.  The suppression
     *  edge_zz pointer is ignored: the policy derives its own per-edge
     *  weights from the device snapshot and the accumulated state. */
    ZzxOptions zzx;
    /**
     * Strength of the cross-layer term: how much an edge's weight
     * grows when it holds the largest accumulated phase (its boost
     * factor is 1 + history_weight at the maximum, 1 at zero).  0
     * disables history and reproduces ZzxWeighted.
     */
    double history_weight = 1.0;
};

/**
 * Schedule a native circuit with cycle-aware layering: the ZZX
 * frontier walk with per-edge accumulated-ZZ state carried across
 * layer boundaries.  The suppression requirement R is enforced
 * exactly as in zzxSchedule().
 */
Schedule cycleAwareSchedule(const ckt::QuantumCircuit &native,
                            const dev::Device &dev,
                            const GateDurations &durations,
                            const CycleOptions &opt = {});

/** Same, reusing precomputed per-device tables (the per-edge ZZ rates
 *  are taken from @p tables). */
Schedule cycleAwareSchedule(const ckt::QuantumCircuit &native,
                            const dev::Device &dev,
                            const GateDurations &durations,
                            const CycleOptions &opt,
                            const ZzxDeviceTables &tables);

/**
 * Per-edge accumulated ZZ phase of a finished schedule (rad): for
 * each edge, the sum over physical layers that left it unsuppressed
 * of |zz[e]| x layer duration.  The quantity the cycle-aware policy
 * balances — its maximum over edges is the figure of merit.
 */
std::vector<double> accumulatedZz(const Schedule &schedule,
                                  const std::vector<double> &zz);

} // namespace qzz::core

#endif // QZZ_CORE_CYCLE_SCHED_H
