#include "core/suppression.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "graph/matching.h"
#include "graph/shortest_paths.h"

namespace qzz::core {

using graph::Graph;
using graph::Path;

std::vector<char>
SuppressionResult::sideMask(const std::vector<int> &q) const
{
    int s_value = 1;
    if (!q.empty())
        s_value = side[q[0]];
    std::vector<char> mask(side.size(), 0);
    for (size_t v = 0; v < side.size(); ++v)
        mask[v] = side[v] == s_value ? 1 : 0;
    return mask;
}

SuppressionSolver::SuppressionSolver(const graph::Topology &topo)
    : emb_(topo.embedding()), dual_(graph::buildDual(emb_))
{
}

std::optional<std::vector<int>>
SuppressionSolver::induceCut(const std::vector<char> &pairing_edges,
                             const std::vector<char> &eq_edges) const
{
    // Add Edges + Cut Inducing: contract the primal duals of the
    // pairing plus E_Q (ids coincide between primal and dual).
    std::vector<char> contract(pairing_edges);
    for (size_t e = 0; e < contract.size(); ++e)
        if (eq_edges[e])
            contract[e] = 1;
    return emb_.graph().twoColorAfterContraction(contract);
}

SuppressionResult
SuppressionSolver::solve(const std::vector<int> &q,
                         const SuppressionOptions &opt) const
{
    const Graph &g = emb_.graph();
    const Graph &dual = dual_.g;
    const int m = g.numEdges();

    for (int v : q)
        require(v >= 0 && v < g.numVertices(),
                "SuppressionSolver::solve: qubit out of range");

    // Calibration weighting: when the caller supplied per-edge ZZ
    // rates, the primary objective replaces NC by the sum of
    // |zz[e]| / max|zz| over unsuppressed edges.  Magnitudes, not
    // signed rates: transmon static ZZ is conventionally negative,
    // and a signed sum would *reward* leaving the strongest couplers
    // on.  Dividing each edge by the strongest coupler keeps the
    // weighted count on the NC scale (and makes every weight exactly
    // 1.0 on a uniform snapshot, so the weighted objective
    // degenerates bit-identically to the classic one).  A snapshot
    // without a nonzero finite rate has nothing to weigh by; fall
    // back to uniform counting.  Validated here — before any
    // fallback return — so a wrong-sized vector always throws.
    const std::vector<double> *edge_zz = opt.edge_zz;
    double zz_ref = 0.0;
    if (edge_zz != nullptr) {
        require(int(edge_zz->size()) == m,
                "SuppressionSolver::solve: edge_zz size does not match "
                "the topology's edge count");
        for (double rate : *edge_zz)
            if (std::isfinite(rate) && std::abs(rate) > zz_ref)
                zz_ref = std::abs(rate);
        if (zz_ref <= 0.0)
            edge_zz = nullptr;
    }

    // E_Q: topology edges with both endpoints in Q.
    std::vector<char> in_q(size_t(g.numVertices()), 0);
    for (int v : q)
        in_q[v] = 1;
    std::vector<char> eq(size_t(m), 0);
    for (const graph::Edge &e : g.edges())
        if (in_q[e.u] && in_q[e.v])
            eq[e.id] = 1;

    // Step 1 (Delete Edges): block E*_Q in the dual.
    const std::vector<char> &blocked = eq;

    // Odd-degree vertices of the modified dual.  Self-loops add two to
    // the degree, so they never change parity.
    std::vector<int> deg(size_t(dual.numVertices()), 0);
    for (const graph::Edge &e : dual.edges()) {
        if (blocked[e.id])
            continue;
        deg[e.u] += 1;
        deg[e.v] += 1; // self-loops counted twice on purpose
    }
    std::vector<int> odd;
    for (int v = 0; v < dual.numVertices(); ++v)
        if (deg[v] % 2 == 1)
            odd.push_back(v);
    ensure(odd.size() % 2 == 0, "odd-degree vertex count must be even");

    const double inf = std::numeric_limits<double>::infinity();

    auto make_fallback = [&]() {
        SuppressionResult res;
        res.side.assign(size_t(g.numVertices()), 0);
        for (int v : q)
            res.side[v] = 1;
        res.metrics = evaluateCut(g, res.side);
        res.constraint_ok = true;
        res.used_fallback = true;
        return res;
    };

    // Step 2 (Vertex Pairing): max-weight matching with w = L - d.
    std::vector<std::pair<int, int>> matched;
    if (!odd.empty()) {
        std::vector<std::vector<int>> dist;
        for (int u : odd) {
            // BFS in the modified dual.
            std::vector<int> d(size_t(dual.numVertices()), -1);
            d[u] = 0;
            std::vector<int> queue{u};
            for (size_t head = 0; head < queue.size(); ++head) {
                int v = queue[head];
                for (const auto &a : dual.neighbors(v)) {
                    if (blocked[a.edge] || d[a.to] != -1)
                        continue;
                    d[a.to] = d[v] + 1;
                    queue.push_back(a.to);
                }
            }
            dist.push_back(std::move(d));
        }
        int max_d = 0;
        bool disconnected = false;
        for (size_t i = 0; i < odd.size(); ++i)
            for (size_t j = 0; j < odd.size(); ++j) {
                const int d = dist[i][odd[j]];
                if (d < 0)
                    disconnected = true;
                else
                    max_d = std::max(max_d, d);
            }
        const double big = double(max_d + 1);
        auto weight = [&](int i, int j) {
            const int d = dist[i][odd[j]];
            return d < 0 ? -1e9 : big - double(d);
        };
        auto matching =
            graph::maxWeightPerfectMatching(int(odd.size()), weight);
        for (auto [i, j] : matching.pairs) {
            if (disconnected && dist[i][odd[j]] < 0)
                return make_fallback();
            matched.emplace_back(odd[i], odd[j]);
        }
    }

    // Step 3 (Path Relaxing): top-k dual paths per pair.  buildPaths
    // is re-invoked with a wider k if no valid cut emerges (see the
    // adaptive retry below).
    std::vector<std::vector<Path>> path_lists;
    auto build_paths = [&](int k) {
        path_lists.clear();
        for (auto [u, v] : matched) {
            auto paths =
                graph::yenKShortestPaths(dual, u, v, k, blocked);
            if (paths.empty())
                return false;
            path_lists.push_back(std::move(paths));
        }
        return true;
    };
    if (!build_paths(opt.top_k))
        return make_fallback();

    // Candidate evaluation: XOR the selected paths, add E*_Q, induce a
    // cut, check the constraint, and compute the objective.  The
    // score orders lexicographically: the (possibly weighted) primary
    // objective first, the classic alpha * NQ + NC as tie-break — on
    // uniform weights both components coincide, so the order is the
    // classic one exactly.
    struct Evaluated
    {
        bool valid = false;
        std::vector<int> side;
        SuppressionMetrics metrics;
        double objective = 0.0;
        double tie = 0.0;
    };
    // The candidate loop below calls evaluate() once per (pair, path)
    // advance per sweep; the contraction mask is hoisted and reused so
    // the loop allocates nothing per candidate.
    std::vector<char> contract_buf(size_t(m), 0);
    auto evaluate = [&](const std::vector<size_t> &choice) {
        Evaluated ev;
        std::fill(contract_buf.begin(), contract_buf.end(), 0);
        for (size_t p = 0; p < path_lists.size(); ++p)
            for (int e : path_lists[p][choice[p]].edges)
                contract_buf[size_t(e)] ^= 1; // symmetric difference
        // Add Edges + Cut Inducing (see induceCut()): contract the
        // pairing plus E_Q in the primal.
        for (size_t e = 0; e < size_t(m); ++e)
            if (eq[e])
                contract_buf[e] = 1;
        auto colors = emb_.graph().twoColorAfterContraction(contract_buf);
        if (!colors)
            return ev;
        if (!q.empty() && !sameSide(*colors, q))
            return ev;
        ev.valid = true;
        ev.side = std::move(*colors);
        ev.metrics = evaluateCut(g, ev.side);
        ev.tie = ev.metrics.objective(opt.alpha);
        if (edge_zz != nullptr) {
            double weighted_nc = 0.0;
            for (size_t e = 0; e < size_t(m); ++e)
                if (ev.metrics.unsuppressed_edge[e])
                    weighted_nc += std::abs((*edge_zz)[e]) / zz_ref;
            ev.objective =
                opt.alpha * double(ev.metrics.nq) + weighted_nc;
        } else {
            ev.objective = ev.tie;
        }
        return ev;
    };
    auto scoreLess = [](double obj_a, double tie_a, double obj_b,
                        double tie_b) {
        return obj_a < obj_b || (obj_a == obj_b && tie_a < tie_b);
    };

    // Greedy relaxation (Algorithm 1, lines 11-21): advance one pair's
    // path at a time, keeping the best valid candidate, until no
    // candidate improves the objective.  Two robustness extensions:
    // when the current selection is invalid (the induced cut splits Q)
    // and every one-step relaxation is invalid too, advance blindly
    // through the path lists; and when a whole sweep at this k finds
    // nothing valid, retry with a wider top-k — longer pairing paths
    // often flip the component parities that separate Q.
    Evaluated best;
    for (int attempt = 0; attempt < 3; ++attempt) {
        std::vector<size_t> choice(path_lists.size(), 0);
        best = evaluate(choice);
        double best_obj = best.valid ? best.objective : inf;
        double best_tie = best.valid ? best.tie : inf;
        while (true) {
            int best_pair = -1;
            Evaluated best_cand;
            double best_cand_obj = inf;
            double best_cand_tie = inf;
            for (size_t p = 0; p < path_lists.size(); ++p) {
                if (choice[p] + 1 >= path_lists[p].size())
                    continue;
                // Probe the one-step advance in place (no copy).
                ++choice[p];
                Evaluated ev = evaluate(choice);
                --choice[p];
                if (!ev.valid)
                    continue;
                if (scoreLess(ev.objective, ev.tie, best_cand_obj,
                              best_cand_tie)) {
                    best_cand_obj = ev.objective;
                    best_cand_tie = ev.tie;
                    best_cand = std::move(ev);
                    best_pair = int(p);
                }
            }
            if (best_pair >= 0 && scoreLess(best_cand_obj, best_cand_tie,
                                            best_obj, best_tie)) {
                ++choice[size_t(best_pair)];
                best = std::move(best_cand);
                best_obj = best_cand_obj;
                best_tie = best_cand_tie;
                continue;
            }
            if (!best.valid) {
                // Forced advance: step the first pair that still has
                // unexplored paths (exhaustive for a single pair).
                bool advanced = false;
                for (size_t p = 0; p < path_lists.size(); ++p) {
                    if (choice[p] + 1 < path_lists[p].size()) {
                        ++choice[p];
                        advanced = true;
                        break;
                    }
                }
                if (!advanced)
                    break;
                Evaluated ev = evaluate(choice);
                if (ev.valid) {
                    best = std::move(ev);
                    best_obj = best.objective;
                    best_tie = best.tie;
                }
                continue;
            }
            break;
        }
        if (best.valid)
            break;
        // Widen the search before giving up.
        const int wider = opt.top_k + 3 * (attempt + 1);
        if (!build_paths(wider))
            break;
    }

    if (!best.valid)
        return make_fallback();

    SuppressionResult res;
    res.side = std::move(best.side);
    res.metrics = std::move(best.metrics);
    res.constraint_ok = true;
    res.used_fallback = false;
    return res;
}

} // namespace qzz::core
