/**
 * @file
 * The alpha-optimal suppression algorithm (Algorithm 1 of the paper).
 *
 * Given a planar device topology and the set Q of qubits that must be
 * driven together (the qubits of a layer's gates), find a cut (S, T)
 * with Q inside one partition minimizing alpha * NQ + NC, where the
 * remaining-set of the cut is the set of unsuppressed couplings.
 *
 * Pipeline (Secs. 5.1-5.2):
 *   1. Delete Edges   — remove E*_Q from the dual graph.
 *   2. Vertex Pairing — max-weight matching of odd-degree dual
 *      vertices with weights L - d(u, v).
 *   3. Path Relaxing  — per matched pair, consider the top-k shortest
 *      dual paths; greedily relax one pair at a time.
 *   4. Add Edges      — put E*_Q back into the odd-vertex pairing.
 *   5. Cut Inducing   — contract the pairing's primal edges and
 *      2-color the quotient.
 *   6. Check          — all of Q must land in one partition.
 *
 * Paths are combined by symmetric difference so that overlapping paths
 * still produce a valid T-join (odd-vertex pairing) of the dual.
 */

#ifndef QZZ_CORE_SUPPRESSION_H
#define QZZ_CORE_SUPPRESSION_H

#include <vector>

#include "core/cut.h"
#include "graph/planar.h"
#include "graph/topologies.h"

namespace qzz::core {

/** Tuning knobs for Algorithm 1. */
struct SuppressionOptions
{
    /** Relative importance of NQ vs NC (paper evaluation: 0.5). */
    double alpha = 0.5;
    /** Number of alternative shortest paths per pair (paper: 3). */
    int top_k = 3;
    /**
     * Optional per-edge calibrated ZZ rates (rad/ns, edge-id aligned
     * with the topology; non-owning — the caller keeps the vector
     * alive across solve()).  When set, candidate cuts are scored by
     * the calibration-weighted objective
     *
     *   alpha * NQ + sum_{e unsuppressed} |zz[e]| / max|zz|
     *
     * — the uniform NC count replaced by each coupling's strength
     * (magnitude: static ZZ is conventionally negative) relative to
     * the strongest coupler — with the classic alpha * NQ + NC
     * objective as a deterministic tie-break.  On a uniform snapshot
     * every ratio is exactly 1.0, so the weighted objective is
     * bit-identical to the classic one and the solver reproduces
     * classic ZZXSched decisions exactly.  The suppression
     * requirement R (nq_max / nc_max) is unaffected.
     */
    const std::vector<double> *edge_zz = nullptr;
};

/** Outcome of one alpha-optimal suppression run. */
struct SuppressionResult
{
    /** Vertex side (0/1).  When Q is non-empty and the constraint was
     *  satisfied, side[q] is identical for all q in Q. */
    std::vector<int> side;
    /** Metrics of the returned cut. */
    SuppressionMetrics metrics;
    /** True when Q ended up inside a single partition. */
    bool constraint_ok = true;
    /** True when the algorithm fell back to the trivial cut
     *  S = Q, T = V - Q (no valid pairing candidate). */
    bool used_fallback = false;

    /** Value alpha * NQ + NC of the returned cut. */
    double objective(double alpha) const { return metrics.objective(alpha); }

    /** The S side as a 0/1 mask oriented so that Q (or, for empty Q,
     *  side value 1) is "in S". */
    std::vector<char> sideMask(const std::vector<int> &q) const;
};

/**
 * Reusable solver: builds the embedding and dual graph of a topology
 * once and answers alpha-optimal suppression queries.
 */
class SuppressionSolver
{
  public:
    explicit SuppressionSolver(const graph::Topology &topo);

    /**
     * Run Algorithm 1.
     *
     * @param q   qubits that must share a partition (may be empty).
     * @param opt tuning knobs.
     */
    SuppressionResult solve(const std::vector<int> &q,
                            const SuppressionOptions &opt = {}) const;

    const graph::Graph &topologyGraph() const { return emb_.graph(); }
    const graph::Graph &dualGraph() const { return dual_.g; }

  private:
    graph::PlanarEmbedding emb_;
    graph::DualGraph dual_;

    /** Induce a cut from a pairing (plus E*_Q); nullopt if invalid. */
    std::optional<std::vector<int>>
    induceCut(const std::vector<char> &pairing_edges,
              const std::vector<char> &eq_edges) const;
};

} // namespace qzz::core

#endif // QZZ_CORE_SUPPRESSION_H
