/**
 * @file
 * Pulse-optimization front end: builds optimized pulse programs and
 * whole libraries for the OptCtrl and Pert methods.
 *
 * Pulses use the paper's 5-harmonic Fourier ansatz per channel
 * (Appendix A).  Optimization runs Adam over the Fourier
 * coefficients with a handful of random restarts.  Results are
 * memoized in-process and optionally persisted to a small on-disk
 * calibration store (QZZ_PULSE_CACHE env var, default
 * "qzz_pulse_cache/") so repeated benchmark runs skip the
 * optimization entirely — mirroring how a real system would keep a
 * calibration database.
 */

#ifndef QZZ_CORE_PULSE_OPT_H
#define QZZ_CORE_PULSE_OPT_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/objectives.h"
#include "core/optimizer.h"
#include "device/device.h"
#include "pulse/library.h"

namespace qzz::core {

/** The pulse methods evaluated by the paper. */
enum class PulseMethod
{
    Gaussian, ///< un-optimized baseline
    OptCtrl,  ///< quantum optimal control objective
    Pert,     ///< perturbation-theory objective (the paper's method)
    DCG,      ///< dynamically corrected gates
};

/** Display name of a method. */
std::string pulseMethodName(PulseMethod m);

/**
 * Parse a method name (inverse of pulseMethodName()).  Accepts the
 * display names case-insensitively plus the "Gau" abbreviation used
 * by exp::configName(); nullopt when unknown.
 */
std::optional<PulseMethod> pulseMethodFromName(std::string_view name);

/** Every display name pulseMethodFromName() accepts canonically, in
 *  enum order — for CLI validation messages and --help text. */
const std::vector<std::string> &pulseMethodNames();

/** Configuration of one pulse optimization. */
struct PulseOptConfig
{
    /** Gate duration (ns); paper: 20 ns. */
    double t_gate = 20.0;
    /** Fourier harmonics per channel; paper: 5. */
    int harmonics = 5;
    /** Objective settings (dt, weight, lambda samples, intra ZZ). */
    ObjectiveConfig objective;
    /** Adam settings. */
    AdamOptions adam;
    /** Random restarts (best kept). */
    int restarts = 2;
    /** Seed for restart initialization. */
    uint64_t seed = 20220215;
    /**
     * Optional warm start: flat coefficient vector used verbatim as
     * the first restart (e.g. seeding OptCtrl with the Pert solution,
     * as the library builder does).
     */
    std::vector<double> warm_start;
    /**
     * Polish phase: extra Adam iterations at a low learning rate with
     * the gate-implementation weight multiplied by polish_weight_gain,
     * run from the best solution.  Pushes the calibration error of the
     * returned pulse toward the integrator floor.  0 disables.
     */
    int polish_iters = 400;
    double polish_weight_gain = 20.0;
    /**
     * Smoothness regularizer sw * sum_ch sum_j j^2 (A_j / unit)^2
     * (0-based j: the fundamental is free).  Discourages high-harmonic
     * content, keeping the pulses band-limited so first-order DRAG
     * still cancels their leakage on real transmons (Fig. 18).
     */
    double smoothness_weight = 3e-4;
};

/**
 * Nominal per-method, per-gate optimization defaults, assuming the
 * paper's 200 kHz mean coupling: gate-implementation weight 10, a
 * cosine-decayed Adam schedule (lr 0.02 -> 0.002, <= 800 iters),
 * lambda_intra = 200 kHz, and for OptCtrl a small lambda sample grid
 * ({0.25, 0.75, 1.5} MHz; {0.3, 1.0} MHz for RZX).  RZX runs a
 * coarser objective dt (0.05 vs 0.02 ns) with a single restart.
 * These values reproduce the committed calib/ store entries — change
 * them only together with the cache-key version (docs/formats.md,
 * "Pulse-coefficient cache").
 */
PulseOptConfig defaultPulseOptConfig(PulseMethod method,
                                     pulse::PulseGate gate);

/**
 * Device-calibrated defaults: defaultPulseOptConfig() with the
 * objective's ZZ strengths read from the device's calibration
 * snapshot — lambda_intra set to the snapshot's mean per-edge ZZ
 * rate (dev::Calibration::meanZz()), and the OptCtrl lambda samples
 * rescaled by the ratio of that mean to the nominal 200 kHz the
 * stock defaults assume.  An edgeless device keeps the nominal
 * strengths unchanged.
 */
PulseOptConfig defaultPulseOptConfig(PulseMethod method,
                                     pulse::PulseGate gate,
                                     const dev::Device &device);

/** An optimized pulse and its diagnostics. */
struct OptimizedPulse
{
    pulse::PulseProgram program;
    /** Fourier coefficients per channel (x_a, y_a[, x_b, y_b, c]). */
    std::vector<std::vector<double>> coeffs;
    double final_loss = 0.0;
    int iterations = 0;
};

/**
 * Optimize one gate's pulses.
 *
 * @param method OptCtrl or Pert (others are fatal()).
 * @param gate   which native gate to optimize.
 * @param cfg    configuration.
 */
OptimizedPulse optimizePulse(PulseMethod method, pulse::PulseGate gate,
                             const PulseOptConfig &cfg);

/** Rebuild a pulse program from stored Fourier coefficients. */
pulse::PulseProgram programFromCoeffs(
    const std::vector<std::vector<double>> &coeffs, double t_gate);

/**
 * The full pulse library for a method, with in-process memoization
 * and the on-disk calibration store.  Gaussian and DCG libraries are
 * built directly; OptCtrl and Pert run (or load) the optimizer for
 * SX, Identity and RZX.
 *
 * Shared ownership: the returned library stays alive for as long as
 * any caller holds the shared_ptr, even across
 * clearPulseLibraryCache().  Thread-safe — concurrent callers (e.g.
 * Compiler::compileBatch() workers, or parallel ctest processes'
 * threads) serialize on an internal mutex, so a cold library is
 * built exactly once.
 */
std::shared_ptr<const pulse::PulseLibrary>
getPulseLibraryShared(PulseMethod method);

/**
 * Reference-returning variant of getPulseLibraryShared().  The
 * reference is valid until the next clearPulseLibraryCache(); prefer
 * the shared variant when the library must outlive the cache.
 */
const pulse::PulseLibrary &getPulseLibrary(PulseMethod method);

/**
 * DRAG-corrected variant of the method's library for a transmon with
 * anharmonicity @p alpha (rad/ns, nonzero), memoized on (method,
 * alpha): repeated calls for the same pair return the same shared
 * library.  The underlying Fourier coefficients still come from the
 * method's calibration store entry under calib/ — the DRAG correction
 * is derived analytically per anharmonicity, so heterogeneous devices
 * never re-run the pulse optimization.  Thread-safe like
 * getPulseLibraryShared().
 */
std::shared_ptr<const pulse::PulseLibrary>
getDraggedLibraryShared(PulseMethod method, double alpha);

/**
 * Per-qubit library variants for a device: out[q] is the method's
 * library DRAG-corrected for qubit q's calibrated anharmonicity
 * (device.anharmonicity(q)).  Qubits sharing an anharmonicity share
 * one library instance through the (method, alpha) memo, so a uniform
 * device yields numQubits() aliases of a single variant.  The
 * returned vector always has exactly device.numQubits() entries,
 * none null; thread-safe like getDraggedLibraryShared().  Note that
 * CompiledProgram still attaches a single library — these variants
 * are for callers simulating heterogeneous devices per qubit (the
 * per-qubit attachment extension is a ROADMAP item).
 */
std::vector<std::shared_ptr<const pulse::PulseLibrary>>
perQubitPulseLibraries(PulseMethod method, const dev::Device &device);

/** Clear the in-process library memos — both the per-method map and
 *  the per-(method, anharmonicity) DRAG variants (tests).
 *  Thread-safe; shared handles from getPulseLibraryShared() remain
 *  valid. */
void clearPulseLibraryCache();

} // namespace qzz::core

#endif // QZZ_CORE_PULSE_OPT_H
