#include "core/compiler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "circuit/decompose.h"
#include "common/error.h"
#include "common/parallel.h"

namespace qzz::core {

namespace {

using Clock = std::chrono::steady_clock;

double
millisecondsSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

/** Per-device tables shared by every ZzxScheduler::schedule() call. */
struct ZzxTablesState final : SchedulerState
{
    explicit ZzxTablesState(const dev::Device &dev) : tables(dev) {}
    ZzxDeviceTables tables;
};

/** Per-device tables shared by every ExactScheduler::schedule() call. */
struct ExactTablesState final : SchedulerState
{
    explicit ExactTablesState(const dev::Device &dev) : tables(dev) {}
    ExactDeviceTables tables;
};

} // namespace

// ---------------------------------------------------------------------------
// Schedulers
// ---------------------------------------------------------------------------

Schedule
ParScheduler::schedule(const ckt::QuantumCircuit &native,
                       const dev::Device &dev,
                       const GateDurations &durations,
                       const SchedulerState *state) const
{
    (void)state;
    return parSchedule(native, dev, durations);
}

std::shared_ptr<const SchedulerState>
ZzxScheduler::prepare(const dev::Device &dev) const
{
    return std::make_shared<ZzxTablesState>(dev);
}

Schedule
ZzxScheduler::schedule(const ckt::QuantumCircuit &native,
                       const dev::Device &dev,
                       const GateDurations &durations,
                       const SchedulerState *state) const
{
    if (const auto *tables =
            dynamic_cast<const ZzxTablesState *>(state))
        return weighted_ ? zzxWeightedSchedule(native, dev, durations,
                                               opt_, tables->tables)
                         : zzxSchedule(native, dev, durations, opt_,
                                       tables->tables);
    return weighted_
               ? zzxWeightedSchedule(native, dev, durations, opt_)
               : zzxSchedule(native, dev, durations, opt_);
}

std::shared_ptr<const SchedulerState>
ExactScheduler::prepare(const dev::Device &dev) const
{
    return std::make_shared<ExactTablesState>(dev);
}

Schedule
ExactScheduler::schedule(const ckt::QuantumCircuit &native,
                         const dev::Device &dev,
                         const GateDurations &durations,
                         const SchedulerState *state) const
{
    if (const auto *tables =
            dynamic_cast<const ExactTablesState *>(state))
        return exactSchedule(native, dev, durations, opt_,
                             ExactLimits{}, tables->tables);
    return exactSchedule(native, dev, durations, opt_);
}

std::shared_ptr<const SchedulerState>
CycleScheduler::prepare(const dev::Device &dev) const
{
    return std::make_shared<ZzxTablesState>(dev);
}

Schedule
CycleScheduler::schedule(const ckt::QuantumCircuit &native,
                         const dev::Device &dev,
                         const GateDurations &durations,
                         const SchedulerState *state) const
{
    if (const auto *tables =
            dynamic_cast<const ZzxTablesState *>(state))
        return cycleAwareSchedule(native, dev, durations, opt_,
                                  tables->tables);
    return cycleAwareSchedule(native, dev, durations, opt_);
}

std::shared_ptr<const Scheduler>
makeScheduler(SchedPolicy policy, const ZzxOptions &zzx)
{
    switch (policy) {
    case SchedPolicy::Par:
        return std::make_shared<ParScheduler>();
    case SchedPolicy::Zzx:
    case SchedPolicy::ZzxWeighted:
        return std::make_shared<ZzxScheduler>(
            zzx, policy == SchedPolicy::ZzxWeighted);
    case SchedPolicy::Exact:
        return std::make_shared<ExactScheduler>(zzx);
    case SchedPolicy::CycleAware:
        return std::make_shared<CycleScheduler>(zzx);
    }
    panic("makeScheduler: unknown policy");
}

// ---------------------------------------------------------------------------
// Pulse providers
// ---------------------------------------------------------------------------

std::shared_ptr<const pulse::PulseLibrary>
CachedPulseProvider::library(PulseMethod method)
{
    return getPulseLibraryShared(method);
}

std::shared_ptr<PulseProvider>
defaultPulseProvider()
{
    return std::make_shared<CachedPulseProvider>();
}

// ---------------------------------------------------------------------------
// CompileContext
// ---------------------------------------------------------------------------

CompileContext::CompileContext(const dev::Device &device,
                               const CompileOptions &opt,
                               const Scheduler &scheduler,
                               const SchedulerState *scheduler_state,
                               PulseProvider &provider,
                               std::vector<ckt::QuantumCircuit> segments)
    : device(device), options(opt), scheduler(scheduler),
      scheduler_state(scheduler_state), provider(provider),
      segments(std::move(segments))
{
}

void
CompileContext::fail(std::string pass, std::string message,
                     CompileStatusCode code)
{
    // The first failure wins; later passes are skipped anyway.
    if (!status.ok())
        return;
    status.code = code;
    status.pass = std::move(pass);
    status.message = std::move(message);
}

const pulse::PulseLibrary *
CompileContext::ensureLibrary()
{
    if (program.library)
        return program.library.get();
    std::shared_ptr<const pulse::PulseLibrary> lib =
        provider.library(options.pulse);
    if (!lib) {
        fail("pulses", "pulse provider returned no library");
        return nullptr;
    }
    program.library = std::move(lib);
    durations = GateDurations::fromLibrary(*program.library);
    return program.library.get();
}

// ---------------------------------------------------------------------------
// The default passes
// ---------------------------------------------------------------------------

void
RoutePass::run(CompileContext &ctx) const
{
    const int logical_qubits = ctx.segments.front().numQubits();
    // The permutation left by one segment's SWAPs is the next
    // segment's initial layout.
    std::vector<int> layout = ctx.final_layout;
    ctx.routed_segments.clear();
    for (const ckt::QuantumCircuit &segment : ctx.segments) {
        if (segment.numQubits() != logical_qubits) {
            ctx.fail(name(), "route: register size mismatch between "
                             "segments");
            return;
        }
        ckt::RoutedCircuit routed =
            ckt::routeCircuit(segment, ctx.device.graph(), layout);
        layout = routed.final_layout;
        ctx.swaps_inserted += routed.swaps_inserted;
        ctx.routed_segments.push_back(std::move(routed.circuit));
    }
    ctx.final_layout = std::move(layout);
}

void
LowerPass::run(CompileContext &ctx) const
{
    ctx.native_segments.clear();
    ctx.program.native = ckt::QuantumCircuit(
        ctx.device.numQubits(), ctx.segments.front().name());
    for (const ckt::QuantumCircuit &routed : ctx.routed_segments) {
        ckt::QuantumCircuit native = ckt::decomposeToNative(routed);
        ensure(ckt::respectsConnectivity(native, ctx.device.graph()),
               "lower: connectivity violated after decomposition");
        for (const ckt::Gate &g : native.gates())
            ctx.program.native.add(g);
        ctx.native_segments.push_back(std::move(native));
    }
}

void
SchedulePass::run(CompileContext &ctx) const
{
    // Durations come from the pulse library (e.g. DCG stretches SX to
    // 120 ns), so the library is acquired here even though it is only
    // attached to the program by AttachPulsesPass.
    if (!ctx.ensureLibrary())
        return;
    ctx.program.schedule = Schedule{};
    ctx.program.schedule.num_qubits = ctx.device.numQubits();
    for (const ckt::QuantumCircuit &native : ctx.native_segments) {
        Schedule sched = ctx.scheduler.schedule(
            native, ctx.device, ctx.durations, ctx.scheduler_state);
        for (Layer &layer : sched.layers)
            ctx.program.schedule.layers.push_back(std::move(layer));
    }
}

void
AttachPulsesPass::run(CompileContext &ctx) const
{
    ctx.ensureLibrary();
}

std::vector<std::shared_ptr<const Pass>>
defaultPassPipeline()
{
    return {std::make_shared<RoutePass>(),
            std::make_shared<LowerPass>(),
            std::make_shared<SchedulePass>(),
            std::make_shared<AttachPulsesPass>()};
}

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

CompiledProgram
unwrapOrThrow(CompileResult result)
{
    if (result.ok())
        return std::move(result.program);
    if (result.status.code == CompileStatusCode::Internal)
        panic(result.status.message);
    fatal(result.status.message);
}

bool
BatchResult::allOk() const
{
    return std::all_of(results.begin(), results.end(),
                       [](const CompileResult &r) { return r.ok(); });
}

Compiler::Compiler(dev::Device device, CompileOptions options,
                   std::shared_ptr<const Scheduler> scheduler,
                   std::shared_ptr<PulseProvider> provider,
                   std::vector<std::shared_ptr<const Pass>> passes)
    : device_(std::move(device)), options_(options),
      scheduler_(std::move(scheduler)), provider_(std::move(provider)),
      passes_(std::move(passes))
{
    scheduler_state_ = scheduler_->prepare(device_);
}

CompileResult
Compiler::compile(const ckt::QuantumCircuit &circuit) const
{
    return compileSegments({circuit});
}

CompileResult
Compiler::compileSegments(
    std::vector<ckt::QuantumCircuit> segments) const
{
    CompileResult out;
    out.program.pulse_method = options_.pulse;
    out.program.sched_policy = options_.sched;
    out.program.calib_epoch = device_.calibration().epoch;
    if (segments.empty()) {
        out.status = {CompileStatusCode::InvalidInput, "",
                      "compileSegments: no segments given"};
        return out;
    }

    CompileContext ctx(device_, options_, *scheduler_,
                       scheduler_state_.get(), *provider_,
                       std::move(segments));
    ctx.program.pulse_method = options_.pulse;
    ctx.program.sched_policy = options_.sched;
    ctx.program.calib_epoch = device_.calibration().epoch;

    const auto compile_start = Clock::now();
    for (const std::shared_ptr<const Pass> &pass : passes_) {
        StageDiagnostics stage;
        stage.stage = pass->name();
        const auto layers_before = ctx.program.schedule.layers.size();
        const auto gates_before = ctx.program.native.size();
        const auto stage_start = Clock::now();
        stage.start_ms = millisecondsSince(compile_start);
        try {
            pass->run(ctx);
        } catch (const UserError &e) {
            ctx.fail(pass->name(), e.what(),
                     CompileStatusCode::InvalidInput);
        } catch (const InternalError &e) {
            ctx.fail(pass->name(), e.what(),
                     CompileStatusCode::Internal);
        } catch (const std::exception &e) {
            // Custom passes / providers may throw anything; map it to
            // the status channel rather than letting it escape a
            // compileBatch() worker thread (std::terminate).
            ctx.fail(pass->name(), e.what(),
                     CompileStatusCode::Internal);
        }
        stage.wall_ms = millisecondsSince(stage_start);
        stage.layers_added =
            int(ctx.program.schedule.layers.size() - layers_before);
        stage.gates_added =
            int(ctx.program.native.size() - gates_before);
        ctx.diagnostics.stages.push_back(std::move(stage));
        if (!ctx.status.ok())
            break;
    }
    ctx.diagnostics.total_ms = millisecondsSince(compile_start);
    ctx.diagnostics.swaps_inserted = ctx.swaps_inserted;
    ctx.program.final_layout = std::move(ctx.final_layout);
    if (ctx.status.ok()) {
        const Schedule &sched = ctx.program.schedule;
        ctx.diagnostics.physical_layers = sched.physicalLayerCount();
        ctx.diagnostics.mean_nc = sched.meanNc();
        ctx.diagnostics.max_nq = sched.maxNq();
        ctx.diagnostics.execution_time_ns = sched.executionTime();
        ctx.diagnostics.mean_residual_zz =
            meanResidualZz(sched, device_.couplings());
    }

    out.program = std::move(ctx.program);
    out.diagnostics = std::move(ctx.diagnostics);
    out.status = std::move(ctx.status);
    return out;
}

BatchResult
Compiler::compileBatch(const std::vector<ckt::QuantumCircuit> &circuits,
                       const BatchOptions &opt) const
{
    BatchResult out;
    out.results.resize(circuits.size());

    int threads = opt.num_threads;
    if (threads <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw > 0 ? int(hw) : 4;
    }
    threads = std::max(1, std::min<int>(threads, int(circuits.size())));

    const auto start = Clock::now();
    // Warm the shared pulse library before fanning out, so the
    // workers never serialize on a cold calibration build; a failure
    // here is surfaced per-circuit through the status channel.
    try {
        provider_->library(options_.pulse);
    } catch (const std::exception &) {
    }

    // Fan out over the shared work pool (one circuit per block) —
    // repeated batches reuse the process-wide workers instead of
    // spawning a fresh std::thread set per call.
    common::parallelFor(
        0, circuits.size(), 1,
        [&](size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i)
                out.results[i] = compile(circuits[i]);
        },
        threads);

    out.wall_ms = millisecondsSince(start);
    out.threads_used = threads;
    return out;
}

// ---------------------------------------------------------------------------
// CompilerBuilder
// ---------------------------------------------------------------------------

CompilerBuilder &
CompilerBuilder::options(const CompileOptions &opt)
{
    options_ = opt;
    return *this;
}

CompilerBuilder &
CompilerBuilder::pulseMethod(PulseMethod m)
{
    options_.pulse = m;
    return *this;
}

CompilerBuilder &
CompilerBuilder::schedPolicy(SchedPolicy p)
{
    options_.sched = p;
    return *this;
}

CompilerBuilder &
CompilerBuilder::zzxOptions(const ZzxOptions &opt)
{
    options_.zzx = opt;
    return *this;
}

CompilerBuilder &
CompilerBuilder::scheduler(std::shared_ptr<const Scheduler> s)
{
    scheduler_ = std::move(s);
    return *this;
}

CompilerBuilder &
CompilerBuilder::pulseProvider(std::shared_ptr<PulseProvider> p)
{
    provider_ = std::move(p);
    return *this;
}

CompilerBuilder &
CompilerBuilder::addPass(std::shared_ptr<const Pass> pass)
{
    extra_passes_.push_back(std::move(pass));
    return *this;
}

CompilerBuilder &
CompilerBuilder::passes(std::vector<std::shared_ptr<const Pass>> passes)
{
    replaced_passes_ = std::move(passes);
    replace_pipeline_ = true;
    return *this;
}

Compiler
CompilerBuilder::build() const
{
    std::shared_ptr<const Scheduler> scheduler =
        scheduler_ ? scheduler_
                   : makeScheduler(options_.sched, options_.zzx);
    std::shared_ptr<PulseProvider> provider =
        provider_ ? provider_ : defaultPulseProvider();
    std::vector<std::shared_ptr<const Pass>> pipeline =
        replace_pipeline_ ? replaced_passes_ : defaultPassPipeline();
    pipeline.insert(pipeline.end(), extra_passes_.begin(),
                    extra_passes_.end());
    return Compiler(device_, options_, std::move(scheduler),
                    std::move(provider), std::move(pipeline));
}

} // namespace qzz::core
