#include "core/exact_sched.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/error.h"
#include "core/sched_walk.h"

namespace qzz::core {

std::string
exactStatusName(ExactStatus status)
{
    return status == ExactStatus::Optimal ? "Optimal"
                                          : "BudgetExhausted";
}

namespace {

/** Finite max |zz|, or 0 when there is nothing to weigh by (matches
 *  SuppressionSolver::solve()'s uniform fallback). */
double
zzReference(const std::vector<double> &zz)
{
    double ref = 0.0;
    for (double rate : zz)
        if (std::isfinite(rate) && std::abs(rate) > ref)
            ref = std::abs(rate);
    return ref;
}

/**
 * The branch-and-bound search state.  One Searcher per solve(): all
 * mutation is local, which keeps the const/thread-safe contract of
 * ExactCutSolver::solve() trivially true.
 */
struct Searcher
{
    Searcher(const graph::Graph &graph, double alpha_in,
             bool weighted_in, const ExactLimits &limits)
        : g(graph), alpha(alpha_in), weighted(weighted_in),
          weight(size_t(graph.numEdges()), 1.0),
          max_nodes(limits.max_nodes), max_millis(limits.max_millis),
          start(std::chrono::steady_clock::now()),
          forced(size_t(graph.numVertices()), 0),
          side(size_t(graph.numVertices()), -1),
          parent(size_t(graph.numVertices())),
          comp_size(size_t(graph.numVertices()), 1)
    {
        for (int v = 0; v < graph.numVertices(); ++v)
            parent[size_t(v)] = v;
    }

    const graph::Graph &g;
    double alpha;
    bool weighted;
    std::vector<double> weight; ///< per-edge cost (1.0 when classic)
    long max_nodes;
    double max_millis;
    std::chrono::steady_clock::time_point start;

    std::vector<int> order;   ///< vertex assignment order
    std::vector<char> forced; ///< vertex pinned to side 1
    std::vector<int> side;    ///< -1 unassigned, else 0/1

    // Rollbackable union-find over same-side regions (union by size,
    // no path compression so undo is a constant-time pop).
    std::vector<int> parent;
    std::vector<int> comp_size;
    std::vector<std::pair<int, int>> trail; ///< (child root, parent root)

    int cur_nc = 0;
    double cur_wnc = 0.0;
    int cur_maxreg = 0;

    long nodes = 0;
    bool exhausted = false;

    double best_primary = 0.0;
    double best_tie = 0.0;
    std::vector<int> best_side;

    int
    findRoot(int v) const
    {
        while (parent[v] != v)
            v = parent[v];
        return v;
    }

    struct Frame
    {
        size_t trail_mark;
        int nc;
        double wnc;
        int maxreg;
    };

    /** Assign @p v to @p s, updating regions and costs. */
    Frame
    enter(int v, int s)
    {
        Frame f{trail.size(), cur_nc, cur_wnc, cur_maxreg};
        side[v] = s;
        cur_maxreg = std::max(cur_maxreg, 1);
        for (const graph::Adjacent &a : g.neighbors(v)) {
            if (side[a.to] != s)
                continue;
            ++cur_nc;
            cur_wnc += weight[size_t(a.edge)];
            int ra = findRoot(v);
            int rb = findRoot(a.to);
            if (ra == rb)
                continue;
            if (comp_size[ra] < comp_size[rb])
                std::swap(ra, rb);
            parent[rb] = ra;
            comp_size[ra] += comp_size[rb];
            trail.emplace_back(rb, ra);
            cur_maxreg = std::max(cur_maxreg, comp_size[ra]);
        }
        return f;
    }

    void
    leave(int v, const Frame &f)
    {
        while (trail.size() > f.trail_mark) {
            auto [child, par] = trail.back();
            trail.pop_back();
            comp_size[par] -= comp_size[child];
            parent[child] = child;
        }
        side[v] = -1;
        cur_nc = f.nc;
        cur_wnc = f.wnc;
        cur_maxreg = f.maxreg;
    }

    bool
    budgetSpent()
    {
        if (nodes > max_nodes)
            return true;
        if (max_millis > 0.0 && (nodes & 1023) == 0) {
            const double ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            if (ms > max_millis)
                return true;
        }
        return false;
    }

    void
    dfs(size_t i)
    {
        if (i == order.size()) {
            const double primary =
                alpha * double(cur_maxreg) +
                (weighted ? cur_wnc : double(cur_nc));
            const double tie =
                alpha * double(cur_maxreg) + double(cur_nc);
            if (primary < best_primary ||
                (primary == best_primary && tie < best_tie)) {
                best_primary = primary;
                best_tie = tie;
                best_side = side;
            }
            return;
        }
        const int v = order[i];
        for (int s : {0, 1}) {
            if (forced[v] && s == 0)
                continue;
            ++nodes;
            if (budgetSpent()) {
                exhausted = true;
                return;
            }
            const Frame f = enter(v, s);
            // Admissible bound: assigned same-side edges and the
            // largest formed region can only grow as the remaining
            // vertices are assigned (NQ >= 1 always).
            const double lb_nq =
                alpha * double(std::max(1, cur_maxreg));
            const double lb_primary =
                lb_nq + (weighted ? cur_wnc : double(cur_nc));
            const double lb_tie = lb_nq + double(cur_nc);
            const bool prune =
                lb_primary > best_primary ||
                (lb_primary == best_primary && lb_tie >= best_tie);
            if (!prune)
                dfs(i + 1);
            leave(v, f);
            if (exhausted)
                return;
        }
    }
};

} // namespace

double
cutPrimaryObjective(const SuppressionMetrics &metrics, double alpha,
                    const std::vector<double> *edge_zz)
{
    double cost = double(metrics.nc);
    if (edge_zz != nullptr) {
        const double ref = zzReference(*edge_zz);
        if (ref > 0.0) {
            require(edge_zz->size() ==
                        metrics.unsuppressed_edge.size(),
                    "cutPrimaryObjective: edge_zz size does not match "
                    "the cut's edge count");
            cost = 0.0;
            for (size_t e = 0; e < edge_zz->size(); ++e)
                if (metrics.unsuppressed_edge[e])
                    cost += std::abs((*edge_zz)[e]) / ref;
        }
    }
    return alpha * double(metrics.nq) + cost;
}

ExactCutSolver::ExactCutSolver(const graph::Graph &g) : g_(g) {}

ExactCutResult
ExactCutSolver::solve(const std::vector<int> &q_in,
                      const SuppressionOptions &opt,
                      const ExactLimits &limits) const
{
    const int n = g_.numVertices();
    const int m = g_.numEdges();

    std::vector<int> q = q_in;
    std::sort(q.begin(), q.end());
    q.erase(std::unique(q.begin(), q.end()), q.end());
    for (int v : q)
        require(v >= 0 && v < n,
                "ExactCutSolver::solve: qubit out of range");

    // Weighting mirrors SuppressionSolver::solve(): magnitudes
    // normalized by the strongest coupler, uniform fallback when no
    // finite nonzero rate exists.
    const std::vector<double> *edge_zz = opt.edge_zz;
    double zz_ref = 0.0;
    if (edge_zz != nullptr) {
        require(int(edge_zz->size()) == m,
                "ExactCutSolver::solve: edge_zz size does not match "
                "the topology's edge count");
        zz_ref = zzReference(*edge_zz);
        if (zz_ref <= 0.0)
            edge_zz = nullptr;
    }
    const bool weighted = edge_zz != nullptr;

    const bool memoizable = limits.max_millis <= 0.0;
    const MemoKey key{q, opt.alpha, weighted, limits.max_nodes};
    if (memoizable) {
        std::lock_guard<std::mutex> lock(memo_mutex_);
        auto it = memo_.find(key);
        if (it != memo_.end())
            return it->second;
    }

    Searcher s(g_, opt.alpha, weighted, limits);
    if (weighted)
        for (int e = 0; e < m; ++e)
            s.weight[size_t(e)] =
                std::abs((*edge_zz)[size_t(e)]) / zz_ref;

    // Assignment order: multi-source BFS from Q (vertex 0 when Q is
    // empty), unreached vertices appended in index order — regions
    // around the constrained set form early, so bounds bite early.
    std::vector<char> seen(size_t(n), 0);
    for (int v : q) {
        s.order.push_back(v);
        seen[size_t(v)] = 1;
    }
    if (q.empty() && n > 0) {
        s.order.push_back(0);
        seen[0] = 1;
    }
    for (size_t head = 0; head < s.order.size(); ++head)
        for (const graph::Adjacent &a : g_.neighbors(s.order[head]))
            if (!seen[size_t(a.to)]) {
                seen[size_t(a.to)] = 1;
                s.order.push_back(a.to);
            }
    for (int v = 0; v < n; ++v)
        if (!seen[size_t(v)])
            s.order.push_back(v);

    // Pin Q (the anchor vertex for empty Q) to side 1: the metrics
    // are invariant under a global side flip, so this halves the
    // space without losing any cut.
    for (int v : q)
        s.forced[size_t(v)] = 1;
    if (q.empty() && n > 0)
        s.forced[size_t(s.order[0])] = 1;

    // Seed the incumbent with the trivial cut S = Q (the heuristic's
    // own fallback), so even a zero budget returns a valid cut.
    std::vector<int> trivial(size_t(n), 0);
    for (int v : q)
        trivial[size_t(v)] = 1;
    if (q.empty() && n > 0)
        trivial[size_t(s.order[0])] = 1;
    {
        const SuppressionMetrics tm = evaluateCut(g_, trivial);
        s.best_primary =
            cutPrimaryObjective(tm, opt.alpha, edge_zz);
        s.best_tie = tm.objective(opt.alpha);
        s.best_side = std::move(trivial);
    }

    s.dfs(0);

    ExactCutResult res;
    res.side = std::move(s.best_side);
    res.metrics = evaluateCut(g_, res.side);
    res.objective =
        cutPrimaryObjective(res.metrics, opt.alpha, edge_zz);
    res.tie = res.metrics.objective(opt.alpha);
    res.status = s.exhausted ? ExactStatus::BudgetExhausted
                             : ExactStatus::Optimal;
    res.nodes = s.nodes;

    if (memoizable) {
        std::lock_guard<std::mutex> lock(memo_mutex_);
        memo_.emplace(key, res);
    }
    return res;
}

ExactDeviceTables::ExactDeviceTables(const dev::Device &dev)
    : solver(dev.graph()), dist(dev.graph().allPairsDistances()),
      zz(dev.couplings())
{
}

namespace {

/** Draws every layer cut from the exact solver. */
class ExactCutOracle final : public LayerCutOracle
{
  public:
    ExactCutOracle(const ExactCutSolver &solver,
                   const SuppressionOptions &sopt,
                   const ExactLimits &limits)
        : solver_(solver), sopt_(sopt), limits_(limits)
    {
    }

    SuppressionResult
    cutFor(const std::vector<int> &q) override
    {
        ExactCutResult r = solver_.solve(q, sopt_, limits_);
        SuppressionResult res;
        res.side = std::move(r.side);
        res.metrics = std::move(r.metrics);
        res.constraint_ok = true; // Q side 1 is enforced by the search
        res.used_fallback = r.status == ExactStatus::BudgetExhausted;
        return res;
    }

  private:
    const ExactCutSolver &solver_;
    SuppressionOptions sopt_;
    ExactLimits limits_;
};

} // namespace

Schedule
exactSchedule(const ckt::QuantumCircuit &native, const dev::Device &dev,
              const GateDurations &durations, const ZzxOptions &opt,
              const ExactLimits &limits)
{
    return exactSchedule(native, dev, durations, opt, limits,
                         ExactDeviceTables(dev));
}

Schedule
exactSchedule(const ckt::QuantumCircuit &native, const dev::Device &dev,
              const GateDurations &durations, const ZzxOptions &opt_in,
              const ExactLimits &limits, const ExactDeviceTables &tables)
{
    const ZzxOptions opt = resolveZzxOptions(opt_in, dev);
    ExactCutOracle oracle(tables.solver, opt.suppression, limits);
    return scheduleByCuts(native, dev, durations, opt, tables.dist,
                          oracle);
}

} // namespace qzz::core
