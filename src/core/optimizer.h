/**
 * @file
 * Gradient-based minimizer for the pulse objectives: Adam with
 * central finite-difference gradients.
 *
 * The paper solves its loss functions "with gradient-based methods
 * numerically" (Sec. 7.1.1); the parameter counts here are tiny (10
 * for single-qubit pulses, 25 for two-qubit pulses), so full central
 * differences are affordable and robust.
 */

#ifndef QZZ_CORE_OPTIMIZER_H
#define QZZ_CORE_OPTIMIZER_H

#include <functional>
#include <vector>

namespace qzz::core {

/** Scalar loss over a parameter vector. */
using LossFn = std::function<double(const std::vector<double> &)>;

/** Adam configuration. */
struct AdamOptions
{
    int max_iters = 500;
    double lr = 0.02;
    /** Final learning rate of the cosine decay schedule. */
    double lr_final = 0.002;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-9;
    /** Central-difference step. */
    double fd_step = 1e-5;
    /** Stop when the loss drops below this value. */
    double target_loss = 1e-8;
    /** Stop after this many iterations without improvement.  Pulse
     *  losses plateau before the echo-like basin opens, so keep this
     *  generous. */
    int patience = 300;
};

/** Optimization outcome. */
struct OptimizeResult
{
    std::vector<double> params;
    double loss = 0.0;
    int iterations = 0;
    /** Loss trace (one entry per iteration). */
    std::vector<double> history;
};

/** Minimize @p loss starting from @p init. */
OptimizeResult minimizeAdam(const LossFn &loss,
                            std::vector<double> init,
                            const AdamOptions &opt = {});

} // namespace qzz::core

#endif // QZZ_CORE_OPTIMIZER_H
