#include "core/cut.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace qzz::core {

SuppressionMetrics
evaluateCut(const graph::Graph &g, const std::vector<int> &side)
{
    require(int(side.size()) == g.numVertices(),
            "evaluateCut: side vector size mismatch");
    SuppressionMetrics m;
    m.unsuppressed_edge.assign(size_t(g.numEdges()), 0);
    for (const graph::Edge &e : g.edges()) {
        if (side[e.u] == side[e.v]) {
            m.unsuppressed_edge[e.id] = 1;
            ++m.nc;
        }
    }
    m.region_of = g.componentsOfEdgeSubset(m.unsuppressed_edge);
    const std::vector<int> sizes = graph::Graph::componentSizes(m.region_of);
    m.nq = sizes.empty() ? 0
                         : *std::max_element(sizes.begin(), sizes.end());
    return m;
}

double
residualZz(const SuppressionMetrics &metrics,
           const std::vector<double> &zz)
{
    require(metrics.unsuppressed_edge.size() == zz.size(),
            "residualZz: per-edge ZZ vector does not match the cut's "
            "edge count");
    double sum = 0.0;
    for (size_t e = 0; e < zz.size(); ++e)
        if (metrics.unsuppressed_edge[e])
            sum += std::abs(zz[e]);
    return sum;
}

bool
sameSide(const std::vector<int> &side, const std::vector<int> &q)
{
    for (size_t i = 1; i < q.size(); ++i)
        if (side[q[i]] != side[q[0]])
            return false;
    return true;
}

} // namespace qzz::core
