/**
 * @file
 * Schedule IR: the output of both scheduling policies.
 *
 * A schedule is an ordered list of layers.  Physical layers hold
 * simultaneously played gates (including supplemented identity gates)
 * and carry the cut and NQ/NC metrics realized on the device; virtual
 * layers hold zero-duration RZ frame changes.  Layers execute
 * serially; within a physical layer all pulses start together and the
 * layer lasts as long as its longest pulse.
 */

#ifndef QZZ_CORE_SCHEDULE_H
#define QZZ_CORE_SCHEDULE_H

#include <vector>

#include "circuit/circuit.h"
#include "core/cut.h"
#include "pulse/library.h"

namespace qzz::core {

/** Per-gate durations used during scheduling (ns). */
struct GateDurations
{
    double sx = 20.0;
    double identity = 20.0;
    double rzx = 20.0;

    /** Duration of a native physical gate. */
    double of(const ckt::Gate &g) const;

    /** Extract the durations from a pulse library. */
    static GateDurations fromLibrary(const pulse::PulseLibrary &lib);
};

/** A gate placed in a layer. */
struct ScheduledGate
{
    ckt::Gate gate;
    /** True for identity gates inserted by the scheduler. */
    bool supplemented = false;
};

/** One schedule step. */
struct Layer
{
    /** True for zero-duration RZ-only layers. */
    bool is_virtual = false;
    /** The gates played in this layer. */
    std::vector<ScheduledGate> gates;
    /** Wall-clock duration (ns); 0 for virtual layers. */
    double duration = 0.0;
    /** Driven side: 1 = pulses applied (S), 0 = idle (T).  Empty for
     *  virtual layers and for ParSched (no cut structure). */
    std::vector<int> side;
    /** NQ/NC realized by this layer (physical layers only). */
    SuppressionMetrics metrics;

    /** Qubits carrying pulses in this layer. */
    std::vector<int> activeQubits(int num_qubits) const;
};

/** An executable schedule. */
struct Schedule
{
    int num_qubits = 0;
    std::vector<Layer> layers;

    /** Total execution time = sum of layer durations (ns). */
    double executionTime() const;

    /** Number of non-virtual layers. */
    int physicalLayerCount() const;

    /** Total count of scheduled circuit gates (excl. supplemented). */
    int circuitGateCount() const;

    /** Mean NC over physical layers (Fig. 25's couplings to turn
     *  off under the co-optimized policy). */
    double meanNc() const;

    /** Max NQ over physical layers. */
    int maxNq() const;
};

/**
 * Calibrated residual ZZ rate of one layer: the sum of per-edge ZZ
 * strength magnitudes (rad/ns, from the device calibration snapshot,
 * aligned by edge id; static ZZ is conventionally negative) over the
 * layer's unsuppressed couplings.  Where NC counts unsuppressed
 * couplings uniformly, this weighs them by their actual calibrated
 * rates — two cuts with equal NC can differ substantially on a
 * heterogeneous device.  SchedPolicy::ZzxWeighted scores candidate
 * cuts by exactly this quantity (normalized, alongside the alpha * NQ
 * term; see SuppressionOptions::edge_zz).
 *
 * Contract on the layer's `metrics.unsuppressed_edge` mask:
 *  - empty = all-on: the layer carries no cut structure (ParSched),
 *    nothing is suppressed, and every entry of @p zz counts;
 *  - non-empty: its size must equal zz.size() (the topology's edge
 *    count) or the call throws UserError.
 * Virtual layers contribute 0 regardless of the mask.
 */
double residualZzRate(const Layer &layer, const std::vector<double> &zz);

/** Mean residualZzRate() over physical layers (0 if none). */
double meanResidualZz(const Schedule &schedule,
                      const std::vector<double> &zz);

} // namespace qzz::core

#endif // QZZ_CORE_SCHEDULE_H
