/**
 * @file
 * ZZXSched: the paper's ZZ-aware scheduler (Algorithm 2).
 *
 * Iteratively schedules the schedulable-gate frontier:
 *  - Case 1 (only single-qubit gates): run unconstrained alpha-optimal
 *    suppression; schedule the gates on the cut side with more gates
 *    (complete suppression on bipartite topologies), supplementing the
 *    rest of that side with identity gates.
 *  - Case 2 (two-qubit gates present): TwoQSchedule — try scheduling
 *    all two-qubit gates at once; when the suppression requirement R
 *    is violated, split the two closest gates into seed groups and
 *    grow them farthest-gate-first while R stays satisfied
 *    (Theorem 6.1 then guarantees the top-K closest gates land in
 *    different layers).
 *
 * Identity supplementation covers S minus the qubits of the gates that
 * are actually placed in the layer, so the driven set equals S exactly
 * and the realized regions match the optimized cut.
 */

#ifndef QZZ_CORE_ZZX_SCHED_H
#define QZZ_CORE_ZZX_SCHED_H

#include "core/schedule.h"
#include "core/suppression.h"
#include "device/device.h"

namespace qzz::core {

/** Options of Algorithm 2. */
struct ZzxOptions
{
    /** Knobs of the inner alpha-optimal suppression algorithm. */
    SuppressionOptions suppression;
    /**
     * Suppression requirement R: NQ <= nq_max and NC <= nc_max.
     * Values < 0 mean "derive from the device" as in Sec. 7.3:
     * NQ < max vertex degree (with a floor of 2 so that two-qubit
     * gates stay schedulable on degree-2 devices) and NC <= |E| / 2.
     */
    int nq_max = -1;
    int nc_max = -1;
};

/** Resolve the defaults of R against a device. */
ZzxOptions resolveZzxOptions(ZzxOptions opt, const dev::Device &dev);

/**
 * Per-device tables ZZXSched needs on every call: the all-pairs
 * qubit distances and the alpha-optimal suppression solver (planar
 * embedding + dual graph).  Building them costs more than a single
 * scheduling query, so callers compiling many circuits against one
 * device (core::Compiler, compileBatch()) construct the tables once
 * and share them — they are immutable and thread-safe to share.
 */
struct ZzxDeviceTables
{
    explicit ZzxDeviceTables(const dev::Device &dev);

    SuppressionSolver solver;
    std::vector<std::vector<int>> dist;
    /** Per-edge calibrated ZZ rates from the device snapshot (edge-id
     *  aligned) — lets policies and diagnostics weigh cuts by their
     *  actual residual crosstalk (residualZzRate()) instead of the
     *  uniform NC count. */
    std::vector<double> zz;
};

/**
 * Schedule a native circuit with ZZ-aware layering.
 *
 * @param native    native-gate circuit over the device's qubits.
 * @param dev       target device.
 * @param durations per-gate durations.
 * @param opt       scheduling options.
 */
Schedule zzxSchedule(const ckt::QuantumCircuit &native,
                     const dev::Device &dev,
                     const GateDurations &durations,
                     const ZzxOptions &opt = {});

/** Same, reusing precomputed per-device tables. */
Schedule zzxSchedule(const ckt::QuantumCircuit &native,
                     const dev::Device &dev,
                     const GateDurations &durations,
                     const ZzxOptions &opt,
                     const ZzxDeviceTables &tables);

/**
 * Calibration-weighted ZZXSched (SchedPolicy::ZzxWeighted): the same
 * frontier walk and TwoQSchedule seeding/growth as zzxSchedule(), but
 * the inner suppression search scores candidate cuts by calibrated
 * residual ZZ — the per-edge rates of the device snapshot
 * (ZzxDeviceTables::zz, see core::residualZzRate()) — instead of the
 * uniform NC count, with the classic alpha * NQ + NC objective as a
 * deterministic tie-break.  On a uniform snapshot (all couplers
 * equal) every decision ties back to the classic order, so the
 * produced schedule is bit-identical to zzxSchedule(); on a
 * heterogeneous snapshot the cut search steers unsuppressed crosstalk
 * onto the weakest couplers.  The suppression requirement R is
 * enforced exactly as in zzxSchedule().
 */
Schedule zzxWeightedSchedule(const ckt::QuantumCircuit &native,
                             const dev::Device &dev,
                             const GateDurations &durations,
                             const ZzxOptions &opt = {});

/** Same, reusing precomputed per-device tables (the per-edge ZZ rates
 *  are taken from @p tables). */
Schedule zzxWeightedSchedule(const ckt::QuantumCircuit &native,
                             const dev::Device &dev,
                             const GateDurations &durations,
                             const ZzxOptions &opt,
                             const ZzxDeviceTables &tables);

/**
 * Distance between two-qubit gates (Definition 6.1): the sum of the
 * four endpoint shortest-path distances.
 */
int gateDistance(const ckt::Gate &a, const ckt::Gate &b,
                 const std::vector<std::vector<int>> &dist);

} // namespace qzz::core

#endif // QZZ_CORE_ZZX_SCHED_H
