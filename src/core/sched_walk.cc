#include "core/sched_walk.h"

#include <algorithm>
#include <limits>

#include "circuit/dag.h"
#include "common/error.h"

namespace qzz::core {

using ckt::Gate;
using ckt::GateKind;
using ckt::QuantumCircuit;

namespace {

/** All qubits touched by the given gates (by frontier index list). */
std::vector<int>
gateQubits(const QuantumCircuit &c, const std::vector<int> &gate_ids)
{
    std::vector<int> q;
    for (int gi : gate_ids)
        for (int v : c.gates()[gi].qubits)
            q.push_back(v);
    std::sort(q.begin(), q.end());
    q.erase(std::unique(q.begin(), q.end()), q.end());
    return q;
}

/** Does a cut satisfy the suppression requirement R? */
bool
satisfiesR(const SuppressionResult &res, const ZzxOptions &opt)
{
    return res.constraint_ok && res.metrics.nq <= opt.nq_max &&
           res.metrics.nc <= opt.nc_max;
}

/** Min distance between a gate and a group (Definition 6.2). */
int
gateGroupDistance(const QuantumCircuit &c, int gate,
                  const std::vector<int> &group,
                  const std::vector<std::vector<int>> &dist)
{
    int best = std::numeric_limits<int>::max();
    for (int member : group)
        best = std::min(best, gateDistance(c.gates()[gate],
                                           c.gates()[member], dist));
    return best;
}

/** TwoQSchedule outcome: the cut plus the qubits it constrains. */
struct TwoQResult
{
    SuppressionResult cut;
    std::vector<int> q; ///< qubits of the chosen gates (inside S)
};

/**
 * Procedure TwoQSchedule (Algorithm 2, lines 15-28): returns the S
 * partition to drive this layer.
 */
TwoQResult
twoQSchedule(const QuantumCircuit &c, const std::vector<int> &sg2,
             LayerCutOracle &oracle,
             const std::vector<std::vector<int>> &dist,
             const ZzxOptions &opt)
{
    // Try all two-qubit gates at once.
    std::vector<int> all_q = gateQubits(c, sg2);
    SuppressionResult all = oracle.cutFor(all_q);
    if (satisfiesR(all, opt) || sg2.size() == 1)
        return {std::move(all), std::move(all_q)};

    // Heuristic: separate the two closest gates, then grow the groups
    // farthest-gate-first while R holds.
    int seed_a = -1, seed_b = -1;
    int best_d = std::numeric_limits<int>::max();
    for (size_t i = 0; i < sg2.size(); ++i)
        for (size_t j = i + 1; j < sg2.size(); ++j) {
            const int d = gateDistance(c.gates()[sg2[i]],
                                       c.gates()[sg2[j]], dist);
            if (d < best_d) {
                best_d = d;
                seed_a = sg2[i];
                seed_b = sg2[j];
            }
        }

    std::vector<int> group_a{seed_a}, group_b{seed_b};
    std::vector<int> rest;
    for (int gi : sg2)
        if (gi != seed_a && gi != seed_b)
            rest.push_back(gi);

    while (!rest.empty()) {
        // The (gate, group) pair with maximum distance.
        int pick = -1;
        int pick_group = 0; // 0 = A, 1 = B
        int pick_d = -1;
        for (int gi : rest) {
            const int da = gateGroupDistance(c, gi, group_a, dist);
            const int db = gateGroupDistance(c, gi, group_b, dist);
            const int d = std::max(da, db);
            if (d > pick_d) {
                pick_d = d;
                pick = gi;
                pick_group = da >= db ? 0 : 1;
            }
        }
        std::vector<int> &group = pick_group == 0 ? group_a : group_b;
        std::vector<int> trial = group;
        trial.push_back(pick);
        SuppressionResult res = oracle.cutFor(gateQubits(c, trial));
        if (!satisfiesR(res, opt))
            break;
        group.push_back(pick);
        rest.erase(std::find(rest.begin(), rest.end(), pick));
    }

    const std::vector<int> &chosen =
        group_a.size() >= group_b.size() ? group_a : group_b;
    std::vector<int> chosen_q = gateQubits(c, chosen);
    SuppressionResult res = oracle.cutFor(chosen_q);
    return {std::move(res), std::move(chosen_q)};
}

} // namespace

Schedule
scheduleByCuts(const QuantumCircuit &native, const dev::Device &dev,
               const GateDurations &durations, const ZzxOptions &opt,
               const std::vector<std::vector<int>> &dist,
               LayerCutOracle &oracle)
{
    require(native.isNative(),
            "scheduleByCuts: circuit must be native");
    require(native.numQubits() == dev.numQubits(),
            "scheduleByCuts: circuit/device size mismatch");

    Schedule sched;
    sched.num_qubits = native.numQubits();
    ckt::DagFrontier frontier(native);

    while (!frontier.done()) {
        const std::vector<int> ready = frontier.schedulable();
        ensure(!ready.empty(), "scheduleByCuts: stalled frontier");

        // Flush virtual RZ gates into a zero-duration layer.
        std::vector<int> virt, phys;
        for (int gi : ready) {
            if (native.gates()[gi].isVirtual())
                virt.push_back(gi);
            else
                phys.push_back(gi);
        }
        if (!virt.empty()) {
            Layer layer;
            layer.is_virtual = true;
            for (int gi : virt) {
                layer.gates.push_back({native.gates()[gi], false});
                frontier.markScheduled(gi);
            }
            sched.layers.push_back(std::move(layer));
            continue;
        }
        if (phys.empty())
            continue;

        // Case analysis on the schedulable set.
        std::vector<int> sg2;
        for (int gi : phys)
            if (native.gates()[gi].isTwoQubit())
                sg2.push_back(gi);

        SuppressionResult cut;
        std::vector<char> s_mask;
        if (sg2.empty()) {
            // Case 1: unconstrained cut; S = side with more gates.
            cut = oracle.cutFor({});
            int count[2] = {0, 0};
            for (int gi : phys)
                ++count[cut.side[native.gates()[gi].qubits[0]]];
            const int s_value = count[1] >= count[0] ? 1 : 0;
            s_mask.assign(cut.side.size(), 0);
            for (size_t v = 0; v < cut.side.size(); ++v)
                s_mask[v] = cut.side[v] == s_value ? 1 : 0;
        } else {
            // Case 2: two-qubit gates present.  S is the partition
            // holding the chosen group's qubits (the oracle
            // guarantees they share a side, via fallback if needed).
            TwoQResult two = twoQSchedule(native, sg2, oracle, dist, opt);
            cut = std::move(two.cut);
            ensure(!two.q.empty(), "twoQSchedule returned no qubits");
            const int s_value = cut.side[two.q[0]];
            s_mask.assign(cut.side.size(), 0);
            for (size_t v = 0; v < cut.side.size(); ++v)
                s_mask[v] = cut.side[v] == s_value ? 1 : 0;
        }

        // Procedure Schedule: place every frontier gate fully in S.
        Layer layer;
        std::vector<char> used(size_t(sched.num_qubits), 0);
        for (int gi : phys) {
            const Gate &g = native.gates()[gi];
            bool in_s = true;
            for (int q : g.qubits)
                in_s = in_s && s_mask[q];
            if (!in_s)
                continue;
            layer.gates.push_back({g, false});
            layer.duration = std::max(layer.duration, durations.of(g));
            for (int q : g.qubits)
                used[q] = 1;
            frontier.markScheduled(gi);
        }
        ensure(!layer.gates.empty(),
               "scheduleByCuts: layer would be empty (cut excluded "
               "every schedulable gate)");

        // Supplement the rest of S with identity gates so the driven
        // set equals S exactly.
        for (int q = 0; q < sched.num_qubits; ++q) {
            if (s_mask[q] && !used[q]) {
                layer.gates.push_back({Gate(GateKind::I, {q}), true});
                layer.duration =
                    std::max(layer.duration, durations.identity);
            }
        }

        std::vector<int> side(size_t(sched.num_qubits), 0);
        for (int q = 0; q < sched.num_qubits; ++q)
            side[q] = s_mask[q] ? 1 : 0;
        layer.metrics = evaluateCut(dev.graph(), side);
        layer.side = std::move(side);
        sched.layers.push_back(std::move(layer));
        oracle.onLayerCommitted(sched.layers.back());
    }
    return sched;
}

} // namespace qzz::core
