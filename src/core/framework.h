/**
 * @file
 * The co-optimization framework (Fig. 2 of the paper): one entry point
 * that takes a logical circuit and a device and produces an executable
 * pulse schedule under a chosen (pulse method x scheduling policy)
 * configuration.
 *
 * Pipeline: route to the topology -> lower to the native gate set ->
 * schedule (ParSched or ZZXSched) -> attach the pulse library.
 *
 * @note compileForDevice() / compileSegmentsForDevice() are thin
 * shims over the stage-based API in core/compiler.h (Compiler /
 * CompilerBuilder), which additionally exposes per-stage diagnostics,
 * injectable schedulers and pulse providers, a structured status
 * channel, and multi-threaded batch compilation.  New code should
 * prefer the Compiler API; these shims are kept for the paper-figure
 * reproductions and produce bit-identical output.
 */

#ifndef QZZ_CORE_FRAMEWORK_H
#define QZZ_CORE_FRAMEWORK_H

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/router.h"
#include "core/par_sched.h"
#include "core/pulse_opt.h"
#include "core/zzx_sched.h"

namespace qzz::core {

/** Scheduling policies compared in the paper (plus the
 *  calibration-weighted extension; see docs/architecture.md). */
enum class SchedPolicy
{
    Par, ///< maximal parallelism (baseline)
    Zzx, ///< ZZ-aware co-optimized scheduling
    /** ZZXSched with the suppression objective weighted by the
     *  device snapshot's calibrated per-edge ZZ rates
     *  (core::zzxWeightedSchedule()); reproduces Zzx bit-identically
     *  on uniform snapshots. */
    ZzxWeighted,
    /** Solver-optimal per-layer cuts by branch-and-bound
     *  (core::exactSchedule()) — the optimality oracle the heuristics
     *  are measured against.  Exponential worst case; intended for
     *  small devices. */
    Exact,
    /** ZzxWeighted with per-edge accumulated-ZZ state carried across
     *  layer boundaries (core::cycleAwareSchedule()): rotates the
     *  unavoidable residual across couplings instead of revisiting
     *  the same ones. */
    CycleAware,
};

/** Display name of a policy. */
std::string schedPolicyName(SchedPolicy p);

/**
 * Parse a policy name (inverse of schedPolicyName()).  Accepts the
 * display names plus the enum spellings, case-insensitively
 * ("ParSched", "Par", "ZZXSched", "Zzx"); nullopt when unknown.
 */
std::optional<SchedPolicy> schedPolicyFromName(std::string_view name);

/** Every display name schedPolicyFromName() accepts canonically, in
 *  enum order — for CLI validation messages and --help text. */
const std::vector<std::string> &schedPolicyNames();

/** One compilation configuration, e.g. {Pert, Zzx}. */
struct CompileOptions
{
    PulseMethod pulse = PulseMethod::Pert;
    SchedPolicy sched = SchedPolicy::Zzx;
    /** Options for ZZXSched (ignored by ParSched). */
    ZzxOptions zzx;
};

/** A fully compiled program, ready for pulse-level simulation. */
struct CompiledProgram
{
    /** The routed, native-gate circuit over device qubits. */
    ckt::QuantumCircuit native;
    /** The layered schedule. */
    Schedule schedule;
    /** Pulse programs for each native gate.  Shared ownership: the
     *  program keeps its library alive independent of the
     *  process-wide cache (clearPulseLibraryCache() cannot dangle
     *  it). */
    std::shared_ptr<const pulse::PulseLibrary> library;
    PulseMethod pulse_method = PulseMethod::Gaussian;
    SchedPolicy sched_policy = SchedPolicy::Par;
    /** final_layout[logical] = physical qubit after the last segment
     *  (the routing permutation; empty if routing did not run). */
    std::vector<int> final_layout;
    /** Epoch of the calibration snapshot the program was compiled
     *  against (dev::Calibration::epoch) — versions persisted
     *  artifacts by recalibration. */
    uint64_t calib_epoch = 0;
};

/**
 * Compile @p logical for @p dev under @p opt.
 *
 * Shim over core::Compiler (see core/compiler.h); a failed compile
 * raises UserError / InternalError exactly like the historical
 * implementation.
 *
 * @param logical the benchmark circuit (any gate kinds).
 * @param dev     target device.
 * @param opt     pulse method and scheduling policy.
 */
CompiledProgram compileForDevice(const ckt::QuantumCircuit &logical,
                                 const dev::Device &dev,
                                 const CompileOptions &opt);

/**
 * Compile a barrier-separated circuit (Sec. 8 composition with
 * XtalkSched / ColorDynamic): each segment is routed, lowered and
 * scheduled independently (a hard barrier between segments), with the
 * qubit layout threaded from one segment to the next.  The returned
 * schedule is the concatenation.
 *
 * Shim over core::Compiler::compileSegments().
 *
 * @param segments the sub-circuits produced by an outer crosstalk
 *                 pass; all must use the same logical register size.
 */
CompiledProgram
compileSegmentsForDevice(const std::vector<ckt::QuantumCircuit> &segments,
                         const dev::Device &dev,
                         const CompileOptions &opt);

/**
 * Dynamical-decoupling substitution (Sec. 8): replace a library's
 * identity program (used for supplementation) with a caller-provided
 * DD sequence, e.g. the DCG identity.
 */
pulse::PulseLibrary substituteIdentity(const pulse::PulseLibrary &base,
                                       pulse::PulseProgram dd_identity);

} // namespace qzz::core

#endif // QZZ_CORE_FRAMEWORK_H
