/**
 * @file
 * Schedule export: serialize a compiled schedule (layers, cuts,
 * per-gate pulse programs with sampled waveforms) to a JSON document
 * that a control-electronics backend or plotting notebook can
 * consume.  Output only; qzz itself never reads these files.
 */

#ifndef QZZ_CORE_SCHEDULE_IO_H
#define QZZ_CORE_SCHEDULE_IO_H

#include <ostream>

#include "core/framework.h"
#include "core/schedule.h"
#include "pulse/library.h"

namespace qzz::core {

/** Serialization controls. */
struct ScheduleIoOptions
{
    /** Waveform sample spacing in ns (0 = omit samples). */
    double sample_dt = 1.0;
    /** Pretty-print with newlines and indentation. */
    bool pretty = true;
};

/**
 * Write @p schedule as JSON.
 *
 * Layout:
 * {
 *   "num_qubits": n,
 *   "execution_time_ns": t,
 *   "layers": [ { "virtual": bool, "duration_ns": d,
 *                 "nq": ..., "nc": ..., "side": [...],
 *                 "gates": [ { "kind": "...", "qubits": [...],
 *                              "params": [...],
 *                              "supplemented": bool } ] } ],
 *   "pulses": { "<gate>": { "duration_ns": d,
 *                           "channels": { "x_a": [...], ... } } }
 * }
 */
void writeScheduleJson(const Schedule &schedule,
                       const pulse::PulseLibrary &library,
                       std::ostream &os,
                       const ScheduleIoOptions &opt = {});

/**
 * Write a whole CompiledProgram as JSON: the schedule document above
 * plus "pulse_method" / "sched_policy" fields holding the display
 * names, so consumers can recover the configuration with
 * pulseMethodFromName() / schedPolicyFromName() instead of
 * hand-rolling string matching.
 */
void writeCompiledProgramJson(const CompiledProgram &program,
                              std::ostream &os,
                              const ScheduleIoOptions &opt = {});

} // namespace qzz::core

#endif // QZZ_CORE_SCHEDULE_IO_H
