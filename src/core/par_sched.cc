#include "core/par_sched.h"

#include <algorithm>

#include "circuit/dag.h"
#include "common/error.h"

namespace qzz::core {

Schedule
parSchedule(const ckt::QuantumCircuit &native, const dev::Device &dev,
            const GateDurations &durations)
{
    require(native.isNative(), "parSchedule: circuit must be native");
    require(native.numQubits() == dev.numQubits(),
            "parSchedule: circuit/device size mismatch");

    Schedule sched;
    sched.num_qubits = native.numQubits();
    ckt::DagFrontier frontier(native);

    while (!frontier.done()) {
        const std::vector<int> ready = frontier.schedulable();
        ensure(!ready.empty(), "parSchedule: stalled frontier");

        // Flush virtual gates into a zero-duration layer first.
        std::vector<int> virt, phys;
        for (int gi : ready) {
            if (native.gates()[gi].isVirtual())
                virt.push_back(gi);
            else
                phys.push_back(gi);
        }
        if (!virt.empty()) {
            Layer layer;
            layer.is_virtual = true;
            for (int gi : virt) {
                layer.gates.push_back({native.gates()[gi], false});
                frontier.markScheduled(gi);
            }
            sched.layers.push_back(std::move(layer));
            continue; // re-derive the frontier
        }

        // One ASAP layer with every schedulable physical gate.
        Layer layer;
        for (int gi : phys) {
            const ckt::Gate &g = native.gates()[gi];
            layer.gates.push_back({g, false});
            layer.duration =
                std::max(layer.duration, durations.of(g));
            frontier.markScheduled(gi);
        }
        // Record the realized cut for reporting: S = driven qubits.
        std::vector<int> side(size_t(sched.num_qubits), 0);
        for (int q : layer.activeQubits(sched.num_qubits))
            side[q] = 1;
        layer.metrics = evaluateCut(dev.graph(), side);
        layer.side = std::move(side);
        sched.layers.push_back(std::move(layer));
    }
    return sched;
}

} // namespace qzz::core
