#include "core/framework.h"

#include "circuit/decompose.h"
#include "common/error.h"

namespace qzz::core {

std::string
schedPolicyName(SchedPolicy p)
{
    return p == SchedPolicy::Par ? "ParSched" : "ZZXSched";
}

CompiledProgram
compileForDevice(const ckt::QuantumCircuit &logical,
                 const dev::Device &dev, const CompileOptions &opt)
{
    return compileSegmentsForDevice({logical}, dev, opt);
}

CompiledProgram
compileSegmentsForDevice(
    const std::vector<ckt::QuantumCircuit> &segments,
    const dev::Device &dev, const CompileOptions &opt)
{
    require(!segments.empty(),
            "compileSegmentsForDevice: no segments given");
    CompiledProgram out;
    out.pulse_method = opt.pulse;
    out.sched_policy = opt.sched;
    out.library = &getPulseLibrary(opt.pulse);
    const GateDurations durations =
        GateDurations::fromLibrary(*out.library);

    out.native = ckt::QuantumCircuit(dev.numQubits(),
                                     segments.front().name());
    out.schedule.num_qubits = dev.numQubits();

    // Thread the layout through segments: the permutation left by one
    // segment's SWAPs is the next segment's initial layout.
    std::vector<int> layout;
    for (const ckt::QuantumCircuit &segment : segments) {
        require(segment.numQubits() == segments.front().numQubits(),
                "compileSegmentsForDevice: register size mismatch");
        ckt::RoutedCircuit routed =
            ckt::routeCircuit(segment, dev.graph(), layout);
        layout = routed.final_layout;
        ckt::QuantumCircuit native =
            ckt::decomposeToNative(routed.circuit);
        ensure(ckt::respectsConnectivity(native, dev.graph()),
               "compileSegmentsForDevice: connectivity violated");
        for (const ckt::Gate &g : native.gates())
            out.native.add(g);

        Schedule sched =
            opt.sched == SchedPolicy::Par
                ? parSchedule(native, dev, durations)
                : zzxSchedule(native, dev, durations, opt.zzx);
        for (Layer &layer : sched.layers)
            out.schedule.layers.push_back(std::move(layer));
    }
    return out;
}

pulse::PulseLibrary
substituteIdentity(const pulse::PulseLibrary &base,
                   pulse::PulseProgram dd_identity)
{
    pulse::PulseLibrary lib(base.name() + "+DD");
    for (pulse::PulseGate g :
         {pulse::PulseGate::SX, pulse::PulseGate::RZX}) {
        if (base.has(g))
            lib.set(g, base.get(g));
    }
    lib.set(pulse::PulseGate::Identity, std::move(dd_identity));
    return lib;
}

} // namespace qzz::core
