#include "core/framework.h"

#include "common/error.h"
#include "common/strings.h"
#include "core/compiler.h"

namespace qzz::core {

std::string
schedPolicyName(SchedPolicy p)
{
    switch (p) {
    case SchedPolicy::Par:
        return "ParSched";
    case SchedPolicy::Zzx:
        return "ZZXSched";
    case SchedPolicy::ZzxWeighted:
        return "ZzxWeighted";
    case SchedPolicy::Exact:
        return "ExactSched";
    case SchedPolicy::CycleAware:
        return "CycleAware";
    }
    panic("schedPolicyName: unknown policy");
}

std::optional<SchedPolicy>
schedPolicyFromName(std::string_view name)
{
    if (iequalsAscii(name, "ParSched") || iequalsAscii(name, "Par"))
        return SchedPolicy::Par;
    if (iequalsAscii(name, "ZZXSched") || iequalsAscii(name, "Zzx"))
        return SchedPolicy::Zzx;
    if (iequalsAscii(name, "ZzxWeighted") ||
        iequalsAscii(name, "Weighted"))
        return SchedPolicy::ZzxWeighted;
    if (iequalsAscii(name, "ExactSched") || iequalsAscii(name, "Exact"))
        return SchedPolicy::Exact;
    if (iequalsAscii(name, "CycleAware") || iequalsAscii(name, "Cycle"))
        return SchedPolicy::CycleAware;
    return std::nullopt;
}

const std::vector<std::string> &
schedPolicyNames()
{
    static const std::vector<std::string> names = {
        schedPolicyName(SchedPolicy::Par),
        schedPolicyName(SchedPolicy::Zzx),
        schedPolicyName(SchedPolicy::ZzxWeighted),
        schedPolicyName(SchedPolicy::Exact),
        schedPolicyName(SchedPolicy::CycleAware)};
    return names;
}

CompiledProgram
compileForDevice(const ckt::QuantumCircuit &logical,
                 const dev::Device &dev, const CompileOptions &opt)
{
    return compileSegmentsForDevice({logical}, dev, opt);
}

CompiledProgram
compileSegmentsForDevice(
    const std::vector<ckt::QuantumCircuit> &segments,
    const dev::Device &dev, const CompileOptions &opt)
{
    const Compiler compiler = CompilerBuilder(dev).options(opt).build();
    return unwrapOrThrow(compiler.compileSegments(segments));
}

pulse::PulseLibrary
substituteIdentity(const pulse::PulseLibrary &base,
                   pulse::PulseProgram dd_identity)
{
    pulse::PulseLibrary lib(base.name() + "+DD");
    for (pulse::PulseGate g :
         {pulse::PulseGate::SX, pulse::PulseGate::RZX}) {
        if (base.has(g))
            lib.set(g, base.get(g));
    }
    lib.set(pulse::PulseGate::Identity, std::move(dd_identity));
    return lib;
}

} // namespace qzz::core
