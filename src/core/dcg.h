/**
 * @file
 * Dynamically corrected gates (DCG) assembled from Gaussian
 * primitives (Sec. 7.1.1 method 3 and Appendix A of the paper).
 *
 * DCG does not optimize pulses numerically; it concatenates standard
 * Gaussian segments so that first-order ZZ crosstalk echoes away:
 *  - identity: X(pi) X(pi), 2 x 20 ns = 40 ns;
 *  - Rx(pi/2): X(pi) | X(pi/2) X(-pi/2) | X(pi) | X(pi/2, 40 ns),
 *    total 120 ns (Fig. 28c).
 * The price is duration: 2-6x longer than the optimized 20 ns pulses,
 * which is why DCG accumulates more residual error (Fig. 16).
 */

#ifndef QZZ_CORE_DCG_H
#define QZZ_CORE_DCG_H

#include "pulse/library.h"

namespace qzz::core {

/** The DCG identity sequence (duration 2 * @p t_seg). */
pulse::PulseProgram dcgIdentity(double t_seg = 20.0);

/** The DCG Rx(pi/2) sequence (duration 6 * @p t_seg). */
pulse::PulseProgram dcgSx(double t_seg = 20.0);

/**
 * The DCG pulse library: SX and Identity only.  Two-qubit DCG
 * sequences are omitted, as in the paper ("its sequence for two-qubit
 * gates is too complicated and too long in practice").
 */
pulse::PulseLibrary dcgLibrary(double t_seg = 20.0);

} // namespace qzz::core

#endif // QZZ_CORE_DCG_H
