#include "core/schedule.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace qzz::core {

double
GateDurations::of(const ckt::Gate &g) const
{
    switch (g.kind) {
    case ckt::GateKind::SX:
        return sx;
    case ckt::GateKind::I:
        return identity;
    case ckt::GateKind::RZX:
        return rzx;
    case ckt::GateKind::RZ:
        return 0.0;
    default:
        fatal("GateDurations::of: non-native gate " + g.toString());
    }
}

GateDurations
GateDurations::fromLibrary(const pulse::PulseLibrary &lib)
{
    GateDurations d;
    d.sx = lib.get(pulse::PulseGate::SX).duration;
    d.identity = lib.get(pulse::PulseGate::Identity).duration;
    if (lib.has(pulse::PulseGate::RZX))
        d.rzx = lib.get(pulse::PulseGate::RZX).duration;
    return d;
}

std::vector<int>
Layer::activeQubits(int num_qubits) const
{
    std::vector<char> active(size_t(num_qubits), 0);
    for (const ScheduledGate &sg : gates)
        if (!sg.gate.isVirtual())
            for (int q : sg.gate.qubits)
                active[q] = 1;
    std::vector<int> out;
    for (int q = 0; q < num_qubits; ++q)
        if (active[q])
            out.push_back(q);
    return out;
}

double
Schedule::executionTime() const
{
    double t = 0.0;
    for (const Layer &l : layers)
        t += l.duration;
    return t;
}

int
Schedule::physicalLayerCount() const
{
    int n = 0;
    for (const Layer &l : layers)
        if (!l.is_virtual)
            ++n;
    return n;
}

int
Schedule::circuitGateCount() const
{
    int n = 0;
    for (const Layer &l : layers)
        for (const ScheduledGate &sg : l.gates)
            if (!sg.supplemented)
                ++n;
    return n;
}

double
Schedule::meanNc() const
{
    double sum = 0.0;
    int count = 0;
    for (const Layer &l : layers) {
        if (l.is_virtual)
            continue;
        sum += double(l.metrics.nc);
        ++count;
    }
    return count ? sum / double(count) : 0.0;
}

int
Schedule::maxNq() const
{
    int best = 0;
    for (const Layer &l : layers)
        if (!l.is_virtual)
            best = std::max(best, l.metrics.nq);
    return best;
}

double
residualZzRate(const Layer &layer, const std::vector<double> &zz)
{
    if (layer.is_virtual)
        return 0.0;
    if (layer.metrics.unsuppressed_edge.empty()) {
        // Empty mask = all-on: no cut structure (ParSched), every
        // coupling stays unsuppressed.
        double sum = 0.0;
        for (double lambda : zz)
            sum += std::abs(lambda);
        return sum;
    }
    return residualZz(layer.metrics, zz);
}

double
meanResidualZz(const Schedule &schedule, const std::vector<double> &zz)
{
    double sum = 0.0;
    int count = 0;
    for (const Layer &l : schedule.layers) {
        if (l.is_virtual)
            continue;
        sum += residualZzRate(l, zz);
        ++count;
    }
    return count ? sum / double(count) : 0.0;
}

} // namespace qzz::core
