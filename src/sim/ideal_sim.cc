#include "sim/ideal_sim.h"

#include "common/error.h"

namespace qzz::sim {

void
applyGateIdeal(const ckt::Gate &g, StateVector &psi)
{
    if (g.kind == ckt::GateKind::RZ) {
        psi.applyRz(g.qubits[0], g.params[0]);
        return;
    }
    const la::CMatrix u = ckt::gateMatrix(g);
    if (g.isTwoQubit())
        psi.apply2Q(u, g.qubits[0], g.qubits[1]);
    else
        psi.apply1Q(u, g.qubits[0]);
}

StateVector
runIdealCircuit(const ckt::QuantumCircuit &circuit)
{
    StateVector psi(circuit.numQubits());
    for (const ckt::Gate &g : circuit.gates())
        applyGateIdeal(g, psi);
    return psi;
}

StateVector
runIdealSchedule(const core::Schedule &schedule)
{
    StateVector psi(schedule.num_qubits);
    for (const core::Layer &layer : schedule.layers)
        for (const core::ScheduledGate &sg : layer.gates)
            applyGateIdeal(sg.gate, psi);
    return psi;
}

} // namespace qzz::sim
