#include "sim/fitting.h"

#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace qzz::sim {

namespace {

/**
 * For fixed frequency, solve y ~ a cos(wt) + b sin(wt) + c by linear
 * least squares; return the residual sum of squares and coefficients.
 */
double
residualAt(const std::vector<double> &t, const std::vector<double> &y,
           double f, double coef[3])
{
    const double w = kTwoPi * f;
    // Normal equations for [a b c].
    double m[3][3] = {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}};
    double rhs[3] = {0, 0, 0};
    for (size_t i = 0; i < t.size(); ++i) {
        const double basis[3] = {std::cos(w * t[i]), std::sin(w * t[i]),
                                 1.0};
        for (int r = 0; r < 3; ++r) {
            rhs[r] += basis[r] * y[i];
            for (int c = 0; c < 3; ++c)
                m[r][c] += basis[r] * basis[c];
        }
    }
    // Solve the 3x3 system by Gaussian elimination with pivoting.
    for (int col = 0; col < 3; ++col) {
        int piv = col;
        for (int r = col + 1; r < 3; ++r)
            if (std::abs(m[r][col]) > std::abs(m[piv][col]))
                piv = r;
        if (piv != col) {
            for (int c = 0; c < 3; ++c)
                std::swap(m[col][c], m[piv][c]);
            std::swap(rhs[col], rhs[piv]);
        }
        const double d = m[col][col];
        if (std::abs(d) < 1e-30) {
            coef[0] = coef[1] = 0.0;
            coef[2] = rhs[2];
            return 1e300;
        }
        for (int r = col + 1; r < 3; ++r) {
            const double fpiv = m[r][col] / d;
            for (int c = col; c < 3; ++c)
                m[r][c] -= fpiv * m[col][c];
            rhs[r] -= fpiv * rhs[col];
        }
    }
    for (int r = 2; r >= 0; --r) {
        double acc = rhs[r];
        for (int c = r + 1; c < 3; ++c)
            acc -= m[r][c] * coef[c];
        coef[r] = acc / m[r][r];
    }

    double rss = 0.0;
    for (size_t i = 0; i < t.size(); ++i) {
        const double pred = coef[0] * std::cos(w * t[i]) +
                            coef[1] * std::sin(w * t[i]) + coef[2];
        rss += (y[i] - pred) * (y[i] - pred);
    }
    return rss;
}

} // namespace

SinusoidFit
fitSinusoid(const std::vector<double> &t, const std::vector<double> &y,
            double f_min, double f_max, int grid_size)
{
    require(t.size() == y.size() && t.size() >= 8,
            "fitSinusoid: need at least 8 samples");
    require(f_max > f_min && f_min >= 0.0, "fitSinusoid: bad bounds");
    require(grid_size >= 16, "fitSinusoid: grid too small");

    double coef[3];
    double best_f = f_min;
    double best_rss = 1e301;
    for (int i = 0; i <= grid_size; ++i) {
        const double f =
            f_min + (f_max - f_min) * double(i) / double(grid_size);
        const double rss = residualAt(t, y, f, coef);
        if (rss < best_rss) {
            best_rss = rss;
            best_f = f;
        }
    }

    // Golden-section refinement around the best grid cell.
    const double step = (f_max - f_min) / double(grid_size);
    double lo = std::max(f_min, best_f - step);
    double hi = std::min(f_max, best_f + step);
    const double gr = 0.618033988749895;
    double a = hi - gr * (hi - lo), b = lo + gr * (hi - lo);
    double fa = residualAt(t, y, a, coef);
    double fb = residualAt(t, y, b, coef);
    for (int it = 0; it < 120; ++it) {
        if (fa < fb) {
            hi = b;
            b = a;
            fb = fa;
            a = hi - gr * (hi - lo);
            fa = residualAt(t, y, a, coef);
        } else {
            lo = a;
            a = b;
            fa = fb;
            b = lo + gr * (hi - lo);
            fb = residualAt(t, y, b, coef);
        }
    }
    best_f = (lo + hi) / 2.0;
    best_rss = residualAt(t, y, best_f, coef);

    SinusoidFit fit;
    fit.frequency = best_f;
    fit.amplitude = std::hypot(coef[0], coef[1]);
    fit.phase = std::atan2(-coef[1], coef[0]);
    fit.offset = coef[2];
    fit.rms_residual = std::sqrt(best_rss / double(t.size()));
    return fit;
}

} // namespace qzz::sim
