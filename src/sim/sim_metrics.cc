#include "sim/sim_metrics.h"

namespace qzz::sim {

SimMetrics
simMetrics(const char *flavor)
{
    auto &reg = tel::MetricsRegistry::global();
    const tel::MetricLabels by_sim{{"sim", flavor}};
    // Kernel times range from ~1us (6-qubit layers) up to ~1s for the
    // largest registers: 100ns * 4^13 covers it in 14 buckets.
    const auto buckets = tel::HistogramBuckets::logarithmic(100.0, 4.0, 14);
    auto kernel = [&](const char *name) {
        return &reg.histogram(
            "qzz_sim_kernel_ns",
            "Nanoseconds spent per physical layer in one simulator "
            "kernel class",
            buckets, {{"sim", flavor}, {"kernel", name}});
    };
    SimMetrics m;
    m.layers = &reg.counter("qzz_sim_layers_total",
                            "Physical layers integrated", by_sim);
    m.steps = &reg.counter("qzz_sim_steps_total",
                           "Strang integrator steps executed", by_sim);
    m.phase_ns = kernel("phase");
    m.gate_ns = kernel("gate");
    m.decoh_ns = kernel("decoherence");
    return m;
}

} // namespace qzz::sim
