/**
 * @file
 * Sinusoid frequency estimation for the Ramsey experiments (Sec. 7.4).
 *
 * Fits y(t) ~ offset + amplitude * cos(2 pi f t + phase) by scanning
 * candidate frequencies (amplitude/phase/offset solved in closed form
 * per frequency by linear least squares) followed by golden-section
 * refinement.  Robust on noiseless simulator traces and accurate far
 * below the naive 1/T_span resolution.
 */

#ifndef QZZ_SIM_FITTING_H
#define QZZ_SIM_FITTING_H

#include <vector>

namespace qzz::sim {

/** Result of a sinusoid fit. */
struct SinusoidFit
{
    /** Frequency in cycles per time unit (GHz when t is in ns). */
    double frequency = 0.0;
    double amplitude = 0.0;
    double phase = 0.0;
    double offset = 0.0;
    /** Root-mean-square residual of the fit. */
    double rms_residual = 0.0;
};

/**
 * Fit a sinusoid to samples (t[i], y[i]).
 *
 * @param t         sample times.
 * @param y         sample values.
 * @param f_min     lower frequency bound (>= 0).
 * @param f_max     upper frequency bound.
 * @param grid_size coarse scan resolution.
 */
SinusoidFit fitSinusoid(const std::vector<double> &t,
                        const std::vector<double> &y, double f_min,
                        double f_max, int grid_size = 4000);

} // namespace qzz::sim

#endif // QZZ_SIM_FITTING_H
