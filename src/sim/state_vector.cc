// The optimized kernels (apply1Q(Mat2)/apply2Q(Mat4)/
// applyPhaseVector) live in state_vector_kernels.cc, the only
// translation unit the build compiles with the vector ISA; this
// file keeps the constructor, the retained scalar reference paths,
// and the observables at baseline codegen.

#include "sim/state_vector.h"

#include <cmath>

#include "common/error.h"

namespace qzz::sim {

using la::cplx;

StateVector::StateVector(int n) : n_(n)
{
    require(n >= 1 && n <= 20, "StateVector: qubit count out of range");
    amps_.assign(size_t(1) << n, cplx{0.0, 0.0});
    amps_[0] = 1.0;
}

void
StateVector::apply1Q(const la::CMatrix &u, int q)
{
    require(u.rows() == 2 && u.cols() == 2, "apply1Q: need a 2x2 matrix");
    require(q >= 0 && q < n_, "apply1Q: qubit out of range");
    const size_t stride = size_t(1) << bitPos(q);
    const cplx u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
    const size_t dim = amps_.size();
    for (size_t base = 0; base < dim; base += 2 * stride) {
        for (size_t off = 0; off < stride; ++off) {
            const size_t i0 = base + off;
            const size_t i1 = i0 + stride;
            const cplx a0 = amps_[i0], a1 = amps_[i1];
            amps_[i0] = u00 * a0 + u01 * a1;
            amps_[i1] = u10 * a0 + u11 * a1;
        }
    }
}

void
StateVector::apply2Q(const la::CMatrix &u, int q_hi, int q_lo)
{
    require(u.rows() == 4 && u.cols() == 4, "apply2Q: need a 4x4 matrix");
    require(q_hi != q_lo, "apply2Q: distinct qubits required");
    const size_t s_hi = size_t(1) << bitPos(q_hi);
    const size_t s_lo = size_t(1) << bitPos(q_lo);
    const size_t dim = amps_.size();
    for (size_t k = 0; k < dim; ++k) {
        if ((k & s_hi) || (k & s_lo))
            continue; // enumerate each 4-tuple once from its 00 member
        const size_t i00 = k;
        const size_t i01 = k | s_lo;
        const size_t i10 = k | s_hi;
        const size_t i11 = k | s_hi | s_lo;
        const cplx a00 = amps_[i00], a01 = amps_[i01];
        const cplx a10 = amps_[i10], a11 = amps_[i11];
        amps_[i00] =
            u(0, 0) * a00 + u(0, 1) * a01 + u(0, 2) * a10 + u(0, 3) * a11;
        amps_[i01] =
            u(1, 0) * a00 + u(1, 1) * a01 + u(1, 2) * a10 + u(1, 3) * a11;
        amps_[i10] =
            u(2, 0) * a00 + u(2, 1) * a01 + u(2, 2) * a10 + u(2, 3) * a11;
        amps_[i11] =
            u(3, 0) * a00 + u(3, 1) * a01 + u(3, 2) * a10 + u(3, 3) * a11;
    }
}

void
StateVector::applyRz(int q, double theta)
{
    require(q >= 0 && q < n_, "applyRz: qubit out of range");
    const size_t mask = size_t(1) << bitPos(q);
    const cplx p0 = std::exp(cplx{0.0, -theta / 2.0});
    const cplx p1 = std::exp(cplx{0.0, theta / 2.0});
    for (size_t k = 0; k < amps_.size(); ++k)
        amps_[k] *= (k & mask) ? p1 : p0;
}

void
StateVector::applyDiagonalPhase(const std::vector<double> &energies,
                                double dt)
{
    require(energies.size() == amps_.size(),
            "applyDiagonalPhase: table size mismatch");
    for (size_t k = 0; k < amps_.size(); ++k) {
        const double phi = energies[k] * dt;
        amps_[k] *= cplx{std::cos(phi), -std::sin(phi)};
    }
}

double
StateVector::probabilityOne(int q) const
{
    const size_t mask = size_t(1) << bitPos(q);
    double p = 0.0;
    for (size_t k = 0; k < amps_.size(); ++k)
        if (k & mask)
            p += std::norm(amps_[k]);
    return p;
}

cplx
StateVector::overlap(const StateVector &other) const
{
    require(other.n_ == n_, "overlap: size mismatch");
    return la::dot(amps_, other.amps_);
}

double
StateVector::fidelity(const StateVector &other) const
{
    return std::norm(overlap(other));
}

double
StateVector::norm() const
{
    return la::norm(amps_);
}

std::vector<double>
zzEnergyTable(int n, const std::vector<std::array<int, 2>> &edges,
              const std::vector<double> &lambdas)
{
    require(edges.size() == lambdas.size(),
            "zzEnergyTable: edge/lambda count mismatch");
    std::vector<double> table(size_t(1) << n, 0.0);
    for (size_t k = 0; k < table.size(); ++k) {
        double e = 0.0;
        for (size_t i = 0; i < edges.size(); ++i) {
            const int zu =
                ((k >> (n - 1 - edges[i][0])) & 1) ? -1 : 1;
            const int zv =
                ((k >> (n - 1 - edges[i][1])) & 1) ? -1 : 1;
            e += lambdas[i] * double(zu * zv);
        }
        table[k] = e;
    }
    return table;
}

} // namespace qzz::sim
