/**
 * @file
 * Open-system pulse-level schedule simulation: the Fig. 23 study of
 * ZZ crosstalk combined with T1 relaxation and T2 dephasing.
 *
 * Same Strang-split evolution as PulseScheduleSimulator, acting on a
 * density matrix, with exact per-step amplitude-damping and
 * pure-dephasing Kraus channels on every qubit (rates 1/T1(q) and
 * 1/T_phi(q) = 1/T2(q) - 1/(2 T1(q)), read per qubit from the
 * device's calibration snapshot).
 */

#ifndef QZZ_SIM_LINDBLAD_H
#define QZZ_SIM_LINDBLAD_H

#include "core/schedule.h"
#include "device/device.h"
#include "pulse/library.h"
#include "sim/density_matrix.h"
#include "sim/pulse_sim.h"

namespace qzz::sim {

/** Density-matrix twin of PulseScheduleSimulator. */
class DensityMatrixScheduleSimulator
{
  public:
    DensityMatrixScheduleSimulator(const dev::Device &device,
                                   const pulse::PulseLibrary &library,
                                   PulseSimOptions options = {});

    /** Evolve |0..0><0..0| through the schedule. */
    DensityMatrix run(const core::Schedule &schedule) const;

    /** Evolve a caller-prepared state through the schedule. */
    void run(const core::Schedule &schedule, DensityMatrix &rho) const;

    /** Evolve one layer. */
    void runLayer(const core::Layer &layer, DensityMatrix &rho) const;

  private:
    // Owned copies: simulators must stay valid regardless of the
    // lifetime of the arguments they were built from.
    dev::Device device_;
    pulse::PulseLibrary library_;
    PulseSimOptions options_;
    std::vector<double> zz_energies_;
    SimMetrics metrics_;
    /** True when any qubit has a finite T1 or T2 (skip the Kraus
     *  sweep entirely on fully coherent devices). */
    bool any_decoherence_ = false;

    /** One layer against a caller-owned propagator memo (run() keeps
     *  one across layers so equal-dt layers share entries). */
    void runLayerImpl(const core::Layer &layer, DensityMatrix &rho,
                      StepPropagatorMemo &memo) const;
    /** The retained seed integrator (scalar_reference option). */
    void runLayerScalar(const core::Layer &layer,
                        DensityMatrix &rho) const;

    /** Per-qubit decay probability / dephasing retention for one
     *  integrator step of @p dt, from the calibrated T1(q)/T2(q).
     *  Computed once per layer (dt is fixed within it), applied at
     *  every Strang step. */
    void decoherenceFactors(double dt, std::vector<double> &gamma,
                            std::vector<double> &keep) const;
};

} // namespace qzz::sim

#endif // QZZ_SIM_LINDBLAD_H
