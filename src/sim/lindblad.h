/**
 * @file
 * Open-system pulse-level schedule simulation: the Fig. 23 study of
 * ZZ crosstalk combined with T1 relaxation and T2 dephasing.
 *
 * Same Strang-split evolution as PulseScheduleSimulator, acting on a
 * density matrix, with exact per-step amplitude-damping and
 * pure-dephasing Kraus channels on every qubit (rates 1/T1 and
 * 1/T_phi = 1/T2 - 1/(2 T1)).
 */

#ifndef QZZ_SIM_LINDBLAD_H
#define QZZ_SIM_LINDBLAD_H

#include "core/schedule.h"
#include "device/device.h"
#include "pulse/library.h"
#include "sim/density_matrix.h"
#include "sim/pulse_sim.h"

namespace qzz::sim {

/** Density-matrix twin of PulseScheduleSimulator. */
class DensityMatrixScheduleSimulator
{
  public:
    DensityMatrixScheduleSimulator(const dev::Device &device,
                                   const pulse::PulseLibrary &library,
                                   PulseSimOptions options = {});

    /** Evolve |0..0><0..0| through the schedule. */
    DensityMatrix run(const core::Schedule &schedule) const;

    /** Evolve a caller-prepared state through the schedule. */
    void run(const core::Schedule &schedule, DensityMatrix &rho) const;

    /** Evolve one layer. */
    void runLayer(const core::Layer &layer, DensityMatrix &rho) const;

  private:
    // Owned copies: simulators must stay valid regardless of the
    // lifetime of the arguments they were built from.
    dev::Device device_;
    pulse::PulseLibrary library_;
    PulseSimOptions options_;
    std::vector<double> zz_energies_;

    void applyDecoherence(DensityMatrix &rho, double dt) const;
};

} // namespace qzz::sim

#endif // QZZ_SIM_LINDBLAD_H
