#include "sim/ramsey.h"

#include <cmath>

#include "common/error.h"
#include "common/units.h"
#include "linalg/matrix.h"
#include "ode/propagator.h"

namespace qzz::sim {

using la::CMatrix;
using la::cplx;
using la::CVector;
using pulse::PulseGate;
using pulse::PulseProgram;

namespace {

/**
 * 8x8 chain Hamiltonian: optional drive programs per qubit plus the
 * two ZZ couplings.  Qubit 0 = Q1 (most significant bit).
 */
ode::HamiltonianFn
chainHamiltonian(const PulseProgram *progs[3], double lambda12,
                 double lambda23)
{
    // Copy the pointers (the programs themselves outlive the run).
    const PulseProgram *p0 = progs[0];
    const PulseProgram *p1 = progs[1];
    const PulseProgram *p2 = progs[2];
    return [p0, p1, p2, lambda12, lambda23](double t, CMatrix &h) {
        const PulseProgram *ps[3] = {p0, p1, p2};
        for (int q = 0; q < 3; ++q) {
            if (!ps[q])
                continue;
            const double ox = PulseProgram::eval(ps[q]->x_a, t);
            const double oy = PulseProgram::eval(ps[q]->y_a, t);
            if (ox == 0.0 && oy == 0.0)
                continue;
            const cplx d{ox, -oy};
            const int bit = 2 - q;
            const size_t mask = size_t(1) << bit;
            for (size_t k = 0; k < 8; ++k) {
                if (k & mask)
                    continue;
                h(k, k | mask) += d;
                h(k | mask, k) += std::conj(d);
            }
        }
        for (size_t k = 0; k < 8; ++k) {
            const double z1 = (k & 4) ? -1.0 : 1.0;
            const double z2 = (k & 2) ? -1.0 : 1.0;
            const double z3 = (k & 1) ? -1.0 : 1.0;
            h(k, k) += lambda12 * z1 * z2 + lambda23 * z2 * z3;
        }
    };
}

/** Propagator of one segment with the given per-qubit programs. */
CMatrix
segmentPropagator(const PulseProgram *progs[3], double duration,
                  const RamseyConfig &cfg)
{
    ode::PropagationOptions opt;
    opt.dt = cfg.dt;
    return ode::propagate(
        chainHamiltonian(progs, cfg.lambda12, cfg.lambda23), 8, 0.0,
        duration, opt);
}

/** Apply a diagonal RZ(theta) on Q2 (bit 1). */
void
applyRzQ2(CVector &psi, double theta)
{
    const cplx p0 = std::exp(cplx{0.0, -theta / 2.0});
    const cplx p1 = std::exp(cplx{0.0, theta / 2.0});
    for (size_t k = 0; k < psi.size(); ++k)
        psi[k] *= (k & 2) ? p1 : p0;
}

double
probabilityOneQ2(const CVector &psi)
{
    double p = 0.0;
    for (size_t k = 0; k < psi.size(); ++k)
        if (k & 2)
            p += std::norm(psi[k]);
    return p;
}

} // namespace

RamseyTrace
runRamsey(const RamseyConfig &cfg)
{
    require(cfg.library != nullptr, "runRamsey: pulse library required");
    require(cfg.segments >= 16, "runRamsey: too few segments");

    const PulseProgram &sx = cfg.library->get(PulseGate::SX);
    const PulseProgram &idp = cfg.library->get(PulseGate::Identity);

    // Rx(pi/2) on Q2 while the neighbors idle.
    const PulseProgram *readout_progs[3] = {nullptr, &sx, nullptr};
    const CMatrix u_half =
        segmentPropagator(readout_progs, sx.duration, cfg);

    // One idle segment, per circuit variant.
    const PulseProgram *idle_progs[3] = {nullptr, nullptr, nullptr};
    double t_seg = idp.duration;
    switch (cfg.circuit) {
    case RamseyCircuit::A:
        // True idling; use the same segment length as the identity
        // pulse so tau grids are comparable.
        break;
    case RamseyCircuit::B:
        idle_progs[1] = &idp;
        break;
    case RamseyCircuit::C:
        idle_progs[0] = &idp;
        idle_progs[2] = &idp;
        break;
    }
    const CMatrix u_seg = segmentPropagator(idle_progs, t_seg, cfg);

    // Initial state: neighbors prepared ideally, then the first
    // Rx(pi/2) pulse.
    CVector psi(8, cplx{0.0, 0.0});
    size_t basis = 0;
    if (cfg.q1_excited)
        basis |= 4;
    if (cfg.q3_excited)
        basis |= 1;
    psi[basis] = 1.0;
    psi = u_half * psi;

    RamseyTrace trace;
    trace.tau.reserve(size_t(cfg.segments) + 1);
    trace.p1.reserve(size_t(cfg.segments) + 1);
    for (int k = 0; k <= cfg.segments; ++k) {
        const double tau = double(k) * t_seg;
        // Readout branch: software detuning + second Rx(pi/2).
        CVector branch = psi;
        applyRzQ2(branch, kTwoPi * cfg.f_ramsey * tau);
        branch = u_half * branch;
        trace.tau.push_back(tau);
        trace.p1.push_back(probabilityOneQ2(branch));
        if (k < cfg.segments)
            psi = u_seg * psi;
    }

    // The oscillation sits near f_ramsey; search a generous window.
    const double f_hi = cfg.f_ramsey * 3.0 + 1e-3;
    const SinusoidFit fit = fitSinusoid(trace.tau, trace.p1, 0.0, f_hi);
    trace.frequency = fit.frequency;
    return trace;
}

ZzMeasurement
measureEffectiveZz(const RamseyConfig &base, bool probe_q1, bool probe_q3)
{
    require(probe_q1 || probe_q3,
            "measureEffectiveZz: need at least one probe neighbor");
    RamseyConfig ground = base;
    ground.q1_excited = false;
    ground.q3_excited = false;
    RamseyConfig excited = base;
    excited.q1_excited = probe_q1;
    excited.q3_excited = probe_q3;

    ZzMeasurement out;
    out.f_ground = runRamsey(ground).frequency;
    out.f_excited = runRamsey(excited).frequency;
    // Frequencies are in GHz (cycles/ns); report kHz.
    out.zz_khz = std::abs(out.f_excited - out.f_ground) * 1e6;
    return out;
}

} // namespace qzz::sim
