// The fused hot-path kernels (apply1Q/apply2Q/applyPhaseVector/
// applyDecoherence) live in density_matrix_kernels.cc, the only
// translation unit the build compiles with the vector ISA; this file
// keeps the constructors, the retained scalar reference paths, and
// the observables at baseline codegen.

#include "sim/density_matrix.h"

#include <cmath>

#include "common/error.h"

namespace qzz::sim {

using la::CMatrix;
using la::cplx;

DensityMatrix::DensityMatrix(int n) : n_(n)
{
    require(n >= 1 && n <= 10, "DensityMatrix: qubit count out of range");
    rho_ = CMatrix(dim(), dim());
    rho_(0, 0) = 1.0;
}

DensityMatrix
DensityMatrix::fromPure(const StateVector &psi)
{
    DensityMatrix dm(psi.numQubits());
    const auto &a = psi.amplitudes();
    for (size_t r = 0; r < a.size(); ++r)
        for (size_t c = 0; c < a.size(); ++c)
            dm.rho_(r, c) = a[r] * std::conj(a[c]);
    return dm;
}

void
DensityMatrix::apply1Q(const CMatrix &u, int q)
{
    require(u.rows() == 2 && u.cols() == 2, "apply1Q: need 2x2");
    apply1Q(la::toMat2(u), q);
}

void
DensityMatrix::apply2Q(const CMatrix &u, int q_hi, int q_lo)
{
    require(u.rows() == 4 && u.cols() == 4, "apply2Q: need 4x4");
    apply2Q(la::toMat4(u), q_hi, q_lo);
}

void
DensityMatrix::apply1QScalar(const CMatrix &u, int q)
{
    require(u.rows() == 2 && u.cols() == 2, "apply1Q: need 2x2");
    const size_t stride = size_t(1) << bitPos(q);
    const size_t d = dim();
    // Left multiply: rows mix within each column.
    for (size_t c = 0; c < d; ++c) {
        for (size_t base = 0; base < d; base += 2 * stride) {
            for (size_t off = 0; off < stride; ++off) {
                const size_t r0 = base + off, r1 = r0 + stride;
                const cplx a0 = rho_(r0, c), a1 = rho_(r1, c);
                rho_(r0, c) = u(0, 0) * a0 + u(0, 1) * a1;
                rho_(r1, c) = u(1, 0) * a0 + u(1, 1) * a1;
            }
        }
    }
    // Right multiply by U^dag: columns mix within each row.
    for (size_t r = 0; r < d; ++r) {
        for (size_t base = 0; base < d; base += 2 * stride) {
            for (size_t off = 0; off < stride; ++off) {
                const size_t c0 = base + off, c1 = c0 + stride;
                const cplx a0 = rho_(r, c0), a1 = rho_(r, c1);
                rho_(r, c0) =
                    a0 * std::conj(u(0, 0)) + a1 * std::conj(u(0, 1));
                rho_(r, c1) =
                    a0 * std::conj(u(1, 0)) + a1 * std::conj(u(1, 1));
            }
        }
    }
}

void
DensityMatrix::apply2QScalar(const CMatrix &u, int q_hi, int q_lo)
{
    require(u.rows() == 4 && u.cols() == 4, "apply2Q: need 4x4");
    const size_t s_hi = size_t(1) << bitPos(q_hi);
    const size_t s_lo = size_t(1) << bitPos(q_lo);
    const size_t d = dim();
    auto idx = [&](size_t k, int comp) {
        size_t out = k;
        if (comp & 2)
            out |= s_hi;
        if (comp & 1)
            out |= s_lo;
        return out;
    };
    // Left multiply.
    for (size_t c = 0; c < d; ++c) {
        for (size_t k = 0; k < d; ++k) {
            if ((k & s_hi) || (k & s_lo))
                continue;
            cplx v[4];
            for (int i = 0; i < 4; ++i)
                v[i] = rho_(idx(k, i), c);
            for (int i = 0; i < 4; ++i) {
                cplx acc = 0.0;
                for (int j = 0; j < 4; ++j)
                    acc += u(size_t(i), size_t(j)) * v[j];
                rho_(idx(k, i), c) = acc;
            }
        }
    }
    // Right multiply by U^dag.
    for (size_t r = 0; r < d; ++r) {
        for (size_t k = 0; k < d; ++k) {
            if ((k & s_hi) || (k & s_lo))
                continue;
            cplx v[4];
            for (int i = 0; i < 4; ++i)
                v[i] = rho_(r, idx(k, i));
            for (int i = 0; i < 4; ++i) {
                cplx acc = 0.0;
                for (int j = 0; j < 4; ++j)
                    acc += v[j] * std::conj(u(size_t(i), size_t(j)));
                rho_(r, idx(k, i)) = acc;
            }
        }
    }
}

void
DensityMatrix::applyRz(int q, double theta)
{
    const size_t mask = size_t(1) << bitPos(q);
    const size_t d = dim();
    const cplx phase = std::exp(cplx{0.0, -theta});
    for (size_t r = 0; r < d; ++r)
        for (size_t c = 0; c < d; ++c) {
            const bool rb = r & mask, cb = c & mask;
            if (rb == cb)
                continue;
            rho_(r, c) *= rb ? std::conj(phase) : phase;
        }
}

void
DensityMatrix::applyDiagonalPhase(const std::vector<double> &energies,
                                  double dt)
{
    require(energies.size() == dim(), "applyDiagonalPhase: table size");
    const size_t d = dim();
    for (size_t r = 0; r < d; ++r)
        for (size_t c = 0; c < d; ++c) {
            const double phi = (energies[r] - energies[c]) * dt;
            rho_(r, c) *= cplx{std::cos(phi), -std::sin(phi)};
        }
}

void
DensityMatrix::applyAmplitudeDamping(int q, double gamma)
{
    require(gamma >= 0.0 && gamma <= 1.0, "applyAmplitudeDamping: gamma");
    const size_t mask = size_t(1) << bitPos(q);
    const size_t d = dim();
    const double keep = std::sqrt(1.0 - gamma);
    for (size_t r = 0; r < d; ++r) {
        for (size_t c = 0; c < d; ++c) {
            const bool rb = r & mask, cb = c & mask;
            if (rb && cb)
                continue; // handled via the 00 partner below
            if (!rb && !cb) {
                rho_(r, c) += gamma * rho_(r | mask, c | mask);
            } else {
                rho_(r, c) *= keep; // one excited index
            }
        }
    }
    for (size_t r = 0; r < d; ++r)
        for (size_t c = 0; c < d; ++c)
            if ((r & mask) && (c & mask))
                rho_(r, c) *= 1.0 - gamma;
}

void
DensityMatrix::applyDephasing(int q, double keep)
{
    require(keep >= 0.0 && keep <= 1.0, "applyDephasing: keep factor");
    const size_t mask = size_t(1) << bitPos(q);
    const size_t d = dim();
    for (size_t r = 0; r < d; ++r)
        for (size_t c = 0; c < d; ++c) {
            const bool rb = r & mask, cb = c & mask;
            if (rb != cb)
                rho_(r, c) *= keep;
        }
}

void
DensityMatrix::applyDecoherenceScalar(const std::vector<double> &gamma,
                                      const std::vector<double> &keep)
{
    require(int(gamma.size()) == n_ && int(keep.size()) == n_,
            "applyDecoherence: per-qubit rate vectors must have one "
            "entry per qubit");
    for (int q = 0; q < n_; ++q) {
        if (gamma[size_t(q)] > 0.0)
            applyAmplitudeDamping(q, gamma[size_t(q)]);
        if (keep[size_t(q)] < 1.0)
            applyDephasing(q, keep[size_t(q)]);
    }
}

double
DensityMatrix::expectationPure(const StateVector &psi) const
{
    require(psi.numQubits() == n_, "expectationPure: size mismatch");
    const auto &a = psi.amplitudes();
    cplx acc = 0.0;
    for (size_t r = 0; r < a.size(); ++r) {
        cplx row = 0.0;
        for (size_t c = 0; c < a.size(); ++c)
            row += rho_(r, c) * a[c];
        acc += std::conj(a[r]) * row;
    }
    return acc.real();
}

double
DensityMatrix::trace() const
{
    return rho_.trace().real();
}

double
DensityMatrix::probabilityOne(int q) const
{
    const size_t mask = size_t(1) << bitPos(q);
    double p = 0.0;
    for (size_t k = 0; k < dim(); ++k)
        if (k & mask)
            p += rho_(k, k).real();
    return p;
}

} // namespace qzz::sim
