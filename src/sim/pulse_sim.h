/**
 * @file
 * Pulse-level simulation of a full schedule on a device.
 *
 * Within each physical layer the register evolves under
 *   H(t) = sum_gates H_gate(t)  +  sum_couplings lambda_e sz sz
 * where H_gate holds the drive channels of that gate's pulse program.
 * Integration uses Strang splitting: a half-step of the (diagonal,
 * always-on) ZZ bath, the per-gate local propagators over dt, and
 * another ZZ half-step.  Local propagators are exact matrix
 * exponentials of the instantaneous drive Hamiltonian, computed once
 * per time step per *gate kind* (all simultaneous SX gates share one
 * 2x2, etc.).
 *
 * Qubits without pulses simply sit in the ZZ bath — exactly the
 * physics the paper's scheduling fights.
 */

#ifndef QZZ_SIM_PULSE_SIM_H
#define QZZ_SIM_PULSE_SIM_H

#include "core/schedule.h"
#include "device/device.h"
#include "pulse/library.h"
#include "sim/sim_metrics.h"
#include "sim/state_vector.h"

namespace qzz::sim {

class StepPropagatorMemo;

/** Integration controls for the schedule simulators. */
struct PulseSimOptions
{
    /** Strang step (ns).  0.05 keeps splitting error ~1e-5. */
    double dt = 0.05;
    /** Global scale on all coupling strengths (0 disables ZZ —
     *  used by calibration tests). */
    double crosstalk_scale = 1.0;
    /** Integrate with the retained pre-optimization path (per-step
     *  cos/sin phase sweeps, per-gate propagator recomputes, unfused
     *  kernels).  The optimized path matches it to integrator
     *  accuracy; this switch exists for the kernel-equivalence tests
     *  and the bench_sim_speed baseline. */
    bool scalar_reference = false;
    /** Publish qzz_sim_* metrics to the global MetricsRegistry. */
    bool telemetry = true;
};

/** Simulates schedules against one device + pulse library. */
class PulseScheduleSimulator
{
  public:
    PulseScheduleSimulator(const dev::Device &device,
                           const pulse::PulseLibrary &library,
                           PulseSimOptions options = {});

    /** Evolve |0..0> through the schedule. */
    StateVector run(const core::Schedule &schedule) const;

    /** Evolve a caller-prepared state through the schedule. */
    void run(const core::Schedule &schedule, StateVector &psi) const;

    /** Evolve one physical layer. */
    void runLayer(const core::Layer &layer, StateVector &psi) const;

  private:
    // Owned copies: simulators must stay valid regardless of the
    // lifetime of the arguments they were built from.
    dev::Device device_;
    pulse::PulseLibrary library_;
    PulseSimOptions options_;
    std::vector<double> zz_energies_;
    SimMetrics metrics_;

    /** One layer against a caller-owned propagator memo (run() keeps
     *  one across layers so equal-dt layers share entries). */
    void runLayerImpl(const core::Layer &layer, StateVector &psi,
                      StepPropagatorMemo &memo) const;
    /** The retained seed integrator (scalar_reference option). */
    void runLayerScalar(const core::Layer &layer, StateVector &psi) const;
};

/** Unit phase table p[k] = exp(-i energies[k] dt), precomputed once
 *  per layer by the simulators and applied per step. */
la::CVector phaseVector(const std::vector<double> &energies, double dt);

} // namespace qzz::sim

#endif // QZZ_SIM_PULSE_SIM_H
