/**
 * @file
 * State-vector register for circuit-scale simulation (4-12 qubits).
 *
 * Bit convention matches la::embed(): qubit 0 is the most significant
 * bit of the basis index.  Local gate application is O(2^n) per gate;
 * diagonal phases (the always-on ZZ bath) are applied from a
 * precomputed per-basis-state energy table.
 */

#ifndef QZZ_SIM_STATE_VECTOR_H
#define QZZ_SIM_STATE_VECTOR_H

#include <array>
#include <vector>

#include "linalg/matrix.h"

namespace qzz::sim {

/** An n-qubit pure state. */
class StateVector
{
  public:
    /** |0...0> on @p n qubits. */
    explicit StateVector(int n);

    int numQubits() const { return n_; }
    size_t dim() const { return amps_.size(); }

    la::CVector &amplitudes() { return amps_; }
    const la::CVector &amplitudes() const { return amps_; }

    /** Apply a 2x2 unitary to qubit @p q. */
    void apply1Q(const la::CMatrix &u, int q);
    /** Allocation-free overload for memoized step propagators; same
     *  arithmetic (and bits) as the CMatrix path. */
    void apply1Q(const la::Mat2 &u, int q);

    /** Apply a 4x4 unitary to qubits (@p q_hi, @p q_lo), with q_hi
     *  the most significant factor of the 4x4 matrix. */
    void apply2Q(const la::CMatrix &u, int q_hi, int q_lo);
    /** Allocation-free overload for memoized step propagators. */
    void apply2Q(const la::Mat4 &u, int q_hi, int q_lo);

    /** Apply exp(-i theta/2 Z) on qubit @p q (virtual RZ). */
    void applyRz(int q, double theta);

    /** Multiply amplitude k by exp(-i energies[k] * dt).
     *  Scalar reference: one cos/sin pair per amplitude per call; the
     *  schedule simulators precompute the phases once per layer and
     *  use applyPhaseVector() instead. */
    void applyDiagonalPhase(const std::vector<double> &energies,
                            double dt);

    /** Multiply amplitude k by the precomputed unit phase p[k]. */
    void applyPhaseVector(const la::CVector &p);

    /** Probability that qubit @p q reads 1. */
    double probabilityOne(int q) const;

    /** <this|other>. */
    la::cplx overlap(const StateVector &other) const;

    /** |<this|other>|^2. */
    double fidelity(const StateVector &other) const;

    /** 2-norm (1 up to integrator error). */
    double norm() const;

  private:
    int n_;
    la::CVector amps_;

    int bitPos(int q) const { return n_ - 1 - q; }
};

/**
 * Per-basis-state ZZ energies: E[k] = sum_edges lambda_e z_u(k) z_v(k),
 * the diagonal bath Hamiltonian of a device.
 */
std::vector<double>
zzEnergyTable(int n, const std::vector<std::array<int, 2>> &edges,
              const std::vector<double> &lambdas);

} // namespace qzz::sim

#endif // QZZ_SIM_STATE_VECTOR_H
