/**
 * @file
 * Density-matrix register for open-system simulation (Fig. 23).
 *
 * Sized for the paper's decoherence study (6-qubit benchmarks: 64x64
 * matrices).  Unitaries are applied locally from the left and right;
 * relaxation (T1) and dephasing (T2) enter as exact per-step Kraus
 * channels on each qubit.
 *
 * Hot-path kernels (apply1Q / apply2Q / applyPhaseVector /
 * applyDecoherence) are fused: conjugation U rho U^dag decomposes
 * into independent 2x2 (4x4) blocks mixing row pair (r0, r1) with
 * column pair (c0, c1), so one cache-blocked sweep applies the left
 * and the right factor together, in registers, with zero heap
 * allocation — instead of two full passes over the matrix.  For
 * n >= 8 qubits the row-block loops split across the shared
 * common::parallelFor() pool (block-disjoint writes, so results are
 * independent of thread count).  The pre-fusion implementations are
 * retained as *Scalar reference paths; the kernel-equivalence suite
 * (tests/sim/kernel_equivalence_test.cc) pins optimized == scalar to
 * <= 1e-14 elementwise, and bench/bench_sim_speed.cc measures the
 * ratio.  See docs/performance.md.
 */

#ifndef QZZ_SIM_DENSITY_MATRIX_H
#define QZZ_SIM_DENSITY_MATRIX_H

#include "linalg/matrix.h"
#include "sim/state_vector.h"

namespace qzz::sim {

/** An n-qubit mixed state. */
class DensityMatrix
{
  public:
    /** |0...0><0...0| on @p n qubits. */
    explicit DensityMatrix(int n);

    /** Pure-state density matrix. */
    static DensityMatrix fromPure(const StateVector &psi);

    int numQubits() const { return n_; }
    size_t dim() const { return size_t(1) << n_; }

    la::CMatrix &matrix() { return rho_; }
    const la::CMatrix &matrix() const { return rho_; }

    /** rho -> U_q rho U_q^dag for a 2x2 U (fused kernel). */
    void apply1Q(const la::Mat2 &u, int q);
    void apply1Q(const la::CMatrix &u, int q);

    /** rho -> U rho U^dag for a 4x4 U on (q_hi, q_lo) (fused). */
    void apply2Q(const la::Mat4 &u, int q_hi, int q_lo);
    void apply2Q(const la::CMatrix &u, int q_hi, int q_lo);

    /** Virtual RZ. */
    void applyRz(int q, double theta);

    /** rho[r,c] *= exp(-i (E[r] - E[c]) dt).
     *
     *  Scalar reference: one cos/sin pair per element per call.  The
     *  optimized twin is applyPhaseVector() — the schedule
     *  simulators precompute p once per layer and pay only complex
     *  multiplies per step. */
    void applyDiagonalPhase(const std::vector<double> &energies,
                            double dt);

    /** rho[r,c] *= p[r] * conj(p[c]) for a unit-modulus phase vector
     *  (p[i] = exp(-i E[i] dt), precomputed by the caller).  Agrees
     *  with applyDiagonalPhase() to 1 ulp per element. */
    void applyPhaseVector(const la::CVector &p);

    /** Amplitude damping with excited-state decay probability
     *  @p gamma on qubit @p q. */
    void applyAmplitudeDamping(int q, double gamma);

    /** Pure dephasing: off-diagonals in @p q scaled by @p keep. */
    void applyDephasing(int q, double keep);

    /**
     * Per-qubit decoherence sweep: amplitude damping with decay
     * probability @p gamma[q] followed by dephasing with retention
     * @p keep[q] on every qubit.  Qubits with gamma 0 / keep 1 are
     * skipped, so a heterogeneous device pays only for its lossy
     * qubits.  Both vectors must have numQubits() entries.
     *
     * Fused: both channels for one qubit land in a single sweep over
     * the matrix (the scalar path makes three).
     */
    void applyDecoherence(const std::vector<double> &gamma,
                          const std::vector<double> &keep);

    /** @name Scalar reference kernels
     *  The pre-vectorization implementations, element-by-element and
     *  unfused.  Retained verbatim so the optimized kernels can be
     *  regression-tested and benchmarked against them; used by the
     *  simulators' scalar_reference mode.
     *  @{
     */
    void apply1QScalar(const la::CMatrix &u, int q);
    void apply2QScalar(const la::CMatrix &u, int q_hi, int q_lo);
    void applyDecoherenceScalar(const std::vector<double> &gamma,
                                const std::vector<double> &keep);
    /** @} */

    /** <psi| rho |psi>. */
    double expectationPure(const StateVector &psi) const;

    /** tr(rho) (1 up to numerical error). */
    double trace() const;

    /** Probability that qubit @p q reads 1. */
    double probabilityOne(int q) const;

  private:
    int n_;
    la::CMatrix rho_;

    int bitPos(int q) const { return n_ - 1 - q; }
};

} // namespace qzz::sim

#endif // QZZ_SIM_DENSITY_MATRIX_H
