/**
 * @file
 * The optimized state-vector hot-path kernels, in their own
 * translation unit so the build can hand just these loops the
 * vector ISA (QZZ_VECTOR_KERNELS) while the retained scalar
 * reference paths in state_vector.cc keep the baseline codegen
 * they shipped with — the bench_sim_speed scalar/optimized ratio
 * then compares against the true pre-optimization engine.
 */

#include <cmath>

#include "common/error.h"
#include "sim/state_vector.h"

namespace qzz::sim {

using la::cplx;

namespace {

// Finite-input fast path of the std::complex multiply (identical
// bits for the values a state vector can hold); avoids the
// __muldc3 NaN-recovery branch that blocks auto-vectorization.
// Mirrors the helpers in density_matrix_kernels.cc.
inline cplx
cmul(cplx a, cplx b)
{
    return {a.real() * b.real() - a.imag() * b.imag(),
            a.real() * b.imag() + a.imag() * b.real()};
}

/** a*b + c*d without intermediate complex temporaries. */
inline cplx
cmul2(cplx a, cplx b, cplx c, cplx d)
{
    return {a.real() * b.real() - a.imag() * b.imag() +
                c.real() * d.real() - c.imag() * d.imag(),
            a.real() * b.imag() + a.imag() * b.real() +
                c.real() * d.imag() + c.imag() * d.real()};
}

} // namespace

void
StateVector::apply1Q(const la::Mat2 &u, int q)
{
    require(q >= 0 && q < n_, "apply1Q: qubit out of range");
    const size_t stride = size_t(1) << bitPos(q);
    const cplx u00 = u[0], u01 = u[1], u10 = u[2], u11 = u[3];
    const size_t dim = amps_.size();
    cplx *amps = amps_.data();
    for (size_t base = 0; base < dim; base += 2 * stride) {
        for (size_t off = 0; off < stride; ++off) {
            const size_t i0 = base + off;
            const size_t i1 = i0 + stride;
            const cplx a0 = amps[i0], a1 = amps[i1];
            amps[i0] = cmul2(u00, a0, u01, a1);
            amps[i1] = cmul2(u10, a0, u11, a1);
        }
    }
}

void
StateVector::apply2Q(const la::Mat4 &u, int q_hi, int q_lo)
{
    require(q_hi != q_lo, "apply2Q: distinct qubits required");
    const size_t s_hi = size_t(1) << bitPos(q_hi);
    const size_t s_lo = size_t(1) << bitPos(q_lo);
    const size_t dim = amps_.size();
    cplx *amps = amps_.data();
    for (size_t k = 0; k < dim; ++k) {
        if ((k & s_hi) || (k & s_lo))
            continue; // enumerate each 4-tuple once from its 00 member
        const size_t i00 = k;
        const size_t i01 = k | s_lo;
        const size_t i10 = k | s_hi;
        const size_t i11 = k | s_hi | s_lo;
        const cplx a[4] = {amps[i00], amps[i01], amps[i10], amps[i11]};
        const size_t idx[4] = {i00, i01, i10, i11};
        for (int r = 0; r < 4; ++r) {
            cplx acc = cmul(u[r * 4 + 0], a[0]);
            acc += cmul(u[r * 4 + 1], a[1]);
            acc += cmul(u[r * 4 + 2], a[2]);
            acc += cmul(u[r * 4 + 3], a[3]);
            amps[idx[r]] = acc;
        }
    }
}

void
StateVector::applyPhaseVector(const la::CVector &p)
{
    require(p.size() == amps_.size(),
            "applyPhaseVector: table size mismatch");
    // Local pointers: writes through the member vector would force
    // the compiler to re-read size()/data() every iteration (the
    // store may alias the vector object), defeating vectorization.
    const size_t dim = amps_.size();
    cplx *amps = amps_.data();
    const cplx *w = p.data();
    for (size_t k = 0; k < dim; ++k)
        amps[k] = cmul(amps[k], w[k]);
}

} // namespace qzz::sim
