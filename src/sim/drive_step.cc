#include "sim/drive_step.h"

#include "common/error.h"
#include "linalg/expm.h"

namespace qzz::sim {

using la::cplx;
using pulse::PulseGate;
using pulse::PulseProgram;

PulseGate
pulseGateOf(const ckt::Gate &g)
{
    switch (g.kind) {
    case ckt::GateKind::SX:
        return PulseGate::SX;
    case ckt::GateKind::I:
        return PulseGate::Identity;
    case ckt::GateKind::RZX:
        return PulseGate::RZX;
    default:
        fatal("pulse simulator: gate has no pulses: " + g.toString());
    }
}

int
pulseKindIndex(PulseGate k)
{
    return k == PulseGate::SX ? 0 : (k == PulseGate::Identity ? 1 : 2);
}

void
drive1QStep(const PulseProgram &p, double t_mid, double dt, la::Mat2 &out)
{
    const double ox = PulseProgram::eval(p.x_a, t_mid);
    const double oy = PulseProgram::eval(p.y_a, t_mid);
    la::expPauli(ox * dt, oy * dt, 0.0, out);
}

void
drive2QStep(const PulseProgram &p, double t_mid, double dt, la::Mat4 &out)
{
    const double oxa = PulseProgram::eval(p.x_a, t_mid);
    const double oya = PulseProgram::eval(p.y_a, t_mid);
    const double oxb = PulseProgram::eval(p.x_b, t_mid);
    const double oyb = PulseProgram::eval(p.y_b, t_mid);
    const double oc = PulseProgram::eval(p.coupling, t_mid);
    la::Mat4 h{};
    const cplx da{oxa, -oya};
    h[0 * 4 + 2] += da;
    h[1 * 4 + 3] += da;
    h[2 * 4 + 0] += std::conj(da);
    h[3 * 4 + 1] += std::conj(da);
    const cplx db{oxb, -oyb};
    h[0 * 4 + 1] += db;
    h[2 * 4 + 3] += db;
    h[1 * 4 + 0] += std::conj(db);
    h[3 * 4 + 2] += std::conj(db);
    h[0 * 4 + 1] += oc;
    h[1 * 4 + 0] += oc;
    h[2 * 4 + 3] += -oc;
    h[3 * 4 + 2] += -oc;
    la::expmPropagator4(h, dt, out);
}

la::CMatrix
drive1QStepScalar(const PulseProgram &p, double t_mid, double dt)
{
    const double ox = PulseProgram::eval(p.x_a, t_mid);
    const double oy = PulseProgram::eval(p.y_a, t_mid);
    return la::expPauli(ox * dt, oy * dt, 0.0);
}

la::CMatrix
drive2QStepScalar(const PulseProgram &p, double t_mid, double dt)
{
    const double oxa = PulseProgram::eval(p.x_a, t_mid);
    const double oya = PulseProgram::eval(p.y_a, t_mid);
    const double oxb = PulseProgram::eval(p.x_b, t_mid);
    const double oyb = PulseProgram::eval(p.y_b, t_mid);
    const double oc = PulseProgram::eval(p.coupling, t_mid);
    la::CMatrix h(4, 4);
    const cplx da{oxa, -oya};
    h(0, 2) += da;
    h(1, 3) += da;
    h(2, 0) += std::conj(da);
    h(3, 1) += std::conj(da);
    const cplx db{oxb, -oyb};
    h(0, 1) += db;
    h(2, 3) += db;
    h(1, 0) += std::conj(db);
    h(3, 2) += std::conj(db);
    h(0, 1) += oc;
    h(1, 0) += oc;
    h(2, 3) += -oc;
    h(3, 2) += -oc;
    return la::expmPropagator(h, dt);
}

template <typename M>
void
StepPropagatorMemo::prepare(Slot<M> &slot, size_t step, double dt)
{
    if (slot.dt != dt) {
        slot.dt = dt;
        slot.mats.clear();
        slot.have.clear();
    }
    if (step >= slot.have.size()) {
        slot.mats.resize(step + 1);
        slot.have.resize(step + 1, 0);
    }
}

const la::Mat2 &
StepPropagatorMemo::get1Q(const PulseProgram &p, PulseGate k, size_t step,
                          double dt)
{
    Slot<la::Mat2> &slot = slots1_[pulseKindIndex(k)];
    prepare(slot, step, dt);
    if (!slot.have[step]) {
        drive1QStep(p, (double(step) + 0.5) * dt, dt, slot.mats[step]);
        slot.have[step] = 1;
        ++misses_;
    }
    return slot.mats[step];
}

const la::Mat4 &
StepPropagatorMemo::get2Q(const PulseProgram &p, PulseGate k, size_t step,
                          double dt)
{
    Slot<la::Mat4> &slot = slots4_[pulseKindIndex(k)];
    prepare(slot, step, dt);
    if (!slot.have[step]) {
        drive2QStep(p, (double(step) + 0.5) * dt, dt, slot.mats[step]);
        slot.have[step] = 1;
        ++misses_;
    }
    return slot.mats[step];
}

} // namespace qzz::sim
