/**
 * @file
 * Ideal (noise-free) references: gate-matrix simulation of circuits
 * and schedules.  The fidelity metric of Sec. 7.3 compares the
 * pulse-level state against these outputs.
 */

#ifndef QZZ_SIM_IDEAL_SIM_H
#define QZZ_SIM_IDEAL_SIM_H

#include "circuit/circuit.h"
#include "core/schedule.h"
#include "sim/state_vector.h"

namespace qzz::sim {

/** Apply one gate's exact unitary to a state. */
void applyGateIdeal(const ckt::Gate &g, StateVector &psi);

/** Run a circuit with exact gate matrices from |0...0>. */
StateVector runIdealCircuit(const ckt::QuantumCircuit &circuit);

/** Run a schedule with exact gate matrices (supplemented identities
 *  act as true identities). */
StateVector runIdealSchedule(const core::Schedule &schedule);

} // namespace qzz::sim

#endif // QZZ_SIM_IDEAL_SIM_H
