/**
 * @file
 * Shared drive-propagator machinery for the schedule simulators.
 *
 * Both the state-vector and the density-matrix simulator integrate
 * the same Strang split, and within one layer every gate of a kind
 * shares one pulse program — so the step propagator is a function of
 * (gate kind, step index, step width) only.  StepPropagatorMemo
 * caches exactly that: the first request for a (kind, step) pair at a
 * given dt pays the matrix exponential; every later request — the
 * other gates of the layer, the remaining layers with the same dt,
 * repeated fidelity evaluations through one simulator — is an array
 * lookup.  Entries are bit-identical to the un-memoized path
 * (expPauli / expmPropagator4 transcribe the CMatrix kernels), so
 * memoization never changes results.
 */

#ifndef QZZ_SIM_DRIVE_STEP_H
#define QZZ_SIM_DRIVE_STEP_H

#include <cstdint>
#include <vector>

#include "circuit/gate.h"
#include "linalg/matrix.h"
#include "pulse/library.h"

namespace qzz::sim {

/** Map a native gate kind onto its pulse program key; fatal for
 *  gates without pulse programs. */
pulse::PulseGate pulseGateOf(const ckt::Gate &g);

/** Dense 0..2 index for the three pulsed gate kinds. */
int pulseKindIndex(pulse::PulseGate k);

/** Instantaneous 2x2 drive propagator over @p dt at pulse time
 *  @p t_mid, written into @p out (no heap). */
void drive1QStep(const pulse::PulseProgram &p, double t_mid, double dt,
                 la::Mat2 &out);

/** Instantaneous 4x4 drive propagator over @p dt (drive + coupling
 *  channels; the intra-pair ZZ lives in the diagonal bath). */
void drive2QStep(const pulse::PulseProgram &p, double t_mid, double dt,
                 la::Mat4 &out);

/** @name Heap-returning seed variants
 *  Retained for the simulators' scalar_reference paths (one CMatrix
 *  allocation per gate per step, as the pre-optimization code did).
 *  @{ */
la::CMatrix drive1QStepScalar(const pulse::PulseProgram &p, double t_mid,
                              double dt);
la::CMatrix drive2QStepScalar(const pulse::PulseProgram &p, double t_mid,
                              double dt);
/** @} */

/**
 * Per-(gate kind, step) propagator cache for one integrator run.
 *
 * Keyed on the step width: a layer whose dt differs from the cached
 * one resets that kind's slots (schedules mix layer durations, but
 * most layers of a schedule quantize to the same dt, so entries
 * survive across layers).  Not thread-safe; each run owns its memo.
 */
class StepPropagatorMemo
{
  public:
    /** The 2x2 propagator for 1Q kind @p k at step @p step of width
     *  @p dt, computing and caching it on first use. */
    const la::Mat2 &get1Q(const pulse::PulseProgram &p,
                          pulse::PulseGate k, size_t step, double dt);

    /** The 4x4 propagator for 2Q kind @p k (same contract). */
    const la::Mat4 &get2Q(const pulse::PulseProgram &p,
                          pulse::PulseGate k, size_t step, double dt);

    /** Distinct propagators computed (i.e. cache misses) so far. */
    uint64_t misses() const { return misses_; }

  private:
    template <typename M> struct Slot
    {
        double dt = -1.0;
        std::vector<M> mats;
        std::vector<uint8_t> have;
    };

    template <typename M>
    void prepare(Slot<M> &slot, size_t step, double dt);

    Slot<la::Mat2> slots1_[3];
    Slot<la::Mat4> slots4_[3];
    uint64_t misses_ = 0;
};

} // namespace qzz::sim

#endif // QZZ_SIM_DRIVE_STEP_H
