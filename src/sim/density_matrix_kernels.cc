/**
 * @file
 * The fused density-matrix hot-path kernels, in their own
 * translation unit so the build can hand just these loops the
 * vector ISA (QZZ_VECTOR_KERNELS) while the retained scalar
 * reference paths in density_matrix.cc keep the baseline codegen
 * they shipped with — the bench_sim_speed scalar/optimized ratio
 * then compares against the true pre-optimization engine.
 */

#include <cmath>

#include "common/error.h"
#include "common/parallel.h"
#include "sim/density_matrix.h"

namespace qzz::sim {

using la::cplx;

namespace {

// --- fused-kernel helpers --------------------------------------------
//
// The kernels below avoid std::complex operator* on purpose: libstdc++
// lowers it through _Complex multiplication, whose NaN-recovery branch
// (__muldc3) blocks auto-vectorization.  cmul() is the finite-input
// fast path of that multiply — identical bits for the values a density
// matrix can hold — written so the compiler can keep everything in
// vector registers.

inline cplx
cmul(cplx a, cplx b)
{
    return {a.real() * b.real() - a.imag() * b.imag(),
            a.real() * b.imag() + a.imag() * b.real()};
}

/** a * b + c * d, the row/column mixing primitive of the kernels. */
inline cplx
cmul2(cplx a, cplx b, cplx c, cplx d)
{
    return {a.real() * b.real() - a.imag() * b.imag() +
                c.real() * d.real() - c.imag() * d.imag(),
            a.real() * b.imag() + a.imag() * b.real() +
                c.real() * d.imag() + c.imag() * d.real()};
}

/** Insert a zero bit at the position of one-bit @p mask: maps a
 *  compact index onto the sub-lattice with that bit clear. */
inline size_t
expandBit(size_t j, size_t mask)
{
    return ((j & ~(mask - 1)) << 1) | (j & (mask - 1));
}

/** Row blocks of at least this many elements go to the shared pool. */
constexpr size_t kParallelDim = 256; // d = 2^8  <=>  n >= 8 qubits
constexpr size_t kRowGrain = 8;      // row groups per pool block

} // namespace

void
DensityMatrix::apply1Q(const la::Mat2 &u, int q)
{
    const size_t stride = size_t(1) << bitPos(q);
    const size_t d = dim();
    const cplx u00 = u[0], u01 = u[1], u10 = u[2], u11 = u[3];
    const cplx v00 = std::conj(u00), v01 = std::conj(u01);
    const cplx v10 = std::conj(u10), v11 = std::conj(u11);
    cplx *m = rho_.data();

    // U rho U^dag splits into independent 2x2 blocks over (row pair,
    // column pair); each block is transformed in registers in one
    // visit: left factor first (rows mix), then the right factor
    // (columns mix) — the same arithmetic as the two-pass scalar
    // kernel, in the same order, with half the memory traffic.
    auto body = [&](size_t jlo, size_t jhi) {
        for (size_t j = jlo; j < jhi; ++j) {
            const size_t r0 = expandBit(j, stride);
            cplx *row0 = m + r0 * d;
            cplx *row1 = row0 + stride * d;
            for (size_t base = 0; base < d; base += 2 * stride) {
                for (size_t off = 0; off < stride; ++off) {
                    const size_t c0 = base + off, c1 = c0 + stride;
                    const cplx a00 = row0[c0], a01 = row0[c1];
                    const cplx a10 = row1[c0], a11 = row1[c1];
                    const cplx t00 = cmul2(u00, a00, u01, a10);
                    const cplx t01 = cmul2(u00, a01, u01, a11);
                    const cplx t10 = cmul2(u10, a00, u11, a10);
                    const cplx t11 = cmul2(u10, a01, u11, a11);
                    row0[c0] = cmul2(t00, v00, t01, v01);
                    row0[c1] = cmul2(t00, v10, t01, v11);
                    row1[c0] = cmul2(t10, v00, t11, v01);
                    row1[c1] = cmul2(t10, v10, t11, v11);
                }
            }
        }
    };
    const size_t pairs = d / 2;
    if (d >= kParallelDim)
        common::parallelFor(0, pairs, kRowGrain, body);
    else
        body(0, pairs);
}

void
DensityMatrix::apply2Q(const la::Mat4 &u, int q_hi, int q_lo)
{
    const size_t s_hi = size_t(1) << bitPos(q_hi);
    const size_t s_lo = size_t(1) << bitPos(q_lo);
    const size_t d = dim();
    const size_t s_min = std::min(s_hi, s_lo);
    const size_t s_max = std::max(s_hi, s_lo);
    cplx v[16]; // conj(u), indexed (j, k) for the right factor
    for (int i = 0; i < 16; ++i)
        v[i] = std::conj(u[size_t(i)]);
    cplx *mm = rho_.data();

    // 4x4 blocks over (row quad, column quad), transformed in
    // registers in one visit; accumulation order matches the scalar
    // kernel's k-ascending loops.
    auto body = [&](size_t jlo, size_t jhi) {
        for (size_t jr = jlo; jr < jhi; ++jr) {
            const size_t kr =
                expandBit(expandBit(jr, s_min), s_max);
            cplx *rows[4];
            for (int i = 0; i < 4; ++i) {
                const size_t r = kr | ((i & 2) ? s_hi : 0) |
                                 ((i & 1) ? s_lo : 0);
                rows[i] = mm + r * d;
            }
            for (size_t jc = 0; jc < d / 4; ++jc) {
                const size_t kc =
                    expandBit(expandBit(jc, s_min), s_max);
                size_t cols[4];
                for (int jj = 0; jj < 4; ++jj)
                    cols[jj] = kc | ((jj & 2) ? s_hi : 0) |
                               ((jj & 1) ? s_lo : 0);
                cplx a[4][4], t[4][4];
                for (int i = 0; i < 4; ++i)
                    for (int jj = 0; jj < 4; ++jj)
                        a[i][jj] = rows[i][cols[jj]];
                for (int i = 0; i < 4; ++i)
                    for (int jj = 0; jj < 4; ++jj) {
                        cplx acc{0.0, 0.0};
                        for (int k = 0; k < 4; ++k)
                            acc += cmul(u[size_t(i * 4 + k)], a[k][jj]);
                        t[i][jj] = acc;
                    }
                for (int i = 0; i < 4; ++i)
                    for (int jj = 0; jj < 4; ++jj) {
                        cplx acc{0.0, 0.0};
                        for (int k = 0; k < 4; ++k)
                            acc += cmul(t[i][k], v[jj * 4 + k]);
                        rows[i][cols[jj]] = acc;
                    }
            }
        }
    };
    const size_t quads = d / 4;
    if (d >= kParallelDim)
        common::parallelFor(0, quads, kRowGrain, body);
    else
        body(0, quads);
}

void
DensityMatrix::applyPhaseVector(const la::CVector &p)
{
    require(p.size() == dim(), "applyPhaseVector: table size");
    const size_t d = dim();
    cplx *m = rho_.data();
    const cplx *pv = p.data();

    auto body = [&](size_t rlo, size_t rhi) {
        for (size_t r = rlo; r < rhi; ++r) {
            const cplx pr = pv[r];
            cplx *row = m + r * d;
            for (size_t c = 0; c < d; ++c)
                row[c] = cmul(row[c], cmul(pr, std::conj(pv[c])));
        }
    };
    if (d >= kParallelDim)
        common::parallelFor(0, d, kRowGrain, body);
    else
        body(0, d);
}

void
DensityMatrix::applyDecoherence(const std::vector<double> &gamma,
                                const std::vector<double> &keep)
{
    require(int(gamma.size()) == n_ && int(keep.size()) == n_,
            "applyDecoherence: per-qubit rate vectors must have one "
            "entry per qubit");
    const size_t d = dim();
    cplx *m = rho_.data();
    for (int q = 0; q < n_; ++q) {
        const double g = gamma[size_t(q)];
        const double kp = keep[size_t(q)];
        const bool damp = g > 0.0;
        const bool deph = kp < 1.0;
        if (!damp && !deph)
            continue;
        const double sq = std::sqrt(1.0 - g);
        const double om = 1.0 - g;
        const size_t stride = size_t(1) << bitPos(q);

        // One sweep fuses the amplitude-damping update (the scalar
        // path's two passes) with the dephasing scale: each 2x2 block
        // over (row pair, column pair) in the qubit's bit is
        // independent, with the same per-element arithmetic as the
        // sequential channels.
        auto body = [&](size_t jlo, size_t jhi) {
            for (size_t j = jlo; j < jhi; ++j) {
                const size_t r0 = expandBit(j, stride);
                cplx *row0 = m + r0 * d;
                cplx *row1 = row0 + stride * d;
                for (size_t base = 0; base < d; base += 2 * stride) {
                    for (size_t off = 0; off < stride; ++off) {
                        const size_t c0 = base + off;
                        const size_t c1 = c0 + stride;
                        cplx b00 = row0[c0], b01 = row0[c1];
                        cplx b10 = row1[c0], b11 = row1[c1];
                        if (damp) {
                            b00 += g * b11;
                            b01 *= sq;
                            b10 *= sq;
                            b11 *= om;
                        }
                        if (deph) {
                            b01 *= kp;
                            b10 *= kp;
                        }
                        row0[c0] = b00;
                        row0[c1] = b01;
                        row1[c0] = b10;
                        row1[c1] = b11;
                    }
                }
            }
        };
        const size_t pairs = d / 2;
        if (d >= kParallelDim)
            common::parallelFor(0, pairs, kRowGrain, body);
        else
            body(0, pairs);
    }
}

} // namespace qzz::sim
