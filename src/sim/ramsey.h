/**
 * @file
 * Ramsey experiments on a simulated three-qubit chain Q1-Q2-Q3
 * (Sec. 7.4 / Figs. 26-27 of the paper).
 *
 * Protocol: prepare the neighbor(s) in |0> or |1>, play Rx(pi/2) on
 * Q2, wait tau (accumulating a software-detuning phase Rz(theta),
 * theta = 2 pi f_ramsey tau), play Rx(pi/2) again, and record
 * P(|1>) on Q2 as a function of tau.  The oscillation frequency
 * shifts by -+ zeta/2 depending on the neighbor state; the measured
 * effective ZZ strength is the difference of the two fitted
 * frequencies.
 *
 * Compiled circuits:
 *   A — the idle period is truly idle (baseline),
 *   B — the idle period is tiled with identity pulses on Q2,
 *   C — identity pulses on Q1 and Q3 instead.
 *
 * Implementation: the idle period is built from repeated segments;
 * the 8x8 segment propagator is computed once (RK4 over the pulse
 * waveforms + always-on ZZ) and applied iteratively, so sweeping
 * hundreds of tau points is cheap and exact.
 */

#ifndef QZZ_SIM_RAMSEY_H
#define QZZ_SIM_RAMSEY_H

#include <vector>

#include "pulse/library.h"
#include "sim/fitting.h"

namespace qzz::sim {

/** Which compiled Ramsey circuit to run (Fig. 26). */
enum class RamseyCircuit
{
    A, ///< idle wait (baseline scheduling)
    B, ///< identity pulses on Q2 during the wait
    C, ///< identity pulses on Q1 and Q3 during the wait
};

/** Configuration of one Ramsey trace. */
struct RamseyConfig
{
    /** ZZ strengths of the two couplings (rad/ns). */
    double lambda12 = 0.0;
    double lambda23 = 0.0;
    /** Neighbor preparations. */
    bool q1_excited = false;
    bool q3_excited = false;
    /** Compiled circuit variant. */
    RamseyCircuit circuit = RamseyCircuit::A;
    /** Pulse library for the Rx(pi/2) and identity pulses. */
    const pulse::PulseLibrary *library = nullptr;
    /** Software detuning (GHz = cycles/ns); default 1 MHz. */
    double f_ramsey = 1e-3;
    /** Number of idle segments to sweep. */
    int segments = 400;
    /** Integrator step for the segment propagators (ns). */
    double dt = 0.02;
};

/** One Ramsey trace: P1(Q2) versus tau. */
struct RamseyTrace
{
    std::vector<double> tau;
    std::vector<double> p1;
    /** Fitted oscillation frequency (GHz). */
    double frequency = 0.0;
};

/** Run one Ramsey experiment and fit its frequency. */
RamseyTrace runRamsey(const RamseyConfig &cfg);

/** Result of a ZZ-strength measurement (two traces). */
struct ZzMeasurement
{
    /** Fitted frequencies with the probe neighbor in |0> / |1>. */
    double f_ground = 0.0;
    double f_excited = 0.0;
    /** Effective ZZ strength |f1 - f0| in kHz. */
    double zz_khz = 0.0;
};

/**
 * Measure the effective ZZ strength between Q2 and the probe
 * neighbor(s) by differencing two Ramsey traces.
 *
 * @param base        shared configuration (lambdas, circuit, library).
 * @param probe_q1    toggle Q1 between |0> and |1>.
 * @param probe_q3    toggle Q3 between |0> and |1>.
 */
ZzMeasurement measureEffectiveZz(const RamseyConfig &base, bool probe_q1,
                                 bool probe_q3);

} // namespace qzz::sim

#endif // QZZ_SIM_RAMSEY_H
