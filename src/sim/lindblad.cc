#include "sim/lindblad.h"

#include <cmath>

#include "common/error.h"
#include "linalg/expm.h"

namespace qzz::sim {

using la::CMatrix;
using la::cplx;
using pulse::PulseGate;
using pulse::PulseProgram;

DensityMatrixScheduleSimulator::DensityMatrixScheduleSimulator(
    const dev::Device &device, const pulse::PulseLibrary &library,
    PulseSimOptions options)
    : device_(device), library_(library), options_(options)
{
    require(options_.dt > 0.0, "DensityMatrixScheduleSimulator: bad dt");
    std::vector<std::array<int, 2>> edges;
    std::vector<double> lambdas;
    for (const graph::Edge &e : device_.graph().edges()) {
        edges.push_back({e.u, e.v});
        lambdas.push_back(device_.coupling(e.id) *
                          options_.crosstalk_scale);
    }
    zz_energies_ = zzEnergyTable(device_.numQubits(), edges, lambdas);
    for (int q = 0; q < device_.numQubits(); ++q)
        if (std::isfinite(device_.t1(q)) ||
            std::isfinite(device_.t2(q)))
            any_decoherence_ = true;
}

namespace {

PulseGate
pulseGateOf(const ckt::Gate &g)
{
    switch (g.kind) {
    case ckt::GateKind::SX:
        return PulseGate::SX;
    case ckt::GateKind::I:
        return PulseGate::Identity;
    case ckt::GateKind::RZX:
        return PulseGate::RZX;
    default:
        fatal("lindblad simulator: gate has no pulses: " + g.toString());
    }
}

CMatrix
drive1QStep(const PulseProgram &p, double t_mid, double dt)
{
    const double ox = PulseProgram::eval(p.x_a, t_mid);
    const double oy = PulseProgram::eval(p.y_a, t_mid);
    return la::expPauli(ox * dt, oy * dt, 0.0);
}

CMatrix
drive2QStep(const PulseProgram &p, double t_mid, double dt)
{
    const double oxa = PulseProgram::eval(p.x_a, t_mid);
    const double oya = PulseProgram::eval(p.y_a, t_mid);
    const double oxb = PulseProgram::eval(p.x_b, t_mid);
    const double oyb = PulseProgram::eval(p.y_b, t_mid);
    const double oc = PulseProgram::eval(p.coupling, t_mid);
    CMatrix h(4, 4);
    const cplx da{oxa, -oya};
    h(0, 2) += da;
    h(1, 3) += da;
    h(2, 0) += std::conj(da);
    h(3, 1) += std::conj(da);
    const cplx db{oxb, -oyb};
    h(0, 1) += db;
    h(2, 3) += db;
    h(1, 0) += std::conj(db);
    h(3, 2) += std::conj(db);
    h(0, 1) += oc;
    h(1, 0) += oc;
    h(2, 3) += -oc;
    h(3, 2) += -oc;
    return la::expmPropagator(h, dt);
}

} // namespace

void
DensityMatrixScheduleSimulator::decoherenceFactors(
    double dt, std::vector<double> &gamma,
    std::vector<double> &keep) const
{
    const int n = device_.numQubits();
    gamma.assign(size_t(n), 0.0);
    keep.assign(size_t(n), 1.0);
    for (int q = 0; q < n; ++q) {
        // Each qubit decays at its own calibrated rates (the snapshot
        // is heterogeneous in general): gamma from T1(q), and the
        // pure-dephasing keep factor from 1/T_phi = 1/T2 - 1/(2 T1).
        const double t1 = device_.t1(q);
        const double t2 = device_.t2(q);
        if (std::isfinite(t1))
            gamma[size_t(q)] = 1.0 - std::exp(-dt / t1);
        double rate_phi = 0.0;
        if (std::isfinite(t2))
            rate_phi = 1.0 / t2 - (std::isfinite(t1) ? 0.5 / t1 : 0.0);
        rate_phi = std::max(0.0, rate_phi);
        keep[size_t(q)] = std::exp(-dt * rate_phi);
    }
}

void
DensityMatrixScheduleSimulator::runLayer(const core::Layer &layer,
                                         DensityMatrix &rho) const
{
    if (layer.is_virtual) {
        for (const core::ScheduledGate &sg : layer.gates)
            rho.applyRz(sg.gate.qubits[0], sg.gate.params[0]);
        return;
    }
    if (layer.duration <= 0.0)
        return;

    const size_t steps = std::max<size_t>(
        1, size_t(std::ceil(layer.duration / options_.dt)));
    const double dt = layer.duration / double(steps);

    std::vector<double> gamma, keep;
    if (any_decoherence_)
        decoherenceFactors(dt, gamma, keep);

    for (size_t s = 0; s < steps; ++s) {
        const double t_mid = (double(s) + 0.5) * dt;
        rho.applyDiagonalPhase(zz_energies_, dt / 2.0);
        for (const core::ScheduledGate &sg : layer.gates) {
            const PulseProgram &prog =
                library_.get(pulseGateOf(sg.gate));
            if (t_mid >= prog.duration)
                continue;
            if (sg.gate.isTwoQubit()) {
                rho.apply2Q(drive2QStep(prog, t_mid, dt),
                            sg.gate.qubits[0], sg.gate.qubits[1]);
            } else {
                rho.apply1Q(drive1QStep(prog, t_mid, dt),
                            sg.gate.qubits[0]);
            }
        }
        rho.applyDiagonalPhase(zz_energies_, dt / 2.0);
        if (any_decoherence_)
            rho.applyDecoherence(gamma, keep);
    }
}

void
DensityMatrixScheduleSimulator::run(const core::Schedule &schedule,
                                    DensityMatrix &rho) const
{
    require(schedule.num_qubits == device_.numQubits(),
            "DensityMatrixScheduleSimulator: schedule/device mismatch");
    for (const core::Layer &layer : schedule.layers)
        runLayer(layer, rho);
}

DensityMatrix
DensityMatrixScheduleSimulator::run(const core::Schedule &schedule) const
{
    DensityMatrix rho(device_.numQubits());
    run(schedule, rho);
    return rho;
}

} // namespace qzz::sim
