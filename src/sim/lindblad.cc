#include "sim/lindblad.h"

#include <cmath>

#include "common/error.h"
#include "sim/drive_step.h"

namespace qzz::sim {

using la::CMatrix;
using la::cplx;
using pulse::PulseGate;
using pulse::PulseProgram;

DensityMatrixScheduleSimulator::DensityMatrixScheduleSimulator(
    const dev::Device &device, const pulse::PulseLibrary &library,
    PulseSimOptions options)
    : device_(device), library_(library), options_(options)
{
    require(options_.dt > 0.0, "DensityMatrixScheduleSimulator: bad dt");
    std::vector<std::array<int, 2>> edges;
    std::vector<double> lambdas;
    for (const graph::Edge &e : device_.graph().edges()) {
        edges.push_back({e.u, e.v});
        lambdas.push_back(device_.coupling(e.id) *
                          options_.crosstalk_scale);
    }
    zz_energies_ = zzEnergyTable(device_.numQubits(), edges, lambdas);
    for (int q = 0; q < device_.numQubits(); ++q)
        if (std::isfinite(device_.t1(q)) ||
            std::isfinite(device_.t2(q)))
            any_decoherence_ = true;
    if (options_.telemetry)
        metrics_ = simMetrics("density");
}

namespace {

struct Job
{
    const PulseProgram *program;
    PulseGate kind;
    int q0, q1; // q1 = -1 for single-qubit jobs
};

std::vector<Job>
collectJobs(const core::Layer &layer, const pulse::PulseLibrary &library)
{
    std::vector<Job> jobs;
    jobs.reserve(layer.gates.size());
    for (const core::ScheduledGate &sg : layer.gates) {
        const PulseGate kind = pulseGateOf(sg.gate);
        Job j;
        j.program = &library.get(kind);
        j.kind = kind;
        j.q0 = sg.gate.qubits[0];
        j.q1 = sg.gate.isTwoQubit() ? sg.gate.qubits[1] : -1;
        jobs.push_back(j);
    }
    return jobs;
}

size_t
layerSteps(const core::Layer &layer, double dt_opt, double &dt)
{
    const size_t steps = std::max<size_t>(
        1, size_t(std::ceil(layer.duration / dt_opt)));
    dt = layer.duration / double(steps);
    return steps;
}

} // namespace

void
DensityMatrixScheduleSimulator::decoherenceFactors(
    double dt, std::vector<double> &gamma,
    std::vector<double> &keep) const
{
    const int n = device_.numQubits();
    gamma.assign(size_t(n), 0.0);
    keep.assign(size_t(n), 1.0);
    for (int q = 0; q < n; ++q) {
        // Each qubit decays at its own calibrated rates (the snapshot
        // is heterogeneous in general): gamma from T1(q), and the
        // pure-dephasing keep factor from 1/T_phi = 1/T2 - 1/(2 T1).
        const double t1 = device_.t1(q);
        const double t2 = device_.t2(q);
        if (std::isfinite(t1))
            gamma[size_t(q)] = 1.0 - std::exp(-dt / t1);
        double rate_phi = 0.0;
        if (std::isfinite(t2))
            rate_phi = 1.0 / t2 - (std::isfinite(t1) ? 0.5 / t1 : 0.0);
        rate_phi = std::max(0.0, rate_phi);
        keep[size_t(q)] = std::exp(-dt * rate_phi);
    }
}

void
DensityMatrixScheduleSimulator::runLayer(const core::Layer &layer,
                                         DensityMatrix &rho) const
{
    StepPropagatorMemo memo;
    runLayerImpl(layer, rho, memo);
}

void
DensityMatrixScheduleSimulator::runLayerImpl(const core::Layer &layer,
                                             DensityMatrix &rho,
                                             StepPropagatorMemo &memo) const
{
    if (layer.is_virtual) {
        for (const core::ScheduledGate &sg : layer.gates)
            rho.applyRz(sg.gate.qubits[0], sg.gate.params[0]);
        return;
    }
    if (layer.duration <= 0.0)
        return;
    if (options_.scalar_reference) {
        runLayerScalar(layer, rho);
        return;
    }

    double dt = 0.0;
    const size_t steps = layerSteps(layer, options_.dt, dt);
    const std::vector<Job> jobs = collectJobs(layer, library_);

    std::vector<double> gamma, keep;
    if (any_decoherence_)
        decoherenceFactors(dt, gamma, keep);

    // On a fully coherent device the trailing ZZ half-step of step s
    // and the leading one of step s+1 merge into one full-step sweep;
    // with decoherence the Kraus channel sits between them, so the
    // half-steps stay separate.
    const bool merge_halves = !any_decoherence_;
    const la::CVector p_half = phaseVector(zz_energies_, dt / 2.0);
    const la::CVector p_full = (merge_halves && steps > 1)
                                   ? phaseVector(zz_energies_, dt)
                                   : la::CVector{};

    const bool tm = metrics_.enabled();
    KernelTimer phase_t(tm), gate_t(tm), decoh_t(tm);

    if (merge_halves) {
        phase_t.start();
        rho.applyPhaseVector(p_half);
        phase_t.stop();
    }
    for (size_t s = 0; s < steps; ++s) {
        const double t_mid = (double(s) + 0.5) * dt;
        if (!merge_halves) {
            phase_t.start();
            rho.applyPhaseVector(p_half);
            phase_t.stop();
        }
        gate_t.start();
        for (const Job &j : jobs) {
            if (t_mid >= j.program->duration)
                continue; // this gate's pulses already ended
            if (j.q1 < 0)
                rho.apply1Q(memo.get1Q(*j.program, j.kind, s, dt), j.q0);
            else
                rho.apply2Q(memo.get2Q(*j.program, j.kind, s, dt), j.q0,
                            j.q1);
        }
        gate_t.stop();
        phase_t.start();
        if (merge_halves)
            rho.applyPhaseVector(s + 1 < steps ? p_full : p_half);
        else
            rho.applyPhaseVector(p_half);
        phase_t.stop();
        if (any_decoherence_) {
            decoh_t.start();
            rho.applyDecoherence(gamma, keep);
            decoh_t.stop();
        }
    }

    if (tm) {
        metrics_.layers->inc();
        metrics_.steps->inc(steps);
        metrics_.phase_ns->observe(phase_t.ns());
        metrics_.gate_ns->observe(gate_t.ns());
        metrics_.decoh_ns->observe(decoh_t.ns());
    }
}

void
DensityMatrixScheduleSimulator::runLayerScalar(const core::Layer &layer,
                                               DensityMatrix &rho) const
{
    double dt = 0.0;
    const size_t steps = layerSteps(layer, options_.dt, dt);

    std::vector<double> gamma, keep;
    if (any_decoherence_)
        decoherenceFactors(dt, gamma, keep);

    // The pre-optimization loop, kept byte-for-byte in behavior:
    // per-step cos/sin phase sweeps, a library lookup and a fresh
    // propagator per gate per step, unfused kernels, sequential
    // Kraus channels.
    for (size_t s = 0; s < steps; ++s) {
        const double t_mid = (double(s) + 0.5) * dt;
        rho.applyDiagonalPhase(zz_energies_, dt / 2.0);
        for (const core::ScheduledGate &sg : layer.gates) {
            const PulseProgram &prog =
                library_.get(pulseGateOf(sg.gate));
            if (t_mid >= prog.duration)
                continue;
            if (sg.gate.isTwoQubit()) {
                rho.apply2QScalar(drive2QStepScalar(prog, t_mid, dt),
                                  sg.gate.qubits[0], sg.gate.qubits[1]);
            } else {
                rho.apply1QScalar(drive1QStepScalar(prog, t_mid, dt),
                                  sg.gate.qubits[0]);
            }
        }
        rho.applyDiagonalPhase(zz_energies_, dt / 2.0);
        if (any_decoherence_)
            rho.applyDecoherenceScalar(gamma, keep);
    }
    if (metrics_.enabled()) {
        metrics_.layers->inc();
        metrics_.steps->inc(steps);
    }
}

void
DensityMatrixScheduleSimulator::run(const core::Schedule &schedule,
                                    DensityMatrix &rho) const
{
    require(schedule.num_qubits == device_.numQubits(),
            "DensityMatrixScheduleSimulator: schedule/device mismatch");
    StepPropagatorMemo memo;
    for (const core::Layer &layer : schedule.layers)
        runLayerImpl(layer, rho, memo);
}

DensityMatrix
DensityMatrixScheduleSimulator::run(const core::Schedule &schedule) const
{
    DensityMatrix rho(device_.numQubits());
    run(schedule, rho);
    return rho;
}

} // namespace qzz::sim
