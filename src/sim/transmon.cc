#include "sim/transmon.h"

#include <cmath>

#include "common/error.h"
#include "common/units.h"
#include "ode/propagator.h"

namespace qzz::sim {

using la::CMatrix;
using la::cplx;
using pulse::PulseProgram;

double
transmonCrosstalkInfidelity(const PulseProgram &p, const CMatrix &target,
                            const TransmonConfig &cfg, double dt)
{
    require(cfg.levels >= 3 && cfg.levels <= 10,
            "transmonCrosstalkInfidelity: bad level count");
    require(!p.two_qubit,
            "transmonCrosstalkInfidelity: single-qubit pulses only");
    const int nl = cfg.levels;

    // Static pieces of the Hamiltonian.
    CMatrix anharm{static_cast<size_t>(nl), static_cast<size_t>(nl)};
    for (int j = 0; j < nl; ++j)
        anharm(size_t(j), size_t(j)) =
            cfg.anharmonicity / 2.0 * double(j) * double(j - 1);
    // Z on the computational subspace only.
    CMatrix zgen{static_cast<size_t>(nl), static_cast<size_t>(nl)};
    zgen(0, 0) = 1.0;
    zgen(1, 1) = -1.0;

    // Drive quadrature operators from the truncated ladder.
    CMatrix xop{static_cast<size_t>(nl), static_cast<size_t>(nl)};
    CMatrix yop{static_cast<size_t>(nl), static_cast<size_t>(nl)};
    for (int j = 0; j + 1 < nl; ++j) {
        const double r = std::sqrt(double(j + 1));
        xop(size_t(j), size_t(j + 1)) = r;       // a
        xop(size_t(j + 1), size_t(j)) = r;       // a^dag
        yop(size_t(j), size_t(j + 1)) = -la::kI * r;
        yop(size_t(j + 1), size_t(j)) = la::kI * r;
    }

    ode::PropagationOptions opt;
    opt.dt = dt;

    // Accumulate the projected comparison blocks for both spectator
    // states.  Frame phases of the driven qubit are calibrated away
    // (free virtual-Z before and after the pulse, as on hardware,
    // where they merge into neighboring RZ gates): F is maximized
    // over Rz(phi1) target Rz(phi2), which leaves tr(M M^dag)
    // unchanged and dresses tr(M) with e^{i(phi2 s_j + phi1 s_k)/2}
    // factors on the components C_jk = sum_z T^dag_jk (B_z)_kj.
    cplx coeff[2][2] = {{0.0, 0.0}, {0.0, 0.0}};
    double tr_mmdag = 0.0;
    const CMatrix tdag = target.dagger();
    for (double z : {1.0, -1.0}) {
        auto hfn = [&](double t, CMatrix &h) {
            const double ox = PulseProgram::eval(p.x_a, t);
            const double oy = PulseProgram::eval(p.y_a, t);
            for (int r = 0; r < nl; ++r)
                for (int c = 0; c < nl; ++c)
                    h(size_t(r), size_t(c)) =
                        anharm(size_t(r), size_t(c)) +
                        z * cfg.lambda * zgen(size_t(r), size_t(c)) +
                        ox * xop(size_t(r), size_t(c)) +
                        oy * yop(size_t(r), size_t(c));
        };
        CMatrix u =
            ode::propagate(hfn, size_t(nl), 0.0, p.duration, opt);
        // Project onto the computational subspace and compare.
        CMatrix block(2, 2);
        for (int r = 0; r < 2; ++r)
            for (int c = 0; c < 2; ++c)
                block(size_t(r), size_t(c)) = u(size_t(r), size_t(c));
        const CMatrix m = tdag * block;
        tr_mmdag += m.frobeniusNorm() * m.frobeniusNorm();
        for (int j = 0; j < 2; ++j)
            for (int k = 0; k < 2; ++k)
                coeff[j][k] +=
                    tdag(size_t(j), size_t(k)) * block(size_t(k),
                                                       size_t(j));
    }
    const double d = 4.0; // 2 (computational) x 2 (spectator)
    auto tr_at = [&](double h1, double h2) {
        cplx tr = 0.0;
        for (int j = 0; j < 2; ++j)
            for (int k = 0; k < 2; ++k) {
                const double s_j = j == 0 ? 1.0 : -1.0;
                const double s_k = k == 0 ? 1.0 : -1.0;
                tr += std::exp(cplx{0.0, h2 * s_j + h1 * s_k}) *
                      coeff[j][k];
            }
        return std::norm(tr);
    };
    // Coarse scan over the fundamental phase domain, then zoom.
    double best = 0.0, b1 = 0.0, b2 = 0.0;
    const int steps = 90;
    for (int i1 = 0; i1 < steps; ++i1) {
        const double h1 = kPi * (double(i1) / steps - 0.5);
        for (int i2 = 0; i2 < steps; ++i2) {
            const double h2 = kPi * (double(i2) / steps - 0.5);
            const double v = tr_at(h1, h2);
            if (v > best) {
                best = v;
                b1 = h1;
                b2 = h2;
            }
        }
    }
    double window = kPi / steps;
    for (int round = 0; round < 6; ++round) {
        double nb1 = b1, nb2 = b2;
        for (int i1 = -10; i1 <= 10; ++i1) {
            for (int i2 = -10; i2 <= 10; ++i2) {
                const double h1 = b1 + window * double(i1) / 10.0;
                const double h2 = b2 + window * double(i2) / 10.0;
                const double v = tr_at(h1, h2);
                if (v > best) {
                    best = v;
                    nb1 = h1;
                    nb2 = h2;
                }
            }
        }
        b1 = nb1;
        b2 = nb2;
        window /= 8.0;
    }
    const double f = (tr_mmdag + best) / (d * (d + 1.0));
    return 1.0 - f;
}

} // namespace qzz::sim
