#include "sim/pulse_sim.h"

#include <cmath>

#include "common/error.h"
#include "sim/drive_step.h"

namespace qzz::sim {

using la::CMatrix;
using la::cplx;
using pulse::PulseGate;
using pulse::PulseProgram;

PulseScheduleSimulator::PulseScheduleSimulator(
    const dev::Device &device, const pulse::PulseLibrary &library,
    PulseSimOptions options)
    : device_(device), library_(library), options_(options)
{
    require(options_.dt > 0.0, "PulseScheduleSimulator: bad dt");
    std::vector<std::array<int, 2>> edges;
    std::vector<double> lambdas;
    for (const graph::Edge &e : device_.graph().edges()) {
        edges.push_back({e.u, e.v});
        lambdas.push_back(device_.coupling(e.id) *
                          options_.crosstalk_scale);
    }
    zz_energies_ =
        zzEnergyTable(device_.numQubits(), edges, lambdas);
    if (options_.telemetry)
        metrics_ = simMetrics("statevector");
}

la::CVector
phaseVector(const std::vector<double> &energies, double dt)
{
    la::CVector p(energies.size());
    for (size_t k = 0; k < energies.size(); ++k) {
        const double phi = energies[k] * dt;
        p[k] = cplx{std::cos(phi), -std::sin(phi)};
    }
    return p;
}

namespace {

/** One pulse job of a layer, with the library lookup done once. */
struct Job
{
    const PulseProgram *program;
    PulseGate kind;
    int q0, q1; // q1 = -1 for single-qubit jobs
};

std::vector<Job>
collectJobs(const core::Layer &layer, const pulse::PulseLibrary &library)
{
    std::vector<Job> jobs;
    jobs.reserve(layer.gates.size());
    for (const core::ScheduledGate &sg : layer.gates) {
        const PulseGate kind = pulseGateOf(sg.gate);
        Job j;
        j.program = &library.get(kind);
        j.kind = kind;
        j.q0 = sg.gate.qubits[0];
        j.q1 = sg.gate.isTwoQubit() ? sg.gate.qubits[1] : -1;
        jobs.push_back(j);
    }
    return jobs;
}

/** Step count and width for one physical layer. */
size_t
layerSteps(const core::Layer &layer, double dt_opt, double &dt)
{
    const size_t steps = std::max<size_t>(
        1, size_t(std::ceil(layer.duration / dt_opt)));
    dt = layer.duration / double(steps);
    return steps;
}

} // namespace

void
PulseScheduleSimulator::runLayer(const core::Layer &layer,
                                 StateVector &psi) const
{
    StepPropagatorMemo memo;
    runLayerImpl(layer, psi, memo);
}

void
PulseScheduleSimulator::runLayerImpl(const core::Layer &layer,
                                     StateVector &psi,
                                     StepPropagatorMemo &memo) const
{
    if (layer.is_virtual) {
        for (const core::ScheduledGate &sg : layer.gates) {
            ensure(sg.gate.kind == ckt::GateKind::RZ,
                   "virtual layer contains non-RZ gate");
            psi.applyRz(sg.gate.qubits[0], sg.gate.params[0]);
        }
        return;
    }
    if (layer.duration <= 0.0)
        return;
    if (options_.scalar_reference) {
        runLayerScalar(layer, psi);
        return;
    }

    double dt = 0.0;
    const size_t steps = layerSteps(layer, options_.dt, dt);
    const std::vector<Job> jobs = collectJobs(layer, library_);

    // Phases are diagonal and the evolution has no mid-step Kraus
    // channel, so the trailing ZZ half-step of step s and the leading
    // one of step s+1 merge into one full-step sweep: steps+1 phase
    // applications instead of 2*steps.
    const la::CVector p_half = phaseVector(zz_energies_, dt / 2.0);
    const la::CVector p_full =
        steps > 1 ? phaseVector(zz_energies_, dt) : la::CVector{};

    const bool tm = metrics_.enabled();
    KernelTimer phase_t(tm), gate_t(tm);

    phase_t.start();
    psi.applyPhaseVector(p_half);
    phase_t.stop();
    for (size_t s = 0; s < steps; ++s) {
        const double t_mid = (double(s) + 0.5) * dt;
        gate_t.start();
        for (const Job &j : jobs) {
            if (t_mid >= j.program->duration)
                continue; // this gate's pulses already ended
            if (j.q1 < 0)
                psi.apply1Q(memo.get1Q(*j.program, j.kind, s, dt), j.q0);
            else
                psi.apply2Q(memo.get2Q(*j.program, j.kind, s, dt), j.q0,
                            j.q1);
        }
        gate_t.stop();
        phase_t.start();
        psi.applyPhaseVector(s + 1 < steps ? p_full : p_half);
        phase_t.stop();
    }

    if (tm) {
        metrics_.layers->inc();
        metrics_.steps->inc(steps);
        metrics_.phase_ns->observe(phase_t.ns());
        metrics_.gate_ns->observe(gate_t.ns());
    }
}

void
PulseScheduleSimulator::runLayerScalar(const core::Layer &layer,
                                       StateVector &psi) const
{
    double dt = 0.0;
    const size_t steps = layerSteps(layer, options_.dt, dt);
    const std::vector<Job> jobs = collectJobs(layer, library_);

    for (size_t s = 0; s < steps; ++s) {
        const double t_mid = (double(s) + 0.5) * dt;
        psi.applyDiagonalPhase(zz_energies_, dt / 2.0);

        // Per-kind propagator cache: simultaneous gates of one kind
        // share the same waveforms.
        CMatrix cached[3];
        bool have[3] = {false, false, false};
        for (const Job &j : jobs) {
            if (t_mid >= j.program->duration)
                continue;
            const int ki = pulseKindIndex(j.kind);
            if (!have[ki]) {
                cached[ki] =
                    j.q1 < 0
                        ? drive1QStepScalar(*j.program, t_mid, dt)
                        : drive2QStepScalar(*j.program, t_mid, dt);
                have[ki] = true;
            }
            if (j.q1 < 0)
                psi.apply1Q(cached[ki], j.q0);
            else
                psi.apply2Q(cached[ki], j.q0, j.q1);
        }

        psi.applyDiagonalPhase(zz_energies_, dt / 2.0);
    }
    if (metrics_.enabled()) {
        metrics_.layers->inc();
        metrics_.steps->inc(steps);
    }
}

void
PulseScheduleSimulator::run(const core::Schedule &schedule,
                            StateVector &psi) const
{
    require(schedule.num_qubits == device_.numQubits(),
            "PulseScheduleSimulator::run: schedule/device mismatch");
    StepPropagatorMemo memo;
    for (const core::Layer &layer : schedule.layers)
        runLayerImpl(layer, psi, memo);
}

StateVector
PulseScheduleSimulator::run(const core::Schedule &schedule) const
{
    StateVector psi(device_.numQubits());
    run(schedule, psi);
    return psi;
}

} // namespace qzz::sim
