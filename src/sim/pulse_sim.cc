#include "sim/pulse_sim.h"

#include <cmath>

#include "common/error.h"
#include "linalg/expm.h"

namespace qzz::sim {

using la::CMatrix;
using la::cplx;
using pulse::PulseGate;
using pulse::PulseProgram;

PulseScheduleSimulator::PulseScheduleSimulator(
    const dev::Device &device, const pulse::PulseLibrary &library,
    PulseSimOptions options)
    : device_(device), library_(library), options_(options)
{
    require(options_.dt > 0.0, "PulseScheduleSimulator: bad dt");
    std::vector<std::array<int, 2>> edges;
    std::vector<double> lambdas;
    for (const graph::Edge &e : device_.graph().edges()) {
        edges.push_back({e.u, e.v});
        lambdas.push_back(device_.coupling(e.id) *
                          options_.crosstalk_scale);
    }
    zz_energies_ =
        zzEnergyTable(device_.numQubits(), edges, lambdas);
}

namespace {

/** Map a native gate kind onto its pulse program key. */
PulseGate
pulseGateOf(const ckt::Gate &g)
{
    switch (g.kind) {
    case ckt::GateKind::SX:
        return PulseGate::SX;
    case ckt::GateKind::I:
        return PulseGate::Identity;
    case ckt::GateKind::RZX:
        return PulseGate::RZX;
    default:
        fatal("pulse simulator: gate has no pulses: " + g.toString());
    }
}

/** Instantaneous 2x2 drive propagator over dt. */
CMatrix
drive1QStep(const PulseProgram &p, double t_mid, double dt)
{
    const double ox = PulseProgram::eval(p.x_a, t_mid);
    const double oy = PulseProgram::eval(p.y_a, t_mid);
    return la::expPauli(ox * dt, oy * dt, 0.0);
}

/** Instantaneous 4x4 drive propagator over dt (drives + coupling
 *  channel; the intra-pair ZZ lives in the diagonal bath). */
CMatrix
drive2QStep(const PulseProgram &p, double t_mid, double dt)
{
    const double oxa = PulseProgram::eval(p.x_a, t_mid);
    const double oya = PulseProgram::eval(p.y_a, t_mid);
    const double oxb = PulseProgram::eval(p.x_b, t_mid);
    const double oyb = PulseProgram::eval(p.y_b, t_mid);
    const double oc = PulseProgram::eval(p.coupling, t_mid);

    CMatrix h(4, 4);
    const cplx da{oxa, -oya};
    h(0, 2) += da;
    h(1, 3) += da;
    h(2, 0) += std::conj(da);
    h(3, 1) += std::conj(da);
    const cplx db{oxb, -oyb};
    h(0, 1) += db;
    h(2, 3) += db;
    h(1, 0) += std::conj(db);
    h(3, 2) += std::conj(db);
    h(0, 1) += oc;
    h(1, 0) += oc;
    h(2, 3) += -oc;
    h(3, 2) += -oc;
    return la::expmPropagator(h, dt);
}

} // namespace

void
PulseScheduleSimulator::runLayer(const core::Layer &layer,
                                 StateVector &psi) const
{
    if (layer.is_virtual) {
        for (const core::ScheduledGate &sg : layer.gates) {
            ensure(sg.gate.kind == ckt::GateKind::RZ,
                   "virtual layer contains non-RZ gate");
            psi.applyRz(sg.gate.qubits[0], sg.gate.params[0]);
        }
        return;
    }
    if (layer.duration <= 0.0)
        return;

    const size_t steps = std::max<size_t>(
        1, size_t(std::ceil(layer.duration / options_.dt)));
    const double dt = layer.duration / double(steps);

    // Collect the layer's pulse jobs.
    struct Job
    {
        const PulseProgram *program;
        PulseGate kind;
        int q0, q1; // q1 = -1 for single-qubit jobs
    };
    std::vector<Job> jobs;
    for (const core::ScheduledGate &sg : layer.gates) {
        const PulseGate kind = pulseGateOf(sg.gate);
        const PulseProgram &prog = library_.get(kind);
        Job j;
        j.program = &prog;
        j.kind = kind;
        j.q0 = sg.gate.qubits[0];
        j.q1 = sg.gate.isTwoQubit() ? sg.gate.qubits[1] : -1;
        jobs.push_back(j);
    }

    for (size_t s = 0; s < steps; ++s) {
        const double t_mid = (double(s) + 0.5) * dt;
        psi.applyDiagonalPhase(zz_energies_, dt / 2.0);

        // Per-kind propagator cache: simultaneous gates of one kind
        // share the same waveforms.
        CMatrix cached[3];
        bool have[3] = {false, false, false};
        auto kind_index = [](PulseGate k) {
            return k == PulseGate::SX ? 0
                                      : (k == PulseGate::Identity ? 1 : 2);
        };
        for (const Job &j : jobs) {
            if (t_mid >= j.program->duration)
                continue; // this gate's pulses already ended
            const int ki = kind_index(j.kind);
            if (!have[ki]) {
                cached[ki] = j.q1 < 0
                                 ? drive1QStep(*j.program, t_mid, dt)
                                 : drive2QStep(*j.program, t_mid, dt);
                have[ki] = true;
            }
            if (j.q1 < 0)
                psi.apply1Q(cached[ki], j.q0);
            else
                psi.apply2Q(cached[ki], j.q0, j.q1);
        }

        psi.applyDiagonalPhase(zz_energies_, dt / 2.0);
    }
}

void
PulseScheduleSimulator::run(const core::Schedule &schedule,
                            StateVector &psi) const
{
    require(schedule.num_qubits == device_.numQubits(),
            "PulseScheduleSimulator::run: schedule/device mismatch");
    for (const core::Layer &layer : schedule.layers)
        runLayer(layer, psi);
}

StateVector
PulseScheduleSimulator::run(const core::Schedule &schedule) const
{
    StateVector psi(device_.numQubits());
    run(schedule, psi);
    return psi;
}

} // namespace qzz::sim
