/**
 * @file
 * Multi-level transmon model for the leakage study (Fig. 18).
 *
 * The driven qubit is a 5-level anharmonic oscillator in the rotating
 * frame:
 *   H = sum_j alpha j(j-1)/2 |j><j| + Ox(t)(a + a^dag) + Oy(t) i(a^dag - a)
 * with a truncated lowering operator.  The ZZ crosstalk to a two-level
 * spectator acts on the computational subspace
 * (Z_gen = |0><0| - |1><1|, zero on leakage levels), so the spectator
 * again block-diagonalizes: two 5x5 blocks with +-lambda shifts.
 *
 * Infidelity is measured on the computational subspace with leakage
 * penalized through the non-unitarity of the projected block (the
 * tr(M M^dag) term of Nielsen's formula).
 */

#ifndef QZZ_SIM_TRANSMON_H
#define QZZ_SIM_TRANSMON_H

#include "linalg/matrix.h"
#include "pulse/program.h"

namespace qzz::sim {

/** Transmon model parameters. */
struct TransmonConfig
{
    /** Number of oscillator levels (paper: 5). */
    int levels = 5;
    /** Anharmonicity alpha (rad/ns; negative for transmons). */
    double anharmonicity = 0.0;
    /** ZZ coupling to the two-level spectator (rad/ns). */
    double lambda = 0.0;
};

/**
 * Crosstalk + leakage infidelity of a single-qubit pulse on the
 * 5-level transmon with one spectator:
 * 1 - F_avg(P U P^dag, target (x) I) over the 4-dim computational
 * space.
 */
double transmonCrosstalkInfidelity(const pulse::PulseProgram &p,
                                   const la::CMatrix &target,
                                   const TransmonConfig &cfg,
                                   double dt = 0.005);

} // namespace qzz::sim

#endif // QZZ_SIM_TRANSMON_H
