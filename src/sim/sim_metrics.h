/**
 * @file
 * Telemetry handles for the schedule simulators.
 *
 * The simulators publish to the process-wide MetricsRegistry under
 * the qzz_sim_* names (docs/observability.md): layer/step counters
 * and per-kernel-class nanosecond histograms, labeled by simulator
 * flavor.  Handles are resolved once at simulator construction;
 * recording is per *layer* (timings are accumulated across a layer's
 * steps and observed once), so the per-step hot path pays only a
 * clock read per kernel region.
 */

#ifndef QZZ_SIM_SIM_METRICS_H
#define QZZ_SIM_SIM_METRICS_H

#include <chrono>

#include "common/telemetry.h"

namespace qzz::sim {

/** Instrument handles for one simulator flavor; null when telemetry
 *  is disabled in the options. */
struct SimMetrics
{
    tel::Counter *layers = nullptr;
    tel::Counter *steps = nullptr;
    tel::Histogram *phase_ns = nullptr;  ///< diagonal ZZ phase sweeps
    tel::Histogram *gate_ns = nullptr;   ///< 1Q/2Q drive propagators
    tel::Histogram *decoh_ns = nullptr;  ///< Kraus decoherence sweeps

    bool enabled() const { return layers != nullptr; }
};

/** Resolve (registering on first use) the qzz_sim_* instruments for
 *  @p flavor ("density" or "statevector") in the global registry. */
SimMetrics simMetrics(const char *flavor);

/** Nanosecond accumulator for one kernel class within one layer; a
 *  no-op (no clock reads) when telemetry is off. */
class KernelTimer
{
  public:
    explicit KernelTimer(bool on) : on_(on) {}

    void start()
    {
        if (on_)
            t_ = std::chrono::steady_clock::now();
    }
    void stop()
    {
        if (on_)
            ns_ += double(std::chrono::duration_cast<
                              std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - t_)
                              .count());
    }
    double ns() const { return ns_; }

  private:
    bool on_;
    double ns_ = 0.0;
    std::chrono::steady_clock::time_point t_;
};

} // namespace qzz::sim

#endif // QZZ_SIM_SIM_METRICS_H
