/**
 * @file
 * Time-dependent Schrodinger propagators for small dense systems.
 *
 * Solves i dU/dt = H(t) U with a classic fixed-step RK4 integrator
 * (hbar = 1).  Dimensions here are tiny (2..32): basic pulse regions,
 * their spectator blocks, and the 5-level transmon model.  The
 * circuit-scale simulator lives in qzz::sim and does not use this.
 *
 * propagateWithDyson() additionally accumulates the first-order Dyson
 * integrals
 *     M_k = int_0^T U^dag(t) A_k U(t) dt
 * which are exactly the quantities the paper's Pert objective drives
 * to zero (Sec. 7.1.1).
 */

#ifndef QZZ_ODE_PROPAGATOR_H
#define QZZ_ODE_PROPAGATOR_H

#include <functional>
#include <vector>

#include "linalg/matrix.h"

namespace qzz::ode {

/**
 * Callback producing the Hamiltonian at time @p t into @p h.
 * @p h arrives zeroed with the correct dimension.
 */
using HamiltonianFn = std::function<void(double t, la::CMatrix &h)>;

/** Integration controls. */
struct PropagationOptions
{
    /** RK4 step in ns.  0.01 ns resolves 20 ns pulses to ~1e-9. */
    double dt = 0.01;
};

/**
 * Propagate U(t0) = I to U(t1) under i dU/dt = H(t) U.
 *
 * @param h    Hamiltonian callback.
 * @param dim  Hilbert-space dimension.
 * @param t0   start time (ns).
 * @param t1   end time (ns).
 * @param opt  integration controls.
 * @return the propagator U(t1).
 */
la::CMatrix propagate(const HamiltonianFn &h, size_t dim, double t0,
                      double t1, const PropagationOptions &opt = {});

/** Result of propagateWithDyson(). */
struct DysonResult
{
    /** Final propagator U(T). */
    la::CMatrix u;
    /** First-order integrals, one per requested observable. */
    std::vector<la::CMatrix> firstOrder;
};

/**
 * Propagate and accumulate first-order Dyson integrals of the given
 * observables in the interaction picture of the drive.
 *
 * @param h           Hamiltonian callback (the control Hamiltonian).
 * @param observables static operators A_k to integrate.
 * @param dim         Hilbert-space dimension.
 * @param t0,t1       time window (ns).
 * @param opt         integration controls.
 */
DysonResult propagateWithDyson(const HamiltonianFn &h,
                               const std::vector<la::CMatrix> &observables,
                               size_t dim, double t0, double t1,
                               const PropagationOptions &opt = {});

} // namespace qzz::ode

#endif // QZZ_ODE_PROPAGATOR_H
