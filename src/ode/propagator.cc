#include "ode/propagator.h"

#include <cmath>

#include "common/error.h"

namespace qzz::ode {

using la::CMatrix;
using la::cplx;

namespace {

/**
 * Scratch space reused across RK4 steps; the propagators are hot
 * enough that per-step allocation would dominate the runtime.
 */
struct Rk4Scratch
{
    CMatrix h, k1, k2, k3, k4, tmp, next;

    explicit Rk4Scratch(size_t dim)
        : h(dim, dim), k1(dim, dim), k2(dim, dim), k3(dim, dim),
          k4(dim, dim), tmp(dim, dim), next(dim, dim)
    {
    }
};

/** out = -i h * u (no allocation). */
void
rhs(const CMatrix &h, const CMatrix &u, CMatrix &out)
{
    la::multiplyInto(h, u, out);
    const size_t n = out.rows() * out.cols();
    cplx *p = out.data();
    for (size_t i = 0; i < n; ++i)
        p[i] = cplx{p[i].imag(), -p[i].real()}; // multiply by -i
}

/** tmp = u + s * k. */
void
axpy(const CMatrix &u, double s, const CMatrix &k, CMatrix &tmp)
{
    const size_t n = u.rows() * u.cols();
    const cplx *pu = u.data();
    const cplx *pk = k.data();
    cplx *pt = tmp.data();
    for (size_t i = 0; i < n; ++i)
        pt[i] = pu[i] + s * pk[i];
}

/** One RK4 step from (t, u) with step dt; result left in s.next. */
void
rk4Step(const HamiltonianFn &hfn, double t, double dt, const CMatrix &u,
        Rk4Scratch &s)
{
    s.h.setZero();
    hfn(t, s.h);
    rhs(s.h, u, s.k1);

    axpy(u, dt / 2.0, s.k1, s.tmp);
    s.h.setZero();
    hfn(t + dt / 2.0, s.h);
    rhs(s.h, s.tmp, s.k2);

    axpy(u, dt / 2.0, s.k2, s.tmp);
    rhs(s.h, s.tmp, s.k3); // same midpoint Hamiltonian

    axpy(u, dt, s.k3, s.tmp);
    s.h.setZero();
    hfn(t + dt, s.h);
    rhs(s.h, s.tmp, s.k4);

    const size_t n = u.rows() * u.cols();
    const cplx *pu = u.data();
    cplx *pn = s.next.data();
    const cplx *p1 = s.k1.data(), *p2 = s.k2.data();
    const cplx *p3 = s.k3.data(), *p4 = s.k4.data();
    for (size_t i = 0; i < n; ++i)
        pn[i] = pu[i] + (dt / 6.0) * (p1[i] + 2.0 * p2[i] +
                                      2.0 * p3[i] + p4[i]);
}

} // namespace

CMatrix
propagate(const HamiltonianFn &h, size_t dim, double t0, double t1,
          const PropagationOptions &opt)
{
    require(t1 >= t0, "propagate: t1 < t0");
    require(opt.dt > 0.0, "propagate: non-positive dt");

    const double span = t1 - t0;
    CMatrix u = CMatrix::identity(dim);
    if (span == 0.0)
        return u;
    const size_t steps =
        std::max<size_t>(1, size_t(std::ceil(span / opt.dt)));
    const double dt = span / double(steps);

    Rk4Scratch scratch(dim);
    double t = t0;
    for (size_t i = 0; i < steps; ++i) {
        rk4Step(h, t, dt, u, scratch);
        std::swap(u, scratch.next);
        t = t0 + span * double(i + 1) / double(steps);
    }
    return u;
}

DysonResult
propagateWithDyson(const HamiltonianFn &h,
                   const std::vector<CMatrix> &observables, size_t dim,
                   double t0, double t1, const PropagationOptions &opt)
{
    require(t1 >= t0, "propagateWithDyson: t1 < t0");
    require(opt.dt > 0.0, "propagateWithDyson: non-positive dt");

    const double span = t1 - t0;
    DysonResult res;
    res.u = CMatrix::identity(dim);
    res.firstOrder.assign(observables.size(), CMatrix(dim, dim));
    if (span == 0.0)
        return res;
    const size_t steps =
        std::max<size_t>(1, size_t(std::ceil(span / opt.dt)));
    const double dt = span / double(steps);

    // Trapezoid accumulation of f_k(t) = U^dag(t) A_k U(t) on the RK4
    // grid; O(dt^2) accuracy, consistent with how the integrals are
    // used (they are optimization targets, re-verified by full
    // simulation afterwards).
    std::vector<CMatrix> f_prev(observables.size());
    for (size_t k = 0; k < observables.size(); ++k)
        f_prev[k] = observables[k]; // U(0) = I

    Rk4Scratch scratch(dim);
    CMatrix udag(dim, dim), au(dim, dim), f(dim, dim);
    double t = t0;
    for (size_t i = 0; i < steps; ++i) {
        rk4Step(h, t, dt, res.u, scratch);
        std::swap(res.u, scratch.next);
        t = t0 + span * double(i + 1) / double(steps);

        // udag = U^dag without allocation.
        for (size_t r = 0; r < dim; ++r)
            for (size_t c = 0; c < dim; ++c)
                udag(r, c) = std::conj(res.u(c, r));
        for (size_t k = 0; k < observables.size(); ++k) {
            la::multiplyInto(observables[k], res.u, au);
            la::multiplyInto(udag, au, f);
            cplx *acc = res.firstOrder[k].data();
            cplx *prev = f_prev[k].data();
            const cplx *cur = f.data();
            const size_t n = dim * dim;
            for (size_t j = 0; j < n; ++j) {
                acc[j] += (dt / 2.0) * (prev[j] + cur[j]);
                prev[j] = cur[j];
            }
        }
    }
    return res;
}

} // namespace qzz::ode
