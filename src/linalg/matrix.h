/**
 * @file
 * Dense complex matrices and vectors.
 *
 * This is the numerical workhorse for the pulse-level simulators: all
 * basic-region Hamiltonians are small (2 to ~20 dimensional), so a
 * straightforward row-major dense implementation is both simple and
 * fast enough.  Circuit-level state vectors use the dedicated
 * qzz::sim::StateVector instead.
 */

#ifndef QZZ_LINALG_MATRIX_H
#define QZZ_LINALG_MATRIX_H

#include <array>
#include <complex>
#include <initializer_list>
#include <vector>

namespace qzz::la {

/** Complex scalar type used throughout qzz. */
using cplx = std::complex<double>;

/** The imaginary unit. */
inline constexpr cplx kI{0.0, 1.0};

/** A dense complex column vector. */
using CVector = std::vector<cplx>;

/**
 * Fixed-size row-major 2x2 / 4x4 complex matrices (element (r, c) at
 * index r * n + c).  These are the currency of the simulator hot
 * path: step propagators live in them so the memoized-propagator
 * loop never allocates (see sim/drive_step.h).
 */
using Mat2 = std::array<cplx, 4>;
using Mat4 = std::array<cplx, 16>;

/** Copy a CMatrix of matching shape into a fixed-size matrix. */
Mat2 toMat2(const class CMatrix &m);
Mat4 toMat4(const class CMatrix &m);

/** A dense, row-major complex matrix. */
class CMatrix
{
  public:
    /** Empty 0x0 matrix. */
    CMatrix() = default;

    /** Zero-initialized rows x cols matrix. */
    CMatrix(size_t rows, size_t cols);

    /**
     * Construct from nested initializer lists, e.g.
     * `CMatrix m{{1, 0}, {0, -1}};`
     */
    CMatrix(std::initializer_list<std::initializer_list<cplx>> init);

    /** The n x n identity. */
    static CMatrix identity(size_t n);

    /** The n x n zero matrix. */
    static CMatrix zero(size_t n);

    /** A diagonal matrix from the given entries. */
    static CMatrix diag(const CVector &entries);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    bool empty() const { return rows_ == 0 || cols_ == 0; }

    /** Element access (no bounds check in release builds). */
    cplx &operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
    const cplx &
    operator()(size_t r, size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Raw storage, row-major. */
    cplx *data() { return data_.data(); }
    const cplx *data() const { return data_.data(); }

    /** Zero every entry without reallocating. */
    void setZero();

    CMatrix &operator+=(const CMatrix &rhs);
    CMatrix &operator-=(const CMatrix &rhs);
    CMatrix &operator*=(cplx s);

    /** Conjugate transpose. */
    CMatrix dagger() const;

    /** Transpose without conjugation. */
    CMatrix transpose() const;

    /** Elementwise complex conjugate. */
    CMatrix conj() const;

    /** Trace (square matrices only). */
    cplx trace() const;

    /** Frobenius norm sqrt(sum |a_ij|^2). */
    double frobeniusNorm() const;

    /** Max |a_ij|. */
    double maxAbs() const;

    /** True if this is numerically the identity within @p tol. */
    bool isIdentity(double tol = 1e-9) const;

    /** True if U U^dag = I within @p tol. */
    bool isUnitary(double tol = 1e-9) const;

    /** True if A = A^dag within @p tol. */
    bool isHermitian(double tol = 1e-9) const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<cplx> data_;
};

CMatrix operator+(CMatrix lhs, const CMatrix &rhs);
CMatrix operator-(CMatrix lhs, const CMatrix &rhs);
CMatrix operator*(const CMatrix &lhs, const CMatrix &rhs);
CMatrix operator*(cplx s, CMatrix m);
CMatrix operator*(CMatrix m, cplx s);

/** Matrix-vector product. */
CVector operator*(const CMatrix &m, const CVector &v);

/**
 * out = a * b without allocation (out must already have the right
 * shape and be distinct from a and b).  Hot path of the propagators.
 */
void multiplyInto(const CMatrix &a, const CMatrix &b, CMatrix &out);

/** Kronecker (tensor) product, a (x) b. */
CMatrix kron(const CMatrix &a, const CMatrix &b);

/** Kronecker product of a list of factors, left to right. */
CMatrix kronAll(const std::vector<CMatrix> &factors);

/** tr(a^dag b). */
cplx innerProduct(const CMatrix &a, const CMatrix &b);

/** <a|b> for vectors. */
cplx dot(const CVector &a, const CVector &b);

/** Euclidean norm of a vector. */
double norm(const CVector &v);

/** Normalize a vector in place; returns the original norm. */
double normalize(CVector &v);

/** Frobenius distance ||a - b||_F. */
double distance(const CMatrix &a, const CMatrix &b);

/**
 * Distance up to global phase: min_phi ||a - e^{i phi} b||_F.
 * Used to compare unitaries that are only defined modulo phase.
 */
double phaseDistance(const CMatrix &a, const CMatrix &b);

/** @name Single-qubit constants
 *  The Pauli matrices and the 2x2 identity.
 *  @{
 */
const CMatrix &pauliX();
const CMatrix &pauliY();
const CMatrix &pauliZ();
const CMatrix &identity2();
/** @} */

/**
 * Embed a k-qubit operator acting on the given qubit indices of an
 * n-qubit register (qubit 0 = most significant tensor factor).
 *
 * Intended for building small test Hamiltonians; cost is O(4^n).
 */
CMatrix embed(const CMatrix &op, const std::vector<int> &qubits, int n);

} // namespace qzz::la

#endif // QZZ_LINALG_MATRIX_H
