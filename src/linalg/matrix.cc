#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace qzz::la {

CMatrix::CMatrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, cplx{0.0, 0.0})
{
}

CMatrix::CMatrix(std::initializer_list<std::initializer_list<cplx>> init)
{
    rows_ = init.size();
    cols_ = rows_ ? init.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto &row : init) {
        require(row.size() == cols_, "CMatrix: ragged initializer list");
        for (const auto &v : row)
            data_.push_back(v);
    }
}

Mat2
toMat2(const CMatrix &m)
{
    require(m.rows() == 2 && m.cols() == 2, "toMat2: need a 2x2");
    Mat2 out;
    std::copy(m.data(), m.data() + 4, out.begin());
    return out;
}

Mat4
toMat4(const CMatrix &m)
{
    require(m.rows() == 4 && m.cols() == 4, "toMat4: need a 4x4");
    Mat4 out;
    std::copy(m.data(), m.data() + 16, out.begin());
    return out;
}

CMatrix
CMatrix::identity(size_t n)
{
    CMatrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

CMatrix
CMatrix::zero(size_t n)
{
    return CMatrix(n, n);
}

CMatrix
CMatrix::diag(const CVector &entries)
{
    CMatrix m(entries.size(), entries.size());
    for (size_t i = 0; i < entries.size(); ++i)
        m(i, i) = entries[i];
    return m;
}

CMatrix &
CMatrix::operator+=(const CMatrix &rhs)
{
    require(rows_ == rhs.rows_ && cols_ == rhs.cols_,
            "CMatrix +=: shape mismatch");
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += rhs.data_[i];
    return *this;
}

CMatrix &
CMatrix::operator-=(const CMatrix &rhs)
{
    require(rows_ == rhs.rows_ && cols_ == rhs.cols_,
            "CMatrix -=: shape mismatch");
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] -= rhs.data_[i];
    return *this;
}

CMatrix &
CMatrix::operator*=(cplx s)
{
    for (auto &v : data_)
        v *= s;
    return *this;
}

CMatrix
CMatrix::dagger() const
{
    CMatrix out(cols_, rows_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out(c, r) = std::conj((*this)(r, c));
    return out;
}

CMatrix
CMatrix::transpose() const
{
    CMatrix out(cols_, rows_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out(c, r) = (*this)(r, c);
    return out;
}

CMatrix
CMatrix::conj() const
{
    CMatrix out(rows_, cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = std::conj(data_[i]);
    return out;
}

cplx
CMatrix::trace() const
{
    require(rows_ == cols_, "trace: matrix not square");
    cplx t = 0.0;
    for (size_t i = 0; i < rows_; ++i)
        t += (*this)(i, i);
    return t;
}

double
CMatrix::frobeniusNorm() const
{
    double s = 0.0;
    for (const auto &v : data_)
        s += std::norm(v);
    return std::sqrt(s);
}

double
CMatrix::maxAbs() const
{
    double m = 0.0;
    for (const auto &v : data_)
        m = std::max(m, std::abs(v));
    return m;
}

void
CMatrix::setZero()
{
    std::fill(data_.begin(), data_.end(), cplx{0.0, 0.0});
}

bool
CMatrix::isIdentity(double tol) const
{
    if (rows_ != cols_)
        return false;
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c) {
            cplx want = (r == c) ? cplx{1.0, 0.0} : cplx{0.0, 0.0};
            if (std::abs((*this)(r, c) - want) > tol)
                return false;
        }
    return true;
}

bool
CMatrix::isUnitary(double tol) const
{
    if (rows_ != cols_)
        return false;
    return ((*this) * dagger()).isIdentity(tol);
}

bool
CMatrix::isHermitian(double tol) const
{
    if (rows_ != cols_)
        return false;
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            if (std::abs((*this)(r, c) - std::conj((*this)(c, r))) > tol)
                return false;
    return true;
}

CMatrix
operator+(CMatrix lhs, const CMatrix &rhs)
{
    lhs += rhs;
    return lhs;
}

CMatrix
operator-(CMatrix lhs, const CMatrix &rhs)
{
    lhs -= rhs;
    return lhs;
}

CMatrix
operator*(const CMatrix &lhs, const CMatrix &rhs)
{
    require(lhs.cols() == rhs.rows(), "CMatrix *: shape mismatch");
    CMatrix out(lhs.rows(), rhs.cols());
    const size_t n = lhs.rows(), k = lhs.cols(), m = rhs.cols();
    for (size_t r = 0; r < n; ++r) {
        for (size_t x = 0; x < k; ++x) {
            const cplx a = lhs(r, x);
            if (a == cplx{0.0, 0.0})
                continue;
            const cplx *brow = rhs.data() + x * m;
            cplx *orow = out.data() + r * m;
            for (size_t c = 0; c < m; ++c)
                orow[c] += a * brow[c];
        }
    }
    return out;
}

CMatrix
operator*(cplx s, CMatrix m)
{
    m *= s;
    return m;
}

CMatrix
operator*(CMatrix m, cplx s)
{
    m *= s;
    return m;
}

CVector
operator*(const CMatrix &m, const CVector &v)
{
    require(m.cols() == v.size(), "CMatrix * CVector: shape mismatch");
    CVector out(m.rows(), cplx{0.0, 0.0});
    for (size_t r = 0; r < m.rows(); ++r) {
        cplx acc = 0.0;
        const cplx *row = m.data() + r * m.cols();
        for (size_t c = 0; c < m.cols(); ++c)
            acc += row[c] * v[c];
        out[r] = acc;
    }
    return out;
}

void
multiplyInto(const CMatrix &a, const CMatrix &b, CMatrix &out)
{
    require(a.cols() == b.rows() && out.rows() == a.rows() &&
                out.cols() == b.cols(),
            "multiplyInto: shape mismatch");
    require(out.data() != a.data() && out.data() != b.data(),
            "multiplyInto: output must not alias an input");
    out.setZero();
    const size_t n = a.rows(), k = a.cols(), m = b.cols();
    for (size_t r = 0; r < n; ++r) {
        cplx *orow = out.data() + r * m;
        for (size_t x = 0; x < k; ++x) {
            const cplx av = a(r, x);
            if (av == cplx{0.0, 0.0})
                continue;
            const cplx *brow = b.data() + x * m;
            for (size_t c = 0; c < m; ++c)
                orow[c] += av * brow[c];
        }
    }
}

CMatrix
kron(const CMatrix &a, const CMatrix &b)
{
    CMatrix out(a.rows() * b.rows(), a.cols() * b.cols());
    for (size_t ar = 0; ar < a.rows(); ++ar)
        for (size_t ac = 0; ac < a.cols(); ++ac) {
            const cplx v = a(ar, ac);
            if (v == cplx{0.0, 0.0})
                continue;
            for (size_t br = 0; br < b.rows(); ++br)
                for (size_t bc = 0; bc < b.cols(); ++bc)
                    out(ar * b.rows() + br, ac * b.cols() + bc) =
                        v * b(br, bc);
        }
    return out;
}

CMatrix
kronAll(const std::vector<CMatrix> &factors)
{
    require(!factors.empty(), "kronAll: empty factor list");
    CMatrix out = factors.front();
    for (size_t i = 1; i < factors.size(); ++i)
        out = kron(out, factors[i]);
    return out;
}

cplx
innerProduct(const CMatrix &a, const CMatrix &b)
{
    require(a.rows() == b.rows() && a.cols() == b.cols(),
            "innerProduct: shape mismatch");
    cplx s = 0.0;
    const cplx *pa = a.data();
    const cplx *pb = b.data();
    const size_t n = a.rows() * a.cols();
    for (size_t i = 0; i < n; ++i)
        s += std::conj(pa[i]) * pb[i];
    return s;
}

cplx
dot(const CVector &a, const CVector &b)
{
    require(a.size() == b.size(), "dot: length mismatch");
    cplx s = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        s += std::conj(a[i]) * b[i];
    return s;
}

double
norm(const CVector &v)
{
    double s = 0.0;
    for (const auto &x : v)
        s += std::norm(x);
    return std::sqrt(s);
}

double
normalize(CVector &v)
{
    double n = norm(v);
    if (n > 0.0)
        for (auto &x : v)
            x /= n;
    return n;
}

double
distance(const CMatrix &a, const CMatrix &b)
{
    return (a - b).frobeniusNorm();
}

double
phaseDistance(const CMatrix &a, const CMatrix &b)
{
    // The minimizing phase is e^{i phi} = <b,a>/|<b,a>|; forming the
    // aligned difference directly avoids the cancellation that the
    // norm-based formula suffers near zero distance.
    cplx ov = innerProduct(b, a);
    cplx phase = std::abs(ov) > 0.0 ? ov / std::abs(ov) : cplx{1.0, 0.0};
    CMatrix aligned = b;
    aligned *= phase;
    return distance(a, aligned);
}

const CMatrix &
pauliX()
{
    static const CMatrix m{{0.0, 1.0}, {1.0, 0.0}};
    return m;
}

const CMatrix &
pauliY()
{
    static const CMatrix m{{0.0, -kI}, {kI, 0.0}};
    return m;
}

const CMatrix &
pauliZ()
{
    static const CMatrix m{{1.0, 0.0}, {0.0, -1.0}};
    return m;
}

const CMatrix &
identity2()
{
    static const CMatrix m = CMatrix::identity(2);
    return m;
}

CMatrix
embed(const CMatrix &op, const std::vector<int> &qubits, int n)
{
    require(n >= 1 && n <= 14, "embed: qubit count out of range");
    const size_t k = qubits.size();
    require(op.rows() == (size_t(1) << k) && op.cols() == op.rows(),
            "embed: operator dimension does not match qubit count");
    const size_t dim = size_t(1) << n;
    size_t selected_mask = 0;
    for (int q : qubits) {
        require(q >= 0 && q < n, "embed: qubit index out of range");
        selected_mask |= size_t(1) << (n - 1 - q); // qubit 0 = MSB
    }
    require(__builtin_popcountll(selected_mask) == int(k),
            "embed: duplicate qubit index");

    CMatrix out(dim, dim);
    // For each full-register basis pair, look up the operator element on
    // the selected qubits; off-target qubits must match (identity).
    for (size_t r = 0; r < dim; ++r) {
        for (size_t c = 0; c < dim; ++c) {
            if ((r & ~selected_mask) != (c & ~selected_mask))
                continue;
            size_t opr = 0, opc = 0;
            for (size_t i = 0; i < k; ++i) {
                const int bitpos = n - 1 - qubits[i];
                opr = (opr << 1) | ((r >> bitpos) & 1);
                opc = (opc << 1) | ((c >> bitpos) & 1);
            }
            out(r, c) = op(opr, opc);
        }
    }
    return out;
}

} // namespace qzz::la
