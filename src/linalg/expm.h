/**
 * @file
 * Matrix exponentials and linear solves.
 *
 * Provides a general scaling-and-squaring Pade expm for dense complex
 * matrices, plus closed-form fast paths for the 2x2 Pauli algebra and
 * for involutory operators (P^2 = I), which cover every propagator the
 * split-step circuit simulator needs.
 */

#ifndef QZZ_LINALG_EXPM_H
#define QZZ_LINALG_EXPM_H

#include "linalg/matrix.h"

namespace qzz::la {

/**
 * Solve A X = B for X with partial-pivoting LU decomposition.
 *
 * @param a square coefficient matrix (copied internally).
 * @param b right-hand side (may have multiple columns).
 * @return the solution X.
 */
CMatrix luSolve(const CMatrix &a, const CMatrix &b);

/** Matrix inverse via luSolve against the identity. */
CMatrix inverse(const CMatrix &a);

/**
 * General matrix exponential exp(A) using scaling-and-squaring with a
 * degree-13 Pade approximant (Higham 2005).
 */
CMatrix expm(const CMatrix &a);

/** Propagator exp(-i H t) for a (typically Hermitian) generator H. */
CMatrix expmPropagator(const CMatrix &h, double t);

/**
 * Closed-form exp(-i (ax*sx + ay*sy + az*sz)) for the 2x2 Pauli algebra.
 * Exact and allocation-light; the inner loop of every qubit drive.
 */
CMatrix expPauli(double ax, double ay, double az);

/** Allocation-free expPauli variant writing into a fixed 2x2.  The
 *  entries are bit-identical to the CMatrix overload's. */
void expPauli(double ax, double ay, double az, Mat2 &out);

/**
 * Allocation-free 4x4 propagator exp(-i H t): a faithful fixed-size
 * transcription of expmPropagator()/expm() (same scaling choice, same
 * Pade-13 evaluation order, same LU pivoting), so the result is
 * bit-identical to the heap CMatrix path on finite inputs.  This is
 * the kernel behind the memoized two-qubit step propagators.
 */
void expmPropagator4(const Mat4 &h, double t, Mat4 &out);

/**
 * Closed-form exp(-i theta P) for an involutory operator (P^2 = I):
 * cos(theta) I - i sin(theta) P.
 *
 * @param p the involutory generator (checked in debug via P^2 = I).
 * @param theta the rotation angle.
 */
CMatrix expInvolutory(const CMatrix &p, double theta);

} // namespace qzz::la

#endif // QZZ_LINALG_EXPM_H
