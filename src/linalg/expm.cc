#include "linalg/expm.h"

#include <cmath>

#include "common/error.h"

namespace qzz::la {

CMatrix
luSolve(const CMatrix &a, const CMatrix &b)
{
    require(a.rows() == a.cols(), "luSolve: matrix not square");
    require(a.rows() == b.rows(), "luSolve: rhs shape mismatch");
    const size_t n = a.rows();
    const size_t m = b.cols();
    CMatrix lu = a;
    CMatrix x = b;
    std::vector<size_t> perm(n);
    for (size_t i = 0; i < n; ++i)
        perm[i] = i;

    for (size_t col = 0; col < n; ++col) {
        // Partial pivoting.
        size_t pivot = col;
        double best = std::abs(lu(col, col));
        for (size_t r = col + 1; r < n; ++r) {
            double v = std::abs(lu(r, col));
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        require(best > 0.0, "luSolve: singular matrix");
        if (pivot != col) {
            for (size_t c = 0; c < n; ++c)
                std::swap(lu(col, c), lu(pivot, c));
            for (size_t c = 0; c < m; ++c)
                std::swap(x(col, c), x(pivot, c));
        }
        const cplx d = lu(col, col);
        for (size_t r = col + 1; r < n; ++r) {
            const cplx f = lu(r, col) / d;
            if (f == cplx{0.0, 0.0})
                continue;
            lu(r, col) = f;
            for (size_t c = col + 1; c < n; ++c)
                lu(r, c) -= f * lu(col, c);
            for (size_t c = 0; c < m; ++c)
                x(r, c) -= f * x(col, c);
        }
    }

    // Back substitution.
    for (size_t ri = n; ri-- > 0;) {
        const cplx d = lu(ri, ri);
        for (size_t c = 0; c < m; ++c) {
            cplx acc = x(ri, c);
            for (size_t k = ri + 1; k < n; ++k)
                acc -= lu(ri, k) * x(k, c);
            x(ri, c) = acc / d;
        }
    }
    return x;
}

CMatrix
inverse(const CMatrix &a)
{
    return luSolve(a, CMatrix::identity(a.rows()));
}

namespace {

/** 1-norm (max column sum) used to pick the Pade scaling. */
double
oneNorm(const CMatrix &a)
{
    double best = 0.0;
    for (size_t c = 0; c < a.cols(); ++c) {
        double s = 0.0;
        for (size_t r = 0; r < a.rows(); ++r)
            s += std::abs(a(r, c));
        best = std::max(best, s);
    }
    return best;
}

} // namespace

CMatrix
expm(const CMatrix &a)
{
    require(a.rows() == a.cols(), "expm: matrix not square");
    const size_t n = a.rows();

    // Scaling: bring ||A/2^s|| under the degree-13 Pade radius.
    const double theta13 = 5.371920351148152;
    double nrm = oneNorm(a);
    int s = 0;
    if (nrm > theta13)
        s = int(std::ceil(std::log2(nrm / theta13)));
    CMatrix as = a;
    if (s > 0)
        as *= cplx{std::ldexp(1.0, -s), 0.0};

    static const double b[] = {
        64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
        1187353796428800.0,  129060195264000.0,   10559470521600.0,
        670442572800.0,      33522128640.0,       1323241920.0,
        40840800.0,          960960.0,            16380.0,
        182.0,               1.0};

    const CMatrix id = CMatrix::identity(n);
    const CMatrix a2 = as * as;
    const CMatrix a4 = a2 * a2;
    const CMatrix a6 = a2 * a4;

    CMatrix u = as * (a6 * (b[13] * a6 + b[11] * a4 + b[9] * a2) +
                      b[7] * a6 + b[5] * a4 + b[3] * a2 + b[1] * id);
    CMatrix v = a6 * (b[12] * a6 + b[10] * a4 + b[8] * a2) + b[6] * a6 +
                b[4] * a4 + b[2] * a2 + b[0] * id;

    CMatrix r = luSolve(v - u, v + u);
    for (int i = 0; i < s; ++i)
        r = r * r;
    return r;
}

CMatrix
expmPropagator(const CMatrix &h, double t)
{
    CMatrix a = h;
    a *= cplx{0.0, -t};
    return expm(a);
}

CMatrix
expPauli(double ax, double ay, double az)
{
    const double r = std::sqrt(ax * ax + ay * ay + az * az);
    CMatrix u(2, 2);
    if (r < 1e-300) {
        u(0, 0) = u(1, 1) = 1.0;
        return u;
    }
    const double c = std::cos(r);
    const double s = std::sin(r) / r;
    // exp(-i r (n.sigma)) = cos(r) I - i sin(r) (n.sigma)
    u(0, 0) = cplx{c, -s * az};
    u(0, 1) = cplx{-s * ay, -s * ax};
    u(1, 0) = cplx{s * ay, -s * ax};
    u(1, 1) = cplx{c, s * az};
    return u;
}

void
expPauli(double ax, double ay, double az, Mat2 &out)
{
    const double r = std::sqrt(ax * ax + ay * ay + az * az);
    if (r < 1e-300) {
        out = {cplx{1.0, 0.0}, cplx{0.0, 0.0}, cplx{0.0, 0.0},
               cplx{1.0, 0.0}};
        return;
    }
    const double c = std::cos(r);
    const double s = std::sin(r) / r;
    out[0] = cplx{c, -s * az};
    out[1] = cplx{-s * ay, -s * ax};
    out[2] = cplx{s * ay, -s * ax};
    out[3] = cplx{c, s * az};
}

namespace {

// Fixed-size 4x4 helpers mirroring the CMatrix operators exactly
// (same accumulation order, same zero-entry skip), so that
// expmPropagator4() reproduces expm() bit for bit.

void
mul4(const Mat4 &lhs, const Mat4 &rhs, Mat4 &out)
{
    out.fill(cplx{0.0, 0.0});
    for (size_t r = 0; r < 4; ++r)
        for (size_t x = 0; x < 4; ++x) {
            const cplx a = lhs[r * 4 + x];
            if (a == cplx{0.0, 0.0})
                continue;
            for (size_t c = 0; c < 4; ++c)
                out[r * 4 + c] += a * rhs[x * 4 + c];
        }
}

/** out = s * m, matching operator*(cplx, CMatrix)'s v *= s. */
Mat4
scaled4(double s, const Mat4 &m)
{
    Mat4 out = m;
    for (cplx &v : out)
        v *= cplx{s, 0.0};
    return out;
}

void
add4(Mat4 &lhs, const Mat4 &rhs)
{
    for (size_t i = 0; i < 16; ++i)
        lhs[i] += rhs[i];
}

double
oneNorm4(const Mat4 &a)
{
    double best = 0.0;
    for (size_t c = 0; c < 4; ++c) {
        double s = 0.0;
        for (size_t r = 0; r < 4; ++r)
            s += std::abs(a[r * 4 + c]);
        best = std::max(best, s);
    }
    return best;
}

/** Solve A X = B in place on the stack; transcribes luSolve(). */
Mat4
luSolve4(Mat4 lu, Mat4 x)
{
    for (size_t col = 0; col < 4; ++col) {
        size_t pivot = col;
        double best = std::abs(lu[col * 4 + col]);
        for (size_t r = col + 1; r < 4; ++r) {
            double v = std::abs(lu[r * 4 + col]);
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        require(best > 0.0, "luSolve4: singular matrix");
        if (pivot != col) {
            for (size_t c = 0; c < 4; ++c)
                std::swap(lu[col * 4 + c], lu[pivot * 4 + c]);
            for (size_t c = 0; c < 4; ++c)
                std::swap(x[col * 4 + c], x[pivot * 4 + c]);
        }
        const cplx d = lu[col * 4 + col];
        for (size_t r = col + 1; r < 4; ++r) {
            const cplx f = lu[r * 4 + col] / d;
            if (f == cplx{0.0, 0.0})
                continue;
            lu[r * 4 + col] = f;
            for (size_t c = col + 1; c < 4; ++c)
                lu[r * 4 + c] -= f * lu[col * 4 + c];
            for (size_t c = 0; c < 4; ++c)
                x[r * 4 + c] -= f * x[col * 4 + c];
        }
    }
    for (size_t ri = 4; ri-- > 0;) {
        const cplx d = lu[ri * 4 + ri];
        for (size_t c = 0; c < 4; ++c) {
            cplx acc = x[ri * 4 + c];
            for (size_t k = ri + 1; k < 4; ++k)
                acc -= lu[ri * 4 + k] * x[k * 4 + c];
            x[ri * 4 + c] = acc / d;
        }
    }
    return x;
}

} // namespace

void
expmPropagator4(const Mat4 &h, double t, Mat4 &out)
{
    Mat4 as = h;
    for (cplx &v : as)
        v *= cplx{0.0, -t};

    const double theta13 = 5.371920351148152;
    const double nrm = oneNorm4(as);
    int s = 0;
    if (nrm > theta13)
        s = int(std::ceil(std::log2(nrm / theta13)));
    if (s > 0)
        for (cplx &v : as)
            v *= cplx{std::ldexp(1.0, -s), 0.0};

    static const double b[] = {
        64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
        1187353796428800.0,  129060195264000.0,   10559470521600.0,
        670442572800.0,      33522128640.0,       1323241920.0,
        40840800.0,          960960.0,            16380.0,
        182.0,               1.0};

    Mat4 id{};
    for (size_t i = 0; i < 4; ++i)
        id[i * 4 + i] = cplx{1.0, 0.0};
    Mat4 a2, a4, a6;
    mul4(as, as, a2);
    mul4(a2, a2, a4);
    mul4(a2, a4, a6);

    // u = as * (a6 * (b13 a6 + b11 a4 + b9 a2)
    //           + b7 a6 + b5 a4 + b3 a2 + b1 I)
    Mat4 p = scaled4(b[13], a6);
    add4(p, scaled4(b[11], a4));
    add4(p, scaled4(b[9], a2));
    Mat4 u_inner;
    mul4(a6, p, u_inner);
    add4(u_inner, scaled4(b[7], a6));
    add4(u_inner, scaled4(b[5], a4));
    add4(u_inner, scaled4(b[3], a2));
    add4(u_inner, scaled4(b[1], id));
    Mat4 u;
    mul4(as, u_inner, u);

    // v = a6 * (b12 a6 + b10 a4 + b8 a2) + b6 a6 + b4 a4 + b2 a2 + b0 I
    Mat4 q = scaled4(b[12], a6);
    add4(q, scaled4(b[10], a4));
    add4(q, scaled4(b[8], a2));
    Mat4 v;
    mul4(a6, q, v);
    add4(v, scaled4(b[6], a6));
    add4(v, scaled4(b[4], a4));
    add4(v, scaled4(b[2], a2));
    add4(v, scaled4(b[0], id));

    Mat4 vmu = v, vpu = v;
    for (size_t i = 0; i < 16; ++i) {
        vmu[i] -= u[i];
        vpu[i] += u[i];
    }
    Mat4 r = luSolve4(vmu, vpu);
    for (int i = 0; i < s; ++i) {
        Mat4 rr;
        mul4(r, r, rr);
        r = rr;
    }
    out = r;
}

CMatrix
expInvolutory(const CMatrix &p, double theta)
{
    CMatrix out = CMatrix::identity(p.rows());
    out *= cplx{std::cos(theta), 0.0};
    CMatrix ps = p;
    ps *= cplx{0.0, -std::sin(theta)};
    out += ps;
    return out;
}

} // namespace qzz::la
