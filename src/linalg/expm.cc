#include "linalg/expm.h"

#include <cmath>

#include "common/error.h"

namespace qzz::la {

CMatrix
luSolve(const CMatrix &a, const CMatrix &b)
{
    require(a.rows() == a.cols(), "luSolve: matrix not square");
    require(a.rows() == b.rows(), "luSolve: rhs shape mismatch");
    const size_t n = a.rows();
    const size_t m = b.cols();
    CMatrix lu = a;
    CMatrix x = b;
    std::vector<size_t> perm(n);
    for (size_t i = 0; i < n; ++i)
        perm[i] = i;

    for (size_t col = 0; col < n; ++col) {
        // Partial pivoting.
        size_t pivot = col;
        double best = std::abs(lu(col, col));
        for (size_t r = col + 1; r < n; ++r) {
            double v = std::abs(lu(r, col));
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        require(best > 0.0, "luSolve: singular matrix");
        if (pivot != col) {
            for (size_t c = 0; c < n; ++c)
                std::swap(lu(col, c), lu(pivot, c));
            for (size_t c = 0; c < m; ++c)
                std::swap(x(col, c), x(pivot, c));
        }
        const cplx d = lu(col, col);
        for (size_t r = col + 1; r < n; ++r) {
            const cplx f = lu(r, col) / d;
            if (f == cplx{0.0, 0.0})
                continue;
            lu(r, col) = f;
            for (size_t c = col + 1; c < n; ++c)
                lu(r, c) -= f * lu(col, c);
            for (size_t c = 0; c < m; ++c)
                x(r, c) -= f * x(col, c);
        }
    }

    // Back substitution.
    for (size_t ri = n; ri-- > 0;) {
        const cplx d = lu(ri, ri);
        for (size_t c = 0; c < m; ++c) {
            cplx acc = x(ri, c);
            for (size_t k = ri + 1; k < n; ++k)
                acc -= lu(ri, k) * x(k, c);
            x(ri, c) = acc / d;
        }
    }
    return x;
}

CMatrix
inverse(const CMatrix &a)
{
    return luSolve(a, CMatrix::identity(a.rows()));
}

namespace {

/** 1-norm (max column sum) used to pick the Pade scaling. */
double
oneNorm(const CMatrix &a)
{
    double best = 0.0;
    for (size_t c = 0; c < a.cols(); ++c) {
        double s = 0.0;
        for (size_t r = 0; r < a.rows(); ++r)
            s += std::abs(a(r, c));
        best = std::max(best, s);
    }
    return best;
}

} // namespace

CMatrix
expm(const CMatrix &a)
{
    require(a.rows() == a.cols(), "expm: matrix not square");
    const size_t n = a.rows();

    // Scaling: bring ||A/2^s|| under the degree-13 Pade radius.
    const double theta13 = 5.371920351148152;
    double nrm = oneNorm(a);
    int s = 0;
    if (nrm > theta13)
        s = int(std::ceil(std::log2(nrm / theta13)));
    CMatrix as = a;
    if (s > 0)
        as *= cplx{std::ldexp(1.0, -s), 0.0};

    static const double b[] = {
        64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
        1187353796428800.0,  129060195264000.0,   10559470521600.0,
        670442572800.0,      33522128640.0,       1323241920.0,
        40840800.0,          960960.0,            16380.0,
        182.0,               1.0};

    const CMatrix id = CMatrix::identity(n);
    const CMatrix a2 = as * as;
    const CMatrix a4 = a2 * a2;
    const CMatrix a6 = a2 * a4;

    CMatrix u = as * (a6 * (b[13] * a6 + b[11] * a4 + b[9] * a2) +
                      b[7] * a6 + b[5] * a4 + b[3] * a2 + b[1] * id);
    CMatrix v = a6 * (b[12] * a6 + b[10] * a4 + b[8] * a2) + b[6] * a6 +
                b[4] * a4 + b[2] * a2 + b[0] * id;

    CMatrix r = luSolve(v - u, v + u);
    for (int i = 0; i < s; ++i)
        r = r * r;
    return r;
}

CMatrix
expmPropagator(const CMatrix &h, double t)
{
    CMatrix a = h;
    a *= cplx{0.0, -t};
    return expm(a);
}

CMatrix
expPauli(double ax, double ay, double az)
{
    const double r = std::sqrt(ax * ax + ay * ay + az * az);
    CMatrix u(2, 2);
    if (r < 1e-300) {
        u(0, 0) = u(1, 1) = 1.0;
        return u;
    }
    const double c = std::cos(r);
    const double s = std::sin(r) / r;
    // exp(-i r (n.sigma)) = cos(r) I - i sin(r) (n.sigma)
    u(0, 0) = cplx{c, -s * az};
    u(0, 1) = cplx{-s * ay, -s * ax};
    u(1, 0) = cplx{s * ay, -s * ax};
    u(1, 1) = cplx{c, s * az};
    return u;
}

CMatrix
expInvolutory(const CMatrix &p, double theta)
{
    CMatrix out = CMatrix::identity(p.rows());
    out *= cplx{std::cos(theta), 0.0};
    CMatrix ps = p;
    ps *= cplx{0.0, -std::sin(theta)};
    out += ps;
    return out;
}

} // namespace qzz::la
