#include "linalg/fidelity.h"

#include <cmath>

#include "common/error.h"

namespace qzz::la {

double
averageGateFidelity(const CMatrix &u, const CMatrix &v)
{
    require(u.rows() == v.rows() && u.cols() == v.cols() &&
                u.rows() == u.cols(),
            "averageGateFidelity: shape mismatch");
    return averageGateFidelityFromM(v.dagger() * u);
}

double
averageGateFidelityFromM(const CMatrix &m)
{
    const double d = double(m.rows());
    const double tr_mmdag =
        m.frobeniusNorm() * m.frobeniusNorm(); // tr(M M^dag)
    const double tr_m2 = std::norm(m.trace());
    return (tr_mmdag + tr_m2) / (d * (d + 1.0));
}

double
processFidelity(const CMatrix &u, const CMatrix &v)
{
    require(u.rows() == v.rows() && u.cols() == v.cols(),
            "processFidelity: shape mismatch");
    const double d = double(u.rows());
    return std::norm((v.dagger() * u).trace()) / (d * d);
}

double
stateFidelity(const CVector &a, const CVector &b)
{
    return std::norm(dot(a, b));
}

} // namespace qzz::la
