/**
 * @file
 * Fidelity measures used by the paper.
 *
 * Average gate fidelity follows Nielsen's formula (ref. [50] of the
 * paper): for a map described by the comparison operator M = V^dag U
 * (target V, actual U, possibly non-unitary if U was projected onto a
 * computational subspace, e.g. in the leakage study):
 *
 *   F_avg = ( tr(M M^dag) + |tr M|^2 ) / ( d (d + 1) )
 *
 * which reduces to (d + |tr(V^dag U)|^2) / (d(d+1)) for unitary U.
 */

#ifndef QZZ_LINALG_FIDELITY_H
#define QZZ_LINALG_FIDELITY_H

#include "linalg/matrix.h"

namespace qzz::la {

/**
 * Average gate fidelity between an actual evolution @p u and target
 * @p v (both d x d; @p u may be a projected, non-unitary block).
 */
double averageGateFidelity(const CMatrix &u, const CMatrix &v);

/**
 * Average gate fidelity from a precomputed comparison operator
 * M = V^dag U.
 */
double averageGateFidelityFromM(const CMatrix &m);

/** Process (entanglement) fidelity |tr(V^dag U)|^2 / d^2. */
double processFidelity(const CMatrix &u, const CMatrix &v);

/** State fidelity |<a|b>|^2 for pure states. */
double stateFidelity(const CVector &a, const CVector &b);

} // namespace qzz::la

#endif // QZZ_LINALG_FIDELITY_H
