/**
 * @file
 * Maximum-weight perfect matching on small complete graphs.
 *
 * The paper matches the odd-degree vertices of a dual graph (an even
 * set, typically < 10 vertices on near-term planar topologies).  We
 * use an exact O(2^n * n) bitmask dynamic program for n <= kExactLimit
 * and a greedy + 2-opt refinement heuristic beyond that (reported via
 * MatchingResult::exact so callers can surface the fallback).
 */

#ifndef QZZ_GRAPH_MATCHING_H
#define QZZ_GRAPH_MATCHING_H

#include <functional>
#include <utility>
#include <vector>

namespace qzz::graph {

/** Result of a perfect matching computation. */
struct MatchingResult
{
    /** Matched index pairs (i < j), covering all vertices. */
    std::vector<std::pair<int, int>> pairs;
    /** Total weight of the matching. */
    double weight = 0.0;
    /** True when produced by the exact DP. */
    bool exact = true;
};

/** Largest n handled exactly by the bitmask DP. */
inline constexpr int kExactMatchingLimit = 20;

/**
 * Maximum-weight perfect matching of the complete graph K_n.
 *
 * @param n      vertex count; must be even (n = 0 yields the empty
 *               matching).
 * @param weight symmetric weight callback w(i, j).
 */
MatchingResult
maxWeightPerfectMatching(int n,
                         const std::function<double(int, int)> &weight);

} // namespace qzz::graph

#endif // QZZ_GRAPH_MATCHING_H
