#include "graph/planar.h"

#include <algorithm>

#include "common/error.h"

namespace qzz::graph {

PlanarEmbedding::PlanarEmbedding(Graph g,
                                 std::vector<std::vector<int>> rotation)
    : graph_(std::move(g)), rotation_(std::move(rotation))
{
    require(int(rotation_.size()) == graph_.numVertices(),
            "PlanarEmbedding: rotation size mismatch");
    for (int v = 0; v < graph_.numVertices(); ++v) {
        require(int(rotation_[v].size()) == graph_.degree(v),
                "PlanarEmbedding: rotation degree mismatch");
        // Each incident edge must appear exactly once.
        std::vector<int> sorted = rotation_[v];
        std::sort(sorted.begin(), sorted.end());
        std::vector<int> incident;
        for (const auto &a : graph_.neighbors(v))
            incident.push_back(a.edge);
        std::sort(incident.begin(), incident.end());
        require(sorted == incident,
                "PlanarEmbedding: rotation does not list incident edges");
    }
    for (const Edge &e : graph_.edges())
        require(!e.isSelfLoop(),
                "PlanarEmbedding: primal self-loops unsupported");
    traceFaces();
}

void
PlanarEmbedding::traceFaces()
{
    const int m = graph_.numEdges();
    side_.assign(size_t(2 * m), -1);

    // Directed edge d = 2*e + dir, dir 0: u->v, dir 1: v->u.
    auto head = [&](int d) {
        const Edge &e = graph_.edge(d / 2);
        return (d % 2 == 0) ? e.v : e.u;
    };

    // Position of each edge in each vertex's rotation.
    std::vector<std::vector<int>> pos_in_rot(rotation_.size());
    for (size_t v = 0; v < rotation_.size(); ++v) {
        pos_in_rot[v].assign(size_t(m), -1);
        for (size_t i = 0; i < rotation_[v].size(); ++i)
            pos_in_rot[v][rotation_[v][i]] = int(i);
    }

    // next(d): arrive at w = head(d); leave through the edge after
    // reverse(d) in w's rotation.
    auto next = [&](int d) {
        const int w = head(d);
        const int e = d / 2;
        const int p = pos_in_rot[w][e];
        const int deg = int(rotation_[w].size());
        const int ne = rotation_[w][(p + 1) % deg];
        // Direct ne out of w.
        const Edge &edge = graph_.edge(ne);
        return (edge.u == w) ? 2 * ne : 2 * ne + 1;
    };

    for (int d = 0; d < 2 * m; ++d) {
        if (side_[d] != -1)
            continue;
        const int face = int(faces_.size());
        faces_.emplace_back();
        int cur = d;
        do {
            ensure(side_[cur] == -1, "face tracing revisited an edge");
            side_[cur] = face;
            faces_.back().push_back(cur / 2);
            cur = next(cur);
        } while (cur != d);
    }
}

std::pair<int, int>
PlanarEmbedding::facesOfEdge(int e) const
{
    return {side_[2 * e], side_[2 * e + 1]};
}

int
PlanarEmbedding::longestFace() const
{
    int best = 0;
    for (int f = 1; f < numFaces(); ++f)
        if (faces_[f].size() > faces_[best].size())
            best = f;
    return best;
}

DualGraph
buildDual(const PlanarEmbedding &emb)
{
    DualGraph dual;
    dual.numFaces = emb.numFaces();
    dual.g = Graph(emb.numFaces());
    for (int e = 0; e < emb.graph().numEdges(); ++e) {
        auto [f1, f2] = emb.facesOfEdge(e);
        int id = dual.g.addEdge(f1, f2);
        ensure(id == e, "dual edge ids must mirror primal edge ids");
    }
    return dual;
}

} // namespace qzz::graph
