#include "graph/shortest_paths.h"

#include <algorithm>
#include <queue>
#include <set>

#include "common/error.h"

namespace qzz::graph {

std::optional<Path>
shortestPath(const Graph &g, int src, int dst,
             const std::vector<char> &blocked_edges,
             const std::vector<char> &blocked_verts)
{
    require(src >= 0 && src < g.numVertices() && dst >= 0 &&
                dst < g.numVertices(),
            "shortestPath: endpoint out of range");
    auto edge_ok = [&](int e) {
        return blocked_edges.empty() || !blocked_edges[e];
    };
    auto vert_ok = [&](int v) {
        return blocked_verts.empty() || !blocked_verts[v];
    };
    if (!vert_ok(src) || !vert_ok(dst))
        return std::nullopt;

    // BFS storing the (vertex, edge) predecessor.  Prefer smaller edge
    // ids among equal-length options for determinism.
    std::vector<int> pred_v(size_t(g.numVertices()), -1);
    std::vector<int> pred_e(size_t(g.numVertices()), -1);
    std::vector<int> dist(size_t(g.numVertices()), -1);
    dist[src] = 0;
    std::queue<int> q;
    q.push(src);
    while (!q.empty()) {
        int v = q.front();
        q.pop();
        if (v == dst)
            break;
        // Deterministic neighbor order: sort by (to, edge).
        std::vector<Adjacent> nb(g.neighbors(v).begin(),
                                 g.neighbors(v).end());
        std::sort(nb.begin(), nb.end(), [](const auto &a, const auto &b) {
            return a.edge < b.edge;
        });
        for (const auto &a : nb) {
            if (!edge_ok(a.edge) || !vert_ok(a.to) || dist[a.to] != -1)
                continue;
            if (a.to == v)
                continue; // self-loop never helps a shortest path
            dist[a.to] = dist[v] + 1;
            pred_v[a.to] = v;
            pred_e[a.to] = a.edge;
            q.push(a.to);
        }
    }
    if (dist[dst] == -1)
        return std::nullopt;

    Path p;
    int cur = dst;
    while (cur != src) {
        p.vertices.push_back(cur);
        p.edges.push_back(pred_e[cur]);
        cur = pred_v[cur];
    }
    p.vertices.push_back(src);
    std::reverse(p.vertices.begin(), p.vertices.end());
    std::reverse(p.edges.begin(), p.edges.end());
    return p;
}

namespace {

/** Total order on paths: by length, then lexicographic edge ids. */
bool
pathLess(const Path &a, const Path &b)
{
    if (a.length() != b.length())
        return a.length() < b.length();
    return a.edges < b.edges;
}

bool
pathEqual(const Path &a, const Path &b)
{
    return a.edges == b.edges && a.vertices == b.vertices;
}

} // namespace

std::vector<Path>
yenKShortestPaths(const Graph &g, int src, int dst, int k,
                  const std::vector<char> &blocked_edges)
{
    require(k >= 1, "yenKShortestPaths: k must be positive");
    std::vector<Path> result;

    if (src == dst) {
        // The only loopless path is the empty one.
        Path p;
        p.vertices.push_back(src);
        result.push_back(std::move(p));
        return result;
    }

    auto base_blocked = blocked_edges;
    if (base_blocked.empty())
        base_blocked.assign(size_t(g.numEdges()), 0);

    auto first = shortestPath(g, src, dst, base_blocked);
    if (!first)
        return result;
    result.push_back(std::move(*first));

    std::vector<Path> candidates;
    while (int(result.size()) < k) {
        const Path &prev = result.back();
        // Spur from every prefix of the previous path.
        for (int i = 0; i < prev.length(); ++i) {
            const int spur_node = prev.vertices[i];
            std::vector<char> eb = base_blocked;
            std::vector<char> vb(size_t(g.numVertices()), 0);

            // Block edges that would recreate an already-found path
            // sharing this root.
            for (const Path &found : result) {
                if (found.length() > i &&
                    std::equal(found.edges.begin(),
                               found.edges.begin() + i,
                               prev.edges.begin())) {
                    eb[found.edges[i]] = 1;
                }
            }
            // Block the root path's interior vertices.
            for (int j = 0; j < i; ++j)
                vb[prev.vertices[j]] = 1;

            auto spur = shortestPath(g, spur_node, dst, eb, vb);
            if (!spur)
                continue;

            Path total;
            total.vertices.assign(prev.vertices.begin(),
                                  prev.vertices.begin() + i);
            total.edges.assign(prev.edges.begin(), prev.edges.begin() + i);
            total.vertices.insert(total.vertices.end(),
                                  spur->vertices.begin(),
                                  spur->vertices.end());
            total.edges.insert(total.edges.end(), spur->edges.begin(),
                               spur->edges.end());

            bool dup = false;
            for (const Path &c : candidates)
                if (pathEqual(c, total)) {
                    dup = true;
                    break;
                }
            for (const Path &r : result)
                if (pathEqual(r, total)) {
                    dup = true;
                    break;
                }
            if (!dup)
                candidates.push_back(std::move(total));
        }
        if (candidates.empty())
            break;
        auto best = std::min_element(candidates.begin(), candidates.end(),
                                     pathLess);
        result.push_back(*best);
        candidates.erase(best);
    }
    return result;
}

} // namespace qzz::graph
