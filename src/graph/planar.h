/**
 * @file
 * Planar embeddings and dual graphs.
 *
 * A combinatorial (rotation-system) embedding lists, for every vertex,
 * the cyclic order of its incident edges.  Faces are the orbits of the
 * next-directed-edge permutation, and the dual graph has one vertex
 * per face and one edge e* per primal edge e, joining the faces on the
 * two sides of e.  Theorem 3.1 of the paper (cut <-> odd-vertex
 * pairing duality) is exercised through this correspondence.
 */

#ifndef QZZ_GRAPH_PLANAR_H
#define QZZ_GRAPH_PLANAR_H

#include <vector>

#include "graph/graph.h"

namespace qzz::graph {

/**
 * Rotation-system embedding of a connected planar graph.
 *
 * rotation[v] lists the incident edge ids of v in (consistent) cyclic
 * order.  Self-loops are not supported in the primal graph.
 */
class PlanarEmbedding
{
  public:
    /**
     * @param g        the embedded graph (must stay alive; copied).
     * @param rotation cyclic edge order per vertex; must contain each
     *                 incident edge exactly once.
     */
    PlanarEmbedding(Graph g, std::vector<std::vector<int>> rotation);

    const Graph &graph() const { return graph_; }

    /** Number of faces (Euler: n - m + f = 2 for connected graphs). */
    int numFaces() const { return int(faces_.size()); }

    /** Edge ids on the boundary walk of face @p f (with repetitions
     *  for bridges, which border the same face twice). */
    const std::vector<int> &faceEdges(int f) const { return faces_[f]; }

    /** The two faces incident to edge @p e (equal for bridges). */
    std::pair<int, int> facesOfEdge(int e) const;

    /** Face with the longest boundary walk (outer face for the
     *  factory-built topologies). */
    int longestFace() const;

  private:
    Graph graph_;
    std::vector<std::vector<int>> rotation_;
    /** faces_[f] = boundary edge walk of face f. */
    std::vector<std::vector<int>> faces_;
    /** face on each side of a directed edge: side_[2*e + dir]. */
    std::vector<int> side_;

    void traceFaces();
};

/**
 * The dual graph of a planar embedding, with the primal<->dual edge
 * correspondence.  Dual edge ids equal primal edge ids by
 * construction (dual edge k is the dual of primal edge k).
 */
struct DualGraph
{
    /** The dual multigraph (self-loops for primal bridges). */
    Graph g;
    /** dual vertex (face) containing each primal face walk. */
    int numFaces = 0;
};

/** Build the dual graph of an embedding. */
DualGraph buildDual(const PlanarEmbedding &emb);

} // namespace qzz::graph

#endif // QZZ_GRAPH_PLANAR_H
