/**
 * @file
 * Shortest paths and Yen's top-k loopless shortest paths.
 *
 * Operates on multigraphs with unit edge lengths and supports blocking
 * individual edges and vertices, which Yen's spur construction and the
 * "Delete Edges" step of the paper's Algorithm 1 both need.
 */

#ifndef QZZ_GRAPH_SHORTEST_PATHS_H
#define QZZ_GRAPH_SHORTEST_PATHS_H

#include <optional>
#include <vector>

#include "graph/graph.h"

namespace qzz::graph {

/** A path as parallel vertex/edge id sequences. */
struct Path
{
    /** Visited vertices, source first. */
    std::vector<int> vertices;
    /** Edge ids between consecutive vertices. */
    std::vector<int> edges;

    int length() const { return int(edges.size()); }
    bool empty() const { return vertices.empty(); }
};

/**
 * BFS shortest path from @p src to @p dst avoiding blocked elements.
 *
 * @param g              the graph.
 * @param src,dst        endpoints.
 * @param blocked_edges  per-edge-id flags (may be empty = none).
 * @param blocked_verts  per-vertex flags (may be empty = none);
 *                       blocking src or dst makes the search fail.
 * @return the path, or nullopt when disconnected.
 */
std::optional<Path>
shortestPath(const Graph &g, int src, int dst,
             const std::vector<char> &blocked_edges = {},
             const std::vector<char> &blocked_verts = {});

/**
 * Yen's algorithm: up to @p k shortest loopless paths from @p src to
 * @p dst, sorted by length (ties broken deterministically).
 *
 * @param blocked_edges optional global edge blocks applied throughout.
 */
std::vector<Path>
yenKShortestPaths(const Graph &g, int src, int dst, int k,
                  const std::vector<char> &blocked_edges = {});

} // namespace qzz::graph

#endif // QZZ_GRAPH_SHORTEST_PATHS_H
