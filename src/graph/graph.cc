#include "graph/graph.h"

#include <functional>
#include <queue>

#include "common/error.h"

namespace qzz::graph {

Graph::Graph(int n)
{
    require(n >= 0, "Graph: negative vertex count");
    adj_.resize(size_t(n));
}

int
Graph::addEdge(int u, int v)
{
    require(u >= 0 && u < numVertices() && v >= 0 && v < numVertices(),
            "Graph::addEdge: vertex out of range");
    const int id = int(edges_.size());
    edges_.push_back(Edge{u, v, id});
    adj_[u].push_back(Adjacent{v, id});
    adj_[v].push_back(Adjacent{u, id}); // self-loops listed twice
    return id;
}

std::vector<int>
Graph::oddDegreeVertices() const
{
    std::vector<int> odd;
    for (int v = 0; v < numVertices(); ++v)
        if (degree(v) % 2 == 1)
            odd.push_back(v);
    return odd;
}

int
Graph::findEdge(int u, int v) const
{
    for (const auto &a : adj_[u])
        if (a.to == v)
            return a.edge;
    return -1;
}

std::vector<int>
Graph::componentsOfEdgeSubset(const std::vector<char> &edge_in_subset) const
{
    require(int(edge_in_subset.size()) == numEdges(),
            "componentsOfEdgeSubset: flag size mismatch");
    std::vector<int> comp(size_t(numVertices()), -1);
    int next = 0;
    for (int s = 0; s < numVertices(); ++s) {
        if (comp[s] != -1)
            continue;
        comp[s] = next;
        std::queue<int> q;
        q.push(s);
        while (!q.empty()) {
            int v = q.front();
            q.pop();
            for (const auto &a : adj_[v]) {
                if (!edge_in_subset[a.edge] || comp[a.to] != -1)
                    continue;
                comp[a.to] = next;
                q.push(a.to);
            }
        }
        ++next;
    }
    return comp;
}

std::vector<int>
Graph::components() const
{
    return componentsOfEdgeSubset(std::vector<char>(numEdges(), 1));
}

std::vector<int>
Graph::componentSizes(const std::vector<int> &comp)
{
    int n_comp = 0;
    for (int c : comp)
        n_comp = std::max(n_comp, c + 1);
    std::vector<int> sizes(size_t(n_comp), 0);
    for (int c : comp)
        ++sizes[c];
    return sizes;
}

std::optional<std::vector<int>>
Graph::twoColorAfterContraction(const std::vector<char> &contracted) const
{
    require(int(contracted.size()) == numEdges(),
            "twoColorAfterContraction: flag size mismatch");

    // Union-find to merge endpoints of contracted edges.
    std::vector<int> parent(static_cast<size_t>(numVertices()), 0);
    for (int v = 0; v < numVertices(); ++v)
        parent[v] = v;
    std::function<int(int)> find = [&](int v) {
        while (parent[v] != v) {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        return v;
    };
    for (const Edge &e : edges_)
        if (contracted[e.id])
            parent[find(e.u)] = find(e.v);

    // BFS 2-coloring of the quotient graph over the remaining edges.
    std::vector<int> color(size_t(numVertices()), -1);
    for (int s = 0; s < numVertices(); ++s) {
        int rs = find(s);
        if (color[rs] != -1)
            continue;
        color[rs] = 0;
        std::queue<int> q;
        q.push(rs);
        while (!q.empty()) {
            int rv = q.front();
            q.pop();
            // Scan all original vertices in this quotient class.
            for (int v = 0; v < numVertices(); ++v) {
                if (find(v) != rv)
                    continue;
                for (const auto &a : adj_[v]) {
                    if (contracted[a.edge])
                        continue;
                    int rw = find(a.to);
                    if (rw == rv)
                        return std::nullopt; // odd cycle (self edge)
                    if (color[rw] == -1) {
                        color[rw] = 1 - color[rv];
                        q.push(rw);
                    } else if (color[rw] == color[rv]) {
                        return std::nullopt;
                    }
                }
            }
        }
    }

    std::vector<int> out(static_cast<size_t>(numVertices()), 0);
    for (int v = 0; v < numVertices(); ++v)
        out[v] = color[find(v)];
    return out;
}

std::optional<std::vector<int>>
Graph::twoColor() const
{
    return twoColorAfterContraction(std::vector<char>(numEdges(), 0));
}

std::vector<int>
Graph::bfsDistances(int src) const
{
    require(src >= 0 && src < numVertices(), "bfsDistances: bad source");
    std::vector<int> dist(size_t(numVertices()), -1);
    dist[src] = 0;
    std::queue<int> q;
    q.push(src);
    while (!q.empty()) {
        int v = q.front();
        q.pop();
        for (const auto &a : adj_[v]) {
            if (dist[a.to] != -1)
                continue;
            dist[a.to] = dist[v] + 1;
            q.push(a.to);
        }
    }
    return dist;
}

std::vector<std::vector<int>>
Graph::allPairsDistances() const
{
    std::vector<std::vector<int>> d;
    d.reserve(size_t(numVertices()));
    for (int v = 0; v < numVertices(); ++v)
        d.push_back(bfsDistances(v));
    return d;
}

} // namespace qzz::graph
