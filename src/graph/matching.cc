#include "graph/matching.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace qzz::graph {

namespace {

MatchingResult
exactDp(int n, const std::function<double(int, int)> &weight)
{
    // dp[mask] = best perfect matching of exactly the vertices in mask.
    // Transitions always match the lowest set bit of mask, so each
    // even-popcount mask is considered once and reconstruction just
    // peels lowest bits.
    const size_t full = size_t(1) << n;
    const double neg_inf = -std::numeric_limits<double>::infinity();
    std::vector<double> dp(full, neg_inf);
    std::vector<int> choice(full, -1); // partner of the lowest set bit
    dp[0] = 0.0;

    for (size_t mask = 1; mask < full; ++mask) {
        if (__builtin_popcountll(mask) % 2 != 0)
            continue;
        const int i = __builtin_ctzll(mask);
        for (int j = i + 1; j < n; ++j) {
            if (!(mask & (size_t(1) << j)))
                continue;
            const size_t rest =
                mask & ~(size_t(1) << i) & ~(size_t(1) << j);
            if (dp[rest] == neg_inf)
                continue;
            const double w = dp[rest] + weight(i, j);
            if (w > dp[mask]) {
                dp[mask] = w;
                choice[mask] = j;
            }
        }
    }

    MatchingResult res;
    res.weight = dp[full - 1];
    res.exact = true;
    size_t mask = full - 1;
    while (mask) {
        const int i = __builtin_ctzll(mask);
        const int j = choice[mask];
        ensure(j >= 0, "matching DP reconstruction failed");
        res.pairs.emplace_back(i, j);
        mask &= ~(size_t(1) << i);
        mask &= ~(size_t(1) << j);
    }
    std::sort(res.pairs.begin(), res.pairs.end());
    return res;
}

MatchingResult
greedyWithTwoOpt(int n, const std::function<double(int, int)> &weight)
{
    // Greedy: repeatedly take the heaviest available pair.
    struct Cand
    {
        double w;
        int i, j;
    };
    std::vector<Cand> cands;
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            cands.push_back({weight(i, j), i, j});
    std::sort(cands.begin(), cands.end(), [](const Cand &a, const Cand &b) {
        if (a.w != b.w)
            return a.w > b.w;
        return std::tie(a.i, a.j) < std::tie(b.i, b.j);
    });

    std::vector<int> partner(size_t(n), -1);
    for (const Cand &c : cands) {
        if (partner[c.i] == -1 && partner[c.j] == -1) {
            partner[c.i] = c.j;
            partner[c.j] = c.i;
        }
    }

    // 2-opt: try re-pairing every two pairs, until no improvement.
    bool improved = true;
    while (improved) {
        improved = false;
        for (int a = 0; a < n; ++a) {
            int b = partner[a];
            if (b < a)
                continue;
            for (int c = a + 1; c < n; ++c) {
                int d = partner[c];
                if (d < c || c == b)
                    continue;
                const double cur = weight(a, b) + weight(c, d);
                const double alt1 = weight(a, c) + weight(b, d);
                const double alt2 = weight(a, d) + weight(b, c);
                if (alt1 > cur + 1e-12 && alt1 >= alt2) {
                    partner[a] = c;
                    partner[c] = a;
                    partner[b] = d;
                    partner[d] = b;
                    improved = true;
                } else if (alt2 > cur + 1e-12) {
                    partner[a] = d;
                    partner[d] = a;
                    partner[b] = c;
                    partner[c] = b;
                    improved = true;
                }
            }
        }
    }

    MatchingResult res;
    res.exact = false;
    for (int v = 0; v < n; ++v) {
        if (partner[v] > v) {
            res.pairs.emplace_back(v, partner[v]);
            res.weight += weight(v, partner[v]);
        }
    }
    return res;
}

} // namespace

MatchingResult
maxWeightPerfectMatching(int n,
                         const std::function<double(int, int)> &weight)
{
    require(n >= 0 && n % 2 == 0,
            "maxWeightPerfectMatching: vertex count must be even");
    if (n == 0)
        return {};
    if (n <= kExactMatchingLimit)
        return exactDp(n, weight);
    return greedyWithTwoOpt(n, weight);
}

} // namespace qzz::graph
