/**
 * @file
 * Undirected multigraph with stable edge ids.
 *
 * Used both for device topologies (simple planar graphs) and for their
 * duals (which may contain self-loops and parallel edges).  Vertices
 * are dense integers [0, n).  Every edge has an id equal to its
 * insertion index; the planar-duality code relies on these ids to map
 * primal edges to dual edges and back.
 */

#ifndef QZZ_GRAPH_GRAPH_H
#define QZZ_GRAPH_GRAPH_H

#include <optional>
#include <vector>

namespace qzz::graph {

/** An undirected edge (u, v) with its id. */
struct Edge
{
    int u = -1;
    int v = -1;
    int id = -1;

    /** The endpoint opposite @p w. */
    int
    other(int w) const
    {
        return w == u ? v : u;
    }

    bool isSelfLoop() const { return u == v; }
};

/** Adjacency entry: neighboring vertex reached through an edge. */
struct Adjacent
{
    int to = -1;
    int edge = -1;
};

/** Undirected multigraph. */
class Graph
{
  public:
    Graph() = default;

    /** Create a graph with @p n isolated vertices. */
    explicit Graph(int n);

    /** Add an edge; returns its id.  Self-loops are allowed. */
    int addEdge(int u, int v);

    int numVertices() const { return int(adj_.size()); }
    int numEdges() const { return int(edges_.size()); }

    const Edge &edge(int id) const { return edges_[id]; }
    const std::vector<Edge> &edges() const { return edges_; }

    /** Incident edges of @p v (self-loops appear twice). */
    const std::vector<Adjacent> &neighbors(int v) const { return adj_[v]; }

    /** Degree of @p v; self-loops count twice. */
    int degree(int v) const { return int(adj_[v].size()); }

    /** Vertices with odd degree. */
    std::vector<int> oddDegreeVertices() const;

    /** Id of some edge joining u and v, or -1. */
    int findEdge(int u, int v) const;

    /**
     * Connected components over a subset of edges.
     *
     * @param edge_in_subset  per-edge-id inclusion flags.
     * @return component id per vertex (isolated vertices get their own
     *         component).
     */
    std::vector<int>
    componentsOfEdgeSubset(const std::vector<char> &edge_in_subset) const;

    /** Connected components over all edges. */
    std::vector<int> components() const;

    /** Sizes indexed by component id, given per-vertex component ids. */
    static std::vector<int> componentSizes(const std::vector<int> &comp);

    /**
     * Attempt a proper 2-coloring after contracting the given edges.
     *
     * Contracted edges merge their endpoints; the remaining edges must
     * then form a bipartite quotient graph.  This is the "cut inducing"
     * primitive of the paper's Algorithm 1.
     *
     * @param contracted per-edge-id flags of edges to contract.
     * @return color (0/1) per original vertex, or nullopt if the
     *         quotient is not 2-colorable (i.e. the edge set was not a
     *         valid remaining-set).
     */
    std::optional<std::vector<int>>
    twoColorAfterContraction(const std::vector<char> &contracted) const;

    /** 2-coloring of the whole graph if bipartite. */
    std::optional<std::vector<int>> twoColor() const;

    /** BFS hop distances from @p src (-1 where unreachable). */
    std::vector<int> bfsDistances(int src) const;

    /** All-pairs BFS distances; [u][v] = hops, -1 if unreachable. */
    std::vector<std::vector<int>> allPairsDistances() const;

  private:
    std::vector<Edge> edges_;
    std::vector<std::vector<Adjacent>> adj_;
};

} // namespace qzz::graph

#endif // QZZ_GRAPH_GRAPH_H
