/**
 * @file
 * Factory topologies for near-term devices.
 *
 * Each topology carries straight-line coordinates, from which a
 * consistent rotation-system embedding is derived (incident edges
 * sorted by angle).  Grids and lines are the devices the paper
 * evaluates on; the triangulated grid provides non-bipartite test
 * cases with odd dual-degree faces (the interesting regime for the
 * odd-vertex pairing machinery).
 */

#ifndef QZZ_GRAPH_TOPOLOGIES_H
#define QZZ_GRAPH_TOPOLOGIES_H

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/planar.h"

namespace qzz::graph {

/** A device topology: graph + straight-line layout. */
struct Topology
{
    std::string name;
    Graph g;
    /** (x, y) position of each vertex. */
    std::vector<std::pair<double, double>> coords;

    /** Build the rotation-system embedding from the layout. */
    PlanarEmbedding embedding() const;
};

/**
 * Derive a planar embedding from straight-line coordinates by sorting
 * each vertex's incident edges counterclockwise by angle.
 */
PlanarEmbedding makeEmbeddingFromCoords(
    const Graph &g, const std::vector<std::pair<double, double>> &coords);

/** rows x cols grid; vertex (r, c) has index r * cols + c. */
Topology gridTopology(int rows, int cols);

/** 1 x n line. */
Topology lineTopology(int n);

/** n-cycle laid out as a regular polygon (n >= 3). */
Topology ringTopology(int n);

/**
 * Grid with one (r,c)-(r+1,c+1) diagonal per unit square: a planar,
 * non-bipartite topology whose faces are triangles.
 */
Topology triangulatedGridTopology(int rows, int cols);

/**
 * IBM-style heavy-hex lattice: a honeycomb of @p hex_rows x
 * @p hex_cols hexagonal cells whose edges are subdivided by bridge
 * qubits.  Subdivision makes every heavy-hex device bipartite, so
 * complete ZZ suppression (Sec. 5.1 of the paper) always exists on
 * them.
 */
Topology heavyHexTopology(int hex_rows, int hex_cols);

/** Custom topology from an explicit edge and coordinate list. */
Topology customTopology(std::string name, int n,
                        const std::vector<std::pair<int, int>> &edges,
                        std::vector<std::pair<double, double>> coords);

} // namespace qzz::graph

#endif // QZZ_GRAPH_TOPOLOGIES_H
