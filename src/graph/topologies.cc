#include "graph/topologies.h"

#include <algorithm>
#include <map>
#include <set>
#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace qzz::graph {

PlanarEmbedding
Topology::embedding() const
{
    return makeEmbeddingFromCoords(g, coords);
}

PlanarEmbedding
makeEmbeddingFromCoords(
    const Graph &g, const std::vector<std::pair<double, double>> &coords)
{
    require(int(coords.size()) == g.numVertices(),
            "makeEmbeddingFromCoords: coordinate count mismatch");
    std::vector<std::vector<int>> rotation(
        static_cast<size_t>(g.numVertices()));
    for (int v = 0; v < g.numVertices(); ++v) {
        struct Item
        {
            double angle;
            int edge;
        };
        std::vector<Item> items;
        for (const auto &a : g.neighbors(v)) {
            const double dx = coords[a.to].first - coords[v].first;
            const double dy = coords[a.to].second - coords[v].second;
            items.push_back({std::atan2(dy, dx), a.edge});
        }
        std::sort(items.begin(), items.end(),
                  [](const Item &a, const Item &b) {
                      if (a.angle != b.angle)
                          return a.angle < b.angle;
                      return a.edge < b.edge;
                  });
        for (const Item &it : items)
            rotation[v].push_back(it.edge);
    }
    return PlanarEmbedding(g, std::move(rotation));
}

Topology
gridTopology(int rows, int cols)
{
    require(rows >= 1 && cols >= 1, "gridTopology: empty grid");
    Topology t;
    t.name = "grid-" + std::to_string(rows) + "x" + std::to_string(cols);
    t.g = Graph(rows * cols);
    auto id = [&](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                t.g.addEdge(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                t.g.addEdge(id(r, c), id(r + 1, c));
        }
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            t.coords.emplace_back(double(c), double(-r));
    return t;
}

Topology
lineTopology(int n)
{
    Topology t = gridTopology(1, n);
    t.name = "line-" + std::to_string(n);
    return t;
}

Topology
ringTopology(int n)
{
    require(n >= 3, "ringTopology: need at least 3 vertices");
    Topology t;
    t.name = "ring-" + std::to_string(n);
    t.g = Graph(n);
    for (int v = 0; v < n; ++v)
        t.g.addEdge(v, (v + 1) % n);
    for (int v = 0; v < n; ++v) {
        const double a = 2.0 * M_PI * double(v) / double(n);
        t.coords.emplace_back(std::cos(a), std::sin(a));
    }
    return t;
}

Topology
triangulatedGridTopology(int rows, int cols)
{
    require(rows >= 2 && cols >= 2, "triangulatedGridTopology: too small");
    Topology t = gridTopology(rows, cols);
    t.name = "trigrid-" + std::to_string(rows) + "x" + std::to_string(cols);
    auto id = [&](int r, int c) { return r * cols + c; };
    for (int r = 0; r + 1 < rows; ++r)
        for (int c = 0; c + 1 < cols; ++c)
            t.g.addEdge(id(r, c), id(r + 1, c + 1));
    return t;
}

Topology
heavyHexTopology(int hex_rows, int hex_cols)
{
    require(hex_rows >= 1 && hex_cols >= 1,
            "heavyHexTopology: need at least one cell");
    Topology t;
    t.name = "heavyhex-" + std::to_string(hex_rows) + "x" +
             std::to_string(hex_cols);

    // Honeycomb corners first, then one bridge qubit per honeycomb
    // edge.  Corners are generated per hexagon and deduplicated by
    // rounded coordinates.
    struct Key
    {
        long long x, y;
        bool
        operator<(const Key &o) const
        {
            return std::tie(x, y) < std::tie(o.x, o.y);
        }
    };
    auto key_of = [](double x, double y) {
        return Key{llround(x * 1000.0), llround(y * 1000.0)};
    };

    std::map<Key, int> corner_id;
    std::vector<std::pair<double, double>> coords;
    auto corner = [&](double x, double y) {
        const Key k = key_of(x, y);
        auto it = corner_id.find(k);
        if (it != corner_id.end())
            return it->second;
        const int id = int(coords.size());
        corner_id.emplace(k, id);
        coords.emplace_back(x, y);
        return id;
    };

    std::set<std::pair<int, int>> hex_edges;
    const double s = 1.0; // hexagon side
    const double w = std::sqrt(3.0) * s;
    for (int r = 0; r < hex_rows; ++r) {
        for (int c = 0; c < hex_cols; ++c) {
            // Pointy-top hexagon centers on an offset lattice.
            const double cx =
                double(c) * w + (r % 2 ? w / 2.0 : 0.0);
            const double cy = double(r) * 1.5 * s;
            int ids[6];
            for (int i = 0; i < 6; ++i) {
                const double a = kPi / 6.0 + kPi / 3.0 * double(i);
                ids[i] =
                    corner(cx + s * std::cos(a), cy + s * std::sin(a));
            }
            for (int i = 0; i < 6; ++i) {
                const int u = ids[i], v = ids[(i + 1) % 6];
                hex_edges.insert({std::min(u, v), std::max(u, v)});
            }
        }
    }

    // Subdivide every honeycomb edge with a bridge qubit.
    const int corners = int(coords.size());
    std::vector<std::pair<int, int>> final_edges;
    for (const auto &[u, v] : hex_edges) {
        const int mid = int(coords.size());
        coords.emplace_back(
            (coords[u].first + coords[v].first) / 2.0,
            (coords[u].second + coords[v].second) / 2.0);
        final_edges.emplace_back(u, mid);
        final_edges.emplace_back(mid, v);
    }
    (void)corners;

    t.g = Graph(int(coords.size()));
    for (const auto &[u, v] : final_edges)
        t.g.addEdge(u, v);
    t.coords = std::move(coords);
    return t;
}

Topology
customTopology(std::string name, int n,
               const std::vector<std::pair<int, int>> &edges,
               std::vector<std::pair<double, double>> coords)
{
    Topology t;
    t.name = std::move(name);
    t.g = Graph(n);
    for (const auto &[u, v] : edges)
        t.g.addEdge(u, v);
    t.coords = std::move(coords);
    require(int(t.coords.size()) == n,
            "customTopology: coordinate count mismatch");
    return t;
}

} // namespace qzz::graph
