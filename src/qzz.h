/**
 * @file
 * Umbrella header: the full qzz public API.
 *
 * Fine-grained headers remain available (e.g. "core/suppression.h")
 * for faster builds; this header is a convenience for examples and
 * downstream applications.
 *
 * @section migration Migration note (stage-based compiler API)
 *
 * Compilation is now built around an explicit pass pipeline
 * (core/compiler.h).  The canonical entry point is:
 *
 * @code
 *   core::Compiler compiler = core::CompilerBuilder(device)
 *                                 .pulseMethod(core::PulseMethod::Pert)
 *                                 .schedPolicy(core::SchedPolicy::Zzx)
 *                                 .build();
 *   core::CompileResult result = compiler.compile(circuit);   // or
 *   core::BatchResult batch = compiler.compileBatch(circuits);
 * @endcode
 *
 * Differences from the legacy free functions:
 *  - errors arrive on result.status (a structured channel) instead of
 *    thrown UserError/InternalError;
 *  - result.diagnostics carries per-stage wall times and NC/NQ stats;
 *  - schedulers (core::Scheduler) and pulse sources
 *    (core::PulseProvider) are injectable, and CompiledProgram owns
 *    its pulse library via shared_ptr rather than borrowing a
 *    process-global pointer;
 *  - compileBatch() compiles many circuits across a thread pool while
 *    sharing routing tables and pulse libraries.
 *
 * core::compileForDevice() / core::compileSegmentsForDevice() remain
 * as thin shims with bit-identical output and the historical throwing
 * behavior.
 */

#ifndef QZZ_QZZ_H
#define QZZ_QZZ_H

#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/units.h"

#include "linalg/expm.h"
#include "linalg/fidelity.h"
#include "linalg/matrix.h"

#include "ode/propagator.h"

#include "graph/graph.h"
#include "graph/matching.h"
#include "graph/planar.h"
#include "graph/shortest_paths.h"
#include "graph/topologies.h"

#include "pulse/drag.h"
#include "pulse/library.h"
#include "pulse/program.h"
#include "pulse/waveform.h"

#include "device/calibration.h"
#include "device/device.h"

#include "circuit/benchmarks.h"
#include "circuit/circuit.h"
#include "circuit/dag.h"
#include "circuit/decompose.h"
#include "circuit/gate.h"
#include "circuit/router.h"

#include "core/compiler.h"
#include "core/cut.h"
#include "core/cycle_sched.h"
#include "core/dcg.h"
#include "core/exact_sched.h"
#include "core/framework.h"
#include "core/objectives.h"
#include "core/optimizer.h"
#include "core/par_sched.h"
#include "core/pulse_opt.h"
#include "core/regions.h"
#include "core/sched_walk.h"
#include "core/schedule.h"
#include "core/schedule_io.h"
#include "core/suppression.h"
#include "core/zzx_sched.h"

#include "service/artifact.h"
#include "service/artifact_gc.h"
#include "service/calibration_hub.h"
#include "service/compile_service.h"
#include "service/fingerprint.h"
#include "service/jsonl.h"
#include "service/program_cache.h"
#include "service/server.h"
#include "service/transport.h"

#include "sim/density_matrix.h"
#include "sim/fitting.h"
#include "sim/ideal_sim.h"
#include "sim/lindblad.h"
#include "sim/pulse_sim.h"
#include "sim/ramsey.h"
#include "sim/state_vector.h"
#include "sim/transmon.h"

#include "exp/pipeline.h"
#include "exp/suite.h"

#endif // QZZ_QZZ_H
