/**
 * @file
 * Device model: topology plus a per-qubit calibration snapshot.
 *
 * A Device binds a topology to one dev::Calibration: per-edge
 * always-on ZZ strengths lambda (rad/ns), per-qubit T1/T2 times and
 * transmon anharmonicities.  The historical uniform constructors
 * (DeviceParams + rng / explicit couplings) remain as bit-identical
 * shims that build a uniform snapshot internally — couplings sampled
 * per edge from N(mu, sigma) as in Sec. 7.3 of the paper (mu =
 * 200 kHz, sigma = 50 kHz, quoted as lambda/2pi).
 *
 * Devices are value types: "changing" the calibration produces a new
 * Device (withCoherence(), withCalibration()), so a compile in flight
 * can never observe a device mutating under it.
 */

#ifndef QZZ_DEVICE_DEVICE_H
#define QZZ_DEVICE_DEVICE_H

#include <limits>
#include <vector>

#include "common/rng.h"
#include "device/calibration.h"
#include "graph/topologies.h"

namespace qzz::dev {

/** Uniform physical parameter set for shim device construction. */
struct DeviceParams
{
    /** Mean ZZ strength lambda (rad/ns); default 2pi * 200 kHz. */
    double coupling_mean = 2.0 * 3.14159265358979323846 * 200e-6;
    /** Std dev of lambda (rad/ns); default 2pi * 50 kHz. */
    double coupling_stddev = 2.0 * 3.14159265358979323846 * 50e-6;
    /** Relaxation time T1 (ns); infinity = no relaxation. */
    double t1 = std::numeric_limits<double>::infinity();
    /** Dephasing time T2 (ns); infinity = no dephasing. */
    double t2 = std::numeric_limits<double>::infinity();
    /** Transmon anharmonicity (rad/ns); default 2pi * (-300 MHz). */
    double anharmonicity = -2.0 * 3.14159265358979323846 * 300e-3;
};

/** A quantum device: topology + calibration snapshot. */
class Device
{
  public:
    /** Bind @p calib (validated against @p topo) to the topology. */
    Device(graph::Topology topo, Calibration calib);

    /**
     * Uniform shim: build a device over @p topo with couplings
     * sampled from N(params.coupling_mean, params.coupling_stddev),
     * truncated to stay positive.  Equivalent to constructing from
     * Calibration::sampled(topo, params, rng) — bit-identical
     * couplings for the same rng state.
     */
    Device(graph::Topology topo, DeviceParams params, Rng &rng);

    /** Uniform shim with explicitly specified per-edge couplings. */
    Device(graph::Topology topo, DeviceParams params,
           std::vector<double> couplings);

    const graph::Topology &topology() const { return topo_; }
    const graph::Graph &graph() const { return topo_.g; }
    int numQubits() const { return topo_.g.numVertices(); }
    int numCouplings() const { return topo_.g.numEdges(); }

    /** ZZ strength of coupling @p edge_id (rad/ns). */
    double
    coupling(int edge_id) const
    {
        return calib_.zz[size_t(edge_id)];
    }

    const std::vector<double> &couplings() const { return calib_.zz; }

    /** @name Per-qubit calibration accessors
     *  @{ */
    double t1(int q) const { return calib_.t1[size_t(q)]; }
    double t2(int q) const { return calib_.t2[size_t(q)]; }
    double
    anharmonicity(int q) const
    {
        return calib_.anharmonicity[size_t(q)];
    }
    /** @} */

    /** The full calibration snapshot this device was built from.
     *  (The historical uniform params() view is gone: read the
     *  per-qubit accessors, or the snapshot's sampling moments.) */
    const Calibration &calibration() const { return calib_; }

    /**
     * Copy of this device with every qubit's T1/T2 replaced (used by
     * the decoherence sweeps).  Returns a new Device rather than
     * mutating shared state, so a compile holding this device can
     * never observe the change.
     */
    Device withCoherence(double t1, double t2) const;

    /** Copy of this device under a different calibration snapshot
     *  (validated against the topology). */
    Device withCalibration(Calibration calib) const;

    /**
     * Grid dimensions used for an n-qubit benchmark: 2x2, 2x3, 3x3 and
     * 3x4 for the paper's 4/6/9/12-qubit instances; nearest-square
     * factorization otherwise.
     */
    static std::pair<int, int> gridDimsForQubits(int n);

    /** Convenience factory: n-qubit grid device. */
    static Device gridForQubits(int n, DeviceParams params, Rng &rng);

  private:
    graph::Topology topo_;
    Calibration calib_;
};

} // namespace qzz::dev

#endif // QZZ_DEVICE_DEVICE_H
