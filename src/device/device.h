/**
 * @file
 * Device model: topology plus physical parameters.
 *
 * Couplings carry always-on ZZ strengths lambda (rad/ns), sampled per
 * edge from N(mu, sigma) as in Sec. 7.3 of the paper (mu = 200 kHz,
 * sigma = 50 kHz, quoted as lambda/2pi).  Decoherence is described by
 * uniform T1/T2 times, and the transmon anharmonicity feeds the
 * leakage study.
 */

#ifndef QZZ_DEVICE_DEVICE_H
#define QZZ_DEVICE_DEVICE_H

#include <limits>
#include <vector>

#include "common/rng.h"
#include "graph/topologies.h"

namespace qzz::dev {

/** Physical parameter set for device construction. */
struct DeviceParams
{
    /** Mean ZZ strength lambda (rad/ns); default 2pi * 200 kHz. */
    double coupling_mean = 2.0 * 3.14159265358979323846 * 200e-6;
    /** Std dev of lambda (rad/ns); default 2pi * 50 kHz. */
    double coupling_stddev = 2.0 * 3.14159265358979323846 * 50e-6;
    /** Relaxation time T1 (ns); infinity = no relaxation. */
    double t1 = std::numeric_limits<double>::infinity();
    /** Dephasing time T2 (ns); infinity = no dephasing. */
    double t2 = std::numeric_limits<double>::infinity();
    /** Transmon anharmonicity (rad/ns); default 2pi * (-300 MHz). */
    double anharmonicity = -2.0 * 3.14159265358979323846 * 300e-3;
};

/** A quantum device: topology + sampled couplings + coherence data. */
class Device
{
  public:
    /**
     * Build a device over @p topo with couplings sampled from
     * N(params.coupling_mean, params.coupling_stddev), truncated to
     * stay positive.
     */
    Device(graph::Topology topo, DeviceParams params, Rng &rng);

    /** Build with explicitly specified per-edge couplings. */
    Device(graph::Topology topo, DeviceParams params,
           std::vector<double> couplings);

    const graph::Topology &topology() const { return topo_; }
    const graph::Graph &graph() const { return topo_.g; }
    int numQubits() const { return topo_.g.numVertices(); }
    int numCouplings() const { return topo_.g.numEdges(); }

    /** ZZ strength of coupling @p edge_id (rad/ns). */
    double coupling(int edge_id) const { return couplings_[edge_id]; }

    const std::vector<double> &couplings() const { return couplings_; }

    const DeviceParams &params() const { return params_; }

    /** Override the T1/T2 times (used by the decoherence sweep). */
    void setCoherence(double t1, double t2);

    /**
     * Grid dimensions used for an n-qubit benchmark: 2x2, 2x3, 3x3 and
     * 3x4 for the paper's 4/6/9/12-qubit instances; nearest-square
     * factorization otherwise.
     */
    static std::pair<int, int> gridDimsForQubits(int n);

    /** Convenience factory: n-qubit grid device. */
    static Device gridForQubits(int n, DeviceParams params, Rng &rng);

  private:
    graph::Topology topo_;
    DeviceParams params_;
    std::vector<double> couplings_;
};

} // namespace qzz::dev

#endif // QZZ_DEVICE_DEVICE_H
