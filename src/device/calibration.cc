#include "device/calibration.h"

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <ostream>
#include <random>
#include <sstream>
#include <thread>

#include "common/error.h"
#include "device/device.h"

namespace qzz::dev {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Positive Gaussian jitter: v * (1 + rel * N(0,1)), truncated into
 *  [0.05 v, 4 v] like the coupling sampler; infinities pass through. */
double
jitterPositive(double v, double rel, Rng &rng)
{
    if (rel <= 0.0 || !std::isfinite(v) || v == 0.0)
        return v;
    // Jitter the magnitude and restore the sign, so negative values
    // (anharmonicity) jitter the same way positive ones do and the
    // truncation bounds always bracket the mean.
    const double mag = std::abs(v);
    const double out = rng.truncatedNormal(mag, rel * mag, 0.05 * mag,
                                           4.0 * mag);
    return std::copysign(out, v);
}

/** Re-impose 1/T_phi = 1/T2 - 1/(2 T1) >= 0 after jittering. */
void
clampPhysicality(std::vector<double> &t1, std::vector<double> &t2)
{
    for (size_t q = 0; q < t1.size(); ++q)
        if (std::isfinite(t2[q]))
            t2[q] = std::min(t2[q], 2.0 * t1[q]);
}

void
requireSize(const std::vector<double> &v, size_t n, const char *what)
{
    require(v.size() == n, std::string("Calibration: ") + what +
                               " size mismatch");
}

} // namespace

void
Calibration::validate() const
{
    require(num_qubits >= 1, "Calibration: needs at least one qubit");
    const size_t nq = size_t(num_qubits);
    requireSize(t1, nq, "t1");
    requireSize(t2, nq, "t2");
    requireSize(anharmonicity, nq, "anharmonicity");
    require(edge_u.size() == zz.size() && edge_v.size() == zz.size(),
            "Calibration: edge/zz size mismatch");
    require(std::isfinite(coupling_mean) &&
                std::isfinite(coupling_stddev),
            "Calibration: sampling moments must be finite");
    for (size_t q = 0; q < nq; ++q) {
        require(t1[q] > 0.0, "Calibration: T1 must be positive");
        require(t2[q] > 0.0, "Calibration: T2 must be positive");
        // Physicality: 1/T_phi = 1/T2 - 1/(2 T1) must be
        // non-negative.  Infinite T2 means "no dephasing channel"
        // (the historical damping-only regime with finite T1) and is
        // exempt — the simulator clamps its dephasing rate at 0.
        if (std::isfinite(t2[q]))
            require(1.0 / t2[q] - 0.5 / t1[q] > -1e-15,
                    "Calibration: requires T2 <= 2 T1");
        // NaN would serialize as an unreadable token, silently
        // breaking the lossless round trip; infinity is only
        // meaningful for coherence times.
        require(std::isfinite(anharmonicity[q]),
                "Calibration: anharmonicity must be finite");
    }
    for (size_t e = 0; e < zz.size(); ++e) {
        require(edge_u[e] >= 0 && edge_u[e] < num_qubits &&
                    edge_v[e] >= 0 && edge_v[e] < num_qubits,
                "Calibration: edge endpoint out of range");
        require(std::isfinite(zz[e]),
                "Calibration: ZZ strength must be finite");
    }
}

void
Calibration::validateFor(const graph::Topology &topo) const
{
    validate();
    require(num_qubits == topo.g.numVertices(),
            "Calibration: qubit count does not match topology");
    require(numEdges() == topo.g.numEdges(),
            "Calibration: edge count does not match topology");
    for (const graph::Edge &e : topo.g.edges()) {
        require(edge_u[size_t(e.id)] == e.u &&
                    edge_v[size_t(e.id)] == e.v,
                "Calibration: edge list does not match topology");
    }
}

namespace {

Calibration
uniformSkeleton(const graph::Topology &topo, const DeviceParams &params)
{
    Calibration c;
    c.num_qubits = topo.g.numVertices();
    const size_t nq = size_t(c.num_qubits);
    c.t1.assign(nq, params.t1);
    c.t2.assign(nq, params.t2);
    c.anharmonicity.assign(nq, params.anharmonicity);
    c.coupling_mean = params.coupling_mean;
    c.coupling_stddev = params.coupling_stddev;
    for (const graph::Edge &e : topo.g.edges()) {
        c.edge_u.push_back(e.u);
        c.edge_v.push_back(e.v);
    }
    return c;
}

/** The historical Device-constructor coupling sampler, verbatim. */
std::vector<double>
sampleCouplings(const graph::Topology &topo, const DeviceParams &params,
                Rng &rng)
{
    std::vector<double> couplings;
    couplings.reserve(size_t(topo.g.numEdges()));
    for (int e = 0; e < topo.g.numEdges(); ++e) {
        couplings.push_back(rng.truncatedNormal(
            params.coupling_mean, params.coupling_stddev,
            params.coupling_mean * 0.05, params.coupling_mean * 4.0));
    }
    return couplings;
}

} // namespace

Calibration
Calibration::uniform(const graph::Topology &topo,
                     const DeviceParams &params,
                     std::vector<double> couplings)
{
    Calibration c = uniformSkeleton(topo, params);
    c.id = "uniform";
    c.zz = std::move(couplings);
    c.validateFor(topo);
    return c;
}

Calibration
Calibration::sampled(const graph::Topology &topo,
                     const DeviceParams &params, Rng &rng)
{
    Calibration c = uniformSkeleton(topo, params);
    c.id = "sampled";
    c.zz = sampleCouplings(topo, params, rng);
    c.validateFor(topo);
    return c;
}

Calibration
Calibration::jittered(const graph::Topology &topo,
                      const DeviceParams &params,
                      const CalibrationJitter &jitter, Rng &rng)
{
    Calibration c = uniformSkeleton(topo, params);
    c.id = "jittered";
    c.zz = sampleCouplings(topo, params, rng);
    for (double &v : c.t1)
        v = jitterPositive(v, jitter.t1_rel, rng);
    for (double &v : c.t2)
        v = jitterPositive(v, jitter.t2_rel, rng);
    clampPhysicality(c.t1, c.t2);
    for (double &v : c.anharmonicity)
        v = jitterPositive(v, jitter.anharmonicity_rel, rng);
    for (double &v : c.zz)
        v = jitterPositive(v, jitter.zz_rel, rng);
    c.validateFor(topo);
    return c;
}

Calibration
Calibration::drifted(const CalibrationDrift &drift, Rng &rng) const
{
    Calibration c = *this;
    c.epoch = epoch + 1;
    c.id = id + "+drift";
    for (double &v : c.t1)
        v = jitterPositive(v, drift.t1_rel, rng);
    for (double &v : c.t2)
        v = jitterPositive(v, drift.t2_rel, rng);
    clampPhysicality(c.t1, c.t2);
    for (double &v : c.anharmonicity)
        v = jitterPositive(v, drift.anharmonicity_rel, rng);
    for (double &v : c.zz)
        v = jitterPositive(v, drift.zz_rel, rng);
    c.validate();
    return c;
}

Calibration
Calibration::withUniformCoherence(double new_t1, double new_t2) const
{
    require(new_t1 > 0.0 && new_t2 > 0.0,
            "Calibration::withUniformCoherence: bad times");
    require(1.0 / new_t2 - 0.5 / new_t1 > -1e-15,
            "Calibration::withUniformCoherence: requires T2 <= 2 T1");
    Calibration c = *this;
    c.t1.assign(size_t(num_qubits), new_t1);
    c.t2.assign(size_t(num_qubits), new_t2);
    return c;
}

double
Calibration::meanZz() const
{
    if (zz.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : zz)
        sum += v;
    return sum / double(zz.size());
}

// ---------------------------------------------------------------------------
// JSON round trip
// ---------------------------------------------------------------------------

namespace {

/** max_digits10 for exact binary64 round-trips; infinities (not
 *  representable in JSON numbers) become the strings "inf"/"-inf". */
void
writeDouble(std::ostream &os, double v)
{
    if (std::isinf(v)) {
        os << (v > 0.0 ? "\"inf\"" : "\"-inf\"");
        return;
    }
    os << v;
}

void
writeDoubleArray(std::ostream &os, const std::vector<double> &v)
{
    os << "[";
    for (size_t i = 0; i < v.size(); ++i) {
        if (i)
            os << ",";
        writeDouble(os, v[i]);
    }
    os << "]";
}

void
writeIntArray(std::ostream &os, const std::vector<int> &v)
{
    os << "[";
    for (size_t i = 0; i < v.size(); ++i) {
        if (i)
            os << ",";
        os << v[i];
    }
    os << "]";
}

std::string
escapeId(const std::string &s)
{
    static const char hex[] = "0123456789abcdef";
    std::string out;
    for (char c : s) {
        const auto u = static_cast<unsigned char>(c);
        if (u < 0x20) {
            // Control characters would break the one-line-JSON
            // invariant (and the strict parser); \u-escape them so
            // any free-form id round-trips.
            out += "\\u00";
            out.push_back(hex[u >> 4]);
            out.push_back(hex[u & 0xf]);
            continue;
        }
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/**
 * Minimal parser for the calibration document: one flat JSON object
 * whose values are numbers, strings, or arrays of numbers/strings.
 * Strict about what it handles, with byte offsets in error messages.
 */
class CalibParser
{
  public:
    explicit CalibParser(std::string_view text) : text_(text) {}

    bool
    fail(const std::string &why)
    {
        if (error_.empty())
            error_ = why + " at byte " + std::to_string(pos_);
        return false;
    }

    const std::string &error() const { return error_; }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ >= text_.size() || text_[pos_] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos_;
        return true;
    }

    bool
    peek(char c)
    {
        skipWs();
        return pos_ < text_.size() && text_[pos_] == c;
    }

    bool
    atEnd()
    {
        skipWs();
        return pos_ >= text_.size();
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("control character in string");
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("dangling escape");
                const char esc = text_[pos_++];
                if (esc == 'u') {
                    // Only the \u00XX byte escapes the writer emits.
                    unsigned value = 0;
                    if (pos_ + 4 > text_.size())
                        return fail("truncated \\u escape");
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        value <<= 4;
                        if (h >= '0' && h <= '9')
                            value |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            value |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            value |= unsigned(h - 'A' + 10);
                        else
                            return fail("bad \\u escape digit");
                    }
                    if (value > 0xff)
                        return fail("unsupported \\u escape");
                    out.push_back(char(value));
                } else if (esc == '"' || esc == '\\') {
                    out.push_back(esc);
                } else {
                    return fail("unsupported escape");
                }
            } else {
                out.push_back(c);
            }
        }
        return fail("unterminated string");
    }

    /** A JSON number, or the quoted strings "inf" / "-inf". */
    bool
    parseDouble(double &out)
    {
        skipWs();
        if (peek('"')) {
            std::string s;
            if (!parseString(s))
                return false;
            if (s == "inf") {
                out = kInf;
                return true;
            }
            if (s == "-inf") {
                out = -kInf;
                return true;
            }
            return fail("expected \"inf\" or \"-inf\"");
        }
        // Copy the number token before strtod: the view need not be
        // NUL-terminated, and strtod must never scan past its end.
        size_t len = 0;
        while (pos_ + len < text_.size()) {
            const char c = text_[pos_ + len];
            if ((c >= '0' && c <= '9') || c == '-' || c == '+' ||
                c == '.' || c == 'e' || c == 'E')
                ++len;
            else
                break;
        }
        const std::string token(text_.substr(pos_, len));
        char *end = nullptr;
        out = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() || len == 0)
            return fail("expected a number");
        if (!std::isfinite(out))
            return fail("number out of range");
        pos_ += len;
        return true;
    }

    bool
    parseInt(int64_t &out)
    {
        double v = 0.0;
        if (!parseDouble(v))
            return false;
        out = int64_t(v);
        if (double(out) != v)
            return fail("expected an integer");
        return true;
    }

    bool
    parseDoubleArray(std::vector<double> &out)
    {
        if (!consume('['))
            return false;
        out.clear();
        if (peek(']'))
            return consume(']');
        for (;;) {
            double v = 0.0;
            if (!parseDouble(v))
                return false;
            out.push_back(v);
            if (peek(']'))
                return consume(']');
            if (!consume(','))
                return false;
        }
    }

    bool
    parseIntArray(std::vector<int> &out)
    {
        if (!consume('['))
            return false;
        out.clear();
        if (peek(']'))
            return consume(']');
        for (;;) {
            int64_t v = 0;
            if (!parseInt(v))
                return false;
            if (v < 0 || v > std::numeric_limits<int>::max())
                return fail("integer out of range");
            out.push_back(int(v));
            if (peek(']'))
                return consume(']');
            if (!consume(','))
                return false;
        }
    }

  private:
    std::string_view text_;
    size_t pos_ = 0;
    std::string error_;
};

} // namespace

void
writeCalibrationJson(const Calibration &calib, std::ostream &os)
{
    os.precision(17); // max_digits10: exact binary64 round-trip
    os << "{\"qzzcalib\":" << kCalibrationVersion;
    os << ",\"id\":\"" << escapeId(calib.id) << "\"";
    os << ",\"epoch\":" << calib.epoch;
    os << ",\"num_qubits\":" << calib.num_qubits;
    os << ",\"coupling_mean\":";
    writeDouble(os, calib.coupling_mean);
    os << ",\"coupling_stddev\":";
    writeDouble(os, calib.coupling_stddev);
    os << ",\"t1\":";
    writeDoubleArray(os, calib.t1);
    os << ",\"t2\":";
    writeDoubleArray(os, calib.t2);
    os << ",\"anharmonicity\":";
    writeDoubleArray(os, calib.anharmonicity);
    os << ",\"edge_u\":";
    writeIntArray(os, calib.edge_u);
    os << ",\"edge_v\":";
    writeIntArray(os, calib.edge_v);
    os << ",\"zz\":";
    writeDoubleArray(os, calib.zz);
    os << "}\n";
}

std::string
calibrationJsonString(const Calibration &calib)
{
    std::ostringstream os;
    writeCalibrationJson(calib, os);
    return os.str();
}

namespace {

/** Every key of the calibration document, in writer order.  Each is
 *  mandatory and must appear exactly once: a truncated file (missing
 *  trailing keys) or a spliced one (duplicate keys) fails the parse
 *  with a byte offset instead of yielding a partial snapshot. */
constexpr const char *kCalibKeys[] = {
    "qzzcalib", "id",     "epoch",         "num_qubits",
    "coupling_mean",      "coupling_stddev",
    "t1",       "t2",     "anharmonicity", "edge_u",
    "edge_v",   "zz",
};
constexpr size_t kNumCalibKeys =
    sizeof(kCalibKeys) / sizeof(kCalibKeys[0]);

} // namespace

std::optional<Calibration>
readCalibrationJson(std::string_view text, std::string *error)
{
    CalibParser p(text);
    Calibration c;
    bool seen[kNumCalibKeys] = {};
    auto fail = [&](const std::string &why) -> std::optional<Calibration> {
        if (error)
            *error = why.empty() ? p.error() : why;
        return std::nullopt;
    };

    if (!p.consume('{'))
        return fail("");
    if (!p.peek('}')) {
        for (;;) {
            std::string key;
            if (!p.parseString(key) || !p.consume(':'))
                return fail("");
            size_t idx = kNumCalibKeys;
            for (size_t i = 0; i < kNumCalibKeys; ++i) {
                if (key == kCalibKeys[i]) {
                    idx = i;
                    break;
                }
            }
            if (idx == kNumCalibKeys)
                return fail("unknown key '" + key + "'");
            if (seen[idx]) {
                p.fail("duplicate key '" + key + "'");
                return fail("");
            }
            seen[idx] = true;
            bool ok = true;
            if (key == "qzzcalib") {
                int64_t version = 0;
                ok = p.parseInt(version);
                if (ok && version != kCalibrationVersion)
                    return fail("unsupported calibration version " +
                                std::to_string(version));
            } else if (key == "id") {
                ok = p.parseString(c.id);
            } else if (key == "epoch") {
                int64_t epoch = 0;
                ok = p.parseInt(epoch) && epoch >= 0;
                c.epoch = uint64_t(epoch);
            } else if (key == "num_qubits") {
                int64_t n = 0;
                ok = p.parseInt(n) && n >= 0 && n <= (int64_t(1) << 20);
                c.num_qubits = int(n);
            } else if (key == "coupling_mean") {
                ok = p.parseDouble(c.coupling_mean);
            } else if (key == "coupling_stddev") {
                ok = p.parseDouble(c.coupling_stddev);
            } else if (key == "t1") {
                ok = p.parseDoubleArray(c.t1);
            } else if (key == "t2") {
                ok = p.parseDoubleArray(c.t2);
            } else if (key == "anharmonicity") {
                ok = p.parseDoubleArray(c.anharmonicity);
            } else if (key == "edge_u") {
                ok = p.parseIntArray(c.edge_u);
            } else if (key == "edge_v") {
                ok = p.parseIntArray(c.edge_v);
            } else if (key == "zz") {
                ok = p.parseDoubleArray(c.zz);
            }
            if (!ok)
                return fail("");
            if (p.peek('}'))
                break;
            if (!p.consume(','))
                return fail("");
        }
    }
    if (!p.consume('}'))
        return fail("");
    if (!p.atEnd())
        return fail("trailing content after calibration document");
    for (size_t i = 0; i < kNumCalibKeys; ++i) {
        if (!seen[i]) {
            p.fail("missing key '" + std::string(kCalibKeys[i]) + "'");
            return fail("");
        }
    }

    try {
        c.validate();
    } catch (const std::exception &e) {
        return fail(e.what());
    }
    return c;
}

bool
saveCalibrationFile(const Calibration &calib, const std::string &path)
{
    namespace fs = std::filesystem;
    const fs::path target(path);
    std::error_code ec;
    if (target.has_parent_path())
        fs::create_directories(target.parent_path(), ec);

    // Writer-private temp file + rename, mirroring the pulse store:
    // concurrent writers can never leave a torn snapshot behind.
    static const unsigned process_tag = std::random_device{}();
    static std::atomic<unsigned> save_counter{0};
    const auto suffix =
        std::to_string(process_tag) + "." +
        std::to_string(
            std::hash<std::thread::id>{}(std::this_thread::get_id())) +
        "." + std::to_string(save_counter.fetch_add(1));
    const fs::path tmp = target.string() + ".tmp." + suffix;

    bool ok;
    {
        std::ofstream out(tmp);
        if (!out)
            return false;
        writeCalibrationJson(calib, out);
        out.flush();
        ok = out.good();
    }
    if (ok) {
        fs::rename(tmp, target, ec);
        ok = !ec;
    }
    if (!ok)
        fs::remove(tmp, ec);
    return ok;
}

std::optional<Calibration>
loadCalibrationFile(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open '" + path + "'";
        return std::nullopt;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad()) {
        // An IO error mid-read would otherwise look like truncation;
        // report it as what it is.
        if (error)
            *error = "read error on '" + path + "'";
        return std::nullopt;
    }
    return readCalibrationJson(ss.str(), error);
}

} // namespace qzz::dev
