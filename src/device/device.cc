#include "device/device.h"

#include <cmath>

#include "common/error.h"

namespace qzz::dev {

Device::Device(graph::Topology topo, Calibration calib)
    : topo_(std::move(topo)), calib_(std::move(calib))
{
    calib_.validateFor(topo_);
}

Device::Device(graph::Topology topo, DeviceParams params, Rng &rng)
    : topo_(std::move(topo)),
      calib_(Calibration::sampled(topo_, params, rng))
{
}

Device::Device(graph::Topology topo, DeviceParams params,
               std::vector<double> couplings)
    : topo_(std::move(topo))
{
    require(int(couplings.size()) == topo_.g.numEdges(),
            "Device: coupling count must match edge count");
    calib_ = Calibration::uniform(topo_, params, std::move(couplings));
}

Device
Device::withCoherence(double t1, double t2) const
{
    Device out = *this;
    out.calib_ = calib_.withUniformCoherence(t1, t2);
    return out;
}

Device
Device::withCalibration(Calibration calib) const
{
    return Device(topo_, std::move(calib));
}

std::pair<int, int>
Device::gridDimsForQubits(int n)
{
    require(n >= 1, "gridDimsForQubits: bad qubit count");
    switch (n) {
    case 4:
        return {2, 2};
    case 6:
        return {2, 3};
    case 9:
        return {3, 3};
    case 12:
        return {3, 4};
    default:
        break;
    }
    int best_r = 1;
    for (int r = 1; r * r <= n; ++r)
        if (n % r == 0)
            best_r = r;
    return {best_r, n / best_r};
}

Device
Device::gridForQubits(int n, DeviceParams params, Rng &rng)
{
    auto [rows, cols] = gridDimsForQubits(n);
    return Device(graph::gridTopology(rows, cols), params, rng);
}

} // namespace qzz::dev
