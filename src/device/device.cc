#include "device/device.h"

#include <cmath>

#include "common/error.h"

namespace qzz::dev {

Device::Device(graph::Topology topo, DeviceParams params, Rng &rng)
    : topo_(std::move(topo)), params_(params)
{
    couplings_.reserve(size_t(topo_.g.numEdges()));
    for (int e = 0; e < topo_.g.numEdges(); ++e) {
        couplings_.push_back(rng.truncatedNormal(
            params_.coupling_mean, params_.coupling_stddev,
            params_.coupling_mean * 0.05, params_.coupling_mean * 4.0));
    }
}

Device::Device(graph::Topology topo, DeviceParams params,
               std::vector<double> couplings)
    : topo_(std::move(topo)), params_(params),
      couplings_(std::move(couplings))
{
    require(int(couplings_.size()) == topo_.g.numEdges(),
            "Device: coupling count must match edge count");
}

void
Device::setCoherence(double t1, double t2)
{
    require(t1 > 0.0 && t2 > 0.0, "Device::setCoherence: bad times");
    // Physicality: 1/T_phi = 1/T2 - 1/(2 T1) must be non-negative.
    require(1.0 / t2 - 0.5 / t1 > -1e-15,
            "Device::setCoherence: requires T2 <= 2 T1");
    params_.t1 = t1;
    params_.t2 = t2;
}

std::pair<int, int>
Device::gridDimsForQubits(int n)
{
    require(n >= 1, "gridDimsForQubits: bad qubit count");
    switch (n) {
    case 4:
        return {2, 2};
    case 6:
        return {2, 3};
    case 9:
        return {3, 3};
    case 12:
        return {3, 4};
    default:
        break;
    }
    int best_r = 1;
    for (int r = 1; r * r <= n; ++r)
        if (n % r == 0)
            best_r = r;
    return {best_r, n / best_r};
}

Device
Device::gridForQubits(int n, DeviceParams params, Rng &rng)
{
    auto [rows, cols] = gridDimsForQubits(n);
    return Device(graph::gridTopology(rows, cols), params, rng);
}

} // namespace qzz::dev
