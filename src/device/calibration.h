/**
 * @file
 * Per-qubit calibration snapshots.
 *
 * Real devices are heterogeneous and drift between calibration runs:
 * every qubit has its own T1/T2/anharmonicity and every coupler its
 * own always-on ZZ rate, and the numbers change each time the backend
 * recalibrates.  A Calibration captures one such snapshot — per-qubit
 * coherence/anharmonicity vectors, per-edge ZZ couplings, and a
 * monotonically increasing epoch plus a snapshot id — so the rest of
 * the system (device model, pulse generation, simulators, scheduler
 * tables, service fingerprints) keys on calibrated data instead of
 * one uniform parameter tuple.
 *
 * Snapshots round-trip losslessly through a one-line JSON document
 * (every double written with max_digits10 precision; infinities
 * encoded as the strings "inf"/"-inf"), and persist with the same
 * write-private-temp + rename convention as the pulse calibration
 * store, so concurrent writers can never leave a torn file behind.
 * The document grammar, the infinity encoding, and the epoch/id
 * semantics are specified in docs/formats.md ("Calibration
 * snapshots").
 */

#ifndef QZZ_DEVICE_CALIBRATION_H
#define QZZ_DEVICE_CALIBRATION_H

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/topologies.h"

namespace qzz::dev {

struct DeviceParams;

/** Calibration document format version (stored in the JSON). */
inline constexpr int kCalibrationVersion = 1;

/** Relative 1-sigma spreads used by Calibration::jittered().  A
 *  field set to 0 leaves that quantity at its nominal value, so e.g.
 *  {0, 0, 0, zz_rel} isolates per-edge ZZ heterogeneity (the sweep
 *  axis of bench/fig_weighted_sched.cc). */
struct CalibrationJitter
{
    /** Fractional spread of per-qubit T1 (and T2). */
    double t1_rel = 0.10;
    double t2_rel = 0.10;
    /** Fractional spread of per-qubit anharmonicity. */
    double anharmonicity_rel = 0.02;
    /** Fractional spread of per-edge ZZ *on top of* the sampled
     *  value (couplings are first drawn from N(coupling_mean,
     *  coupling_stddev) like sampled(); set coupling_stddev = 0 to
     *  make zz_rel the only source of ZZ spread). */
    double zz_rel = 0.0;
};

/** Relative per-recalibration drift applied by Calibration::drifted(). */
struct CalibrationDrift
{
    double t1_rel = 0.05;
    double t2_rel = 0.05;
    double anharmonicity_rel = 0.005;
    double zz_rel = 0.05;
};

/**
 * One calibration snapshot of a device.
 *
 * Per-qubit vectors are indexed by qubit id; `zz` is indexed by the
 * topology's edge id, with `edge_u`/`edge_v` recording the endpoints
 * so a snapshot loaded from disk can be validated against the
 * topology it is applied to.  `epoch` increases monotonically across
 * recalibrations of one device (drifted() bumps it); `id` is a free-
 * form provenance label and is deliberately NOT part of the service
 * fingerprint — two snapshots with identical numbers and epoch are
 * the same calibration regardless of how they were labelled.
 */
struct Calibration
{
    /** Provenance label, e.g. "sampled" or "drift-3". */
    std::string id;
    /** Monotonically increasing recalibration counter. */
    uint64_t epoch = 0;
    int num_qubits = 0;

    /** Per-qubit relaxation times T1 (ns); infinity = none. */
    std::vector<double> t1;
    /** Per-qubit dephasing times T2 (ns); infinity = none. */
    std::vector<double> t2;
    /** Per-qubit transmon anharmonicity (rad/ns). */
    std::vector<double> anharmonicity;

    /** Edge endpoints, aligned with `zz` (topology edge order). */
    std::vector<int> edge_u;
    std::vector<int> edge_v;
    /** Per-edge always-on ZZ strength lambda (rad/ns). */
    std::vector<double> zz;

    /** Nominal sampling moments the snapshot was generated from
     *  (provenance; also the uniform view Device::params() reports). */
    double coupling_mean = 0.0;
    double coupling_stddev = 0.0;

    bool operator==(const Calibration &) const = default;

    int numEdges() const { return int(zz.size()); }

    /** Internal consistency: vector sizes, positive finite-or-inf
     *  coherence times, T2 <= 2 T1 physicality.  Throws UserError. */
    void validate() const;

    /** validate() plus edge/vertex agreement with @p topo. */
    void validateFor(const graph::Topology &topo) const;

    /**
     * Uniform snapshot: every qubit carries params' T1/T2/
     * anharmonicity and the given explicit per-edge couplings.
     */
    static Calibration uniform(const graph::Topology &topo,
                               const DeviceParams &params,
                               std::vector<double> couplings);

    /**
     * Uniform per-qubit values with couplings sampled from
     * N(params.coupling_mean, params.coupling_stddev), truncated to
     * stay positive — drawing from @p rng exactly like the historical
     * Device constructor, so a Device built from this snapshot is
     * bit-identical to one built from (params, rng) directly.
     */
    static Calibration sampled(const graph::Topology &topo,
                               const DeviceParams &params, Rng &rng);

    /**
     * Heterogeneous snapshot: couplings sampled as in sampled(), then
     * every per-qubit/per-edge value Gaussian-jittered by the given
     * relative spreads (truncated so T1/T2 stay positive and the
     * T2 <= 2 T1 physicality bound holds; infinite times stay
     * infinite).
     */
    static Calibration jittered(const graph::Topology &topo,
                                const DeviceParams &params,
                                const CalibrationJitter &jitter,
                                Rng &rng);

    /**
     * A recalibration: every field of this snapshot perturbed by the
     * drift model's relative spreads, with `epoch` incremented and
     * the id suffixed, modelling parameter drift between calibration
     * runs of one physical device.
     */
    Calibration drifted(const CalibrationDrift &drift, Rng &rng) const;

    /** Copy with every qubit's T1/T2 replaced (the uniform coherence
     *  shim used by decoherence sweeps).  Throws UserError on
     *  non-positive times or T2 > 2 T1. */
    Calibration withUniformCoherence(double t1, double t2) const;

    /** Mean per-edge ZZ strength (rad/ns); 0 for edgeless devices. */
    double meanZz() const;
};

/** Serialize @p calib as one line of JSON (lossless round-trip). */
void writeCalibrationJson(const Calibration &calib, std::ostream &os);

/** writeCalibrationJson() into a string. */
std::string calibrationJsonString(const Calibration &calib);

/** Parse a calibration document.  Returns nullopt (with a message in
 *  @p error when non-null) on malformed or version-mismatched input;
 *  the returned snapshot has been validate()d. */
std::optional<Calibration>
readCalibrationJson(std::string_view text, std::string *error = nullptr);

/** Atomically persist @p calib to @p path (temp file + rename).
 *  Returns false when the file could not be written. */
bool saveCalibrationFile(const Calibration &calib,
                         const std::string &path);

/** Load a snapshot previously saved with saveCalibrationFile(). */
std::optional<Calibration>
loadCalibrationFile(const std::string &path, std::string *error = nullptr);

} // namespace qzz::dev

#endif // QZZ_DEVICE_CALIBRATION_H
