/**
 * @file
 * End-to-end fidelity pipeline (Sec. 7.3 methodology): compile a
 * benchmark circuit for a device under a (pulse method x scheduler)
 * configuration, simulate it at the pulse level with always-on ZZ
 * crosstalk (optionally plus T1/T2 decoherence), and compare against
 * the ideal output state.
 */

#ifndef QZZ_EXP_PIPELINE_H
#define QZZ_EXP_PIPELINE_H

#include <string>

#include "core/compiler.h"
#include "core/framework.h"
#include "sim/ideal_sim.h"
#include "sim/lindblad.h"
#include "sim/pulse_sim.h"

namespace qzz::exp {

/** Outcome of one benchmark x configuration evaluation. */
struct FidelityResult
{
    std::string benchmark;
    std::string config;
    /** |<ideal|actual>|^2 (or <ideal|rho|ideal> with decoherence). */
    double fidelity = 0.0;
    /** Total schedule duration (ns). */
    double execution_time = 0.0;
    /** Number of pulse-carrying layers. */
    int physical_layers = 0;
    /** Mean unsuppressed-coupling count per layer. */
    double mean_nc = 0.0;
    /** Worst largest-region size over layers. */
    int max_nq = 0;
};

/**
 * Evaluate one configuration with pure-state pulse simulation.
 *
 * @param logical logical benchmark circuit.
 * @param device  target device.
 * @param opt     pulse method + scheduling policy.
 * @param sim_opt integrator controls.
 */
FidelityResult evaluateFidelity(const ckt::QuantumCircuit &logical,
                                const dev::Device &device,
                                const core::CompileOptions &opt,
                                const sim::PulseSimOptions &sim_opt = {});

/** Same, with T1/T2 decoherence (density-matrix simulation). */
FidelityResult
evaluateFidelityWithDecoherence(const ckt::QuantumCircuit &logical,
                                const dev::Device &device,
                                const core::CompileOptions &opt,
                                const sim::PulseSimOptions &sim_opt = {});

/**
 * Evaluate using a prebuilt core::Compiler (the stage-based API).
 * Reusing one compiler across the circuits of a figure shares the
 * per-device routing tables and the pulse library.
 */
FidelityResult evaluateFidelity(const ckt::QuantumCircuit &logical,
                                const core::Compiler &compiler,
                                const sim::PulseSimOptions &sim_opt = {});

/** Same, with T1/T2 decoherence (density-matrix simulation). */
FidelityResult
evaluateFidelityWithDecoherence(const ckt::QuantumCircuit &logical,
                                const core::Compiler &compiler,
                                const sim::PulseSimOptions &sim_opt = {});

/** Short display name like "Pert+ZZXSched". */
std::string configName(const core::CompileOptions &opt);

} // namespace qzz::exp

#endif // QZZ_EXP_PIPELINE_H
