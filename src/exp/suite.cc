#include "exp/suite.h"

#include <cstdlib>

namespace qzz::exp {

std::vector<SuiteEntry>
buildSuite(const SuiteConfig &cfg)
{
    Rng master(cfg.seed);
    Rng circuit_rng = master.split();

    const auto instances =
        cfg.with_qv ? ckt::paperBenchmarkSuiteWithQv(circuit_rng)
                    : ckt::paperBenchmarkSuite(circuit_rng);

    // One device per qubit count, shared across families so that all
    // instances of a size see identical couplings.
    std::vector<SuiteEntry> out;
    std::vector<std::pair<int, dev::Device>> devices;
    Rng device_rng = master.split();
    auto device_for = [&](int n) -> const dev::Device & {
        for (const auto &[qubits, device] : devices)
            if (qubits == n)
                return device;
        Rng child = device_rng.split();
        devices.emplace_back(
            n, dev::Device::gridForQubits(n, dev::DeviceParams{}, child));
        return devices.back().second;
    };

    for (const auto &inst : instances) {
        const int n = inst.circuit.numQubits();
        if (cfg.max_qubits > 0 && n > cfg.max_qubits)
            continue;
        out.push_back({inst.label, inst.circuit, device_for(n)});
    }
    return out;
}

bool
quickMode()
{
    const char *env = std::getenv("QZZ_QUICK");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

} // namespace qzz::exp
