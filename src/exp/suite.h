/**
 * @file
 * The paper's evaluation suite: benchmark instances paired with their
 * grid devices (Sec. 7.3 setup).
 *
 * Devices are n-qubit sub-grids (2x2, 2x3, 3x3, 3x4 for n = 4, 6, 9,
 * 12) with per-coupling ZZ strengths sampled from N(200 kHz, 50 kHz)
 * (quoted as lambda/2pi) under a fixed seed, so every figure sees the
 * same hardware.
 */

#ifndef QZZ_EXP_SUITE_H
#define QZZ_EXP_SUITE_H

#include <vector>

#include "circuit/benchmarks.h"
#include "device/device.h"
#include "exp/pipeline.h"

namespace qzz::exp {

/** One suite entry: a benchmark plus its device. */
struct SuiteEntry
{
    std::string label;
    ckt::QuantumCircuit circuit;
    dev::Device device;
};

/** Suite construction knobs. */
struct SuiteConfig
{
    uint64_t seed = 20220215;
    /** Include the QV instances (Fig. 25). */
    bool with_qv = false;
    /** Keep only instances with at most this many qubits
     *  (0 = no limit); used by smoke tests. */
    int max_qubits = 0;
};

/** Build the benchmark+device suite. */
std::vector<SuiteEntry> buildSuite(const SuiteConfig &cfg = {});

/** True when the QZZ_QUICK environment variable asks benches to run
 *  a reduced (<= 6 qubit) suite. */
bool quickMode();

} // namespace qzz::exp

#endif // QZZ_EXP_SUITE_H
