#include "exp/pipeline.h"

#include "common/error.h"

namespace qzz::exp {

std::string
configName(const core::CompileOptions &opt)
{
    std::string pulse = core::pulseMethodName(opt.pulse);
    if (pulse == "Gaussian")
        pulse = "Gau";
    return pulse + "+" + core::schedPolicyName(opt.sched);
}

namespace {

/** Run the compiler and surface a failed status like the legacy
 *  throwing entry points did. */
core::CompiledProgram
compileOrThrow(const core::Compiler &compiler,
               const ckt::QuantumCircuit &logical)
{
    return core::unwrapOrThrow(compiler.compile(logical));
}

FidelityResult
makeResult(const ckt::QuantumCircuit &logical,
           const core::CompileOptions &opt,
           const core::CompiledProgram &prog)
{
    FidelityResult res;
    res.benchmark = logical.name();
    res.config = configName(opt);
    res.execution_time = prog.schedule.executionTime();
    res.physical_layers = prog.schedule.physicalLayerCount();
    res.mean_nc = prog.schedule.meanNc();
    res.max_nq = prog.schedule.maxNq();
    return res;
}

} // namespace

FidelityResult
evaluateFidelity(const ckt::QuantumCircuit &logical,
                 const core::Compiler &compiler,
                 const sim::PulseSimOptions &sim_opt)
{
    core::CompiledProgram prog = compileOrThrow(compiler, logical);
    FidelityResult res =
        makeResult(logical, compiler.options(), prog);

    sim::PulseScheduleSimulator simulator(compiler.device(),
                                          *prog.library, sim_opt);
    const sim::StateVector actual = simulator.run(prog.schedule);
    const sim::StateVector ideal =
        sim::runIdealSchedule(prog.schedule);
    res.fidelity = ideal.fidelity(actual);
    return res;
}

FidelityResult
evaluateFidelityWithDecoherence(const ckt::QuantumCircuit &logical,
                                const core::Compiler &compiler,
                                const sim::PulseSimOptions &sim_opt)
{
    core::CompiledProgram prog = compileOrThrow(compiler, logical);
    FidelityResult res =
        makeResult(logical, compiler.options(), prog);

    sim::DensityMatrixScheduleSimulator simulator(
        compiler.device(), *prog.library, sim_opt);
    const sim::DensityMatrix actual = simulator.run(prog.schedule);
    const sim::StateVector ideal =
        sim::runIdealSchedule(prog.schedule);
    res.fidelity = actual.expectationPure(ideal);
    return res;
}

FidelityResult
evaluateFidelity(const ckt::QuantumCircuit &logical,
                 const dev::Device &device,
                 const core::CompileOptions &opt,
                 const sim::PulseSimOptions &sim_opt)
{
    const core::Compiler compiler =
        core::CompilerBuilder(device).options(opt).build();
    return evaluateFidelity(logical, compiler, sim_opt);
}

FidelityResult
evaluateFidelityWithDecoherence(const ckt::QuantumCircuit &logical,
                                const dev::Device &device,
                                const core::CompileOptions &opt,
                                const sim::PulseSimOptions &sim_opt)
{
    const core::Compiler compiler =
        core::CompilerBuilder(device).options(opt).build();
    return evaluateFidelityWithDecoherence(logical, compiler, sim_opt);
}

} // namespace qzz::exp
