#include "exp/pipeline.h"

#include "common/error.h"

namespace qzz::exp {

std::string
configName(const core::CompileOptions &opt)
{
    std::string pulse = core::pulseMethodName(opt.pulse);
    if (pulse == "Gaussian")
        pulse = "Gau";
    return pulse + "+" + core::schedPolicyName(opt.sched);
}

namespace {

FidelityResult
makeResult(const ckt::QuantumCircuit &logical,
           const core::CompileOptions &opt,
           const core::CompiledProgram &prog)
{
    FidelityResult res;
    res.benchmark = logical.name();
    res.config = configName(opt);
    res.execution_time = prog.schedule.executionTime();
    res.physical_layers = prog.schedule.physicalLayerCount();
    res.mean_nc = prog.schedule.meanNc();
    res.max_nq = prog.schedule.maxNq();
    return res;
}

} // namespace

FidelityResult
evaluateFidelity(const ckt::QuantumCircuit &logical,
                 const dev::Device &device,
                 const core::CompileOptions &opt,
                 const sim::PulseSimOptions &sim_opt)
{
    core::CompiledProgram prog = compileForDevice(logical, device, opt);
    FidelityResult res = makeResult(logical, opt, prog);

    sim::PulseScheduleSimulator simulator(device, *prog.library,
                                          sim_opt);
    const sim::StateVector actual = simulator.run(prog.schedule);
    const sim::StateVector ideal =
        sim::runIdealSchedule(prog.schedule);
    res.fidelity = ideal.fidelity(actual);
    return res;
}

FidelityResult
evaluateFidelityWithDecoherence(const ckt::QuantumCircuit &logical,
                                const dev::Device &device,
                                const core::CompileOptions &opt,
                                const sim::PulseSimOptions &sim_opt)
{
    core::CompiledProgram prog = compileForDevice(logical, device, opt);
    FidelityResult res = makeResult(logical, opt, prog);

    sim::DensityMatrixScheduleSimulator simulator(device, *prog.library,
                                                  sim_opt);
    const sim::DensityMatrix actual = simulator.run(prog.schedule);
    const sim::StateVector ideal =
        sim::runIdealSchedule(prog.schedule);
    res.fidelity = actual.expectationPure(ideal);
    return res;
}

} // namespace qzz::exp
