#include "common/table.h"

#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace qzz {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    require(!headers_.empty(), "Table: need at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    require(cells.size() == headers_.size(),
            "Table::addRow: cell count does not match header count");
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    if (!title_.empty())
        os << "== " << title_ << " ==\n";

    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(int(width[c]) + 2) << cells[c];
        }
        os << "\n";
    };
    emit(headers_);
    std::string rule;
    for (size_t c = 0; c < headers_.size(); ++c)
        rule += std::string(width[c], '-') + "  ";
    os << rule << "\n";
    for (const auto &row : rows_)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ",";
            os << cells[c];
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
formatG(double v, int digits)
{
    std::ostringstream ss;
    ss << std::setprecision(digits) << v;
    return ss.str();
}

std::string
formatF(double v, int digits)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(digits) << v;
    return ss.str();
}

std::string
formatX(double v, int digits)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(digits) << v << "x";
    return ss.str();
}

} // namespace qzz
