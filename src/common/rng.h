/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic pieces of qzz (crosstalk-strength sampling, random
 * circuit generation, optimizer restarts) draw from an explicitly
 * seeded Rng so that every experiment in the repository is exactly
 * reproducible.
 */

#ifndef QZZ_COMMON_RNG_H
#define QZZ_COMMON_RNG_H

#include <cstdint>
#include <random>
#include <vector>

namespace qzz {

/** A seeded, splittable random source wrapping std::mt19937_64. */
class Rng
{
  public:
    /** Construct from an explicit 64-bit seed. */
    explicit Rng(uint64_t seed) : engine_(seed) {}

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    int uniformInt(int lo, int hi);

    /** Normal variate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Normal variate truncated to [lo, hi] by resampling.
     * Used for coupling strengths, which must stay positive.
     */
    double truncatedNormal(double mean, double stddev, double lo, double hi);

    /** In-place Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(uniformInt(0, int(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

    /**
     * Derive an independent child generator.  Successive calls produce
     * distinct streams; used to give sub-experiments their own seeds.
     */
    Rng split();

    /** Access to the raw engine, for std distributions. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace qzz

#endif // QZZ_COMMON_RNG_H
