#include "common/rng.h"

#include "common/error.h"

namespace qzz {

double
Rng::uniform()
{
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double
Rng::uniform(double lo, double hi)
{
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int
Rng::uniformInt(int lo, int hi)
{
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
}

double
Rng::normal(double mean, double stddev)
{
    return std::normal_distribution<double>(mean, stddev)(engine_);
}

double
Rng::truncatedNormal(double mean, double stddev, double lo, double hi)
{
    require(lo < hi, "truncatedNormal: empty interval");
    for (int attempt = 0; attempt < 1000; ++attempt) {
        double x = normal(mean, stddev);
        if (x >= lo && x <= hi)
            return x;
    }
    // Pathological parameters; clamp deterministically rather than spin.
    double x = normal(mean, stddev);
    return x < lo ? lo : (x > hi ? hi : x);
}

Rng
Rng::split()
{
    uint64_t child_seed = engine_();
    // Decorrelate from the parent stream (splitmix64 finalizer).
    child_seed += 0x9e3779b97f4a7c15ull;
    child_seed = (child_seed ^ (child_seed >> 30)) * 0xbf58476d1ce4e5b9ull;
    child_seed = (child_seed ^ (child_seed >> 27)) * 0x94d049bb133111ebull;
    child_seed ^= child_seed >> 31;
    return Rng(child_seed);
}

} // namespace qzz
