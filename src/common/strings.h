/**
 * @file
 * Small string helpers shared across layers.
 */

#ifndef QZZ_COMMON_STRINGS_H
#define QZZ_COMMON_STRINGS_H

#include <algorithm>
#include <cctype>
#include <string_view>

namespace qzz {

/** ASCII case-insensitive equality (used by the enum-name parsers). */
inline bool
iequalsAscii(std::string_view a, std::string_view b)
{
    return a.size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin(),
                      [](char x, char y) {
                          return std::tolower(
                                     static_cast<unsigned char>(x)) ==
                                 std::tolower(
                                     static_cast<unsigned char>(y));
                      });
}

} // namespace qzz

#endif // QZZ_COMMON_STRINGS_H
