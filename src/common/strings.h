/**
 * @file
 * Small string helpers shared across layers.
 */

#ifndef QZZ_COMMON_STRINGS_H
#define QZZ_COMMON_STRINGS_H

#include <algorithm>
#include <cctype>
#include <string>
#include <string_view>
#include <vector>

namespace qzz {

/** ", "-joined list, e.g. for CLI messages listing valid names. */
inline std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &n : names) {
        if (!out.empty())
            out += ", ";
        out += n;
    }
    return out;
}

/** ASCII case-insensitive equality (used by the enum-name parsers). */
inline bool
iequalsAscii(std::string_view a, std::string_view b)
{
    return a.size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin(),
                      [](char x, char y) {
                          return std::tolower(
                                     static_cast<unsigned char>(x)) ==
                                 std::tolower(
                                     static_cast<unsigned char>(y));
                      });
}

} // namespace qzz

#endif // QZZ_COMMON_STRINGS_H
