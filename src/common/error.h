/**
 * @file
 * Error-handling primitives for the qzz library.
 *
 * Two failure categories, following the fatal-vs-panic convention of
 * large systems codebases:
 *  - fatal():  the *caller* made an error (bad argument, impossible
 *              configuration).  Throws qzz::UserError.
 *  - panic():  a qzz invariant was violated (library bug).  Throws
 *              qzz::InternalError.
 */

#ifndef QZZ_COMMON_ERROR_H
#define QZZ_COMMON_ERROR_H

#include <stdexcept>
#include <string>

namespace qzz {

/** Raised when a caller-supplied argument or configuration is invalid. */
class UserError : public std::runtime_error
{
  public:
    explicit UserError(const std::string &what) : std::runtime_error(what) {}
};

/** Raised when an internal invariant of the library is violated. */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &what)
        : std::logic_error(what) {}
};

/**
 * Report a user-level error.
 *
 * @param msg description of what the user did wrong.
 * @throws UserError always.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Report a violated internal invariant.
 *
 * @param msg description of the broken invariant.
 * @throws InternalError always.
 */
[[noreturn]] void panic(const std::string &msg);

/** Check a user-facing precondition; fatal() with @p msg on failure. */
inline void
require(bool cond, const std::string &msg)
{
    if (!cond)
        fatal(msg);
}

/** Check an internal invariant; panic() with @p msg on failure. */
inline void
ensure(bool cond, const std::string &msg)
{
    if (!cond)
        panic(msg);
}

/** @name Literal-message overloads
 *  Checks called with string literals must not pay a std::string
 *  construction (a heap allocation for any message past the SSO
 *  limit) on the success path — the simulation kernels run a
 *  require() per call, millions of times per schedule.  These
 *  overloads defer the conversion to the failure branch.
 *  @{
 */
inline void
require(bool cond, const char *msg)
{
    if (!cond)
        fatal(std::string(msg));
}

inline void
ensure(bool cond, const char *msg)
{
    if (!cond)
        panic(std::string(msg));
}
/** @} */

} // namespace qzz

#endif // QZZ_COMMON_ERROR_H
