#include "common/error.h"

namespace qzz {

void
fatal(const std::string &msg)
{
    throw UserError(msg);
}

void
panic(const std::string &msg)
{
    throw InternalError("qzz internal error: " + msg);
}

} // namespace qzz
