#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace qzz::common {

namespace {

/** Set while a pool worker runs a block, so nested parallelFor()
 *  calls degrade to inline execution instead of deadlocking. */
thread_local bool in_pool_worker = false;

/**
 * The process-wide pool.  One job at a time: parallelFor() publishes
 * a block list, workers and the caller race on an atomic cursor, and
 * the caller waits for the in-flight count to drain.  Serializing
 * jobs keeps the pool trivially correct; concurrent parallelFor()
 * calls from different threads just queue on the job mutex.
 */
class Pool
{
  public:
    Pool()
    {
        const unsigned hw = std::thread::hardware_concurrency();
        const int workers = hw > 1 ? int(hw) - 1 : 0;
        threads_.reserve(size_t(workers));
        for (int i = 0; i < workers; ++i)
            threads_.emplace_back([this] { workerLoop(); });
    }

    ~Pool()
    {
        {
            std::lock_guard<std::mutex> lock(m_);
            stop_ = true;
        }
        wake_.notify_all();
        for (std::thread &t : threads_)
            t.join();
    }

    int totalThreads() const { return int(threads_.size()) + 1; }

    void
    run(size_t begin, size_t end, size_t grain,
        const ParallelBlockFn &fn, int max_threads)
    {
        // One job at a time; later callers wait here.
        std::lock_guard<std::mutex> job_lock(job_m_);
        {
            std::lock_guard<std::mutex> lock(m_);
            begin_ = begin;
            end_ = end;
            grain_ = grain;
            fn_ = &fn;
            cursor_.store(begin, std::memory_order_relaxed);
            active_.store(0, std::memory_order_relaxed);
            // Workers beyond the cap see no ticket and go back to
            // sleep without touching the job.
            tickets_.store(max_threads > 0 ? max_threads - 1
                                           : int(threads_.size()),
                           std::memory_order_relaxed);
            ++generation_;
        }
        wake_.notify_all();
        drainBlocks(fn);
        // All blocks are claimed; wait for stragglers still running
        // their final block.
        std::unique_lock<std::mutex> lock(m_);
        done_.wait(lock, [this] {
            return active_.load(std::memory_order_acquire) == 0;
        });
        fn_ = nullptr;
    }

  private:
    void
    drainBlocks(const ParallelBlockFn &fn)
    {
        for (;;) {
            const size_t lo =
                cursor_.fetch_add(grain_, std::memory_order_relaxed);
            if (lo >= end_)
                return;
            const size_t hi = std::min(end_, lo + grain_);
            fn(lo, hi);
        }
    }

    void
    workerLoop()
    {
        in_pool_worker = true;
        uint64_t seen = 0;
        for (;;) {
            const ParallelBlockFn *fn = nullptr;
            {
                std::unique_lock<std::mutex> lock(m_);
                wake_.wait(lock, [&] {
                    return stop_ || generation_ != seen;
                });
                if (stop_)
                    return;
                seen = generation_;
                if (tickets_.fetch_sub(1, std::memory_order_relaxed) <=
                    0)
                    continue; // over the caller's thread cap
                fn = fn_;
                if (fn == nullptr)
                    continue; // job already fully drained
                active_.fetch_add(1, std::memory_order_acq_rel);
            }
            drainBlocks(*fn);
            if (active_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lock(m_);
                done_.notify_all();
            }
        }
    }

    std::vector<std::thread> threads_;
    std::mutex job_m_; ///< serializes whole jobs
    std::mutex m_;     ///< guards the job fields below
    std::condition_variable wake_;
    std::condition_variable done_;
    bool stop_ = false;
    uint64_t generation_ = 0;
    size_t begin_ = 0, end_ = 0, grain_ = 1;
    const ParallelBlockFn *fn_ = nullptr;
    std::atomic<size_t> cursor_{0};
    std::atomic<int> active_{0};
    std::atomic<int> tickets_{0};
};

Pool &
pool()
{
    static Pool p;
    return p;
}

} // namespace

int
parallelWorkers()
{
    return pool().totalThreads();
}

void
parallelFor(size_t begin, size_t end, size_t min_grain,
            const ParallelBlockFn &fn, int max_threads)
{
    if (begin >= end)
        return;
    const size_t count = end - begin;
    if (min_grain == 0)
        min_grain = 1;
    const bool inline_only =
        in_pool_worker || count < 2 * min_grain ||
        parallelWorkers() <= 1 || max_threads == 1;
    if (inline_only) {
        fn(begin, end);
        return;
    }
    pool().run(begin, end, min_grain, fn, max_threads);
}

} // namespace qzz::common
