/**
 * @file
 * Process-wide metrics plane: named counters, gauges, and
 * fixed-log-bucket histograms behind one registry, rendered in the
 * Prometheus text exposition format (version 0.0.4).
 *
 * Design constraints, in order:
 *  - The hot path (Counter::inc, Histogram::observe) must be cheap
 *    enough to sit on every request: instruments are sharded
 *    cache-line-padded atomics, never locks.
 *  - Instruments are owned by the registry and live for its lifetime,
 *    so subsystems hold plain references across threads.
 *  - Registration is idempotent: asking for an existing
 *    (name, labels) pair returns the same instrument, which lets
 *    independently-constructed subsystems share one registry without
 *    coordination.
 *
 * The registry is instantiable (tests build private ones); the
 * serving daemon shares a single instance across CompileService,
 * ProgramCache, ArtifactGc, and CalibrationHub so one scrape sees the
 * whole process.  Metric names follow the qzz_<subsystem>_<name>
 * scheme catalogued in docs/observability.md.
 */

#ifndef QZZ_COMMON_TELEMETRY_H
#define QZZ_COMMON_TELEMETRY_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace qzz::tel {

/** Label set attached to one instrument; order is preserved in the
 *  exposition output. */
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/** Monotonic counter over sharded per-thread-striped atomics.  inc()
 *  is wait-free; value() sums the stripes (a point-in-time snapshot,
 *  monotone across calls). */
class Counter
{
  public:
    void inc(uint64_t n = 1);
    uint64_t value() const;

  private:
    friend class MetricsRegistry;
    Counter() = default;

    static constexpr size_t kShards = 16;
    struct alignas(64) Shard
    {
        std::atomic<uint64_t> v{0};
    };
    std::array<Shard, kShards> shards_{};
};

/** Last-write-wins instantaneous value (queue depth, tier bytes). */
class Gauge
{
  public:
    void set(double v);
    void add(double delta);
    double value() const;

  private:
    friend class MetricsRegistry;
    Gauge() = default;

    std::atomic<double> v_{0.0};
};

/** Histogram bucket layout: @p count finite upper bounds growing
 *  geometrically from @p first_bound by @p growth, plus an implicit
 *  +Inf overflow bucket. */
struct HistogramBuckets
{
    double first_bound = 0.01;
    double growth = 2.0;
    int count = 26;

    static HistogramBuckets logarithmic(double first_bound, double growth,
                                        int count);
    /** The finite upper bounds, ascending. */
    std::vector<double> bounds() const;
};

/** Consistent point-in-time copy of a histogram, the unit quantiles
 *  are derived from (one snapshot -> p50/p95/p99 that agree). */
struct HistogramSnapshot
{
    /** Finite upper bounds; counts has one extra +Inf slot. */
    std::vector<double> bounds;
    /** Per-bucket (non-cumulative) observation counts. */
    std::vector<uint64_t> counts;
    uint64_t count = 0;
    double sum = 0.0;

    /**
     * Quantile estimate by linear interpolation inside the owning
     * bucket (lower edge 0 for the first bucket).  Observations in
     * the +Inf bucket clamp to the largest finite bound.  Returns 0
     * for an empty histogram.  @p q in [0, 1].
     */
    double quantile(double q) const;
};

/** Fixed-log-bucket histogram over sharded atomics.  observe() is
 *  wait-free per bucket; unlike a ring reservoir nothing is ever
 *  overwritten, so quantiles weight the whole history. */
class Histogram
{
  public:
    void observe(double v);
    HistogramSnapshot snapshot() const;
    uint64_t count() const;
    double quantile(double q) const { return snapshot().quantile(q); }

  private:
    friend class MetricsRegistry;
    explicit Histogram(const HistogramBuckets &buckets);

    static constexpr size_t kShards = 4;
    struct Shard
    {
        std::unique_ptr<std::atomic<uint64_t>[]> counts;
    };

    std::vector<double> bounds_;
    std::array<Shard, kShards> shards_;
    std::atomic<double> sum_{0.0};
};

enum class MetricKind
{
    Counter,
    Gauge,
    Histogram,
};

/**
 * The instrument namespace: owns every Counter/Gauge/Histogram and
 * renders them.  All methods are thread-safe; the returned references
 * stay valid for the registry's lifetime.  Registering a name that
 * already exists with a different kind or bucket layout is a caller
 * error (UserError).
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter &counter(const std::string &name, const std::string &help,
                     const MetricLabels &labels = {});
    Gauge &gauge(const std::string &name, const std::string &help,
                 const MetricLabels &labels = {});
    Histogram &histogram(const std::string &name, const std::string &help,
                         const HistogramBuckets &buckets = {},
                         const MetricLabels &labels = {});

    /** Every registered metric name, sorted, unique. */
    std::vector<std::string> names() const;

    /** Full scrape payload in Prometheus text format 0.0.4: families
     *  sorted by name, each with # HELP / # TYPE, histograms expanded
     *  to cumulative _bucket{le=...} plus _sum and _count. */
    std::string renderPrometheus() const;

    /** The process-wide default registry (tools that do not plumb an
     *  explicit one). */
    static MetricsRegistry &global();

  private:
    struct Series
    {
        MetricLabels labels;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };
    struct Family
    {
        MetricKind kind = MetricKind::Counter;
        std::string help;
        std::vector<double> bounds; ///< histogram families only
        /** Keyed by the rendered label string for deterministic
         *  exposition order. */
        std::map<std::string, Series> series;
    };

    Family &familyFor(const std::string &name, const std::string &help,
                      MetricKind kind);

    mutable std::mutex mu_;
    std::map<std::string, Family> families_;
};

/** Escape a label value for the exposition format: backslash, double
 *  quote, and newline. */
std::string promEscapeLabel(const std::string &v);

/** Render a finite double the way the exposition output does
 *  (integral values without a fraction). */
std::string promFormatValue(double v);

} // namespace qzz::tel

#endif // QZZ_COMMON_TELEMETRY_H
