/**
 * @file
 * Shared data-parallel work pool.
 *
 * One lazily-created process-wide pool of hardware_concurrency - 1
 * worker threads backs every parallelFor() in the process: the
 * simulator's row-block kernel splits and Compiler::compileBatch()
 * both dispatch through it, so repeated calls never pay thread
 * creation again (the seed compileBatch() spawned a fresh
 * std::thread set per batch).
 *
 * Determinism contract: the range is pre-partitioned into fixed
 * contiguous blocks and every block is executed exactly once, so the
 * result of a parallelFor() whose blocks touch disjoint state is
 * identical to the sequential loop regardless of thread count or
 * interleaving.
 *
 * Nested calls (a parallelFor() issued from inside a worker) run
 * inline on the calling thread: the pool never deadlocks on itself.
 */

#ifndef QZZ_COMMON_PARALLEL_H
#define QZZ_COMMON_PARALLEL_H

#include <cstddef>
#include <functional>

namespace qzz::common {

/** Block body: processes the half-open index range [lo, hi). */
using ParallelBlockFn = std::function<void(size_t lo, size_t hi)>;

/**
 * Total number of threads parallelFor() can use, pool workers plus
 * the calling thread (>= 1; 1 means every call runs inline).
 */
int parallelWorkers();

/**
 * Run @p fn over [begin, end) as contiguous blocks executed across
 * the shared pool; the calling thread participates and the call
 * returns only when every block has finished.
 *
 * Runs inline (single thread) when the range is shorter than
 * 2 * @p min_grain, when the pool has no workers, or when called
 * from inside a pool worker.
 *
 * @param begin      first index.
 * @param end        one past the last index.
 * @param min_grain  smallest block size worth a dispatch; blocks are
 *                   never smaller (except the final remainder).
 * @param fn         block body; must only touch state disjoint
 *                   across blocks (callers get no synchronization
 *                   beyond the completion barrier).
 * @param max_threads cap on participating threads (0 = no cap).
 */
void parallelFor(size_t begin, size_t end, size_t min_grain,
                 const ParallelBlockFn &fn, int max_threads = 0);

} // namespace qzz::common

#endif // QZZ_COMMON_PARALLEL_H
