/**
 * @file
 * Physical unit conventions used throughout qzz.
 *
 * Everything is expressed in the (ns, rad/ns) system with hbar = 1:
 *  - time            : nanoseconds
 *  - angular frequency: rad/ns
 *  - ordinary frequency f relates to angular frequency w by w = 2*pi*f,
 *    with f measured in GHz (cycles per ns).
 *
 * The paper quotes crosstalk strengths as "lambda/2pi in MHz"; the
 * helpers below convert such quotes to rad/ns, e.g.
 * `mhz(0.2)` is the angular strength of a 200 kHz coupling.
 */

#ifndef QZZ_COMMON_UNITS_H
#define QZZ_COMMON_UNITS_H

#include <numbers>

namespace qzz {

/** 2*pi, used pervasively when converting cyclic to angular frequency. */
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/** pi. */
inline constexpr double kPi = std::numbers::pi;

/** Convert a frequency quoted in MHz to angular frequency in rad/ns. */
constexpr double
mhz(double f_mhz)
{
    return kTwoPi * f_mhz * 1e-3;
}

/** Convert a frequency quoted in kHz to angular frequency in rad/ns. */
constexpr double
khz(double f_khz)
{
    return kTwoPi * f_khz * 1e-6;
}

/** Convert a frequency quoted in GHz to angular frequency in rad/ns. */
constexpr double
ghz(double f_ghz)
{
    return kTwoPi * f_ghz;
}

/** Convert an angular frequency (rad/ns) back to MHz. */
constexpr double
toMhz(double w)
{
    return w / kTwoPi * 1e3;
}

/** Convert an angular frequency (rad/ns) back to kHz. */
constexpr double
toKhz(double w)
{
    return w / kTwoPi * 1e6;
}

/** Convert a duration quoted in microseconds to ns. */
constexpr double
us(double t_us)
{
    return t_us * 1e3;
}

} // namespace qzz

#endif // QZZ_COMMON_UNITS_H
