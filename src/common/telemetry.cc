#include "common/telemetry.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace qzz::tel {

namespace {

/** Stripe index for the calling thread: round-robin assignment at
 *  first use spreads threads evenly (a thread-id hash clusters). */
size_t
threadStripe()
{
    static std::atomic<size_t> next{0};
    thread_local const size_t stripe =
        next.fetch_add(1, std::memory_order_relaxed);
    return stripe;
}

/** fetch_add for atomic<double> via CAS: portable where the lock-free
 *  floating-point overload is not. */
void
atomicAddDouble(std::atomic<double> &target, double delta)
{
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed))
        ;
}

bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_' || c == ':';
    };
    if (!head(name[0]))
        return false;
    for (char c : name)
        if (!head(c) && !(c >= '0' && c <= '9'))
            return false;
    return true;
}

/** Render a label set as it appears on the wire ("{k=\"v\",...}" or
 *  empty); doubles as the series key, so equal label sets share one
 *  instrument. */
std::string
labelKey(const MetricLabels &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            out += ',';
        first = false;
        out += k;
        out += "=\"";
        out += promEscapeLabel(v);
        out += '"';
    }
    out += '}';
    return out;
}

/** Label key with le="bound" appended (histogram bucket series). */
std::string
bucketKey(const MetricLabels &labels, const std::string &le)
{
    std::string out = labels.empty() ? "{" : labelKey(labels);
    if (!labels.empty())
        out.back() = ','; // reopen: swap '}' for ','
    out += "le=\"";
    out += le;
    out += "\"}";
    return out;
}

const char *
kindName(MetricKind kind)
{
    switch (kind) {
    case MetricKind::Counter:
        return "counter";
    case MetricKind::Gauge:
        return "gauge";
    case MetricKind::Histogram:
        return "histogram";
    }
    return "untyped";
}

/** Escape a HELP line: the format reserves backslash and newline. */
std::string
escapeHelp(const std::string &help)
{
    std::string out;
    out.reserve(help.size());
    for (char c : help) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

} // namespace

// ---------------------------------------------------------------------------
// Counter

void
Counter::inc(uint64_t n)
{
    shards_[threadStripe() % kShards].v.fetch_add(
        n, std::memory_order_relaxed);
}

uint64_t
Counter::value() const
{
    uint64_t total = 0;
    for (const Shard &s : shards_)
        total += s.v.load(std::memory_order_relaxed);
    return total;
}

// ---------------------------------------------------------------------------
// Gauge

void
Gauge::set(double v)
{
    v_.store(v, std::memory_order_relaxed);
}

void
Gauge::add(double delta)
{
    atomicAddDouble(v_, delta);
}

double
Gauge::value() const
{
    return v_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram

HistogramBuckets
HistogramBuckets::logarithmic(double first_bound, double growth, int count)
{
    HistogramBuckets b;
    b.first_bound = first_bound;
    b.growth = growth;
    b.count = count;
    return b;
}

std::vector<double>
HistogramBuckets::bounds() const
{
    require(first_bound > 0.0,
            "HistogramBuckets: first_bound must be > 0");
    require(growth > 1.0, "HistogramBuckets: growth must be > 1");
    require(count >= 1 && count <= 128,
            "HistogramBuckets: count must be in [1, 128]");
    std::vector<double> out;
    out.reserve(size_t(count));
    double bound = first_bound;
    for (int i = 0; i < count; ++i) {
        out.push_back(bound);
        bound *= growth;
    }
    return out;
}

Histogram::Histogram(const HistogramBuckets &buckets)
    : bounds_(buckets.bounds())
{
    const size_t slots = bounds_.size() + 1; // +Inf overflow
    for (Shard &s : shards_) {
        s.counts = std::make_unique<std::atomic<uint64_t>[]>(slots);
        for (size_t i = 0; i < slots; ++i)
            s.counts[i].store(0, std::memory_order_relaxed);
    }
}

void
Histogram::observe(double v)
{
    if (std::isnan(v))
        return;
    if (v < 0.0)
        v = 0.0;
    // Prometheus buckets are inclusive upper bounds (v <= le), so the
    // owning bucket is the first bound >= v.
    const size_t idx = size_t(
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin());
    shards_[threadStripe() % kShards].counts[idx].fetch_add(
        1, std::memory_order_relaxed);
    atomicAddDouble(sum_, v);
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    snap.bounds = bounds_;
    snap.counts.assign(bounds_.size() + 1, 0);
    for (const Shard &s : shards_)
        for (size_t i = 0; i < snap.counts.size(); ++i)
            snap.counts[i] += s.counts[i].load(std::memory_order_relaxed);
    for (uint64_t c : snap.counts)
        snap.count += c;
    snap.sum = sum_.load(std::memory_order_relaxed);
    return snap;
}

uint64_t
Histogram::count() const
{
    uint64_t total = 0;
    for (const Shard &s : shards_)
        for (size_t i = 0; i < bounds_.size() + 1; ++i)
            total += s.counts[i].load(std::memory_order_relaxed);
    return total;
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::min(std::max(q, 0.0), 1.0);
    // Rank of the target observation (1-based, ceil: the classic
    // nearest-rank definition keeps p100 inside the data).
    const uint64_t rank =
        std::max<uint64_t>(1, uint64_t(std::ceil(q * double(count))));
    uint64_t seen = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0)
            continue;
        if (seen + counts[i] >= rank) {
            if (i >= bounds.size())
                // +Inf bucket: the histogram cannot resolve beyond
                // its largest finite bound.
                return bounds.empty() ? 0.0 : bounds.back();
            const double lower = i == 0 ? 0.0 : bounds[i - 1];
            const double upper = bounds[i];
            const double into = double(rank - seen) / double(counts[i]);
            return lower + (upper - lower) * into;
        }
        seen += counts[i];
    }
    return bounds.empty() ? 0.0 : bounds.back();
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry::Family &
MetricsRegistry::familyFor(const std::string &name, const std::string &help,
                           MetricKind kind)
{
    require(validMetricName(name),
            "MetricsRegistry: invalid metric name \"" + name + "\"");
    auto it = families_.find(name);
    if (it == families_.end()) {
        Family family;
        family.kind = kind;
        family.help = help;
        it = families_.emplace(name, std::move(family)).first;
    } else {
        require(it->second.kind == kind,
                "MetricsRegistry: \"" + name + "\" already registered as " +
                    kindName(it->second.kind));
    }
    return it->second;
}

Counter &
MetricsRegistry::counter(const std::string &name, const std::string &help,
                         const MetricLabels &labels)
{
    std::lock_guard<std::mutex> lock(mu_);
    Family &family = familyFor(name, help, MetricKind::Counter);
    Series &series = family.series[labelKey(labels)];
    if (!series.counter) {
        series.labels = labels;
        series.counter.reset(new Counter());
    }
    return *series.counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const std::string &help,
                       const MetricLabels &labels)
{
    std::lock_guard<std::mutex> lock(mu_);
    Family &family = familyFor(name, help, MetricKind::Gauge);
    Series &series = family.series[labelKey(labels)];
    if (!series.gauge) {
        series.labels = labels;
        series.gauge.reset(new Gauge());
    }
    return *series.gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name, const std::string &help,
                           const HistogramBuckets &buckets,
                           const MetricLabels &labels)
{
    std::lock_guard<std::mutex> lock(mu_);
    Family &family = familyFor(name, help, MetricKind::Histogram);
    if (family.bounds.empty())
        family.bounds = buckets.bounds();
    else
        require(family.bounds == buckets.bounds(),
                "MetricsRegistry: \"" + name +
                    "\" already registered with different buckets");
    Series &series = family.series[labelKey(labels)];
    if (!series.histogram) {
        series.labels = labels;
        series.histogram.reset(new Histogram(buckets));
    }
    return *series.histogram;
}

std::vector<std::string>
MetricsRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(families_.size());
    for (const auto &[name, family] : families_)
        out.push_back(name);
    return out;
}

std::string
MetricsRegistry::renderPrometheus() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    for (const auto &[name, family] : families_) {
        out += "# HELP " + name + " " + escapeHelp(family.help) + "\n";
        out += "# TYPE " + name + " " + kindName(family.kind) + "\n";
        for (const auto &[key, series] : family.series) {
            switch (family.kind) {
            case MetricKind::Counter:
                out += name + key + " " +
                       std::to_string(series.counter->value()) + "\n";
                break;
            case MetricKind::Gauge:
                out += name + key + " " +
                       promFormatValue(series.gauge->value()) + "\n";
                break;
            case MetricKind::Histogram: {
                const HistogramSnapshot snap = series.histogram->snapshot();
                uint64_t cumulative = 0;
                for (size_t i = 0; i < snap.bounds.size(); ++i) {
                    cumulative += snap.counts[i];
                    out += name + "_bucket" +
                           bucketKey(series.labels,
                                     promFormatValue(snap.bounds[i])) +
                           " " + std::to_string(cumulative) + "\n";
                }
                out += name + "_bucket" + bucketKey(series.labels, "+Inf") +
                       " " + std::to_string(snap.count) + "\n";
                out += name + "_sum" + key + " " +
                       promFormatValue(snap.sum) + "\n";
                out += name + "_count" + key + " " +
                       std::to_string(snap.count) + "\n";
                break;
            }
            }
        }
    }
    return out;
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

// ---------------------------------------------------------------------------
// Formatting helpers

std::string
promEscapeLabel(const std::string &v)
{
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

std::string
promFormatValue(double v)
{
    if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", v);
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    return buf;
}

} // namespace qzz::tel
