/**
 * @file
 * Minimal aligned-table / CSV reporter used by the benchmark harnesses
 * to print the rows and series of each paper figure.
 */

#ifndef QZZ_COMMON_TABLE_H
#define QZZ_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace qzz {

/** A column-aligned text table with an optional title. */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Set a title printed above the table. */
    void setTitle(const std::string &title) { title_ = title; }

    /** Append a fully formed row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows. */
    size_t rows() const { return rows_.size(); }

    /** Render with aligned columns. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment padding). */
    void printCsv(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits significant digits. */
std::string formatG(double v, int digits = 5);

/** Format a double in fixed notation with @p digits decimals. */
std::string formatF(double v, int digits = 3);

/** Format a ratio as e.g. "12.3x". */
std::string formatX(double v, int digits = 1);

} // namespace qzz

#endif // QZZ_COMMON_TABLE_H
