#include "circuit/decompose.h"

#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace qzz::ckt {

namespace {

/** Wrap an angle to (-pi, pi] for tidy RZ parameters. */
double
wrapAngle(double a)
{
    while (a > kPi)
        a -= kTwoPi;
    while (a <= -kPi)
        a += kTwoPi;
    return a;
}

/** Emit U3(theta, phi, lambda) as RZ/SX natives (ZXZXZ identity). */
void
emitU3(int q, double theta, double phi, double lambda, QuantumCircuit &out)
{
    // U3(theta, phi, lambda) ~ RZ(phi + pi) SX RZ(theta + pi) SX
    //                          RZ(lambda)   (right-to-left operators)
    // i.e. circuit order: RZ(lambda), SX, RZ(theta+pi), SX, RZ(phi+pi).
    out.rz(q, wrapAngle(lambda));
    out.sx(q);
    out.rz(q, wrapAngle(theta + kPi));
    out.sx(q);
    out.rz(q, wrapAngle(phi + kPi));
}

/** Emit CX(c, t) through the native RZX(pi/2). */
void
emitCx(int c, int t, QuantumCircuit &out)
{
    // CX = (RZ(-pi/2)_c (x) [RZ(pi) SX RZ(pi)]_t) . RZX(pi/2)
    // up to global phase; circuit order below.
    out.rzx(c, t, kPi / 2.0);
    out.rz(t, kPi);
    out.sx(t);
    out.rz(t, kPi);
    out.rz(c, -kPi / 2.0);
}

} // namespace

void
emitNative(const Gate &g, QuantumCircuit &out)
{
    const int q0 = g.qubits[0];
    const int q1 = g.qubits.size() > 1 ? g.qubits[1] : -1;
    auto p = [&](size_t i) { return g.params[i]; };

    switch (g.kind) {
    case GateKind::SX:
    case GateKind::I:
    case GateKind::RZ:
        out.add(g);
        return;
    case GateKind::RZX:
        require(std::abs(p(0) - kPi / 2.0) < 1e-12,
                "emitNative: only RZX(pi/2) is native");
        out.add(g);
        return;

    case GateKind::Z:
        out.rz(q0, kPi);
        return;
    case GateKind::S:
        out.rz(q0, kPi / 2.0);
        return;
    case GateKind::SDG:
        out.rz(q0, -kPi / 2.0);
        return;
    case GateKind::T:
        out.rz(q0, kPi / 4.0);
        return;
    case GateKind::TDG:
        out.rz(q0, -kPi / 4.0);
        return;

    case GateKind::X:
        out.sx(q0);
        out.sx(q0);
        return;
    case GateKind::Y:
        emitU3(q0, kPi, kPi / 2.0, kPi / 2.0, out);
        return;
    case GateKind::H:
        // H ~ RZ(pi/2) SX RZ(pi/2) up to global phase.
        out.rz(q0, kPi / 2.0);
        out.sx(q0);
        out.rz(q0, kPi / 2.0);
        return;
    case GateKind::RX:
        emitU3(q0, p(0), -kPi / 2.0, kPi / 2.0, out);
        return;
    case GateKind::RY:
        emitU3(q0, p(0), 0.0, 0.0, out);
        return;
    case GateKind::U3:
        emitU3(q0, p(0), p(1), p(2), out);
        return;

    case GateKind::CX:
        emitCx(q0, q1, out);
        return;
    case GateKind::CZ:
        // CZ = (I (x) H) CX (I (x) H).
        emitNative({GateKind::H, {q1}}, out);
        emitCx(q0, q1, out);
        emitNative({GateKind::H, {q1}}, out);
        return;
    case GateKind::CP: {
        // CP(th) ~ RZ(th/2)_a RZ(th/2)_b CX (I (x) RZ(-th/2)) CX.
        const double th = p(0);
        emitCx(q0, q1, out);
        out.rz(q1, wrapAngle(-th / 2.0));
        emitCx(q0, q1, out);
        out.rz(q0, wrapAngle(th / 2.0));
        out.rz(q1, wrapAngle(th / 2.0));
        return;
    }
    case GateKind::RZZ: {
        const double th = p(0);
        emitCx(q0, q1, out);
        out.rz(q1, wrapAngle(th));
        emitCx(q0, q1, out);
        return;
    }
    case GateKind::SWAP:
        emitCx(q0, q1, out);
        emitCx(q1, q0, out);
        emitCx(q0, q1, out);
        return;
    }
    panic("emitNative: unhandled gate kind");
}

QuantumCircuit
decomposeToNative(const QuantumCircuit &circuit)
{
    QuantumCircuit out(circuit.numQubits(), circuit.name());
    for (const Gate &g : circuit.gates())
        emitNative(g, out);
    return mergeRz(out);
}

QuantumCircuit
mergeRz(const QuantumCircuit &circuit)
{
    QuantumCircuit out(circuit.numQubits(), circuit.name());
    // Pending RZ angle per qubit, flushed before any non-RZ gate that
    // touches the qubit.
    std::vector<double> pending(size_t(circuit.numQubits()), 0.0);
    auto flush = [&](int q) {
        const double a = wrapAngle(pending[q]);
        if (std::abs(a) > 1e-12)
            out.rz(q, a);
        pending[q] = 0.0;
    };
    for (const Gate &g : circuit.gates()) {
        if (g.kind == GateKind::RZ) {
            pending[g.qubits[0]] += g.params[0];
            continue;
        }
        for (int q : g.qubits)
            flush(q);
        out.add(g);
    }
    for (int q = 0; q < circuit.numQubits(); ++q)
        flush(q);
    return out;
}

} // namespace qzz::ckt
