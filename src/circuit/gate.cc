#include "circuit/gate.h"

#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/units.h"
#include "linalg/expm.h"

namespace qzz::ckt {

using la::CMatrix;
using la::cplx;
using la::kI;

bool
Gate::isNative() const
{
    switch (kind) {
    case GateKind::SX:
    case GateKind::I:
    case GateKind::RZ:
        return true;
    case GateKind::RZX:
        return params.size() == 1 &&
               std::abs(params[0] - kPi / 2.0) < 1e-12;
    default:
        return false;
    }
}

std::string
Gate::toString() const
{
    std::ostringstream ss;
    ss << gateKindName(kind);
    if (!params.empty()) {
        ss << "(";
        for (size_t i = 0; i < params.size(); ++i)
            ss << (i ? "," : "") << params[i];
        ss << ")";
    }
    ss << "[";
    for (size_t i = 0; i < qubits.size(); ++i)
        ss << (i ? "," : "") << qubits[i];
    ss << "]";
    return ss.str();
}

std::string
gateKindName(GateKind k)
{
    switch (k) {
    case GateKind::SX:
        return "SX";
    case GateKind::I:
        return "I";
    case GateKind::RZX:
        return "RZX";
    case GateKind::RZ:
        return "RZ";
    case GateKind::X:
        return "X";
    case GateKind::Y:
        return "Y";
    case GateKind::Z:
        return "Z";
    case GateKind::H:
        return "H";
    case GateKind::S:
        return "S";
    case GateKind::SDG:
        return "SDG";
    case GateKind::T:
        return "T";
    case GateKind::TDG:
        return "TDG";
    case GateKind::RX:
        return "RX";
    case GateKind::RY:
        return "RY";
    case GateKind::U3:
        return "U3";
    case GateKind::CX:
        return "CX";
    case GateKind::CZ:
        return "CZ";
    case GateKind::CP:
        return "CP";
    case GateKind::RZZ:
        return "RZZ";
    case GateKind::SWAP:
        return "SWAP";
    }
    return "?";
}

int
gateArity(GateKind k)
{
    switch (k) {
    case GateKind::RZX:
    case GateKind::CX:
    case GateKind::CZ:
    case GateKind::CP:
    case GateKind::RZZ:
    case GateKind::SWAP:
        return 2;
    default:
        return 1;
    }
}

namespace {

CMatrix
rz(double theta)
{
    return CMatrix{{std::exp(-kI * theta / 2.0), 0.0},
                   {0.0, std::exp(kI * theta / 2.0)}};
}

CMatrix
rx(double theta)
{
    const double c = std::cos(theta / 2.0), s = std::sin(theta / 2.0);
    return CMatrix{{c, -kI * s}, {-kI * s, c}};
}

CMatrix
ry(double theta)
{
    const double c = std::cos(theta / 2.0), s = std::sin(theta / 2.0);
    return CMatrix{{c, -s}, {s, c}};
}

CMatrix
u3(double theta, double phi, double lambda)
{
    // Standard OpenQASM U3 definition.
    const double c = std::cos(theta / 2.0), s = std::sin(theta / 2.0);
    return CMatrix{
        {c, -std::exp(kI * lambda) * s},
        {std::exp(kI * phi) * s, std::exp(kI * (phi + lambda)) * c}};
}

} // namespace

CMatrix
gateMatrix(const Gate &g)
{
    auto p = [&](size_t i) {
        require(i < g.params.size(),
                "gateMatrix: missing parameter for " + g.toString());
        return g.params[i];
    };
    switch (g.kind) {
    case GateKind::SX:
        return rx(kPi / 2.0);
    case GateKind::I:
        return CMatrix::identity(2);
    case GateKind::RZ:
        return rz(p(0));
    case GateKind::X:
        return la::pauliX();
    case GateKind::Y:
        return la::pauliY();
    case GateKind::Z:
        return la::pauliZ();
    case GateKind::H: {
        const double r = 1.0 / std::sqrt(2.0);
        return CMatrix{{r, r}, {r, -r}};
    }
    case GateKind::S:
        return CMatrix{{1.0, 0.0}, {0.0, kI}};
    case GateKind::SDG:
        return CMatrix{{1.0, 0.0}, {0.0, -kI}};
    case GateKind::T:
        return CMatrix{{1.0, 0.0}, {0.0, std::exp(kI * kPi / 4.0)}};
    case GateKind::TDG:
        return CMatrix{{1.0, 0.0}, {0.0, std::exp(-kI * kPi / 4.0)}};
    case GateKind::RX:
        return rx(p(0));
    case GateKind::RY:
        return ry(p(0));
    case GateKind::U3:
        return u3(p(0), p(1), p(2));
    case GateKind::RZX:
        // exp(-i theta/2 Z (x) X), first qubit = Z factor.
        return la::expInvolutory(kron(la::pauliZ(), la::pauliX()),
                                 p(0) / 2.0);
    case GateKind::CX:
        return CMatrix{{1, 0, 0, 0},
                       {0, 1, 0, 0},
                       {0, 0, 0, 1},
                       {0, 0, 1, 0}};
    case GateKind::CZ:
        return CMatrix{{1, 0, 0, 0},
                       {0, 1, 0, 0},
                       {0, 0, 1, 0},
                       {0, 0, 0, -1}};
    case GateKind::CP: {
        CMatrix m = CMatrix::identity(4);
        m(3, 3) = std::exp(kI * p(0));
        return m;
    }
    case GateKind::RZZ:
        return la::expInvolutory(kron(la::pauliZ(), la::pauliZ()),
                                 p(0) / 2.0);
    case GateKind::SWAP:
        return CMatrix{{1, 0, 0, 0},
                       {0, 0, 1, 0},
                       {0, 1, 0, 0},
                       {0, 0, 0, 1}};
    }
    panic("gateMatrix: unhandled gate kind");
}

} // namespace qzz::ckt
