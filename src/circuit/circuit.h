/**
 * @file
 * Quantum circuits: an ordered gate list over n qubits, with fluent
 * builder helpers used by the benchmark generators and tests.
 */

#ifndef QZZ_CIRCUIT_CIRCUIT_H
#define QZZ_CIRCUIT_CIRCUIT_H

#include <string>
#include <vector>

#include "circuit/gate.h"

namespace qzz::ckt {

/** An ordered list of gates over a fixed-size qubit register. */
class QuantumCircuit
{
  public:
    QuantumCircuit() = default;

    /** @param num_qubits register size.
     *  @param name optional display name. */
    explicit QuantumCircuit(int num_qubits, std::string name = "");

    int numQubits() const { return num_qubits_; }
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    const std::vector<Gate> &gates() const { return gates_; }
    size_t size() const { return gates_.size(); }
    bool empty() const { return gates_.empty(); }

    /** Append a gate (validates qubit indices and arity). */
    void add(Gate g);

    /** @name Builder helpers
     *  @{ */
    void h(int q) { add({GateKind::H, {q}}); }
    void x(int q) { add({GateKind::X, {q}}); }
    void y(int q) { add({GateKind::Y, {q}}); }
    void z(int q) { add({GateKind::Z, {q}}); }
    void s(int q) { add({GateKind::S, {q}}); }
    void t(int q) { add({GateKind::T, {q}}); }
    void sx(int q) { add({GateKind::SX, {q}}); }
    void idle(int q) { add({GateKind::I, {q}}); }
    void rz(int q, double a) { add({GateKind::RZ, {q}, {a}}); }
    void rx(int q, double a) { add({GateKind::RX, {q}, {a}}); }
    void ry(int q, double a) { add({GateKind::RY, {q}, {a}}); }
    void
    u3(int q, double th, double ph, double la)
    {
        add({GateKind::U3, {q}, {th, ph, la}});
    }
    void cx(int c, int t) { add({GateKind::CX, {c, t}}); }
    void cz(int a, int b) { add({GateKind::CZ, {a, b}}); }
    void cp(int a, int b, double th) { add({GateKind::CP, {a, b}, {th}}); }
    void rzz(int a, int b, double th) { add({GateKind::RZZ, {a, b}, {th}}); }
    void swap(int a, int b) { add({GateKind::SWAP, {a, b}}); }
    void rzx(int a, int b, double th) { add({GateKind::RZX, {a, b}, {th}}); }
    /** @} */

    /** Count of two-qubit gates. */
    int twoQubitCount() const;

    /** True when every gate is in the native set. */
    bool isNative() const;

    /** Total unitary of the circuit (small registers only). */
    la::CMatrix unitary() const;

  private:
    int num_qubits_ = 0;
    std::string name_;
    std::vector<Gate> gates_;
};

} // namespace qzz::ckt

#endif // QZZ_CIRCUIT_CIRCUIT_H
