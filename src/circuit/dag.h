/**
 * @file
 * Dependency tracking over a circuit: the schedulable-gate frontier.
 *
 * A gate is *schedulable* once every earlier gate sharing a qubit with
 * it has been scheduled (footnote 2 of the paper).  Both schedulers
 * (ParSched and ZZXSched) iterate this frontier.
 */

#ifndef QZZ_CIRCUIT_DAG_H
#define QZZ_CIRCUIT_DAG_H

#include <vector>

#include "circuit/circuit.h"

namespace qzz::ckt {

/** Tracks which gates of a circuit are currently schedulable. */
class DagFrontier
{
  public:
    explicit DagFrontier(const QuantumCircuit &circuit);

    /** Indices (into circuit.gates()) of schedulable gates, in
     *  program order. */
    std::vector<int> schedulable() const;

    /** Mark a schedulable gate as scheduled; fatal() if it is not
     *  currently schedulable. */
    void markScheduled(int gate_index);

    /** True once every gate has been scheduled. */
    bool done() const { return scheduled_count_ == int(order_.size()); }

    /** Number of gates scheduled so far. */
    int scheduledCount() const { return scheduled_count_; }

  private:
    const QuantumCircuit &circuit_;
    /** Per-qubit timeline of gate indices. */
    std::vector<std::vector<int>> timeline_;
    /** Per-qubit cursor into the timeline. */
    std::vector<size_t> cursor_;
    /** All gate indices in order (for done()). */
    std::vector<int> order_;
    std::vector<char> is_scheduled_;
    int scheduled_count_ = 0;

    bool isSchedulable(int gate_index) const;
};

} // namespace qzz::ckt

#endif // QZZ_CIRCUIT_DAG_H
