#include "circuit/benchmarks.h"

#include <algorithm>
#include <functional>
#include <set>

#include "common/error.h"
#include "common/strings.h"
#include "common/units.h"

namespace qzz::ckt {

QuantumCircuit
hiddenShift(int n, Rng &rng)
{
    require(n >= 2 && n % 2 == 0, "hiddenShift: n must be even");
    QuantumCircuit c(n, "HS-" + std::to_string(n));
    std::vector<int> shift(static_cast<size_t>(n), 0);
    for (int q = 0; q < n; ++q)
        shift[q] = rng.uniformInt(0, 1);

    auto oracle = [&]() {
        for (int i = 0; i + 1 < n; i += 2)
            c.cz(i, i + 1);
    };

    for (int q = 0; q < n; ++q)
        c.h(q);
    for (int q = 0; q < n; ++q)
        if (shift[q])
            c.x(q);
    oracle();
    for (int q = 0; q < n; ++q)
        if (shift[q])
            c.x(q);
    for (int q = 0; q < n; ++q)
        c.h(q);
    oracle();
    for (int q = 0; q < n; ++q)
        c.h(q);
    return c;
}

QuantumCircuit
qft(int n)
{
    require(n >= 1, "qft: bad size");
    QuantumCircuit c(n, "QFT-" + std::to_string(n));
    for (int i = 0; i < n; ++i) {
        c.h(i);
        for (int j = i + 1; j < n; ++j)
            c.cp(j, i, kPi / double(1 << (j - i)));
    }
    for (int i = 0; i < n / 2; ++i)
        c.swap(i, n - 1 - i);
    return c;
}

QuantumCircuit
qpe(int n)
{
    require(n >= 2, "qpe: need a counting register and a target");
    QuantumCircuit c(n, "QPE-" + std::to_string(n));
    const int t = n - 1;      // counting qubits 0..t-1
    const int target = n - 1; // eigenstate qubit
    const double phase = kTwoPi * 5.0 / 16.0;

    c.x(target); // |1> is the RZ eigenstate with eigenphase e^{i a/2}
    for (int k = 0; k < t; ++k)
        c.h(k);
    // Counting qubit k controls U^{2^{t-1-k}} so that qubit 0 is the
    // most significant phase bit.
    for (int k = 0; k < t; ++k)
        c.cp(k, target, phase * double(1 << (t - 1 - k)));

    // Inverse QFT on the counting register: the exact dagger of the
    // qft() circuit (swaps first, then the reversed H/CP ladder).
    const QuantumCircuit fwd = qft(t);
    for (auto it = fwd.gates().rbegin(); it != fwd.gates().rend();
         ++it) {
        Gate g = *it;
        if (g.kind == GateKind::CP)
            g.params[0] = -g.params[0];
        c.add(std::move(g)); // H and SWAP are self-inverse
    }
    return c;
}

QuantumCircuit
qaoaMaxCut(int n, int p, Rng &rng)
{
    require(n >= 3 && p >= 1, "qaoaMaxCut: bad parameters");
    QuantumCircuit c(n, "QAOA-" + std::to_string(n));

    // Problem graph: ring plus ~n/2 random chords (deduplicated).
    std::set<std::pair<int, int>> edges;
    for (int v = 0; v < n; ++v)
        edges.insert({std::min(v, (v + 1) % n), std::max(v, (v + 1) % n)});
    int chords = n / 2;
    for (int attempt = 0; attempt < 20 * chords && chords > 0; ++attempt) {
        int a = rng.uniformInt(0, n - 1), b = rng.uniformInt(0, n - 1);
        if (a == b)
            continue;
        auto e = std::make_pair(std::min(a, b), std::max(a, b));
        if (edges.insert(e).second)
            --chords;
    }

    for (int q = 0; q < n; ++q)
        c.h(q);
    for (int round = 0; round < p; ++round) {
        const double gamma = rng.uniform(0.2, 1.2);
        const double beta = rng.uniform(0.2, 1.2);
        for (const auto &[a, b] : edges)
            c.rzz(a, b, 2.0 * gamma);
        for (int q = 0; q < n; ++q)
            c.rx(q, 2.0 * beta);
    }
    return c;
}

QuantumCircuit
isingChain(int n, int steps)
{
    require(n >= 2 && steps >= 1, "isingChain: bad parameters");
    QuantumCircuit c(n, "Ising-" + std::to_string(n));
    const double j_coupling = 1.0, field = 1.0, dt = 0.2;
    for (int q = 0; q < n; ++q)
        c.h(q); // start from |+...+>
    for (int s = 0; s < steps; ++s) {
        for (int q = 0; q + 1 < n; ++q)
            c.rzz(q, q + 1, 2.0 * j_coupling * dt);
        for (int q = 0; q < n; ++q)
            c.rx(q, 2.0 * field * dt);
    }
    return c;
}

QuantumCircuit
googleRandom(int n, int depth, Rng &rng)
{
    require(n >= 2 && depth >= 1, "googleRandom: bad parameters");
    QuantumCircuit c(n, "GRC-" + std::to_string(n));
    // Random 1q gates never repeat on the same qubit in consecutive
    // layers (the GRC rule); entanglers are CZ on alternating pairs.
    std::vector<int> last(size_t(n), -1);
    for (int layer = 0; layer < depth; ++layer) {
        for (int q = 0; q < n; ++q) {
            int pick = rng.uniformInt(0, 2);
            if (pick == last[q])
                pick = (pick + 1) % 3;
            last[q] = pick;
            switch (pick) {
            case 0:
                c.sx(q);
                break;
            case 1:
                c.ry(q, kPi / 2.0);
                break;
            default:
                c.t(q);
                break;
            }
        }
        for (int i = layer % 2; i + 1 < n; i += 2)
            c.cz(i, i + 1);
    }
    return c;
}

QuantumCircuit
quantumVolume(int n, int depth, Rng &rng)
{
    require(n >= 2 && depth >= 1, "quantumVolume: bad parameters");
    QuantumCircuit c(n, "QV-" + std::to_string(n));
    auto random_u3 = [&](int q) {
        c.u3(q, rng.uniform(0.0, kPi), rng.uniform(0.0, kTwoPi),
             rng.uniform(0.0, kTwoPi));
    };
    for (int layer = 0; layer < depth; ++layer) {
        std::vector<int> order(static_cast<size_t>(n), 0);
        for (int q = 0; q < n; ++q)
            order[q] = q;
        rng.shuffle(order);
        for (int i = 0; i + 1 < n; i += 2) {
            const int a = order[i], b = order[i + 1];
            // A generic (QV-style) SU(4) block: 3 CX + local U3s.
            random_u3(a);
            random_u3(b);
            for (int rep = 0; rep < 3; ++rep) {
                c.cx(a, b);
                random_u3(a);
                random_u3(b);
            }
        }
    }
    return c;
}

namespace {

void
addSized(std::vector<BenchmarkInstance> &out, const std::string &family,
         const std::vector<int> &sizes, Rng &rng,
         const std::function<QuantumCircuit(int, Rng &)> &gen)
{
    for (int n : sizes) {
        Rng child = rng.split();
        out.push_back({family + "-" + std::to_string(n), gen(n, child)});
    }
}

} // namespace

std::optional<QuantumCircuit>
namedBenchmark(std::string_view family, int n, uint64_t seed)
{
    Rng rng(seed);
    QuantumCircuit c;
    // The canonical spelling names the circuit, so case-variant
    // requests ("qft" vs "QFT") build byte-identical circuits.
    std::string canon;
    if (iequalsAscii(family, "HS") ||
        iequalsAscii(family, "HiddenShift")) {
        c = hiddenShift(n, rng);
        canon = "HS";
    } else if (iequalsAscii(family, "QFT")) {
        c = qft(n);
        canon = "QFT";
    } else if (iequalsAscii(family, "QPE")) {
        c = qpe(n);
        canon = "QPE";
    } else if (iequalsAscii(family, "QAOA")) {
        c = qaoaMaxCut(n, 1, rng);
        canon = "QAOA";
    } else if (iequalsAscii(family, "Ising")) {
        c = isingChain(n, 2);
        canon = "Ising";
    } else if (iequalsAscii(family, "GRC")) {
        c = googleRandom(n, 6, rng);
        canon = "GRC";
    } else if (iequalsAscii(family, "QV")) {
        c = quantumVolume(n, 2, rng);
        canon = "QV";
    } else {
        return std::nullopt;
    }
    c.setName(canon + "-" + std::to_string(n));
    return c;
}

const std::vector<std::string> &
benchmarkFamilyNames()
{
    static const std::vector<std::string> names = {
        "HS", "QFT", "QPE", "QAOA", "Ising", "GRC", "QV"};
    return names;
}

std::vector<BenchmarkInstance>
paperBenchmarkSuite(Rng &rng)
{
    std::vector<BenchmarkInstance> out;
    addSized(out, "HS", {4, 6, 12}, rng,
             [](int n, Rng &r) { return hiddenShift(n, r); });
    addSized(out, "QFT", {4, 6, 9}, rng,
             [](int n, Rng &) { return qft(n); });
    addSized(out, "QPE", {4, 6, 9}, rng,
             [](int n, Rng &) { return qpe(n); });
    addSized(out, "QAOA", {4, 6, 9, 12}, rng,
             [](int n, Rng &r) { return qaoaMaxCut(n, 1, r); });
    addSized(out, "Ising", {4, 6, 9, 12}, rng,
             [](int n, Rng &) { return isingChain(n, 2); });
    addSized(out, "GRC", {4, 6, 9, 12}, rng,
             [](int n, Rng &r) { return googleRandom(n, 6, r); });
    return out;
}

std::vector<BenchmarkInstance>
paperBenchmarkSuiteWithQv(Rng &rng)
{
    std::vector<BenchmarkInstance> out = paperBenchmarkSuite(rng);
    addSized(out, "QV", {4, 6, 9, 12}, rng,
             [](int n, Rng &r) { return quantumVolume(n, 2, r); });
    return out;
}

} // namespace qzz::ckt
