/**
 * @file
 * The paper's benchmark circuits (Sec. 7.3): Hidden Shift, QFT, QPE,
 * QAOA, Ising-model simulation, Google Random Circuits, and (for the
 * tunable-coupler study, Fig. 25) Quantum Volume.
 *
 * Generators emit high-level logical circuits; the router + native
 * decomposition adapt them to a device.  All randomness flows through
 * an explicit Rng so suites are reproducible.
 */

#ifndef QZZ_CIRCUIT_BENCHMARKS_H
#define QZZ_CIRCUIT_BENCHMARKS_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/circuit.h"
#include "common/rng.h"

namespace qzz::ckt {

/** Hidden Shift over a bent function f(x) = sum x_{2i} x_{2i+1};
 *  ideal output is the computational basis state |shift>.
 *  @param n even qubit count. */
QuantumCircuit hiddenShift(int n, Rng &rng);

/** Textbook quantum Fourier transform with final qubit reversal. */
QuantumCircuit qft(int n);

/** Quantum phase estimation of an RZ phase using n-1 counting qubits
 *  and one eigenstate qubit. */
QuantumCircuit qpe(int n);

/** p-round QAOA for MaxCut on a ring plus random chords. */
QuantumCircuit qaoaMaxCut(int n, int p, Rng &rng);

/** First-order Trotterized transverse-field Ising chain. */
QuantumCircuit isingChain(int n, int steps);

/** Google-random-circuit style layers: random 1q gates + patterned
 *  CZ entanglers. */
QuantumCircuit googleRandom(int n, int depth, Rng &rng);

/** Quantum-volume style layers of random paired SU(4) blocks. */
QuantumCircuit quantumVolume(int n, int depth, Rng &rng);

/** A named benchmark instance. */
struct BenchmarkInstance
{
    std::string label; ///< e.g. "QFT-6"
    QuantumCircuit circuit;
};

/**
 * Build a paper benchmark by family name with the depths the suite
 * uses (QAOA p=1, Ising 2 steps, GRC depth 6, QV depth 2).  Families
 * (ASCII case-insensitive): "HS"/"HiddenShift", "QFT", "QPE", "QAOA",
 * "Ising", "GRC", "QV".  Randomness flows from the explicit @p seed
 * only, so callers such as the compile service's request front-end
 * are deterministic end to end.  nullopt for an unknown family;
 * invalid sizes for the family fatal() as the generators do.
 */
std::optional<QuantumCircuit> namedBenchmark(std::string_view family,
                                             int n, uint64_t seed);

/** The family names namedBenchmark() accepts (canonical spellings). */
const std::vector<std::string> &benchmarkFamilyNames();

/** The 21 instances of Figs. 20-24:
 *  HS-{4,6,12}, QFT-{4,6,9}, QPE-{4,6,9}, QAOA/Ising/GRC-{4,6,9,12}. */
std::vector<BenchmarkInstance> paperBenchmarkSuite(Rng &rng);

/** The Fig. 25 suite: the above plus QV-{4,6,9,12}. */
std::vector<BenchmarkInstance> paperBenchmarkSuiteWithQv(Rng &rng);

} // namespace qzz::ckt

#endif // QZZ_CIRCUIT_BENCHMARKS_H
