#include "circuit/circuit.h"

#include "common/error.h"

namespace qzz::ckt {

QuantumCircuit::QuantumCircuit(int num_qubits, std::string name)
    : num_qubits_(num_qubits), name_(std::move(name))
{
    require(num_qubits >= 1, "QuantumCircuit: need at least one qubit");
}

void
QuantumCircuit::add(Gate g)
{
    require(int(g.qubits.size()) == gateArity(g.kind),
            "QuantumCircuit::add: wrong operand count for " +
                gateKindName(g.kind));
    for (size_t i = 0; i < g.qubits.size(); ++i) {
        require(g.qubits[i] >= 0 && g.qubits[i] < num_qubits_,
                "QuantumCircuit::add: qubit out of range in " +
                    g.toString());
        for (size_t j = i + 1; j < g.qubits.size(); ++j)
            require(g.qubits[i] != g.qubits[j],
                    "QuantumCircuit::add: duplicate operand in " +
                        g.toString());
    }
    gates_.push_back(std::move(g));
}

int
QuantumCircuit::twoQubitCount() const
{
    int n = 0;
    for (const Gate &g : gates_)
        if (g.isTwoQubit())
            ++n;
    return n;
}

bool
QuantumCircuit::isNative() const
{
    for (const Gate &g : gates_)
        if (!g.isNative())
            return false;
    return true;
}

la::CMatrix
QuantumCircuit::unitary() const
{
    require(num_qubits_ <= 12,
            "QuantumCircuit::unitary: register too large");
    la::CMatrix u = la::CMatrix::identity(size_t(1) << num_qubits_);
    for (const Gate &g : gates_) {
        la::CMatrix gm =
            la::embed(gateMatrix(g), g.qubits, num_qubits_);
        u = gm * u;
    }
    return u;
}

} // namespace qzz::ckt
