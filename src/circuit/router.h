/**
 * @file
 * Topology-aware routing.
 *
 * Greedy shortest-path router: gates are processed in program order;
 * whenever a two-qubit gate's operands are not adjacent on the device,
 * SWAPs are inserted along a shortest path until they are.  Simple,
 * deterministic, and always correct; the resulting circuit references
 * *physical* qubits and touches only coupled pairs.  Both scheduling
 * policies consume the same routed circuit, so comparisons stay fair.
 */

#ifndef QZZ_CIRCUIT_ROUTER_H
#define QZZ_CIRCUIT_ROUTER_H

#include "circuit/circuit.h"
#include "graph/graph.h"

namespace qzz::ckt {

/** Result of routing a circuit onto a topology. */
struct RoutedCircuit
{
    /** The rewritten circuit over physical qubits (may contain SWAPs;
     *  run decomposeToNative() afterwards). */
    QuantumCircuit circuit;
    /** final_layout[logical] = physical qubit holding it at the end. */
    std::vector<int> final_layout;
    /** Number of SWAP gates inserted. */
    int swaps_inserted = 0;
};

/**
 * Route @p circuit onto @p topo.
 *
 * @param circuit logical circuit; needs numQubits() <= vertices.
 * @param topo    device coupling graph.
 * @param initial optional initial layout (logical -> physical);
 *                identity when empty.
 */
RoutedCircuit routeCircuit(const QuantumCircuit &circuit,
                           const graph::Graph &topo,
                           const std::vector<int> &initial = {});

/** True if every two-qubit gate acts on a coupled pair. */
bool respectsConnectivity(const QuantumCircuit &circuit,
                          const graph::Graph &topo);

} // namespace qzz::ckt

#endif // QZZ_CIRCUIT_ROUTER_H
