/**
 * @file
 * Lowering to the native gate set {RZ(theta), SX, RZX(pi/2), I}.
 *
 * Follows the IBMQ basis the paper compiles to (Sec. 7.1.2).  Every
 * high-level gate is rewritten into natives; a peephole pass then
 * merges consecutive RZ rotations on the same qubit and drops
 * zero-angle rotations.  All identities hold up to global phase and
 * are locked in by tests/circuit/decompose_test.cc.
 */

#ifndef QZZ_CIRCUIT_DECOMPOSE_H
#define QZZ_CIRCUIT_DECOMPOSE_H

#include "circuit/circuit.h"

namespace qzz::ckt {

/** Lower a circuit to the native set. */
QuantumCircuit decomposeToNative(const QuantumCircuit &circuit);

/** Merge consecutive RZ gates per qubit and drop RZ(0). */
QuantumCircuit mergeRz(const QuantumCircuit &circuit);

/**
 * Append the native expansion of @p g to @p out.
 * Exposed for reuse by the router (SWAP lowering).
 */
void emitNative(const Gate &g, QuantumCircuit &out);

} // namespace qzz::ckt

#endif // QZZ_CIRCUIT_DECOMPOSE_H
