#include "circuit/router.h"

#include <algorithm>

#include "common/error.h"
#include "graph/shortest_paths.h"

namespace qzz::ckt {

RoutedCircuit
routeCircuit(const QuantumCircuit &circuit, const graph::Graph &topo,
             const std::vector<int> &initial)
{
    require(circuit.numQubits() <= topo.numVertices(),
            "routeCircuit: circuit larger than device");

    // layout[logical] = physical.
    std::vector<int> layout(initial);
    if (layout.empty()) {
        layout.resize(size_t(circuit.numQubits()));
        for (int i = 0; i < circuit.numQubits(); ++i)
            layout[i] = i;
    }
    require(int(layout.size()) == circuit.numQubits(),
            "routeCircuit: bad initial layout size");
    // phys_to_logical for swap bookkeeping (-1 = no logical qubit).
    std::vector<int> phys_owner(size_t(topo.numVertices()), -1);
    for (int l = 0; l < int(layout.size()); ++l) {
        require(layout[l] >= 0 && layout[l] < topo.numVertices(),
                "routeCircuit: layout entry out of range");
        require(phys_owner[layout[l]] == -1,
                "routeCircuit: layout is not injective");
        phys_owner[layout[l]] = l;
    }

    RoutedCircuit out;
    out.circuit = QuantumCircuit(topo.numVertices(), circuit.name());

    auto do_swap = [&](int pa, int pb) {
        out.circuit.swap(pa, pb);
        ++out.swaps_inserted;
        const int la = phys_owner[pa], lb = phys_owner[pb];
        phys_owner[pa] = lb;
        phys_owner[pb] = la;
        if (la != -1)
            layout[la] = pb;
        if (lb != -1)
            layout[lb] = pa;
    };

    for (const Gate &g : circuit.gates()) {
        if (!g.isTwoQubit()) {
            Gate mapped = g;
            mapped.qubits[0] = layout[g.qubits[0]];
            out.circuit.add(std::move(mapped));
            continue;
        }
        int pa = layout[g.qubits[0]];
        int pb = layout[g.qubits[1]];
        if (topo.findEdge(pa, pb) < 0) {
            auto path = graph::shortestPath(topo, pa, pb);
            require(path.has_value(),
                    "routeCircuit: device graph is disconnected");
            // Walk the first endpoint along the path until adjacent.
            for (size_t i = 0; i + 2 < path->vertices.size(); ++i)
                do_swap(path->vertices[i], path->vertices[i + 1]);
            pa = layout[g.qubits[0]];
            pb = layout[g.qubits[1]];
            ensure(topo.findEdge(pa, pb) >= 0,
                   "routeCircuit: SWAP walk failed to merge operands");
        }
        Gate mapped = g;
        mapped.qubits = {pa, pb};
        out.circuit.add(std::move(mapped));
    }

    out.final_layout = layout;
    return out;
}

bool
respectsConnectivity(const QuantumCircuit &circuit,
                     const graph::Graph &topo)
{
    for (const Gate &g : circuit.gates()) {
        if (!g.isTwoQubit())
            continue;
        if (topo.findEdge(g.qubits[0], g.qubits[1]) < 0)
            return false;
    }
    return true;
}

} // namespace qzz::ckt
