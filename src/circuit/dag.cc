#include "circuit/dag.h"

#include <algorithm>

#include "common/error.h"

namespace qzz::ckt {

DagFrontier::DagFrontier(const QuantumCircuit &circuit) : circuit_(circuit)
{
    timeline_.resize(size_t(circuit.numQubits()));
    cursor_.assign(size_t(circuit.numQubits()), 0);
    is_scheduled_.assign(circuit.size(), 0);
    for (int i = 0; i < int(circuit.size()); ++i) {
        order_.push_back(i);
        for (int q : circuit.gates()[i].qubits)
            timeline_[q].push_back(i);
    }
}

bool
DagFrontier::isSchedulable(int gate_index) const
{
    if (is_scheduled_[gate_index])
        return false;
    for (int q : circuit_.gates()[gate_index].qubits) {
        const auto &tl = timeline_[q];
        const size_t cur = cursor_[q];
        if (cur >= tl.size() || tl[cur] != gate_index)
            return false;
    }
    return true;
}

std::vector<int>
DagFrontier::schedulable() const
{
    std::vector<int> out;
    // The frontier contains at most one gate per qubit; scan qubit
    // cursors and de-duplicate two-qubit gates.
    for (int q = 0; q < circuit_.numQubits(); ++q) {
        if (cursor_[q] >= timeline_[q].size())
            continue;
        const int gi = timeline_[q][cursor_[q]];
        if (isSchedulable(gi)) {
            bool seen = false;
            for (int o : out)
                if (o == gi)
                    seen = true;
            if (!seen)
                out.push_back(gi);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

void
DagFrontier::markScheduled(int gate_index)
{
    require(gate_index >= 0 && gate_index < int(circuit_.size()),
            "DagFrontier::markScheduled: index out of range");
    require(isSchedulable(gate_index),
            "DagFrontier::markScheduled: gate is not schedulable");
    is_scheduled_[gate_index] = 1;
    ++scheduled_count_;
    for (int q : circuit_.gates()[gate_index].qubits)
        ++cursor_[q];
}

} // namespace qzz::ckt
