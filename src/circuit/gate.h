/**
 * @file
 * Gate IR.
 *
 * Gates come in three tiers:
 *  - physical native gates {SX, I, RZX}: backed by pulse programs;
 *  - the virtual native gate RZ (software frame change, zero duration,
 *    error free — Sec. 7.1.2 of the paper);
 *  - high-level gates (H, CX, CP, ...) produced by the benchmark
 *    generators and lowered by qzz::ckt::decomposeToNative().
 *
 * Matrix convention: the first listed qubit is the most significant
 * tensor factor.
 */

#ifndef QZZ_CIRCUIT_GATE_H
#define QZZ_CIRCUIT_GATE_H

#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace qzz::ckt {

/** All gate kinds known to the IR. */
enum class GateKind
{
    // Physical native gates.
    SX,  ///< Rx(pi/2)
    I,   ///< explicit identity pulse, Rx(2 pi)
    RZX, ///< Rzx(theta); native at theta = pi/2

    // Virtual native gate.
    RZ, ///< Rz(theta), implemented in software

    // High-level single-qubit gates.
    X,
    Y,
    Z,
    H,
    S,
    SDG,
    T,
    TDG,
    RX,
    RY,
    U3, ///< U3(theta, phi, lambda)

    // High-level two-qubit gates.
    CX,
    CZ,
    CP,  ///< controlled phase(theta)
    RZZ, ///< exp(-i theta/2 Z(x)Z)
    SWAP,
};

/** A gate instance: kind + qubit operands + real parameters. */
struct Gate
{
    GateKind kind = GateKind::I;
    std::vector<int> qubits;
    std::vector<double> params;

    Gate() = default;
    Gate(GateKind k, std::vector<int> q, std::vector<double> p = {})
        : kind(k), qubits(std::move(q)), params(std::move(p))
    {
    }

    bool isTwoQubit() const { return qubits.size() == 2; }

    /** True for the native set {SX, I, RZX(pi/2), RZ}. */
    bool isNative() const;

    /** True for RZ (no pulses, zero duration). */
    bool isVirtual() const { return kind == GateKind::RZ; }

    /** Human-readable form, e.g. "CX(3,4)" or "RZ(1.571)(0)". */
    std::string toString() const;
};

/** Name of a gate kind. */
std::string gateKindName(GateKind k);

/** Unitary matrix of a gate (2x2 or 4x4). */
la::CMatrix gateMatrix(const Gate &g);

/** Number of qubit operands a kind expects. */
int gateArity(GateKind k);

} // namespace qzz::ckt

#endif // QZZ_CIRCUIT_GATE_H
