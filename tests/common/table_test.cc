#include "common/table.h"

#include "common/error.h"

#include <gtest/gtest.h>

#include <sstream>

namespace qzz {
namespace {

TEST(TableTest, PrintsHeadersAndRows)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "2"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("beta"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, RejectsWrongCellCount)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only one"}), UserError);
}

TEST(TableTest, RejectsEmptyHeader)
{
    EXPECT_THROW(Table({}), UserError);
}

TEST(TableTest, TitleAppears)
{
    Table t({"x"});
    t.setTitle("My Title");
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("My Title"), std::string::npos);
}

TEST(FormatTest, FormatG)
{
    EXPECT_EQ(formatG(1.23456789, 3), "1.23");
}

TEST(FormatTest, FormatF)
{
    EXPECT_EQ(formatF(1.23456789, 2), "1.23");
    EXPECT_EQ(formatF(2.0, 3), "2.000");
}

TEST(FormatTest, FormatX)
{
    EXPECT_EQ(formatX(12.34, 1), "12.3x");
}

} // namespace
} // namespace qzz
