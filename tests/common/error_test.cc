#include "common/error.h"

#include <gtest/gtest.h>

namespace qzz {
namespace {

TEST(ErrorTest, FatalThrowsUserError)
{
    EXPECT_THROW(fatal("bad input"), UserError);
}

TEST(ErrorTest, PanicThrowsInternalError)
{
    EXPECT_THROW(panic("broken invariant"), InternalError);
}

TEST(ErrorTest, RequirePassesOnTrue)
{
    EXPECT_NO_THROW(require(true, "unused"));
}

TEST(ErrorTest, RequireThrowsOnFalse)
{
    EXPECT_THROW(require(false, "nope"), UserError);
}

TEST(ErrorTest, EnsureThrowsOnFalse)
{
    EXPECT_THROW(ensure(false, "nope"), InternalError);
}

TEST(ErrorTest, MessagePropagates)
{
    try {
        fatal("specific message");
        FAIL() << "fatal did not throw";
    } catch (const UserError &e) {
        EXPECT_STREQ(e.what(), "specific message");
    }
}

TEST(ErrorTest, PanicMessageIsPrefixed)
{
    try {
        panic("oops");
        FAIL() << "panic did not throw";
    } catch (const InternalError &e) {
        EXPECT_NE(std::string(e.what()).find("oops"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("internal"),
                  std::string::npos);
    }
}

} // namespace
} // namespace qzz
