#include "common/suppression_invariants.h"

#include <gtest/gtest.h>

namespace qzz::testsup {

void
expectValidSchedule(const core::Schedule &schedule,
                    const ckt::QuantumCircuit &native,
                    const dev::Device &device,
                    const std::string &context)
{
    const int n = schedule.num_qubits;
    ASSERT_EQ(n, native.numQubits()) << context;

    int total = 0;
    for (size_t li = 0; li < schedule.layers.size(); ++li) {
        const core::Layer &layer = schedule.layers[li];
        const std::string where =
            context + ", layer " + std::to_string(li);

        std::vector<char> used(size_t(n), 0);
        for (const core::ScheduledGate &sg : layer.gates) {
            if (!sg.supplemented)
                ++total;
            if (layer.is_virtual)
                EXPECT_TRUE(sg.gate.isVirtual()) << where;
            if (sg.gate.isVirtual())
                continue;
            for (int q : sg.gate.qubits) {
                EXPECT_EQ(used[size_t(q)], 0)
                    << where << ": qubit " << q << " driven twice";
                used[size_t(q)] = 1;
            }
        }
        if (layer.is_virtual)
            continue;

        // The driven set must realize the recorded S partition
        // exactly: scheduled gates inside S, supplemented identities
        // covering the rest of S, nothing driven outside it.
        ASSERT_EQ(int(layer.side.size()), n) << where;
        for (int q = 0; q < n; ++q)
            EXPECT_EQ(used[size_t(q)] != 0, layer.side[size_t(q)] == 1)
                << where << ": qubit " << q
                << " driven/side mismatch";

        const core::SuppressionMetrics m =
            core::evaluateCut(device.graph(), layer.side);
        EXPECT_EQ(m.nc, layer.metrics.nc) << where;
        EXPECT_EQ(m.nq, layer.metrics.nq) << where;
    }
    EXPECT_EQ(total, int(native.size()))
        << context << ": gates dropped or duplicated";
}

void
expectSuppressionInvariants(const core::Schedule &schedule,
                            const dev::Device &device,
                            const core::ZzxOptions &resolved,
                            const std::string &context)
{
    const bool bipartite = device.graph().twoColor().has_value();
    for (size_t li = 0; li < schedule.layers.size(); ++li) {
        const core::Layer &layer = schedule.layers[li];
        if (layer.is_virtual)
            continue;
        const std::string where =
            context + ", layer " + std::to_string(li);

        EXPECT_LE(layer.metrics.nc, resolved.nc_max) << where;
        bool has_two_qubit = false;
        for (const core::ScheduledGate &sg : layer.gates)
            has_two_qubit = has_two_qubit || sg.gate.isTwoQubit();
        EXPECT_LE(layer.metrics.nq,
                  resolved.nq_max + (has_two_qubit ? 1 : 0))
            << where;
        if (!has_two_qubit && bipartite) {
            EXPECT_EQ(layer.metrics.nc, 0) << where;
            EXPECT_EQ(layer.metrics.nq, 1) << where;
        }
    }
}

} // namespace qzz::testsup
