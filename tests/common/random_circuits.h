/**
 * @file
 * Seed-pinned random native circuits for property tests.
 *
 * Every generator takes an explicit seed and owns its Rng, so a test
 * case's inputs are reproducible from its parameter list alone —
 * rerunning one failed instance regenerates the exact circuit.  Gates
 * are drawn from the native set only (SX / I / RZX / virtual RZ) and
 * two-qubit gates only on topology edges, so the circuits feed the
 * schedulers directly, with no routing or lowering stage in between.
 */

#ifndef QZZ_TESTS_COMMON_RANDOM_CIRCUITS_H
#define QZZ_TESTS_COMMON_RANDOM_CIRCUITS_H

#include <vector>

#include "circuit/circuit.h"
#include "graph/topologies.h"

namespace qzz::testsup {

/** Shape knobs of the random generators. */
struct RandomCircuitOptions
{
    /** Probability that an idle qubit gets an SX in a layer. */
    double gate_density = 0.7;
    /** Probability that an available edge hosts an RZX in a layer. */
    double two_qubit_fraction = 0.4;
    /** Probability of a virtual RZ being attached to a driven qubit. */
    double virtual_fraction = 0.2;
};

/**
 * One random layer of native gates over @p topo: disjoint RZX gates
 * on a random subset of edges, SX on a random subset of the remaining
 * qubits.  Never empty.  Deterministic in (topo, seed, opt).
 */
ckt::QuantumCircuit randomLayer(const graph::Topology &topo,
                                uint64_t seed,
                                const RandomCircuitOptions &opt = {});

/**
 * A random native circuit of @p layers stacked random layers with
 * virtual RZ gates sprinkled between them.  Deterministic in
 * (topo, layers, seed, opt).
 */
ckt::QuantumCircuit
randomNativeCircuit(const graph::Topology &topo, int layers,
                    uint64_t seed,
                    const RandomCircuitOptions &opt = {});

/**
 * The small-device sweep the exact scheduler stays tractable on:
 * grid 2x3, triangulated grid 2x3, rings 5 (odd, non-bipartite) and
 * 6 (even, bipartite), one heavy-hex cell.
 */
std::vector<graph::Topology> smallSweepTopologies();

} // namespace qzz::testsup

#endif // QZZ_TESTS_COMMON_RANDOM_CIRCUITS_H
