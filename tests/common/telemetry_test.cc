/**
 * @file
 * Metrics-plane tests: instrument semantics under concurrency, the
 * histogram quantile estimator (including the monotonicity the old
 * ring-reservoir estimator could not guarantee), and the Prometheus
 * text exposition format pinned as a golden payload.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/telemetry.h"

namespace qzz::tel {
namespace {

TEST(CounterTest, SumsIncrementsAcrossThreads)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("qzz_test_ops_total", "Ops.");
    constexpr int kThreads = 8;
    constexpr int kIncs = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&c] {
            for (int i = 0; i < kIncs; ++i)
                c.inc();
        });
    for (std::thread &t : threads)
        t.join();
    c.inc(42);
    EXPECT_EQ(c.value(), uint64_t(kThreads) * kIncs + 42);
}

TEST(GaugeTest, SetAndAdd)
{
    MetricsRegistry reg;
    Gauge &g = reg.gauge("qzz_test_depth", "Depth.");
    EXPECT_EQ(g.value(), 0.0);
    g.set(7.5);
    EXPECT_EQ(g.value(), 7.5);
    g.add(-2.5);
    EXPECT_EQ(g.value(), 5.0);
    g.set(1.0);
    EXPECT_EQ(g.value(), 1.0);
}

TEST(HistogramTest, CountAndSumTrackObservations)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram(
        "qzz_test_lat_ms", "Latency.",
        HistogramBuckets::logarithmic(1.0, 2.0, 8));
    h.observe(0.5);
    h.observe(3.0);
    h.observe(1000.0); // beyond the largest bound: +Inf bucket
    const HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 3u);
    EXPECT_DOUBLE_EQ(snap.sum, 1003.5);
    EXPECT_EQ(snap.counts.size(), snap.bounds.size() + 1);
    EXPECT_EQ(snap.counts.back(), 1u); // the 1000.0 overflow
}

TEST(HistogramTest, NanIgnoredAndNegativeClampedToZero)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram(
        "qzz_test_lat_ms", "Latency.",
        HistogramBuckets::logarithmic(1.0, 2.0, 4));
    h.observe(std::nan(""));
    EXPECT_EQ(h.count(), 0u);
    h.observe(-5.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.snapshot().counts[0], 1u); // landed in the first bucket
}

// The regression the histogram replaces a ring reservoir for: under a
// skewed load the sampled reservoir could order its percentile
// estimates p50 > p95.  One histogram snapshot feeds all three
// quantiles, so they are monotone by construction — assert it under
// the skew that used to break (90% fast, 9% medium, 1% slow).
TEST(HistogramTest, QuantilesAreMonotoneUnderSkewedLoad)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram(
        "qzz_service_request_latency_ms", "Latency.",
        HistogramBuckets::logarithmic(0.01, 2.0, 26));
    for (int i = 0; i < 10000; ++i) {
        if (i % 100 == 0)
            h.observe(500.0 + double(i % 7)); // 1% ~500ms outliers
        else if (i % 100 < 10)
            h.observe(50.0 + double(i % 13)); // 9% ~50ms
        else
            h.observe(1.0 + double(i % 10) / 10.0); // 90% 1-2ms
    }
    const HistogramSnapshot snap = h.snapshot();
    const double p50 = snap.quantile(0.50);
    const double p95 = snap.quantile(0.95);
    const double p99 = snap.quantile(0.99);
    const double p999 = snap.quantile(0.999);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_LE(p99, p999);
    // Sanity: the estimates land in the right decades (p99 still sits
    // in the ~50ms band — the slow 1% starts exactly at rank 9901).
    EXPECT_GE(p50, 0.5);
    EXPECT_LE(p50, 4.0);
    EXPECT_GE(p95, 16.0);
    EXPECT_LE(p95, 128.0);
    EXPECT_GE(p99, 32.0);
    EXPECT_LE(p99, 128.0);
    EXPECT_GE(p999, 256.0);
    EXPECT_LE(p999, 1024.0);
}

TEST(HistogramTest, EmptyQuantileIsZero)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("qzz_test_lat_ms", "Latency.");
    EXPECT_EQ(h.quantile(0.5), 0.0);
    EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotent)
{
    MetricsRegistry reg;
    Counter &a = reg.counter("qzz_test_ops_total", "Ops.");
    Counter &b = reg.counter("qzz_test_ops_total", "Ops.");
    EXPECT_EQ(&a, &b);
    a.inc();
    EXPECT_EQ(b.value(), 1u);
    // Distinct label sets are distinct series under one family.
    Counter &lane_a =
        reg.counter("qzz_test_lane_total", "Lanes.", {{"lane", "a"}});
    Counter &lane_b =
        reg.counter("qzz_test_lane_total", "Lanes.", {{"lane", "b"}});
    EXPECT_NE(&lane_a, &lane_b);
}

TEST(MetricsRegistryTest, KindAndBucketMismatchesThrow)
{
    MetricsRegistry reg;
    reg.counter("qzz_test_ops_total", "Ops.");
    EXPECT_THROW(reg.gauge("qzz_test_ops_total", "Ops."), UserError);
    EXPECT_THROW(reg.histogram("qzz_test_ops_total", "Ops."), UserError);
    reg.histogram("qzz_test_lat_ms", "Latency.",
                  HistogramBuckets::logarithmic(1.0, 2.0, 4));
    EXPECT_THROW(
        reg.histogram("qzz_test_lat_ms", "Latency.",
                      HistogramBuckets::logarithmic(1.0, 2.0, 8)),
        UserError);
    EXPECT_THROW(reg.counter("0bad", "Bad name."), UserError);
    EXPECT_THROW(reg.counter("", "Empty."), UserError);
    EXPECT_THROW(reg.counter("has space", "Bad."), UserError);
}

TEST(MetricsRegistryTest, NamesRoundTripSortedUnique)
{
    MetricsRegistry reg;
    reg.counter("qzz_test_c_total", "C.");
    reg.gauge("qzz_test_a", "A.");
    reg.histogram("qzz_test_b_ms", "B.");
    reg.counter("qzz_test_c_total", "C."); // re-registration: no dup
    reg.counter("qzz_test_c_total", "C.", {{"lane", "x"}});
    const std::vector<std::string> names = reg.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "qzz_test_a");
    EXPECT_EQ(names[1], "qzz_test_b_ms");
    EXPECT_EQ(names[2], "qzz_test_c_total");
}

// The exposition payload is a wire format scraped by a third party:
// pin its exact shape — HELP/TYPE headers, family sort order,
// cumulative _bucket/_sum/_count expansion, and label escaping.
TEST(MetricsRegistryTest, PrometheusRenderGolden)
{
    MetricsRegistry reg;
    reg.counter("qzz_test_requests_total", "Requests served.",
                {{"lane", "a\\b\"c\nd"}})
        .inc(3);
    reg.gauge("qzz_test_depth", "Queue depth.").set(2.5);
    Histogram &h = reg.histogram(
        "qzz_test_lat_ms", "Latency (ms).",
        HistogramBuckets::logarithmic(1.0, 10.0, 2));
    h.observe(0.5);
    h.observe(5.0);
    h.observe(50.0);
    EXPECT_EQ(reg.renderPrometheus(),
              "# HELP qzz_test_depth Queue depth.\n"
              "# TYPE qzz_test_depth gauge\n"
              "qzz_test_depth 2.5\n"
              "# HELP qzz_test_lat_ms Latency (ms).\n"
              "# TYPE qzz_test_lat_ms histogram\n"
              "qzz_test_lat_ms_bucket{le=\"1\"} 1\n"
              "qzz_test_lat_ms_bucket{le=\"10\"} 2\n"
              "qzz_test_lat_ms_bucket{le=\"+Inf\"} 3\n"
              "qzz_test_lat_ms_sum 55.5\n"
              "qzz_test_lat_ms_count 3\n"
              "# HELP qzz_test_requests_total Requests served.\n"
              "# TYPE qzz_test_requests_total counter\n"
              "qzz_test_requests_total{lane=\"a\\\\b\\\"c\\nd\"} 3\n");
}

TEST(MetricsRegistryTest, HistogramBucketSeriesKeepLabels)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram(
        "qzz_test_lat_ms", "Latency.",
        HistogramBuckets::logarithmic(1.0, 10.0, 1), {{"lane", "warm"}});
    h.observe(0.5);
    const std::string out = reg.renderPrometheus();
    EXPECT_NE(out.find("qzz_test_lat_ms_bucket{lane=\"warm\","
                       "le=\"1\"} 1\n"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("qzz_test_lat_ms_bucket{lane=\"warm\","
                       "le=\"+Inf\"} 1\n"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("qzz_test_lat_ms_sum{lane=\"warm\"} 0.5\n"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("qzz_test_lat_ms_count{lane=\"warm\"} 1\n"),
              std::string::npos)
        << out;
}

TEST(FormattingTest, LabelEscaping)
{
    EXPECT_EQ(promEscapeLabel("plain"), "plain");
    EXPECT_EQ(promEscapeLabel("a\\b"), "a\\\\b");
    EXPECT_EQ(promEscapeLabel("a\"b"), "a\\\"b");
    EXPECT_EQ(promEscapeLabel("a\nb"), "a\\nb");
}

TEST(FormattingTest, ValuesRenderIntegralWithoutFraction)
{
    EXPECT_EQ(promFormatValue(0.0), "0");
    EXPECT_EQ(promFormatValue(42.0), "42");
    EXPECT_EQ(promFormatValue(-3.0), "-3");
    EXPECT_EQ(promFormatValue(2.5), "2.5");
    EXPECT_EQ(promFormatValue(0.01), "0.01");
}

} // namespace
} // namespace qzz::tel
