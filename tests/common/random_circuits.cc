#include "common/random_circuits.h"

#include "common/rng.h"
#include "common/units.h"

namespace qzz::testsup {

ckt::QuantumCircuit
randomLayer(const graph::Topology &topo, uint64_t seed,
            const RandomCircuitOptions &opt)
{
    Rng rng(seed);
    const graph::Graph &g = topo.g;
    const int n = g.numVertices();
    ckt::QuantumCircuit c(n);

    std::vector<int> edge_order(size_t(g.numEdges()));
    for (int e = 0; e < g.numEdges(); ++e)
        edge_order[size_t(e)] = e;
    rng.shuffle(edge_order);

    std::vector<char> used(size_t(n), 0);
    for (int e : edge_order) {
        const graph::Edge &edge = g.edge(e);
        if (used[size_t(edge.u)] || used[size_t(edge.v)])
            continue;
        if (rng.uniform() >= opt.two_qubit_fraction)
            continue;
        c.rzx(edge.u, edge.v, kPi / 2.0);
        used[size_t(edge.u)] = 1;
        used[size_t(edge.v)] = 1;
    }
    for (int q = 0; q < n; ++q)
        if (!used[size_t(q)] && rng.uniform() < opt.gate_density)
            c.sx(q);
    if (c.empty())
        c.sx(0);
    return c;
}

ckt::QuantumCircuit
randomNativeCircuit(const graph::Topology &topo, int layers,
                    uint64_t seed, const RandomCircuitOptions &opt)
{
    Rng rng(seed);
    const int n = topo.g.numVertices();
    ckt::QuantumCircuit c(n);
    for (int l = 0; l < layers; ++l) {
        const ckt::QuantumCircuit layer = randomLayer(
            topo, seed * 1000003u + uint64_t(l) + 1u, opt);
        for (const ckt::Gate &gate : layer.gates()) {
            c.add(gate);
            if (rng.uniform() < opt.virtual_fraction)
                c.rz(gate.qubits[0], rng.uniform(0.0, kPi));
        }
    }
    if (c.empty())
        c.sx(0);
    return c;
}

std::vector<graph::Topology>
smallSweepTopologies()
{
    std::vector<graph::Topology> topos;
    topos.push_back(graph::gridTopology(2, 3));
    topos.push_back(graph::triangulatedGridTopology(2, 3));
    topos.push_back(graph::ringTopology(5));
    topos.push_back(graph::ringTopology(6));
    topos.push_back(graph::heavyHexTopology(1, 1));
    return topos;
}

} // namespace qzz::testsup
