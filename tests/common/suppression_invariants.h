/**
 * @file
 * Shared schedule-validity and suppression-invariant assertions.
 *
 * One checker used by the integration suites (topology_diversity),
 * the per-policy unit tests and the differential oracle fuzz — so the
 * definition of "valid schedule" and "requirement R holds" lives in
 * exactly one place.  All checks are gtest EXPECT/ASSERT macros: call
 * from inside a TEST body; @p context is prepended to every failure
 * message.
 */

#ifndef QZZ_TESTS_COMMON_SUPPRESSION_INVARIANTS_H
#define QZZ_TESTS_COMMON_SUPPRESSION_INVARIANTS_H

#include <string>

#include "core/zzx_sched.h"

namespace qzz::testsup {

/**
 * Structural validity of a layered schedule of @p native:
 *  - every circuit gate is scheduled exactly once, none dropped;
 *  - no qubit is driven twice within a layer;
 *  - each physical layer's driven set equals its recorded S partition
 *    (gates fully inside S, supplemented identities covering the
 *    rest);
 *  - each physical layer's recorded metrics match evaluateCut() on
 *    its recorded side.
 */
void expectValidSchedule(const core::Schedule &schedule,
                         const ckt::QuantumCircuit &native,
                         const dev::Device &device,
                         const std::string &context);

/**
 * Suppression invariants of Algorithm 2 against the resolved
 * requirement R (pass the result of resolveZzxOptions()):
 *  - NC never exceeds nc_max;
 *  - NQ exceeds nq_max by at most the one spectator qubit an
 *    irreducible two-qubit group absorbs (R is TwoQSchedule's
 *    *splitting* criterion, so a single unsplittable gate pair may
 *    carry NQ = nq_max + 1 on degree-2 topologies);
 *  - single-qubit-only layers on bipartite devices reach complete
 *    suppression (Sec. 5.1): NC = 0 and every region a singleton.
 */
void expectSuppressionInvariants(const core::Schedule &schedule,
                                 const dev::Device &device,
                                 const core::ZzxOptions &resolved,
                                 const std::string &context);

} // namespace qzz::testsup

#endif // QZZ_TESTS_COMMON_SUPPRESSION_INVARIANTS_H
