#include "common/units.h"

#include <gtest/gtest.h>

namespace qzz {
namespace {

TEST(UnitsTest, MhzRoundTrip)
{
    EXPECT_NEAR(toMhz(mhz(1.5)), 1.5, 1e-12);
    EXPECT_NEAR(toMhz(mhz(200.0)), 200.0, 1e-9);
}

TEST(UnitsTest, KhzRoundTrip)
{
    EXPECT_NEAR(toKhz(khz(200.0)), 200.0, 1e-9);
}

TEST(UnitsTest, KhzMhzConsistency)
{
    EXPECT_NEAR(khz(1000.0), mhz(1.0), 1e-15);
}

TEST(UnitsTest, AngularConvention)
{
    // A 1 GHz tone advances phase by 2 pi per ns.
    EXPECT_NEAR(ghz(1.0), kTwoPi, 1e-15);
}

TEST(UnitsTest, PaperCouplingScale)
{
    // lambda/2pi = 200 kHz -> lambda ~ 1.2566e-3 rad/ns.
    EXPECT_NEAR(khz(200.0), 1.2566370614e-3, 1e-9);
}

TEST(UnitsTest, MicrosecondConversion)
{
    EXPECT_DOUBLE_EQ(us(100.0), 1e5);
}

} // namespace
} // namespace qzz
