#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <type_traits>

namespace qzz {
namespace {

// Every Rng must be constructed from an explicit seed; a default
// constructor (or a random_device fallback) would let nondeterminism
// creep into the property suites, which ctest runs unseeded.
static_assert(!std::is_default_constructible_v<Rng>,
              "Rng must require an explicit seed");

TEST(RngTest, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int differences = 0;
    for (int i = 0; i < 32; ++i)
        if (a.uniform() != b.uniform())
            ++differences;
    EXPECT_GT(differences, 0);
}

TEST(RngTest, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(RngTest, UniformIntCoversRange)
{
    Rng rng(7);
    std::vector<int> seen(5, 0);
    for (int i = 0; i < 2000; ++i) {
        int v = rng.uniformInt(0, 4);
        ASSERT_GE(v, 0);
        ASSERT_LE(v, 4);
        ++seen[v];
    }
    for (int count : seen)
        EXPECT_GT(count, 200); // roughly balanced
}

TEST(RngTest, NormalMomentsApproximate)
{
    Rng rng(11);
    const int n = 20000;
    double sum = 0.0, sumsq = 0.0;
    for (int i = 0; i < n; ++i) {
        double v = rng.normal(3.0, 2.0);
        sum += v;
        sumsq += v * v;
    }
    const double mean = sum / n;
    const double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, 3.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, TruncatedNormalRespectsBounds)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.truncatedNormal(0.0, 10.0, -1.0, 1.0);
        EXPECT_GE(v, -1.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(RngTest, SplitStreamsAreIndependentButDeterministic)
{
    Rng a(99), b(99);
    Rng a1 = a.split(), b1 = b.split();
    for (int i = 0; i < 50; ++i)
        EXPECT_DOUBLE_EQ(a1.uniform(), b1.uniform());
    // The child differs from the continuing parent stream.
    Rng c(99);
    Rng c1 = c.split();
    EXPECT_NE(c1.uniform(), c.uniform());
}

TEST(RngTest, ShufflePreservesElements)
{
    Rng rng(5);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

} // namespace
} // namespace qzz
