#include "core/objectives.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"
#include "circuit/gate.h"
#include "core/dcg.h"
#include "linalg/expm.h"
#include "pulse/library.h"

namespace qzz::core {
namespace {

const la::CMatrix &
sxTarget()
{
    static const la::CMatrix m = la::expPauli(kPi / 4.0, 0.0, 0.0);
    return m;
}

TEST(ObjectivesTest, GaussianSxHasLargeFirstOrderTerm)
{
    auto p = pulse::PulseLibrary::gaussian().get(pulse::PulseGate::SX);
    // Unsuppressed pulses leave an O(1) normalized first-order term.
    EXPECT_GT(firstOrderCrosstalkNorm(p, 0.0), 0.3);
}

TEST(ObjectivesTest, DcgIdentityFirstOrderTermVanishes)
{
    EXPECT_LT(firstOrderCrosstalkNorm(dcgIdentity(), 0.0, 0.005), 1e-3);
}

TEST(ObjectivesTest, PertLossRewardsGoodGates)
{
    auto p = pulse::PulseLibrary::gaussian().get(pulse::PulseGate::SX);
    ObjectiveConfig cfg;
    const double loss = pertLossOneQubit(p, sxTarget(), cfg);
    // The Gaussian implements the gate well, so the loss is dominated
    // by the crosstalk term.
    const double xtalk = firstOrderCrosstalkNorm(p, 0.0, cfg.dt);
    EXPECT_NEAR(loss, xtalk, 0.05);
}

TEST(ObjectivesTest, PertLossPenalizesWrongGate)
{
    auto p = pulse::PulseLibrary::gaussian().get(pulse::PulseGate::SX);
    ObjectiveConfig cfg;
    const double right = pertLossOneQubit(p, sxTarget(), cfg);
    const double wrong =
        pertLossOneQubit(p, la::pauliZ(), cfg); // not what it does
    EXPECT_GT(wrong, right + 1.0);
}

TEST(ObjectivesTest, OptCtrlLossMatchesInfidelityAverage)
{
    auto p = pulse::PulseLibrary::gaussian().get(pulse::PulseGate::SX);
    ObjectiveConfig cfg;
    cfg.lambda_samples = {khz(200.0)};
    cfg.weight = 0.0; // isolate the crosstalk term
    const double loss = optCtrlLossOneQubit(p, sxTarget(), cfg);
    const double direct = oneQubitCrosstalkInfidelity(
        p, sxTarget(), khz(200.0), {}, cfg.dt);
    EXPECT_NEAR(loss, direct, 1e-12);
}

TEST(ObjectivesTest, OptCtrlRequiresLambdaSamples)
{
    auto p = pulse::PulseLibrary::gaussian().get(pulse::PulseGate::SX);
    ObjectiveConfig cfg; // empty samples
    EXPECT_THROW(optCtrlLossOneQubit(p, sxTarget(), cfg), UserError);
}

TEST(ObjectivesTest, TwoQubitLossesRun)
{
    auto p = pulse::PulseLibrary::gaussian().get(pulse::PulseGate::RZX);
    const la::CMatrix rzx = ckt::gateMatrix(
        {ckt::GateKind::RZX, {0, 1}, {kPi / 2.0}});
    ObjectiveConfig cfg;
    cfg.dt = 0.05;
    cfg.lambda_intra = khz(200.0);
    const double pert = pertLossTwoQubit(p, rzx, cfg);
    EXPECT_GT(pert, 0.0);
    cfg.lambda_samples = {khz(500.0)};
    const double octrl = optCtrlLossTwoQubit(p, rzx, cfg);
    EXPECT_GT(octrl, 0.0);
}

TEST(RegionsTest, ZeroCouplingMeansNoCrosstalkError)
{
    auto p = pulse::PulseLibrary::gaussian().get(pulse::PulseGate::SX);
    const double infid =
        oneQubitCrosstalkInfidelity(p, sxTarget(), 0.0);
    EXPECT_LT(infid, 1e-8);
}

TEST(RegionsTest, GaussianInfidelityGrowsQuadratically)
{
    // Unsuppressed first order => infidelity ~ lambda^2.
    auto p = pulse::PulseLibrary::gaussian().get(pulse::PulseGate::SX);
    const double i1 =
        oneQubitCrosstalkInfidelity(p, sxTarget(), khz(100.0));
    const double i2 =
        oneQubitCrosstalkInfidelity(p, sxTarget(), khz(200.0));
    EXPECT_NEAR(i2 / i1, 4.0, 0.4);
}

TEST(RegionsTest, DetuningDegradesFidelity)
{
    auto p = pulse::PulseLibrary::gaussian().get(pulse::PulseGate::SX);
    DriveNoise noisy;
    noisy.detuning = mhz(1.0);
    const double clean =
        oneQubitCrosstalkInfidelity(p, sxTarget(), khz(200.0));
    const double detuned = oneQubitCrosstalkInfidelity(
        p, sxTarget(), khz(200.0), noisy);
    EXPECT_GT(detuned, clean);
}

TEST(RegionsTest, GateFidelityOfCalibratedGaussian)
{
    auto p = pulse::PulseLibrary::gaussian().get(pulse::PulseGate::SX);
    EXPECT_GT(gateFidelity(p, sxTarget()), 1.0 - 1e-9);
}

TEST(RegionsTest, TildeU2ReducesToRzxWithoutIntra)
{
    auto p = pulse::PulseLibrary::gaussian().get(pulse::PulseGate::RZX);
    const la::CMatrix rzx = ckt::gateMatrix(
        {ckt::GateKind::RZX, {0, 1}, {kPi / 2.0}});
    la::CMatrix u = tildeU2(p, 0.0);
    EXPECT_LT(la::phaseDistance(u, rzx), 1e-6);
}

TEST(RegionsTest, TwoQubitInfidelitySymmetricInSpectators)
{
    auto p = pulse::PulseLibrary::gaussian().get(pulse::PulseGate::RZX);
    const double ab = twoQubitCrosstalkInfidelity(
        p, khz(300.0), khz(100.0), khz(200.0), 0.02);
    const double ba = twoQubitCrosstalkInfidelity(
        p, khz(100.0), khz(300.0), khz(200.0), 0.02);
    EXPECT_GT(ab, 0.0);
    EXPECT_GT(ba, 0.0);
}

} // namespace
} // namespace qzz::core
