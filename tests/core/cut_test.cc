#include "core/cut.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "graph/topologies.h"

namespace qzz::core {
namespace {

TEST(CutTest, CheckerboardOnGridSuppressesEverything)
{
    auto t = graph::gridTopology(3, 4);
    auto colors = t.g.twoColor();
    ASSERT_TRUE(colors.has_value());
    SuppressionMetrics m = evaluateCut(t.g, *colors);
    EXPECT_EQ(m.nc, 0);
    EXPECT_EQ(m.nq, 1);
}

TEST(CutTest, AllOneSideLeavesEverythingUnsuppressed)
{
    auto t = graph::gridTopology(3, 4);
    std::vector<int> side(12, 1);
    SuppressionMetrics m = evaluateCut(t.g, side);
    EXPECT_EQ(m.nc, t.g.numEdges());
    EXPECT_EQ(m.nq, 12);
}

TEST(CutTest, HalfSplitMetrics)
{
    // Line 0-1-2-3: S = {0, 1}, T = {2, 3} leaves edges 0-1 and 2-3
    // unsuppressed; regions {0,1} and {2,3}.
    auto t = graph::lineTopology(4);
    std::vector<int> side{1, 1, 0, 0};
    SuppressionMetrics m = evaluateCut(t.g, side);
    EXPECT_EQ(m.nc, 2);
    EXPECT_EQ(m.nq, 2);
    EXPECT_EQ(m.region_of[0], m.region_of[1]);
    EXPECT_NE(m.region_of[1], m.region_of[2]);
}

TEST(CutTest, UnsuppressedEdgeFlagsConsistent)
{
    auto t = graph::gridTopology(2, 3);
    std::vector<int> side{1, 0, 1, 0, 1, 0};
    SuppressionMetrics m = evaluateCut(t.g, side);
    int count = 0;
    for (const graph::Edge &e : t.g.edges()) {
        EXPECT_EQ(bool(m.unsuppressed_edge[e.id]),
                  side[e.u] == side[e.v]);
        if (m.unsuppressed_edge[e.id])
            ++count;
    }
    EXPECT_EQ(count, m.nc);
}

TEST(CutTest, ObjectiveCombinesMetrics)
{
    SuppressionMetrics m;
    m.nq = 4;
    m.nc = 9;
    EXPECT_DOUBLE_EQ(m.objective(0.5), 11.0);
    EXPECT_DOUBLE_EQ(m.objective(2.0), 17.0);
}

TEST(CutTest, SameSideHelper)
{
    std::vector<int> side{0, 1, 1, 0};
    EXPECT_TRUE(sameSide(side, {1, 2}));
    EXPECT_FALSE(sameSide(side, {0, 1}));
    EXPECT_TRUE(sameSide(side, {3}));
    EXPECT_TRUE(sameSide(side, {}));
}

TEST(CutTest, SizeMismatchRejected)
{
    auto t = graph::lineTopology(3);
    EXPECT_THROW(evaluateCut(t.g, {0, 1}), UserError);
}

} // namespace
} // namespace qzz::core
