/**
 * @file
 * Tests for the stage-based compilation API (core/compiler.h): the
 * builder, the default pass pipeline, the structured status channel,
 * per-stage diagnostics, injectable schedulers / pulse providers, and
 * the bit-identity of the legacy compileForDevice() shims.
 */

#include "core/compiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "circuit/benchmarks.h"
#include "common/units.h"
#include "core/dcg.h"
#include "core/schedule_io.h"
#include "graph/topologies.h"
#include "sim/ideal_sim.h"

namespace qzz::core {
namespace {

dev::Device
device23(uint64_t seed = 3)
{
    Rng rng(seed);
    return dev::Device(graph::gridTopology(2, 3), dev::DeviceParams{},
                       rng);
}

/** Serialize a schedule so two compiles can be compared bit-for-bit. */
std::string
scheduleFingerprint(const Schedule &schedule,
                    const pulse::PulseLibrary &library)
{
    std::ostringstream os;
    ScheduleIoOptions opt;
    opt.sample_dt = 0.0;
    opt.pretty = false;
    writeScheduleJson(schedule, library, os, opt);
    return os.str();
}

ckt::QuantumCircuit
testCircuit(uint64_t seed = 7)
{
    Rng rng(seed);
    return ckt::qaoaMaxCut(6, 1, rng);
}

TEST(CompilerTest, BuilderProducesCompleteProgram)
{
    auto dev = device23();
    Compiler compiler = CompilerBuilder(dev)
                            .pulseMethod(PulseMethod::Gaussian)
                            .schedPolicy(SchedPolicy::Zzx)
                            .build();
    CompileResult result = compiler.compile(testCircuit());

    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.program.native.isNative());
    ASSERT_NE(result.program.library, nullptr);
    EXPECT_EQ(result.program.library->name(), "Gaussian");
    EXPECT_EQ(result.program.pulse_method, PulseMethod::Gaussian);
    EXPECT_EQ(result.program.sched_policy, SchedPolicy::Zzx);
    EXPECT_EQ(result.program.schedule.circuitGateCount(),
              int(result.program.native.size()));
    EXPECT_EQ(int(result.program.final_layout.size()), 6);
}

TEST(CompilerTest, DiagnosticsCoverEveryStage)
{
    auto dev = device23();
    Compiler compiler = CompilerBuilder(dev)
                            .pulseMethod(PulseMethod::Gaussian)
                            .schedPolicy(SchedPolicy::Zzx)
                            .build();
    CompileResult result = compiler.compile(testCircuit());

    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.diagnostics.stages.size(), 4u);
    EXPECT_EQ(result.diagnostics.stages[0].stage, "route");
    EXPECT_EQ(result.diagnostics.stages[1].stage, "lower");
    EXPECT_EQ(result.diagnostics.stages[2].stage, "schedule");
    EXPECT_EQ(result.diagnostics.stages[3].stage, "pulses");
    EXPECT_GT(result.diagnostics.stages[1].gates_added, 0);
    EXPECT_GT(result.diagnostics.stages[2].layers_added, 0);
    for (const StageDiagnostics &stage : result.diagnostics.stages)
        EXPECT_GE(stage.wall_ms, 0.0);
    EXPECT_GT(result.diagnostics.total_ms, 0.0);
    EXPECT_EQ(result.diagnostics.physical_layers,
              result.program.schedule.physicalLayerCount());
    EXPECT_DOUBLE_EQ(result.diagnostics.execution_time_ns,
                     result.program.schedule.executionTime());
    EXPECT_DOUBLE_EQ(result.diagnostics.mean_nc,
                     result.program.schedule.meanNc());
    EXPECT_EQ(result.diagnostics.max_nq,
              result.program.schedule.maxNq());
}

TEST(CompilerTest, RoutingDiagnosticsCountSwaps)
{
    auto dev = device23();
    ckt::QuantumCircuit c(6);
    c.cx(0, 5); // distance 3 on the 2x3 grid: SWAPs required
    Compiler compiler = CompilerBuilder(dev)
                            .pulseMethod(PulseMethod::Gaussian)
                            .build();
    CompileResult result = compiler.compile(c);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result.diagnostics.swaps_inserted, 0);
    // The layout permutation reflects the SWAP walk.
    std::vector<int> identity{0, 1, 2, 3, 4, 5};
    EXPECT_NE(result.program.final_layout, identity);
}

TEST(CompilerTest, StatusChannelReportsEmptyInput)
{
    auto dev = device23();
    Compiler compiler = CompilerBuilder(dev).build();
    CompileResult result = compiler.compileSegments({});
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status.code, CompileStatusCode::InvalidInput);
    EXPECT_NE(result.status.message.find("no segments"),
              std::string::npos);
}

TEST(CompilerTest, StatusChannelReportsOversizedCircuit)
{
    auto dev = device23();
    ckt::QuantumCircuit c(12); // larger than the 6-qubit device
    c.h(0);
    Compiler compiler = CompilerBuilder(dev)
                            .pulseMethod(PulseMethod::Gaussian)
                            .build();
    CompileResult result = compiler.compile(c);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status.code, CompileStatusCode::InvalidInput);
    EXPECT_EQ(result.status.pass, "route");
}

TEST(CompilerTest, StatusChannelReportsSegmentSizeMismatch)
{
    auto dev = device23();
    std::vector<ckt::QuantumCircuit> segments;
    segments.emplace_back(6);
    segments.emplace_back(4);
    Compiler compiler = CompilerBuilder(dev)
                            .pulseMethod(PulseMethod::Gaussian)
                            .build();
    CompileResult result = compiler.compileSegments(segments);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status.pass, "route");
}

TEST(CompilerTest, ShimProducesBitIdenticalSchedules)
{
    // Acceptance: compileForDevice must stay a faithful shim over the
    // Compiler path.
    auto dev = device23();
    ckt::QuantumCircuit c = testCircuit(9);
    for (SchedPolicy policy : {SchedPolicy::Par, SchedPolicy::Zzx}) {
        CompileOptions opt;
        opt.pulse = PulseMethod::Gaussian;
        opt.sched = policy;

        CompiledProgram via_shim = compileForDevice(c, dev, opt);
        Compiler compiler = CompilerBuilder(dev).options(opt).build();
        CompileResult via_api = compiler.compile(c);
        ASSERT_TRUE(via_api.ok());

        EXPECT_EQ(
            scheduleFingerprint(via_shim.schedule, *via_shim.library),
            scheduleFingerprint(via_api.program.schedule,
                                *via_api.program.library));
        ASSERT_EQ(via_shim.native.size(), via_api.program.native.size());
        for (size_t i = 0; i < via_shim.native.size(); ++i) {
            EXPECT_EQ(via_shim.native.gates()[i].kind,
                      via_api.program.native.gates()[i].kind);
            EXPECT_EQ(via_shim.native.gates()[i].qubits,
                      via_api.program.native.gates()[i].qubits);
        }
        EXPECT_EQ(via_shim.final_layout, via_api.program.final_layout);
    }
}

TEST(CompilerTest, SegmentShimMatchesCompilerSegments)
{
    auto dev = device23();
    std::vector<ckt::QuantumCircuit> segments(2,
                                              ckt::QuantumCircuit(6));
    segments[0].cx(0, 5);
    segments[1].cx(0, 5);
    CompileOptions opt;
    opt.pulse = PulseMethod::Gaussian;
    opt.sched = SchedPolicy::Zzx;

    CompiledProgram via_shim =
        compileSegmentsForDevice(segments, dev, opt);
    Compiler compiler = CompilerBuilder(dev).options(opt).build();
    CompileResult via_api = compiler.compileSegments(segments);
    ASSERT_TRUE(via_api.ok());
    EXPECT_EQ(scheduleFingerprint(via_shim.schedule, *via_shim.library),
              scheduleFingerprint(via_api.program.schedule,
                                  *via_api.program.library));
    EXPECT_EQ(via_shim.final_layout, via_api.program.final_layout);
}

TEST(CompilerTest, FixedPulseProviderInjectsLibrary)
{
    // DD composition via the provider seam: every gate comes from the
    // substituted library, no process-global cache involved.
    auto dev = device23();
    pulse::PulseLibrary dd = substituteIdentity(
        pulse::PulseLibrary::gaussian(), dcgIdentity());
    ckt::QuantumCircuit c(6);
    c.sx(0);
    Compiler compiler =
        CompilerBuilder(dev)
            .schedPolicy(SchedPolicy::Zzx)
            .pulseProvider(
                std::make_shared<FixedPulseProvider>(std::move(dd)))
            .build();
    CompileResult result = compiler.compile(c);
    ASSERT_TRUE(result.ok());
    ASSERT_NE(result.program.library, nullptr);
    EXPECT_EQ(result.program.library->name(), "Gaussian+DD");
    // Supplemented identities are the 40 ns DCG sequence; the layer
    // lasts as long as its longest pulse.
    ASSERT_EQ(result.program.schedule.physicalLayerCount(), 1);
    EXPECT_DOUBLE_EQ(result.program.schedule.executionTime(), 40.0);
}

TEST(CompilerTest, CustomSchedulerIsUsed)
{
    /** A policy that simply delegates to ParSched but proves the
     *  injection seam works. */
    class CountingScheduler final : public Scheduler
    {
      public:
        explicit CountingScheduler(std::atomic<int> &calls)
            : calls_(calls)
        {
        }
        std::string name() const override { return "Counting"; }
        Schedule
        schedule(const ckt::QuantumCircuit &native,
                 const dev::Device &dev, const GateDurations &durations,
                 const SchedulerState *state) const override
        {
            (void)state;
            calls_.fetch_add(1);
            return parSchedule(native, dev, durations);
        }

      private:
        std::atomic<int> &calls_;
    };

    auto dev = device23();
    std::atomic<int> calls{0};
    Compiler compiler =
        CompilerBuilder(dev)
            .pulseMethod(PulseMethod::Gaussian)
            .scheduler(std::make_shared<CountingScheduler>(calls))
            .build();
    EXPECT_EQ(compiler.scheduler().name(), "Counting");
    CompileResult result = compiler.compile(testCircuit());
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(calls.load(), 1);
}

TEST(CompilerTest, CustomPassAppendsToPipeline)
{
    /** A post-pipeline stage: counts supplemented identities. */
    class CountSupplementedPass final : public Pass
    {
      public:
        explicit CountSupplementedPass(std::atomic<int> &count)
            : count_(count)
        {
        }
        std::string name() const override { return "count-suppl"; }
        void
        run(CompileContext &ctx) const override
        {
            int n = 0;
            for (const Layer &layer : ctx.program.schedule.layers)
                for (const ScheduledGate &sg : layer.gates)
                    n += sg.supplemented ? 1 : 0;
            count_.store(n);
        }

      private:
        std::atomic<int> &count_;
    };

    auto dev = device23();
    std::atomic<int> count{-1};
    Compiler compiler =
        CompilerBuilder(dev)
            .pulseMethod(PulseMethod::Gaussian)
            .schedPolicy(SchedPolicy::Zzx)
            .addPass(std::make_shared<CountSupplementedPass>(count))
            .build();
    EXPECT_EQ(compiler.passes().size(), 5u);
    CompileResult result = compiler.compile(testCircuit());
    ASSERT_TRUE(result.ok());
    // ZZXSched supplements identities, so the pass must have seen > 0.
    EXPECT_GT(count.load(), 0);
    ASSERT_EQ(result.diagnostics.stages.size(), 5u);
    EXPECT_EQ(result.diagnostics.stages.back().stage, "count-suppl");
}

TEST(CompilerTest, ForeignExceptionsLandOnStatusChannel)
{
    /** A pass throwing a non-qzz exception: must surface as a failed
     *  status, not escape (which would terminate compileBatch
     *  workers). */
    class ThrowingPass final : public Pass
    {
      public:
        std::string name() const override { return "throwing"; }
        void
        run(CompileContext &ctx) const override
        {
            (void)ctx;
            throw std::runtime_error("external failure");
        }
    };

    auto dev = device23();
    Compiler compiler = CompilerBuilder(dev)
                            .pulseMethod(PulseMethod::Gaussian)
                            .addPass(std::make_shared<ThrowingPass>())
                            .build();
    CompileResult direct = compiler.compile(testCircuit());
    EXPECT_FALSE(direct.ok());
    EXPECT_EQ(direct.status.code, CompileStatusCode::Internal);
    EXPECT_EQ(direct.status.pass, "throwing");
    EXPECT_EQ(direct.status.message, "external failure");

    // And through the batch thread pool.
    BatchOptions opt;
    opt.num_threads = 2;
    BatchResult batch = compiler.compileBatch(
        {testCircuit(), testCircuit(8)}, opt);
    ASSERT_EQ(batch.results.size(), 2u);
    EXPECT_FALSE(batch.allOk());
    for (const CompileResult &r : batch.results)
        EXPECT_EQ(r.status.code, CompileStatusCode::Internal);
}

TEST(CompilerTest, ProgramOwnsLibraryAcrossCacheClear)
{
    auto dev = device23();
    Compiler compiler = CompilerBuilder(dev)
                            .pulseMethod(PulseMethod::Gaussian)
                            .build();
    CompileResult result = compiler.compile(testCircuit());
    ASSERT_TRUE(result.ok());
    clearPulseLibraryCache();
    // shared_ptr ownership keeps the library valid after the clear.
    EXPECT_EQ(result.program.library->name(), "Gaussian");
    EXPECT_TRUE(result.program.library->has(pulse::PulseGate::SX));
}

TEST(CompilerTest, SemanticsPreservedThroughPipeline)
{
    auto dev = device23();
    Rng rng(9);
    ckt::QuantumCircuit c = ckt::hiddenShift(6, rng);
    Compiler par = CompilerBuilder(dev)
                       .pulseMethod(PulseMethod::Gaussian)
                       .schedPolicy(SchedPolicy::Par)
                       .build();
    Compiler zzx = CompilerBuilder(dev)
                       .pulseMethod(PulseMethod::Gaussian)
                       .schedPolicy(SchedPolicy::Zzx)
                       .build();
    CompileResult a = par.compile(c);
    CompileResult b = zzx.compile(c);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    auto psi_a = sim::runIdealSchedule(a.program.schedule);
    auto psi_b = sim::runIdealSchedule(b.program.schedule);
    EXPECT_NEAR(psi_a.fidelity(psi_b), 1.0, 1e-9);
}

} // namespace
} // namespace qzz::core
