#include "core/suppression.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "graph/topologies.h"

namespace qzz::core {
namespace {

TEST(SuppressionTest, BipartiteGridAchievesCompleteSuppression)
{
    for (auto [r, c] : {std::pair{2, 2}, {2, 3}, {3, 3}, {3, 4}}) {
        SuppressionSolver solver(graph::gridTopology(r, c));
        SuppressionResult res = solver.solve({});
        EXPECT_FALSE(res.used_fallback);
        EXPECT_EQ(res.metrics.nc, 0) << r << "x" << c;
        EXPECT_EQ(res.metrics.nq, 1) << r << "x" << c;
    }
}

TEST(SuppressionTest, LineCompleteSuppression)
{
    SuppressionSolver solver(graph::lineTopology(7));
    SuppressionResult res = solver.solve({});
    EXPECT_EQ(res.metrics.nc, 0);
    EXPECT_EQ(res.metrics.nq, 1);
}

TEST(SuppressionTest, OddRingCannotBeComplete)
{
    // A 5-ring is not bipartite: at least one edge stays unsuppressed.
    SuppressionSolver solver(graph::ringTopology(5));
    SuppressionResult res = solver.solve({});
    EXPECT_GE(res.metrics.nc, 1);
    // The minimum is exactly one edge (max-cut of C5 = 4 edges).
    EXPECT_EQ(res.metrics.nc, 1);
    EXPECT_EQ(res.metrics.nq, 2);
}

TEST(SuppressionTest, TriangulatedGridMinimizesObjective)
{
    SuppressionSolver solver(graph::triangulatedGridTopology(2, 2));
    // 2 triangles -> exactly one unsuppressed edge is achievable.
    SuppressionResult res = solver.solve({});
    EXPECT_FALSE(res.used_fallback);
    EXPECT_EQ(res.metrics.nc, 1);
    EXPECT_EQ(res.metrics.nq, 2);
}

TEST(SuppressionTest, ConstraintKeepsGateQubitsTogether)
{
    SuppressionSolver solver(graph::gridTopology(3, 4));
    // A two-qubit gate on the interior pair (5, 6).  Contracting the
    // gate edge creates odd faces, so the minimum remaining-set is the
    // gate edge plus a 2-edge odd-vertex pairing: NC = 3 with regions
    // of size <= 2 (cf. Fig. 3(d) layer 1 of the paper: NQ=2, NC=3).
    SuppressionResult res = solver.solve({5, 6});
    EXPECT_TRUE(res.constraint_ok);
    EXPECT_FALSE(res.used_fallback);
    EXPECT_EQ(res.side[5], res.side[6]);
    EXPECT_EQ(res.metrics.nc, 3);
    EXPECT_LE(res.metrics.nq, 2);
}

TEST(SuppressionTest, TwoGatesFarApart)
{
    SuppressionSolver solver(graph::gridTopology(3, 4));
    // Gates on (0, 1) and (10, 11).  Both gate edges stay in the
    // remaining-set plus a small pairing (optimum: NC=4, NQ<=3).
    SuppressionResult res = solver.solve({0, 1, 10, 11});
    EXPECT_TRUE(res.constraint_ok);
    EXPECT_EQ(res.side[0], res.side[1]);
    EXPECT_EQ(res.side[10], res.side[11]);
    EXPECT_EQ(res.side[0], res.side[10]);
    EXPECT_GE(res.metrics.nc, 2);
    EXPECT_LE(res.metrics.nc, 5);
    // The shortest pairing (NC=4, NQ=3) splits Q across the cut; the
    // best *valid* plan keeps NQ at 4.
    EXPECT_LE(res.metrics.nq, 4);
}

TEST(SuppressionTest, SingleQubitGateConstraint)
{
    SuppressionSolver solver(graph::gridTopology(2, 3));
    SuppressionResult res = solver.solve({0});
    EXPECT_TRUE(res.constraint_ok);
    // Complete suppression still possible: 0's side is the cut side.
    EXPECT_EQ(res.metrics.nc, 0);
}

TEST(SuppressionTest, AlphaTradeoffMonotonicity)
{
    // Larger alpha weights NQ more heavily, so the returned NQ cannot
    // grow as alpha grows.
    SuppressionSolver solver(graph::triangulatedGridTopology(3, 3));
    int last_nq = 1000;
    for (double alpha : {0.0, 0.5, 2.0, 10.0}) {
        SuppressionOptions opt;
        opt.alpha = alpha;
        opt.top_k = 4;
        SuppressionResult res = solver.solve({}, opt);
        EXPECT_LE(res.metrics.nq, last_nq) << "alpha=" << alpha;
        last_nq = res.metrics.nq;
    }
}

TEST(SuppressionTest, CutIsValidOnRandomConstrainedQueries)
{
    Rng rng(31);
    SuppressionSolver solver(graph::gridTopology(3, 4));
    const auto &g = solver.topologyGraph();
    for (int trial = 0; trial < 25; ++trial) {
        // Random adjacent pair as a gate.
        const auto &e = g.edges()[size_t(
            rng.uniformInt(0, g.numEdges() - 1))];
        SuppressionResult res = solver.solve({e.u, e.v});
        EXPECT_TRUE(res.constraint_ok);
        EXPECT_EQ(res.side[e.u], res.side[e.v]);
        // Metrics must be self-consistent with the cut.
        SuppressionMetrics check = evaluateCut(g, res.side);
        EXPECT_EQ(check.nc, res.metrics.nc);
        EXPECT_EQ(check.nq, res.metrics.nq);
    }
}

TEST(SuppressionTest, EdgeZzSizeMismatchAlwaysThrows)
{
    // The weighted-objective weights must match the topology's edge
    // count; the check runs before any fallback return, so the
    // caller bug surfaces on every query, not only on layers where
    // the path search happens to succeed.
    SuppressionSolver solver(graph::gridTopology(2, 2));
    const std::vector<double> wrong_size(3, 1.0); // grid 2x2 has 4 edges
    SuppressionOptions opt;
    opt.edge_zz = &wrong_size;
    EXPECT_THROW(solver.solve({}, opt), UserError);
    EXPECT_THROW(solver.solve({0, 1}, opt), UserError);
}

TEST(SuppressionTest, SideMaskOrientsTowardQ)
{
    SuppressionSolver solver(graph::gridTopology(2, 3));
    SuppressionResult res = solver.solve({2});
    auto mask = res.sideMask({2});
    EXPECT_TRUE(mask[2]);
}

TEST(SuppressionTest, TopKExpandsSearch)
{
    // With k = 1 only shortest paths are available; larger k can only
    // improve (or match) the objective.
    SuppressionSolver solver(graph::triangulatedGridTopology(3, 3));
    SuppressionOptions k1;
    k1.top_k = 1;
    SuppressionOptions k4;
    k4.top_k = 4;
    const double obj1 = solver.solve({}, k1).metrics.objective(0.5);
    const double obj4 = solver.solve({}, k4).metrics.objective(0.5);
    EXPECT_LE(obj4, obj1 + 1e-9);
}

} // namespace
} // namespace qzz::core
