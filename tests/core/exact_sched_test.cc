#include "core/exact_sched.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/suppression_invariants.h"
#include "common/units.h"
#include "core/compiler.h"
#include "graph/topologies.h"

namespace qzz::core {
namespace {

dev::Device
uniformDevice(graph::Topology topo, double rate_khz = 200.0)
{
    const std::vector<double> couplings(size_t(topo.g.numEdges()),
                                        khz(rate_khz));
    return dev::Device(std::move(topo), dev::DeviceParams{}, couplings);
}

/**
 * Ground truth by exhaustive enumeration: minimum primary objective
 * over every side assignment keeping Q on side 1 (and, for empty Q,
 * over everything — the metrics are flip-invariant anyway).
 */
double
bruteForceBest(const graph::Graph &g, const std::vector<int> &q,
               const SuppressionOptions &opt)
{
    const int n = g.numVertices();
    double best = std::numeric_limits<double>::infinity();
    for (unsigned mask = 0; mask < (1u << n); ++mask) {
        std::vector<int> side(size_t(n), 0);
        for (int v = 0; v < n; ++v)
            side[size_t(v)] = (mask >> v) & 1u;
        bool ok = true;
        for (int v : q)
            ok = ok && side[size_t(v)] == 1;
        if (!ok)
            continue;
        const SuppressionMetrics m = evaluateCut(g, side);
        best = std::min(
            best, cutPrimaryObjective(m, opt.alpha, opt.edge_zz));
    }
    return best;
}

TEST(ExactSchedTest, BipartiteEmptyQReachesCompleteSuppression)
{
    // Grid 2x3 is bipartite: the unconstrained optimum is the
    // checkerboard, NC = 0 with singleton regions.
    const graph::Topology topo = graph::gridTopology(2, 3);
    ExactCutSolver solver(topo.g);
    const ExactCutResult res = solver.solve({});
    EXPECT_EQ(res.status, ExactStatus::Optimal);
    EXPECT_EQ(res.metrics.nc, 0);
    EXPECT_EQ(res.metrics.nq, 1);
    EXPECT_DOUBLE_EQ(res.objective, 0.5);
    EXPECT_GT(res.nodes, 0);
}

TEST(ExactSchedTest, MatchesBruteForceOnTriangulatedGrid)
{
    // Non-bipartite, so the optimum is a genuine trade-off.  Check
    // the branch-and-bound answer against exhaustive enumeration for
    // a spread of constrained sets.
    const graph::Topology topo = graph::triangulatedGridTopology(2, 3);
    ExactCutSolver solver(topo.g);
    const std::vector<std::vector<int>> qs = {
        {}, {0}, {0, 1}, {2, 3}, {0, 5}, {1, 2, 4}, {0, 1, 2, 3}};
    for (const std::vector<int> &q : qs) {
        const ExactCutResult res = solver.solve(q);
        EXPECT_EQ(res.status, ExactStatus::Optimal);
        EXPECT_NEAR(res.objective,
                    bruteForceBest(topo.g, q, SuppressionOptions{}),
                    1e-12)
            << "Q size " << q.size();
        for (int v : q)
            EXPECT_EQ(res.side[size_t(v)], 1);
    }
}

TEST(ExactSchedTest, MatchesBruteForceWeighted)
{
    // Same instances under the calibration-weighted objective, with
    // one coupler 50x stronger than the rest.
    const graph::Topology topo = graph::triangulatedGridTopology(2, 3);
    std::vector<double> zz(size_t(topo.g.numEdges()), khz(200.0));
    zz[3] = khz(10000.0);
    SuppressionOptions opt;
    opt.edge_zz = &zz;

    ExactCutSolver solver(topo.g);
    for (const std::vector<int> &q :
         std::vector<std::vector<int>>{{}, {0}, {1, 4}, {2, 3, 5}}) {
        const ExactCutResult res = solver.solve(q, opt);
        EXPECT_EQ(res.status, ExactStatus::Optimal);
        EXPECT_NEAR(res.objective, bruteForceBest(topo.g, q, opt),
                    1e-12)
            << "Q size " << q.size();
    }

    // The strong coupler is the most expensive edge to leave on:
    // the unconstrained optimum suppresses it.
    const ExactCutResult res = solver.solve({}, opt);
    EXPECT_EQ(res.metrics.unsuppressed_edge[3], 0);
}

TEST(ExactSchedTest, NeverWorseThanHeuristicSolver)
{
    const graph::Topology topo = graph::triangulatedGridTopology(2, 3);
    ExactCutSolver exact(topo.g);
    SuppressionSolver heuristic(topo);
    for (const std::vector<int> &q :
         std::vector<std::vector<int>>{{}, {0, 1}, {2, 3}, {0, 4, 5}}) {
        const ExactCutResult e = exact.solve(q);
        const SuppressionResult h = heuristic.solve(q);
        ASSERT_EQ(e.status, ExactStatus::Optimal);
        EXPECT_LE(e.objective,
                  cutPrimaryObjective(h.metrics, 0.5, nullptr) + 1e-9)
            << "Q size " << q.size();
    }
}

TEST(ExactSchedTest, BudgetExhaustionFallsBackToTrivialCut)
{
    // A one-node budget cannot finish any search; the incumbent is
    // the trivial S = Q cut, still valid and Q-respecting.
    const graph::Topology topo = graph::triangulatedGridTopology(2, 3);
    ExactCutSolver solver(topo.g);
    ExactLimits limits;
    limits.max_nodes = 1;
    const ExactCutResult res = solver.solve({2, 3}, {}, limits);
    EXPECT_EQ(res.status, ExactStatus::BudgetExhausted);
    EXPECT_EQ(exactStatusName(res.status), "BudgetExhausted");
    ASSERT_EQ(int(res.side.size()), topo.g.numVertices());
    EXPECT_EQ(res.side[2], 1);
    EXPECT_EQ(res.side[3], 1);
    const SuppressionMetrics m = evaluateCut(topo.g, res.side);
    EXPECT_EQ(m.nc, res.metrics.nc);
    EXPECT_EQ(m.nq, res.metrics.nq);

    // A generous budget on the same solver still reports Optimal:
    // the memo keys on the node cap, so the exhausted result must
    // not shadow the full search.
    const ExactCutResult full = solver.solve({2, 3});
    EXPECT_EQ(full.status, ExactStatus::Optimal);
    EXPECT_EQ(exactStatusName(full.status), "Optimal");
    EXPECT_LE(full.objective, res.objective + 1e-12);
}

TEST(ExactSchedTest, DeterministicAcrossSolversAndRuns)
{
    const graph::Topology topo = graph::heavyHexTopology(1, 1);
    ExactCutSolver a(topo.g);
    ExactCutSolver b(topo.g);
    for (const std::vector<int> &q :
         std::vector<std::vector<int>>{{}, {0, 1}, {4, 7}}) {
        const ExactCutResult r1 = a.solve(q);
        const ExactCutResult r2 = a.solve(q); // memoized path
        const ExactCutResult r3 = b.solve(q); // fresh search
        EXPECT_EQ(r1.side, r2.side);
        EXPECT_EQ(r1.side, r3.side);
        EXPECT_EQ(r1.nodes, r3.nodes);
        EXPECT_DOUBLE_EQ(r1.objective, r3.objective);
    }
}

TEST(ExactSchedTest, ExactScheduleIsValidAndMeetsR)
{
    const dev::Device dev =
        uniformDevice(graph::triangulatedGridTopology(2, 3));
    ckt::QuantumCircuit c(6);
    for (int q = 0; q < 6; ++q)
        c.sx(q);
    c.rzx(0, 1, kPi / 2.0);
    c.rzx(4, 5, kPi / 2.0);
    c.rz(2, 0.25);
    for (int q = 0; q < 6; ++q)
        c.sx(q);

    const Schedule s = exactSchedule(c, dev, GateDurations{});
    testsup::expectValidSchedule(s, c, dev, "exact trigrid");
    testsup::expectSuppressionInvariants(
        s, dev, resolveZzxOptions({}, dev), "exact trigrid");
}

TEST(ExactSchedTest, SchedulerClassRoundTripsThroughFactory)
{
    const auto sched = makeScheduler(SchedPolicy::Exact);
    EXPECT_EQ(sched->name(), "ExactSched");
    EXPECT_EQ(schedPolicyName(SchedPolicy::Exact), "ExactSched");
    EXPECT_EQ(schedPolicyFromName("ExactSched"), SchedPolicy::Exact);
    EXPECT_EQ(schedPolicyFromName("exact"), SchedPolicy::Exact);

    // Scheduler-interface output matches the direct entry point.
    const dev::Device dev = uniformDevice(graph::gridTopology(2, 3));
    ckt::QuantumCircuit c(6);
    for (int q = 0; q < 6; ++q)
        c.sx(q);
    c.rzx(0, 1, kPi / 2.0);
    const auto state = sched->prepare(dev);
    const Schedule via_iface =
        sched->schedule(c, dev, GateDurations{}, state.get());
    const Schedule direct = exactSchedule(c, dev, GateDurations{});
    ASSERT_EQ(via_iface.layers.size(), direct.layers.size());
    for (size_t i = 0; i < via_iface.layers.size(); ++i)
        EXPECT_EQ(via_iface.layers[i].side, direct.layers[i].side);
}

} // namespace
} // namespace qzz::core
