#include "core/cycle_sched.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/suppression_invariants.h"
#include "common/units.h"
#include "core/compiler.h"
#include "graph/topologies.h"

namespace qzz::core {
namespace {

dev::Device
uniformDevice(graph::Topology topo, double rate_khz = 200.0)
{
    const std::vector<double> couplings(size_t(topo.g.numEdges()),
                                        khz(rate_khz));
    return dev::Device(std::move(topo), dev::DeviceParams{}, couplings);
}

/** @p rounds rounds of SX on every qubit. */
ckt::QuantumCircuit
sxRounds(int n, int rounds)
{
    ckt::QuantumCircuit c(n);
    for (int r = 0; r < rounds; ++r)
        for (int q = 0; q < n; ++q)
            c.sx(q);
    return c;
}

TEST(CycleSchedTest, ZeroHistoryWeightMatchesZzxWeighted)
{
    // With history_weight = 0 the boost factor is identically 1 and
    // the per-layer weights are |zz| — the policy must reproduce the
    // weighted heuristic bit-identically, accumulated state or not.
    const graph::Topology topo = graph::triangulatedGridTopology(2, 3);
    std::vector<double> zz(size_t(topo.g.numEdges()), khz(200.0));
    zz[3] = khz(10000.0);
    const dev::Device dev(topo, dev::DeviceParams{}, zz);

    ckt::QuantumCircuit c(6);
    for (int q = 0; q < 6; ++q)
        c.sx(q);
    c.rzx(0, 1, kPi / 2.0);
    c.rzx(4, 5, kPi / 2.0);
    for (int q = 0; q < 6; ++q)
        c.sx(q);

    const ZzxDeviceTables tables(dev);
    CycleOptions opt;
    opt.history_weight = 0.0;
    const Schedule cycle =
        cycleAwareSchedule(c, dev, GateDurations{}, opt, tables);
    const Schedule weighted =
        zzxWeightedSchedule(c, dev, GateDurations{}, {}, tables);
    ASSERT_EQ(cycle.layers.size(), weighted.layers.size());
    for (size_t i = 0; i < cycle.layers.size(); ++i) {
        EXPECT_EQ(cycle.layers[i].side, weighted.layers[i].side)
            << "layer " << i;
        EXPECT_EQ(cycle.layers[i].gates.size(),
                  weighted.layers[i].gates.size())
            << "layer " << i;
    }
}

TEST(CycleSchedTest, RotatesResidualAcrossOddRing)
{
    // An odd ring cannot be fully suppressed: every 1Q layer leaves
    // at least one coupling on.  The memoizing weighted policy picks
    // the *same* cut each layer, piling the whole residual onto one
    // edge; the cycle-aware policy must spread it out, so its worst
    // per-edge accumulated phase is strictly lower.
    const dev::Device dev = uniformDevice(graph::ringTopology(5));
    const ckt::QuantumCircuit c = sxRounds(5, 6);
    const ZzxDeviceTables tables(dev);

    const Schedule weighted =
        zzxWeightedSchedule(c, dev, GateDurations{}, {}, tables);
    const Schedule cycle =
        cycleAwareSchedule(c, dev, GateDurations{}, {}, tables);

    const std::vector<double> acc_w = accumulatedZz(weighted, tables.zz);
    const std::vector<double> acc_c = accumulatedZz(cycle, tables.zz);
    const double max_w = *std::max_element(acc_w.begin(), acc_w.end());
    const double max_c = *std::max_element(acc_c.begin(), acc_c.end());
    EXPECT_GT(max_w, 0.0);
    EXPECT_LT(max_c, max_w);

    // The weighted policy concentrates on a single edge...
    int hot_w = 0;
    for (double a : acc_w)
        hot_w += a > 0.0 ? 1 : 0;
    EXPECT_EQ(hot_w, 1);
    // ...the cycle-aware policy touches several.
    int hot_c = 0;
    for (double a : acc_c)
        hot_c += a > 0.0 ? 1 : 0;
    EXPECT_GT(hot_c, 1);
}

TEST(CycleSchedTest, AccumulatedZzMatchesLayerCounts)
{
    // On a uniform snapshot every unsuppressed edge of a layer
    // contributes the same |zz| * duration, so the total accumulated
    // phase equals the sum of NC * duration over physical layers.
    const dev::Device dev = uniformDevice(graph::ringTopology(5));
    const ckt::QuantumCircuit c = sxRounds(5, 3);
    const ZzxDeviceTables tables(dev);
    const Schedule s =
        cycleAwareSchedule(c, dev, GateDurations{}, {}, tables);

    const std::vector<double> acc = accumulatedZz(s, tables.zz);
    double total = 0.0;
    for (double a : acc)
        total += a;
    double expected = 0.0;
    for (const Layer &l : s.layers)
        if (!l.is_virtual)
            expected += double(l.metrics.nc) * std::abs(tables.zz[0]) *
                        l.duration;
    EXPECT_NEAR(total, expected, 1e-9);
}

TEST(CycleSchedTest, SchedulesAreValidAndMeetR)
{
    const dev::Device dev =
        uniformDevice(graph::triangulatedGridTopology(2, 3));
    ckt::QuantumCircuit c(6);
    for (int q = 0; q < 6; ++q)
        c.sx(q);
    c.rzx(0, 1, kPi / 2.0);
    c.rzx(2, 5, kPi / 2.0);
    c.rz(4, 0.5);
    for (int q = 0; q < 6; ++q)
        c.sx(q);
    c.rzx(3, 4, kPi / 2.0);

    const Schedule s = cycleAwareSchedule(c, dev, GateDurations{});
    testsup::expectValidSchedule(s, c, dev, "cycle trigrid");
    testsup::expectSuppressionInvariants(
        s, dev, resolveZzxOptions({}, dev), "cycle trigrid");
}

TEST(CycleSchedTest, SchedulerClassRoundTripsThroughFactory)
{
    const auto sched = makeScheduler(SchedPolicy::CycleAware);
    EXPECT_EQ(sched->name(), "CycleAware");
    EXPECT_EQ(schedPolicyName(SchedPolicy::CycleAware), "CycleAware");
    EXPECT_EQ(schedPolicyFromName("CycleAware"),
              SchedPolicy::CycleAware);
    EXPECT_EQ(schedPolicyFromName("cycle"), SchedPolicy::CycleAware);

    const dev::Device dev = uniformDevice(graph::ringTopology(5));
    const ckt::QuantumCircuit c = sxRounds(5, 4);
    const auto state = sched->prepare(dev);
    const Schedule via_iface =
        sched->schedule(c, dev, GateDurations{}, state.get());
    const Schedule direct = cycleAwareSchedule(c, dev, GateDurations{});
    ASSERT_EQ(via_iface.layers.size(), direct.layers.size());
    for (size_t i = 0; i < via_iface.layers.size(); ++i)
        EXPECT_EQ(via_iface.layers[i].side, direct.layers[i].side);
}

} // namespace
} // namespace qzz::core
