#include "core/zzx_sched.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "circuit/decompose.h"
#include "common/error.h"
#include "circuit/router.h"
#include "common/units.h"
#include "core/par_sched.h"
#include "graph/topologies.h"
#include "sim/ideal_sim.h"

namespace qzz::core {
namespace {

dev::Device
gridDevice(int rows, int cols, uint64_t seed = 1)
{
    Rng rng(seed);
    return dev::Device(graph::gridTopology(rows, cols),
                       dev::DeviceParams{}, rng);
}

/** Schedule invariants shared by all tests. */
void
checkInvariants(const Schedule &s, const ckt::QuantumCircuit &c,
                const dev::Device &dev)
{
    int total = 0;
    for (const Layer &l : s.layers) {
        std::vector<int> used(size_t(s.num_qubits), 0);
        for (const ScheduledGate &sg : l.gates) {
            if (!sg.supplemented)
                ++total;
            for (int q : sg.gate.qubits) {
                if (!sg.gate.isVirtual()) {
                    EXPECT_EQ(used[q], 0) << "qubit reused in layer";
                    used[q] = 1;
                }
            }
        }
        if (l.is_virtual)
            continue;
        // The driven set must equal the S side of the recorded cut.
        ASSERT_EQ(l.side.size(), size_t(s.num_qubits));
        for (int q = 0; q < s.num_qubits; ++q)
            EXPECT_EQ(used[q] != 0, l.side[q] == 1)
                << "driven set differs from cut side at qubit " << q;
        // Metrics are consistent with the side.
        SuppressionMetrics m = evaluateCut(dev.graph(), l.side);
        EXPECT_EQ(m.nc, l.metrics.nc);
        EXPECT_EQ(m.nq, l.metrics.nq);
    }
    EXPECT_EQ(total, int(c.size()));
}

TEST(ZzxSchedTest, SingleQubitLayerCompleteSuppression)
{
    // Single-qubit gates on every qubit of a bipartite grid: each
    // layer achieves NC = 0 (complete suppression).
    ckt::QuantumCircuit c(6);
    for (int q = 0; q < 6; ++q)
        c.sx(q);
    auto dev = gridDevice(2, 3);
    Schedule s = zzxSchedule(c, dev, GateDurations{});
    checkInvariants(s, c, dev);
    for (const Layer &l : s.layers)
        if (!l.is_virtual) {
            EXPECT_EQ(l.metrics.nc, 0);
        }
    // Two checkerboard halves.
    EXPECT_EQ(s.physicalLayerCount(), 2);
}

TEST(ZzxSchedTest, IdentitySupplementationFillsS)
{
    ckt::QuantumCircuit c(6);
    c.sx(0); // lone gate
    auto dev = gridDevice(2, 3);
    Schedule s = zzxSchedule(c, dev, GateDurations{});
    checkInvariants(s, c, dev);
    ASSERT_EQ(s.physicalLayerCount(), 1);
    const Layer &l = s.layers.front();
    // Qubit 0's checkerboard class has 3 members: 2 supplemented.
    int supplemented = 0;
    for (const ScheduledGate &sg : l.gates)
        if (sg.supplemented) {
            ++supplemented;
            EXPECT_EQ(sg.gate.kind, ckt::GateKind::I);
        }
    EXPECT_EQ(supplemented, 2);
    EXPECT_EQ(l.metrics.nc, 0);
}

TEST(ZzxSchedTest, RequirementBoundsHold)
{
    Rng rng(3);
    ckt::QuantumCircuit logical(9);
    logical.h(0);
    for (int q = 0; q + 1 < 9; ++q)
        logical.cx(q, q + 1);
    auto dev = gridDevice(3, 3);
    ckt::RoutedCircuit routed =
        ckt::routeCircuit(logical, dev.graph());
    ckt::QuantumCircuit native = ckt::decomposeToNative(routed.circuit);

    ZzxOptions opt = resolveZzxOptions({}, dev);
    Schedule s = zzxSchedule(native, dev, GateDurations{}, opt);
    checkInvariants(s, native, dev);
    for (const Layer &l : s.layers) {
        if (l.is_virtual)
            continue;
        EXPECT_LE(l.metrics.nq, opt.nq_max);
        EXPECT_LE(l.metrics.nc, opt.nc_max);
    }
}

TEST(ZzxSchedTest, SemanticsMatchParSched)
{
    // Both schedulers must produce the same ideal output state.
    Rng rng(8);
    ckt::QuantumCircuit logical(6);
    logical.h(0);
    logical.cx(0, 1);
    logical.cx(2, 3);
    logical.cx(4, 5);
    logical.h(3);
    logical.cx(1, 2);
    auto dev = gridDevice(2, 3);
    ckt::QuantumCircuit native = ckt::decomposeToNative(
        ckt::routeCircuit(logical, dev.graph()).circuit);

    Schedule par = parSchedule(native, dev, GateDurations{});
    Schedule zzx = zzxSchedule(native, dev, GateDurations{});
    sim::StateVector a = sim::runIdealSchedule(par);
    sim::StateVector b = sim::runIdealSchedule(zzx);
    EXPECT_NEAR(a.fidelity(b), 1.0, 1e-9);
}

TEST(ZzxSchedTest, ExecutionTimeWithinTwoXOfParSched)
{
    // Fig. 24's headline: the parallelism sacrifice stays below ~2x.
    Rng rng(4);
    ckt::QuantumCircuit logical = [] {
        Rng r(12);
        ckt::QuantumCircuit c(9);
        for (int i = 0; i < 12; ++i) {
            int a = r.uniformInt(0, 8), b = r.uniformInt(0, 8);
            if (a != b)
                c.cx(a, b);
            c.h(r.uniformInt(0, 8));
        }
        return c;
    }();
    auto dev = gridDevice(3, 3);
    ckt::QuantumCircuit native = ckt::decomposeToNative(
        ckt::routeCircuit(logical, dev.graph()).circuit);
    Schedule par = parSchedule(native, dev, GateDurations{});
    Schedule zzx = zzxSchedule(native, dev, GateDurations{});
    EXPECT_LE(zzx.executionTime(), 3.0 * par.executionTime());
    EXPECT_GE(zzx.executionTime(), par.executionTime() - 1e-9);
}

TEST(ZzxSchedTest, Theorem61ClosestGatesSplit)
{
    // Theorem 6.1: when simultaneous two-qubit gates are forced into
    // K layers, the top-K closest pairs end up in different layers.
    ckt::QuantumCircuit c(9);
    // Three parallel CNOTs as in Fig. 13.
    c.rzx(0, 3, kPi / 2.0);
    c.rzx(4, 1, kPi / 2.0);
    c.rzx(2, 5, kPi / 2.0);
    auto dev = gridDevice(3, 3);
    Schedule s = zzxSchedule(c, dev, GateDurations{});
    // Find the layer index of each gate.
    auto layer_of = [&](int q0, int q1) {
        for (size_t i = 0; i < s.layers.size(); ++i)
            for (const ScheduledGate &sg : s.layers[i].gates)
                if (sg.gate.isTwoQubit() && sg.gate.qubits[0] == q0 &&
                    sg.gate.qubits[1] == q1)
                    return int(i);
        return -1;
    };
    const int l03 = layer_of(0, 3);
    const int l41 = layer_of(4, 1);
    ASSERT_NE(l03, -1);
    ASSERT_NE(l41, -1);
    // The two closest gates (distance 6) must not share a layer if
    // the schedule used more than one layer for the three gates.
    const int l25 = layer_of(2, 5);
    const int distinct =
        1 + (l41 != l03) + (l25 != l03 && l25 != l41);
    if (distinct > 1) {
        EXPECT_NE(l03, l41);
    }
}

TEST(ZzxSchedTest, VirtualGatesFlushInOrder)
{
    ckt::QuantumCircuit c(2);
    c.rz(0, 0.1);
    c.sx(0);
    c.rz(0, 0.2);
    c.sx(0);
    auto dev = gridDevice(1, 2);
    Schedule s = zzxSchedule(c, dev, GateDurations{});
    // Order: virtual, physical, virtual, physical.
    std::vector<bool> kinds;
    for (const Layer &l : s.layers)
        kinds.push_back(l.is_virtual);
    EXPECT_EQ(kinds,
              (std::vector<bool>{true, false, true, false}));
}

TEST(ZzxSchedTest, DeterministicAcrossRuns)
{
    Rng rng(5);
    ckt::QuantumCircuit c(6);
    for (int q = 0; q < 6; ++q)
        c.sx(q);
    c.rzx(0, 1, kPi / 2.0);
    c.rzx(4, 5, kPi / 2.0);
    auto dev = gridDevice(2, 3);
    Schedule s1 = zzxSchedule(c, dev, GateDurations{});
    Schedule s2 = zzxSchedule(c, dev, GateDurations{});
    ASSERT_EQ(s1.layers.size(), s2.layers.size());
    for (size_t i = 0; i < s1.layers.size(); ++i)
        EXPECT_EQ(s1.layers[i].gates.size(), s2.layers[i].gates.size());
}

/** Layer-by-layer structural equality of two schedules. */
void
expectSameSchedule(const Schedule &a, const Schedule &b)
{
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (size_t i = 0; i < a.layers.size(); ++i) {
        const Layer &la = a.layers[i];
        const Layer &lb = b.layers[i];
        EXPECT_EQ(la.is_virtual, lb.is_virtual) << "layer " << i;
        EXPECT_EQ(la.side, lb.side) << "layer " << i;
        EXPECT_EQ(la.metrics.nc, lb.metrics.nc) << "layer " << i;
        EXPECT_EQ(la.metrics.nq, lb.metrics.nq) << "layer " << i;
        ASSERT_EQ(la.gates.size(), lb.gates.size()) << "layer " << i;
        for (size_t g = 0; g < la.gates.size(); ++g) {
            EXPECT_EQ(la.gates[g].gate.kind, lb.gates[g].gate.kind);
            EXPECT_EQ(la.gates[g].gate.qubits, lb.gates[g].gate.qubits);
            EXPECT_EQ(la.gates[g].supplemented, lb.gates[g].supplemented);
        }
    }
}

TEST(ZzxSchedTest, WeightedMatchesClassicOnUniformSnapshot)
{
    // Uniform snapshot: every per-edge weight normalizes to exactly
    // 1.0, the weighted objective degenerates to alpha * NQ + NC, and
    // the weighted search must reproduce classic ZZXSched decisions
    // bit-identically.  Triangulated grid so layers genuinely carry
    // NC > 0 and the objective is exercised.
    const graph::Topology topo = graph::triangulatedGridTopology(2, 3);
    const std::vector<double> couplings(size_t(topo.g.numEdges()),
                                        khz(200.0));
    const dev::Device dev(topo, dev::DeviceParams{}, couplings);

    ckt::QuantumCircuit c(6);
    for (int q = 0; q < 6; ++q)
        c.sx(q);
    c.rzx(0, 1, kPi / 2.0);
    c.rzx(4, 5, kPi / 2.0);
    for (int q = 0; q < 6; ++q)
        c.sx(q);

    const ZzxDeviceTables tables(dev);
    const Schedule classic =
        zzxSchedule(c, dev, GateDurations{}, {}, tables);
    const Schedule weighted =
        zzxWeightedSchedule(c, dev, GateDurations{}, {}, tables);
    expectSameSchedule(classic, weighted);
}

TEST(ZzxSchedTest, WeightedSteersResidualOntoWeakCouplers)
{
    // One coupler 50x stronger than the rest on a non-bipartite
    // topology (complete suppression impossible): the weighted
    // objective must keep the strong edge suppressed and never leave
    // more calibrated residual than the classic uniform count.
    const graph::Topology topo = graph::triangulatedGridTopology(2, 3);
    std::vector<double> couplings(size_t(topo.g.numEdges()),
                                  khz(200.0));
    const size_t strong_edge = 3;
    couplings[strong_edge] = khz(10000.0);
    const dev::Device dev(topo, dev::DeviceParams{}, couplings);

    ckt::QuantumCircuit c(6);
    for (int q = 0; q < 6; ++q)
        c.sx(q);

    const ZzxDeviceTables tables(dev);
    const Schedule classic =
        zzxSchedule(c, dev, GateDurations{}, {}, tables);
    const Schedule weighted =
        zzxWeightedSchedule(c, dev, GateDurations{}, {}, tables);
    checkInvariants(weighted, c, dev);

    EXPECT_LE(meanResidualZz(weighted, tables.zz),
              meanResidualZz(classic, tables.zz));
    // The strong coupler never stays on in a weighted layer.
    for (const Layer &l : weighted.layers) {
        if (l.is_virtual)
            continue;
        ASSERT_EQ(l.metrics.unsuppressed_edge.size(), couplings.size());
        EXPECT_EQ(l.metrics.unsuppressed_edge[strong_edge], 0);
    }
}

TEST(ZzxSchedTest, WeightedUsesRateMagnitudes)
{
    // Static ZZ is conventionally negative and Calibration only
    // requires finite rates: the weighted objective must weigh by
    // |zz|, so an all-negative snapshot schedules identically to its
    // mirrored positive one and still suppresses the strongest
    // coupler (a signed sum would instead *reward* leaving it on).
    const graph::Topology topo = graph::triangulatedGridTopology(2, 3);
    std::vector<double> pos(size_t(topo.g.numEdges()), khz(200.0));
    const size_t strong_edge = 3;
    pos[strong_edge] = khz(10000.0);
    std::vector<double> neg = pos;
    for (double &rate : neg)
        rate = -rate;
    const dev::Device dev_pos(topo, dev::DeviceParams{}, pos);

    dev::Calibration calib =
        dev_pos.calibration(); // keep coherence/anharmonicity equal
    calib.zz = neg;
    const dev::Device dev_neg = dev_pos.withCalibration(calib);

    ckt::QuantumCircuit c(6);
    for (int q = 0; q < 6; ++q)
        c.sx(q);

    const ZzxDeviceTables tables_pos(dev_pos);
    const ZzxDeviceTables tables_neg(dev_neg);
    const Schedule wpos =
        zzxWeightedSchedule(c, dev_pos, GateDurations{}, {}, tables_pos);
    const Schedule wneg =
        zzxWeightedSchedule(c, dev_neg, GateDurations{}, {}, tables_neg);
    expectSameSchedule(wpos, wneg);
    for (const Layer &l : wneg.layers)
        if (!l.is_virtual)
            EXPECT_EQ(l.metrics.unsuppressed_edge[strong_edge], 0);
}

TEST(ZzxSchedTest, WeightedRespectsRequirementBounds)
{
    // The suppression requirement R is policy-independent: weighted
    // layers obey the same NQ/NC caps as classic ones (mirrors
    // RequirementBoundsHold, on a heterogeneous snapshot).
    Rng rng(21);
    const graph::Topology topo = graph::gridTopology(3, 3);
    const dev::Device dev(
        topo, dev::Calibration::jittered(topo, dev::DeviceParams{},
                                         {0.0, 0.0, 0.0, 0.5}, rng));
    ckt::QuantumCircuit logical(9);
    logical.h(0);
    for (int q = 0; q + 1 < 9; ++q)
        logical.cx(q, q + 1);
    ckt::QuantumCircuit native = ckt::decomposeToNative(
        ckt::routeCircuit(logical, dev.graph()).circuit);

    const ZzxOptions opt = resolveZzxOptions({}, dev);
    const Schedule s =
        zzxWeightedSchedule(native, dev, GateDurations{}, opt);
    checkInvariants(s, native, dev);
    for (const Layer &l : s.layers) {
        if (l.is_virtual)
            continue;
        EXPECT_LE(l.metrics.nq, opt.nq_max);
        EXPECT_LE(l.metrics.nc, opt.nc_max);
    }
}

TEST(ZzxSchedTest, DeviceTablesCarryCalibratedZz)
{
    // The shared per-device tables expose the snapshot's per-edge ZZ
    // rates so policies and diagnostics can weigh cuts by calibrated
    // residual crosstalk.
    const dev::Device dev = gridDevice(2, 3);
    const ZzxDeviceTables tables(dev);
    EXPECT_EQ(tables.zz, dev.couplings());
    EXPECT_EQ(int(tables.zz.size()), dev.numCouplings());
}

} // namespace
} // namespace qzz::core
