#include "core/pulse_opt.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>

#include "common/error.h"
#include "common/units.h"
#include "core/regions.h"
#include "graph/topologies.h"
#include "linalg/expm.h"

namespace qzz::core {
namespace {

const la::CMatrix &
sxTarget()
{
    static const la::CMatrix m = la::expPauli(kPi / 4.0, 0.0, 0.0);
    return m;
}

/** Small optimization budget for unit tests. */
PulseOptConfig
testConfig(PulseMethod method, pulse::PulseGate gate)
{
    PulseOptConfig cfg = defaultPulseOptConfig(method, gate);
    cfg.adam.max_iters = 800;
    cfg.restarts = 1;
    return cfg;
}

TEST(OptimizerTest, AdamMinimizesQuadratic)
{
    LossFn loss = [](const std::vector<double> &x) {
        double s = 0.0;
        for (size_t i = 0; i < x.size(); ++i) {
            const double d = x[i] - double(i);
            s += d * d;
        }
        return s;
    };
    AdamOptions opt;
    opt.max_iters = 800;
    opt.lr = 0.1;
    opt.lr_final = 0.02;
    auto res = minimizeAdam(loss, {5.0, -3.0, 7.0}, opt);
    EXPECT_LT(res.loss, 1e-4);
    EXPECT_NEAR(res.params[1], 1.0, 0.05);
}

TEST(OptimizerTest, HistoryRecordsProgress)
{
    LossFn loss = [](const std::vector<double> &x) {
        return x[0] * x[0];
    };
    auto res = minimizeAdam(loss, {2.0});
    EXPECT_GT(res.history.size(), 1u);
    EXPECT_LE(res.loss, res.history.front());
}

TEST(PulseOptTest, PertSxImplementsGateAndSuppresses)
{
    auto opt = optimizePulse(PulseMethod::Pert, pulse::PulseGate::SX,
                             testConfig(PulseMethod::Pert,
                                        pulse::PulseGate::SX));
    // Gate implemented.
    EXPECT_GT(gateFidelity(opt.program, sxTarget()), 1.0 - 1e-4);
    // First-order crosstalk strongly reduced vs the Gaussian baseline.
    auto gauss =
        pulse::PulseLibrary::gaussian().get(pulse::PulseGate::SX);
    const double gauss_norm = firstOrderCrosstalkNorm(gauss, 0.0);
    const double opt_norm = firstOrderCrosstalkNorm(opt.program, 0.0);
    EXPECT_LT(opt_norm, gauss_norm / 10.0);
    // And the observed infidelity at 200 kHz improves accordingly.
    const double gauss_infid =
        oneQubitCrosstalkInfidelity(gauss, sxTarget(), khz(200.0));
    const double opt_infid = oneQubitCrosstalkInfidelity(
        opt.program, sxTarget(), khz(200.0));
    EXPECT_LT(opt_infid, gauss_infid / 10.0);
}

TEST(PulseOptTest, PertIdentitySuppresses)
{
    auto opt = optimizePulse(PulseMethod::Pert,
                             pulse::PulseGate::Identity,
                             testConfig(PulseMethod::Pert,
                                        pulse::PulseGate::Identity));
    EXPECT_GT(gateFidelity(opt.program, la::identity2()), 1.0 - 1e-4);
    auto gauss = pulse::PulseLibrary::gaussian().get(
        pulse::PulseGate::Identity);
    const double g =
        oneQubitCrosstalkInfidelity(gauss, la::identity2(), khz(200.0));
    const double o = oneQubitCrosstalkInfidelity(
        opt.program, la::identity2(), khz(200.0));
    EXPECT_LT(o, g / 5.0);
}

TEST(PulseOptTest, CoeffsRoundTrip)
{
    auto cfg =
        testConfig(PulseMethod::Pert, pulse::PulseGate::SX);
    cfg.adam.max_iters = 30;
    auto opt =
        optimizePulse(PulseMethod::Pert, pulse::PulseGate::SX, cfg);
    ASSERT_EQ(opt.coeffs.size(), 2u);
    auto rebuilt = programFromCoeffs(opt.coeffs, cfg.t_gate);
    for (double t : {1.0, 7.0, 13.0, 19.0}) {
        EXPECT_NEAR(rebuilt.x_a->value(t), opt.program.x_a->value(t),
                    1e-12);
        EXPECT_NEAR(rebuilt.y_a->value(t), opt.program.y_a->value(t),
                    1e-12);
    }
}

TEST(PulseOptTest, MethodNames)
{
    EXPECT_EQ(pulseMethodName(PulseMethod::Gaussian), "Gaussian");
    EXPECT_EQ(pulseMethodName(PulseMethod::OptCtrl), "OptCtrl");
    EXPECT_EQ(pulseMethodName(PulseMethod::Pert), "Pert");
    EXPECT_EQ(pulseMethodName(PulseMethod::DCG), "DCG");
}

TEST(PulseOptTest, GaussianAndDcgLibrariesBuildWithoutOptimization)
{
    clearPulseLibraryCache();
    const auto &gau = getPulseLibrary(PulseMethod::Gaussian);
    EXPECT_EQ(gau.name(), "Gaussian");
    const auto &dcg = getPulseLibrary(PulseMethod::DCG);
    EXPECT_EQ(dcg.name(), "DCG");
    // Memoized: same object back.
    EXPECT_EQ(&getPulseLibrary(PulseMethod::Gaussian), &gau);
}

TEST(PulseOptTest, OnlyOptimizableMethodsAccepted)
{
    EXPECT_THROW(optimizePulse(PulseMethod::Gaussian,
                               pulse::PulseGate::SX,
                               PulseOptConfig{}),
                 UserError);
}

TEST(PulseOptTest, MethodNameRoundTrips)
{
    for (PulseMethod m :
         {PulseMethod::Gaussian, PulseMethod::OptCtrl,
          PulseMethod::Pert, PulseMethod::DCG}) {
        auto parsed = pulseMethodFromName(pulseMethodName(m));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, m);
    }
    // Case-insensitive, plus the configName() abbreviation.
    EXPECT_EQ(pulseMethodFromName("pert"), PulseMethod::Pert);
    EXPECT_EQ(pulseMethodFromName("GAUSSIAN"), PulseMethod::Gaussian);
    EXPECT_EQ(pulseMethodFromName("Gau"), PulseMethod::Gaussian);
    EXPECT_EQ(pulseMethodFromName("dcg"), PulseMethod::DCG);
    EXPECT_FALSE(pulseMethodFromName("").has_value());
    EXPECT_FALSE(pulseMethodFromName("Pertt").has_value());
    EXPECT_FALSE(pulseMethodFromName("bogus").has_value());
}

TEST(PulseOptTest, SharedLibrarySurvivesCacheClear)
{
    clearPulseLibraryCache();
    auto gau = getPulseLibraryShared(PulseMethod::Gaussian);
    ASSERT_NE(gau, nullptr);
    clearPulseLibraryCache();
    EXPECT_EQ(gau->name(), "Gaussian");
    EXPECT_TRUE(gau->has(pulse::PulseGate::RZX));
    // A fresh request rebuilds; the old handle stays distinct but
    // valid.
    auto rebuilt = getPulseLibraryShared(PulseMethod::Gaussian);
    EXPECT_NE(rebuilt.get(), gau.get());
    EXPECT_EQ(rebuilt->name(), gau->name());
}

TEST(PulseOptTest, DraggedLibraryIsMemoizedPerAnharmonicity)
{
    clearPulseLibraryCache();
    const double alpha = -mhz(300.0);
    auto a = getDraggedLibraryShared(PulseMethod::Gaussian, alpha);
    auto b = getDraggedLibraryShared(PulseMethod::Gaussian, alpha);
    ASSERT_NE(a, nullptr);
    // Same (method, alpha) -> the same shared variant.
    EXPECT_EQ(a.get(), b.get());
    // A different calibrated anharmonicity is a different variant.
    auto c = getDraggedLibraryShared(PulseMethod::Gaussian,
                                     -mhz(250.0));
    EXPECT_NE(a.get(), c.get());
    EXPECT_THROW(getDraggedLibraryShared(PulseMethod::Gaussian, 0.0),
                 UserError);

    // The DRAG correction adds the derivative quadrature but must
    // not change durations (schedules depend on them).
    const auto base = getPulseLibraryShared(PulseMethod::Gaussian);
    const pulse::PulseProgram &sx_base =
        base->get(pulse::PulseGate::SX);
    const pulse::PulseProgram &sx_drag = a->get(pulse::PulseGate::SX);
    EXPECT_EQ(sx_drag.duration, sx_base.duration);
    ASSERT_NE(sx_drag.y_a, nullptr);
    // y' = -x'(t)/alpha: nonzero off the Gaussian peak.
    EXPECT_NE(sx_drag.y_a->value(5.0), 0.0);
    EXPECT_NEAR(sx_drag.y_a->value(5.0),
                -sx_base.x_a->derivative(5.0) / alpha, 1e-12);
    clearPulseLibraryCache();
}

TEST(PulseOptTest, PerQubitLibrariesFollowTheSnapshot)
{
    clearPulseLibraryCache();
    // Uniform device: every qubit aliases one variant.
    Rng rng(3);
    const dev::Device uniform(graph::gridTopology(2, 2),
                              dev::DeviceParams{}, rng);
    auto libs =
        perQubitPulseLibraries(PulseMethod::Gaussian, uniform);
    ASSERT_EQ(int(libs.size()), uniform.numQubits());
    for (const auto &lib : libs)
        EXPECT_EQ(lib.get(), libs[0].get());

    // Heterogeneous snapshot: distinct anharmonicities get distinct
    // variants, equal ones still share.
    dev::Calibration calib = uniform.calibration();
    calib.anharmonicity[1] = -mhz(290.0);
    calib.anharmonicity[2] = -mhz(290.0);
    const dev::Device hetero = uniform.withCalibration(calib);
    auto hlibs =
        perQubitPulseLibraries(PulseMethod::Gaussian, hetero);
    EXPECT_NE(hlibs[1].get(), hlibs[0].get());
    EXPECT_EQ(hlibs[2].get(), hlibs[1].get());
    EXPECT_EQ(hlibs[3].get(), hlibs[0].get());
    clearPulseLibraryCache();
}

TEST(PulseOptTest, DeviceCalibratedObjectiveReadsSnapshotZz)
{
    // The calibrated defaults read the snapshot's per-edge ZZ rates:
    // lambda_intra becomes the mean coupling, and the OptCtrl sample
    // grid scales with it.
    Rng rng(8);
    const dev::Device device(graph::gridTopology(2, 3),
                             dev::DeviceParams{}, rng);
    const PulseOptConfig cfg = defaultPulseOptConfig(
        PulseMethod::Pert, pulse::PulseGate::RZX, device);
    EXPECT_DOUBLE_EQ(cfg.objective.lambda_intra,
                     device.calibration().meanZz());

    const PulseOptConfig base = defaultPulseOptConfig(
        PulseMethod::OptCtrl, pulse::PulseGate::SX);
    const PulseOptConfig scaled = defaultPulseOptConfig(
        PulseMethod::OptCtrl, pulse::PulseGate::SX, device);
    ASSERT_EQ(scaled.objective.lambda_samples.size(),
              base.objective.lambda_samples.size());
    const double ratio = device.calibration().meanZz() / khz(200.0);
    for (size_t i = 0; i < base.objective.lambda_samples.size(); ++i)
        EXPECT_DOUBLE_EQ(scaled.objective.lambda_samples[i],
                         base.objective.lambda_samples[i] * ratio);
}

TEST(PulseOptTest, LibraryMemoIsThreadSafe)
{
    // Hammer the memo from many threads while interleaving clears;
    // under TSan/ASan this catches races, and functionally every
    // fetched handle must stay a complete, valid library.
    clearPulseLibraryCache();
    constexpr int kThreads = 8;
    constexpr int kIters = 50;
    std::atomic<int> failures{0};
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([t, &failures]() {
            for (int i = 0; i < kIters; ++i) {
                const PulseMethod m = (t + i) % 2 == 0
                                          ? PulseMethod::Gaussian
                                          : PulseMethod::DCG;
                auto lib = getPulseLibraryShared(m);
                if (lib == nullptr ||
                    lib->name() != pulseMethodName(m) ||
                    !lib->has(pulse::PulseGate::SX) ||
                    !lib->has(pulse::PulseGate::Identity))
                    failures.fetch_add(1);
                if (t == 0 && i % 10 == 9)
                    clearPulseLibraryCache();
            }
        });
    }
    for (std::thread &th : pool)
        th.join();
    EXPECT_EQ(failures.load(), 0);
    clearPulseLibraryCache();
}

} // namespace
} // namespace qzz::core
