#include "core/schedule.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"
#include "core/dcg.h"

namespace qzz::core {
namespace {

TEST(GateDurationsTest, NativeDurations)
{
    GateDurations d;
    EXPECT_DOUBLE_EQ(d.of({ckt::GateKind::SX, {0}}), 20.0);
    EXPECT_DOUBLE_EQ(d.of({ckt::GateKind::I, {0}}), 20.0);
    EXPECT_DOUBLE_EQ(
        d.of({ckt::GateKind::RZX, {0, 1}, {kPi / 2.0}}), 20.0);
    EXPECT_DOUBLE_EQ(d.of({ckt::GateKind::RZ, {0}, {0.5}}), 0.0);
    EXPECT_THROW(d.of({ckt::GateKind::H, {0}}), UserError);
}

TEST(GateDurationsTest, FromLibraryPicksProgramDurations)
{
    GateDurations d =
        GateDurations::fromLibrary(dcgLibrary());
    EXPECT_DOUBLE_EQ(d.sx, 120.0);
    EXPECT_DOUBLE_EQ(d.identity, 40.0);
    // DCG has no RZX program; the default stays.
    EXPECT_DOUBLE_EQ(d.rzx, 20.0);
}

TEST(LayerTest, ActiveQubits)
{
    Layer layer;
    layer.gates.push_back({ckt::Gate(ckt::GateKind::SX, {2}), false});
    layer.gates.push_back(
        {ckt::Gate(ckt::GateKind::RZX, {0, 3}, {kPi / 2.0}), false});
    layer.gates.push_back(
        {ckt::Gate(ckt::GateKind::RZ, {1}, {0.1}), false});
    auto active = layer.activeQubits(4);
    // RZ is virtual: qubit 1 carries no pulse.
    EXPECT_EQ(active, (std::vector<int>{0, 2, 3}));
}

TEST(ScheduleTest, ExecutionTimeSumsDurations)
{
    Schedule s;
    s.num_qubits = 2;
    Layer a;
    a.duration = 20.0;
    Layer b;
    b.is_virtual = true;
    Layer c;
    c.duration = 40.0;
    s.layers = {a, b, c};
    EXPECT_DOUBLE_EQ(s.executionTime(), 60.0);
    EXPECT_EQ(s.physicalLayerCount(), 2);
}

TEST(ScheduleTest, GateCountExcludesSupplemented)
{
    Schedule s;
    s.num_qubits = 2;
    Layer l;
    l.gates.push_back({ckt::Gate(ckt::GateKind::SX, {0}), false});
    l.gates.push_back({ckt::Gate(ckt::GateKind::I, {1}), true});
    s.layers = {l};
    EXPECT_EQ(s.circuitGateCount(), 1);
}

TEST(ScheduleTest, MeanNcAndMaxNq)
{
    Schedule s;
    s.num_qubits = 4;
    Layer a;
    a.metrics.nc = 4;
    a.metrics.nq = 3;
    Layer b;
    b.metrics.nc = 0;
    b.metrics.nq = 1;
    Layer v;
    v.is_virtual = true;
    v.metrics.nc = 99; // must be ignored
    s.layers = {a, v, b};
    EXPECT_DOUBLE_EQ(s.meanNc(), 2.0);
    EXPECT_EQ(s.maxNq(), 3);
}

TEST(ScheduleTest, ResidualZzWeighsUnsuppressedEdges)
{
    // Three couplings with heterogeneous calibrated rates: the
    // residual of a layer is the sum over its unsuppressed edges,
    // not the uniform NC count.
    const std::vector<double> zz = {khz(150.0), khz(200.0),
                                    khz(320.0)};
    Layer cut;
    cut.metrics.nc = 2;
    cut.metrics.unsuppressed_edge = {1, 0, 1};
    EXPECT_DOUBLE_EQ(residualZzRate(cut, zz), zz[0] + zz[2]);

    // No cut structure (ParSched): everything stays on.
    Layer flat;
    EXPECT_DOUBLE_EQ(residualZzRate(flat, zz),
                     zz[0] + zz[1] + zz[2]);

    // Virtual layers are free.
    Layer v;
    v.is_virtual = true;
    v.metrics.unsuppressed_edge = {1, 1, 1};
    EXPECT_DOUBLE_EQ(residualZzRate(v, zz), 0.0);

    Layer suppressed;
    suppressed.metrics.unsuppressed_edge = {0, 0, 0};
    Schedule s;
    s.num_qubits = 4;
    s.layers = {cut, v, suppressed};
    EXPECT_DOUBLE_EQ(meanResidualZz(s, zz), (zz[0] + zz[2]) / 2.0);

    Layer mismatched;
    mismatched.metrics.unsuppressed_edge = {1, 1};
    EXPECT_THROW(residualZzRate(mismatched, zz), UserError);
}

} // namespace
} // namespace qzz::core
