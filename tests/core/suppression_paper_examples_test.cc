/**
 * @file
 * Locks in the paper's worked examples: the NQ/NC numbers quoted in
 * Figs. 3, 13-15 of Sec. 2 and Sec. 6, both as metric evaluations of
 * the paper's drawn plans and as quality bounds on our Algorithm-1
 * implementation.
 *
 * Mapping: the paper numbers qubits 1..N row-major; we use 0..N-1, so
 * paper qubit k is vertex k-1.  The paper's "5x3 grid" (Fig. 3) is
 * 3 rows x 5 columns.
 */

#include <gtest/gtest.h>

#include "core/suppression.h"
#include "core/zzx_sched.h"
#include "graph/topologies.h"

namespace qzz::core {
namespace {

/** Build a side vector with the given vertices in S (= 1). */
std::vector<int>
sideWith(int n, std::initializer_list<int> s)
{
    std::vector<int> side(size_t(n), 0);
    for (int v : s)
        side[v] = 1;
    return side;
}

TEST(PaperFig3, SingleLayerNoIdentities)
{
    // Fig. 3(b): gates on paper qubits {7,8,9,10} of the 5x3 grid,
    // no identity supplementation: NQ = 11, NC = 13.
    auto t = graph::gridTopology(3, 5);
    ASSERT_EQ(t.g.numEdges(), 22);
    auto m = evaluateCut(t.g, sideWith(15, {6, 7, 8, 9}));
    EXPECT_EQ(m.nq, 11);
    EXPECT_EQ(m.nc, 13);
}

TEST(PaperFig3, PlanAIdentities)
{
    // Fig. 3(c) Plan A: identities on paper {1, 11}: NQ = 4, NC = 9.
    auto t = graph::gridTopology(3, 5);
    auto m = evaluateCut(t.g, sideWith(15, {6, 7, 8, 9, 0, 10}));
    EXPECT_EQ(m.nq, 4);
    EXPECT_EQ(m.nc, 9);
}

TEST(PaperFig3, PlanBIdentities)
{
    // Fig. 3(c) Plan B: identities on paper {1, 11, 3, 13}:
    // NQ = 6, NC = 7.
    auto t = graph::gridTopology(3, 5);
    auto m = evaluateCut(t.g, sideWith(15, {6, 7, 8, 9, 0, 10, 2, 12}));
    EXPECT_EQ(m.nq, 6);
    EXPECT_EQ(m.nc, 7);
}

TEST(PaperFig3, LayerOneOfTwoLayerPartition)
{
    // Fig. 3(d) layer 1 keeps only CNOT on paper {7,8}: the solver
    // must reach the quoted NQ = 2, NC = 3.
    SuppressionSolver solver(graph::gridTopology(3, 5));
    SuppressionResult res = solver.solve({6, 7});
    EXPECT_TRUE(res.constraint_ok);
    EXPECT_EQ(res.metrics.nq, 2);
    EXPECT_EQ(res.metrics.nc, 3);
}

TEST(PaperFig15, ParallelFarGatesMetrics)
{
    // Fig. 15(a): CNOT(1,4) + CNOT(3,6) on the 3x3 grid executes with
    // NQ = 2, NC = 3 (identity on the center completes the plan); our
    // solver must find exactly that optimum.
    SuppressionSolver solver(graph::gridTopology(3, 3));
    SuppressionResult res = solver.solve({0, 3, 2, 5});
    EXPECT_TRUE(res.constraint_ok);
    EXPECT_EQ(res.metrics.nq, 2);
    EXPECT_EQ(res.metrics.nc, 3);
}

TEST(PaperFig15, CloseGatesPlanMetrics)
{
    // Fig. 15(b): CNOT(1,4) + CNOT(5,2): the paper's plan (identity
    // on qubit 9) realizes NQ = 4, NC = 6.
    auto t = graph::gridTopology(3, 3);
    auto m = evaluateCut(t.g, sideWith(9, {0, 1, 3, 4, 8}));
    EXPECT_EQ(m.nq, 4);
    EXPECT_EQ(m.nc, 6);
}

TEST(PaperFig15, CloseGatesSolverNearOptimal)
{
    // Our greedy path relaxation must stay within one relaxation step
    // of the drawn optimum (alpha*NQ + NC = 8 at alpha = 0.5).
    SuppressionSolver solver(graph::gridTopology(3, 3));
    SuppressionOptions opt;
    opt.top_k = 5;
    SuppressionResult res = solver.solve({0, 1, 3, 4}, opt);
    EXPECT_TRUE(res.constraint_ok);
    EXPECT_EQ(res.metrics.nc, 6);
    EXPECT_LE(res.metrics.objective(0.5), 9.0);
}

TEST(PaperFig15, GateDistancesMatch)
{
    // D(CNOT 1-4, CNOT 3-6) = 10 and D(CNOT 1-4, CNOT 5-2) = 6.
    auto t = graph::gridTopology(3, 3);
    const auto dist = t.g.allPairsDistances();
    ckt::Gate g14(ckt::GateKind::CX, {0, 3});
    ckt::Gate g36(ckt::GateKind::CX, {2, 5});
    ckt::Gate g52(ckt::GateKind::CX, {4, 1});
    EXPECT_EQ(gateDistance(g14, g36, dist), 10);
    EXPECT_EQ(gateDistance(g14, g52, dist), 6);
    EXPECT_EQ(gateDistance(g52, g36, dist), 6);
}

TEST(PaperFig9, CompleteSuppressionOnBipartiteExamples)
{
    // Fig. 9: complete suppression exists on bipartite topologies.
    for (auto topo :
         {graph::gridTopology(3, 5), graph::gridTopology(2, 2),
          graph::lineTopology(9)}) {
        SuppressionSolver solver(topo);
        SuppressionResult res = solver.solve({});
        EXPECT_EQ(res.metrics.nc, 0) << topo.name;
        EXPECT_EQ(res.metrics.nq, 1) << topo.name;
    }
}

} // namespace
} // namespace qzz::core
