/**
 * @file
 * Tests for the Sec.-8 composition features (barrier-segmented
 * compilation, DD identity substitution), the heavy-hex topology and
 * the schedule JSON export.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "common/units.h"
#include "circuit/benchmarks.h"
#include "circuit/decompose.h"
#include "core/compiler.h"
#include "core/dcg.h"
#include "core/framework.h"
#include "core/schedule_io.h"
#include "graph/topologies.h"
#include "sim/ideal_sim.h"
#include "sim/ramsey.h"

namespace qzz::core {
namespace {

dev::Device
device23(uint64_t seed = 3)
{
    Rng rng(seed);
    return dev::Device(graph::gridTopology(2, 3), dev::DeviceParams{},
                       rng);
}

TEST(SegmentsTest, ConcatenationPreservesSemantics)
{
    auto dev = device23();
    // One circuit vs the same circuit cut into three segments.
    ckt::QuantumCircuit whole(6);
    whole.h(0);
    whole.cx(0, 1);
    whole.cx(1, 2);
    whole.h(3);
    whole.cx(3, 4);
    whole.cx(4, 5);
    whole.cx(2, 3);

    std::vector<ckt::QuantumCircuit> segments(3,
                                              ckt::QuantumCircuit(6));
    segments[0].h(0);
    segments[0].cx(0, 1);
    segments[1].cx(1, 2);
    segments[1].h(3);
    segments[1].cx(3, 4);
    segments[2].cx(4, 5);
    segments[2].cx(2, 3);

    CompileOptions opt;
    opt.pulse = PulseMethod::Gaussian;
    opt.sched = SchedPolicy::Zzx;
    auto one = compileForDevice(whole, dev, opt);
    auto many = compileSegmentsForDevice(segments, dev, opt);

    auto a = sim::runIdealSchedule(one.schedule);
    auto b = sim::runIdealSchedule(many.schedule);
    EXPECT_NEAR(a.fidelity(b), 1.0, 1e-9);
    EXPECT_EQ(many.schedule.num_qubits, 6);
}

TEST(SegmentsTest, LayoutThreadsAcrossSegments)
{
    auto dev = device23();
    // Segment 1 forces a SWAP (0 and 5 are distance 3 apart); segment
    // 2 then reuses the moved layout.
    std::vector<ckt::QuantumCircuit> segments(2,
                                              ckt::QuantumCircuit(6));
    segments[0].cx(0, 5);
    segments[1].cx(0, 5);

    CompileOptions opt;
    opt.pulse = PulseMethod::Gaussian;
    opt.sched = SchedPolicy::Par;
    auto prog = compileSegmentsForDevice(segments, dev, opt);
    // The second segment should need no further SWAPs: the total
    // two-qubit count is 2 gates + the SWAPs of segment 1 only
    // (3 CX per SWAP, 2 SWAPs for distance 3).
    EXPECT_EQ(prog.native.twoQubitCount(), 2 + 2 * 3);
}

TEST(SegmentsTest, EmptySegmentListRejected)
{
    auto dev = device23();
    CompileOptions opt;
    opt.pulse = PulseMethod::Gaussian;
    EXPECT_THROW(compileSegmentsForDevice({}, dev, opt), UserError);
}

TEST(SegmentsTest, RegisterSizeMismatchRejected)
{
    auto dev = device23();
    std::vector<ckt::QuantumCircuit> segments;
    segments.emplace_back(6);
    segments.emplace_back(4); // different logical register
    CompileOptions opt;
    opt.pulse = PulseMethod::Gaussian;
    EXPECT_THROW(compileSegmentsForDevice(segments, dev, opt),
                 UserError);
}

TEST(SegmentsTest, SingleSegmentMatchesWholeCompile)
{
    auto dev = device23();
    Rng rng(13);
    ckt::QuantumCircuit c = ckt::qaoaMaxCut(6, 1, rng);
    CompileOptions opt;
    opt.pulse = PulseMethod::Gaussian;
    opt.sched = SchedPolicy::Zzx;
    auto whole = compileForDevice(c, dev, opt);
    auto segmented = compileSegmentsForDevice({c}, dev, opt);
    ASSERT_EQ(whole.schedule.layers.size(),
              segmented.schedule.layers.size());
    EXPECT_EQ(whole.native.size(), segmented.native.size());
    EXPECT_EQ(whole.final_layout, segmented.final_layout);
    EXPECT_DOUBLE_EQ(whole.schedule.executionTime(),
                     segmented.schedule.executionTime());
}

TEST(SegmentsTest, FinalLayoutExposesThreadedPermutation)
{
    auto dev = device23();
    std::vector<ckt::QuantumCircuit> segments(2,
                                              ckt::QuantumCircuit(6));
    segments[0].cx(0, 5); // forces SWAPs
    segments[1].sx(0);
    CompileOptions opt;
    opt.pulse = PulseMethod::Gaussian;
    opt.sched = SchedPolicy::Par;
    auto prog = compileSegmentsForDevice(segments, dev, opt);
    // The SWAP walk of segment 1 moved logical qubit 0; the exposed
    // layout is a permutation reflecting it.
    ASSERT_EQ(int(prog.final_layout.size()), 6);
    std::vector<int> sorted = prog.final_layout;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5}));
    EXPECT_NE(prog.final_layout, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(DdSubstitutionTest, PreservesBaseProgramsVerbatim)
{
    pulse::PulseLibrary base = pulse::PulseLibrary::gaussian();
    pulse::PulseLibrary dd = substituteIdentity(base, dcgIdentity());
    // SX and RZX are carried over untouched: same durations, and the
    // same samples on the active channel (x_a for SX, coupling for
    // the Gaussian RZX, whose drive channels are empty).
    for (pulse::PulseGate g :
         {pulse::PulseGate::SX, pulse::PulseGate::RZX}) {
        const auto &orig = base.get(g);
        const auto &kept = dd.get(g);
        EXPECT_DOUBLE_EQ(kept.duration, orig.duration);
        const auto &orig_wf =
            g == pulse::PulseGate::RZX ? orig.coupling : orig.x_a;
        const auto &kept_wf =
            g == pulse::PulseGate::RZX ? kept.coupling : kept.x_a;
        ASSERT_NE(orig_wf, nullptr);
        ASSERT_NE(kept_wf, nullptr);
        for (double t : {0.0, 5.0, 10.0, 19.0})
            EXPECT_DOUBLE_EQ(kept_wf->value(t), orig_wf->value(t));
    }
}

TEST(DdSubstitutionTest, WorksWithoutTwoQubitProgram)
{
    // A library holding only SX: substitution must not invent RZX.
    pulse::PulseLibrary base("sx-only");
    base.set(pulse::PulseGate::SX,
             pulse::PulseLibrary::gaussian().get(pulse::PulseGate::SX));
    pulse::PulseLibrary dd = substituteIdentity(base, dcgIdentity());
    EXPECT_EQ(dd.name(), "sx-only+DD");
    EXPECT_TRUE(dd.has(pulse::PulseGate::SX));
    EXPECT_TRUE(dd.has(pulse::PulseGate::Identity));
    EXPECT_FALSE(dd.has(pulse::PulseGate::RZX));
}

TEST(DdSubstitutionTest, SubstitutedLibraryCompilesViaProvider)
{
    // End to end through the injection seam: DD identities lengthen
    // the supplemented idle slots of a ZZXSched schedule.
    auto dev = device23();
    ckt::QuantumCircuit c(6);
    c.sx(0);
    CompileOptions opt;
    opt.pulse = PulseMethod::Gaussian;
    opt.sched = SchedPolicy::Zzx;
    Compiler compiler =
        CompilerBuilder(dev)
            .options(opt)
            .pulseProvider(std::make_shared<FixedPulseProvider>(
                substituteIdentity(pulse::PulseLibrary::gaussian(),
                                   dcgIdentity())))
            .build();
    auto result = compiler.compile(c);
    ASSERT_TRUE(result.ok());
    int supplemented = 0;
    for (const Layer &layer : result.program.schedule.layers)
        for (const ScheduledGate &sg : layer.gates)
            supplemented += sg.supplemented ? 1 : 0;
    EXPECT_GT(supplemented, 0);
    EXPECT_DOUBLE_EQ(result.program.schedule.executionTime(), 40.0);
}

TEST(DdSubstitutionTest, ReplacesIdentityOnly)
{
    pulse::PulseLibrary base = pulse::PulseLibrary::gaussian();
    pulse::PulseLibrary dd =
        substituteIdentity(base, dcgIdentity());
    EXPECT_EQ(dd.name(), "Gaussian+DD");
    EXPECT_DOUBLE_EQ(dd.get(pulse::PulseGate::Identity).duration,
                     40.0);
    EXPECT_DOUBLE_EQ(dd.get(pulse::PulseGate::SX).duration, 20.0);
    EXPECT_TRUE(dd.has(pulse::PulseGate::RZX));
}

TEST(DdSubstitutionTest, DdIdentityProtectsRamseyQubit)
{
    // Gaussian library + DCG identity = DD-protected idle periods.
    static const pulse::PulseLibrary dd =
        substituteIdentity(pulse::PulseLibrary::gaussian(),
                           dcgIdentity());
    sim::RamseyConfig cfg;
    cfg.lambda12 = khz(50.0);
    cfg.lambda23 = khz(50.0);
    cfg.library = &dd;
    cfg.segments = 300;
    cfg.circuit = sim::RamseyCircuit::B;
    auto zz = sim::measureEffectiveZz(cfg, true, false);
    EXPECT_LT(zz.zz_khz, 11.0);
}

TEST(HeavyHexTest, StructureAndBipartiteness)
{
    auto t = graph::heavyHexTopology(2, 2);
    // 4 hexagons sharing edges; every honeycomb edge subdivided.
    EXPECT_GT(t.g.numVertices(), 20);
    EXPECT_TRUE(t.g.twoColor().has_value()) << "heavy-hex is bipartite";
    // Bridge qubits have degree 2; corner qubits degree 2 or 3.
    for (int v = 0; v < t.g.numVertices(); ++v) {
        EXPECT_GE(t.g.degree(v), 1);
        EXPECT_LE(t.g.degree(v), 3);
    }
    // Planarity: Euler's formula via the embedding.
    auto emb = t.embedding();
    EXPECT_EQ(t.g.numVertices() - t.g.numEdges() + emb.numFaces(), 2);
}

TEST(HeavyHexTest, CompleteSuppressionExists)
{
    SuppressionSolver solver(graph::heavyHexTopology(2, 3));
    auto res = solver.solve({});
    EXPECT_EQ(res.metrics.nc, 0);
    EXPECT_EQ(res.metrics.nq, 1);
}

TEST(HeavyHexTest, SchedulerRunsOnHeavyHex)
{
    Rng rng(5);
    auto topo = graph::heavyHexTopology(1, 2);
    dev::Device dev(topo, dev::DeviceParams{}, rng);
    ckt::QuantumCircuit c(dev.numQubits());
    for (int q = 0; q < dev.numQubits(); ++q)
        c.sx(q);
    c.cx(0, 1);
    ckt::QuantumCircuit native = ckt::decomposeToNative(
        ckt::routeCircuit(c, dev.graph()).circuit);
    Schedule s = zzxSchedule(native, dev, GateDurations{});
    EXPECT_EQ(s.circuitGateCount(), int(native.size()));
}

TEST(ScheduleIoTest, JsonShapeAndContent)
{
    auto dev = device23();
    ckt::QuantumCircuit c(6);
    c.sx(0);
    c.rz(0, 0.5);
    c.rzx(0, 1, kPi / 2.0);
    CompileOptions opt;
    opt.pulse = PulseMethod::Gaussian;
    opt.sched = SchedPolicy::Zzx;
    auto prog = compileForDevice(c, dev, opt);

    std::ostringstream os;
    writeScheduleJson(prog.schedule, *prog.library, os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"num_qubits\": 6"), std::string::npos);
    EXPECT_NE(json.find("\"layers\""), std::string::npos);
    EXPECT_NE(json.find("\"RZX\""), std::string::npos);
    EXPECT_NE(json.find("\"pulses\""), std::string::npos);
    EXPECT_NE(json.find("\"coupling\""), std::string::npos);
    // Balanced braces / brackets.
    int depth = 0;
    for (char ch : json) {
        if (ch == '{' || ch == '[')
            ++depth;
        if (ch == '}' || ch == ']')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(ScheduleIoTest, SamplesOmittedWhenDisabled)
{
    auto dev = device23();
    ckt::QuantumCircuit c(6);
    c.sx(0);
    CompileOptions opt;
    opt.pulse = PulseMethod::Gaussian;
    auto prog = compileForDevice(c, dev, opt);
    std::ostringstream os;
    ScheduleIoOptions io;
    io.sample_dt = 0.0;
    writeScheduleJson(prog.schedule, *prog.library, os, io);
    EXPECT_EQ(os.str().find("\"pulses\""), std::string::npos);
}

} // namespace
} // namespace qzz::core
