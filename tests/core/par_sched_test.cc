#include "core/par_sched.h"

#include <gtest/gtest.h>

#include "circuit/decompose.h"
#include "common/error.h"
#include "common/units.h"
#include "graph/topologies.h"

namespace qzz::core {
namespace {

dev::Device
lineDevice(int n)
{
    Rng rng(1);
    return dev::Device(graph::lineTopology(n), dev::DeviceParams{}, rng);
}

/** Every circuit gate appears exactly once across layers. */
void
expectCompleteAndValid(const Schedule &s, const ckt::QuantumCircuit &c)
{
    int total = 0;
    for (const Layer &l : s.layers) {
        std::vector<int> used(size_t(s.num_qubits), 0);
        for (const ScheduledGate &sg : l.gates) {
            if (!sg.supplemented)
                ++total;
            if (l.is_virtual)
                continue;
            for (int q : sg.gate.qubits) {
                EXPECT_EQ(used[q], 0) << "qubit reused within a layer";
                used[q] = 1;
            }
        }
    }
    EXPECT_EQ(total, int(c.size()));
}

TEST(ParSchedTest, IndependentGatesShareOneLayer)
{
    ckt::QuantumCircuit c(4);
    c.sx(0);
    c.sx(1);
    c.sx(2);
    c.sx(3);
    auto dev = lineDevice(4);
    Schedule s = parSchedule(c, dev, GateDurations{});
    EXPECT_EQ(s.physicalLayerCount(), 1);
    EXPECT_DOUBLE_EQ(s.executionTime(), 20.0);
    expectCompleteAndValid(s, c);
}

TEST(ParSchedTest, DependentGatesSerialize)
{
    ckt::QuantumCircuit c(1);
    c.sx(0);
    c.sx(0);
    c.sx(0);
    auto dev = lineDevice(1);
    Schedule s = parSchedule(c, dev, GateDurations{});
    EXPECT_EQ(s.physicalLayerCount(), 3);
    EXPECT_DOUBLE_EQ(s.executionTime(), 60.0);
}

TEST(ParSchedTest, VirtualGatesCostNothing)
{
    ckt::QuantumCircuit c(2);
    c.rz(0, 0.3);
    c.sx(0);
    c.rz(0, -0.3);
    auto dev = lineDevice(2);
    Schedule s = parSchedule(c, dev, GateDurations{});
    EXPECT_DOUBLE_EQ(s.executionTime(), 20.0);
    expectCompleteAndValid(s, c);
}

TEST(ParSchedTest, AsapDepthMatchesCriticalPath)
{
    // sx(0); cx-like rzx(0,1); sx(1): critical path = 3 layers.
    ckt::QuantumCircuit c(2);
    c.sx(0);
    c.rzx(0, 1, kPi / 2.0);
    c.sx(1);
    auto dev = lineDevice(2);
    Schedule s = parSchedule(c, dev, GateDurations{});
    EXPECT_EQ(s.physicalLayerCount(), 3);
}

TEST(ParSchedTest, NoIdentitySupplementation)
{
    ckt::QuantumCircuit c(3);
    c.sx(0);
    auto dev = lineDevice(3);
    Schedule s = parSchedule(c, dev, GateDurations{});
    for (const Layer &l : s.layers)
        for (const ScheduledGate &sg : l.gates)
            EXPECT_FALSE(sg.supplemented);
}

TEST(ParSchedTest, MetricsReflectDrivenQubits)
{
    // One driven qubit on a 3-line: regions are {driven} vs the idle
    // pair; the idle-idle coupling is unsuppressed.
    ckt::QuantumCircuit c(3);
    c.sx(0);
    auto dev = lineDevice(3);
    Schedule s = parSchedule(c, dev, GateDurations{});
    ASSERT_EQ(s.physicalLayerCount(), 1);
    const Layer &l = s.layers.back();
    EXPECT_EQ(l.metrics.nc, 1);
    EXPECT_EQ(l.metrics.nq, 2);
}

TEST(ParSchedTest, RealisticNativeCircuit)
{
    Rng rng(5);
    ckt::QuantumCircuit logical(5);
    logical.h(0);
    logical.cx(0, 1);
    logical.cx(1, 2);
    logical.cx(2, 3);
    logical.cx(3, 4);
    ckt::QuantumCircuit native = ckt::decomposeToNative(logical);
    auto dev = lineDevice(5);
    Schedule s = parSchedule(native, dev, GateDurations{});
    expectCompleteAndValid(s, native);
    EXPECT_GT(s.physicalLayerCount(), 0);
}

TEST(ParSchedTest, RejectsNonNativeCircuit)
{
    ckt::QuantumCircuit c(2);
    c.h(0);
    auto dev = lineDevice(2);
    EXPECT_THROW(parSchedule(c, dev, GateDurations{}), UserError);
}

} // namespace
} // namespace qzz::core
